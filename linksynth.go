// Package linksynth synthesizes the links between database relations under
// cardinality and integrity constraints. It is a Go implementation of
// "Synthesizing Linked Data Under Cardinality and Integrity Constraints"
// (Gilad, Patwa, Machanavajjhala; SIGMOD 2021).
//
// Given a relation R1 whose foreign-key column is entirely missing, the
// referenced relation R2, a set of linear cardinality constraints (CCs)
// over the join view R1 ⋈ R2, and a set of foreign-key denial constraints
// (DCs) over R1, Solve imputes every FK value such that all DCs hold
// exactly and the CC counts are met as closely as possible (the decision
// problem is NP-hard; the solver is the paper's two-phase heuristic, which
// guarantees DC satisfaction).
//
// Quick start:
//
//	in := linksynth.Input{R1: persons, R2: housing, K1: "pid", K2: "hid", FK: "hid",
//		CCs: ccs, DCs: dcs}
//	res, err := linksynth.Solve(in, linksynth.Options{})
//	// res.R1Hat has the FK column filled; res.R2Hat may contain a few
//	// artificial tuples added to satisfy the DCs; res.VJoin is the join.
//
// Constraints can be built programmatically (see the constraint aliases) or
// parsed from the text DSL:
//
//	cc owners: count(Rel = 'Owner', Area = 'Chicago') = 4
//	dc one_owner: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'
package linksynth

import (
	"context"
	"io"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/metrics"
	"repro/internal/table"
)

// Relational substrate types (see internal/table for full method docs).
type (
	// Relation is an in-memory row-major relation instance.
	Relation = table.Relation
	// Schema is an ordered, name-indexed column list.
	Schema = table.Schema
	// Column is a named, typed schema column.
	Column = table.Column
	// Value is a dynamically typed cell (int, string, or null).
	Value = table.Value
	// Predicate is a conjunctive selection predicate.
	Predicate = table.Predicate
	// Atom is one comparison of a Predicate.
	Atom = table.Atom
)

// Constraint types.
type (
	// CC is a linear cardinality constraint |σ_φ(R1 ⋈ R2)| = k.
	CC = constraint.CC
	// DC is a foreign-key denial constraint over R1.
	DC = constraint.DC
)

// Solver types.
type (
	// Input is a C-Extension instance.
	Input = core.Input
	// Options configure the solver; the zero value is the paper's hybrid.
	Options = core.Options
	// Result carries R̂1, R̂2, the join view and runtime statistics.
	Result = core.Result
	// Stats is the per-stage runtime/diagnostic breakdown.
	Stats = core.Stats
)

// Solver modes (phase-I strategy).
const (
	ModeHybrid    = core.ModeHybrid
	ModeILPOnly   = core.ModeILPOnly
	ModeHasseOnly = core.ModeHasseOnly
)

// Value constructors.
var (
	Int    = table.Int
	String = table.String
	Null   = table.Null
)

// Schema constructors.
var (
	NewSchema   = table.NewSchema
	NewRelation = table.NewRelation
	IntCol      = table.IntCol
	StrCol      = table.StrCol
)

// Solve runs the two-phase C-Extension solver (the paper's hybrid under
// the zero Options). Options.Workers > 1 (or negative, for GOMAXPROCS)
// parallelizes both phases on a bounded worker pool with output
// byte-identical to the sequential path.
func Solve(in Input, opt Options) (*Result, error) { return core.Solve(in, opt) }

// SolveBatch solves many instances over one shared worker pool sized by
// opt.Workers. Results align positionally with inputs; a failing instance
// yields a nil Result and an error annotated with its index in the joined
// error return, without disturbing the other instances. Each instance's
// output is byte-identical to a standalone Solve with the same Options.
func SolveBatch(inputs []Input, opt Options) ([]*Result, error) {
	return core.SolveBatch(context.Background(), inputs, opt)
}

// SolveBatchContext is SolveBatch under a context: cancellation is honored
// at instance boundaries — instances not yet started when ctx is done fail
// with ctx.Err() in the joined error.
func SolveBatchContext(ctx context.Context, inputs []Input, opt Options) ([]*Result, error) {
	return core.SolveBatch(ctx, inputs, opt)
}

// Fingerprint returns the SHA-256 content address of an instance: two
// (Input, Options) pairs share a key iff the solver is guaranteed to
// produce the byte-identical Result for both (Options.Workers and
// constraint names are excluded — neither changes the output). It is the
// cache key of the linksynthd serving layer.
func Fingerprint(in Input, opt Options) ([32]byte, error) { return core.Fingerprint(in, opt) }

// StructuralFingerprint returns the SHA-256 address of an instance's
// structure — schemas, canonical constraints, and output-relevant options,
// with row data excluded and declaration order canonicalized. It keys the
// compiled-plan cache of the incremental engine: instances sharing a
// structural fingerprint share one compiled plan regardless of their data.
func StructuralFingerprint(in Input, opt Options) ([32]byte, error) {
	return core.StructuralFingerprint(in, opt)
}

// Incremental solve types (see internal/incr for the engine).
type (
	// Session is a warm solver session over one base instance: Solve once,
	// then Resolve small deltas — each re-solve splices unchanged work from
	// the previous one while staying byte-identical to a cold solve of the
	// patched instance.
	Session = incr.Session
	// Delta is a change set relative to a session's base instance.
	Delta = incr.Delta
	// CellEdit rewrites one R1 cell in a Delta.
	CellEdit = incr.CellEdit
)

// defaultEngine backs the package-level Open; its plan cache is shared by
// every session opened through it.
var defaultEngine = incr.NewEngine(128)

// Open starts an incremental solve session for the instance: the returned
// Session solves the base once, then re-solves deltas (CC bound nudges, R1
// cell edits, appended rows) incrementally — reusing the compiled problem
// and splicing untouched phase-2 partitions — with results byte-identical
// to cold solves of the equivalent patched inputs. Sessions opened through
// this function share one process-wide structural plan cache. A Session is
// not safe for concurrent use.
func Open(in Input, opt Options) (*Session, error) {
	return defaultEngine.Open(in, opt, nil)
}

// BaselineOptions configures the plain Arasu-style baseline of §6.1 (ILP
// without marginal augmentation, random FK assignment, DCs ignored).
func BaselineOptions(seed int64) Options { return core.BaselineOptions(seed) }

// BaselineMarginalsOptions configures the "baseline with marginals"
// comparison algorithm of §6.1.
func BaselineMarginalsOptions(seed int64) Options { return core.BaselineMarginalsOptions(seed) }

// ParseConstraints reads CCs and DCs from the text DSL, one per line.
func ParseConstraints(r io.Reader) ([]CC, []DC, error) { return constraint.ParseConstraints(r) }

// ParseCC parses a single cardinality constraint line.
func ParseCC(src string) (CC, error) { return constraint.ParseCC(src) }

// ParseDC parses a single denial constraint line.
func ParseDC(src string) (DC, error) { return constraint.ParseDC(src) }

// CCErrors returns the relative error of each CC measured on a join view
// (|ĉ−c| / max(10,c), the paper's §6.1 measure).
func CCErrors(vjoin *Relation, ccs []CC) []float64 { return metrics.CCErrors(vjoin, ccs) }

// DCErrorFraction returns the fraction of R̂1 tuples involved in at least
// one DC violation (0 for every solver output; nonzero for baselines).
func DCErrorFraction(r1hat *Relation, fkCol string, dcs []DC) float64 {
	return metrics.DCErrorFraction(r1hat, fkCol, dcs)
}

// ReadCSVFile loads a relation from a CSV file with a header row matching
// the schema.
func ReadCSVFile(path, name string, schema *Schema) (*Relation, error) {
	return table.ReadCSVFile(path, name, schema)
}

// WriteCSVFile stores a relation as CSV.
func WriteCSVFile(path string, r *Relation) error { return table.WriteCSVFile(path, r) }
