// The batch example drives the multi-instance workload API: it generates a
// fleet of census-like C-Extension instances (one per region/seed, the way
// a production deployment would synthesize many shards of linked data) and
// solves them all with one SolveBatch call over a shared worker pool,
// comparing against solving the same fleet serially. Per-instance failures
// are isolated, and every batch result is byte-identical to a standalone
// Solve.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	linksynth "repro"
	"repro/internal/census"
	"repro/internal/metrics"
)

func main() {
	n := flag.Int("instances", 6, "number of instances in the batch")
	households := flag.Int("households", 200, "households per instance")
	nCC := flag.Int("ccs", 40, "cardinality constraints per instance")
	workers := flag.Int("workers", -1, "pool size for the batch (-1 = GOMAXPROCS)")
	flag.Parse()

	inputs := make([]linksynth.Input, *n)
	allCCs := make([][]linksynth.CC, *n)
	dcs := census.AllDCs()
	for i := range inputs {
		d := census.Generate(census.Config{Households: *households, Areas: 6, Seed: int64(i + 1)})
		allCCs[i] = d.GoodCCs(*nCC)
		inputs[i] = linksynth.Input{R1: d.Persons, R2: d.Housing,
			K1: "pid", K2: "hid", FK: "hid", CCs: allCCs[i], DCs: dcs}
	}
	fmt.Printf("batch: %d census instances, %d households, %d CCs, %d DCs each\n\n",
		*n, *households, *nCC, len(dcs))

	tSerial := time.Now()
	for i, in := range inputs {
		if _, err := linksynth.Solve(in, linksynth.Options{Seed: 1}); err != nil {
			log.Fatalf("instance %d: %v", i, err)
		}
	}
	serial := time.Since(tSerial)

	tBatch := time.Now()
	results, err := linksynth.SolveBatch(inputs, linksynth.Options{Seed: 1, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	batch := time.Since(tBatch)

	fmt.Printf("%-10s %-12s %-12s %-10s %s\n", "instance", "CCerr-median", "CCerr-mean", "DCerr", "phase1/phase2")
	for i, res := range results {
		errs := linksynth.CCErrors(res.VJoin, allCCs[i])
		fmt.Printf("%-10d %-12.4f %-12.4f %-10.4f %v / %v\n",
			i, metrics.Median(errs), metrics.Mean(errs),
			linksynth.DCErrorFraction(res.R1Hat, "hid", dcs),
			res.Stats.Phase1.Round(time.Millisecond), res.Stats.Phase2.Round(time.Millisecond))
	}
	fmt.Printf("\nserial loop: %v (%.1f instances/s)\n", serial.Round(time.Millisecond),
		float64(*n)/serial.Seconds())
	fmt.Printf("SolveBatch:  %v (%.1f instances/s, workers=%d)\n", batch.Round(time.Millisecond),
		float64(*n)/batch.Seconds(), *workers)
}
