// The cluster example walks through linksynthd's shared-nothing sharding
// with three in-process nodes on loopback ports. Each node owns the key
// range its fingerprints rendezvous-hash to: a solve posted to any node is
// forwarded to the owner, batches scatter sub-jobs across the owners, and
// a killed node's keys fail over to local solving on the survivors.
//
// A real deployment runs one `linksynthd` process per node with the same
// -peers list and a per-node -advertise URL; see the README's "Scaling
// out" section.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/service"
)

const constraints = `cc owners_chi: count(Rel = 'Owner', Area = 'Chicago') = 2
cc owners_nyc: count(Rel = 'Owner', Area = 'NYC') = 1
dc one_owner: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'`

// instance mints a small solvable instance; distinct bumps have distinct
// fingerprints and therefore, usually, distinct owning nodes.
func instance(bump int64) service.InstanceJSON {
	return service.InstanceJSON{
		R1: &service.RelationJSON{
			Name: "Persons",
			Columns: []service.ColumnJSON{
				{Name: "pid", Type: "int"}, {Name: "Age", Type: "int"},
				{Name: "Rel", Type: "string"}, {Name: "hid", Type: "int"},
			},
			Rows: [][]any{
				{1, 70 + bump, "Owner", nil}, {2, 25, "Owner", nil},
				{3, 24, "Spouse", nil}, {4, 30, "Owner", nil},
			},
		},
		R2: &service.RelationJSON{
			Name: "Housing",
			Columns: []service.ColumnJSON{
				{Name: "hid", Type: "int"}, {Name: "Area", Type: "string"},
			},
			Rows: [][]any{{1, "Chicago"}, {2, "Chicago"}, {3, "NYC"}, {4, "NYC"}},
		},
		K1: "pid", K2: "hid", FK: "hid",
		Constraints: constraints,
	}
}

type node struct {
	url string
	srv *service.Server
	ln  net.Listener
	hs  *http.Server
}

func main() {
	// Three nodes: listeners first (so every URL is known), then a cluster
	// view and a server per node, all sharing the same peer list.
	const n = 3
	nodes := make([]*node, n)
	urls := make([]string, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = &node{ln: ln, url: "http://" + ln.Addr().String()}
		urls[i] = nodes[i].url
	}
	for i, nd := range nodes {
		c, err := cache.Open("", 256)
		if err != nil {
			log.Fatal(err)
		}
		clu, err := cluster.New(cluster.Config{
			Self:          nd.url,
			Peers:         urls,
			ProbeInterval: 200 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		clu.Start()
		nd.srv = service.New(service.Config{Cache: c, Workers: -1, Cluster: clu})
		nd.hs = &http.Server{Handler: nd.srv}
		go nd.hs.Serve(nd.ln)
		fmt.Printf("node %d listening on %s\n", i, nd.url)
	}
	fmt.Println()

	// 1. The same solve posted to every node: each non-owner forwards to
	// the owner, so all three answers are byte-identical and the cluster
	// runs the solver exactly once.
	req := service.SolveRequest{InstanceJSON: instance(0), Options: &service.OptionsJSON{Seed: 1}}
	var first []byte
	edgeURL, ownerURL, traceID := "", "", ""
	for i, nd := range nodes {
		body, hdr := post(nd.url+"/v1/solve", req)
		identical := first == nil || bytes.Equal(first, body)
		if first == nil {
			first = body
		}
		if served := hdr.Get("X-Linksynth-Node"); served != nd.url && traceID == "" {
			edgeURL, ownerURL, traceID = nd.url, served, hdr.Get("X-Linksynth-Trace")
		}
		fmt.Printf("POST node%d/v1/solve  -> cache %-9s served by %-27s byte-identical: %v\n",
			i, hdr.Get("X-Linksynth-Cache"), hdr.Get("X-Linksynth-Node"), identical)
	}
	fmt.Printf("cluster-wide solver runs: %d (one owner solved; the others forwarded)\n\n", totalRuns(nodes))

	// 1b. A forwarded solve is one distributed trace: the edge node mints an
	// id (X-Linksynth-Trace, echoed on the response), the hop carries it to
	// the owner, and each node's flight recorder holds its half of the story
	// under that shared id — the forward span on the edge, the solver phase
	// breakdown on the owner.
	if traceID != "" {
		fmt.Printf("trace %s spans a forwarded solve:\n", traceID)
		for _, u := range []string{edgeURL, ownerURL} {
			fmt.Printf("  %s /debug/flight -> %s\n", u, flightSpans(u, traceID))
		}
		fmt.Println()
	}

	// 2. A batch posted to node 0 scatters across the owners: each
	// instance is solved on — and cached by — the node that owns its
	// fingerprint.
	batch := service.BatchRequest{
		Instances: []service.InstanceJSON{instance(1), instance(2), instance(3), instance(4)},
		Options:   &service.OptionsJSON{Seed: 1},
	}
	accept, _ := post(nodes[0].url+"/v1/batch", batch)
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(accept, &job); err != nil {
		log.Fatal(err)
	}
	for job.Status != "done" && job.Status != "canceled" {
		time.Sleep(10 * time.Millisecond)
		st, _ := get(nodes[0].url + "/v1/jobs/" + job.ID)
		if err := json.Unmarshal(st, &job); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("POST node0/v1/batch  -> %s %s; per-node cache entries after scatter:\n", job.ID, job.Status)
	for i, nd := range nodes {
		fmt.Printf("  node %d: %s\n", i, metricLine(nd.url, "linksynthd_cache_entries"))
	}
	fmt.Println()

	// 3. Kill node 2: its key range fails over to the survivors. The same
	// request that node 2 owned still answers — solved locally by whichever
	// node receives it.
	victim := nodes[2]
	victim.hs.Close()
	fmt.Printf("killed node 2 (%s)\n", victim.url)
	for _, inst := range batch.Instances {
		body, hdr := post(nodes[0].url+"/v1/solve", service.SolveRequest{InstanceJSON: inst, Options: batch.Options})
		_ = body
		fmt.Printf("POST node0/v1/solve  -> cache %-9s served by %s\n",
			hdr.Get("X-Linksynth-Cache"), hdr.Get("X-Linksynth-Node"))
	}
	fmt.Println()

	// 4. The cluster's own view of the failure.
	hz, _ := get(nodes[0].url + "/healthz")
	fmt.Printf("GET node0/healthz    -> %s\n", hz)
	for _, name := range []string{"linksynthd_cluster_peers_up", "linksynthd_cluster_forwarded_total", "linksynthd_cluster_forward_fallbacks_total"} {
		fmt.Printf("  %s\n", metricLine(nodes[0].url, name))
	}
}

// flightSpans polls a node's flight recorder for a trace id and renders
// what that node contributed to it: span names, or events when the node
// answered without timed work (a byte-cache hit has no solver spans). The
// recorder files a trace just after the response bytes are on the wire,
// hence the brief retry loop.
func flightSpans(url, id string) string {
	var dump struct {
		Traces []struct {
			ID    string `json:"id"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
			Events []struct {
				Msg string `json:"msg"`
			} `json:"events"`
		} `json:"traces"`
	}
	for i := 0; i < 100; i++ {
		body, _ := get(url + "/debug/flight")
		if err := json.Unmarshal(body, &dump); err != nil {
			log.Fatal(err)
		}
		for _, tr := range dump.Traces {
			if tr.ID != id {
				continue
			}
			if len(tr.Spans) == 0 && len(tr.Events) > 0 {
				return "event: " + tr.Events[0].Msg
			}
			names := make([]string, len(tr.Spans))
			for j, sp := range tr.Spans {
				names[j] = sp.Name
			}
			return "spans: " + strings.Join(names, " ")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return "(trace not recorded)"
}

func totalRuns(nodes []*node) int {
	total := 0
	for _, nd := range nodes {
		line := metricLine(nd.url, "linksynthd_solver_runs_total")
		var v int
		fmt.Sscanf(line, "linksynthd_solver_runs_total %d", &v)
		total += v
	}
	return total
}

func metricLine(url, name string) string {
	body, _ := get(url + "/metrics")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			return line
		}
	}
	return name + " ?"
}

func post(url string, v any) ([]byte, http.Header) {
	b, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 && resp.StatusCode != 202 {
		log.Fatalf("%s: %d: %s", url, resp.StatusCode, body)
	}
	return body, resp.Header
}

func get(url string) ([]byte, http.Header) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return body, resp.Header
}
