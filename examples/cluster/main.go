// The cluster example walks through linksynthd's elastic shared-nothing
// sharding with in-process nodes on loopback ports. Three nodes start
// with -replicas 2 semantics: each key rendezvous-hashes to one owning
// node, the owner solves it once and pushes the entry to the key's two
// ring-successors. The walkthrough forwards a solve across nodes under
// one trace id, scatters a batch, kills the *owner* of a key and shows a
// successor answering it warm — byte-identical, cache hit, zero new
// solver runs — and finally joins a fourth node into the live cluster
// without restarting anything.
//
// A real deployment runs one `linksynthd` process per node (seed nodes
// with -peers, later nodes with -join) and a per-node -advertise URL;
// see the README's "Scaling out" section.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/service"
)

const constraints = `cc owners_chi: count(Rel = 'Owner', Area = 'Chicago') = 2
cc owners_nyc: count(Rel = 'Owner', Area = 'NYC') = 1
dc one_owner: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'`

// instance mints a small solvable instance; distinct bumps have distinct
// fingerprints and therefore, usually, distinct owning nodes.
func instance(bump int64) service.InstanceJSON {
	return service.InstanceJSON{
		R1: &service.RelationJSON{
			Name: "Persons",
			Columns: []service.ColumnJSON{
				{Name: "pid", Type: "int"}, {Name: "Age", Type: "int"},
				{Name: "Rel", Type: "string"}, {Name: "hid", Type: "int"},
			},
			Rows: [][]any{
				{1, 70 + bump, "Owner", nil}, {2, 25, "Owner", nil},
				{3, 24, "Spouse", nil}, {4, 30, "Owner", nil},
			},
		},
		R2: &service.RelationJSON{
			Name: "Housing",
			Columns: []service.ColumnJSON{
				{Name: "hid", Type: "int"}, {Name: "Area", Type: "string"},
			},
			Rows: [][]any{{1, "Chicago"}, {2, "Chicago"}, {3, "NYC"}, {4, "NYC"}},
		},
		K1: "pid", K2: "hid", FK: "hid",
		Constraints: constraints,
	}
}

type node struct {
	url string
	srv *service.Server
	clu *cluster.Cluster
	ln  net.Listener
	hs  *http.Server
}

// startNode wires a cache, cluster view and server onto a pre-opened
// listener. peers is the bootstrap seed list; a joiner passes nil and
// calls JoinVia afterwards.
func startNode(nd *node, peers []string) {
	c, err := cache.Open("", 256)
	if err != nil {
		log.Fatal(err)
	}
	clu, err := cluster.New(cluster.Config{
		Self:          nd.url,
		Peers:         peers,
		ProbeInterval: 200 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	clu.Start()
	nd.clu = clu
	nd.srv = service.New(service.Config{Cache: c, Workers: -1, Cluster: clu, Replicas: 2})
	nd.hs = &http.Server{Handler: nd.srv}
	go nd.hs.Serve(nd.ln)
}

func main() {
	// Three nodes: listeners first (so every URL is known), then a cluster
	// view and a server per node, all sharing the same seed list.
	const n = 3
	nodes := make([]*node, n)
	urls := make([]string, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = &node{ln: ln, url: "http://" + ln.Addr().String()}
		urls[i] = nodes[i].url
	}
	for i, nd := range nodes {
		startNode(nd, urls)
		fmt.Printf("node %d listening on %s (replicas=2)\n", i, nd.url)
	}
	fmt.Println()

	// 1. The same solve posted to every node. The first post routes to the
	// key's owner, which solves once and asynchronously pushes the entry to
	// its two ring-successors — so the later posts are answered either by a
	// forward to the owner or straight from the receiving node's own
	// replica. Either way: byte-identical, one solver run cluster-wide.
	req := service.SolveRequest{InstanceJSON: instance(0), Options: &service.OptionsJSON{Seed: 1}}
	var first []byte
	ownerOf0 := ""
	for i, nd := range nodes {
		body, hdr := post(nd.url+"/v1/solve", req)
		identical := first == nil || bytes.Equal(first, body)
		if first == nil {
			first = body
			ownerOf0 = hdr.Get("X-Linksynth-Node") // fresh key: served by its owner
		}
		fmt.Printf("POST node%d/v1/solve  -> cache %-9s served by %-27s byte-identical: %v\n",
			i, hdr.Get("X-Linksynth-Cache"), hdr.Get("X-Linksynth-Node"), identical)
	}
	fmt.Printf("cluster-wide solver runs: %d (the owner %s solved; everyone else relayed or replicated)\n\n",
		totalRuns(nodes), ownerOf0)

	// 1b. A forwarded solve is one distributed trace: the edge node mints an
	// id (X-Linksynth-Trace, echoed on the response), the hop carries it to
	// the owner, and each node's flight recorder holds its half of the story
	// under that shared id — the forward span on the edge, the solver phase
	// breakdown on the owner. Fresh fingerprints until node 0 isn't the owner.
	edgeURL, ownerURL, traceID := "", "", ""
	for b := int64(100); traceID == "" && b < 120; b++ {
		_, hdr := post(nodes[0].url+"/v1/solve",
			service.SolveRequest{InstanceJSON: instance(b), Options: &service.OptionsJSON{Seed: 1}})
		if served := hdr.Get("X-Linksynth-Node"); served != nodes[0].url {
			edgeURL, ownerURL, traceID = nodes[0].url, served, hdr.Get("X-Linksynth-Trace")
		}
	}
	if traceID != "" {
		fmt.Printf("trace %s spans a forwarded solve:\n", traceID)
		for _, u := range []string{edgeURL, ownerURL} {
			fmt.Printf("  %s /debug/flight -> %s\n", u, flightSpans(u, traceID))
		}
		fmt.Println()
	}

	// 1c. The same trace, stitched: /debug/trace/{id} on ANY member asks
	// every node's flight recorder for its half and merges the spans into
	// one wall-clock timeline — the edge's forward hop and the owner's
	// solver phases, interleaved as they actually ran.
	if traceID != "" {
		printStitchedTrace(nodes[0].url, traceID)
	}

	// 1d. EXPLAIN travels with the forward too: ?explain=1 on a fresh
	// fingerprint makes the owner measure its cost report — per-CC
	// selectivities off the posting lists, phase durations, partition
	// shape — and the edge relays it spliced into the response body. The
	// cached bytes stay untouched: re-POST without explain and the body is
	// the canonical form.
	expReq := service.SolveRequest{InstanceJSON: instance(500), Options: &service.OptionsJSON{Seed: 1}}
	expBody, expHdr := post(nodes[0].url+"/v1/solve?explain=1", expReq)
	printExplain(expBody, expHdr)

	// 2. A batch posted to node 0 scatters across the owners: each
	// instance is solved on — and cached by — the node that owns its
	// fingerprint, then replicated to the successors.
	batch := service.BatchRequest{
		Instances: []service.InstanceJSON{instance(1), instance(2), instance(3), instance(4)},
		Options:   &service.OptionsJSON{Seed: 1},
	}
	accept, _ := post(nodes[0].url+"/v1/batch", batch)
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(accept, &job); err != nil {
		log.Fatal(err)
	}
	for job.Status != "done" && job.Status != "canceled" {
		time.Sleep(10 * time.Millisecond)
		st, _ := get(nodes[0].url + "/v1/jobs/" + job.ID)
		if err := json.Unmarshal(st, &job); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("POST node0/v1/batch  -> %s %s; per-node cache entries after scatter:\n", job.ID, job.Status)
	for i, nd := range nodes {
		fmt.Printf("  node %d: %s\n", i, metricLine(nd.url, "linksynthd_cache_entries"))
	}
	fmt.Println()

	// 3. Kill the OWNER of the step-1 key — the worst-case victim for that
	// fingerprint. Its two ring-successors already hold the replicated
	// entry, and under rendezvous hashing the first successor is exactly
	// the node the survivors now agree owns the key: the same request
	// answers warm from the replica, byte-identical, zero new solver runs.
	victim := nodeByURL(nodes, ownerOf0)
	survivors := make([]*node, 0, n-1)
	for _, nd := range nodes {
		if nd != victim {
			survivors = append(survivors, nd)
		}
	}
	// Let replication land first: each survivor answers the key from its
	// own replica (served-by = itself) once the push has been ingested.
	for _, sv := range survivors {
		waitUntil("replica on "+sv.url, func() bool {
			_, hdr := post(sv.url+"/v1/solve", req)
			return hdr.Get("X-Linksynth-Node") == sv.url
		})
	}
	runsBefore := totalRuns(survivors)
	victim.hs.Close()
	fmt.Printf("killed %s — the owner of the step-1 key\n", victim.url)
	for _, sv := range survivors {
		waitUntil("probes to mark the owner down", func() bool {
			return metricValue(sv.url, "linksynthd_cluster_peers_up") == 1
		})
	}
	for _, sv := range survivors {
		body, hdr := post(sv.url+"/v1/solve", req)
		fmt.Printf("POST %s/v1/solve -> cache %-4s served by %-27s byte-identical: %v\n",
			sv.url, hdr.Get("X-Linksynth-Cache"), hdr.Get("X-Linksynth-Node"), bytes.Equal(body, first))
		if tid := hdr.Get("X-Linksynth-Trace"); tid != "" {
			fmt.Printf("  trace %s -> %s\n", tid, flightSpans(sv.url, tid))
		}
	}
	fmt.Printf("survivor solver runs for the failover: %d (warm — nothing re-solved)\n\n",
		totalRuns(survivors)-runsBefore)

	// 4. Elastic growth: a fourth node joins through any live member — no
	// restarts, no -peers edits on the incumbents. Gossip on the probe
	// cycle spreads the new member set, the ring recomputes incrementally
	// (only the joiner's key ranges move), and the joiner starts owning
	// and serving fresh fingerprints immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	joiner := &node{ln: ln, url: "http://" + ln.Addr().String()}
	startNode(joiner, nil)
	if err := joiner.clu.JoinVia(context.Background(), survivors[0].url); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 3 (%s) joined via %s\n", joiner.url, survivors[0].url)
	for _, sv := range survivors {
		waitUntil("gossip to spread the join", func() bool {
			return metricValue(sv.url, "linksynthd_cluster_members") == 4
		})
	}
	for b := int64(200); b < 240; b++ {
		_, hdr := post(survivors[0].url+"/v1/solve",
			service.SolveRequest{InstanceJSON: instance(b), Options: &service.OptionsJSON{Seed: 1}})
		if hdr.Get("X-Linksynth-Node") == joiner.url {
			fmt.Printf("new fingerprint routed from %s to the joiner: served by %s\n\n",
				survivors[0].url, hdr.Get("X-Linksynth-Node"))
			break
		}
	}

	// 5. The cluster's own view of the chaos.
	hz, _ := get(survivors[0].url + "/healthz")
	fmt.Printf("GET %s/healthz -> %s\n", survivors[0].url, hz)
	for _, name := range []string{
		"linksynthd_cluster_members", "linksynthd_cluster_peers_up",
		"linksynthd_cluster_membership_epoch", "linksynthd_cluster_replica_ingested_total",
		"linksynthd_cluster_replica_served_total", "linksynthd_cluster_failovers_total",
	} {
		fmt.Printf("  %s\n", metricLine(survivors[0].url, name))
	}
	fmt.Println()

	// 5b. Cluster-wide telemetry from any one member: /debug/cluster
	// fans out to every live node's /metrics and merges them into a
	// single exposition — counters summed, gauges maxed, every sample
	// also broken out per node — so one scrape sees the whole cluster.
	cm, _ := get(survivors[0].url + "/debug/cluster")
	fmt.Printf("GET %s/debug/cluster (merged exposition, %d lines):\n", survivors[0].url, strings.Count(string(cm), "\n"))
	for _, line := range strings.Split(string(cm), "\n") {
		if strings.HasPrefix(line, "linksynthd_cache_entries") || strings.HasPrefix(line, "linksynthd_cluster_node_up") {
			fmt.Printf("  %s\n", line)
		}
	}
}

// printStitchedTrace fetches /debug/trace/{id} — the cross-node stitched
// view — from one member and prints which nodes contributed and the
// merged span timeline.
func printStitchedTrace(url, id string) {
	body, _ := get(url + "/debug/trace/" + id)
	var ct struct {
		Nodes    []string `json:"nodes"`
		Timeline []struct {
			Node string `json:"node"`
			Name string `json:"name"`
		} `json:"timeline"`
	}
	if err := json.Unmarshal(body, &ct); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET %s/debug/trace/%s -> stitched across %v:\n  timeline:", url, id, ct.Nodes)
	for _, sp := range ct.Timeline {
		fmt.Printf(" %s@%s", sp.Name, sp.Node)
	}
	fmt.Println()
	fmt.Println()
}

// printExplain digs the headline numbers out of a spliced explain member:
// which node measured it, the solver's routing split, and the service-side
// hit ratios at that node.
func printExplain(body []byte, hdr http.Header) {
	var resp struct {
		Explain *struct {
			Node    string `json:"node"`
			TraceID string `json:"trace_id"`
			Cache   string `json:"cache"`
			Solver  *struct {
				Mode       string `json:"mode"`
				ViewRows   int    `json:"view_rows"`
				Combos     int    `json:"combos"`
				CCsToHasse int    `json:"ccs_to_hasse"`
				CCsToILP   int    `json:"ccs_to_ilp"`
				Partitions struct {
					Count int `json:"count"`
				} `json:"partitions"`
			} `json:"solver"`
			Service struct {
				CacheHitRatio float64 `json:"cache_hit_ratio"`
				PlanHitRatio  float64 `json:"plan_hit_ratio"`
			} `json:"service"`
		} `json:"explain"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		log.Fatal(err)
	}
	if resp.Explain == nil {
		fmt.Println("POST ?explain=1 -> no explain member (unexpected)")
		return
	}
	e := resp.Explain
	fmt.Printf("POST node0/v1/solve?explain=1 -> cache %s, served by %s, measured on %s (trace %s)\n",
		e.Cache, hdr.Get("X-Linksynth-Node"), e.Node, e.TraceID)
	if e.Solver != nil {
		fmt.Printf("  solver: mode=%s view_rows=%d combos=%d routing hasse/ilp=%d/%d partitions=%d\n",
			e.Solver.Mode, e.Solver.ViewRows, e.Solver.Combos,
			e.Solver.CCsToHasse, e.Solver.CCsToILP, e.Solver.Partitions.Count)
	}
	fmt.Printf("  service at %s: cache_hit_ratio=%.2f plan_hit_ratio=%.2f\n",
		e.Node, e.Service.CacheHitRatio, e.Service.PlanHitRatio)
	fmt.Println()
}

// flightSpans polls a node's flight recorder for a trace id and renders
// what that node contributed to it: span names, or events when the node
// answered without timed work (a warm failover is a byte-cache hit, so
// its trail is the failover event plus the cache event). The recorder
// files a trace just after the response bytes are on the wire, hence the
// brief retry loop.
func flightSpans(url, id string) string {
	var dump struct {
		Traces []struct {
			ID    string `json:"id"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
			Events []struct {
				Msg string `json:"msg"`
			} `json:"events"`
		} `json:"traces"`
	}
	for i := 0; i < 100; i++ {
		body, _ := get(url + "/debug/flight")
		if err := json.Unmarshal(body, &dump); err != nil {
			log.Fatal(err)
		}
		for _, tr := range dump.Traces {
			if tr.ID != id {
				continue
			}
			if len(tr.Spans) == 0 && len(tr.Events) > 0 {
				msgs := make([]string, len(tr.Events))
				for j, ev := range tr.Events {
					msgs[j] = ev.Msg
				}
				return "events: " + strings.Join(msgs, " | ")
			}
			names := make([]string, len(tr.Spans))
			for j, sp := range tr.Spans {
				names[j] = sp.Name
			}
			return "spans: " + strings.Join(names, " ")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return "(trace not recorded)"
}

func nodeByURL(nodes []*node, url string) *node {
	for _, nd := range nodes {
		if nd.url == url {
			return nd
		}
	}
	log.Fatalf("no node advertises %s", url)
	return nil
}

func waitUntil(what string, cond func() bool) {
	for i := 0; i < 400; i++ {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	log.Fatalf("timed out waiting for %s", what)
}

func totalRuns(nodes []*node) int {
	total := 0
	for _, nd := range nodes {
		total += metricValue(nd.url, "linksynthd_solver_runs_total")
	}
	return total
}

func metricValue(url, name string) int {
	var v int
	fmt.Sscanf(metricLine(url, name), name+" %d", &v)
	return v
}

func metricLine(url, name string) string {
	body, _ := get(url + "/metrics")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			return line
		}
	}
	return name + " ?"
}

func post(url string, v any) ([]byte, http.Header) {
	b, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 && resp.StatusCode != 202 {
		log.Fatalf("%s: %d: %s", url, resp.StatusCode, body)
	}
	return body, resp.Header
}

func get(url string) ([]byte, http.Header) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return body, resp.Header
}
