// The snowflake example walks Example 5.6 of the paper: a Students fact
// table with foreign keys into Majors and Courses, and Majors itself
// depending on Departments. The solver completes the three FK columns in
// BFS order, allowing the Students->Courses step to use a CC that spans the
// already-completed Students ⋈ Majors view.
package main

import (
	"fmt"
	"log"
	"strings"

	linksynth "repro"
	"repro/internal/core"
	"repro/internal/snowflake"
)

func main() {
	students := linksynth.NewRelation("Students", linksynth.NewSchema(
		linksynth.IntCol("sid"), linksynth.IntCol("Year"), linksynth.StrCol("Honors"),
		linksynth.IntCol("majorID"), linksynth.IntCol("courseID")))
	for i := int64(1); i <= 30; i++ {
		honors := "no"
		if i%4 == 0 {
			honors = "yes"
		}
		students.MustAppend(linksynth.Int(i), linksynth.Int(1+(i%4)), linksynth.String(honors),
			linksynth.Null(), linksynth.Null())
	}
	majors := linksynth.NewRelation("Majors", linksynth.NewSchema(
		linksynth.IntCol("mid"), linksynth.StrCol("Field"), linksynth.IntCol("deptID")))
	for i, f := range []string{"CS", "Math", "Bio", "CS", "Math", "Bio", "CS", "Physics"} {
		majors.MustAppend(linksynth.Int(int64(i+1)), linksynth.String(f), linksynth.Null())
	}
	courses := linksynth.NewRelation("Courses", linksynth.NewSchema(
		linksynth.IntCol("cid"), linksynth.StrCol("Level")))
	for i, l := range []string{"Intro", "Intro", "Advanced", "Advanced", "Seminar"} {
		courses.MustAppend(linksynth.Int(int64(i+1)), linksynth.String(l))
	}
	departments := linksynth.NewRelation("Departments", linksynth.NewSchema(
		linksynth.IntCol("did"), linksynth.StrCol("School")))
	departments.MustAppend(linksynth.Int(1), linksynth.String("Engineering"))
	departments.MustAppend(linksynth.Int(2), linksynth.String("Science"))

	schema := &snowflake.Schema{
		Fact: "Students",
		Rels: map[string]*linksynth.Relation{
			"Students": students, "Majors": majors, "Courses": courses, "Departments": departments,
		},
		Keys: map[string]string{"Students": "sid", "Majors": "mid", "Courses": "cid", "Departments": "did"},
		Edges: []snowflake.Edge{
			{From: "Students", To: "Majors", FKCol: "majorID", KeyCol: "mid"},
			{From: "Students", To: "Courses", FKCol: "courseID", KeyCol: "cid"},
			{From: "Majors", To: "Departments", FKCol: "deptID", KeyCol: "did"},
		},
	}

	parse := func(src string) ([]linksynth.CC, []linksynth.DC) {
		ccs, dcs, err := linksynth.ParseConstraints(strings.NewReader(src))
		if err != nil {
			log.Fatal(err)
		}
		return ccs, dcs
	}
	majorCCs, majorDCs := parse(`
cc: count(Field = 'CS') = 12
cc: count(Field = 'Math') = 9
cc: count(Field = 'Bio') = 6
cc: count(Field = 'Physics') = 3
# At most one honors student per major.
dc: deny t1.Honors = 'yes' & t2.Honors = 'yes'
`)
	// This step's CC spans the accumulated Students ⋈ Majors view: "Field"
	// comes from the Majors table completed one step earlier.
	courseCCs, _ := parse(`
cc: count(Field = 'CS', Level = 'Advanced') = 5
cc: count(Level = 'Intro') = 14
`)

	res, err := snowflake.Solve(schema, map[string]snowflake.StepConstraints{
		"Students->Majors":  {CCs: majorCCs, DCs: majorDCs},
		"Students->Courses": {CCs: courseCCs},
	}, core.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("completion order:")
	for i, e := range res.Order {
		fmt.Printf("  step %d: %s (R2 gained %d tuples)\n", i+1, snowflake.EdgeLabel(e), res.Steps[i].Stats.AddedR2Tuples)
	}
	fmt.Println("\ncompleted Students:")
	fmt.Println(res.Rels["Students"])
	fmt.Println("completed Majors (note any synthetic rows added for the honors DC):")
	fmt.Println(res.Rels["Majors"])

	fmt.Printf("honors-per-major DC violations: %.3f (guaranteed 0)\n",
		linksynth.DCErrorFraction(res.Rels["Students"], "majorID", majorDCs))
}
