// The service example is a client walkthrough of the linksynthd HTTP API.
// It starts an in-process server on a loopback port, then drives it the way
// an external client would: a synchronous solve, the byte-identical cache
// hit for the repeated instance, an asynchronous batch job polled to
// completion, and a look at /metrics.
//
// Against a standalone server (`go run ./cmd/linksynthd`), the same
// requests work verbatim with curl; see the README's "Running the service"
// section.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/service"
)

const constraints = `cc owners_chi: count(Rel = 'Owner', Area = 'Chicago') = 2
cc owners_nyc: count(Rel = 'Owner', Area = 'NYC') = 1
dc one_owner: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'`

func instance() service.InstanceJSON {
	return service.InstanceJSON{
		R1: &service.RelationJSON{
			Name: "Persons",
			Columns: []service.ColumnJSON{
				{Name: "pid", Type: "int"}, {Name: "Age", Type: "int"},
				{Name: "Rel", Type: "string"}, {Name: "hid", Type: "int"},
			},
			Rows: [][]any{
				{1, 70, "Owner", nil}, {2, 25, "Owner", nil},
				{3, 24, "Spouse", nil}, {4, 30, "Owner", nil},
			},
		},
		R2: &service.RelationJSON{
			Name: "Housing",
			Columns: []service.ColumnJSON{
				{Name: "hid", Type: "int"}, {Name: "Area", Type: "string"},
			},
			Rows: [][]any{{1, "Chicago"}, {2, "Chicago"}, {3, "NYC"}, {4, "NYC"}},
		},
		K1: "pid", K2: "hid", FK: "hid",
		Constraints: constraints,
	}
}

func main() {
	// A real deployment runs `linksynthd`; here the server lives in-process
	// so the example is self-contained.
	c, err := cache.Open("", 256)
	if err != nil {
		log.Fatal(err)
	}
	srv := service.New(service.Config{Cache: c, Workers: -1})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// 1. Synchronous solve.
	req := service.SolveRequest{InstanceJSON: instance(), Options: &service.OptionsJSON{Seed: 1}}
	body, hdr := post(base+"/v1/solve", req)
	var sr service.SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /v1/solve        -> cache %s, key %s...\n", hdr, sr.Key[:12])
	fmt.Printf("  R1Hat FK column: %v\n", column(sr.Result.R1Hat, 3))
	fmt.Printf("  CC errors %v, DC error %v\n\n", sr.Result.CCErrors, sr.Result.DCError)

	// 2. The identical instance again: served from the cache, byte-identical.
	body2, hdr2 := post(base+"/v1/solve", req)
	fmt.Printf("POST /v1/solve again  -> cache %s, byte-identical: %v\n\n", hdr2, bytes.Equal(body, body2))

	// 3. Asynchronous batch job.
	batch := service.BatchRequest{
		Instances: []service.InstanceJSON{instance(), perturbed()},
		Options:   &service.OptionsJSON{Seed: 1},
	}
	accept, _ := post(base+"/v1/batch", batch)
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(accept, &job); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /v1/batch        -> %s (%s)\n", job.ID, job.Status)
	for job.Status != "done" && job.Status != "canceled" {
		time.Sleep(10 * time.Millisecond)
		st, _ := get(base + "/v1/jobs/" + job.ID)
		if err := json.Unmarshal(st, &job); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("GET /v1/jobs/%s   -> %s (first instance was a cache hit)\n\n", job.ID, job.Status)

	// 4. Metrics.
	metrics, _ := get(base + "/metrics")
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "linksynthd_cache_") || strings.HasPrefix(line, "linksynthd_solver_runs") {
			fmt.Println(line)
		}
	}
}

// perturbed is instance() with one age changed: a distinct content address.
func perturbed() service.InstanceJSON {
	inst := instance()
	inst.R1.Rows[1][1] = 26
	return inst
}

func column(r service.RelationJSON, j int) []any {
	var out []any
	for _, row := range r.Rows {
		out = append(out, row[j])
	}
	return out
}

func post(url string, v any) ([]byte, string) {
	b, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 && resp.StatusCode != 202 {
		log.Fatalf("%s: %d: %s", url, resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Linksynth-Cache")
}

func get(url string) ([]byte, string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return body, resp.Header.Get("X-Linksynth-Cache")
}
