// The durability example walks through linksynthd's durable store: a node
// with a data directory solves a base instance and a warm-start delta, gets
// kill -9'd (no graceful shutdown), and a fresh process over the same
// directory answers the replayed delta byte-identically — zero solver runs,
// zero cold solves — because the result cache log, the columnar relation
// snapshots, and the session record (constraints, options, compiled plan)
// all survived. A delta never seen before the crash also solves warm: the
// restored session carries the persisted plan.
//
// A real deployment is just `linksynthd -data-dir /var/lib/linksynth`; see
// the README's "Durability & restarts" section.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/service"
	"repro/internal/store"
)

const constraints = `cc owners_chi: count(Rel = 'Owner', Area = 'Chicago') = 2
cc owners_nyc: count(Rel = 'Owner', Area = 'NYC') = 1
dc one_owner: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'`

func instance() service.InstanceJSON {
	return service.InstanceJSON{
		R1: &service.RelationJSON{
			Name: "Persons",
			Columns: []service.ColumnJSON{
				{Name: "pid", Type: "int"}, {Name: "Age", Type: "int"},
				{Name: "Rel", Type: "string"}, {Name: "hid", Type: "int"},
			},
			Rows: [][]any{
				{1, 70, "Owner", nil}, {2, 25, "Owner", nil},
				{3, 24, "Spouse", nil}, {4, 30, "Owner", nil},
			},
		},
		R2: &service.RelationJSON{
			Name: "Housing",
			Columns: []service.ColumnJSON{
				{Name: "hid", Type: "int"}, {Name: "Area", Type: "string"},
			},
			Rows: [][]any{{1, "Chicago"}, {2, "Chicago"}, {3, "NYC"}, {4, "NYC"}},
		},
		K1: "pid", K2: "hid", FK: "hid",
		Constraints: constraints,
	}
}

// node is one linksynthd "process": a Server wired to a store and a cache
// rooted in the shared data directory, exactly as -data-dir does.
type node struct {
	url string
	srv *service.Server
	hs  *http.Server
}

func startNode(dataDir string) *node {
	st, err := store.Open(dataDir)
	if err != nil {
		log.Fatal(err)
	}
	c, err := cache.Open(st.CacheDir(), 256)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	nd := &node{url: "http://" + ln.Addr().String()}
	nd.srv = service.New(service.Config{Cache: c, Workers: -1, Store: st})
	nd.hs = &http.Server{Handler: nd.srv}
	go nd.hs.Serve(ln)
	return nd
}

func main() {
	dataDir, err := os.MkdirTemp("", "linksynth-durability-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)

	// Process 1: solve a base and a what-if delta against it.
	nd := startNode(dataDir)
	fmt.Printf("process 1 on %s, data dir %s\n\n", nd.url, dataDir)

	baseBody, hdr := post(nd.url+"/v1/solve", service.SolveRequest{
		InstanceJSON: instance(), Options: &service.OptionsJSON{Seed: 1}})
	var base service.SolveResponse
	if err := json.Unmarshal(baseBody, &base); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /v1/solve (base)   -> cache %-5s key %s…\n", hdr.Get("X-Linksynth-Cache"), base.Key[:12])

	delta := service.SolveRequest{Base: base.Key, Delta: &service.DeltaJSON{
		CCTargets: map[string]int64{"0": 3},
		R1Edits:   []service.CellEditJSON{{Row: 3, Col: "Rel", Val: "Spouse"}},
	}}
	deltaBody, hdr := post(nd.url+"/v1/solve", delta)
	fmt.Printf("POST /v1/solve (delta)  -> incr %-8s %d bytes\n", hdr.Get("X-Linksynth-Incr"), len(deltaBody))

	// The persister writes session state off the request path; wait for it
	// to land before crashing (an orderly Close would flush it instead).
	for !strings.Contains(metricLine(nd.url, "linksynthd_store_sessions_persisted_total"), " 1") {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("durable: %s / %s / %s\n\n",
		metricLine(nd.url, "linksynthd_store_snapshots"),
		metricLine(nd.url, "linksynthd_store_sessions"),
		metricLine(nd.url, "linksynthd_cache_entries"))

	// kill -9: drop the listener and abandon the process state. No flush,
	// no session drain — only what was already durable survives.
	nd.hs.Close()
	fmt.Println("process 1 killed (no graceful shutdown)")

	// Process 2: same data directory, empty memory.
	nd2 := startNode(dataDir)
	fmt.Printf("process 2 on %s\n\n", nd2.url)

	replay, hdr := post(nd2.url+"/v1/solve", delta)
	fmt.Printf("POST /v1/solve (same delta) -> cache %-5s byte-identical: %v\n",
		hdr.Get("X-Linksynth-Cache"), bytes.Equal(replay, deltaBody))
	fmt.Printf("  %s\n", metricLine(nd2.url, "linksynthd_solver_runs_total"))
	fmt.Printf("  %s\n", metricLine(nd2.url, "linksynthd_incr_cold_solves_total"))
	fmt.Printf("  %s\n\n", metricLine(nd2.url, "linksynthd_store_sessions_restored_total"))

	// A delta the first process never saw: solved, but warm — the restored
	// session adopted the persisted plan.
	fresh := service.SolveRequest{Base: base.Key, Delta: &service.DeltaJSON{
		R1Edits: []service.CellEditJSON{{Row: 1, Col: "Age", Val: 33}},
	}}
	_, hdr = post(nd2.url+"/v1/solve", fresh)
	fmt.Printf("POST /v1/solve (new delta)  -> incr %-8s\n", hdr.Get("X-Linksynth-Incr"))
	fmt.Printf("  %s (still zero)\n", metricLine(nd2.url, "linksynthd_incr_cold_solves_total"))

	nd2.srv.Close()
}

func metricLine(url, name string) string {
	body, _ := get(url + "/metrics")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			return line
		}
	}
	return name + " ?"
}

func post(url string, v any) ([]byte, http.Header) {
	b, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("%s: %d: %s", url, resp.StatusCode, body)
	}
	return body, resp.Header
}

func get(url string) ([]byte, http.Header) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return body, resp.Header
}
