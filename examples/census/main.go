// The census example is the paper's evaluation scenario in miniature: a
// synthetic census-like database (Persons missing their household ids,
// Housing with tenure and area), a large generated CC set, and the twelve
// Table 4 denial constraints. It runs the hybrid and both baselines and
// prints the Figure 8-style error comparison plus the runtime breakdown.
package main

import (
	"flag"
	"fmt"
	"log"

	linksynth "repro"
	"repro/internal/census"
	"repro/internal/metrics"
)

func main() {
	households := flag.Int("households", 500, "household count")
	nCC := flag.Int("ccs", 80, "cardinality constraints")
	bad := flag.Bool("bad-ccs", false, "use the intersecting (bad) CC family")
	flag.Parse()

	d := census.Generate(census.Config{Households: *households, Areas: 8, Seed: 7})
	ccs := d.GoodCCs(*nCC)
	family := "good"
	if *bad {
		ccs = d.BadCCs(*nCC)
		family = "bad"
	}
	dcs := census.AllDCs()
	fmt.Printf("census instance: %d persons, %d households, %d %s CCs, %d DCs\n\n",
		d.Persons.Len(), d.Housing.Len(), len(ccs), family, len(dcs))

	algos := []struct {
		name string
		opt  linksynth.Options
	}{
		{"baseline", linksynth.BaselineOptions(7)},
		{"baseline+marginals", linksynth.BaselineMarginalsOptions(7)},
		{"hybrid (paper)", linksynth.Options{Seed: 7}},
	}
	fmt.Printf("%-20s %-12s %-12s %-10s %-10s %s\n",
		"algorithm", "CCerr-median", "CCerr-mean", "DCerr", "addedR2", "time")
	for _, a := range algos {
		in := linksynth.Input{R1: d.Persons, R2: d.Housing, K1: "pid", K2: "hid", FK: "hid",
			CCs: ccs, DCs: dcs}
		res, err := linksynth.Solve(in, a.opt)
		if err != nil {
			log.Fatal(err)
		}
		errs := linksynth.CCErrors(res.VJoin, ccs)
		fmt.Printf("%-20s %-12.4f %-12.4f %-10.4f %-10d %v\n",
			a.name, metrics.Median(errs), metrics.Mean(errs),
			linksynth.DCErrorFraction(res.R1Hat, "hid", dcs),
			res.Stats.AddedR2Tuples, res.Stats.Total)
		if a.name == "hybrid (paper)" {
			fmt.Printf("\nhybrid breakdown: pairwise %v, recursion %v, ILP %v, coloring %v\n",
				res.Stats.Pairwise, res.Stats.Recursion, res.Stats.ILPTime, res.Stats.Coloring)
			fmt.Printf("hybrid routing:   %d CCs via Hasse recursion, %d via ILP\n",
				res.Stats.CCsToHasse, res.Stats.CCsToILP)
		}
	}
}
