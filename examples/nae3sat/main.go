// The nae3sat example demonstrates the NP-hardness reduction of
// Proposition 2.8: a Not-All-Equal 3-SAT formula is encoded as a
// C-Extension instance whose R1 holds one tuple per (variable, polarity,
// clause) occurrence, whose R2 offers the two truth values as foreign keys,
// and whose two DCs force (1) consistent variable assignments and (2) at
// least one literal per clause on each side. A proper FK completion *is* an
// NAE-satisfying assignment.
package main

import (
	"fmt"
	"log"
	"strings"

	linksynth "repro"
)

// clause is a 3-literal clause; negative ints are negated variables (1-based).
type clause [3]int

func main() {
	// (x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ x2 ∨ ¬x4) ∧ (x3 ∨ ¬x2 ∨ x4):
	// NAE-satisfiable, e.g. x1=T, x2=F, x3=F, x4=T.
	formula := []clause{{1, 2, 3}, {-1, 2, -4}, {3, -2, 4}}

	r1 := linksynth.NewRelation("Occurrences", linksynth.NewSchema(
		linksynth.IntCol("id"), linksynth.StrCol("Var"), linksynth.IntCol("Alpha"),
		linksynth.StrCol("Cls"), linksynth.IntCol("Chosen")))
	id := int64(1)
	for ci, cl := range formula {
		for _, lit := range cl {
			v, alpha := lit, int64(1)
			if lit < 0 {
				v, alpha = -lit, 0
			}
			r1.MustAppend(linksynth.Int(id), linksynth.String(fmt.Sprintf("x%d", v)),
				linksynth.Int(alpha), linksynth.String(fmt.Sprintf("C%d", ci+1)), linksynth.Null())
			id++
		}
	}
	// R2: Chosen ∈ {0, 1} with a dummy payload column E.
	r2 := linksynth.NewRelation("Truth", linksynth.NewSchema(
		linksynth.IntCol("Chosen"), linksynth.StrCol("E")))
	r2.MustAppend(linksynth.Int(0), linksynth.String("a"))
	r2.MustAppend(linksynth.Int(1), linksynth.String("b"))

	_, dcs, err := linksynth.ParseConstraints(strings.NewReader(`
# (1) A variable cannot be "chosen" with both polarities.
dc consistency: deny t1.Var = t2.Var & t1.Alpha != t2.Alpha
# (2) No clause may have all three occurrences on the same side.
dc nae: deny t1.Cls = t2.Cls & t2.Cls = t3.Cls
`))
	if err != nil {
		log.Fatal(err)
	}

	in := linksynth.Input{R1: r1, R2: r2, K1: "id", K2: "Chosen", FK: "Chosen", DCs: dcs}
	res, err := linksynth.Solve(in, linksynth.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("occurrence table with completed Chosen column:")
	fmt.Println(res.R1Hat)
	if res.Stats.AddedR2Tuples > 0 {
		fmt.Printf("solver had to invent %d truth values -> formula is NOT NAE-satisfiable\n",
			res.Stats.AddedR2Tuples)
		return
	}

	// Decode the assignment: Chosen=1 means "assign the literal's polarity".
	assign := map[string]bool{}
	for i := 0; i < res.R1Hat.Len(); i++ {
		v := res.R1Hat.Value(i, "Var").Str()
		alpha := res.R1Hat.Value(i, "Alpha").Int() == 1
		chosen := res.R1Hat.Value(i, "Chosen").Int() == 1
		assign[v] = (alpha == chosen)
	}
	fmt.Println("decoded NAE assignment:")
	for v, val := range assign {
		fmt.Printf("  %s = %v\n", v, val)
	}
	// Verify: every clause has at least one true and one false literal.
	for ci, cl := range formula {
		trues := 0
		for _, lit := range cl {
			v := fmt.Sprintf("x%d", abs(lit))
			val := assign[v]
			if lit < 0 {
				val = !val
			}
			if val {
				trues++
			}
		}
		status := "NAE-satisfied"
		if trues == 0 || trues == 3 {
			status = "VIOLATED"
		}
		fmt.Printf("  clause C%d: %d/3 literals true -> %s\n", ci+1, trues, status)
	}
	fmt.Printf("DC violations: %.3f\n", linksynth.DCErrorFraction(res.R1Hat, "Chosen", dcs))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
