// The incr example walks the incremental solve engine through a what-if
// workload: open a session over one census instance, solve it cold, then
// probe alternative scenarios — a CC bound nudged, a few attribute cells
// edited, rows appended — as deltas against the same base. Every delta
// re-solve is byte-identical to a cold solve of the patched instance (the
// example verifies one of them), but reuses the session's compiled problem
// and splices the untouched phase-2 partitions, which is where the speedup
// comes from.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	linksynth "repro"
	"repro/internal/census"
)

func main() {
	households := flag.Int("households", 400, "households in the base instance")
	nCC := flag.Int("ccs", 80, "cardinality constraints")
	flag.Parse()

	d := census.Generate(census.Config{Households: *households, Areas: 6, Seed: 1})
	in := linksynth.Input{R1: d.Persons, R2: d.Housing,
		K1: "pid", K2: "hid", FK: "hid", CCs: d.GoodCCs(*nCC), DCs: census.AllDCs()}
	opt := linksynth.Options{Seed: 1}

	sess, err := linksynth.Open(in, opt)
	if err != nil {
		log.Fatalf("open session: %v", err)
	}

	t0 := time.Now()
	base, err := sess.Solve()
	if err != nil {
		log.Fatalf("base solve: %v", err)
	}
	fmt.Printf("base solve:   %8v  (%d partitions, %d rows)\n",
		time.Since(t0).Round(time.Microsecond), base.Stats.Partitions, base.R1Hat.Len())

	// What-if 1: nudge one CC bound (the Ntarget-shift workload).
	t0 = time.Now()
	res, _, err := sess.Resolve(linksynth.Delta{
		CCTargets: map[int]int64{0: in.CCs[0].Target + 2},
	})
	if err != nil {
		log.Fatalf("bound nudge: %v", err)
	}
	fmt.Printf("bound nudge:  %8v  (%d/%d partitions spliced)\n",
		time.Since(t0).Round(time.Microsecond), res.Stats.SplicedPartitions, res.Stats.Partitions)

	// What-if 2: edit a couple of attribute cells. Deltas are relative to
	// the base, so this scenario does NOT include the bound nudge above.
	edit := linksynth.Delta{R1Edits: []linksynth.CellEdit{
		{Row: 3, Col: "Age", Val: linksynth.Int(44)},
		{Row: 11, Col: "Age", Val: linksynth.Int(52)},
	}}
	t0 = time.Now()
	res, _, err = sess.Resolve(edit)
	if err != nil {
		log.Fatalf("cell edits: %v", err)
	}
	fmt.Printf("cell edits:   %8v  (%d/%d partitions spliced)\n",
		time.Since(t0).Round(time.Microsecond), res.Stats.SplicedPartitions, res.Stats.Partitions)

	// What-if 3: append new rows to R1.
	t0 = time.Now()
	resApp, _, err := sess.Resolve(linksynth.Delta{R1Appends: [][]linksynth.Value{
		{linksynth.Int(900001), linksynth.String("Member"), linksynth.Int(48), linksynth.Int(0), linksynth.Null()},
		{linksynth.Int(900002), linksynth.String("Member"), linksynth.Int(31), linksynth.Int(1), linksynth.Null()},
	}})
	if err != nil {
		log.Fatalf("appends: %v", err)
	}
	fmt.Printf("row appends:  %8v  (%d/%d partitions spliced, R1 now %d rows)\n",
		time.Since(t0).Round(time.Microsecond), resApp.Stats.SplicedPartitions, resApp.Stats.Partitions,
		resApp.R1Hat.Len())

	// The contract: a delta re-solve is byte-identical to a cold solve of
	// the patched instance. Verify the cell-edit scenario end to end.
	patched := in
	patched.R1 = in.R1.Clone()
	for _, ed := range edit.R1Edits {
		patched.R1.Set(ed.Row, ed.Col, ed.Val)
	}
	cold, err := linksynth.Solve(patched, opt)
	if err != nil {
		log.Fatalf("cold verify solve: %v", err)
	}
	warmAgain, warmKey, err := sess.Resolve(edit)
	if err != nil {
		log.Fatalf("re-resolve: %v", err)
	}
	coldKey, err := linksynth.Fingerprint(patched, opt)
	if err != nil {
		log.Fatalf("fingerprint: %v", err)
	}
	if warmKey != coldKey {
		log.Fatalf("warm key %x != cold key %x", warmKey, coldKey)
	}
	if h1, h2 := relHash(warmAgain.R1Hat)+relHash(warmAgain.R2Hat)+relHash(warmAgain.VJoin),
		relHash(cold.R1Hat)+relHash(cold.R2Hat)+relHash(cold.VJoin); h1 != h2 {
		log.Fatalf("warm result differs from cold result")
	}
	fmt.Printf("\nverified: delta re-solve ≡ cold solve of the patched instance (key %x…)\n", coldKey[:6])
}

// relHash digests a relation's content.
func relHash(r *linksynth.Relation) string {
	var b strings.Builder
	for i := 0; i < r.Len(); i++ {
		for _, v := range r.Row(i) {
			b.WriteString(v.String())
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(b.String())))
}
