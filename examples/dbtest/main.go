// The dbtest example demonstrates the DBMS-testing motivation from the
// paper's introduction: integrity constraints change the performance
// characteristics of queries, so a synthetic test database must satisfy
// them. We generate the same census instance twice — once with the
// DC-ignoring baseline, once with the hybrid — and compare the shape of
//
//	SELECT hid, COUNT(*) FROM Persons WHERE Rel = 'Owner' GROUP BY hid
//
// Under the "one householder per home" DC every group has size 1, so the
// group-by yields exactly one row per owner; the baseline's random FK
// assignment piles owners into shared households, shrinking the output and
// skewing group sizes — precisely the distortion that makes a test
// database unrepresentative.
package main

import (
	"fmt"
	"log"

	linksynth "repro"
	"repro/internal/census"
)

func main() {
	d := census.Generate(census.Config{Households: 400, Areas: 8, Seed: 11})
	dcs := census.AllDCs()
	ccs := d.GoodCCs(60)

	mkInput := func() linksynth.Input {
		return linksynth.Input{
			R1: d.Persons.Clone(), R2: d.Housing.Clone(),
			K1: "pid", K2: "hid", FK: "hid", CCs: ccs, DCs: dcs,
		}
	}

	base, err := linksynth.Solve(mkInput(), linksynth.BaselineOptions(11))
	if err != nil {
		log.Fatal(err)
	}
	hyb, err := linksynth.Solve(mkInput(), linksynth.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query: SELECT hid, COUNT(*) FROM Persons WHERE Rel='Owner' GROUP BY hid")
	fmt.Println()
	report("baseline (ignores DCs)", base.R1Hat)
	report("hybrid (DCs hold)     ", hyb.R1Hat)
	fmt.Println()
	fmt.Println("With the one-owner-per-home DC enforced, the group count equals the")
	fmt.Println("owner count and the maximum group size is 1 — the cardinalities a")
	fmt.Println("query optimizer would see on real census data. The baseline's output")
	fmt.Println("is smaller and skewed, so plans tested against it are unrealistic.")
}

func report(name string, persons *linksynth.Relation) {
	owners := 0
	groups := make(map[linksynth.Value]int)
	for i := 0; i < persons.Len(); i++ {
		if persons.Value(i, "Rel").Str() != census.RelOwner {
			continue
		}
		owners++
		groups[persons.Value(i, "hid")]++
	}
	maxSize, sum := 0, 0
	for _, n := range groups {
		sum += n
		if n > maxSize {
			maxSize = n
		}
	}
	avg := 0.0
	if len(groups) > 0 {
		avg = float64(sum) / float64(len(groups))
	}
	fmt.Printf("%s  owners=%d  group-by rows=%d  max group=%d  avg group=%.2f\n",
		name, owners, len(groups), maxSize, avg)
}
