// The quickstart example runs the paper's running example end to end:
// Figure 1's Persons/Housing relations, Figure 2's four cardinality
// constraints and five denial constraints, solved with the hybrid. The
// output reproduces the semantics of Figures 3 (filled R1), 5 (filled join
// view) and 7 (zero DC violations).
package main

import (
	"fmt"
	"log"
	"strings"

	linksynth "repro"
)

const constraints = `
# Figure 2b: cardinality constraints over Persons ⋈ Housing.
cc cc1: count(Rel = 'Owner', Area = 'Chicago') = 4
cc cc2: count(Rel = 'Owner', Area = 'NYC') = 2
cc cc3: count(Age <= 24, Area = 'Chicago') = 3
cc cc4: count(Multi = 1, Area = 'Chicago') = 4

# Figure 2a: foreign-key denial constraints over Persons.
dc oo:  deny t1.Rel = 'Owner' & t2.Rel = 'Owner'
dc osl: deny t1.Rel = 'Owner' & t2.Rel = 'Spouse' & t2.Age < t1.Age - 50
dc osu: deny t1.Rel = 'Owner' & t2.Rel = 'Spouse' & t2.Age > t1.Age + 50
dc ocl: deny t1.Rel = 'Owner' & t1.Multi = 1 & t2.Rel = 'Child' & t2.Age < t1.Age - 50
dc ocu: deny t1.Rel = 'Owner' & t1.Multi = 1 & t2.Rel = 'Child' & t2.Age > t1.Age - 12
`

func main() {
	// Figure 1: Persons with the hid column missing.
	persons := linksynth.NewRelation("Persons", linksynth.NewSchema(
		linksynth.IntCol("pid"), linksynth.IntCol("Age"), linksynth.StrCol("Rel"),
		linksynth.IntCol("Multi"), linksynth.IntCol("hid")))
	for _, p := range []struct {
		pid, age int64
		rel      string
		multi    int64
	}{
		{1, 75, "Owner", 0}, {2, 75, "Owner", 1}, {3, 25, "Owner", 0},
		{4, 25, "Owner", 1}, {5, 24, "Spouse", 0}, {6, 10, "Child", 1},
		{7, 10, "Child", 1}, {8, 30, "Owner", 0}, {9, 30, "Owner", 1},
	} {
		persons.MustAppend(linksynth.Int(p.pid), linksynth.Int(p.age),
			linksynth.String(p.rel), linksynth.Int(p.multi), linksynth.Null())
	}
	housing := linksynth.NewRelation("Housing", linksynth.NewSchema(
		linksynth.IntCol("hid"), linksynth.StrCol("Area")))
	for i, area := range []string{"Chicago", "Chicago", "Chicago", "Chicago", "NYC", "NYC"} {
		housing.MustAppend(linksynth.Int(int64(i+1)), linksynth.String(area))
	}

	ccs, dcs, err := linksynth.ParseConstraints(strings.NewReader(constraints))
	if err != nil {
		log.Fatal(err)
	}

	in := linksynth.Input{R1: persons, R2: housing, K1: "pid", K2: "hid", FK: "hid", CCs: ccs, DCs: dcs}
	res, err := linksynth.Solve(in, linksynth.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Input (Figure 1):")
	fmt.Println(persons)
	fmt.Println("Completed R̂1 (cf. Figure 3):")
	fmt.Println(res.R1Hat)
	fmt.Println("Join view (cf. Figure 5):")
	fmt.Println(res.VJoin)

	fmt.Println("Constraint check:")
	for i, e := range linksynth.CCErrors(res.VJoin, ccs) {
		fmt.Printf("  %-4s %-55s error %.3f\n", ccs[i].Name, ccs[i].String(), e)
	}
	fmt.Printf("  DC violation fraction: %.3f (the paper's guarantee: always 0)\n",
		linksynth.DCErrorFraction(res.R1Hat, "hid", dcs))
}
