GO ?= go
VETTOOL := $(CURDIR)/bin/linksynthvet

.PHONY: all build test race lint fmt vet bench clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The repo-specific static verifier: builds cmd/linksynthvet and runs it
# over the tree through `go vet -vettool`, so findings fail the build the
# same way they do in CI. See README "Development" for the analyzer list
# and the //lint:<token> suppression vocabulary.
lint: $(VETTOOL)
	$(GO) vet -vettool=$(VETTOOL) ./...

$(VETTOOL): $(shell find cmd/linksynthvet internal/analysis -name '*.go' -not -path '*/testdata/*' 2>/dev/null)
	@mkdir -p bin
	$(GO) build -o $(VETTOOL) ./cmd/linksynthvet

fmt:
	gofmt -s -w $(shell $(GO) list -f '{{.Dir}}' ./...)

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

clean:
	rm -rf bin
