package linksynth

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// apiInput is the paper's running example built purely through the public
// API surface.
func apiInput(t *testing.T) Input {
	t.Helper()
	persons := NewRelation("Persons", NewSchema(
		IntCol("pid"), IntCol("Age"), StrCol("Rel"), IntCol("Multi"), IntCol("hid")))
	for _, p := range []struct {
		pid, age int64
		rel      string
		multi    int64
	}{
		{1, 75, "Owner", 0}, {2, 75, "Owner", 1}, {3, 25, "Owner", 0},
		{4, 25, "Owner", 1}, {5, 24, "Spouse", 0}, {6, 10, "Child", 1},
		{7, 10, "Child", 1}, {8, 30, "Owner", 0}, {9, 30, "Owner", 1},
	} {
		persons.MustAppend(Int(p.pid), Int(p.age), String(p.rel), Int(p.multi), Null())
	}
	housing := NewRelation("Housing", NewSchema(IntCol("hid"), StrCol("Area")))
	for i, area := range []string{"Chicago", "Chicago", "Chicago", "Chicago", "NYC", "NYC"} {
		housing.MustAppend(Int(int64(i+1)), String(area))
	}
	ccs, dcs, err := ParseConstraints(strings.NewReader(`
cc: count(Rel = 'Owner', Area = 'Chicago') = 4
cc: count(Rel = 'Owner', Area = 'NYC') = 2
dc: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'
`))
	if err != nil {
		t.Fatal(err)
	}
	return Input{R1: persons, R2: housing, K1: "pid", K2: "hid", FK: "hid", CCs: ccs, DCs: dcs}
}

func TestPublicAPISolve(t *testing.T) {
	in := apiInput(t)
	res, err := Solve(in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.VJoin.Len() != 9 {
		t.Fatalf("|VJoin| = %d", res.VJoin.Len())
	}
	for _, e := range CCErrors(res.VJoin, in.CCs) {
		if e != 0 {
			t.Errorf("CC error %v", e)
		}
	}
	if f := DCErrorFraction(res.R1Hat, "hid", in.DCs); f != 0 {
		t.Errorf("DC error %v", f)
	}
}

func TestPublicAPISolveBatch(t *testing.T) {
	inputs := []Input{apiInput(t), apiInput(t), apiInput(t)}
	results, err := SolveBatch(inputs, Options{Seed: 1, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(inputs) {
		t.Fatalf("got %d results for %d inputs", len(results), len(inputs))
	}
	want, err := Solve(apiInput(t), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("instance %d: nil result", i)
		}
		for r := 0; r < res.R1Hat.Len(); r++ {
			if res.R1Hat.Value(r, "hid") != want.R1Hat.Value(r, "hid") {
				t.Errorf("instance %d row %d: batch FK differs from standalone Solve", i, r)
			}
		}
		if f := DCErrorFraction(res.R1Hat, "hid", inputs[i].DCs); f != 0 {
			t.Errorf("instance %d: DC error %v", i, f)
		}
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	for _, opt := range []Options{BaselineOptions(4), BaselineMarginalsOptions(4)} {
		res, err := Solve(apiInput(t), opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.R1Hat.Len() != 9 {
			t.Fatal("missing rows")
		}
	}
}

func TestParseHelpers(t *testing.T) {
	cc, err := ParseCC("cc: count(Rel = 'Owner') = 3")
	if err != nil || cc.Target != 3 {
		t.Errorf("ParseCC: %v %v", cc, err)
	}
	dc, err := ParseDC("dc: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'")
	if err != nil || dc.K != 2 {
		t.Errorf("ParseDC: %v %v", dc, err)
	}
}

func TestCSVRoundTripThroughAPI(t *testing.T) {
	dir := t.TempDir()
	in := apiInput(t)
	path := filepath.Join(dir, "housing.csv")
	if err := WriteCSVFile(path, in.R2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVFile(path, "Housing", in.R2.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != in.R2.Len() {
		t.Errorf("rows = %d", got.Len())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestModeConstantsExposed(t *testing.T) {
	res, err := Solve(apiInput(t), Options{Mode: ModeILPOnly, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CCsToILP == 0 {
		t.Error("ModeILPOnly did not route CCs to the ILP")
	}
	if _, err := Solve(apiInput(t), Options{Mode: ModeHasseOnly, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	_ = ModeHybrid
}
