package linksynth

// The benchmark harness: one testing.B benchmark per paper table/figure
// (regenerating the same rows via internal/experiments), plus
// micro-benchmarks for the substrate packages. Run with:
//
//	go test -bench=. -benchmem
//
// cmd/benchtab prints the actual table contents; these benchmarks time the
// regeneration and report instance metrics via b.ReportMetric.

import (
	"testing"

	"repro/internal/census"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hypergraph"
	"repro/internal/ilp"
	"repro/internal/metrics"
	"repro/internal/simplex"
)

func benchConfig() experiments.Config {
	return experiments.Config{
		Unit: 60, Areas: 4, NCC: 30,
		Scales: []int{1, 2}, LargeScales: []int{1, 2},
		Seed: 1,
	}
}

func benchExperiment(b *testing.B, run func(experiments.Config) (*experiments.Table, error)) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Generate regenerates Table 1 (data scales).
func BenchmarkTable1Generate(b *testing.B) { benchExperiment(b, experiments.Table1) }

// BenchmarkFig8a regenerates Figure 8a (errors vs scale, good CCs).
func BenchmarkFig8a(b *testing.B) { benchExperiment(b, experiments.Fig8a) }

// BenchmarkFig8b regenerates Figure 8b (errors vs scale, bad CCs).
func BenchmarkFig8b(b *testing.B) { benchExperiment(b, experiments.Fig8b) }

// BenchmarkFig9 regenerates Figure 9 (per-CC error distribution).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, experiments.Fig9) }

// BenchmarkFig10 regenerates Figure 10 (good/bad DC x CC combinations).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, experiments.Fig10) }

// BenchmarkFig11a regenerates Figure 11a (runtime baseline vs hybrid).
func BenchmarkFig11a(b *testing.B) { benchExperiment(b, experiments.Fig11a) }

// BenchmarkFig11b regenerates Figure 11b (hybrid runtime at larger scales).
func BenchmarkFig11b(b *testing.B) { benchExperiment(b, experiments.Fig11b) }

// BenchmarkFig12 regenerates Figure 12 (runtime vs number of R2 columns).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, experiments.Fig12) }

// BenchmarkFig13 regenerates Figure 13 (hybrid runtime breakdown).
func BenchmarkFig13(b *testing.B) { benchExperiment(b, experiments.Fig13) }

// BenchmarkCCSweep regenerates the CC-count sweep (datasets 13-22).
func BenchmarkCCSweep(b *testing.B) { benchExperiment(b, experiments.CCSweep) }

// BenchmarkNoiseSweep regenerates the noisy-target (DP motivation) sweep.
func BenchmarkNoiseSweep(b *testing.B) { benchExperiment(b, experiments.NoiseSweep) }

// BenchmarkAblations regenerates the design-choice ablation table.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, experiments.Ablations) }

// ---- Per-algorithm benchmarks (one solver run each) ----

func benchInstance(goodCC bool) (Input, []CC, []DC) {
	d := census.Generate(census.Config{Households: 150, Areas: 6, Seed: 3})
	var ccs []CC
	if goodCC {
		ccs = d.GoodCCs(60)
	} else {
		ccs = d.BadCCs(60)
	}
	dcs := census.AllDCs()
	return Input{R1: d.Persons, R2: d.Housing, K1: "pid", K2: "hid", FK: "hid",
		CCs: ccs, DCs: dcs}, ccs, dcs
}

func benchSolve(b *testing.B, goodCC bool, opt Options) {
	b.Helper()
	in, ccs, dcs := benchInstance(goodCC)
	b.ReportAllocs()
	b.ResetTimer()
	var last *Result
	for i := 0; i < b.N; i++ {
		res, err := Solve(in, opt)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	errs := metrics.CCErrors(last.VJoin, ccs)
	b.ReportMetric(metrics.Median(errs), "ccerr-median")
	b.ReportMetric(metrics.Mean(errs), "ccerr-mean")
	b.ReportMetric(DCErrorFraction(last.R1Hat, "hid", dcs), "dcerr")
}

// BenchmarkHybridGoodCCs times the paper's hybrid on S_good_CC.
func BenchmarkHybridGoodCCs(b *testing.B) { benchSolve(b, true, Options{Seed: 1}) }

// BenchmarkHybridBadCCs times the hybrid on S_bad_CC (ILP engaged).
func BenchmarkHybridBadCCs(b *testing.B) { benchSolve(b, false, Options{Seed: 1}) }

// BenchmarkBaseline times the plain baseline.
func BenchmarkBaseline(b *testing.B) { benchSolve(b, false, BaselineOptions(1)) }

// BenchmarkBaselineMarginals times the baseline with marginal augmentation.
func BenchmarkBaselineMarginals(b *testing.B) { benchSolve(b, false, BaselineMarginalsOptions(1)) }

// ---- Ablation benchmarks (DESIGN.md §5) ----

// BenchmarkAblationNoMarginals: Algorithm 1 without the all-way-marginal
// augmentation.
func BenchmarkAblationNoMarginals(b *testing.B) {
	benchSolve(b, false, Options{Seed: 1, NoMarginals: true})
}

// BenchmarkAblationILPOnly: force every CC through the ILP (no hybrid
// split).
func BenchmarkAblationILPOnly(b *testing.B) {
	benchSolve(b, false, Options{Seed: 1, Mode: core.ModeILPOnly})
}

// BenchmarkAblationNoPartition: one global conflict graph instead of the
// §5.2 partitioning.
func BenchmarkAblationNoPartition(b *testing.B) {
	benchSolve(b, false, Options{Seed: 1, NoPartition: true})
}

// BenchmarkAblationInputOrderColoring: Algorithm 3 without the
// largest-first order.
func BenchmarkAblationInputOrderColoring(b *testing.B) {
	benchSolve(b, false, Options{Seed: 1, Order: core.OrderInput})
}

// ---- Parallel-vs-serial and batch benchmarks ----
//
// These pin the end-to-end pipeline parallelization on a Table-1-scale
// instance; comparing BenchmarkSolveSerial against BenchmarkSolveParallel
// (and the batch pair) in BENCH_*.json tracks the multi-core speedup. On a
// single-core host the parallel numbers degrade gracefully to roughly the
// serial ones (the pool runs tasks inline when saturated).

func benchTable1Instance() Input {
	d := census.Generate(census.Config{Households: 400, Areas: 8, Seed: 5})
	return Input{R1: d.Persons, R2: d.Housing, K1: "pid", K2: "hid", FK: "hid",
		CCs: d.GoodCCs(120), DCs: census.AllDCs()}
}

func benchSolveWorkers(b *testing.B, workers int) {
	b.Helper()
	in := benchTable1Instance()
	opt := Options{Seed: 1, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(in, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveSerial is the sequential pipeline (Workers: 0).
func BenchmarkSolveSerial(b *testing.B) { benchSolveWorkers(b, 0) }

// BenchmarkSolveParallel2 runs both phases on a 2-worker pool.
func BenchmarkSolveParallel2(b *testing.B) { benchSolveWorkers(b, 2) }

// BenchmarkSolveParallel runs both phases on a GOMAXPROCS pool.
func BenchmarkSolveParallel(b *testing.B) { benchSolveWorkers(b, -1) }

func benchBatch(b *testing.B, workers int) {
	b.Helper()
	const instances = 4
	inputs := make([]Input, instances)
	for i := range inputs {
		d := census.Generate(census.Config{Households: 150, Areas: 6, Seed: int64(i + 1)})
		inputs[i] = Input{R1: d.Persons, R2: d.Housing, K1: "pid", K2: "hid", FK: "hid",
			CCs: d.GoodCCs(60), DCs: census.AllDCs()}
	}
	opt := Options{Seed: 1, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := SolveBatch(inputs, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != instances {
			b.Fatalf("got %d results", len(results))
		}
	}
}

// BenchmarkSolveBatchSerial schedules a 4-instance batch sequentially.
func BenchmarkSolveBatchSerial(b *testing.B) { benchBatch(b, 0) }

// BenchmarkSolveBatchParallel schedules the same batch over a GOMAXPROCS
// pool (instances fan out first; spare capacity flows to per-phase tasks).
func BenchmarkSolveBatchParallel(b *testing.B) { benchBatch(b, -1) }

// ---- Substrate micro-benchmarks ----

// BenchmarkTable4Edges times conflict-hypergraph construction for the
// twelve Table 4 DCs on one census partition worth of tuples.
func BenchmarkTable4Edges(b *testing.B) {
	in, _, _ := benchInstance(true)
	opt := Options{Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Solve(in, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.ConflictEdges), "edges")
	}
}

// BenchmarkTable5Classify times the pairwise CC classification (the
// "Pairwise Comparison" stage of Figure 13).
func BenchmarkTable5Classify(b *testing.B) {
	d := census.Generate(census.Config{Households: 100, Areas: 8, Seed: 2})
	ccs := d.GoodCCs(200)
	isR2 := func(c string) bool { return c == "Tenure" || c == "Area" }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		constraint.ClassifyAll(ccs, isR2)
	}
}

// BenchmarkSimplexLP times the LP substrate on a CC-shaped system.
func BenchmarkSimplexLP(b *testing.B) {
	nv := 200
	lp := &simplex.LP{NumVars: nv, C: make([]float64, nv)}
	for j := 0; j < nv; j++ {
		lp.Rows = append(lp.Rows, simplex.Row{
			Coefs: []simplex.Nz{{Var: j, Coef: 1}}, Sense: simplex.LE, B: 10})
	}
	for i := 0; i < 40; i++ {
		row := simplex.Row{Sense: simplex.GE, B: 25}
		for j := i; j < nv; j += 7 {
			row.Coefs = append(row.Coefs, simplex.Nz{Var: j, Coef: 1})
		}
		lp.Rows = append(lp.Rows, row)
		lp.C[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := simplex.Solve(lp, 0)
		if err != nil || res.Status != simplex.Optimal {
			b.Fatalf("%v %v", err, res.Status)
		}
	}
}

// BenchmarkILPBranchAndBound times the integer layer on a fractional
// system.
func BenchmarkILPBranchAndBound(b *testing.B) {
	p := &ilp.Problem{NumVars: 30}
	for j := 0; j < 30; j++ {
		p.Cons = append(p.Cons, ilp.Constraint{
			Terms: []ilp.Term{{Var: j, Coef: 1}}, Sense: ilp.LE, RHS: 7})
	}
	for i := 0; i < 10; i++ {
		c := ilp.Constraint{Sense: ilp.EQ, RHS: float64(20 + i), Soft: true}
		for j := i; j < 30; j += 3 {
			c.Terms = append(c.Terms, ilp.Term{Var: j, Coef: 2})
		}
		p.Cons = append(p.Cons, c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ilp.Solve(p, ilp.Options{MaxNodes: 500}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkListColoring times Algorithm 3 on a dense random graph.
func BenchmarkListColoring(b *testing.B) {
	n := 500
	g := hypergraph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < i+20 && j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	palette := make([]int, 25)
	for i := range palette {
		palette[i] = i
	}
	allowed := func(int) []int { return palette }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := hypergraph.NewColoring(n)
		g.ColoringLF(c, allowed)
	}
}

// BenchmarkCensusGenerate times the data substrate itself.
func BenchmarkCensusGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		census.Generate(census.Config{Households: 500, Areas: 8, Seed: int64(i)})
	}
}
