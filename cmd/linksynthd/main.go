// Command linksynthd serves the C-Extension solver over HTTP with a
// content-addressed result cache and a durable store: identical instances
// are solved once and served byte-identically from the cache thereafter —
// including across restarts when -data-dir is set, in which case warm
// solver sessions are also persisted and revived, so previously seen
// {base, delta} traffic restarts with zero cold solves.
//
// Usage:
//
//	linksynthd -addr :8080 -workers -1 -data-dir /var/lib/linksynth \
//	    -cache-entries 4096 -max-body 64000000
//
// The data directory holds three kinds of state:
//
//	data/cache      append-only result-cache log (cache.aol)
//	data/snapshots  content-addressed columnar relation snapshots (*.snap)
//	data/sessions   session records: constraints, options, plan (*.sess)
//
// -cache-dir is the pre-durable-store spelling of the same root and is kept
// as an alias; a legacy flat cache.aol at the root is migrated into
// data/cache on startup.
//
// Scaling out: seed every node with -peers (or point a new node at any
// existing member with -join) plus its own -advertise URL and the nodes
// form a shared-nothing sharded cluster — each instance's fingerprint
// hashes to one owning node, non-owners forward to it, batch jobs scatter
// across the owners, and the member set is gossiped on the health-probe
// cycle so joins and leaves need no fleet restart. With -replicas K, each
// solved key's cache entry and durable session artifacts are pushed to
// its K ring-successors, so killing the owner leaves the first successor
// answering warm (byte-identical, zero re-solves for replicated keys).
// On SIGTERM a node leaves gracefully: it tombstones itself cluster-wide
// and streams parked sessions to their new owners before exiting.
//
//	linksynthd -addr :8081 -advertise http://10.0.0.1:8081 -replicas 2 \
//	    -peers http://10.0.0.1:8081,http://10.0.0.2:8081,http://10.0.0.3:8081
//	linksynthd -addr :8084 -advertise http://10.0.0.4:8084 -replicas 2 \
//	    -join http://10.0.0.1:8081
//
// Endpoints: POST /v1/solve (JSON or multipart CSV; a JSON body may also
// carry a "base" fingerprint plus "delta" for an incremental warm-start
// re-solve against a retained session — see -sessions), POST /v1/batch
// (async, returns a job id), GET /v1/jobs (list), GET /v1/jobs/{id},
// DELETE /v1/jobs/{id} (cancel), GET /v1/store/{fingerprint}, GET /healthz,
// GET /metrics, GET /debug/flight (recent traces — see -flight-entries).
// See the repository README for request shapes and curl examples.
//
// Observability: every API request runs under a trace (X-Linksynth-Trace,
// echoed on the response and propagated across cluster hops), /metrics
// serves deterministic Prometheus exposition with latency histograms, and
// -debug-addr starts a separate listener serving net/http/pprof — kept off
// the API port so profiling is never exposed where the API is.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr mux
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/obsv"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", -1, "solver pool size shared by all requests (-1 = GOMAXPROCS)")
	dataDir := flag.String("data-dir", "", "root directory for all durable state: result cache, relation snapshots, session records (empty = memory only)")
	cacheDir := flag.String("cache-dir", "", "deprecated alias for -data-dir (the pre-store flag name)")
	cacheEntries := flag.Int("cache-entries", 1024, "maximum cached results (LRU beyond that)")
	maxBody := flag.Int64("max-body", 32<<20, "maximum request body bytes (413 beyond that)")
	queue := flag.Int("queue", 64, "bound on queued solves and pending async jobs (503 beyond that)")
	sessions := flag.Int("sessions", 64, "warm solver sessions retained for incremental delta re-solves (LRU beyond that)")
	plans := flag.Int("plans", 128, "compiled structural plans retained (LRU beyond that)")
	peers := flag.String("peers", "", "comma-separated seed list of cluster node URLs (empty = single-node)")
	join := flag.String("join", "", "URL of an existing cluster member to announce this node to (requires -advertise; combinable with -peers)")
	replicas := flag.Int("replicas", 0, "ring-successors each solved key is asynchronously replicated to for warm failover (0 = no replication)")
	advertise := flag.String("advertise", "", "this node's URL as peers reach it (required with -peers or -join)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "peer /healthz probing period")
	flightEntries := flag.Int("flight-entries", 256, "recent traces retained in the flight recorder (GET /debug/flight)")
	debugAddr := flag.String("debug-addr", "", "separate listen address for net/http/pprof (empty = profiling disabled)")
	version := flag.Bool("version", false, "print build metadata and exit")
	flag.Parse()

	if *version {
		bi := obsv.BuildInfo()
		fmt.Printf("linksynthd %s (%s, revision %s, modified %s)\n", bi.Version, bi.GoVersion, bi.Revision, bi.Modified)
		return
	}

	root := *dataDir
	if root == "" {
		root = *cacheDir
	} else if *cacheDir != "" && *cacheDir != *dataDir {
		fatalf("-cache-dir %q conflicts with -data-dir %q; -cache-dir is an alias, set only one", *cacheDir, *dataDir)
	}

	var st *store.Store
	cacheRoot := ""
	if root != "" {
		var err error
		if st, err = store.Open(root); err != nil {
			fatalf("open store at -data-dir %q: %v", root, err)
		}
		cacheRoot = st.CacheDir()
		migrateFlatCacheLog(root, cacheRoot)
	}

	c, err := cache.Open(cacheRoot, *cacheEntries)
	if err != nil {
		fatalf("open cache under -data-dir %q: %v", root, err)
	}
	defer c.Close()
	if cs := c.Stats(); cs.Replayed > 0 {
		log.Printf("cache: replayed %d entries from %s", cs.Replayed, cacheRoot)
	}
	if st != nil {
		ds := st.Stats()
		log.Printf("store: %d snapshots (%d bytes), %d sessions (%d bytes) at %s",
			ds.Snapshots, ds.SnapshotBytes, ds.Sessions, ds.SessionBytes, root)
	}

	var clu *cluster.Cluster
	if *peers != "" || *join != "" {
		if *advertise == "" {
			fatalf("-peers and -join require -advertise (this node's URL as peers reach it)")
		}
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		clu, err = cluster.New(cluster.Config{
			Self:          *advertise,
			Peers:         list,
			ProbeInterval: *probeInterval,
		})
		if err != nil {
			fatalf("%v", err)
		}
		if *join != "" {
			// Announce to the seed before serving: once JoinVia returns, the
			// seed owes the rest of the cluster our membership via gossip and
			// we hold the full member view — no fleet restart, no -peers edit.
			jctx, jcancel := context.WithTimeout(context.Background(), 30*time.Second)
			err := clu.JoinVia(jctx, *join)
			jcancel()
			if err != nil {
				fatalf("%v", err)
			}
			log.Printf("cluster: joined via %s", *join)
		}
		clu.Start()
		defer clu.Close()
		log.Printf("cluster: node %s with %d peers (probe every %s, replicas=%d)",
			clu.Self(), len(clu.Nodes())-1, *probeInterval, *replicas)
	}

	srv := service.New(service.Config{
		Cache:          c,
		Workers:        *workers,
		MaxBody:        *maxBody,
		QueueDepth:     *queue,
		Cluster:        clu,
		Replicas:       *replicas,
		SessionEntries: *sessions,
		PlanEntries:    *plans,
		Store:          st,
		FlightEntries:  *flightEntries,
	})
	defer srv.Close()

	if *debugAddr != "" {
		// pprof rides its own listener (and the default mux, where the
		// blank import registered it), so profiling exposure is an explicit
		// operator decision separate from the API address.
		go func() {
			dbg := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			log.Printf("pprof listening on %s (/debug/pprof/)", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("linksynthd listening on %s (workers=%d, cache-entries=%d, data-dir=%q)",
		*addr, *workers, *cacheEntries, root)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("listen on -addr %q: %v", *addr, err)
		}
	case <-ctx.Done():
		log.Printf("shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if clu != nil {
			// Graceful leave: tombstone this node on its peers and stream
			// parked sessions to their new owners while the listener still
			// answers pull-side handoff fetches, then stop accepting.
			srv.Leave(shCtx)
			log.Printf("cluster: left the member set; sessions migrated")
		}
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}

// migrateFlatCacheLog moves a pre-durable-store cache log (written by
// `-cache-dir <root>`, directly at the root) into the data/cache
// subdirectory the consolidated layout uses, so upgrading in place keeps
// every cached result. The move is skipped if the new location is already
// populated — never overwrite newer state with older.
func migrateFlatCacheLog(root, cacheRoot string) {
	old := filepath.Join(root, "cache.aol")
	dst := filepath.Join(cacheRoot, "cache.aol")
	if _, err := os.Stat(old); err != nil {
		return
	}
	if _, err := os.Stat(dst); err == nil {
		log.Printf("store: legacy cache log %s left in place (%s already exists)", old, dst)
		return
	}
	if err := os.Rename(old, dst); err != nil {
		log.Printf("store: could not migrate legacy cache log %s: %v", old, err)
		return
	}
	log.Printf("store: migrated legacy cache log %s -> %s", old, dst)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "linksynthd: "+format+"\n", args...)
	os.Exit(1)
}
