// Command linksynthd serves the C-Extension solver over HTTP with a
// content-addressed result cache: identical instances are solved once and
// served byte-identically from the cache thereafter, including across
// restarts when -cache-dir is set.
//
// Usage:
//
//	linksynthd -addr :8080 -workers -1 -cache-dir /var/lib/linksynth \
//	    -cache-entries 4096 -max-body 64000000
//
// Endpoints: POST /v1/solve (JSON or multipart CSV), POST /v1/batch (async,
// returns a job id), GET /v1/jobs/{id}, DELETE /v1/jobs/{id} (cancel),
// GET /healthz, GET /metrics. See the repository README for request shapes
// and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", -1, "solver pool size shared by all requests (-1 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persist the result cache to this directory (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 1024, "maximum cached results (LRU beyond that)")
	maxBody := flag.Int64("max-body", 32<<20, "maximum request body bytes (413 beyond that)")
	queue := flag.Int("queue", 64, "bound on queued solves and pending async jobs (503 beyond that)")
	flag.Parse()

	c, err := cache.Open(*cacheDir, *cacheEntries)
	if err != nil {
		fatalf("open cache at -cache-dir %q: %v", *cacheDir, err)
	}
	defer c.Close()
	if st := c.Stats(); st.Replayed > 0 {
		log.Printf("cache: replayed %d entries from %s", st.Replayed, *cacheDir)
	}

	srv := service.New(service.Config{
		Cache:      c,
		Workers:    *workers,
		MaxBody:    *maxBody,
		QueueDepth: *queue,
	})
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("linksynthd listening on %s (workers=%d, cache-entries=%d, cache-dir=%q)",
		*addr, *workers, *cacheEntries, *cacheDir)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("listen on -addr %q: %v", *addr, err)
		}
	case <-ctx.Done():
		log.Printf("shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "linksynthd: "+format+"\n", args...)
	os.Exit(1)
}
