// Command linksynthd serves the C-Extension solver over HTTP with a
// content-addressed result cache: identical instances are solved once and
// served byte-identically from the cache thereafter, including across
// restarts when -cache-dir is set.
//
// Usage:
//
//	linksynthd -addr :8080 -workers -1 -cache-dir /var/lib/linksynth \
//	    -cache-entries 4096 -max-body 64000000
//
// Scaling out: give every node the same -peers list and its own -advertise
// URL and the nodes form a shared-nothing sharded cluster — each instance's
// fingerprint hashes to one owning node, non-owners forward to it, and
// batch jobs scatter across the owners:
//
//	linksynthd -addr :8081 -advertise http://10.0.0.1:8081 \
//	    -peers http://10.0.0.1:8081,http://10.0.0.2:8081,http://10.0.0.3:8081
//
// Endpoints: POST /v1/solve (JSON or multipart CSV; a JSON body may also
// carry a "base" fingerprint plus "delta" for an incremental warm-start
// re-solve against a retained session — see -sessions), POST /v1/batch
// (async, returns a job id), GET /v1/jobs (list), GET /v1/jobs/{id},
// DELETE /v1/jobs/{id} (cancel), GET /healthz, GET /metrics. See the
// repository README for request shapes and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", -1, "solver pool size shared by all requests (-1 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persist the result cache to this directory (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 1024, "maximum cached results (LRU beyond that)")
	maxBody := flag.Int64("max-body", 32<<20, "maximum request body bytes (413 beyond that)")
	queue := flag.Int("queue", 64, "bound on queued solves and pending async jobs (503 beyond that)")
	sessions := flag.Int("sessions", 64, "warm solver sessions retained for incremental delta re-solves (LRU beyond that)")
	plans := flag.Int("plans", 128, "compiled structural plans retained (LRU beyond that)")
	peers := flag.String("peers", "", "comma-separated seed list of cluster node URLs (empty = single-node)")
	advertise := flag.String("advertise", "", "this node's URL as peers reach it (required with -peers)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "peer /healthz probing period")
	flag.Parse()

	c, err := cache.Open(*cacheDir, *cacheEntries)
	if err != nil {
		fatalf("open cache at -cache-dir %q: %v", *cacheDir, err)
	}
	defer c.Close()
	if st := c.Stats(); st.Replayed > 0 {
		log.Printf("cache: replayed %d entries from %s", st.Replayed, *cacheDir)
	}

	var clu *cluster.Cluster
	if *peers != "" {
		if *advertise == "" {
			fatalf("-peers requires -advertise (this node's URL as peers reach it)")
		}
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		clu, err = cluster.New(cluster.Config{
			Self:          *advertise,
			Peers:         list,
			ProbeInterval: *probeInterval,
		})
		if err != nil {
			fatalf("%v", err)
		}
		clu.Start()
		defer clu.Close()
		log.Printf("cluster: node %s with %d peers (probe every %s)", clu.Self(), len(clu.Nodes())-1, *probeInterval)
	}

	srv := service.New(service.Config{
		Cache:          c,
		Workers:        *workers,
		MaxBody:        *maxBody,
		QueueDepth:     *queue,
		Cluster:        clu,
		SessionEntries: *sessions,
		PlanEntries:    *plans,
	})
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("linksynthd listening on %s (workers=%d, cache-entries=%d, cache-dir=%q)",
		*addr, *workers, *cacheEntries, *cacheDir)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("listen on -addr %q: %v", *addr, err)
		}
	case <-ctx.Done():
		log.Printf("shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "linksynthd: "+format+"\n", args...)
	os.Exit(1)
}
