// Command censusgen emits a synthetic census-like dataset (the substrate of
// the paper's evaluation): Persons.csv with an empty foreign-key column,
// Housing.csv, constraints.txt with generated CC/DC sets in the text DSL,
// and truth.csv holding the ground-truth assignment for error analysis.
//
// Usage:
//
//	censusgen -households 9820 -areas 24 -ccs 1001 -cc-family good -out data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/census"
	"repro/internal/constraint"
	"repro/internal/table"
)

func main() {
	households := flag.Int("households", 982, "number of households (paper scale 1x = 9820)")
	areas := flag.Int("areas", 24, "number of distinct Area values")
	extra := flag.Int("extra-cols", 0, "extra Housing columns beyond Tenure/Area (0,2,4,6,8)")
	nCC := flag.Int("ccs", 100, "number of cardinality constraints to generate")
	family := flag.String("cc-family", "good", "CC family: good (no intersections) or bad")
	dcSet := flag.String("dc-set", "all", "DC set: good (items 1-8) or all (items 1-12)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	d := census.Generate(census.Config{
		Households: *households, Areas: *areas, ExtraCols: *extra, Seed: *seed,
	})

	var ccs []constraint.CC
	switch *family {
	case "good":
		ccs = d.GoodCCs(*nCC)
	case "bad":
		ccs = d.BadCCs(*nCC)
	default:
		fatal("unknown -cc-family %q", *family)
	}
	var dcs []constraint.DC
	switch *dcSet {
	case "good":
		dcs = census.GoodDCs()
	case "all":
		dcs = census.AllDCs()
	default:
		fatal("unknown -dc-set %q", *dcSet)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal("%v", err)
	}
	must(table.WriteCSVFile(filepath.Join(*out, "Persons.csv"), d.Persons))
	must(table.WriteCSVFile(filepath.Join(*out, "Housing.csv"), d.Housing))

	truth := d.Persons.Clone()
	for i := 0; i < truth.Len(); i++ {
		truth.Set(i, "hid", d.Truth[i])
	}
	must(table.WriteCSVFile(filepath.Join(*out, "truth.csv"), truth))

	var b strings.Builder
	b.WriteString("# Generated constraint file (linksynth DSL).\n")
	must(constraint.WriteConstraints(&b, ccs, dcs))
	must(os.WriteFile(filepath.Join(*out, "constraints.txt"), []byte(b.String()), 0o644))

	fmt.Printf("wrote %d persons, %d households, %d CCs, %d DCs to %s\n",
		d.Persons.Len(), d.Housing.Len(), len(ccs), len(dcs), *out)
}

func must(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "censusgen: "+format+"\n", args...)
	os.Exit(1)
}
