// Command linksynth imputes the foreign-key column of a relation so that a
// set of denial constraints holds exactly and a set of cardinality
// constraints is met as closely as possible — the C-Extension problem of
// the paper. It reads both relations from CSV, the constraints from the
// text DSL, and writes the completed relations back as CSV.
//
// Usage:
//
//	linksynth -r1 Persons.csv -r2 Housing.csv -constraints constraints.txt \
//	    -k1 pid -k2 hid -fk hid -algo hybrid -out outdir/
//
// CSV schemas are inferred from the header plus the column contents
// (integer if every non-empty value parses as one, string otherwise).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/table"

	linksynth "repro"
)

func main() {
	r1Path := flag.String("r1", "", "CSV file of R1 (FK column empty)")
	r2Path := flag.String("r2", "", "CSV file of R2")
	consPath := flag.String("constraints", "", "constraint file (cc/dc DSL)")
	k1 := flag.String("k1", "pid", "primary key column of R1")
	k2 := flag.String("k2", "hid", "primary key column of R2")
	fk := flag.String("fk", "hid", "foreign key column of R1")
	algo := flag.String("algo", "hybrid", "hybrid | baseline | baseline-marginals | ilp-only | hasse-only")
	workers := flag.Int("workers", 0, "parallel coloring workers (0 = sequential, -1 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()
	if *r1Path == "" || *r2Path == "" {
		fatal("both -r1 and -r2 CSV files are required (see -h)")
	}

	r1, err := table.ReadCSVFileInferred(*r1Path, "R1")
	if err != nil {
		fatal("read -r1 file %s: %v", *r1Path, err)
	}
	r2, err := table.ReadCSVFileInferred(*r2Path, "R2")
	if err != nil {
		fatal("read -r2 file %s: %v", *r2Path, err)
	}

	// Catch misnamed key columns here, with the file and flag in hand,
	// instead of letting the solver panic on an unknown column.
	requireColumn(r1, *k1, "-k1", *r1Path)
	requireColumn(r1, *fk, "-fk", *r1Path)
	requireColumn(r2, *k2, "-k2", *r2Path)

	in := linksynth.Input{R1: r1, R2: r2, K1: *k1, K2: *k2, FK: *fk}
	if *consPath != "" {
		f, err := os.Open(*consPath)
		if err != nil {
			fatal("open -constraints file %s: %v", *consPath, err)
		}
		in.CCs, in.DCs, err = linksynth.ParseConstraints(f)
		f.Close()
		if err != nil {
			fatal("parse -constraints file %s: %v", *consPath, err)
		}
	}

	var opt linksynth.Options
	switch *algo {
	case "hybrid":
		opt = linksynth.Options{Seed: *seed}
	case "baseline":
		opt = linksynth.BaselineOptions(*seed)
	case "baseline-marginals":
		opt = linksynth.BaselineMarginalsOptions(*seed)
	case "ilp-only":
		opt = linksynth.Options{Mode: core.ModeILPOnly, Seed: *seed}
	case "hasse-only":
		opt = linksynth.Options{Mode: core.ModeHasseOnly, Seed: *seed}
	default:
		fatal("unknown -algo %q (want hybrid, baseline, baseline-marginals, ilp-only or hasse-only)", *algo)
	}
	opt.Workers = *workers

	start := time.Now()
	res, err := linksynth.Solve(in, opt)
	if err != nil {
		fatal("solve: %v", err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal("create -out directory %s: %v", *out, err)
	}
	writeCSV(filepath.Join(*out, "R1_hat.csv"), res.R1Hat)
	writeCSV(filepath.Join(*out, "R2_hat.csv"), res.R2Hat)
	writeCSV(filepath.Join(*out, "VJoin.csv"), res.VJoin)

	errs := metrics.CCErrors(res.VJoin, in.CCs)
	fmt.Printf("algorithm       %s\n", *algo)
	fmt.Printf("rows            %d R1, %d -> %d R2 tuples (%d added)\n",
		res.R1Hat.Len(), r2.Len(), res.R2Hat.Len(), res.Stats.AddedR2Tuples)
	fmt.Printf("CC error        median %.4f  mean %.4f  (over %d CCs)\n",
		metrics.Median(errs), metrics.Mean(errs), len(errs))
	fmt.Printf("DC error        %.4f\n", metrics.DCErrorFraction(res.R1Hat, *fk, in.DCs))
	fmt.Printf("phase I         %v (pairwise %v, recursion %v, ILP %v)\n",
		res.Stats.Phase1, res.Stats.Pairwise, res.Stats.Recursion, res.Stats.ILPTime)
	fmt.Printf("phase II        %v (%d partitions, %d conflict edges, %d skipped)\n",
		res.Stats.Phase2, res.Stats.Partitions, res.Stats.ConflictEdges, res.Stats.SkippedVertices)
	fmt.Printf("total           %v (wall %v)\n", res.Stats.Total, time.Since(start))
}

func requireColumn(r *table.Relation, col, flagName, path string) {
	if !r.Schema().Has(col) {
		fatal("%s column %q not found in %s (columns: %s)",
			flagName, col, path, strings.Join(r.Schema().Names(), ", "))
	}
}

func writeCSV(path string, r *table.Relation) {
	if err := table.WriteCSVFile(path, r); err != nil {
		fatal("write %s: %v", path, err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "linksynth: "+format+"\n", args...)
	os.Exit(1)
}
