// Command benchtab regenerates the paper's evaluation tables and figures
// (§6, Figures 8–13 plus Table 1, the CC-count sweep, and our ablations) on
// the synthetic census substrate and prints them as text tables.
//
// Usage:
//
//	benchtab                  # run everything at the default quick scale
//	benchtab -exp fig8a,fig13 # selected experiments
//	benchtab -unit 982 -ccs 200 -scales 1,2,5,10   # closer to paper scale
//	benchtab -batch 8 -workers -1                  # batched multi-instance workload
//	benchtab -batch 8 -json                        # machine-readable Stats breakdown
//	benchtab -incr -iters 11                       # cold vs warm-plan vs delta re-solve
//	benchtab -trace                                # one traced solve, span timeline printed
//	benchtab -batch 8 -cpuprofile cpu.pprof -memprofile mem.pprof  # profile the run
//
// With -json, output is a single JSON document: per-experiment tables, or —
// under -batch — the per-instance per-stage Stats breakdown and wall times
// that feed the BENCH_*.json perf trajectory. -incr prints
// `go test -bench`-shaped lines (piped through .github/bench_to_json.sh to
// produce BENCH_incr.json in CI).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	linksynth "repro"
	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/incr"
	"repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/store"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (see -list)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	unit := flag.Int("unit", 0, "households at scale 1x (default quick-scale)")
	areas := flag.Int("areas", 0, "distinct areas")
	ccs := flag.Int("ccs", 0, "CC set size (paper: 1001)")
	scales := flag.String("scales", "", "comma-separated scale multipliers (e.g. 1,2,5,10)")
	largeScales := flag.String("large-scales", "", "scales for fig11b")
	seed := flag.Int64("seed", 1, "seed")
	batch := flag.Int("batch", 0, "solve this many instances via SolveBatch instead of running experiments")
	incr := flag.Bool("incr", false, "benchmark cold vs warm-plan vs delta re-solve on a repeated-structure workload")
	storeBench := flag.Bool("store", false, "benchmark durable-store restart shapes: cold start vs warm restart vs mapped-snapshot load")
	traceRun := flag.Bool("trace", false, "solve one instance under a trace and print its span timeline")
	explainRun := flag.Bool("explain", false, "solve one instance and print its EXPLAIN cost report (implies -trace)")
	iters := flag.Int("iters", 15, "iterations per -incr benchmark")
	workers := flag.Int("workers", -1, "worker pool size for -batch (-1 = GOMAXPROCS, 0/1 = serial)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("-cpuprofile: %v", err)
		}
		stopCPUProfile = func() {
			stopCPUProfile = nil
			pprof.StopCPUProfile()
			f.Close()
		}
		defer flushProfiles()
	}
	if *memProfile != "" {
		writeMemProfile = func() {
			writeMemProfile = nil
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: -memprofile: %v\n", err)
			}
		}
		defer flushProfiles()
	}

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Println(r.ID)
		}
		return
	}
	if *incr {
		runIncr(*iters, *unit, *ccs, *seed)
		return
	}
	if *storeBench {
		runStore(*iters, *unit, *ccs, *seed)
		return
	}
	if *traceRun || *explainRun {
		runTrace(*unit, *ccs, *seed, *workers, *asJSON, *explainRun)
		return
	}
	if *batch > 0 {
		runBatch(*batch, *workers, *unit, *ccs, *seed, *asJSON)
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	if *unit > 0 {
		cfg.Unit = *unit
	}
	if *areas > 0 {
		cfg.Areas = *areas
	}
	if *ccs > 0 {
		cfg.NCC = *ccs
	}
	if *scales != "" {
		cfg.Scales = parseInts("-scales", *scales)
	}
	if *largeScales != "" {
		cfg.LargeScales = parseInts("-large-scales", *largeScales)
	}

	want := map[string]bool{}
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	type expJSON struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Header  []string   `json:"header"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
		Seconds float64    `json:"seconds"`
	}
	var jsonOut []expJSON
	for _, r := range experiments.Runners() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		tab, err := r.Run(cfg)
		if err != nil {
			fatal("experiment %s: %v", r.ID, err)
		}
		elapsed := time.Since(start)
		if *asJSON {
			jsonOut = append(jsonOut, expJSON{ID: tab.ID, Title: tab.Title,
				Header: tab.Header, Rows: tab.Rows, Notes: tab.Notes,
				Seconds: elapsed.Seconds()})
			continue
		}
		fmt.Print(tab.String())
		fmt.Printf("(%s took %v)\n\n", r.ID, elapsed.Round(time.Millisecond))
	}
	if *asJSON {
		emitJSON(map[string]any{"experiments": jsonOut})
	}
}

// runBatch is the multi-instance workload: n census instances (one seed
// each) solved by a single SolveBatch call over a shared worker pool, with
// per-instance quality and a throughput summary. Under -json the per-stage
// Stats breakdown is emitted for the perf trajectory.
func runBatch(n, workers, unit, nCC int, seed int64, asJSON bool) {
	if unit <= 0 {
		unit = 200
	}
	if nCC <= 0 {
		nCC = 40
	}
	inputs := make([]linksynth.Input, n)
	allCCs := make([][]linksynth.CC, n)
	dcs := census.AllDCs()
	for i := range inputs {
		d := census.Generate(census.Config{Households: unit, Areas: 6, Seed: seed + int64(i)})
		allCCs[i] = d.GoodCCs(nCC)
		inputs[i] = linksynth.Input{R1: d.Persons, R2: d.Housing,
			K1: "pid", K2: "hid", FK: "hid", CCs: allCCs[i], DCs: dcs}
	}
	start := time.Now()
	results, err := linksynth.SolveBatch(inputs, linksynth.Options{Seed: seed, Workers: workers})
	elapsed := time.Since(start)
	if err != nil {
		fatal("batch of %d instances: %v", n, err)
	}

	if asJSON {
		type instJSON struct {
			Instance     int             `json:"instance"`
			CCErrMedian  float64         `json:"cc_err_median"`
			CCErrMean    float64         `json:"cc_err_mean"`
			DCErr        float64         `json:"dc_err"`
			AddedR2      int             `json:"added_r2"`
			SolveSeconds float64         `json:"solve_seconds"`
			Stats        linksynth.Stats `json:"stats"`
		}
		out := struct {
			Instances    int        `json:"instances"`
			Households   int        `json:"households"`
			CCs          int        `json:"ccs"`
			Workers      int        `json:"workers"`
			Seed         int64      `json:"seed"`
			TotalSeconds float64    `json:"total_seconds"`
			PerSecond    float64    `json:"instances_per_second"`
			Results      []instJSON `json:"results"`
		}{
			Instances: n, Households: unit, CCs: nCC, Workers: workers, Seed: seed,
			TotalSeconds: elapsed.Seconds(),
			PerSecond:    float64(n) / elapsed.Seconds(),
		}
		for i, res := range results {
			errs := linksynth.CCErrors(res.VJoin, allCCs[i])
			out.Results = append(out.Results, instJSON{
				Instance:    i,
				CCErrMedian: metrics.Median(errs),
				CCErrMean:   metrics.Mean(errs),
				DCErr:       linksynth.DCErrorFraction(res.R1Hat, "hid", dcs),
				AddedR2:     res.Stats.AddedR2Tuples,
				// Stats.Total is solver time for this instance; wall time for
				// the whole batch is TotalSeconds.
				SolveSeconds: res.Stats.Total.Seconds(),
				Stats:        res.Stats,
			})
		}
		emitJSON(out)
		return
	}

	fmt.Printf("batch: %d instances x %d households, %d CCs, workers=%d\n",
		n, unit, nCC, workers)
	fmt.Printf("%-10s %-12s %-10s %-10s %s\n", "instance", "CCerr-median", "DCerr", "addedR2", "solve-time")
	for i, res := range results {
		errs := linksynth.CCErrors(res.VJoin, allCCs[i])
		fmt.Printf("%-10d %-12.4f %-10.4f %-10d %v\n",
			i, metrics.Median(errs),
			linksynth.DCErrorFraction(res.R1Hat, "hid", dcs),
			res.Stats.AddedR2Tuples, res.Stats.Total.Round(time.Millisecond))
	}
	fmt.Printf("total %v, %.2f instances/s\n", elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds())
}

// runIncr is the repeated-structure serving workload: one census instance
// solved cold, then re-solved through the incremental engine — warm plan
// (new session, cached classification), warm session (zero delta, fully
// spliced), and delta re-solves (row edits / CC bound nudges relative to
// the base). Output is `go test -bench`-shaped lines so the existing
// .github/bench_to_json.sh turns it into BENCH_incr.json; the speedup
// versus the cold median rides along as an extra metric.
func runIncr(iters, unit, nCC int, seed int64) {
	if unit <= 0 {
		unit = 1000
	}
	if nCC <= 0 {
		nCC = 150
	}
	if iters <= 0 {
		iters = 15
	}
	d := census.Generate(census.Config{Households: unit, Areas: 6, Seed: seed})
	in := linksynth.Input{R1: d.Persons, R2: d.Housing,
		K1: "pid", K2: "hid", FK: "hid", CCs: d.GoodCCs(nCC), DCs: census.AllDCs()}
	opt := linksynth.Options{Seed: seed}

	fmt.Printf("incr workload: %d households, %d CCs, %d iters, seed %d\n", unit, nCC, iters, seed)

	median := func(run func(i int)) time.Duration {
		times := make([]time.Duration, iters)
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			run(i)
			times[i] = time.Since(t0)
		}
		sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
		return times[iters/2]
	}
	report := func(name string, med time.Duration, cold time.Duration) {
		if cold > 0 && med > 0 {
			fmt.Printf("%-28s %8d %12d ns/op %12.2f speedup-vs-cold\n",
				name, iters, med.Nanoseconds(), float64(cold)/float64(med))
			return
		}
		fmt.Printf("%-28s %8d %12d ns/op\n", name, iters, med.Nanoseconds())
	}

	cold := median(func(int) {
		if _, err := linksynth.Solve(in, opt); err != nil {
			fatal("-incr cold solve: %v", err)
		}
	})
	report("BenchmarkIncrCold", cold, 0)

	eng := incr.NewEngine(64)
	if _, _, _, err := eng.PlanFor(in, opt); err != nil { // warm the plan cache
		fatal("-incr compile plan: %v", err)
	}
	fp, err := linksynth.Fingerprint(in, opt)
	if err != nil {
		fatal("-incr fingerprint: %v", err)
	}
	warmPlan := median(func(int) {
		// The serving shape: the request's content fingerprint is already
		// computed (it is the cache key), so the session opens keyed.
		sess, err := eng.OpenKeyed(in, opt, nil, fp)
		if err != nil {
			fatal("-incr open: %v", err)
		}
		if _, err := sess.Solve(); err != nil {
			fatal("-incr warm-plan solve: %v", err)
		}
	})
	report("BenchmarkIncrWarmPlan", warmPlan, cold)

	sess, err := eng.Open(in, opt, nil)
	if err != nil {
		fatal("-incr open: %v", err)
	}
	if _, err := sess.Solve(); err != nil {
		fatal("-incr prime session: %v", err)
	}
	warmSession := median(func(int) {
		if _, err := sess.Solve(); err != nil {
			fatal("-incr warm re-solve: %v", err)
		}
	})
	report("BenchmarkIncrWarmSession", warmSession, cold)

	// Delta workload 1: what-if row edits — small age corrections that keep
	// each edited tuple inside the same CC selection intervals (the common
	// serving case: the phase-1 fill is unchanged and only the partitions
	// holding the edited rows recolor). Edits that cross an interval
	// boundary instead shift the fill and degrade gracefully toward the
	// cold time; the target-nudge benchmark below measures that shape.
	var band []int
	for i := 0; i < in.R1.Len(); i++ {
		if a := in.R1.Value(i, "Age").Int(); a >= 42 && a <= 62 {
			band = append(band, i)
		}
	}
	if len(band) == 0 {
		fatal("-incr: no band rows in generated instance")
	}
	deltaEdit := median(func(i int) {
		r1, r2 := band[(i*7)%len(band)], band[(i*13+3)%len(band)]
		de := incr.Delta{R1Edits: []incr.CellEdit{
			{Row: r1, Col: "Age", Val: linksynth.Int(in.R1.Value(r1, "Age").Int() + int64(1+i%2))},
			{Row: r2, Col: "Age", Val: linksynth.Int(in.R1.Value(r2, "Age").Int() - int64(1+i%2))},
		}}
		if _, _, err := sess.Resolve(de); err != nil {
			fatal("-incr delta edit: %v", err)
		}
	})
	report("BenchmarkIncrDeltaEdit", deltaEdit, cold)

	// Delta workload 2: row insertions. Appended rows sort after every
	// existing row in the fill order, so existing partitions splice and
	// only the partitions receiving new rows recolor.
	deltaAppend := median(func(i int) {
		ap := incr.Delta{R1Appends: [][]linksynth.Value{
			{linksynth.Int(int64(900000 + i)), linksynth.String("Member"),
				linksynth.Int(int64(45 + i%15)), linksynth.Int(int64(i % 2)), linksynth.Null()},
		}}
		if _, _, err := sess.Resolve(ap); err != nil {
			fatal("-incr delta append: %v", err)
		}
	})
	report("BenchmarkIncrDeltaAppend", deltaAppend, cold)

	// Delta workload 3: a CC bound nudged (the Ntarget-shift shape). This
	// shifts the phase-1 fill globally, so fewer partitions splice than
	// under row edits; the compiled problem and classification still reuse.
	deltaTarget := median(func(i int) {
		ccIdx := i % len(in.CCs)
		dt := incr.Delta{CCTargets: map[int]int64{ccIdx: in.CCs[ccIdx].Target + int64(1+i%3)}}
		if _, _, err := sess.Resolve(dt); err != nil {
			fatal("-incr delta target: %v", err)
		}
	})
	report("BenchmarkIncrDeltaTarget", deltaTarget, cold)
}

// runStore is the restart workload behind BENCH_store.json: what a process
// pays to answer the first solve after it comes up. Cold start solves the
// instance from nothing (no durable state); warm restart replays the full
// recovery path the daemon takes — open the store, load the session record,
// materialize both relation snapshots, verify the content fingerprint,
// adopt the persisted plan, open the session, solve; mapped load isolates
// the state-materialization share of that (snapshot decode + verify, no
// solve); persist is the write side the persister goroutine pays off the
// request path. Output is `go test -bench`-shaped lines for
// .github/bench_to_json.sh.
func runStore(iters, unit, nCC int, seed int64) {
	if unit <= 0 {
		unit = 1000
	}
	if nCC <= 0 {
		nCC = 150
	}
	if iters <= 0 {
		iters = 15
	}
	d := census.Generate(census.Config{Households: unit, Areas: 6, Seed: seed})
	in := linksynth.Input{R1: d.Persons, R2: d.Housing,
		K1: "pid", K2: "hid", FK: "hid", CCs: d.GoodCCs(nCC), DCs: census.AllDCs()}
	opt := linksynth.Options{Seed: seed}

	fmt.Printf("store workload: %d households, %d CCs, %d iters, seed %d\n", unit, nCC, iters, seed)

	median := func(run func(i int)) time.Duration {
		times := make([]time.Duration, iters)
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			run(i)
			times[i] = time.Since(t0)
		}
		sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
		return times[iters/2]
	}
	report := func(name string, med time.Duration, cold time.Duration) {
		if cold > 0 && med > 0 {
			fmt.Printf("%-28s %8d %12d ns/op %12.2f speedup-vs-cold\n",
				name, iters, med.Nanoseconds(), float64(cold)/float64(med))
			return
		}
		fmt.Printf("%-28s %8d %12d ns/op\n", name, iters, med.Nanoseconds())
	}

	cold := median(func(int) {
		if _, err := linksynth.Solve(in, opt); err != nil {
			fatal("-store cold solve: %v", err)
		}
	})
	report("BenchmarkStoreColdStart", cold, 0)

	// Build the durable state a previous process would have left behind:
	// one solved session, persisted exactly as the daemon's persister does.
	dir, err := os.MkdirTemp("", "benchtab-store-*")
	if err != nil {
		fatal("-store: %v", err)
	}
	defer os.RemoveAll(dir)
	fp, err := linksynth.Fingerprint(in, opt)
	if err != nil {
		fatal("-store fingerprint: %v", err)
	}
	eng := incr.NewEngine(64)
	sess, err := eng.OpenKeyed(in, opt, nil, fp)
	if err != nil {
		fatal("-store open: %v", err)
	}
	if _, err := sess.Solve(); err != nil {
		fatal("-store prime solve: %v", err)
	}
	seedStore, err := store.Open(dir)
	if err != nil {
		fatal("-store open store: %v", err)
	}
	persistInto := func(st *store.Store) {
		r1fp, err := st.PutRelation(in.R1)
		if err != nil {
			fatal("-store put R1: %v", err)
		}
		r2fp, err := st.PutRelation(in.R2)
		if err != nil {
			fatal("-store put R2: %v", err)
		}
		rec := &store.SessionRecord{
			BaseFP: fp, SFP: sess.StructuralFingerprint(), R1FP: r1fp, R2FP: r2fp,
			K1: in.K1, K2: in.K2, FK: in.FK, Opt: opt,
			CCs: in.CCs, DCs: in.DCs, Plan: sess.Plan(),
		}
		if err := st.PutSession(rec); err != nil {
			fatal("-store put session: %v", err)
		}
	}
	persistInto(seedStore)
	rec, err := seedStore.LoadSession(fp)
	if err != nil {
		fatal("-store reload session: %v", err)
	}

	// Persist: encode + atomic write + fsync of both snapshots and the
	// session record, into a fresh directory each iteration so the
	// content-addressed dedup of an already-present snapshot never hides
	// the write cost.
	persist := median(func(i int) {
		sub := filepath.Join(dir, fmt.Sprintf("p%d", i))
		st, err := store.Open(sub)
		if err != nil {
			fatal("-store: %v", err)
		}
		persistInto(st)
	})
	report("BenchmarkStorePersist", persist, cold)

	// Mapped load: what materializing the base state from disk costs —
	// snapshot decode over the mapping, content verification, relation
	// materialization — without the solve that follows.
	mappedLoad := median(func(int) {
		st, err := store.Open(dir)
		if err != nil {
			fatal("-store: %v", err)
		}
		if _, err := st.LoadRelation(rec.R1FP); err != nil {
			fatal("-store load R1: %v", err)
		}
		if _, err := st.LoadRelation(rec.R2FP); err != nil {
			fatal("-store load R2: %v", err)
		}
	})
	report("BenchmarkStoreMappedLoad", mappedLoad, cold)

	// Warm restart: the daemon's full per-session recovery path in a fresh
	// "process" (new store handle, new engine) — load the record, materialize
	// both snapshots, verify the content fingerprint, adopt the plan, open
	// the session. No solve: a restored session serves its previously cached
	// deltas from the byte cache with zero solver work, so this is the whole
	// restart cost for replayed traffic. The speedup column is the claim —
	// restoring is this many times cheaper than re-solving the base.
	restore := func() *incr.Session {
		st, err := store.Open(dir)
		if err != nil {
			fatal("-store: %v", err)
		}
		rec, err := st.LoadSession(fp)
		if err != nil {
			fatal("-store load session: %v", err)
		}
		r1, err := st.LoadRelation(rec.R1FP)
		if err != nil {
			fatal("-store load R1: %v", err)
		}
		r2, err := st.LoadRelation(rec.R2FP)
		if err != nil {
			fatal("-store load R2: %v", err)
		}
		rin := linksynth.Input{R1: r1, R2: r2, K1: rec.K1, K2: rec.K2, FK: rec.FK, CCs: rec.CCs, DCs: rec.DCs}
		got, err := linksynth.Fingerprint(rin, rec.Opt)
		if err != nil || got != fp {
			fatal("-store restored fingerprint mismatch (err %v)", err)
		}
		reng := incr.NewEngine(64)
		reng.AdoptPlan(rec.Plan)
		rsess, err := reng.OpenKeyed(rin, rec.Opt, nil, fp)
		if err != nil {
			fatal("-store reopen: %v", err)
		}
		return rsess
	}
	warmRestart := median(func(int) { restore() })
	report("BenchmarkStoreWarmRestart", warmRestart, cold)

	// First solve a restored session runs — a delta never seen before the
	// restart. The adopted plan makes it a warm-plan solve, not a cold one.
	restored := make([]*incr.Session, iters)
	for i := range restored {
		restored[i] = restore()
	}
	firstSolve := median(func(i int) {
		if _, err := restored[i].Solve(); err != nil {
			fatal("-store restored solve: %v", err)
		}
	})
	report("BenchmarkStoreRestoredFirstSolve", firstSolve, cold)
}

// runTrace solves one census instance under a live trace and prints the
// span timeline — the same spans linksynthd records per request (compile,
// classify, hasse, ilp, phase2, coloring, write-back) — so the phase
// breakdown is inspectable without standing up a server. With explain the
// solver also fills its EXPLAIN cost report, printed after the timeline —
// the same report ?explain=1 splices into a served response. With -json
// the trace's wire form (the same shape /debug/flight dumps) is emitted,
// explain report included.
func runTrace(unit, nCC int, seed int64, workers int, asJSON, explain bool) {
	if unit <= 0 {
		unit = 1000
	}
	if nCC <= 0 {
		nCC = 150
	}
	d := census.Generate(census.Config{Households: unit, Areas: 6, Seed: seed})
	in := linksynth.Input{R1: d.Persons, R2: d.Housing,
		K1: "pid", K2: "hid", FK: "hid", CCs: d.GoodCCs(nCC), DCs: census.AllDCs()}
	opt := linksynth.Options{Seed: seed, Workers: workers}

	tr := obsv.NewTrace(obsv.NewID(), "benchtab-solve", "benchtab")
	if explain {
		tr.RequestExplain()
	}
	ctx := obsv.WithTrace(context.Background(), tr)
	if _, err := core.SolveOnContext(ctx, in, opt, core.PoolFor(opt)); err != nil {
		fatal("-trace solve: %v", err)
	}
	tr.SetStatus("ok")
	tr.Finish()
	tj := tr.Snapshot()
	if asJSON {
		emitJSON(tj)
		return
	}
	fmt.Printf("trace %s: %d households, %d CCs, seed %d, total %v\n",
		tj.ID, unit, nCC, seed, tj.Dur.Round(time.Microsecond))
	for _, sp := range tj.Spans {
		fmt.Printf("  %-12s +%-12v %v\n", sp.Name,
			sp.Start.Sub(tj.Start).Round(time.Microsecond), sp.Dur.Round(time.Microsecond))
	}
	for _, ev := range tj.Events {
		fmt.Printf("  event +%v %s\n", ev.Time.Sub(tj.Start).Round(time.Microsecond), ev.Msg)
	}
	if explain {
		fmt.Println()
		printExplain(tj.Explain)
	}
}

// printExplain renders the EXPLAIN cost report as text: instance shape and
// routing, per-phase durations, partition and ILP effort, then the
// per-constraint measured selectivities (capped — a paper-scale CC set
// would drown the terminal; -json emits all of them).
func printExplain(ex *obsv.ExplainReport) {
	if ex == nil {
		fmt.Println("explain: no report (solver did not run)")
		return
	}
	fmt.Printf("explain: mode=%s view_rows=%d r2_rows=%d combos=%d used_bcols=%d\n",
		ex.Mode, ex.ViewRows, ex.R2Rows, ex.Combos, ex.UsedBCols)
	fmt.Printf("  routing: %d CCs -> hasse, %d CCs -> ilp\n", ex.CCsToHasse, ex.CCsToILP)
	for _, ph := range ex.Phases {
		fmt.Printf("  phase %-10s %v\n", ph.Name, time.Duration(ph.DurNS).Round(time.Microsecond))
	}
	p := ex.Partitions
	fmt.Printf("  partitions: count=%d rows min/mean/max=%d/%.1f/%d invalid=%d\n",
		p.Count, p.MinRows, p.MeanRows, p.MaxRows, p.InvalidRows)
	if ex.ILP.Vars > 0 {
		fmt.Printf("  ilp: vars=%d rows=%d nodes=%d iters=%d status=%s\n",
			ex.ILP.Vars, ex.ILP.Rows, ex.ILP.Nodes, ex.ILP.Iters, ex.ILP.Status)
	}
	const maxLines = 12
	for i, cc := range ex.CCs {
		if i == maxLines {
			fmt.Printf("  ... %d more CCs (use -json for all)\n", len(ex.CCs)-maxLines)
			break
		}
		for di, dj := range cc.Disjuncts {
			fmt.Printf("  cc[%d] %-14s target=%-5d route=%-5s disjunct %d: r1_rows=%d (sel %.3f) combos=%d (%.3f)\n",
				cc.Index, cc.Name, cc.Target, cc.Route, di,
				dj.R1Rows, dj.R1Selectivity, dj.Combos, dj.ComboFraction)
		}
	}
	for i, dc := range ex.DCs {
		if i == maxLines {
			fmt.Printf("  ... %d more DCs (use -json for all)\n", len(ex.DCs)-maxLines)
			break
		}
		fmt.Printf("  dc[%d] %-14s", dc.Index, dc.Name)
		for vi, v := range dc.Vars {
			fmt.Printf(" t%d: rows=%d (sel %.3f)", vi+1, v.Rows, v.Selectivity)
		}
		fmt.Println()
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal("encode JSON: %v", err)
	}
}

func parseInts(flagName, s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fatal("%s: bad scale %q (want a comma-separated list of positive integers, e.g. 1,2,5)", flagName, part)
		}
		out = append(out, n)
	}
	return out
}

// Profile teardown hooks; flushed both on normal return and from fatal, so
// a failing run — the one most worth diagnosing — still yields usable
// profiles. Each hook nils itself to stay idempotent.
var (
	stopCPUProfile  func()
	writeMemProfile func()
)

func flushProfiles() {
	// Heap snapshot first: stopping the CPU profile is cheap and the heap
	// state is most useful before teardown frees anything.
	if writeMemProfile != nil {
		writeMemProfile()
	}
	if stopCPUProfile != nil {
		stopCPUProfile()
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchtab: "+format+"\n", args...)
	flushProfiles()
	os.Exit(1)
}
