// Command benchtab regenerates the paper's evaluation tables and figures
// (§6, Figures 8–13 plus Table 1, the CC-count sweep, and our ablations) on
// the synthetic census substrate and prints them as text tables.
//
// Usage:
//
//	benchtab                  # run everything at the default quick scale
//	benchtab -exp fig8a,fig13 # selected experiments
//	benchtab -unit 982 -ccs 200 -scales 1,2,5,10   # closer to paper scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (see -list)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	unit := flag.Int("unit", 0, "households at scale 1x (default quick-scale)")
	areas := flag.Int("areas", 0, "distinct areas")
	ccs := flag.Int("ccs", 0, "CC set size (paper: 1001)")
	scales := flag.String("scales", "", "comma-separated scale multipliers (e.g. 1,2,5,10)")
	largeScales := flag.String("large-scales", "", "scales for fig11b")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Println(r.ID)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	if *unit > 0 {
		cfg.Unit = *unit
	}
	if *areas > 0 {
		cfg.Areas = *areas
	}
	if *ccs > 0 {
		cfg.NCC = *ccs
	}
	if *scales != "" {
		cfg.Scales = parseInts(*scales)
	}
	if *largeScales != "" {
		cfg.LargeScales = parseInts(*largeScales)
	}

	want := map[string]bool{}
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	for _, r := range experiments.Runners() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		tab, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Print(tab.String())
		fmt.Printf("(%s took %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "benchtab: bad scale %q\n", part)
			os.Exit(1)
		}
		out = append(out, n)
	}
	return out
}
