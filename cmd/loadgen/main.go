// Command loadgen replays a serving workload against a running linksynthd
// node or cluster and gates the run on serving SLOs.
//
// It mints a pool of census instances, replays POST /v1/solve against the
// target with zipf-distributed instance popularity — a head of hot
// instances goes warm in the byte cache while the tail keeps forcing cold
// solver runs — mixes in base+delta incremental re-solves at a
// configurable fraction, and ramps worker concurrency linearly over the
// ramp window. Latencies land in per-disposition histograms (cold solve,
// cache hit, delta) exactly as the server's own /metrics books them.
//
// At the end it prints a summary table, writes a BENCH_serving.json
// document, evaluates the declared SLOs — p50 and p99 over all successful
// solves plus the error rate — and exits 1 when any burns, so CI can run
// it as a serving smoke gate:
//
//	loadgen -target http://127.0.0.1:8080
//	loadgen -target http://n1:8080,http://n2:8080 -duration 20s -workers 12 \
//	        -delta-frac 0.3 -slo-p99 800ms -slo-error-rate 0.01
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/service"
)

// pooledInstance is one replayable instance: its pre-marshaled full solve
// request, the CC-0 base target delta nudges are computed from, and the
// content key the last successful solve reported (empty until then; delta
// requests need it as their base).
type pooledInstance struct {
	name string
	body []byte
	cc0  int64
	key  atomic.Value // string
}

// loadgen is the shared run state: targets, mix knobs, histograms and
// counters the workers feed concurrently.
type loadgen struct {
	targets     []string
	client      *http.Client
	pool        []*pooledInstance
	seed        int64
	zipfS       float64
	zipfV       float64
	deltaFrac   float64
	explainFrac float64
	workers     int
	ramp        time.Duration

	all      *obsv.Histogram // every successful solve, any disposition
	cold     *obsv.Histogram
	hit      *obsv.Histogram
	delta    *obsv.Histogram
	requests atomic.Uint64
	errors   atomic.Uint64
	noBase   atomic.Uint64 // delta attempts downgraded to full solves (no key yet)
	misses   atomic.Uint64 // delta requests 404ed for a lost session, replayed in full
}

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "comma-separated node base URLs; requests spread across them")
	duration := flag.Duration("duration", 15*time.Second, "total run length")
	ramp := flag.Duration("ramp", 0, "window over which worker concurrency ramps 1..workers (default duration/3)")
	workers := flag.Int("workers", 8, "peak concurrent workers")
	instances := flag.Int("instances", 12, "instance pool size (zipf domain)")
	unit := flag.Int("unit", 48, "households per instance")
	ccs := flag.Int("ccs", 8, "CCs per instance")
	seed := flag.Int64("seed", 1, "seed for instance data and traffic shape")
	zipfS := flag.Float64("zipf-s", 1.2, "zipf skew s (>1; larger = hotter head)")
	zipfV := flag.Float64("zipf-v", 1, "zipf offset v (>=1)")
	deltaFrac := flag.Float64("delta-frac", 0.25, "fraction of requests sent as base+delta re-solves")
	explainFrac := flag.Float64("explain-frac", 0, "fraction of requests sent with ?explain=1")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request HTTP timeout")
	sloP50 := flag.Duration("slo-p50", 0, "p50 latency SLO over all successful solves (0 = ungated)")
	sloP99 := flag.Duration("slo-p99", 0, "p99 latency SLO over all successful solves (0 = ungated)")
	sloErr := flag.Float64("slo-error-rate", -1, "error-rate SLO in [0,1] (-1 = ungated)")
	out := flag.String("out", "BENCH_serving.json", "result document path (empty = skip)")
	flag.Parse()

	if *workers < 1 || *instances < 1 || *zipfS <= 1 || *zipfV < 1 ||
		*deltaFrac < 0 || *deltaFrac > 1 || *explainFrac < 0 || *explainFrac > 1 {
		fatal("bad flags: workers/instances must be >=1, zipf-s > 1, zipf-v >= 1, fractions in [0,1]")
	}
	if *ramp == 0 {
		*ramp = *duration / 3
	}
	lg := &loadgen{
		targets:     splitTargets(*target),
		client:      &http.Client{Timeout: *timeout},
		seed:        *seed,
		zipfS:       *zipfS,
		zipfV:       *zipfV,
		deltaFrac:   *deltaFrac,
		explainFrac: *explainFrac,
		workers:     *workers,
		ramp:        *ramp,
		all:         obsv.NewHistogram("all", "all successful solves"),
		cold:        obsv.NewHistogram("cold", "cold solver runs"),
		hit:         obsv.NewHistogram("hit", "byte-cache hits"),
		delta:       obsv.NewHistogram("delta", "incremental re-solves"),
	}
	lg.buildPool(*instances, *unit, *ccs)

	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for id := 0; id < lg.workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lg.worker(id, deadline)
		}(id)
	}
	wg.Wait()
	wall := time.Since(start)

	doc := lg.report(wall, *sloP50, *sloP99, *sloErr)
	lg.printSummary(doc)
	if *out != "" {
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal("encode %s: %v", *out, err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *out, err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if len(doc.SLO.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: SLO burn: %s\n", strings.Join(doc.SLO.Violations, "; "))
		os.Exit(1)
	}
}

func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		fatal("-target: no URLs")
	}
	return out
}

// buildPool mints n census instances with distinct seeds — distinct data,
// distinct fingerprints, so each rendezvous-hashes to its own owner — and
// pre-marshals their full solve requests.
func (lg *loadgen) buildPool(n, unit, nCC int) {
	lg.pool = make([]*pooledInstance, n)
	for i := range lg.pool {
		d := census.Generate(census.Config{Households: unit, Areas: 6, Seed: lg.seed + int64(i)})
		in := core.Input{
			R1: d.Persons, R2: d.Housing,
			K1: "pid", K2: "hid", FK: "hid",
			CCs: d.GoodCCs(nCC), DCs: census.AllDCs(),
		}
		ij, err := service.EncodeInstance(in)
		if err != nil {
			fatal("encode instance %d: %v", i, err)
		}
		body, err := json.Marshal(service.SolveRequest{
			InstanceJSON: ij,
			Options:      &service.OptionsJSON{Seed: lg.seed},
		})
		if err != nil {
			fatal("marshal instance %d: %v", i, err)
		}
		lg.pool[i] = &pooledInstance{
			name: "inst-" + strconv.Itoa(i),
			body: body,
			cc0:  in.CCs[0].Target,
		}
	}
}

// worker replays requests until the deadline. Each worker owns a seeded
// rng (zipf generators are not concurrency-safe) and activates after its
// slice of the ramp window, so concurrency climbs 1..workers linearly.
func (lg *loadgen) worker(id int, deadline time.Time) {
	rng := rand.New(rand.NewSource(lg.seed + int64(id)*7919))
	zipf := rand.NewZipf(rng, lg.zipfS, lg.zipfV, uint64(len(lg.pool)-1))
	if lg.ramp > 0 && lg.workers > 1 {
		delay := lg.ramp * time.Duration(id) / time.Duration(lg.workers)
		if wake := time.Now().Add(delay); wake.Before(deadline) {
			time.Sleep(delay)
		} else {
			return
		}
	}
	for time.Now().Before(deadline) {
		p := lg.pool[zipf.Uint64()]
		lg.one(rng, p, rng.Float64() < lg.deltaFrac)
	}
}

// one issues a single request: a base+delta re-solve when asked and the
// instance already has a known key, a full solve otherwise. A delta that
// 404s (the owner lost or never had the warm session) is replayed as a
// full solve — that is the client-side miss path, counted separately from
// real errors.
func (lg *loadgen) one(rng *rand.Rand, p *pooledInstance, asDelta bool) {
	base, _ := p.key.Load().(string)
	if asDelta && base == "" {
		lg.noBase.Add(1)
		asDelta = false
	}
	var body []byte
	if asDelta {
		nudge := p.cc0 + 1 + int64(rng.Intn(3))
		b, err := json.Marshal(service.SolveRequest{
			Base:  base,
			Delta: &service.DeltaJSON{CCTargets: map[string]int64{"0": nudge}},
		})
		if err != nil {
			fatal("marshal delta: %v", err)
		}
		body = b
	} else {
		body = p.body
	}
	url := lg.targets[rng.Intn(len(lg.targets))] + "/v1/solve"
	if lg.explainFrac > 0 && rng.Float64() < lg.explainFrac {
		url += "?explain=1"
	}
	lg.requests.Add(1)
	start := time.Now()
	resp, err := lg.client.Post(url, "application/json", bytes.NewReader(body))
	elapsed := time.Since(start)
	if err != nil {
		lg.errors.Add(1)
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var sr struct {
			Key string `json:"key"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sr); err == nil && sr.Key != "" {
			p.key.Store(sr.Key)
		}
		lg.all.Observe(elapsed)
		switch {
		case resp.Header.Get("X-Linksynth-Incr") != "":
			lg.delta.Observe(elapsed)
		case resp.Header.Get("X-Linksynth-Cache") == "hit":
			lg.hit.Observe(elapsed)
		default:
			lg.cold.Observe(elapsed)
		}
	case asDelta && resp.StatusCode == http.StatusNotFound:
		// Session gone (restart, failover, eviction): fall back to the
		// full instance so the next delta has a warm base again.
		io.Copy(io.Discard, resp.Body)
		lg.misses.Add(1)
		lg.one(rng, p, false)
	default:
		io.Copy(io.Discard, resp.Body)
		lg.errors.Add(1)
	}
}

// benchDoc is the BENCH_serving.json shape.
type benchDoc struct {
	Bench  string              `json:"bench"`
	Config benchConfig         `json:"config"`
	Totals benchTotals         `json:"totals"`
	Routes map[string]routeTab `json:"routes"`
	SLO    sloTab              `json:"slo"`
}

type benchConfig struct {
	Targets     []string `json:"targets"`
	Workers     int      `json:"workers"`
	Instances   int      `json:"instances"`
	ZipfS       float64  `json:"zipf_s"`
	DeltaFrac   float64  `json:"delta_frac"`
	ExplainFrac float64  `json:"explain_frac"`
	Seed        int64    `json:"seed"`
	RampSeconds float64  `json:"ramp_seconds"`
}

type benchTotals struct {
	WallSeconds   float64 `json:"wall_seconds"`
	Requests      uint64  `json:"requests"`
	OK            uint64  `json:"ok"`
	Errors        uint64  `json:"errors"`
	ErrorRate     float64 `json:"error_rate"`
	DeltaMisses   uint64  `json:"delta_session_misses"`
	DeltaNoBase   uint64  `json:"delta_downgraded_no_base"`
	ThroughputQPS float64 `json:"throughput_qps"`
}

type routeTab struct {
	Count uint64  `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P90ms float64 `json:"p90_ms"`
	P99ms float64 `json:"p99_ms"`
}

type sloTab struct {
	P50ms      float64  `json:"p50_ms,omitempty"`
	P99ms      float64  `json:"p99_ms,omitempty"`
	ErrorRate  float64  `json:"error_rate,omitempty"`
	Violations []string `json:"violations"`
}

func routeOf(h *obsv.Histogram) routeTab {
	return routeTab{
		Count: h.Count(),
		P50ms: h.Quantile(0.50) * 1000,
		P90ms: h.Quantile(0.90) * 1000,
		P99ms: h.Quantile(0.99) * 1000,
	}
}

// report assembles the result document and evaluates the SLO gates.
func (lg *loadgen) report(wall time.Duration, sloP50, sloP99 time.Duration, sloErr float64) *benchDoc {
	reqs, errs := lg.requests.Load(), lg.errors.Load()
	errRate := 0.0
	if reqs > 0 {
		errRate = float64(errs) / float64(reqs)
	}
	slo := sloTab{Violations: []string{}}
	if sloP50 > 0 {
		slo.P50ms = float64(sloP50.Milliseconds())
		if got := lg.all.Quantile(0.50); got > sloP50.Seconds() {
			slo.Violations = append(slo.Violations,
				fmt.Sprintf("p50 %.1fms > SLO %v", got*1000, sloP50))
		}
	}
	if sloP99 > 0 {
		slo.P99ms = float64(sloP99.Milliseconds())
		if got := lg.all.Quantile(0.99); got > sloP99.Seconds() {
			slo.Violations = append(slo.Violations,
				fmt.Sprintf("p99 %.1fms > SLO %v", got*1000, sloP99))
		}
	}
	if sloErr >= 0 {
		slo.ErrorRate = sloErr
		if errRate > sloErr {
			slo.Violations = append(slo.Violations,
				fmt.Sprintf("error rate %.4f > SLO %.4f", errRate, sloErr))
		}
	}
	return &benchDoc{
		Bench: "serving",
		Config: benchConfig{
			Targets: lg.targets, Workers: lg.workers, Instances: len(lg.pool),
			ZipfS: lg.zipfS, DeltaFrac: lg.deltaFrac, ExplainFrac: lg.explainFrac,
			Seed: lg.seed, RampSeconds: lg.ramp.Seconds(),
		},
		Totals: benchTotals{
			WallSeconds:   wall.Seconds(),
			Requests:      reqs,
			OK:            lg.all.Count(),
			Errors:        errs,
			ErrorRate:     errRate,
			DeltaMisses:   lg.misses.Load(),
			DeltaNoBase:   lg.noBase.Load(),
			ThroughputQPS: float64(lg.all.Count()) / wall.Seconds(),
		},
		Routes: map[string]routeTab{
			"all":       routeOf(lg.all),
			"solve":     routeOf(lg.cold),
			"cache_hit": routeOf(lg.hit),
			"delta":     routeOf(lg.delta),
		},
		SLO: slo,
	}
}

func (lg *loadgen) printSummary(doc *benchDoc) {
	t := doc.Totals
	fmt.Printf("loadgen: %d requests in %.1fs (%.1f qps ok), %d ok, %d errors (rate %.4f), %d delta session misses\n",
		t.Requests, t.WallSeconds, t.ThroughputQPS, t.OK, t.Errors, t.ErrorRate, t.DeltaMisses)
	for _, name := range []string{"all", "solve", "cache_hit", "delta"} {
		r := doc.Routes[name]
		fmt.Printf("  %-9s count=%-6d p50=%8.1fms p90=%8.1fms p99=%8.1fms\n",
			name, r.Count, r.P50ms, r.P90ms, r.P99ms)
	}
	if len(doc.SLO.Violations) == 0 {
		fmt.Println("  SLO: pass")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(2)
}
