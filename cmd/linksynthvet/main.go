// Command linksynthvet is the repository's static verifier: five custom
// analyzers that mechanically enforce the determinism and concurrency
// contracts the solver, cache, cluster, and session layers are built on.
//
// It runs two ways:
//
//	linksynthvet ./...                      # standalone, from the module root
//	go vet -vettool=$(command -v linksynthvet) ./...
//
// Standalone mode loads packages through `go list -export` and prints
// findings; it exits 1 if any survive suppression. With -json it emits a
// machine-readable report (used by CI to publish the diagnostic-count
// trend next to the BENCH_*.json artifacts).
//
// As a vettool it speaks the `go vet` unit-checker protocol: the -V=full
// build-cache handshake, the -flags query, and per-package .cfg units with
// types resolved from the compiler's export data. Diagnostic-free units
// exit 0, findings exit 2, so `go vet -vettool=... ./...` fails the build
// on any new violation.
//
// The suppression vocabulary is `//lint:<token> <justification>` on the
// flagged line or the line above: `ordered` (maporder), `wallclock`,
// `guardedby`, `ctxflow`, `poolleak`. A directive without a justification
// is itself reported — every silenced site documents why it is safe.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/guardedby"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/poolleak"
	"repro/internal/analysis/wallclock"
)

const version = "v1.0.0"

// Analyzers is the linksynthvet suite. Order is the report order.
var analyzers = []*analysis.Analyzer{
	maporder.Analyzer,
	wallclock.Analyzer,
	guardedby.Analyzer,
	ctxflow.Analyzer,
	poolleak.Analyzer,
}

func main() {
	// The go vet handshake probes -V=full before flag parsing can help.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			fmt.Printf("linksynthvet version %s\n", version)
			return
		case "-flags", "--flags":
			// No analyzer flags: report an empty set to the build tool.
			fmt.Println("[]")
			return
		}
	}

	jsonOut := flag.Bool("json", false, "emit findings as JSON (standalone mode)")
	printPath := flag.Bool("print-path", false, "print this binary's path and exit (for go vet -vettool=$(...))")
	dir := flag.String("C", ".", "module directory to analyze from (standalone mode)")
	flag.Parse()

	if *printPath {
		exe, err := os.Executable()
		if err != nil {
			fatal(err)
		}
		fmt.Println(exe)
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0])
		return
	}
	runStandalone(*dir, args, *jsonOut)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "linksynthvet:", err)
	os.Exit(1)
}

// ---------- standalone mode ----------

func runStandalone(dir string, patterns []string, jsonOut bool) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fatal(err)
	}
	findings, stats, err := analysis.RunStats(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		type finding struct {
			Position string `json:"position"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		report := struct {
			Count      int            `json:"count"`
			ByAnalyzer map[string]int `json:"by_analyzer"`
			Suppressed map[string]int `json:"suppressed"`
			Findings   []finding      `json:"findings"`
		}{
			Count:      len(findings),
			ByAnalyzer: stats.Findings,
			Suppressed: stats.Suppressed,
			Findings:   []finding{},
		}
		for _, f := range findings {
			report.Findings = append(report.Findings, finding{f.Position.String(), f.Analyzer, f.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// ---------- go vet unit-checker mode ----------

// unitConfig mirrors the JSON `go vet` writes for each compilation unit.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fatal(fmt.Errorf("decoding %s: %v", cfgFile, err))
	}
	// The suite computes no cross-package facts, but go vet caches the
	// facts file as the unit's output, so always produce it.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatal(err)
		}
	}
	// Dependency units exist only to propagate facts; with none to
	// compute, they are free.
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatal(err)
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if mapped, ok := cfg.ImportMap[importPath]; ok {
				importPath = mapped
			}
			return imp.Import(importPath)
		}),
		GoVersion: cfg.GoVersion,
	}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err))
	}

	pkg := &analysis.Package{
		Path:      cfg.ImportPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
