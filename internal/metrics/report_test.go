package metrics

import (
	"strings"
	"testing"

	"repro/internal/table"
)

func TestReportDCsPerConstraint(t *testing.T) {
	dcs := parseDCs(t, `
dc owners: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'
dc gap: deny t1.Rel = 'Owner' & t2.Rel = 'Spouse' & t2.Age < t1.Age - 50
`)
	// Home 1: two owners (violates dc0) and a too-young spouse (violates
	// dc1 with each owner). Home 2: clean.
	r1 := table.NewRelation("P", table.NewSchema(
		table.IntCol("pid"), table.IntCol("Age"), table.StrCol("Rel"), table.IntCol("hid")))
	r1.MustAppend(table.Int(1), table.Int(80), table.String("Owner"), table.Int(1))
	r1.MustAppend(table.Int(2), table.Int(75), table.String("Owner"), table.Int(1))
	r1.MustAppend(table.Int(3), table.Int(20), table.String("Spouse"), table.Int(1))
	r1.MustAppend(table.Int(4), table.Int(40), table.String("Owner"), table.Int(2))

	rep := ReportDCs(r1, "hid", dcs)
	if rep.PerDC[0] != 2 {
		t.Errorf("dc0 tuples = %d, want 2", rep.PerDC[0])
	}
	if rep.PerDC[1] != 3 { // both owners plus the spouse
		t.Errorf("dc1 tuples = %d, want 3", rep.PerDC[1])
	}
	if len(rep.Violating) != 3 {
		t.Errorf("union = %d, want 3", len(rep.Violating))
	}
	if got, want := rep.Fraction(), 0.75; got != want {
		t.Errorf("fraction = %v, want %v", got, want)
	}
	s := rep.String()
	if !strings.Contains(s, "dc[1]: 3 tuples") || !strings.Contains(s, "0.7500") {
		t.Errorf("render: %s", s)
	}
	// Consistency with the aggregate metric.
	if rep.Fraction() != DCErrorFraction(r1, "hid", dcs) {
		t.Error("report fraction disagrees with DCErrorFraction")
	}
}

func TestReportDCsEmpty(t *testing.T) {
	r1 := table.NewRelation("P", table.NewSchema(table.IntCol("pid"), table.IntCol("hid")))
	rep := ReportDCs(r1, "hid", nil)
	if rep.Fraction() != 0 || len(rep.Violating) != 0 {
		t.Errorf("empty report: %+v", rep)
	}
	if !strings.Contains(rep.String(), "0/0") {
		t.Errorf("render: %s", rep.String())
	}
}
