// Package metrics implements the error measures of §6.1: the relative CC
// error |ĉ − c| / max(10, c) per cardinality constraint, and the DC error
// as the fraction of R̂1 tuples involved in at least one denial-constraint
// violation.
package metrics

import (
	"sort"

	"repro/internal/constraint"
	"repro/internal/table"
)

// CCErrors returns the relative error of every CC measured on the final
// join view. Disjunctive CCs count rows satisfying any disjunct once.
func CCErrors(vjoin *table.Relation, ccs []constraint.CC) []float64 {
	out := make([]float64, len(ccs))
	for i, cc := range ccs {
		out[i] = RelativeError(cc.CountIn(vjoin), cc.Target)
	}
	return out
}

// RelativeError is |got − want| / max(10, want), the measure used in
// Figures 8–10 (the threshold of 10 guards small targets).
func RelativeError(got, want int64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	den := want
	if den < 10 {
		den = 10
	}
	return float64(d) / float64(den)
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Mean returns the mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank on the
// sorted values.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// DCViolations finds all tuples of r1hat involved in at least one DC
// violation. Tuples are grouped by their FK value (the implicit conjunct of
// every foreign-key DC), and each DC's explicit predicate — bound to the
// schema once — is evaluated over ordered tuple assignments within each
// group. It returns the set of violating row indices.
func DCViolations(r1hat *table.Relation, fkCol string, dcs []constraint.DC) map[int]bool {
	groups := r1hat.GroupByValue(fkCol)
	violating := make(map[int]bool)
	bound := constraint.BindDCs(dcs, r1hat.Schema())
	//lint:ordered groups are independent and markViolations only unions rows into the result set
	for key, rows := range groups {
		if len(rows) < 2 {
			continue
		}
		if key.IsNull() {
			continue // unassigned tuples cannot violate FK DCs
		}
		for di := range bound {
			if len(rows) < bound[di].K {
				continue
			}
			markViolations(r1hat, &bound[di], rows, violating)
		}
	}
	return violating
}

// markViolations enumerates ordered assignments of distinct group rows to
// the DC's variables (with unary-atom pre-filtering) and marks every member
// of a satisfying set. Candidates guarantee the unary atoms, so the leaf
// check evaluates only the binary ones.
func markViolations(r *table.Relation, dc *constraint.BoundDC, rows []int, out map[int]bool) {
	cands := make([][]int, dc.K)
	for v := 0; v < dc.K; v++ {
		for _, ri := range rows {
			if dc.UnaryMatch(v, r.Row(ri)) {
				cands[v] = append(cands[v], ri)
			}
		}
		if len(cands[v]) == 0 {
			return
		}
	}
	assign := make([]int, dc.K)
	tuples := make([][]table.Value, dc.K)
	var rec func(v int)
	rec = func(v int) {
		if v == dc.K {
			for i, ri := range assign {
				tuples[i] = r.Row(ri)
			}
			if dc.HoldsBinary(tuples...) {
				for _, ri := range assign {
					out[ri] = true
				}
			}
			return
		}
		for _, ri := range cands[v] {
			dup := false
			for _, prev := range assign[:v] {
				if prev == ri {
					dup = true
					break
				}
			}
			if !dup {
				assign[v] = ri
				rec(v + 1)
			}
		}
	}
	rec(0)
}

// DCErrorFraction is the §6.1 DC error: |violating tuples| / |R1|.
func DCErrorFraction(r1hat *table.Relation, fkCol string, dcs []constraint.DC) float64 {
	if r1hat.Len() == 0 {
		return 0
	}
	return float64(len(DCViolations(r1hat, fkCol, dcs))) / float64(r1hat.Len())
}
