package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/constraint"
	"repro/internal/table"
)

// DCReport breaks DC violations down per constraint — the diagnostic view
// a user needs when a baseline or hand-written assignment fails: which
// denial constraints are violated and how many tuples each implicates.
type DCReport struct {
	// PerDC maps DC index to the number of distinct tuples involved in at
	// least one violation of that DC.
	PerDC []int
	// Violating is the union of violating tuple indices across all DCs.
	Violating map[int]bool
	// Total rows examined.
	Rows int
}

// Fraction is the §6.1 DC error of the combined report.
func (r *DCReport) Fraction() float64 {
	if r.Rows == 0 {
		return 0
	}
	return float64(len(r.Violating)) / float64(r.Rows)
}

// String renders the nonzero rows of the report, worst first.
func (r *DCReport) String() string {
	type row struct{ idx, n int }
	var rows []row
	for i, n := range r.PerDC {
		if n > 0 {
			rows = append(rows, row{i, n})
		}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].n > rows[b].n })
	var b strings.Builder
	fmt.Fprintf(&b, "DC violations: %d/%d tuples (%.4f)\n", len(r.Violating), r.Rows, r.Fraction())
	for _, x := range rows {
		fmt.Fprintf(&b, "  dc[%d]: %d tuples\n", x.idx, x.n)
	}
	return b.String()
}

// ReportDCs evaluates every DC separately over r1hat grouped by FK value.
func ReportDCs(r1hat *table.Relation, fkCol string, dcs []constraint.DC) *DCReport {
	rep := &DCReport{PerDC: make([]int, len(dcs)), Violating: make(map[int]bool), Rows: r1hat.Len()}
	groups := r1hat.GroupByValue(fkCol)
	bound := constraint.BindDCs(dcs, r1hat.Schema())
	for di := range bound {
		per := make(map[int]bool)
		//lint:ordered groups are independent and markViolations only unions rows into per
		for key, rows := range groups {
			if len(rows) < bound[di].K || key.IsNull() {
				continue
			}
			markViolations(r1hat, &bound[di], rows, per)
		}
		rep.PerDC[di] = len(per)
		for t := range per {
			rep.Violating[t] = true
		}
	}
	return rep
}
