package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/table"
)

func TestRelativeError(t *testing.T) {
	cases := []struct {
		got, want int64
		err       float64
	}{
		{4, 4, 0},
		{6, 4, 0.2}, // |6-4|/max(10,4) = 2/10
		{0, 100, 1}, // 100/100
		{150, 100, 0.5},
		{3, 0, 0.3}, // threshold denominator
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := RelativeError(c.got, c.want); math.Abs(got-c.err) > 1e-12 {
			t.Errorf("RelativeError(%d,%d) = %v, want %v", c.got, c.want, got, c.err)
		}
	}
}

func TestMedianMeanQuantile(t *testing.T) {
	xs := []float64{0.5, 0.1, 0.3}
	if Median(xs) != 0.3 {
		t.Errorf("median = %v", Median(xs))
	}
	if Median([]float64{1, 3}) != 2 {
		t.Errorf("even median = %v", Median([]float64{1, 3}))
	}
	if Median(nil) != 0 || Mean(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Error("empty inputs should be 0")
	}
	if math.Abs(Mean(xs)-0.3) > 1e-12 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Quantile(xs, 0) != 0.1 || Quantile(xs, 1) != 0.5 {
		t.Errorf("quantiles: %v %v", Quantile(xs, 0), Quantile(xs, 1))
	}
	// Median must not mutate its input.
	if xs[0] != 0.5 {
		t.Error("Median sorted the caller's slice")
	}
}

func buildR1(t *testing.T, hids []int64) *table.Relation {
	t.Helper()
	r1 := table.NewRelation("Persons", table.NewSchema(
		table.IntCol("pid"), table.IntCol("Age"), table.StrCol("Rel"), table.IntCol("hid")))
	rows := []struct {
		age int64
		rel string
	}{
		{75, "Owner"}, {70, "Owner"}, {25, "Spouse"}, {10, "Child"},
	}
	for i, x := range rows {
		var h table.Value = table.Null()
		if hids != nil {
			h = table.Int(hids[i])
		}
		r1.MustAppend(table.Int(int64(i+1)), table.Int(x.age), table.String(x.rel), h)
	}
	return r1
}

func parseDCs(t *testing.T, src string) []constraint.DC {
	t.Helper()
	_, dcs, err := constraint.ParseConstraints(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return dcs
}

func TestDCViolationsFindsOwnerPair(t *testing.T) {
	dcs := parseDCs(t, "dc: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'\n")
	r1 := buildR1(t, []int64{1, 1, 1, 2}) // two owners share hid 1
	viol := DCViolations(r1, "hid", dcs)
	if len(viol) != 2 || !viol[0] || !viol[1] {
		t.Errorf("violations = %v, want rows 0 and 1", viol)
	}
	if f := DCErrorFraction(r1, "hid", dcs); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("fraction = %v, want 0.5", f)
	}
}

func TestDCViolationsCleanAssignment(t *testing.T) {
	dcs := parseDCs(t, "dc: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'\n")
	r1 := buildR1(t, []int64{1, 2, 1, 1})
	if f := DCErrorFraction(r1, "hid", dcs); f != 0 {
		t.Errorf("fraction = %v, want 0", f)
	}
}

func TestDCViolationsAsymmetricBinary(t *testing.T) {
	dcs := parseDCs(t, "dc: deny t1.Rel = 'Owner' & t2.Rel = 'Spouse' & t2.Age < t1.Age - 50\n")
	// Owner 75 with spouse 25 in home 1: 25 < 25 false -> clean.
	r1 := buildR1(t, []int64{1, 2, 1, 3})
	if f := DCErrorFraction(r1, "hid", dcs); f != 0 {
		t.Errorf("fraction = %v", f)
	}
	// Make the spouse much younger.
	r1.Set(2, "Age", table.Int(20))
	viol := DCViolations(r1, "hid", dcs)
	if len(viol) != 2 || !viol[0] || !viol[2] {
		t.Errorf("violations = %v, want rows 0 and 2", viol)
	}
}

func TestDCViolationsNullFKSkipped(t *testing.T) {
	dcs := parseDCs(t, "dc: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'\n")
	r1 := buildR1(t, nil) // all FKs null
	if f := DCErrorFraction(r1, "hid", dcs); f != 0 {
		t.Errorf("null FK fraction = %v", f)
	}
}

func TestDCViolationsTernary(t *testing.T) {
	dcs := parseDCs(t, "dc: deny t1.Rel = 'Owner' & t2.Rel = 'Owner' & t3.Rel = 'Owner'\n")
	r1 := table.NewRelation("P", table.NewSchema(table.IntCol("pid"), table.StrCol("Rel"), table.IntCol("hid")))
	for i := 0; i < 3; i++ {
		r1.MustAppend(table.Int(int64(i)), table.String("Owner"), table.Int(1))
	}
	r1.MustAppend(table.Int(9), table.String("Owner"), table.Int(2))
	viol := DCViolations(r1, "hid", dcs)
	if len(viol) != 3 {
		t.Errorf("violations = %v, want the hid-1 triple", viol)
	}
}

func TestCCErrors(t *testing.T) {
	r1 := buildR1(t, []int64{1, 2, 1, 1})
	ccSrc := "cc: count(Rel = 'Owner') = 2\ncc: count(Age <= 24) = 5\n"
	ccs, _, err := constraint.ParseConstraints(strings.NewReader(ccSrc))
	if err != nil {
		t.Fatal(err)
	}
	errs := CCErrors(r1, ccs)
	if errs[0] != 0 {
		t.Errorf("cc0 err = %v", errs[0])
	}
	// Only one row with Age <= 24, target 5 -> |1-5|/10 = 0.4.
	if math.Abs(errs[1]-0.4) > 1e-12 {
		t.Errorf("cc1 err = %v", errs[1])
	}
}

func TestDCErrorFractionEmptyRelation(t *testing.T) {
	r1 := table.NewRelation("P", table.NewSchema(table.IntCol("pid"), table.IntCol("hid")))
	if f := DCErrorFraction(r1, "hid", nil); f != 0 {
		t.Errorf("empty fraction = %v", f)
	}
}
