package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
)

// fetchFlight reads a node's /debug/flight dump.
func fetchFlight(t *testing.T, url string) flightJSON {
	t.Helper()
	resp, err := http.Get(url + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/flight: status %d", resp.StatusCode)
	}
	var fj flightJSON
	if err := json.Unmarshal(readBody(t, resp), &fj); err != nil {
		t.Fatal(err)
	}
	return fj
}

// waitForTrace polls a node's flight recorder for a trace id: the recorder
// files a trace after the response bytes are already on the wire, so an
// immediate read can race the epilogue.
func waitForTrace(t *testing.T, url, id string) obsv.TraceJSON {
	t.Helper()
	for i := 0; i < 400; i++ {
		for _, tj := range fetchFlight(t, url).Traces {
			if tj.ID == id {
				return tj
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("trace %s never appeared in %s/debug/flight", id, url)
	return obsv.TraceJSON{}
}

func spanNames(tj obsv.TraceJSON) map[string]bool {
	out := make(map[string]bool, len(tj.Spans))
	for _, sp := range tj.Spans {
		out[sp.Name] = true
	}
	return out
}

// Acceptance: a solve submitted to a non-owner is one distributed trace.
// The edge mints an id, the forward carries it to the owner, and both
// nodes' flight recorders hold a trace under the shared id — the
// forwarding node's with the forward span, the owner's with the full
// solver phase breakdown — with at least 6 spans covering
// edge -> forward -> phases between them.
func TestForwardedSolveIsOneDistributedTrace(t *testing.T) {
	nodes := newTestCluster(t, 2)
	urls := []string{nodes[0].url, nodes[1].url}
	opt := &OptionsJSON{Seed: 1}
	inst := instanceOwnedBy(t, urls, nodes[1].url, opt, 400)

	resp := postJSON(t, nodes[0].url+"/v1/solve", SolveRequest{InstanceJSON: inst, Options: opt})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	id := resp.Header.Get(obsv.TraceHeader)
	if id == "" {
		t.Fatalf("response carries no %s header", obsv.TraceHeader)
	}
	if got := resp.Header.Get("X-Linksynth-Node"); got != nodes[1].url {
		t.Fatalf("solve answered by %q, want owner %q (not forwarded?)", got, nodes[1].url)
	}
	body := readBody(t, resp)
	if strings.Contains(string(body), id) {
		t.Errorf("trace id %s leaked into the response body", id)
	}

	edge := waitForTrace(t, nodes[0].url, id)
	owner := waitForTrace(t, nodes[1].url, id)
	if !spanNames(edge)["forward"] {
		t.Errorf("forwarding node's trace has spans %v, want a forward span", spanNames(edge))
	}
	ownerSpans := spanNames(owner)
	for _, want := range []string{"compile", "phase2"} {
		if !ownerSpans[want] {
			t.Errorf("owner's trace is missing the %s span (has %v)", want, ownerSpans)
		}
	}
	if total := len(edge.Spans) + len(owner.Spans); total < 6 {
		t.Errorf("distributed trace %s has %d spans across both nodes, want >= 6", id, total)
	}
	if edge.Node == owner.Node {
		t.Errorf("both trace halves claim node %q; want distinct nodes", edge.Node)
	}
}

// A client-supplied trace id is adopted, echoed, and retrievable from the
// flight recorder.
func TestTraceIDAdoptedFromRequestHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	b, err := json.Marshal(SolveRequest{InstanceJSON: testInstance(0), Options: &OptionsJSON{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obsv.TraceHeader, "feedfacecafebeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if got := resp.Header.Get(obsv.TraceHeader); got != "feedfacecafebeef" {
		t.Fatalf("response echoes trace id %q, want the supplied feedfacecafebeef", got)
	}
	tj := waitForTrace(t, ts.URL, "feedfacecafebeef")
	if tj.Status != "200 miss" {
		t.Errorf("trace status = %q, want \"200 miss\"", tj.Status)
	}
	if len(tj.Spans) < 4 {
		t.Errorf("solve trace has %d spans, want >= 4", len(tj.Spans))
	}
}

// The scrape is deterministically ordered: families sorted by name, each
// preceded by HELP and TYPE, and two scrapes expose the identical family
// sequence. The histograms and build_info ride along.
func TestMetricsDeterministicOrderingAndExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: testInstance(0), Options: &OptionsJSON{Seed: 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)

	scrape := func() string {
		r, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		return string(readBody(t, r))
	}
	families := func(body string) []string {
		var fams []string
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, "# HELP ") {
				fams = append(fams, strings.SplitN(line, " ", 4)[2])
			}
		}
		return fams
	}

	a, b := scrape(), scrape()
	fa, fb := families(a), families(b)
	if len(fa) == 0 {
		t.Fatal("no metric families in scrape")
	}
	if fmt.Sprint(fa) != fmt.Sprint(fb) {
		t.Errorf("family sequence changed across scrapes:\n%v\n%v", fa, fb)
	}
	for i := 1; i < len(fa); i++ {
		if fa[i-1] >= fa[i] {
			t.Errorf("families not strictly sorted: %q before %q", fa[i-1], fa[i])
		}
	}
	// Every family's TYPE line must directly follow its HELP line.
	lines := strings.Split(a, "\n")
	for i, line := range lines {
		if strings.HasPrefix(line, "# HELP ") {
			name := strings.SplitN(line, " ", 4)[2]
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+name+" ") {
				t.Errorf("family %s has no TYPE line after its HELP line", name)
			}
		}
	}
	for _, want := range []string{
		"linksynthd_build_info{",
		"# TYPE linksynthd_solve_duration_seconds histogram",
		`linksynthd_solve_duration_seconds_bucket{le="+Inf"}`,
		"linksynthd_solve_duration_seconds_sum",
		"linksynthd_solve_duration_seconds_count 1",
		"linksynthd_flight_recorded_total 1",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
}

// Concurrent scrapes, flight dumps, and solves: exercised together so the
// race detector sees the metrics read path, the recorder's ring writes,
// and the histograms under real traffic.
func TestConcurrentScrapesAndFlightWrites(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, FlightEntries: 8})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/debug/flight"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					readBody(t, resp)
				}
			}
		}()
	}
	for i := 0; i < 24; i++ {
		resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: testInstance(int64(i % 6)), Options: &OptionsJSON{Seed: 1}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d: %s", i, resp.StatusCode, readBody(t, resp))
		}
		readBody(t, resp)
	}
	close(stop)
	wg.Wait()

	fj := fetchFlight(t, ts.URL)
	if fj.RecordedTotal < 24 {
		t.Errorf("flight recorder saw %d traces, want >= 24", fj.RecordedTotal)
	}
	if len(fj.Traces) > 8 {
		t.Errorf("ring of 8 holds %d traces", len(fj.Traces))
	}
}
