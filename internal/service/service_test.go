package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
)

const testConstraints = `cc cc1: count(Rel = 'Owner', Area = 'Chicago') = 2
cc cc2: count(Rel = 'Owner', Area = 'NYC') = 1
dc oo: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'`

// testInstance returns the JSON wire form of a small solvable instance.
// bump perturbs one R1 age so callers can mint distinct instances.
func testInstance(bump int64) InstanceJSON {
	r1 := &RelationJSON{
		Name: "Persons",
		Columns: []ColumnJSON{
			{Name: "pid", Type: "int"}, {Name: "Age", Type: "int"},
			{Name: "Rel", Type: "string"}, {Name: "hid", Type: "int"},
		},
		Rows: [][]any{
			{1, 70 + bump, "Owner", nil},
			{2, 25, "Owner", nil},
			{3, 24, "Spouse", nil},
			{4, 30, "Owner", nil},
		},
	}
	r2 := &RelationJSON{
		Name: "Housing",
		Columns: []ColumnJSON{
			{Name: "hid", Type: "int"}, {Name: "Area", Type: "string"},
		},
		Rows: [][]any{
			{1, "Chicago"}, {2, "Chicago"}, {3, "NYC"}, {4, "NYC"},
		},
	}
	return InstanceJSON{R1: r1, R2: r2, K1: "pid", K2: "hid", FK: "hid", Constraints: testConstraints}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Cache == nil {
		c, err := cache.Open("", 64)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = c
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func metricValue(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readBody(t, resp))
	for _, line := range strings.Split(body, "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, "linksynthd_"+name+" %d", &v); n == 1 {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

func TestSolveRoundTripAndCacheHitIsByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	req := SolveRequest{InstanceJSON: testInstance(0), Options: &OptionsJSON{Seed: 1}}
	resp := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get("X-Linksynth-Cache"); got != "miss" {
		t.Errorf("first solve cache header = %q, want miss", got)
	}
	cold := readBody(t, resp)

	var sr SolveResponse
	if err := json.Unmarshal(cold, &sr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if len(sr.Key) != 64 {
		t.Errorf("key = %q, want 64 hex chars", sr.Key)
	}
	if sr.Result.DCError != 0 {
		t.Errorf("DC error = %v, want 0 (solver guarantee)", sr.Result.DCError)
	}
	if len(sr.Result.R1Hat.Rows) != 4 {
		t.Fatalf("r1_hat has %d rows", len(sr.Result.R1Hat.Rows))
	}
	for i, row := range sr.Result.R1Hat.Rows {
		if row[3] == nil {
			t.Errorf("r1_hat row %d: FK still null", i)
		}
	}

	// The determinism contract: a cache hit returns the byte-identical body.
	resp2 := postJSON(t, ts.URL+"/v1/solve", req)
	if got := resp2.Header.Get("X-Linksynth-Cache"); got != "hit" {
		t.Errorf("second solve cache header = %q, want hit", got)
	}
	warm := readBody(t, resp2)
	if !bytes.Equal(cold, warm) {
		t.Error("cache hit body differs from cold solve body")
	}
	if runs := metricValue(t, ts.URL, "solver_runs_total"); runs != 1 {
		t.Errorf("solver runs = %d, want 1", runs)
	}
}

func TestMalformedDSLIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	inst := testInstance(0)
	inst.Constraints = "cc broken: count(Rel ==== 'Owner') = 2"
	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: inst})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "constraints") {
		t.Errorf("error does not mention constraints: %s", body)
	}
}

func TestUnknownKeyColumnIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	inst := testInstance(0)
	inst.K1 = "nope"
	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: inst})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "nope") {
		t.Errorf("error does not name the offending column: %s", body)
	}
}

func TestOversizedBodyIs413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBody: 256})
	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: testInstance(0)})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)
}

func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	req := SolveRequest{InstanceJSON: testInstance(1), Options: &OptionsJSON{Seed: 1}}

	const n = 4
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := json.Marshal(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	// The acceptance bar: concurrent identical requests share ONE solver run.
	if runs := metricValue(t, ts.URL, "solver_runs_total"); runs != 1 {
		t.Errorf("solver runs = %d, want 1 for %d concurrent identical requests", runs, n)
	}
}

func TestWarmCacheDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := SolveRequest{InstanceJSON: testInstance(2), Options: &OptionsJSON{Seed: 1}}

	c1, err := cache.Open(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Cache: c1})
	ts1 := httptest.NewServer(s1)
	resp := postJSON(t, ts1.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold solve: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	cold := readBody(t, resp)
	ts1.Close()
	s1.Close()
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process against the same -cache-dir serves the instance
	// without re-solving.
	c2, err := cache.Open(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	s2 := New(Config{Cache: c2})
	ts2 := httptest.NewServer(s2)
	t.Cleanup(func() { ts2.Close(); s2.Close() })

	resp2 := postJSON(t, ts2.URL+"/v1/solve", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm solve: status %d: %s", resp2.StatusCode, readBody(t, resp2))
	}
	if got := resp2.Header.Get("X-Linksynth-Cache"); got != "hit" {
		t.Errorf("warm restart cache header = %q, want hit", got)
	}
	warm := readBody(t, resp2)
	if !bytes.Equal(cold, warm) {
		t.Error("restarted server's body differs from the original solve")
	}
	if runs := metricValue(t, ts2.URL, "solver_runs_total"); runs != 0 {
		t.Errorf("restarted server ran the solver %d times, want 0", runs)
	}
}

func TestMultipartCSVSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	r1, _ := mw.CreateFormFile("r1", "persons.csv")
	io.WriteString(r1, "pid,Age,Rel,hid\n1,70,Owner,\n2,25,Owner,\n3,24,Spouse,\n4,30,Owner,\n")
	r2, _ := mw.CreateFormFile("r2", "housing.csv")
	io.WriteString(r2, "hid,Area\n1,Chicago\n2,Chicago\n3,NYC\n4,NYC\n")
	mw.WriteField("k1", "pid")
	mw.WriteField("k2", "hid")
	mw.WriteField("fk", "hid")
	mw.WriteField("constraints", testConstraints)
	mw.WriteField("options", `{"seed": 1}`)
	mw.Close()

	resp, err := http.Post(ts.URL+"/v1/solve", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Result.DCError != 0 {
		t.Errorf("DC error = %v, want 0", sr.Result.DCError)
	}
	// The CSV path is content-addressed like the JSON path.
	if c := metricValue(t, ts.URL, "cache_entries"); c != 1 {
		t.Errorf("cache entries = %d, want 1", c)
	}
}

func TestBatchJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	req := BatchRequest{
		Instances: []InstanceJSON{testInstance(3), testInstance(4)},
		Options:   &OptionsJSON{Seed: 1},
	}
	resp := postJSON(t, ts.URL+"/v1/batch", req)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202: %s", resp.StatusCode, body)
	}
	var js jobStatusJSON
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if js.ID == "" || js.Instances != 2 {
		t.Fatalf("job accept = %+v", js)
	}

	deadlineOk := false
	for i := 0; i < 400; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + js.ID)
		if err != nil {
			t.Fatal(err)
		}
		b := readBody(t, resp)
		if err := json.Unmarshal(b, &js); err != nil {
			t.Fatalf("poll decode: %v: %s", err, b)
		}
		if js.Status == jobDone {
			deadlineOk = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !deadlineOk {
		t.Fatalf("job never finished; last status %q", js.Status)
	}
	if len(js.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(js.Results))
	}
	for i, raw := range js.Results {
		var sr SolveResponse
		if err := json.Unmarshal(raw, &sr); err != nil || sr.Key == "" {
			t.Errorf("result %d not a SolveResponse: %v: %s", i, err, raw)
		}
	}

	// A second identical batch is served fully from cache.
	runsBefore := metricValue(t, ts.URL, "solver_runs_total")
	resp = postJSON(t, ts.URL+"/v1/batch", req)
	if err := json.Unmarshal(readBody(t, resp), &js); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		resp, _ := http.Get(ts.URL + "/v1/jobs/" + js.ID)
		json.Unmarshal(readBody(t, resp), &js)
		if js.Status == jobDone {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if js.Status != jobDone {
		t.Fatalf("second job stuck in %q", js.Status)
	}
	if runsAfter := metricValue(t, ts.URL, "solver_runs_total"); runsAfter != runsBefore {
		t.Errorf("second identical batch ran the solver (%d -> %d runs)", runsBefore, runsAfter)
	}
}

func TestJobNotFoundAnd405(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve status = %d, want 405", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %s", resp.StatusCode, body)
	}
}

func TestBatchDeduplicatesIdenticalInstances(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	// Two copies of one instance in a single batch: one solver run, two
	// identical results.
	req := BatchRequest{
		Instances: []InstanceJSON{testInstance(5), testInstance(5)},
		Options:   &OptionsJSON{Seed: 1},
	}
	resp := postJSON(t, ts.URL+"/v1/batch", req)
	var js jobStatusJSON
	if err := json.Unmarshal(readBody(t, resp), &js); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400 && js.Status != jobDone; i++ {
		resp, _ := http.Get(ts.URL + "/v1/jobs/" + js.ID)
		json.Unmarshal(readBody(t, resp), &js)
		time.Sleep(5 * time.Millisecond)
	}
	if js.Status != jobDone {
		t.Fatalf("job stuck in %q", js.Status)
	}
	if len(js.Results) != 2 || !bytes.Equal(js.Results[0], js.Results[1]) {
		t.Fatalf("duplicate instances got different results")
	}
	if runs := metricValue(t, ts.URL, "solver_runs_total"); runs != 1 {
		t.Errorf("solver runs = %d, want 1 for a batch of two identical instances", runs)
	}
}

// Load shedding is a protocol, not just an error: a full admission queue
// answers 503 with a Retry-After hint so clients back off politely.
func TestBusyRejectionHasRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// Occupy the only solver slot, then park two distinct requests in the
	// admission queue (capacity queueDepth+nWorkers = 2); the next request
	// must be shed.
	s.solveSem <- struct{}{}
	var wg sync.WaitGroup
	for i := int64(0); i < 2; i++ {
		wg.Add(1)
		go func(bump int64) {
			defer wg.Done()
			b, _ := json.Marshal(SolveRequest{InstanceJSON: testInstance(40 + bump)})
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(b))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	waitersReady := false
	for i := 0; i < 1000; i++ {
		if s.waiting.Load() == 2 {
			waitersReady = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !waitersReady {
		t.Fatalf("admission queue never filled (waiting=%d)", s.waiting.Load())
	}

	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: testInstance(49)})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("503 rejection missing Retry-After header")
	}

	<-s.solveSem // release the slot; parked requests drain
	wg.Wait()
}

func TestJobListEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	type listJSON struct {
		Jobs  []jobStatusJSON `json:"jobs"`
		Count int             `json:"count"`
	}
	var list listJSON
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readBody(t, resp), &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 0 || len(list.Jobs) != 0 {
		t.Fatalf("fresh server job list = %+v", list)
	}

	var ids []string
	for n := int64(0); n < 2; n++ {
		resp := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Instances: []InstanceJSON{testInstance(50 + n)}})
		var js jobStatusJSON
		if err := json.Unmarshal(readBody(t, resp), &js); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, js.ID)
	}

	done := false
	for i := 0; i < 400 && !done; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(readBody(t, resp), &list); err != nil {
			t.Fatal(err)
		}
		done = list.Count == 2
		for _, j := range list.Jobs {
			if j.Status != jobDone {
				done = false
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !done {
		t.Fatalf("job list never settled: %+v", list)
	}
	for i, j := range list.Jobs {
		if j.ID != ids[i] {
			t.Errorf("job list order: position %d = %s, want %s (creation order)", i, j.ID, ids[i])
		}
		if j.Instances != 1 {
			t.Errorf("job %s instances = %d, want 1", j.ID, j.Instances)
		}
		if len(j.Results) != 0 {
			t.Errorf("job list leaked result bodies for %s", j.ID)
		}
	}

	// The collection endpoint is read-only.
	postResp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, postResp)
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/jobs status = %d, want 405", postResp.StatusCode)
	}
}

func TestFinishedJobsExpireBeyondRetention(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 1}) // retention = 4 finished jobs
	req := BatchRequest{Instances: []InstanceJSON{testInstance(6)}}
	var first string
	for n := 0; n < 6; n++ {
		resp := postJSON(t, ts.URL+"/v1/batch", req)
		var js jobStatusJSON
		if err := json.Unmarshal(readBody(t, resp), &js); err != nil {
			t.Fatal(err)
		}
		if first == "" {
			first = js.ID
		}
		for i := 0; i < 400 && js.Status != jobDone; i++ {
			resp, _ := http.Get(ts.URL + "/v1/jobs/" + js.ID)
			json.Unmarshal(readBody(t, resp), &js)
			time.Sleep(5 * time.Millisecond)
		}
		if js.Status != jobDone {
			t.Fatalf("job %d stuck in %q", n, js.Status)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + first)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest finished job still pollable (status %d), want 404 after retention", resp.StatusCode)
	}
}
