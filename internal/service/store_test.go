package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/store"
)

// newStoreServer stands up a server whose warm state and result cache are
// rooted in the durable-store layout under dir, exactly as linksynthd -data-dir
// wires them. Callers close the returned httptest server and Server
// themselves when the test needs an orderly "process exit" mid-test.
func newStoreServer(t *testing.T, dir string) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.Open(st.CacheDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Cache: c, Store: st})
	ts := httptest.NewServer(s)
	return s, ts, st
}

func solveBase(t *testing.T, url string) (SolveResponse, []byte) {
	t.Helper()
	resp := postJSON(t, url+"/v1/solve", SolveRequest{InstanceJSON: testInstance(0), Options: &OptionsJSON{Seed: 1}})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base solve status %d: %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr, body
}

// TestRestartServesWarmWithZeroSolves is the PR's acceptance check at the
// package level: solve a base and a delta, shut the server down, stand a new
// one up over the same data directory, and re-send the delta. The restarted
// process must answer byte-identically from restored state without running
// the solver at all.
func TestRestartServesWarmWithZeroSolves(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, _ := newStoreServer(t, dir)

	base, _ := solveBase(t, ts1.URL)
	resp := postJSON(t, ts1.URL+"/v1/solve", SolveRequest{Base: base.Key, Delta: testDelta()})
	deltaBody := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d: %s", resp.StatusCode, deltaBody)
	}

	// Orderly shutdown: Close drains the persister queue, so the session
	// record is on disk before the "process" exits.
	ts1.Close()
	s1.Close()

	s2, ts2, _ := newStoreServer(t, dir)
	defer func() { ts2.Close(); s2.Close() }()

	resp = postJSON(t, ts2.URL+"/v1/solve", SolveRequest{Base: base.Key, Delta: testDelta()})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta after restart: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Linksynth-Cache"); got != "hit" {
		t.Errorf("delta after restart: cache header %q, want hit", got)
	}
	if string(body) != string(deltaBody) {
		t.Errorf("delta body after restart differs from pre-restart body")
	}
	if got := metricValue(t, ts2.URL, "solver_runs_total"); got != 0 {
		t.Errorf("solver_runs_total = %d after restart, want 0", got)
	}
	if got := metricValue(t, ts2.URL, "incr_cold_solves_total"); got != 0 {
		t.Errorf("incr_cold_solves_total = %d after restart, want 0", got)
	}
	if got := metricValue(t, ts2.URL, "store_sessions_restored_total"); got != 1 {
		t.Errorf("store_sessions_restored_total = %d, want 1", got)
	}

	// A delta never seen before the restart still solves — and warm, not
	// cold: the restored plan is found under the patched instance's
	// structural key (a row edit preserves structure; CC targets are part
	// of the structural fingerprint, so a target change would not be).
	d2 := &DeltaJSON{R1Edits: []CellEditJSON{{Row: 1, Col: "Age", Val: 33}}}
	resp = postJSON(t, ts2.URL+"/v1/solve", SolveRequest{Base: base.Key, Delta: d2})
	b2 := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh delta after restart: status %d: %s", resp.StatusCode, b2)
	}
	if got := metricValue(t, ts2.URL, "incr_cold_solves_total"); got != 0 {
		t.Errorf("fresh delta after restart classified cold; the restored plan was not adopted")
	}
}

// TestCloseFlushesPersistQueue pins the graceful-shutdown flush: every
// persist accepted before Close is on disk when Close returns.
func TestCloseFlushesPersistQueue(t *testing.T) {
	s, ts, st := newStoreServer(t, t.TempDir())
	solveBase(t, ts.URL)
	ts.Close()
	s.Close()
	fps, err := st.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != 1 {
		t.Fatalf("sessions on disk after Close = %d, want 1", len(fps))
	}
}

// TestRestartRefusesCorruptSession: a torn session record (crash mid-state)
// must yield a clean no-session 404 on the restarted node — never wrong
// bytes, never a panic — and the file must be quarantined.
func TestRestartRefusesCorruptSession(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, st1 := newStoreServer(t, dir)
	base, _ := solveBase(t, ts1.URL)
	ts1.Close()
	s1.Close()

	// Tear the tail off the (only) session record.
	sessions, err := filepath.Glob(filepath.Join(st1.Dir(), "sessions", "*.sess"))
	if err != nil || len(sessions) != 1 {
		t.Fatalf("expected one session file, got %v (err %v)", sessions, err)
	}
	info, err := os.Stat(sessions[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(sessions[0], info.Size()-9); err != nil {
		t.Fatal(err)
	}

	s2, ts2, _ := newStoreServer(t, dir)
	defer func() { ts2.Close(); s2.Close() }()
	resp := postJSON(t, ts2.URL+"/v1/solve", SolveRequest{Base: base.Key, Delta: testDelta()})
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delta with corrupt session: status %d, want 404", resp.StatusCode)
	}
	if got := metricValue(t, ts2.URL, "store_corrupt_files_total"); got < 1 {
		t.Errorf("store_corrupt_files_total = %d, want >= 1", got)
	}
	if _, err := os.Stat(sessions[0]); !os.IsNotExist(err) {
		t.Errorf("corrupt session file still at its published path (err %v)", err)
	}
}

// TestClusterWarmHandoff: a node that never saw the base pulls the session
// record and its snapshots from a peer's durable store and answers the delta
// warm. The request carries the hop header so the receiving node serves it
// locally — the shape of traffic after ring ownership moves.
func TestClusterWarmHandoff(t *testing.T) {
	sa, tsa, _ := newStoreServer(t, t.TempDir())
	defer func() { tsa.Close(); sa.Close() }()

	base, _ := solveBase(t, tsa.URL)
	resp := postJSON(t, tsa.URL+"/v1/solve", SolveRequest{Base: base.Key, Delta: testDelta()})
	deltaBody := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta on origin: status %d: %s", resp.StatusCode, deltaBody)
	}

	// The persister is asynchronous; the handoff source must have the record
	// durable before the peer asks for it.
	deadline := time.Now().Add(5 * time.Second)
	for metricValue(t, tsa.URL, "store_sessions_persisted_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("session never persisted on the origin node")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Node B: own store and cache, cluster pointing at A.
	stB, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cB, err := cache.Open("", 64)
	if err != nil {
		t.Fatal(err)
	}
	sw := &swapHandler{}
	tsb := httptest.NewServer(sw)
	defer tsb.Close()
	cluB, err := cluster.New(cluster.Config{
		Self:         tsb.URL,
		Peers:        []string{tsa.URL, tsb.URL},
		PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sb := New(Config{Workers: 1, Cache: cB, Store: stB, Cluster: cluB})
	defer sb.Close()
	sw.set(sb)

	// Hop-guarded delta to B: B must not forward, so it revives the session
	// via its store — which has nothing — and then via the peer fetch.
	req := SolveRequest{Base: base.Key, Delta: testDelta()}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, tsb.URL+"/v1/solve", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(cluster.HopHeader, "1")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, hresp)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("handoff delta: status %d: %s", hresp.StatusCode, body)
	}
	if string(body) != string(deltaBody) {
		t.Errorf("handoff delta body differs from the origin node's delta body")
	}
	if got := metricValue(t, tsb.URL, "store_handoff_fetches_total"); got != 1 {
		t.Errorf("node B store_handoff_fetches_total = %d, want 1", got)
	}
	if got := metricValue(t, tsb.URL, "store_sessions_restored_total"); got != 1 {
		t.Errorf("node B store_sessions_restored_total = %d, want 1", got)
	}
	if got := metricValue(t, tsa.URL, "store_handoff_served_total"); got < 3 {
		t.Errorf("node A store_handoff_served_total = %d, want >= 3 (session + two snapshots)", got)
	}
	if got := metricValue(t, tsb.URL, "store_ingested_files_total"); got != 3 {
		t.Errorf("node B store_ingested_files_total = %d, want 3", got)
	}
}
