package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/metrics"
	"repro/internal/table"
)

// RelationJSON is the wire form of a relation: a named schema plus row-major
// cells. Cells are JSON numbers (int columns), strings (string columns) or
// null (missing, e.g. the FK column of R1 before solving).
type RelationJSON struct {
	Name    string       `json:"name"`
	Columns []ColumnJSON `json:"columns"`
	Rows    [][]any      `json:"rows"`
}

// ColumnJSON is one schema column; Type is "int" or "string".
type ColumnJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// OptionsJSON selects the solver configuration for a request. Algo mirrors
// the CLI's -algo flag; Workers is intentionally absent — parallelism is
// the server's policy, and the output is byte-identical either way.
type OptionsJSON struct {
	Algo string `json:"algo,omitempty"` // hybrid (default) | baseline | baseline-marginals | ilp-only | hasse-only
	Seed int64  `json:"seed,omitempty"`
}

// InstanceJSON is one C-Extension instance: both relations inline, the key
// columns, and the constraint sets in the text DSL.
type InstanceJSON struct {
	R1          *RelationJSON `json:"r1"`
	R2          *RelationJSON `json:"r2"`
	K1          string        `json:"k1"`
	K2          string        `json:"k2"`
	FK          string        `json:"fk"`
	Constraints string        `json:"constraints,omitempty"`
}

// SolveRequest is the body of POST /v1/solve. Two shapes are accepted: a
// full instance (r1/r2/k1/k2/fk/constraints), or a warm-start delta — a
// `base` fingerprint naming a previously solved instance plus a `delta`
// change set, with no instance fields. Delta requests re-solve the base
// instance patched by the delta, splicing unchanged work from the warm
// session the base solve left behind; the response is byte-identical in
// its result relations to submitting the patched instance in full.
type SolveRequest struct {
	InstanceJSON
	Options *OptionsJSON `json:"options,omitempty"`
	Base    string       `json:"base,omitempty"`
	Delta   *DeltaJSON   `json:"delta,omitempty"`
}

// DeltaJSON is the wire form of an incremental change set relative to a
// base instance: CC targets remapped by index, R1 cells edited, R1 rows
// appended. Cell values follow the relation cell encoding (number, string
// or null).
type DeltaJSON struct {
	CCTargets map[string]int64 `json:"cc_targets,omitempty"` // CC index (decimal string) -> new target
	R1Edits   []CellEditJSON   `json:"r1_edits,omitempty"`
	R1Appends [][]any          `json:"r1_appends,omitempty"`
}

// CellEditJSON rewrites one R1 cell.
type CellEditJSON struct {
	Row int    `json:"row"`
	Col string `json:"col"`
	Val any    `json:"val"`
}

// toDelta converts the wire delta into the engine's form.
func (dj *DeltaJSON) toDelta() (incr.Delta, error) {
	var d incr.Delta
	if len(dj.CCTargets) > 0 {
		// Decode in sorted key order so a request with several malformed
		// keys always gets the same 400 body — ranging the map made the
		// reported key vary run to run.
		keys := make([]string, 0, len(dj.CCTargets))
		for k := range dj.CCTargets {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		d.CCTargets = make(map[int]int64, len(dj.CCTargets))
		for _, k := range keys {
			i, err := strconv.Atoi(k)
			if err != nil {
				return d, badRequest("delta: cc_targets key %q is not a CC index", k)
			}
			d.CCTargets[i] = dj.CCTargets[k]
		}
	}
	for n, ed := range dj.R1Edits {
		v, err := decodeValue(ed.Val)
		if err != nil {
			return d, badRequest("delta: r1_edits[%d]: %v", n, err)
		}
		d.R1Edits = append(d.R1Edits, incr.CellEdit{Row: ed.Row, Col: ed.Col, Val: v})
	}
	for n, row := range dj.R1Appends {
		vals := make([]table.Value, len(row))
		for j, cell := range row {
			v, err := decodeValue(cell)
			if err != nil {
				return d, badRequest("delta: r1_appends[%d][%d]: %v", n, j, err)
			}
			vals[j] = v
		}
		d.R1Appends = append(d.R1Appends, vals)
	}
	return d, nil
}

// deltaFlightKey derives the singleflight key of a (base, delta) pair, so
// identical concurrent warm-start requests coalesce onto one partial
// re-solve even before the patched instance's full fingerprint is known.
// The encoding is canonical and injective: targets sorted by index, edits
// and appends in request order (order is semantically significant for
// edits), every variable-length field length-prefixed and every section
// count-prefixed — no two distinct deltas share an encoding even when
// string values embed separator bytes.
func deltaFlightKey(base cache.Key, d incr.Delta) cache.Key {
	h := sha256.New()
	writeLP := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		io.WriteString(h, s)
	}
	writeInt := func(v int64) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(v))
		h.Write(n[:])
	}
	writeVal := func(v table.Value) {
		writeInt(int64(v.Kind()))
		switch v.Kind() {
		case table.KindInt:
			writeInt(v.Int())
		case table.KindString:
			writeLP(v.Str())
		}
	}
	writeLP("linksynth-delta-flight-v1")
	h.Write(base[:])
	idxs := make([]int, 0, len(d.CCTargets))
	for i := range d.CCTargets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	writeInt(int64(len(idxs)))
	for _, i := range idxs {
		writeInt(int64(i))
		writeInt(d.CCTargets[i])
	}
	writeInt(int64(len(d.R1Edits)))
	for _, ed := range d.R1Edits {
		writeInt(int64(ed.Row))
		writeLP(ed.Col)
		writeVal(ed.Val)
	}
	writeInt(int64(len(d.R1Appends)))
	for _, row := range d.R1Appends {
		writeInt(int64(len(row)))
		for _, v := range row {
			writeVal(v)
		}
	}
	var k cache.Key
	h.Sum(k[:0])
	return k
}

// BatchRequest is the body of POST /v1/batch: many instances solved
// asynchronously under one shared Options.
type BatchRequest struct {
	Instances []InstanceJSON `json:"instances"`
	Options   *OptionsJSON   `json:"options,omitempty"`
}

// ResultJSON is the wire form of a solver result plus the §6.1 quality
// measures evaluated on it.
type ResultJSON struct {
	R1Hat    RelationJSON `json:"r1_hat"`
	R2Hat    RelationJSON `json:"r2_hat"`
	VJoin    RelationJSON `json:"vjoin"`
	Stats    core.Stats   `json:"stats"`
	CCErrors []float64    `json:"cc_errors"`
	DCError  float64      `json:"dc_error"`
}

// SolveResponse is the body of a successful solve: the instance's content
// address and its result. Cache status travels in the X-Linksynth-Cache
// header, never in the body, so a cache hit is byte-identical to the cold
// solve that populated it.
type SolveResponse struct {
	Key    string     `json:"key"`
	Result ResultJSON `json:"result"`
}

// apiError is a client-visible request failure carrying its HTTP status.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func colTypeString(t table.Type) string {
	if t == table.TypeInt {
		return "int"
	}
	return "string"
}

func encodeRelation(r *table.Relation) RelationJSON {
	s := r.Schema()
	out := RelationJSON{Name: r.Name, Columns: make([]ColumnJSON, s.Len()), Rows: make([][]any, r.Len())}
	for j := 0; j < s.Len(); j++ {
		c := s.Col(j)
		out.Columns[j] = ColumnJSON{Name: c.Name, Type: colTypeString(c.Type)}
	}
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		cells := make([]any, len(row))
		for j, v := range row {
			switch v.Kind() {
			case table.KindInt:
				cells[j] = v.Int()
			case table.KindString:
				cells[j] = v.Str()
			default:
				cells[j] = nil
			}
		}
		out.Rows[i] = cells
	}
	return out
}

// decodeRelation converts the wire form back into a relation. Number cells
// must be integral (the request decoder runs with UseNumber, so no float
// precision is lost on the way in).
func decodeRelation(rj *RelationJSON, fallbackName string) (*table.Relation, error) {
	if rj == nil {
		return nil, badRequest("missing relation %q", strings.ToLower(fallbackName))
	}
	name := rj.Name
	if name == "" {
		name = fallbackName
	}
	if len(rj.Columns) == 0 {
		return nil, badRequest("relation %s: no columns", name)
	}
	cols := make([]table.Column, len(rj.Columns))
	for j, c := range rj.Columns {
		if c.Name == "" {
			return nil, badRequest("relation %s: column %d has no name", name, j)
		}
		switch c.Type {
		case "int":
			cols[j] = table.IntCol(c.Name)
		case "string":
			cols[j] = table.StrCol(c.Name)
		default:
			return nil, badRequest("relation %s: column %q: unknown type %q (want \"int\" or \"string\")", name, c.Name, c.Type)
		}
	}
	rel := table.NewRelation(name, table.NewSchema(cols...))
	for i, row := range rj.Rows {
		if len(row) != len(cols) {
			return nil, badRequest("relation %s: row %d has %d cells, schema has %d columns", name, i, len(row), len(cols))
		}
		vals := make([]table.Value, len(row))
		for j, cell := range row {
			v, err := decodeValue(cell)
			if err != nil {
				return nil, badRequest("relation %s: row %d, column %q: %v", name, i, cols[j].Name, err)
			}
			vals[j] = v
		}
		if err := rel.Append(vals...); err != nil {
			return nil, badRequest("relation %s: row %d: %v", name, i, err)
		}
	}
	return rel, nil
}

func decodeValue(cell any) (table.Value, error) {
	switch c := cell.(type) {
	case nil:
		return table.Null(), nil
	case string:
		return table.String(c), nil
	case json.Number:
		n, err := c.Int64()
		if err != nil {
			return table.Null(), fmt.Errorf("non-integer number %v", c)
		}
		return table.Int(n), nil
	case float64:
		// Reached only when the payload bypassed UseNumber (programmatic use).
		n := int64(c)
		if float64(n) != c {
			return table.Null(), fmt.Errorf("non-integer number %v", c)
		}
		return table.Int(n), nil
	default:
		return table.Null(), fmt.Errorf("unsupported cell type %T", cell)
	}
}

func (o *OptionsJSON) toOptions() (core.Options, error) {
	if o == nil {
		return core.Options{Seed: 1}, nil
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	switch o.Algo {
	case "", "hybrid":
		return core.Options{Seed: seed}, nil
	case "baseline":
		return core.BaselineOptions(seed), nil
	case "baseline-marginals":
		return core.BaselineMarginalsOptions(seed), nil
	case "ilp-only":
		return core.Options{Mode: core.ModeILPOnly, Seed: seed}, nil
	case "hasse-only":
		return core.Options{Mode: core.ModeHasseOnly, Seed: seed}, nil
	default:
		return core.Options{}, badRequest("unknown algo %q (want hybrid, baseline, baseline-marginals, ilp-only or hasse-only)", o.Algo)
	}
}

// toInput validates the instance and assembles the solver input: both
// relations present, key/FK columns named and existing in their schemas,
// and the constraint DSL parsed.
func (ij *InstanceJSON) toInput() (core.Input, error) {
	r1, err := decodeRelation(ij.R1, "R1")
	if err != nil {
		return core.Input{}, err
	}
	r2, err := decodeRelation(ij.R2, "R2")
	if err != nil {
		return core.Input{}, err
	}
	return assembleInput(r1, r2, ij.K1, ij.K2, ij.FK, ij.Constraints)
}

func assembleInput(r1, r2 *table.Relation, k1, k2, fk, consDSL string) (core.Input, error) {
	if k1 == "" || k2 == "" || fk == "" {
		return core.Input{}, badRequest("k1, k2 and fk are required")
	}
	if !r1.Schema().Has(k1) {
		return core.Input{}, badRequest("k1 column %q not in %s (columns: %s)",
			k1, r1.Name, strings.Join(r1.Schema().Names(), ", "))
	}
	if !r1.Schema().Has(fk) {
		return core.Input{}, badRequest("fk column %q not in %s (columns: %s)",
			fk, r1.Name, strings.Join(r1.Schema().Names(), ", "))
	}
	if !r2.Schema().Has(k2) {
		return core.Input{}, badRequest("k2 column %q not in %s (columns: %s)",
			k2, r2.Name, strings.Join(r2.Schema().Names(), ", "))
	}
	in := core.Input{R1: r1, R2: r2, K1: k1, K2: k2, FK: fk}
	if consDSL != "" {
		ccs, dcs, err := constraint.ParseConstraints(strings.NewReader(consDSL))
		if err != nil {
			return core.Input{}, badRequest("constraints: %v", err)
		}
		in.CCs, in.DCs = ccs, dcs
	}
	return in, nil
}

// encodeSolveBody renders the canonical response body for a solved
// instance. The same instance always produces the same bytes, which is what
// the cache stores and what makes hits byte-identical to cold solves.
func encodeSolveBody(keyHex string, in core.Input, res *core.Result) ([]byte, error) {
	// The body is stored in the content-addressed cache under a key that
	// promises byte-identical responses — a cluster gather fallback
	// re-solves a lost peer's group expecting to reproduce its bytes
	// exactly, and warm and cold solves of one key must agree. Wall-clock
	// timings and warm-state reuse flags vary run to run and node to node,
	// so they are canonicalized to zero before encoding; the deterministic
	// counters (partitions, ILP nodes, added tuples, ...) stay.
	st := res.Stats
	st.Pairwise, st.Recursion, st.ILPTime, st.Coloring = 0, 0, 0, 0
	st.Phase1, st.Phase2, st.Total = 0, 0, 0
	st.PlanReused, st.ProbReused, st.SplicedPartitions = false, false, 0
	body := SolveResponse{
		Key: keyHex,
		Result: ResultJSON{
			R1Hat:    encodeRelation(res.R1Hat),
			R2Hat:    encodeRelation(res.R2Hat),
			VJoin:    encodeRelation(res.VJoin),
			Stats:    st,
			CCErrors: metrics.CCErrors(res.VJoin, in.CCs),
			DCError:  metrics.DCErrorFraction(res.R1Hat, in.FK, in.DCs),
		},
	}
	return json.Marshal(body)
}

// solveParsed is one decoded /v1/solve request: either a full instance
// (isDelta false; in/opt set) or a warm-start reference (isDelta true;
// base/delta set, solved against the base instance's retained options).
type solveParsed struct {
	isDelta bool
	in      core.Input
	opt     core.Options
	base    cache.Key
	delta   incr.Delta
}

// parseSolveRequest decodes POST /v1/solve in any of its shapes:
// application/json with a full instance (SolveRequest), application/json
// with a base fingerprint plus delta (the warm-start path), or
// multipart/form-data with CSV relation parts. Multipart parts: files "r1"
// and "r2" (CSV, schema inferred while streaming), fields "k1"/"k2"/"fk",
// optional "constraints" (DSL text, field or file) and optional "options"
// (OptionsJSON).
func parseSolveRequest(r *http.Request) (*solveParsed, error) {
	ct := r.Header.Get("Content-Type")
	mediaType, params, err := mime.ParseMediaType(ct)
	if ct != "" && err != nil {
		return nil, badRequest("bad Content-Type %q: %v", ct, err)
	}
	if mediaType == "multipart/form-data" {
		in, opt, err := parseMultipartSolve(r, params["boundary"])
		if err != nil {
			return nil, err
		}
		return &solveParsed{in: in, opt: opt}, nil
	}
	var req SolveRequest
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		return nil, decodeErr(err)
	}
	if req.Base != "" || req.Delta != nil {
		return parseDeltaRequest(&req)
	}
	in, err := req.InstanceJSON.toInput()
	if err != nil {
		return nil, err
	}
	opt, err := req.Options.toOptions()
	if err != nil {
		return nil, err
	}
	return &solveParsed{in: in, opt: opt}, nil
}

// parseDeltaRequest validates the warm-start shape: base and delta both
// present, no instance fields (the base names the instance), no options
// (the base solve's options are inherited — a delta cannot change them).
func parseDeltaRequest(req *SolveRequest) (*solveParsed, error) {
	if req.Base == "" {
		return nil, badRequest("delta request needs a base fingerprint")
	}
	if req.Delta == nil {
		return nil, badRequest("base without delta: submit a delta, or the full instance without base")
	}
	if req.R1 != nil || req.R2 != nil || req.K1 != "" || req.K2 != "" || req.FK != "" || req.Constraints != "" {
		return nil, badRequest("delta request must not carry instance fields (the base fingerprint names the instance)")
	}
	if req.Options != nil {
		return nil, badRequest("delta request must not carry options (the base solve's options are inherited)")
	}
	raw, err := hex.DecodeString(req.Base)
	if err != nil || len(raw) != 32 {
		return nil, badRequest("base %q is not a 64-hex-digit fingerprint", req.Base)
	}
	d, err := req.Delta.toDelta()
	if err != nil {
		return nil, err
	}
	if d.IsZero() {
		return nil, badRequest("delta is empty")
	}
	p := &solveParsed{isDelta: true, delta: d}
	copy(p.base[:], raw)
	return p, nil
}

func parseMultipartSolve(r *http.Request, boundary string) (core.Input, core.Options, error) {
	if boundary == "" {
		return core.Input{}, core.Options{}, badRequest("multipart request has no boundary")
	}
	mr := multipart.NewReader(r.Body, boundary)
	var (
		r1, r2   *table.Relation
		fields   = map[string]string{}
		optsJSON *OptionsJSON
	)
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return core.Input{}, core.Options{}, decodeErr(err)
		}
		name := part.FormName()
		switch name {
		case "r1", "r2":
			// The CSV is parsed straight off the part stream; the schema is
			// inferred from the header row and the column contents.
			rel, err := table.ReadCSVInferred(part, strings.ToUpper(name))
			if err != nil {
				return core.Input{}, core.Options{}, wrapPartErr(name, err)
			}
			if name == "r1" {
				r1 = rel
			} else {
				r2 = rel
			}
		case "k1", "k2", "fk", "constraints":
			b, err := io.ReadAll(part)
			if err != nil {
				return core.Input{}, core.Options{}, wrapPartErr(name, err)
			}
			fields[name] = strings.TrimSpace(string(b))
		case "options":
			var o OptionsJSON
			dec := json.NewDecoder(part)
			dec.UseNumber()
			if err := dec.Decode(&o); err != nil {
				return core.Input{}, core.Options{}, wrapPartErr(name, err)
			}
			optsJSON = &o
		default:
			return core.Input{}, core.Options{}, badRequest("unknown multipart field %q", name)
		}
		part.Close()
	}
	if r1 == nil || r2 == nil {
		return core.Input{}, core.Options{}, badRequest("multipart request needs both r1 and r2 CSV parts")
	}
	in, err := assembleInput(r1, r2, fields["k1"], fields["k2"], fields["fk"], fields["constraints"])
	if err != nil {
		return core.Input{}, core.Options{}, err
	}
	opt, err := optsJSON.toOptions()
	if err != nil {
		return core.Input{}, core.Options{}, err
	}
	return in, opt, nil
}

// wrapPartErr attributes a multipart decode failure to its part, keeping
// body-size overruns recognizable for the 413 mapping.
func wrapPartErr(part string, err error) error {
	if isTooLarge(err) {
		return err
	}
	return badRequest("part %q: %v", part, err)
}

// decodeErr maps a body decode failure to the right API error: 413 when the
// MaxBytesReader tripped, 400 otherwise.
func decodeErr(err error) error {
	if isTooLarge(err) {
		return err
	}
	return badRequest("decode request: %v", err)
}

func isTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return true
	}
	// multipart and csv readers may swallow the typed error; the message
	// survives.
	return err != nil && strings.Contains(err.Error(), "request body too large")
}
