package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"strings"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/table"
)

// RelationJSON is the wire form of a relation: a named schema plus row-major
// cells. Cells are JSON numbers (int columns), strings (string columns) or
// null (missing, e.g. the FK column of R1 before solving).
type RelationJSON struct {
	Name    string       `json:"name"`
	Columns []ColumnJSON `json:"columns"`
	Rows    [][]any      `json:"rows"`
}

// ColumnJSON is one schema column; Type is "int" or "string".
type ColumnJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// OptionsJSON selects the solver configuration for a request. Algo mirrors
// the CLI's -algo flag; Workers is intentionally absent — parallelism is
// the server's policy, and the output is byte-identical either way.
type OptionsJSON struct {
	Algo string `json:"algo,omitempty"` // hybrid (default) | baseline | baseline-marginals | ilp-only | hasse-only
	Seed int64  `json:"seed,omitempty"`
}

// InstanceJSON is one C-Extension instance: both relations inline, the key
// columns, and the constraint sets in the text DSL.
type InstanceJSON struct {
	R1          *RelationJSON `json:"r1"`
	R2          *RelationJSON `json:"r2"`
	K1          string        `json:"k1"`
	K2          string        `json:"k2"`
	FK          string        `json:"fk"`
	Constraints string        `json:"constraints,omitempty"`
}

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	InstanceJSON
	Options *OptionsJSON `json:"options,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: many instances solved
// asynchronously under one shared Options.
type BatchRequest struct {
	Instances []InstanceJSON `json:"instances"`
	Options   *OptionsJSON   `json:"options,omitempty"`
}

// ResultJSON is the wire form of a solver result plus the §6.1 quality
// measures evaluated on it.
type ResultJSON struct {
	R1Hat    RelationJSON `json:"r1_hat"`
	R2Hat    RelationJSON `json:"r2_hat"`
	VJoin    RelationJSON `json:"vjoin"`
	Stats    core.Stats   `json:"stats"`
	CCErrors []float64    `json:"cc_errors"`
	DCError  float64      `json:"dc_error"`
}

// SolveResponse is the body of a successful solve: the instance's content
// address and its result. Cache status travels in the X-Linksynth-Cache
// header, never in the body, so a cache hit is byte-identical to the cold
// solve that populated it.
type SolveResponse struct {
	Key    string     `json:"key"`
	Result ResultJSON `json:"result"`
}

// apiError is a client-visible request failure carrying its HTTP status.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func colTypeString(t table.Type) string {
	if t == table.TypeInt {
		return "int"
	}
	return "string"
}

func encodeRelation(r *table.Relation) RelationJSON {
	s := r.Schema()
	out := RelationJSON{Name: r.Name, Columns: make([]ColumnJSON, s.Len()), Rows: make([][]any, r.Len())}
	for j := 0; j < s.Len(); j++ {
		c := s.Col(j)
		out.Columns[j] = ColumnJSON{Name: c.Name, Type: colTypeString(c.Type)}
	}
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		cells := make([]any, len(row))
		for j, v := range row {
			switch v.Kind() {
			case table.KindInt:
				cells[j] = v.Int()
			case table.KindString:
				cells[j] = v.Str()
			default:
				cells[j] = nil
			}
		}
		out.Rows[i] = cells
	}
	return out
}

// decodeRelation converts the wire form back into a relation. Number cells
// must be integral (the request decoder runs with UseNumber, so no float
// precision is lost on the way in).
func decodeRelation(rj *RelationJSON, fallbackName string) (*table.Relation, error) {
	if rj == nil {
		return nil, badRequest("missing relation %q", strings.ToLower(fallbackName))
	}
	name := rj.Name
	if name == "" {
		name = fallbackName
	}
	if len(rj.Columns) == 0 {
		return nil, badRequest("relation %s: no columns", name)
	}
	cols := make([]table.Column, len(rj.Columns))
	for j, c := range rj.Columns {
		if c.Name == "" {
			return nil, badRequest("relation %s: column %d has no name", name, j)
		}
		switch c.Type {
		case "int":
			cols[j] = table.IntCol(c.Name)
		case "string":
			cols[j] = table.StrCol(c.Name)
		default:
			return nil, badRequest("relation %s: column %q: unknown type %q (want \"int\" or \"string\")", name, c.Name, c.Type)
		}
	}
	rel := table.NewRelation(name, table.NewSchema(cols...))
	for i, row := range rj.Rows {
		if len(row) != len(cols) {
			return nil, badRequest("relation %s: row %d has %d cells, schema has %d columns", name, i, len(row), len(cols))
		}
		vals := make([]table.Value, len(row))
		for j, cell := range row {
			v, err := decodeValue(cell)
			if err != nil {
				return nil, badRequest("relation %s: row %d, column %q: %v", name, i, cols[j].Name, err)
			}
			vals[j] = v
		}
		if err := rel.Append(vals...); err != nil {
			return nil, badRequest("relation %s: row %d: %v", name, i, err)
		}
	}
	return rel, nil
}

func decodeValue(cell any) (table.Value, error) {
	switch c := cell.(type) {
	case nil:
		return table.Null(), nil
	case string:
		return table.String(c), nil
	case json.Number:
		n, err := c.Int64()
		if err != nil {
			return table.Null(), fmt.Errorf("non-integer number %v", c)
		}
		return table.Int(n), nil
	case float64:
		// Reached only when the payload bypassed UseNumber (programmatic use).
		n := int64(c)
		if float64(n) != c {
			return table.Null(), fmt.Errorf("non-integer number %v", c)
		}
		return table.Int(n), nil
	default:
		return table.Null(), fmt.Errorf("unsupported cell type %T", cell)
	}
}

func (o *OptionsJSON) toOptions() (core.Options, error) {
	if o == nil {
		return core.Options{Seed: 1}, nil
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	switch o.Algo {
	case "", "hybrid":
		return core.Options{Seed: seed}, nil
	case "baseline":
		return core.BaselineOptions(seed), nil
	case "baseline-marginals":
		return core.BaselineMarginalsOptions(seed), nil
	case "ilp-only":
		return core.Options{Mode: core.ModeILPOnly, Seed: seed}, nil
	case "hasse-only":
		return core.Options{Mode: core.ModeHasseOnly, Seed: seed}, nil
	default:
		return core.Options{}, badRequest("unknown algo %q (want hybrid, baseline, baseline-marginals, ilp-only or hasse-only)", o.Algo)
	}
}

// toInput validates the instance and assembles the solver input: both
// relations present, key/FK columns named and existing in their schemas,
// and the constraint DSL parsed.
func (ij *InstanceJSON) toInput() (core.Input, error) {
	r1, err := decodeRelation(ij.R1, "R1")
	if err != nil {
		return core.Input{}, err
	}
	r2, err := decodeRelation(ij.R2, "R2")
	if err != nil {
		return core.Input{}, err
	}
	return assembleInput(r1, r2, ij.K1, ij.K2, ij.FK, ij.Constraints)
}

func assembleInput(r1, r2 *table.Relation, k1, k2, fk, consDSL string) (core.Input, error) {
	if k1 == "" || k2 == "" || fk == "" {
		return core.Input{}, badRequest("k1, k2 and fk are required")
	}
	if !r1.Schema().Has(k1) {
		return core.Input{}, badRequest("k1 column %q not in %s (columns: %s)",
			k1, r1.Name, strings.Join(r1.Schema().Names(), ", "))
	}
	if !r1.Schema().Has(fk) {
		return core.Input{}, badRequest("fk column %q not in %s (columns: %s)",
			fk, r1.Name, strings.Join(r1.Schema().Names(), ", "))
	}
	if !r2.Schema().Has(k2) {
		return core.Input{}, badRequest("k2 column %q not in %s (columns: %s)",
			k2, r2.Name, strings.Join(r2.Schema().Names(), ", "))
	}
	in := core.Input{R1: r1, R2: r2, K1: k1, K2: k2, FK: fk}
	if consDSL != "" {
		ccs, dcs, err := constraint.ParseConstraints(strings.NewReader(consDSL))
		if err != nil {
			return core.Input{}, badRequest("constraints: %v", err)
		}
		in.CCs, in.DCs = ccs, dcs
	}
	return in, nil
}

// encodeSolveBody renders the canonical response body for a solved
// instance. The same instance always produces the same bytes, which is what
// the cache stores and what makes hits byte-identical to cold solves.
func encodeSolveBody(keyHex string, in core.Input, res *core.Result) ([]byte, error) {
	body := SolveResponse{
		Key: keyHex,
		Result: ResultJSON{
			R1Hat:    encodeRelation(res.R1Hat),
			R2Hat:    encodeRelation(res.R2Hat),
			VJoin:    encodeRelation(res.VJoin),
			Stats:    res.Stats,
			CCErrors: metrics.CCErrors(res.VJoin, in.CCs),
			DCError:  metrics.DCErrorFraction(res.R1Hat, in.FK, in.DCs),
		},
	}
	return json.Marshal(body)
}

// parseSolveRequest decodes POST /v1/solve in either of its two shapes:
// application/json (SolveRequest) or multipart/form-data with CSV relation
// parts. Multipart parts: files "r1" and "r2" (CSV, schema inferred while
// streaming), fields "k1"/"k2"/"fk", optional "constraints" (DSL text,
// field or file) and optional "options" (OptionsJSON).
func parseSolveRequest(r *http.Request) (core.Input, core.Options, error) {
	ct := r.Header.Get("Content-Type")
	mediaType, params, err := mime.ParseMediaType(ct)
	if ct != "" && err != nil {
		return core.Input{}, core.Options{}, badRequest("bad Content-Type %q: %v", ct, err)
	}
	if mediaType == "multipart/form-data" {
		return parseMultipartSolve(r, params["boundary"])
	}
	var req SolveRequest
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		return core.Input{}, core.Options{}, decodeErr(err)
	}
	in, err := req.InstanceJSON.toInput()
	if err != nil {
		return core.Input{}, core.Options{}, err
	}
	opt, err := req.Options.toOptions()
	if err != nil {
		return core.Input{}, core.Options{}, err
	}
	return in, opt, nil
}

func parseMultipartSolve(r *http.Request, boundary string) (core.Input, core.Options, error) {
	if boundary == "" {
		return core.Input{}, core.Options{}, badRequest("multipart request has no boundary")
	}
	mr := multipart.NewReader(r.Body, boundary)
	var (
		r1, r2   *table.Relation
		fields   = map[string]string{}
		optsJSON *OptionsJSON
	)
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return core.Input{}, core.Options{}, decodeErr(err)
		}
		name := part.FormName()
		switch name {
		case "r1", "r2":
			// The CSV is parsed straight off the part stream; the schema is
			// inferred from the header row and the column contents.
			rel, err := table.ReadCSVInferred(part, strings.ToUpper(name))
			if err != nil {
				return core.Input{}, core.Options{}, wrapPartErr(name, err)
			}
			if name == "r1" {
				r1 = rel
			} else {
				r2 = rel
			}
		case "k1", "k2", "fk", "constraints":
			b, err := io.ReadAll(part)
			if err != nil {
				return core.Input{}, core.Options{}, wrapPartErr(name, err)
			}
			fields[name] = strings.TrimSpace(string(b))
		case "options":
			var o OptionsJSON
			dec := json.NewDecoder(part)
			dec.UseNumber()
			if err := dec.Decode(&o); err != nil {
				return core.Input{}, core.Options{}, wrapPartErr(name, err)
			}
			optsJSON = &o
		default:
			return core.Input{}, core.Options{}, badRequest("unknown multipart field %q", name)
		}
		part.Close()
	}
	if r1 == nil || r2 == nil {
		return core.Input{}, core.Options{}, badRequest("multipart request needs both r1 and r2 CSV parts")
	}
	in, err := assembleInput(r1, r2, fields["k1"], fields["k2"], fields["fk"], fields["constraints"])
	if err != nil {
		return core.Input{}, core.Options{}, err
	}
	opt, err := optsJSON.toOptions()
	if err != nil {
		return core.Input{}, core.Options{}, err
	}
	return in, opt, nil
}

// wrapPartErr attributes a multipart decode failure to its part, keeping
// body-size overruns recognizable for the 413 mapping.
func wrapPartErr(part string, err error) error {
	if isTooLarge(err) {
		return err
	}
	return badRequest("part %q: %v", part, err)
}

// decodeErr maps a body decode failure to the right API error: 413 when the
// MaxBytesReader tripped, 400 otherwise.
func decodeErr(err error) error {
	if isTooLarge(err) {
		return err
	}
	return badRequest("decode request: %v", err)
}

func isTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return true
	}
	// multipart and csv readers may swallow the typed error; the message
	// survives.
	return err != nil && strings.Contains(err.Error(), "request body too large")
}
