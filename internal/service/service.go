// Package service is the linksynthd serving layer: an HTTP JSON API over
// the C-Extension solver with a content-addressed result cache.
//
// Endpoints:
//
//	POST /v1/solve     solve one instance synchronously (JSON or multipart CSV)
//	POST /v1/batch     enqueue an async multi-instance job; returns a job id
//	GET  /v1/jobs/{id} job status and, once finished, per-instance results
//	DELETE /v1/jobs/{id} cancel a queued or running job
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus-style counters
//
// Every solve is content-addressed through core.Fingerprint: identical
// instances — across clients, across restarts when a cache dir is
// configured — are solved once and served from the cache byte-identically
// thereafter. Concurrent requests for the same instance coalesce onto a
// single solver run. All solver work multiplexes over one shared
// internal/sched pool, with a bounded admission queue in front of it, so N
// concurrent clients never oversubscribe the host.
package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/obsv"
	"repro/internal/sched"
	"repro/internal/store"
)

// Config assembles a Server.
type Config struct {
	// Cache is the content-addressed result store; required.
	Cache *cache.Cache
	// Workers sizes the shared solver pool (<= 0 selects GOMAXPROCS). It
	// also bounds how many solver runs execute concurrently.
	Workers int
	// MaxBody caps request body bytes (<= 0 selects 32 MiB). Oversized
	// requests fail with 413.
	MaxBody int64
	// QueueDepth bounds both the solve admission queue and the async job
	// queue (<= 0 selects 64). Requests beyond the bound fail with 503
	// rather than pile up.
	QueueDepth int
	// Cluster, when non-nil, shards the service: solves whose fingerprint
	// hashes to another node are forwarded there (falling back to local
	// solving when the owner is down), and batch jobs scatter sub-jobs to
	// the owning nodes and gather their results. Delta requests route by
	// the owner of the *base* fingerprint, so the warm session a delta
	// needs is co-located with it. Nil runs single-node.
	Cluster *cluster.Cluster
	// Replicas is the number of ring-successors each solved key is
	// asynchronously replicated to (cache entry plus, with a Store, the
	// durable session artifacts), so killing a key's owner leaves its
	// first surviving successor able to answer warm — byte-identical,
	// with zero solver runs for replicated fingerprints. 0 disables
	// replication; ignored without a Cluster.
	Replicas int
	// SessionEntries bounds the warm solver sessions retained for
	// incremental (delta) re-solves, LRU beyond that (<= 0 selects 64).
	// Every locally solved sync instance leaves a session behind.
	SessionEntries int
	// PlanEntries bounds the compiled-plan cache shared by the sessions
	// (<= 0 selects 128).
	PlanEntries int
	// Store, when non-nil, is the durable tier: parked sessions and their
	// relation snapshots are persisted under it off the request path, warm
	// state is restored from it after a restart, and peers may pull files
	// through /v1/store/{fingerprint} for warm handoff. Nil disables
	// persistence; the server is then RAM-only like before.
	Store *store.Store
	// FlightEntries sizes the flight recorder's ring of recent traces
	// (<= 0 selects 256). With a Store configured, traces that end in an
	// error are additionally snapshotted under its flight/ directory.
	FlightEntries int
}

// Server implements http.Handler for the linksynthd API.
type Server struct {
	cache      *cache.Cache
	pool       *sched.Pool
	clu        *cluster.Cluster // nil = single-node
	engine     *incr.Engine
	sessions   *cache.LRU[*svcSession]
	wanted     *cache.LRU[struct{}] // bases recent deltas asked for but found no session
	replicated *cache.LRU[struct{}] // keys whose cache entries arrived by replica push
	store      *store.Store         // nil = no durable tier
	obs        *obsv.Observer       // traces, histograms, flight recorder
	replicas   int                  // ring-successors each solved key replicates to
	nWorkers   int
	maxBody    int64
	queueDepth int
	start      time.Time

	solveSem  chan struct{} // admission: bounds concurrently executing solver runs
	waiting   atomic.Int64
	gatherSem chan struct{} // bounds concurrently coordinating scatter-gather jobs

	mu       sync.Mutex
	inflight map[cache.Key]*flight
	jobs     map[string]*job
	finished []string // retired job ids, oldest first; bounds registry growth
	jobSeq   uint64
	jobQueue chan *job
	shutdown chan struct{}
	closed   bool

	solveRuns     atomic.Uint64
	solveErrors   atomic.Uint64
	cachePutFails atomic.Uint64
	coalesced     atomic.Uint64
	rejectedBusy  atomic.Uint64
	requests      atomic.Uint64
	jobsAccepted  atomic.Uint64
	jobsDone      atomic.Uint64
	jobsCanceled  atomic.Uint64

	forwarded        atomic.Uint64 // solves relayed to their owning node
	forwardFallbacks atomic.Uint64 // forward attempts that failed (peer down or 5xx)
	forwardExhausted atomic.Uint64 // solves rejected 503 after the whole chain failed
	hopServed        atomic.Uint64 // hop-guarded requests answered locally
	scatterJobs      atomic.Uint64 // batch jobs that scattered sub-jobs to peers
	gatherFallbacks  atomic.Uint64 // scattered groups re-solved locally after a peer failure

	replicaPushed    atomic.Uint64 // cache entries and store files pushed to successors
	replicaIngested  atomic.Uint64 // pushed entries and files accepted here
	replicaServed    atomic.Uint64 // cache hits satisfied by a replicated entry
	replicaFailed    atomic.Uint64 // pushes or ingests that failed or were rejected
	failovers        atomic.Uint64 // replica answers served while the key's owner was down
	sessionsMigrated atomic.Uint64 // parked sessions streamed to a new owner

	persistQ    chan persistReq // nil when store is nil
	persistDone chan struct{}
	replQ       chan replReq // nil unless clustered with Replicas > 0
	replDone    chan struct{}
	watchDone   chan struct{} // nil unless the membership watcher runs

	sessionsPersisted atomic.Uint64 // session records flushed to the store
	sessionsRestored  atomic.Uint64 // warm sessions rebuilt from the store
	persistErrors     atomic.Uint64 // persists dropped or failed
	restoreFails      atomic.Uint64 // restores refused (bad state, fingerprint mismatch)
	handoffFetches    atomic.Uint64 // warm handoffs completed from a peer
	handoffServed     atomic.Uint64 // store files served to peers

	incrCold      atomic.Uint64 // local solves with no reuse (fresh compile, no splice)
	incrWarm      atomic.Uint64 // local solves reusing a plan or compiled problem, no splicing
	incrPartial   atomic.Uint64 // local solves splicing partitions from a warm session
	deltaRequests atomic.Uint64 // warm-start (base+delta) requests received
	sessionMisses atomic.Uint64 // delta requests whose base had no warm session
}

// svcSession wraps one warm solver session with the lock serializing its
// solves; the sessions LRU hands the same wrapper to every request for the
// same base fingerprint.
type svcSession struct {
	mu   sync.Mutex
	sess *incr.Session
}

// errNoSession rejects a delta whose base has no warm session on this node
// (never solved here, evicted, or lost to a restart).
var errNoSession = errors.New("service: no warm session for base fingerprint")

// flight is one in-progress solve that followers of the same key wait on.
// For delta flights (keyed by (base, delta), not by content fingerprint)
// the leader also records the patched instance's fingerprint in key.
type flight struct {
	done chan struct{}
	body []byte
	key  cache.Key
	err  error
}

var errBusy = errors.New("service: solve queue full")

// New builds a Server and starts its job runner. Call Close to stop it.
func New(cfg Config) *Server {
	if cfg.Cache == nil {
		panic("service: Config.Cache is required")
	}
	pool := sched.New(cfg.Workers)
	n := pool.Workers()
	if n == 1 {
		pool = nil // take the solver's true sequential path
	}
	maxBody := cfg.MaxBody
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	sessions := cfg.SessionEntries
	if sessions <= 0 {
		sessions = 64
	}
	node := "local"
	if cfg.Cluster != nil {
		node = cfg.Cluster.Self()
	}
	flightDir := ""
	if cfg.Store != nil {
		flightDir = cfg.Store.FlightDir()
	}
	s := &Server{
		cache:      cfg.Cache,
		pool:       pool,
		clu:        cfg.Cluster,
		engine:     incr.NewEngine(cfg.PlanEntries),
		sessions:   cache.NewLRU[*svcSession](sessions, nil),
		wanted:     cache.NewLRU[struct{}](sessions, nil),
		obs:        obsv.NewObserver(node, cfg.FlightEntries, flightDir),
		nWorkers:   n,
		maxBody:    maxBody,
		queueDepth: depth,
		start:      time.Now(),
		solveSem:   make(chan struct{}, n),
		gatherSem:  make(chan struct{}, depth),
		inflight:   make(map[cache.Key]*flight),
		jobs:       make(map[string]*job),
		jobQueue:   make(chan *job, depth),
		shutdown:   make(chan struct{}),
	}
	if cfg.Store != nil {
		s.store = cfg.Store
		s.persistQ = make(chan persistReq, depth)
		s.persistDone = make(chan struct{})
		go s.persistLoop()
	}
	if cfg.Cluster != nil {
		// The replica-tracking set exists whenever clustered — a node that
		// does not push (Replicas == 0) can still receive pushes from peers
		// that do, and must track what it ingested.
		s.replicated = cache.NewLRU[struct{}](4096, nil)
		if cfg.Replicas > 0 {
			s.replicas = cfg.Replicas
			s.replQ = make(chan replReq, depth)
			s.replDone = make(chan struct{})
			go s.replLoop()
		}
		s.watchDone = make(chan struct{})
		go s.watchMembership()
	}
	go s.jobLoop()
	return s
}

// Close stops the job runner and cancels every unfinished job. The cache is
// caller-owned and stays open.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.shutdown)
	//lint:ordered shutdown cancels every job; cancellation order is unobservable
	for _, j := range s.jobs {
		j.cancel()
	}
	s.mu.Unlock()
	if s.persistQ != nil {
		// Graceful-shutdown flush: every persist accepted before the close
		// reaches disk before Close returns. enqueuePersist checks closed
		// under s.mu, so no send can race the close.
		close(s.persistQ)
		<-s.persistDone
	}
	if s.replQ != nil {
		// Drained after the persist queue: persistLoop enqueues replication
		// (its enqueues after the closed flag are dropped, never sent), so
		// closing in this order cannot race a send.
		close(s.replQ)
		<-s.replDone
	}
	if s.watchDone != nil {
		<-s.watchDone
	}
}

// ServeHTTP dispatches the API: introspection endpoints (liveness, scrape,
// flight dump) are answered directly, everything else runs under a trace —
// see serveTraced. Routing is deliberately manual (method checks plus a
// prefix match for /v1/jobs/) so behavior does not depend on http.ServeMux
// pattern semantics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	switch r.URL.Path {
	case "/healthz":
		if wantMethod(w, r, http.MethodGet) {
			s.handleHealthz(w)
		}
	case "/metrics":
		if wantMethod(w, r, http.MethodGet) {
			s.handleMetrics(w)
		}
	case "/debug/flight":
		if wantMethod(w, r, http.MethodGet) {
			s.handleFlight(w, r)
		}
	case "/debug/cluster":
		if wantMethod(w, r, http.MethodGet) {
			s.handleClusterMetrics(w, r)
		}
	default:
		if id, ok := strings.CutPrefix(r.URL.Path, "/debug/trace/"); ok {
			if wantMethod(w, r, http.MethodGet) {
				s.handleClusterTrace(w, r, id)
			}
			return
		}
		s.serveTraced(w, r)
	}
}

// route serves the traced API surface.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/solve":
		if !wantMethod(w, r, http.MethodPost) {
			return
		}
		s.handleSolve(w, r)
	case r.URL.Path == "/v1/batch":
		if !wantMethod(w, r, http.MethodPost) {
			return
		}
		s.handleBatch(w, r)
	case r.URL.Path == "/v1/jobs":
		if !wantMethod(w, r, http.MethodGet) {
			return
		}
		s.handleJobList(w)
	case r.URL.Path == "/v1/cluster/join":
		if !wantMethod(w, r, http.MethodPost) {
			return
		}
		s.handleClusterJoin(w, r)
	case r.URL.Path == "/v1/cluster/leave":
		if !wantMethod(w, r, http.MethodPost) {
			return
		}
		s.handleClusterLeave(w, r)
	case strings.HasPrefix(r.URL.Path, "/v1/replica/"):
		if !wantMethod(w, r, http.MethodPost) {
			return
		}
		s.handleReplicaPut(w, r)
	case strings.HasPrefix(r.URL.Path, "/v1/store/"):
		switch r.Method {
		case http.MethodGet:
			s.handleStoreGet(w, r)
		case http.MethodPost:
			s.handleStorePut(w, r)
		default:
			w.Header().Set("Allow", "GET, POST")
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		}
	case strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
		id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		if id == "" || strings.Contains(id, "/") {
			writeError(w, http.StatusNotFound, "no such job")
			return
		}
		switch r.Method {
		case http.MethodGet:
			s.handleJobGet(w, id)
		case http.MethodDelete:
			s.handleJobCancel(w, id)
		default:
			w.Header().Set("Allow", "GET, DELETE")
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		}
	default:
		writeError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)

	// In a cluster this request may belong to another node, and forwarding
	// relays the original bytes verbatim — so buffer the body before
	// parsing. A hop-guarded request is always answered locally.
	hopped := r.Header.Get(cluster.HopHeader) != ""
	var raw []byte
	if s.clu != nil && !hopped {
		var err error
		raw, err = io.ReadAll(r.Body)
		if err != nil {
			writeRequestError(w, err)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(raw))
	}

	p, err := parseSolveRequest(r)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	if wantExplain(r) {
		// Mark the trace before any solver work: the solver measures its
		// cost report only when the request asked, and writeSolveBody
		// splices it into (a copy of) the canonical body on the way out.
		obsv.FromContext(r.Context()).RequestExplain()
	}
	if s.clu != nil && hopped {
		s.hopServed.Add(1)
	}
	if p.isDelta {
		s.handleDelta(w, r, p, raw, hopped)
		return
	}
	key, err := core.Fingerprint(p.in, p.opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, "fingerprint: %v", err)
		return
	}
	if s.clu != nil && !hopped {
		// The local cache answers first: it is authoritative for keys this
		// node owns and byte-identical for any key it happens to hold
		// (replica pushes and fallback solves populate it), so skipping the
		// hop is always safe — and it is exactly how a successor serves a
		// dead owner's keys warm.
		if body, ok := s.cache.Get(key); ok {
			s.noteReplicaServe(r.Context(), key)
			s.parkSessionAsync(key, p.in, p.opt)
			obsv.FromContext(r.Context()).Event("cache: byte cache answered")
			s.writeSolveBody(w, r, key, "hit", body)
			return
		}
		if _, self := s.clu.OwnerOf(key); !self {
			if s.forwardSolve(w, r, key, raw) {
				return
			}
			// The chain walk ended on this node: it is now the best
			// surviving candidate for the key, so it serves — warm when the
			// key was replicated here, cold only as the new owner.
		}
		// The miss is already recorded by the Get above.
		body, status, err := s.resolveMiss(r.Context(), key, p.in, p.opt)
		if err != nil {
			writeResolveError(w, err)
			return
		}
		s.writeSolveBody(w, r, key, status, body)
		return
	}
	if body, ok := s.cache.Get(key); ok {
		s.noteReplicaServe(r.Context(), key)
		s.parkSessionAsync(key, p.in, p.opt)
		obsv.FromContext(r.Context()).Event("cache: byte cache answered")
		s.writeSolveBody(w, r, key, "hit", body)
		return
	}
	body, status, err := s.resolveMiss(r.Context(), key, p.in, p.opt)
	if err != nil {
		writeResolveError(w, err)
		return
	}
	s.writeSolveBody(w, r, key, status, body)
}

// handleDelta answers a warm-start request: in a cluster the request is
// relayed to the owner of the *base* fingerprint (where the warm session
// lives); locally, identical (base, delta) pairs coalesce onto one partial
// re-solve through the shared flight map.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request, p *solveParsed, raw []byte, hopped bool) {
	s.deltaRequests.Add(1)
	if s.clu != nil && !hopped {
		if _, self := s.clu.OwnerOf(p.base); !self {
			if s.forwardSolve(w, r, p.base, raw) {
				return
			}
			// The chain ended here. With replication this node holds the
			// base's replicated session artifacts and restores warm; without
			// it, it may still have a session from an earlier fallback solve.
		}
	}
	body, key, status, err := s.resolveDelta(r.Context(), p)
	if err != nil {
		if errors.Is(err, errNoSession) {
			writeError(w, http.StatusNotFound,
				"no warm session for base %s on this node; re-submit the full instance", hex.EncodeToString(p.base[:]))
			return
		}
		writeResolveError(w, err)
		return
	}
	w.Header().Set("X-Linksynth-Incr", status)
	// X-Linksynth-Cache keeps its documented hit/miss/coalesced value set;
	// the incremental disposition travels only in X-Linksynth-Incr.
	cacheStatus := "miss"
	if status == "hit" || status == "coalesced" {
		cacheStatus = status
	}
	s.writeSolveBody(w, r, key, cacheStatus, body)
}

// resolveDelta coalesces identical concurrent (base, delta) requests onto
// one leader, which runs the partial re-solve through the base's warm
// session. It returns the response body, the patched instance's full
// fingerprint, and the incremental disposition: "partial", "warm" or
// "cold" (how much the warm state helped), "hit" (the patched key was
// already cached; those bytes win), or "coalesced".
func (s *Server) resolveDelta(ctx context.Context, p *solveParsed) ([]byte, cache.Key, string, error) {
	dk := deltaFlightKey(p.base, p.delta)
	for {
		f, lead := s.tryLead(dk)
		if !lead {
			select {
			case <-f.done:
				if f.err != nil {
					if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
						continue
					}
					return nil, cache.Key{}, "", f.err
				}
				s.coalesced.Add(1)
				obsv.FromContext(ctx).Event("solve: coalesced onto in-flight delta leader")
				return f.body, f.key, "coalesced", nil
			case <-ctx.Done():
				return nil, cache.Key{}, "", ctx.Err()
			case <-s.shutdown:
				return nil, cache.Key{}, "", errBusy
			}
		}
		body, key, status, err := s.solveDelta(ctx, p)
		f.key = key
		s.settle(dk, f, body, err)
		if err != nil {
			return nil, cache.Key{}, "", err
		}
		return body, key, status, nil
	}
}

// solveDelta runs one partial re-solve: look up the base's warm session,
// resolve the delta under admission control, and serve (and cache) the
// response under the patched instance's full fingerprint. If that
// fingerprint already has a cached body — an equivalent instance was
// solved before — the cached bytes win, keeping responses for one key
// byte-stable across warm and cold paths.
func (s *Server) solveDelta(ctx context.Context, p *solveParsed) ([]byte, cache.Key, string, error) {
	ss, ok := s.sessions.Get(p.base)
	if !ok {
		// The base may have warm state outside process memory: the durable
		// store (we restarted) or a peer's store (ownership moved here).
		if rss := s.reviveSession(ctx, p.base); rss != nil {
			ss, ok = rss, true
		}
	}
	if !ok {
		s.sessionMisses.Add(1)
		// Remember the base so the client's follow-up full submission
		// parks a session even when it is answered from the byte cache.
		s.wanted.Put(p.base, struct{}{})
		obsv.FromContext(ctx).Event("session: no warm session for base")
		return nil, cache.Key{}, "", errNoSession
	}
	// Cache-first: the patched instance's fingerprint is computable without
	// solving, so a delta whose equivalent instance was ever solved — here
	// or before a restart — is answered from the byte cache with zero
	// solver work. A validation error falls through to Resolve, which
	// reports it on the usual path.
	ss.mu.Lock()
	pkey, perr := ss.sess.PatchedFingerprint(p.delta)
	ss.mu.Unlock()
	if perr == nil {
		if body, hit := s.cache.Get(pkey); hit {
			s.noteReplicaServe(ctx, pkey)
			return body, pkey, "hit", nil
		}
	}
	if err := s.acquire(ctx); err != nil {
		return nil, cache.Key{}, "", err
	}
	defer s.release()
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s.solveRuns.Add(1)
	res, key, err := ss.sess.ResolveContext(ctx, p.delta)
	if err != nil {
		s.solveErrors.Add(1)
		return nil, cache.Key{}, "", err
	}
	status := s.countIncr(&res.Stats)
	if body, ok := s.cache.Get(key); ok {
		// An equivalent instance was solved before: the cached bytes win
		// (keeping responses for one key byte-stable) and the disposition
		// reports the cache hit, not the re-solve class.
		return body, key, "hit", nil
	}
	body, err := encodeSolveBody(hex.EncodeToString(key[:]), ss.sess.Instance(), res)
	if err != nil {
		return nil, cache.Key{}, "", err
	}
	s.storeResult(key, body)
	s.enqueueReplicate(replReq{key: key, body: body})
	return body, key, status, nil
}

// countIncr classifies a completed local solve by how much warm state it
// reused, feeding the linksynthd_incr_* counters, and returns the label.
func (s *Server) countIncr(st *core.Stats) string {
	switch {
	case st.SplicedPartitions > 0:
		s.incrPartial.Add(1)
		return "partial"
	case st.ProbReused || st.PlanReused:
		s.incrWarm.Add(1)
		return "warm"
	default:
		s.incrCold.Add(1)
		return "cold"
	}
}

// ensureSession parks a warm session for an instance this node just served
// (or could serve) so later delta requests against its fingerprint find
// warm state. Opening is cheap relative to a solve (one R1 clone); the
// compiled plan and solver state materialize only when a solve actually
// runs through it.
func (s *Server) ensureSession(key cache.Key, in core.Input, opt core.Options) *svcSession {
	if ss, ok := s.sessions.Get(key); ok {
		return ss
	}
	sess, err := s.engine.OpenKeyed(in, opt, s.pool, key)
	if err != nil {
		return nil
	}
	ss := &svcSession{sess: sess}
	s.sessions.Put(key, ss)
	return ss
}

// parkSessionAsync is ensureSession off the request path, for cache hits.
// Hits stay O(1) — no inline clone — and read-heavy traffic rotating over
// many cached keys never churns the session LRU: a hit only parks a
// session when a recent delta actually asked for this base and found none
// (the 404 told the client to re-submit the full instance; this is that
// re-submission arriving as a hit, e.g. after a restart with a warm disk
// cache).
func (s *Server) parkSessionAsync(key cache.Key, in core.Input, opt core.Options) {
	if _, ok := s.sessions.Get(key); ok {
		return
	}
	if !s.wanted.Delete(key) {
		return
	}
	go s.ensureSession(key, in, opt)
}

// writeSolveBody writes the canonical solve response. The body bytes are
// identical on every node of a cluster for a given key; only headers (cache
// disposition, serving node) vary. When the request asked for a cost
// report (?explain=1) the explain member is spliced into a copy of the
// body here — strictly after the canonical bytes were fingerprinted and
// cached, so explain can never leak into either.
func (s *Server) writeSolveBody(w http.ResponseWriter, r *http.Request, key cache.Key, status string, body []byte) {
	keyHex := hex.EncodeToString(key[:])
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Linksynth-Cache", status)
	w.Header().Set("ETag", `"`+keyHex+`"`)
	if s.clu != nil {
		w.Header().Set("X-Linksynth-Node", s.clu.Self())
	}
	if tr := obsv.FromContext(r.Context()); tr.ExplainRequested() {
		body = spliceExplain(body, s.explainEnvelope(tr, status))
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// forwardSolve relays the buffered request along the key's failover chain
// — the rendezvous rank over the currently-up nodes — and, on an
// authoritative answer, copies it through. Each attempt gets a timeout
// derived from the caller's remaining deadline budget; a transport
// failure marks the target down (re-ranking the chain, so the next
// attempt goes to whoever now owns the key) and a 5xx from an up node
// advances past it, both after a capped backoff. The walk ends three
// ways: reaching this node in the rank — return false, the caller serves
// locally as the legitimate owner or first surviving successor (warm if
// the key was replicated here); an authoritative answer — written
// through, return true; or the whole chain exhausted — 503 + Retry-After
// (written, return true), never a silent local cold solve that would
// mask a dead cluster as capacity.
func (s *Server) forwardSolve(w http.ResponseWriter, r *http.Request, key cache.Key, raw []byte) bool {
	tr := obsv.FromContext(r.Context())
	maxAttempts := s.replicas + 2
	if maxAttempts > 4 {
		maxAttempts = 4
	}
	tried := make(map[string]bool, maxAttempts)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		target := ""
		for _, u := range s.clu.RankUp(key) {
			if !tried[u] {
				target = u
				break
			}
		}
		if target == "" {
			break // every up candidate tried and failed
		}
		if target == s.clu.Self() {
			return false // best remaining candidate is this node: serve locally
		}
		tried[target] = true
		if attempt > 0 {
			if err := cluster.Backoff(r.Context(), attempt-1); err != nil {
				break
			}
		}
		actx, cancel := context.WithTimeout(r.Context(), cluster.AttemptTimeout(r.Context(), maxAttempts-attempt))
		start := time.Now()
		res, err := s.clu.ForwardSolve(actx, target, r.Header.Get("Content-Type"), r.URL.RawQuery, raw)
		cancel()
		dur := time.Since(start)
		tr.Span("forward", start, dur)
		s.obs.Forward.Observe(dur)
		if err != nil {
			s.forwardFallbacks.Add(1)
			tr.Event("forward: " + target + " unreachable; advancing along successor chain")
			continue // ForwardSolve marked it down; the rank has already moved
		}
		if res.StatusCode >= http.StatusInternalServerError {
			s.forwardFallbacks.Add(1)
			tr.Event("forward: " + target + " answered " + fmt.Sprint(res.StatusCode) + "; advancing along successor chain")
			continue
		}
		s.forwarded.Add(1)
		for _, h := range []string{"Content-Type", "X-Linksynth-Cache", "X-Linksynth-Incr", "X-Linksynth-Node", "ETag", "Retry-After"} {
			if v := res.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.WriteHeader(res.StatusCode)
		w.Write(res.Body)
		return true
	}
	s.forwardExhausted.Add(1)
	tr.Event("forward: successor chain exhausted; rejecting with 503")
	writeBusy(w, "every node in the key's successor chain is unavailable; retry")
	return true
}

// resolve returns the response body for an instance, consulting the cache,
// coalescing concurrent identical requests onto one solver run, and solving
// on a miss. It is the async job path's entry point, so solves through it
// never park warm sessions — a large batch must not churn the session LRU
// (see Config.SessionEntries). The second return is the cache disposition:
// "hit", "miss" (this request ran the solver) or "coalesced" (another
// in-flight request ran it).
func (s *Server) resolve(ctx context.Context, key cache.Key, in core.Input, opt core.Options) ([]byte, string, error) {
	if body, ok := s.cache.Get(key); ok {
		return body, "hit", nil
	}
	return s.resolveMissWith(ctx, key, in, opt, false)
}

// resolveMiss is resolve after a recorded cache miss on the sync path: the
// cluster solve path checks the cache itself (before routing) and must not
// count the same lookup twice. Sync solves park a warm session.
func (s *Server) resolveMiss(ctx context.Context, key cache.Key, in core.Input, opt core.Options) ([]byte, string, error) {
	return s.resolveMissWith(ctx, key, in, opt, true)
}

func (s *Server) resolveMissWith(ctx context.Context, key cache.Key, in core.Input, opt core.Options, park bool) ([]byte, string, error) {
	for {
		f, lead := s.tryLead(key)
		if !lead {
			select {
			case <-f.done:
				if f.err != nil {
					// The leader failed; don't inherit its error blindly —
					// transient failures (cancellation) shouldn't poison
					// followers. Retry the whole resolution.
					if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
						continue
					}
					return nil, "", f.err
				}
				s.coalesced.Add(1)
				obsv.FromContext(ctx).Event("solve: coalesced onto in-flight leader")
				return f.body, "coalesced", nil
			case <-ctx.Done():
				return nil, "", ctx.Err()
			case <-s.shutdown:
				return nil, "", errBusy
			}
		}
		body, err := s.solveAndStore(ctx, key, in, opt, park)
		s.settle(key, f, body, err)
		if err != nil {
			return nil, "", err
		}
		return body, "miss", nil
	}
}

// tryLead returns the in-flight solve for key if one exists (lead=false:
// the caller should follow it), or registers and returns a fresh flight the
// caller must complete with settle (lead=true). It is the single point of
// singleflight registration for both the sync and the job path.
func (s *Server) tryLead(key cache.Key) (f *flight, lead bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.inflight[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	s.inflight[key] = f
	return f, true
}

// settle completes a led flight: followers wake with the body or error, and
// the key leaves the inflight map (any later request re-resolves, hitting
// the cache on success).
func (s *Server) settle(key cache.Key, f *flight, body []byte, err error) {
	f.body, f.err = body, err
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(f.done)
}

// solveAndStore runs the solver under admission control and caches the
// encoded response body. With park set (the sync path), the solve runs
// through a warm session — the compiled plan comes from (and feeds) the
// shared plan cache, and the session is parked afterwards so delta
// requests against this fingerprint re-solve incrementally; without it
// (the async job path) the solve takes the plain pooled path and leaves no
// per-instance state behind.
func (s *Server) solveAndStore(ctx context.Context, key cache.Key, in core.Input, opt core.Options, park bool) ([]byte, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	s.solveRuns.Add(1)
	var res *core.Result
	var err error
	var ss *svcSession
	if park {
		ss = s.ensureSession(key, in, opt)
	}
	if ss != nil {
		ss.mu.Lock()
		res, err = ss.sess.SolveContext(ctx)
		ss.mu.Unlock()
	} else {
		res, err = core.SolveOnContext(ctx, in, opt, s.pool)
	}
	if err != nil {
		s.solveErrors.Add(1)
		return nil, err
	}
	s.countIncr(&res.Stats)
	if ss != nil && s.store != nil {
		// The base solved and left a warm session; make it durable. The
		// request input is pristine (the session solves on its own clones),
		// so it is exactly the base instance the record must reproduce.
		s.enqueuePersist(persistReq{key: key, in: in, opt: opt, ss: ss})
	}
	body, err := encodeSolveBody(hex.EncodeToString(key[:]), in, res)
	if err != nil {
		return nil, err
	}
	s.storeResult(key, body)
	s.enqueueReplicate(replReq{key: key, body: body})
	return body, nil
}

// storeResult caches a response body. A failed durable append still leaves
// the entry readable in memory; the failure is only visible operationally,
// via the linksynthd_cache_put_errors_total counter.
func (s *Server) storeResult(key cache.Key, body []byte) {
	if err := s.cache.Put(key, body); err != nil {
		s.cachePutFails.Add(1)
	}
}

// acquire claims a solver slot, queueing up to queueDepth waiters; beyond
// that the server sheds load with errBusy instead of building an unbounded
// backlog.
func (s *Server) acquire(ctx context.Context) error {
	if int(s.waiting.Add(1)) > s.queueDepth+s.nWorkers {
		s.waiting.Add(-1)
		s.rejectedBusy.Add(1)
		return errBusy
	}
	defer s.waiting.Add(-1)
	select {
	case s.solveSem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.shutdown:
		return errBusy
	}
}

func (s *Server) release() { <-s.solveSem }

// retireLocked records a job as finished and expires the oldest finished
// jobs beyond the retention bound, so long-lived servers do not accumulate
// every job's results forever. Finished jobs stay pollable until 4x the
// queue depth of newer jobs have finished after them. Caller holds s.mu.
func (s *Server) retireLocked(j *job) {
	s.finished = append(s.finished, j.id)
	for len(s.finished) > 4*s.queueDepth {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// handleHealthz reports liveness and, in a cluster, this node's identity
// and its view of every peer — the same endpoint the peers' probers hit.
func (s *Server) handleHealthz(w http.ResponseWriter) {
	resp := map[string]any{"status": "ok"}
	if s.clu != nil {
		resp["node"] = s.clu.Self()
		resp["peers"] = s.clu.Snapshot()
		// The member view rides on every probe response: this is the gossip
		// payload that converges joins and leaves across the cluster.
		resp["members"] = s.clu.Members()
		resp["epoch"] = s.clu.Epoch()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics renders the Prometheus scrape. Families are accumulated
// into an obsv.Exposition and emitted sorted by name with HELP/TYPE
// headers, so two scrapes observing the same values are byte-identical —
// the ordering is part of the endpoint's contract (tests and the CI
// exposition check rely on it).
func (s *Server) handleMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(s.metricsExposition()))
}

// metricsExposition renders this node's scrape as a string; handleMetrics
// serves it, and the /debug/cluster fan-out merges it with the peers'
// without a loopback HTTP request.
func (s *Server) metricsExposition() string {
	cs := s.cache.Stats()
	s.mu.Lock()
	nJobs := len(s.jobs)
	queued := len(s.jobQueue)
	s.mu.Unlock()
	var e obsv.Exposition
	counter := func(name string, v uint64, help string) {
		e.Counter("linksynthd_"+name, help, v)
	}
	gauge := func(name string, v int64, help string) {
		e.Gauge("linksynthd_"+name, help, v)
	}
	bi := obsv.BuildInfo()
	e.Info("linksynthd_build_info", "build metadata of the running binary; value is constant 1", map[string]string{
		"goversion": bi.GoVersion,
		"modified":  bi.Modified,
		"revision":  bi.Revision,
		"version":   bi.Version,
	})
	for _, h := range s.obs.Histograms() {
		e.Histogram(h)
	}
	gauge("flight_traces", int64(s.obs.Recorder.Len()), "traces resident in the flight-recorder ring")
	counter("flight_recorded_total", s.obs.Recorder.Recorded(), "completed traces recorded")
	snaps, snapErrs := s.obs.Recorder.SnapshotStats()
	counter("flight_snapshots_total", snaps, "failed traces snapshotted to disk")
	counter("flight_snapshot_errors_total", snapErrs, "trace snapshots that could not be written")
	counter("flight_snapshots_pruned_total", s.obs.Recorder.Pruned(), "trace snapshot files deleted by the retention cap")
	if s.pool != nil {
		ps := s.pool.Stats()
		gauge("pool_busy", int64(s.pool.Busy()), "solver pool slots held right now")
		counter("pool_claims_total", ps.Claims, "pool slots claimed for parallel dispatch")
		counter("pool_inline_total", ps.Inline, "dispatches run inline because the pool was saturated")
	}
	counter("requests_total", s.requests.Load(), "HTTP requests received")
	counter("cache_hits_total", cs.Hits, "result cache hits")
	counter("cache_misses_total", cs.Misses, "result cache misses")
	counter("cache_evictions_total", cs.Evictions, "LRU evictions")
	gauge("cache_entries", int64(cs.Entries), "live cache entries")
	gauge("cache_replayed_entries", int64(cs.Replayed), "entries recovered from the append-only log at startup")
	counter("solver_runs_total", s.solveRuns.Load(), "instances actually solved (cache misses)")
	counter("solver_errors_total", s.solveErrors.Load(), "solver runs that failed")
	counter("cache_put_errors_total", s.cachePutFails.Load(), "results that could not be appended to the durable log")
	counter("coalesced_requests_total", s.coalesced.Load(), "requests served by another request's in-flight solve")
	counter("rejected_total", s.rejectedBusy.Load(), "requests shed because the solve queue was full")
	counter("jobs_accepted_total", s.jobsAccepted.Load(), "async jobs accepted")
	counter("jobs_done_total", s.jobsDone.Load(), "async jobs finished")
	counter("jobs_canceled_total", s.jobsCanceled.Load(), "async jobs canceled")
	es := s.engine.Stats()
	counter("incr_cold_solves_total", s.incrCold.Load(), "local solves with no warm-state reuse")
	counter("incr_warm_solves_total", s.incrWarm.Load(), "local solves reusing a compiled plan or problem without splicing")
	counter("incr_partial_solves_total", s.incrPartial.Load(), "local solves splicing partitions from a warm session")
	counter("incr_delta_requests_total", s.deltaRequests.Load(), "warm-start (base+delta) requests received")
	counter("incr_session_misses_total", s.sessionMisses.Load(), "delta requests whose base had no warm session here")
	counter("incr_plan_hits_total", es.PlanHits, "compiled-plan cache hits")
	counter("incr_plan_misses_total", es.PlanMisses, "compiled-plan cache misses (plans compiled)")
	gauge("incr_sessions", int64(s.sessions.Len()), "warm solver sessions retained")
	gauge("incr_plans", int64(es.Plans), "compiled plans retained")
	gauge("jobs_known", int64(nJobs), "jobs retained in the registry")
	gauge("job_queue_depth", int64(queued), "jobs waiting to run")
	gauge("workers", int64(s.nWorkers), "solver pool size")
	gauge("uptime_seconds", int64(time.Since(s.start).Seconds()), "seconds since start")
	if s.clu != nil {
		peers := s.clu.Snapshot()
		up := 0
		for _, p := range peers {
			if p.Up {
				up++
			}
		}
		gauge("cluster_members", int64(len(s.clu.Nodes())), "live members in the gossiped view (self included)")
		gauge("cluster_membership_epoch", int64(s.clu.Epoch()), "highest membership epoch observed (logical clock over joins and leaves)")
		gauge("cluster_peers_known", int64(len(peers)), "remote members known to this node")
		gauge("cluster_peers_up", int64(up), "peers currently believed up")
		counter("cluster_probes_total", s.clu.Probes(), "individual peer health probes run")
		counter("cluster_probes_stale_total", s.clu.StaleProbes(), "probe results discarded by the liveness generation guard")
		counter("cluster_transitions_total", s.clu.Transitions(), "peer up/down state changes observed")
		counter("cluster_forwarded_total", s.forwarded.Load(), "solves relayed to their owning node")
		counter("cluster_forward_fallbacks_total", s.forwardFallbacks.Load(), "forward attempts that failed (peer down or 5xx)")
		counter("cluster_forward_exhausted_total", s.forwardExhausted.Load(), "solves rejected 503 after the whole successor chain failed")
		counter("cluster_hop_served_total", s.hopServed.Load(), "hop-guarded requests answered locally")
		counter("cluster_scatter_jobs_total", s.scatterJobs.Load(), "batch jobs scattered across the cluster")
		counter("cluster_gather_fallbacks_total", s.gatherFallbacks.Load(), "scattered groups re-solved locally after a peer failure")
		counter("cluster_replica_pushed_total", s.replicaPushed.Load(), "cache entries and store files pushed to ring-successors")
		counter("cluster_replica_ingested_total", s.replicaIngested.Load(), "pushed cache entries and store files accepted from peers")
		counter("cluster_replica_served_total", s.replicaServed.Load(), "cache hits satisfied by a replicated entry")
		counter("cluster_replica_failed_total", s.replicaFailed.Load(), "replica pushes or ingests that failed or were rejected")
		counter("cluster_failovers_total", s.failovers.Load(), "replica answers served while the key's owner was down")
		counter("cluster_sessions_migrated_total", s.sessionsMigrated.Load(), "parked sessions streamed to their new owner on membership change")
	}
	if s.store != nil {
		st := s.store.Stats()
		gauge("store_snapshot_bytes", st.SnapshotBytes, "bytes of columnar snapshots on disk")
		gauge("store_session_bytes", st.SessionBytes, "bytes of session records on disk")
		gauge("store_cache_bytes", st.CacheBytes, "bytes of the result-cache log on disk")
		gauge("store_snapshots", int64(st.Snapshots), "columnar snapshots resident on disk")
		gauge("store_sessions", int64(st.Sessions), "session records resident on disk")
		gauge("store_snapshots_mapped", st.MappedNow, "snapshots currently memory-mapped")
		counter("store_sessions_persisted_total", s.sessionsPersisted.Load(), "parked sessions written to the durable store")
		counter("store_sessions_restored_total", s.sessionsRestored.Load(), "sessions revived from the durable store")
		counter("store_persist_errors_total", s.persistErrors.Load(), "session persists dropped or failed")
		counter("store_restore_errors_total", s.restoreFails.Load(), "session restores refused (verification or rebuild failure)")
		counter("store_corrupt_files_total", st.CorruptFiles, "store files quarantined after failing validation")
		counter("store_ingested_files_total", st.IngestedFiles, "store files accepted from peers")
		counter("store_handoff_fetches_total", s.handoffFetches.Load(), "warm sessions pulled from a peer")
		counter("store_handoff_served_total", s.handoffServed.Load(), "store files served to peers")
	}
	return e.Render()
}

func wantMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	return false
}

// jsonBufPool recycles encode buffers across responses: status, error,
// metrics, and job-listing bodies are written on every request, and
// re-encoding them into a fresh allocation each time is the service's
// steadiest garbage source. Buffers are returned on every path — the
// poolleak analyzer enforces this.
var jsonBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		jsonBufPool.Put(buf)
	}()
	// Encode before touching the ResponseWriter so an encoding failure can
	// still change the status line instead of corrupting a committed 200.
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode appends a newline Marshal would not; trim it so bodies stay
	// byte-identical to the pre-pool encoding.
	w.Write(bytes.TrimSuffix(buf.Bytes(), []byte("\n")))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeBusy is the admission-rejection response: 503 with a Retry-After
// hint so well-behaved clients back off instead of hammering a full queue.
func writeBusy(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, format, args...)
}

// writeRequestError maps request parse/validation failures onto statuses:
// 413 for an over-limit body, the carried status for apiErrors, 400 for the
// rest.
func writeRequestError(w http.ResponseWriter, err error) {
	var ae *apiError
	switch {
	case isTooLarge(err):
		writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds limit")
	case errors.As(err, &ae):
		writeError(w, ae.status, "%s", ae.msg)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// writeResolveError maps solve-path failures: 503 for load shedding, 499-ish
// client cancellation reported as 503, and 422 for instances the solver
// rejects or cannot complete.
func writeResolveError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errBusy):
		writeBusy(w, "server busy: solve queue full")
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeBusy(w, "request canceled before a solver slot freed up")
	default:
		writeError(w, http.StatusUnprocessableEntity, "solve: %v", err)
	}
}
