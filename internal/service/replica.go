package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/obsv"
)

// This file is the serving layer's elasticity tier: the membership
// endpoints a joining or leaving node announces itself through, the
// replica-ingestion endpoints an owner pushes warm state to, the
// asynchronous replication queue that feeds them, and the migration
// watcher that streams parked sessions to their new owner when ring
// ownership moves. Together they make a node's death boring: its K
// ring-successors already hold its cache entries and durable session
// artifacts, so the first successor answers warm — byte-identical, zero
// solver runs for replicated fingerprints — the moment the failure is
// observed.

// replPushTimeout bounds one replication round (all targets, all files);
// replication is asynchronous and asymptotic, so a slow round is dropped,
// not stretched.
const replPushTimeout = 30 * time.Second

// replReq asks the replicator goroutine to push one solved key to its
// ring-successors: the encoded response body for the byte cache, and any
// durable-store artifacts (session record, snapshots) by fingerprint —
// the file bytes are read from the store at push time, so the queue holds
// no large payloads beyond the response body itself.
type replReq struct {
	key   cache.Key
	body  []byte
	files []cache32
}

// enqueueReplicate hands a just-produced key to the replicator without
// blocking the caller; a full queue drops the push (counted) rather than
// stalling a response — the next solve of a neighboring key, or the
// migration watcher, will converge the replicas later. The s.mu guard
// orders enqueues before Close's channel close.
func (s *Server) enqueueReplicate(req replReq) {
	if s.replQ == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.replQ <- req:
	default:
		s.replicaFailed.Add(1)
	}
}

// replLoop drains replication requests until Close closes the queue.
// Each round runs under its own "replicate" trace, recorded to the
// flight ring, so the async path is as observable as a request.
func (s *Server) replLoop() {
	defer close(s.replDone)
	for req := range s.replQ {
		s.replicateOne(req)
	}
}

func (s *Server) replicateOne(req replReq) {
	targets := s.clu.ReplicaTargets(req.key, s.replicas)
	if len(targets) == 0 {
		return
	}
	tr := obsv.NewTrace(obsv.NewID(), "replicate", s.clu.Self())
	defer s.obs.Recorder.Record(tr)
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), replPushTimeout)
	defer cancel()
	ctx = obsv.WithTrace(ctx, tr)
	keyHex := hex.EncodeToString(req.key[:])
	tr.Event("replicate: " + keyHex[:12] + " to " + strings.Join(targets, ", "))
	for _, target := range targets {
		if !s.clu.IsUp(target) {
			// Circuit break: a down successor gets nothing pushed; the next
			// key it ranks for (or a later re-solve) retries after recovery.
			s.replicaFailed.Add(1)
			continue
		}
		s.pushTo(ctx, tr, target, req)
	}
	dur := time.Since(start)
	tr.Span("replicate", start, dur)
	s.obs.Replicate.Observe(dur)
}

// pushTo replicates one key's state to one successor: the cache body
// first (it alone makes failover reads warm), then the store files.
func (s *Server) pushTo(ctx context.Context, tr *obsv.Trace, target string, req replReq) {
	keyHex := hex.EncodeToString(req.key[:])
	if req.body != nil {
		if err := s.clu.PushReplica(ctx, target, keyHex, req.body); err != nil {
			s.replicaFailed.Add(1)
			tr.SetError("replicate: cache push to " + target + ": " + err.Error())
			return // the peer just failed; don't hammer it with the files
		}
		s.replicaPushed.Add(1)
	}
	for _, fp := range req.files {
		data, _, err := s.store.ReadFile(fp)
		if err != nil {
			continue // evicted or quarantined since the solve; nothing to push
		}
		if err := s.clu.PushStore(ctx, target, hex.EncodeToString(fp[:]), data); err != nil {
			s.replicaFailed.Add(1)
			tr.SetError("replicate: store push to " + target + ": " + err.Error())
			return
		}
		s.replicaPushed.Add(1)
	}
}

// noteReplicaServe accounts a cache hit that was satisfied by a
// replicated entry, and — when the key's rightful owner is down — files
// a failover event: this node is answering for a dead owner, warm.
func (s *Server) noteReplicaServe(ctx context.Context, key cache.Key) {
	if s.replicated == nil {
		return
	}
	if _, ok := s.replicated.Get(key); !ok {
		return
	}
	s.replicaServed.Add(1)
	owner := s.clu.OwnerAmongMembers(key)
	if owner != s.clu.Self() && !s.clu.IsUp(owner) {
		s.failovers.Add(1)
		obsv.FromContext(ctx).Event("failover: owner " + owner + " down; replica answered warm")
	}
}

// clusterMemberWire is the /v1/cluster/{join,leave} body: the announcing
// node's URL, and (in join responses) the full member view for the
// joiner to adopt.
type clusterMemberWire struct {
	URL     string           `json:"url"`
	Members []cluster.Member `json:"members,omitempty"`
}

func decodeMemberWire(w http.ResponseWriter, r *http.Request) (clusterMemberWire, bool) {
	var mw clusterMemberWire
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeRequestError(w, err)
		return mw, false
	}
	if err := json.Unmarshal(body, &mw); err != nil {
		writeError(w, http.StatusBadRequest, "cluster body: %v", err)
		return mw, false
	}
	if mw.URL == "" {
		writeError(w, http.StatusBadRequest, "cluster body: missing url")
		return mw, false
	}
	return mw, true
}

// handleClusterJoin admits a node into the member set and returns the
// full member view for it to adopt. Gossip spreads the new member to the
// rest of the cluster within a probe cycle per hop; the ring recomputes
// incrementally, moving only the joiner's key ranges.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	if s.clu == nil {
		writeError(w, http.StatusNotFound, "not clustered")
		return
	}
	mw, ok := decodeMemberWire(w, r)
	if !ok {
		return
	}
	members, err := s.clu.Join(mw.URL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	obsv.FromContext(r.Context()).Event("cluster: member joined: " + mw.URL)
	writeJSON(w, http.StatusOK, clusterMemberWire{URL: s.clu.Self(), Members: members})
}

// handleClusterLeave tombstones a member. The departing node calls this
// on its peers (via AnnounceLeave) so ownership moves before its process
// exits instead of after probes time out.
func (s *Server) handleClusterLeave(w http.ResponseWriter, r *http.Request) {
	if s.clu == nil {
		writeError(w, http.StatusNotFound, "not clustered")
		return
	}
	mw, ok := decodeMemberWire(w, r)
	if !ok {
		return
	}
	if err := s.clu.Leave(mw.URL); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	obsv.FromContext(r.Context()).Event("cluster: member left: " + mw.URL)
	writeJSON(w, http.StatusOK, clusterMemberWire{URL: s.clu.Self(), Members: s.clu.Members()})
}

// handleReplicaPut ingests a pushed cache entry. The body must be the
// canonical encoding of a solve response whose embedded key equals the
// path fingerprint — re-serialization must reproduce the bytes exactly —
// so a corrupt or misdirected push is rejected before it can ever be
// served. (The store artifacts carry full content-hash verification via
// Ingest; the cache body's embedded-key + canonical-form check is the
// strongest validation available without re-solving.)
func (s *Server) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	if s.clu == nil {
		writeError(w, http.StatusNotFound, "not clustered")
		return
	}
	fpHex := strings.TrimPrefix(r.URL.Path, "/v1/replica/")
	raw, err := hex.DecodeString(fpHex)
	if err != nil || len(raw) != 32 {
		writeError(w, http.StatusBadRequest, "replica path %q is not a 64-hex-digit fingerprint", fpHex)
		return
	}
	var key cache.Key
	copy(key[:], raw)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		s.replicaFailed.Add(1)
		writeRequestError(w, err)
		return
	}
	var resp SolveResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		s.replicaFailed.Add(1)
		writeError(w, http.StatusBadRequest, "replica body: %v", err)
		return
	}
	reenc, err := json.Marshal(resp)
	if err != nil || resp.Key != fpHex || !bytes.Equal(reenc, body) {
		s.replicaFailed.Add(1)
		writeError(w, http.StatusBadRequest, "replica body for %s failed verification", fpHex)
		return
	}
	s.storeResult(key, body)
	s.replicated.Put(key, struct{}{})
	s.replicaIngested.Add(1)
	obsv.FromContext(r.Context()).Event("replica: ingested cache entry " + fpHex[:12])
	w.WriteHeader(http.StatusNoContent)
}

// handleStorePut ingests a pushed durable-store artifact through the
// store's verify-or-quarantine path: the bytes are validated against the
// claimed fingerprint (content hash for snapshots, framing plus embedded
// base fingerprint for session records) before they become visible, so a
// bad push can never poison a future restore.
func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusNotFound, "no data directory configured")
		return
	}
	fpHex := strings.TrimPrefix(r.URL.Path, "/v1/store/")
	raw, err := hex.DecodeString(fpHex)
	if err != nil || len(raw) != 32 {
		writeError(w, http.StatusBadRequest, "store path %q is not a 64-hex-digit fingerprint", fpHex)
		return
	}
	var fp cache32
	copy(fp[:], raw)
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		s.replicaFailed.Add(1)
		writeRequestError(w, err)
		return
	}
	if _, err := s.store.Ingest(fp, data); err != nil {
		s.replicaFailed.Add(1)
		writeError(w, http.StatusBadRequest, "store ingest %s: %v", fpHex, err)
		return
	}
	s.replicaIngested.Add(1)
	obsv.FromContext(r.Context()).Event("replica: ingested store file " + fpHex[:12])
	w.WriteHeader(http.StatusNoContent)
}

// watchMembership reacts to membership change: whenever the member set
// shifts (join, leave, gossip-learned churn), every parked session whose
// base now ranks to a different owner is streamed there — cache entry
// plus durable artifacts — so `{base, delta}` routing follows the new
// ring onto a node that is already warm. Pushes are idempotent (the
// store ingests by content address, the cache by key), so racing with
// the new owner's own solves is harmless.
func (s *Server) watchMembership() {
	defer close(s.watchDone)
	for {
		select {
		case <-s.shutdown:
			return
		case <-s.clu.Changed():
			s.migrateSessions(context.Background())
		}
	}
}

// migrateSessions pushes every locally parked session owned elsewhere to
// its current owner. Used on membership change and by Leave's drain.
func (s *Server) migrateSessions(ctx context.Context) {
	bases := s.sessions.Keys()
	if len(bases) == 0 {
		return
	}
	tr := obsv.NewTrace(obsv.NewID(), "migrate", s.clu.Self())
	defer s.obs.Recorder.Record(tr)
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, replPushTimeout)
	defer cancel()
	ctx = obsv.WithTrace(ctx, tr)
	moved := 0
	for _, base := range bases {
		owner, self := s.clu.OwnerOf(base)
		if self || owner == "" {
			continue
		}
		if s.migrateSession(ctx, tr, base, owner) {
			moved++
		}
	}
	if moved > 0 {
		s.sessionsMigrated.Add(uint64(moved))
		tr.Span("migrate", start, time.Since(start))
	}
}

// migrateSession streams one base's warm state to its new owner: the
// cached response body, then the session record and the snapshots it
// references. Partial transfers are fine — whatever arrived is verified
// and usable, and the remainder stays reachable through the pull-side
// handoff (/v1/store GET).
func (s *Server) migrateSession(ctx context.Context, tr *obsv.Trace, base cache.Key, owner string) bool {
	moved := false
	baseHex := hex.EncodeToString(base[:])
	if body, ok := s.cache.Get(base); ok {
		if err := s.clu.PushReplica(ctx, owner, baseHex, body); err == nil {
			moved = true
		} else {
			tr.SetError("migrate: cache push to " + owner + ": " + err.Error())
		}
	}
	if s.store == nil {
		return moved
	}
	rec, err := s.store.LoadSession(base)
	if err != nil {
		return moved
	}
	for _, fp := range []cache32{rec.R1FP, rec.R2FP, base} {
		data, _, err := s.store.ReadFile(fp)
		if err != nil {
			continue
		}
		if err := s.clu.PushStore(ctx, owner, hex.EncodeToString(fp[:]), data); err != nil {
			tr.SetError("migrate: store push to " + owner + ": " + err.Error())
			return moved
		}
		moved = true
	}
	tr.Event("migrate: session " + baseHex[:12] + " -> " + owner)
	return moved
}

// Leave drains this node out of the cluster gracefully: it tombstones
// itself (locally and, best-effort, on every peer), then synchronously
// streams every parked session to its new owner under the post-leave
// ring. After Leave returns the process can exit without stranding warm
// state; anything the drain missed remains replicated on the successors
// or pullable until the process actually dies.
func (s *Server) Leave(ctx context.Context) {
	if s.clu == nil {
		return
	}
	s.clu.AnnounceLeave(ctx)
	s.migrateSessions(ctx)
}
