package service

import (
	"encoding/hex"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
)

// patchedInstance applies the test delta (cc0 target -> 3, person 3's Rel
// -> Spouse) to the wire instance, mirroring what the warm-start path does
// server-side.
func patchedInstance(inst InstanceJSON) InstanceJSON {
	inst.Constraints = strings.Replace(inst.Constraints,
		"count(Rel = 'Owner', Area = 'Chicago') = 2",
		"count(Rel = 'Owner', Area = 'Chicago') = 3", 1)
	rows := make([][]any, len(inst.R1.Rows))
	copy(rows, inst.R1.Rows)
	r := append([]any(nil), rows[3]...)
	r[2] = "Spouse"
	rows[3] = r
	r1 := *inst.R1
	r1.Rows = rows
	inst.R1 = &r1
	return inst
}

func testDelta() *DeltaJSON {
	return &DeltaJSON{
		CCTargets: map[string]int64{"0": 3},
		R1Edits:   []CellEditJSON{{Row: 3, Col: "Rel", Val: "Spouse"}},
	}
}

// TestDeltaSolveMatchesColdSolve is the service-level byte-identity check:
// a warm-start delta response must carry the same result relations and the
// same content key as submitting the patched instance in full, and the
// cached body under that key must serve byte-identically afterwards.
func TestDeltaSolveMatchesColdSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	opts := &OptionsJSON{Seed: 1}

	// Base solve: leaves a warm session behind.
	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: testInstance(0), Options: opts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base solve status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var base SolveResponse
	if err := json.Unmarshal(readBody(t, resp), &base); err != nil {
		t.Fatal(err)
	}

	// Delta against the base fingerprint.
	resp = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Base: base.Key, Delta: testDelta()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta solve status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get("X-Linksynth-Incr"); got == "" {
		t.Errorf("delta response missing X-Linksynth-Incr header")
	}
	deltaBody := readBody(t, resp)
	var warm SolveResponse
	if err := json.Unmarshal(deltaBody, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Key == base.Key {
		t.Fatalf("delta response key equals base key; the patched instance must address differently")
	}

	// Cold oracle: the equivalent patched instance on a fresh server.
	_, ts2 := newTestServer(t, Config{Workers: 2})
	resp = postJSON(t, ts2.URL+"/v1/solve", SolveRequest{InstanceJSON: patchedInstance(testInstance(0)), Options: opts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold patched solve status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var cold SolveResponse
	if err := json.Unmarshal(readBody(t, resp), &cold); err != nil {
		t.Fatal(err)
	}
	if warm.Key != cold.Key {
		t.Errorf("delta key %s != cold key %s", warm.Key, cold.Key)
	}
	if !reflect.DeepEqual(warm.Result.R1Hat, cold.Result.R1Hat) ||
		!reflect.DeepEqual(warm.Result.R2Hat, cold.Result.R2Hat) ||
		!reflect.DeepEqual(warm.Result.VJoin, cold.Result.VJoin) {
		t.Errorf("delta result relations differ from cold solve of the patched instance")
	}
	if !reflect.DeepEqual(warm.Result.CCErrors, cold.Result.CCErrors) || warm.Result.DCError != cold.Result.DCError {
		t.Errorf("delta quality metrics differ from cold solve")
	}

	// Submitting the patched instance in full on the warm server now hits
	// the cache entry the delta populated, byte-identically.
	resp = postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: patchedInstance(testInstance(0)), Options: opts})
	if got := resp.Header.Get("X-Linksynth-Cache"); got != "hit" {
		t.Errorf("patched full solve after delta: cache header %q, want hit", got)
	}
	if full := readBody(t, resp); string(full) != string(deltaBody) {
		t.Errorf("cached patched body differs from delta response body")
	}
}

// TestDeltaWithoutSessionIs404 rejects deltas whose base never solved here.
func TestDeltaWithoutSessionIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{
		Base:  strings.Repeat("ab", 32),
		Delta: testDelta(),
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)
	if got := metricValue(t, ts.URL, "incr_session_misses_total"); got != 1 {
		t.Errorf("incr_session_misses_total = %d, want 1", got)
	}
}

// TestDeltaRequestValidation rejects malformed warm-start bodies.
func TestDeltaRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	bad := []SolveRequest{
		{Base: "zz", Delta: testDelta()},                      // bad hex
		{Base: strings.Repeat("ab", 32)},                      // base without delta
		{Base: strings.Repeat("ab", 32), Delta: &DeltaJSON{}}, // empty delta
		{Delta: testDelta()},                                  // delta without base
		{Base: strings.Repeat("ab", 32), Delta: testDelta(), Options: &OptionsJSON{Seed: 2}}, // options on delta
		{InstanceJSON: testInstance(0), Base: strings.Repeat("ab", 32), Delta: testDelta()},  // instance + delta
	}
	for i, req := range bad {
		resp := postJSON(t, ts.URL+"/v1/solve", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %d: status %d, want 400: %s", i, resp.StatusCode, readBody(t, resp))
			continue
		}
		readBody(t, resp)
	}

	// Schema-dependent delta failures are only detectable against a live
	// session: they must come back as clean client errors — never a panic
	// that kills the connection and wedges the (base, delta) flight.
	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: testInstance(0), Options: &OptionsJSON{Seed: 1}})
	var base SolveResponse
	if err := json.Unmarshal(readBody(t, resp), &base); err != nil {
		t.Fatal(err)
	}
	sessionBad := []*DeltaJSON{
		{R1Appends: [][]any{{"oops", 1, "Owner", nil}}},             // kind mismatch in column 0
		{R1Appends: [][]any{{99}}},                                  // arity mismatch
		{R1Edits: []CellEditJSON{{Row: 0, Col: "Age", Val: "old"}}}, // kind mismatch on edit
		{R1Edits: []CellEditJSON{{Row: 999, Col: "Age", Val: 1}}},   // row out of range
		{CCTargets: map[string]int64{"99": 5}},                      // CC index out of range
	}
	for i, d := range sessionBad {
		resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Base: base.Key, Delta: d})
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Errorf("session-bad delta %d: status %d, want a 4xx: %s", i, resp.StatusCode, readBody(t, resp))
			continue
		}
		readBody(t, resp)
		// The flight must not be wedged: a valid delta right after succeeds.
		ok := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Base: base.Key, Delta: testDelta()})
		if ok.StatusCode != http.StatusOK {
			t.Fatalf("valid delta after bad delta %d: status %d: %s", i, ok.StatusCode, readBody(t, ok))
		}
		readBody(t, ok)
	}
}

// TestDeltaSessionRecoveryViaCacheHit pins the 404-retry flow: after the
// base's session is evicted, a delta 404s, the client re-submits the full
// instance — answered from the byte cache — and that hit re-parks a warm
// session, so the retried delta succeeds.
func TestDeltaSessionRecoveryViaCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SessionEntries: 1})
	opts := &OptionsJSON{Seed: 1}

	respA := postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: testInstance(0), Options: opts})
	var base SolveResponse
	if err := json.Unmarshal(readBody(t, respA), &base); err != nil {
		t.Fatal(err)
	}
	// A second instance evicts A's session (capacity 1); A's body stays cached.
	readBody(t, postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: testInstance(7), Options: opts}))

	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Base: base.Key, Delta: testDelta()})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delta after eviction: status %d, want 404: %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)

	// The client's retry: full instance, served from cache, parks a session
	// (asynchronously — the 404 marked this base as wanted).
	resp = postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: testInstance(0), Options: opts})
	if got := resp.Header.Get("X-Linksynth-Cache"); got != "hit" {
		t.Fatalf("full re-submit: cache header %q, want hit", got)
	}
	readBody(t, resp)

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Base: base.Key, Delta: testDelta()})
		readBody(t, resp)
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delta still failing after cache-hit re-park: status %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIncrMetrics walks the incr counter progression: a cold solve, a warm
// re-open, and a partial delta.
func TestIncrMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	opts := &OptionsJSON{Seed: 1}

	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: testInstance(0), Options: opts})
	var base SolveResponse
	if err := json.Unmarshal(readBody(t, resp), &base); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, ts.URL, "incr_cold_solves_total"); got != 1 {
		t.Errorf("incr_cold_solves_total = %d, want 1", got)
	}
	if got := metricValue(t, ts.URL, "incr_sessions"); got != 1 {
		t.Errorf("incr_sessions = %d, want 1", got)
	}

	resp = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Base: base.Key, Delta: testDelta()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)
	if got := metricValue(t, ts.URL, "incr_delta_requests_total"); got != 1 {
		t.Errorf("incr_delta_requests_total = %d, want 1", got)
	}
	warm := metricValue(t, ts.URL, "incr_warm_solves_total")
	partial := metricValue(t, ts.URL, "incr_partial_solves_total")
	if warm+partial != 1 {
		t.Errorf("delta solve classified neither warm nor partial (warm=%d partial=%d)", warm, partial)
	}
}

// TestDeltaCoalescing pins the (base, delta) singleflight: while a leader
// holds the delta flight, an identical concurrent request must wait and
// adopt the leader's body rather than re-solving.
func TestDeltaCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	opts := &OptionsJSON{Seed: 1}
	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: testInstance(0), Options: opts})
	var base SolveResponse
	if err := json.Unmarshal(readBody(t, resp), &base); err != nil {
		t.Fatal(err)
	}
	rawBase, err := hex.DecodeString(base.Key)
	if err != nil {
		t.Fatal(err)
	}
	var baseKey cache.Key
	copy(baseKey[:], rawBase)
	d, err := testDelta().toDelta()
	if err != nil {
		t.Fatal(err)
	}
	dk := deltaFlightKey(baseKey, d)

	// Become the leader for this (base, delta) before firing the request.
	f, lead := s.tryLead(dk)
	if !lead {
		t.Fatal("test could not claim the delta flight")
	}
	solverRunsBefore := metricValue(t, ts.URL, "solver_runs_total")

	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	var status string
	go func() {
		defer wg.Done()
		resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Base: base.Key, Delta: testDelta()})
		status = resp.Header.Get("X-Linksynth-Incr")
		got = readBody(t, resp)
	}()

	// Wait until the request has entered the delta handler (the counter
	// bumps just before it reaches the flight), then give it a beat to
	// park on the flight before settling.
	for i := 0; i < 500; i++ {
		if s.deltaRequests.Load() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(25 * time.Millisecond)

	// Settle the flight with a recognizable body: the follower must adopt
	// it without running the solver.
	fake := []byte(`{"coalesced":true}`)
	s.settle(dk, f, fake, nil)
	wg.Wait()
	if string(got) != string(fake) {
		t.Errorf("follower body = %s, want the leader's settled body", got)
	}
	if status != "coalesced" {
		t.Errorf("follower X-Linksynth-Incr = %q, want coalesced", status)
	}
	if runs := metricValue(t, ts.URL, "solver_runs_total"); runs != solverRunsBefore {
		t.Errorf("follower ran the solver (%d -> %d runs)", solverRunsBefore, runs)
	}
}

// TestClusterDeltaRoutesToBaseOwner: a delta submitted to a non-owner node
// must be forwarded to the owner of the *base* fingerprint — where the
// warm session lives — and answered there.
func TestClusterDeltaRoutesToBaseOwner(t *testing.T) {
	nodes := newTestCluster(t, 2)
	urls := []string{nodes[0].url, nodes[1].url}
	opts := &OptionsJSON{Seed: 1}

	// An instance owned by node 0; solve it via node 1 so the forward path
	// places the solve (and the warm session) on the owner.
	inst := instanceOwnedBy(t, urls, nodes[0].url, opts, 0)
	resp := postJSON(t, nodes[1].url+"/v1/solve", SolveRequest{InstanceJSON: inst, Options: opts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base solve status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get("X-Linksynth-Node"); got != nodes[0].url {
		t.Fatalf("base solve served by %s, want owner %s", got, nodes[0].url)
	}
	var base SolveResponse
	if err := json.Unmarshal(readBody(t, resp), &base); err != nil {
		t.Fatal(err)
	}

	// Delta via the non-owner: forwarded to the base's owner.
	resp = postJSON(t, nodes[1].url+"/v1/solve", SolveRequest{Base: base.Key, Delta: testDelta()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get("X-Linksynth-Node"); got != nodes[0].url {
		t.Errorf("delta served by %s, want base owner %s", got, nodes[0].url)
	}
	var warm SolveResponse
	if err := json.Unmarshal(readBody(t, resp), &warm); err != nil {
		t.Fatal(err)
	}

	// The owner, not the entry node, did the incremental work.
	if got := metricValue(t, nodes[0].url, "incr_delta_requests_total"); got != 1 {
		t.Errorf("owner incr_delta_requests_total = %d, want 1", got)
	}
	if got := metricValue(t, nodes[1].url, "cluster_forwarded_total"); got < 2 {
		t.Errorf("non-owner cluster_forwarded_total = %d, want >= 2 (base + delta)", got)
	}
	if got := metricValue(t, nodes[1].url, "incr_sessions"); got != 0 {
		t.Errorf("non-owner retained %d sessions, want 0", got)
	}

	// And the answer matches a cold solve of the patched instance.
	_, ts := newTestServer(t, Config{Workers: 2})
	resp = postJSON(t, ts.URL+"/v1/solve", SolveRequest{InstanceJSON: patchedInstance(inst), Options: opts})
	var cold SolveResponse
	if err := json.Unmarshal(readBody(t, resp), &cold); err != nil {
		t.Fatal(err)
	}
	if warm.Key != cold.Key {
		t.Errorf("forwarded delta key %s != cold key %s", warm.Key, cold.Key)
	}
	if !reflect.DeepEqual(warm.Result.R1Hat, cold.Result.R1Hat) ||
		!reflect.DeepEqual(warm.Result.R2Hat, cold.Result.R2Hat) ||
		!reflect.DeepEqual(warm.Result.VJoin, cold.Result.VJoin) {
		t.Errorf("forwarded delta result differs from cold solve")
	}
}
