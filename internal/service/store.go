package service

import (
	"context"
	"encoding/hex"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/store"
)

// This file is the serving layer's durable-store integration: persisting
// parked sessions off the request path, restoring them after a restart so
// previously warm {base, delta} traffic is served with zero cold solves,
// and the /v1/store/{fingerprint} handoff endpoint peers pull warm state
// through when ring ownership moves.

// persistReq asks the persister goroutine to write one session record. The
// input is the pristine request instance (the session holds its own
// clones); the session pointer is read under its lock at persist time to
// capture the structural plan the solve resolved.
type persistReq struct {
	key cache32
	in  core.Input
	opt core.Options
	ss  *svcSession
}

type cache32 = [32]byte

// enqueuePersist hands a just-solved base to the persister without blocking
// the request path; a full queue drops the persist (counted) rather than
// stalling a response. The s.mu guard orders enqueues before Close's
// channel close.
func (s *Server) enqueuePersist(req persistReq) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.persistQ <- req:
	default:
		s.persistErrors.Add(1)
	}
}

// persistLoop drains persist requests until Close closes the queue; Close
// then waits for persistDone, so every accepted persist is flushed to disk
// before shutdown returns — the graceful-shutdown flush.
func (s *Server) persistLoop() {
	defer close(s.persistDone)
	for req := range s.persistQ {
		s.persistSession(req)
	}
}

func (s *Server) persistSession(req persistReq) {
	r1fp, err := s.store.PutRelation(req.in.R1)
	if err != nil {
		s.persistErrors.Add(1)
		return
	}
	r2fp, err := s.store.PutRelation(req.in.R2)
	if err != nil {
		s.persistErrors.Add(1)
		return
	}
	req.ss.mu.Lock()
	pl := req.ss.sess.Plan()
	sfp := req.ss.sess.StructuralFingerprint()
	req.ss.mu.Unlock()
	opt := req.opt
	opt.Workers = 0 // parallelism is per-process policy, not instance state
	rec := &store.SessionRecord{
		BaseFP: req.key, SFP: sfp, R1FP: r1fp, R2FP: r2fp,
		K1: req.in.K1, K2: req.in.K2, FK: req.in.FK,
		Opt: opt, CCs: req.in.CCs, DCs: req.in.DCs, Plan: pl,
	}
	if err := s.store.PutSession(rec); err != nil {
		s.persistErrors.Add(1)
		return
	}
	s.sessionsPersisted.Add(1)
	// The durable artifacts exist now; push them to the base's
	// ring-successors so a successor can restore this session warm after
	// the owner dies (the cache body was already enqueued by the solve).
	s.enqueueReplicate(replReq{key: req.key, files: []cache32{r1fp, r2fp, req.key}})
}

// reviveSession recovers a warm session for base from outside process
// memory: the local durable store first, then — in a cluster — a warm
// handoff fetch from a peer. Returns nil when no recoverable state exists;
// the caller falls back to the no-session 404. The whole recovery is timed
// onto the Restore histogram and the request's trace, and a store file
// quarantined during the attempt marks the trace failed so the flight
// recorder snapshots the evidence.
func (s *Server) reviveSession(ctx context.Context, base cache32) *svcSession {
	if s.store == nil {
		return nil
	}
	tr := obsv.FromContext(ctx)
	start := time.Now()
	corruptBefore := s.store.Stats().CorruptFiles
	ss := s.restoreSession(base)
	if ss != nil {
		tr.Event("store: session restored from local store")
	} else if s.clu != nil && s.fetchSessionFromPeers(ctx, base) {
		if ss = s.restoreSession(base); ss != nil {
			tr.Event("store: session restored via peer handoff")
		}
	}
	if ss != nil {
		dur := time.Since(start)
		tr.Span("restore", start, dur)
		s.obs.Restore.Observe(dur)
	} else if s.store.Stats().CorruptFiles > corruptBefore {
		tr.SetError("store: file quarantined during session restore")
	}
	return ss
}

// restoreSession rebuilds a warm session from the durable store. The
// reconstructed instance is re-fingerprinted and must equal the record's
// base fingerprint — a mismatch (however it arose) means the state cannot
// be trusted and the restore is refused; the client re-submits the full
// instance and the node re-solves rather than ever serving wrong bytes.
func (s *Server) restoreSession(base cache32) *svcSession {
	rec, err := s.store.LoadSession(base)
	if err != nil {
		return nil // missing, or corrupt (quarantined and counted by the store)
	}
	r1, err := s.store.LoadRelation(rec.R1FP)
	if err != nil {
		s.restoreFails.Add(1)
		return nil
	}
	r2, err := s.store.LoadRelation(rec.R2FP)
	if err != nil {
		s.restoreFails.Add(1)
		return nil
	}
	in := core.Input{R1: r1, R2: r2, K1: rec.K1, K2: rec.K2, FK: rec.FK, CCs: rec.CCs, DCs: rec.DCs}
	fp, err := core.Fingerprint(in, rec.Opt)
	if err != nil || fp != base {
		s.restoreFails.Add(1)
		return nil
	}
	if rec.Plan != nil {
		// The restored plan makes the session's first real solve classify
		// warm (plan reuse) instead of cold.
		s.engine.AdoptPlan(rec.Plan)
	}
	sess, err := s.engine.OpenKeyed(in, rec.Opt, s.pool, base)
	if err != nil {
		s.restoreFails.Add(1)
		return nil
	}
	ss := &svcSession{sess: sess}
	s.sessions.Put(base, ss)
	s.sessionsRestored.Add(1)
	return ss
}

// fetchSessionFromPeers pulls the session record for base — and any
// snapshot it references that is not already local — from the first up
// peer that has them. Every fetched file is verified against its claimed
// fingerprint by Ingest before it is published locally.
func (s *Server) fetchSessionFromPeers(ctx context.Context, base cache32) bool {
	baseHex := hex.EncodeToString(base[:])
	for _, peer := range s.clu.UpNodes() {
		if peer == s.clu.Self() {
			continue
		}
		data, err := s.clu.FetchStore(ctx, peer, baseHex)
		if err != nil {
			continue
		}
		if _, err := s.store.Ingest(base, data); err != nil {
			continue
		}
		rec, err := s.store.LoadSession(base)
		if err != nil {
			continue
		}
		complete := true
		for _, fp := range []cache32{rec.R1FP, rec.R2FP} {
			if _, _, err := s.store.ReadFile(fp); err == nil {
				continue // snapshot already local (content-addressed dedup)
			}
			snap, ferr := s.clu.FetchStore(ctx, peer, hex.EncodeToString(fp[:]))
			if ferr != nil {
				complete = false
				break
			}
			if _, ierr := s.store.Ingest(fp, snap); ierr != nil {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		s.handoffFetches.Add(1)
		return true
	}
	return false
}

// handleStoreGet serves raw durable-store files to peers for warm handoff.
// The store validates framing (and, for snapshots, the content hash) before
// any byte leaves the node.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusNotFound, "no data directory configured")
		return
	}
	fpHex := strings.TrimPrefix(r.URL.Path, "/v1/store/")
	raw, err := hex.DecodeString(fpHex)
	if err != nil || len(raw) != 32 {
		writeError(w, http.StatusBadRequest, "store path %q is not a 64-hex-digit fingerprint", fpHex)
		return
	}
	var fp cache32
	copy(fp[:], raw)
	data, kind, err := s.store.ReadFile(fp)
	if err != nil {
		writeError(w, http.StatusNotFound, "no store file for %s", fpHex)
		return
	}
	s.handoffServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Linksynth-Store-Kind", kind.String())
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}
