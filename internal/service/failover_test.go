package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/store"
)

// This file is the elasticity acceptance suite: K-successor replication,
// warm failover when the owner dies mid-traffic, join-without-restart,
// session migration on membership change, and the hardened forward chain
// (503 when every candidate is gone, never a silent local cold solve).

// newElasticShell stands up a node's HTTP shell so its URL exists before
// any cluster view references it; startElastic wires the Server in. Split
// so join tests can start nodes with differing seed lists.
func newElasticShell(t *testing.T) *clusterNode {
	t.Helper()
	sw := &swapHandler{}
	ts := httptest.NewServer(sw)
	t.Cleanup(ts.Close)
	return &clusterNode{ts: ts, swap: sw, url: ts.URL}
}

func startElastic(t *testing.T, nd *clusterNode, peers []string, replicas int, withStore bool) {
	t.Helper()
	var st *store.Store
	if withStore {
		var err error
		if st, err = store.Open(t.TempDir()); err != nil {
			t.Fatal(err)
		}
	}
	c, err := cache.Open("", 64)
	if err != nil {
		t.Fatal(err)
	}
	clu, err := cluster.New(cluster.Config{
		Self:         nd.url,
		Peers:        peers,
		PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Cache: c, Workers: 2, Cluster: clu, Replicas: replicas, Store: st})
	t.Cleanup(s.Close)
	nd.srv, nd.clu = s, clu
	nd.swap.set(s)
}

// newElasticCluster is newTestCluster plus replication and (optionally) a
// per-node durable store — the full linksynthd -replicas/-data-dir shape.
func newElasticCluster(t *testing.T, n, replicas int, withStore bool) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	urls := make([]string, n)
	for i := range nodes {
		nodes[i] = newElasticShell(t)
		urls[i] = nodes[i].url
	}
	for _, nd := range nodes {
		startElastic(t, nd, urls, replicas, withStore)
	}
	return nodes
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// instanceWhere mints test instances (bumping from start) until one's
// fingerprint satisfies the predicate — the generalization of
// instanceOwnedBy for tests that constrain the whole rank order.
func instanceWhere(t *testing.T, opt *OptionsJSON, start int64, pred func(cache.Key) bool) (InstanceJSON, cache.Key) {
	t.Helper()
	for b := start; b < start+2048; b++ {
		inst := testInstance(b)
		if k := keyOf(t, inst, opt); pred(k) {
			return inst, k
		}
	}
	t.Fatal("no instance satisfying the predicate in 2048 tries")
	return InstanceJSON{}, cache.Key{}
}

// warmDelta edits a cell without touching constraint targets, so the
// patched instance keeps the base's structural fingerprint — a session
// restored from replicated artifacts (which carries the plan, not live
// solver state) re-solves it warm, never cold.
func warmDelta() *DeltaJSON {
	return &DeltaJSON{R1Edits: []CellEditJSON{{Row: 1, Col: "Age", Val: 33}}}
}

func nodeByURL(t *testing.T, nodes []*clusterNode, url string) *clusterNode {
	t.Helper()
	for _, nd := range nodes {
		if nd.url == url {
			return nd
		}
	}
	t.Fatalf("no node with url %s", url)
	return nil
}

// The tentpole acceptance check: with -replicas 2, killing a key's owner
// mid-traffic leaves its successors answering byte-identically from the
// replicated cache entry — zero solver runs on any survivor, and the
// failover is visible in the replica/failover counters.
func TestClusterWarmFailoverServesReplicatedKey(t *testing.T) {
	nodes := newElasticCluster(t, 3, 2, false)
	opt := &OptionsJSON{Seed: 1}
	all := nodes[0].clu.Nodes()

	inst := instanceOwnedBy(t, all, cluster.Owner(keyOf(t, testInstance(10000), opt), all), opt, 10000)
	key := keyOf(t, inst, opt)
	owner := nodeByURL(t, nodes, cluster.Owner(key, all))

	resp := postJSON(t, owner.url+"/v1/solve", SolveRequest{InstanceJSON: inst, Options: opt})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner solve status %d: %s", resp.StatusCode, body)
	}

	// Replication is asynchronous: wait until both ring-successors hold
	// the entry (3 nodes, K=2 — every non-owner is a successor).
	var survivors []*clusterNode
	for _, nd := range nodes {
		if nd != owner {
			survivors = append(survivors, nd)
		}
	}
	for _, sv := range survivors {
		sv := sv
		waitFor(t, "replica push to "+sv.url, func() bool {
			_, ok := sv.srv.cache.Get(key)
			return ok
		})
	}

	owner.ts.Close() // the owner dies mid-traffic
	for _, sv := range survivors {
		sv.clu.ProbeNow(context.Background()) // observe the death
	}

	for _, sv := range survivors {
		resp := postJSON(t, sv.url+"/v1/solve", SolveRequest{InstanceJSON: inst, Options: opt})
		got := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("failover solve on %s: status %d: %s", sv.url, resp.StatusCode, got)
		}
		if !bytes.Equal(got, body) {
			t.Errorf("failover body from %s differs from the owner's original bytes", sv.url)
		}
		if h := resp.Header.Get("X-Linksynth-Cache"); h != "hit" {
			t.Errorf("failover on %s: cache header %q, want hit", sv.url, h)
		}
		if h := resp.Header.Get("X-Linksynth-Node"); h != sv.url {
			t.Errorf("failover served by %q, want the surviving replica %q itself", h, sv.url)
		}
		if runs := metricValue(t, sv.url, "solver_runs_total"); runs != 0 {
			t.Errorf("survivor %s ran the solver %d times for a replicated key, want 0", sv.url, runs)
		}
		if served := metricValue(t, sv.url, "cluster_replica_served_total"); served < 1 {
			t.Errorf("survivor %s replica_served = %d, want >= 1", sv.url, served)
		}
		if fo := metricValue(t, sv.url, "cluster_failovers_total"); fo < 1 {
			t.Errorf("survivor %s failovers = %d, want >= 1", sv.url, fo)
		}
	}
}

// Delta traffic survives owner death warm: the base's durable session
// artifacts were replicated to the successors, so the new owner restores
// the session from its *local* store — zero cold solves, zero peer pulls —
// and answers the same delta byte-identically.
func TestClusterDeltaWarmFailoverFromReplicatedArtifacts(t *testing.T) {
	nodes := newElasticCluster(t, 3, 2, true)
	opt := &OptionsJSON{Seed: 1}
	all := nodes[0].clu.Nodes()

	inst := instanceOwnedBy(t, all, cluster.Owner(keyOf(t, testInstance(12000), opt), all), opt, 12000)
	base := keyOf(t, inst, opt)
	baseHex := hex.EncodeToString(base[:])
	owner := nodeByURL(t, nodes, cluster.Owner(base, all))

	resp := postJSON(t, owner.url+"/v1/solve", SolveRequest{InstanceJSON: inst, Options: opt})
	if b := readBody(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("base solve status %d: %s", resp.StatusCode, b)
	}
	resp = postJSON(t, owner.url+"/v1/solve", SolveRequest{Base: baseHex, Delta: warmDelta()})
	deltaBody := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta on owner status %d: %s", resp.StatusCode, deltaBody)
	}

	var survivors []*clusterNode
	for _, nd := range nodes {
		if nd != owner {
			survivors = append(survivors, nd)
		}
	}
	// Wait until every successor can restore the session entirely from its
	// own store: session record plus both snapshots it references.
	for _, sv := range survivors {
		sv := sv
		waitFor(t, "session artifacts replicated to "+sv.url, func() bool {
			rec, err := sv.srv.store.LoadSession(base)
			if err != nil {
				return false
			}
			for _, fp := range []cache32{rec.R1FP, rec.R2FP} {
				if _, _, err := sv.srv.store.ReadFile(fp); err != nil {
					return false
				}
			}
			return true
		})
	}

	owner.ts.Close()
	for _, sv := range survivors {
		sv.clu.ProbeNow(context.Background())
	}

	survivorURLs := []string{survivors[0].url, survivors[1].url}
	next := nodeByURL(t, nodes, cluster.Owner(base, survivorURLs))
	resp = postJSON(t, next.url+"/v1/solve", SolveRequest{Base: baseHex, Delta: warmDelta()})
	got := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta after owner death: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, deltaBody) {
		t.Error("failover delta body differs from the owner's original bytes")
	}
	if n := metricValue(t, next.url, "store_sessions_restored_total"); n != 1 {
		t.Errorf("successor sessions_restored = %d, want 1 (restored from replicated artifacts)", n)
	}
	for _, sv := range survivors {
		if n := metricValue(t, sv.url, "incr_cold_solves_total"); n != 0 {
			t.Errorf("survivor %s cold solves = %d, want 0", sv.url, n)
		}
		if n := metricValue(t, sv.url, "store_handoff_fetches_total"); n != 0 {
			t.Errorf("survivor %s handoff fetches = %d, want 0 (artifacts were already local)", sv.url, n)
		}
	}
}

// Join without restart: a node with an empty seed list announces itself to
// one member, the member set gossips out on the probe cycle, and the
// joiner begins owning and serving its key range — no process restarted,
// no -peers flag edited.
func TestClusterJoinWithoutRestart(t *testing.T) {
	a, b, c := newElasticShell(t), newElasticShell(t), newElasticShell(t)
	startElastic(t, a, []string{a.url, b.url}, 0, false)
	startElastic(t, b, []string{a.url, b.url}, 0, false)
	startElastic(t, c, nil, 0, false)

	if err := c.clu.JoinVia(context.Background(), a.url); err != nil {
		t.Fatal(err)
	}
	// B hears about C on its next probe of A — the gossip hop.
	b.clu.ProbeNow(context.Background())
	for _, nd := range []*clusterNode{a, b, c} {
		if got := metricValue(t, nd.url, "cluster_members"); got != 3 {
			t.Fatalf("node %s cluster_members = %d, want 3", nd.url, got)
		}
	}

	// A key the three-node ring assigns to the joiner, posted to an old
	// member: it must be forwarded to — and solved by — the new node.
	opt := &OptionsJSON{Seed: 1}
	all := []string{a.url, b.url, c.url}
	inst := instanceOwnedBy(t, all, c.url, opt, 13000)
	resp := postJSON(t, a.url+"/v1/solve", SolveRequest{InstanceJSON: inst, Options: opt})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve via old member: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Linksynth-Node"); got != c.url {
		t.Errorf("served by %q, want the joiner %q", got, c.url)
	}
	if runs := metricValue(t, c.url, "solver_runs_total"); runs != 1 {
		t.Errorf("joiner solver runs = %d, want 1", runs)
	}
	if got := metricValue(t, c.url, "cluster_membership_epoch"); got < 1 {
		t.Errorf("joiner membership epoch = %d, want >= 1", got)
	}
}

// Membership change moves warm state, not just ownership: when a joiner
// takes over a parked session's base, the old owner streams the session
// (cache body plus durable artifacts) to it, and the next delta lands on
// a node that is already warm.
func TestClusterMembershipChangeMigratesSessions(t *testing.T) {
	a, b, c := newElasticShell(t), newElasticShell(t), newElasticShell(t)
	startElastic(t, a, []string{a.url, b.url}, 0, true)
	startElastic(t, b, []string{a.url, b.url}, 0, true)
	startElastic(t, c, nil, 0, true)

	// A base A owns under the two-node ring that moves to C when C joins.
	opt := &OptionsJSON{Seed: 1}
	inst, base := instanceWhere(t, opt, 14000, func(k cache.Key) bool {
		return cluster.Owner(k, []string{a.url, b.url}) == a.url &&
			cluster.Owner(k, []string{a.url, b.url, c.url}) == c.url
	})
	baseHex := hex.EncodeToString(base[:])
	resp := postJSON(t, a.url+"/v1/solve", SolveRequest{InstanceJSON: inst, Options: opt})
	if body := readBody(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("base solve status %d: %s", resp.StatusCode, body)
	}
	waitFor(t, "session persisted on the old owner", func() bool {
		return metricValue(t, a.url, "store_sessions_persisted_total") >= 1
	})

	if err := c.clu.JoinVia(context.Background(), a.url); err != nil {
		t.Fatal(err)
	}
	// A's membership watcher reacts to the join and streams the session to
	// its new owner; wait until C can restore it without asking anyone.
	waitFor(t, "session migrated to the joiner", func() bool {
		rec, err := c.srv.store.LoadSession(base)
		if err != nil {
			return false
		}
		for _, fp := range []cache32{rec.R1FP, rec.R2FP} {
			if _, _, err := c.srv.store.ReadFile(fp); err != nil {
				return false
			}
		}
		_, ok := c.srv.cache.Get(base)
		return ok
	})
	if got := metricValue(t, a.url, "cluster_sessions_migrated_total"); got < 1 {
		t.Errorf("old owner sessions_migrated = %d, want >= 1", got)
	}

	resp = postJSON(t, c.url+"/v1/solve", SolveRequest{Base: baseHex, Delta: warmDelta()})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta on the new owner: status %d: %s", resp.StatusCode, body)
	}
	if got := metricValue(t, c.url, "store_sessions_restored_total"); got != 1 {
		t.Errorf("new owner sessions_restored = %d, want 1", got)
	}
	if got := metricValue(t, c.url, "incr_cold_solves_total"); got != 0 {
		t.Errorf("new owner cold solves = %d, want 0 — the migrated state was not warm", got)
	}
	if got := metricValue(t, c.url, "store_handoff_fetches_total"); got != 0 {
		t.Errorf("new owner handoff fetches = %d, want 0 (state was pushed, not pulled)", got)
	}
	if got := metricValue(t, c.url, "cluster_replica_ingested_total"); got < 1 {
		t.Errorf("new owner replica_ingested = %d, want >= 1", got)
	}
}

// When every node in a key's successor chain fails with 5xx, the entry
// node answers 503 + Retry-After — it does not mask a dead cluster as
// capacity by silently cold-solving locally. (A *transport* failure still
// falls back locally once the rank reshapes; that path is pinned by
// TestClusterSolveFallsBackWhenOwnerDown.)
func TestClusterForwardExhaustedReturns503(t *testing.T) {
	nodes := newTestCluster(t, 3)
	opt := &OptionsJSON{Seed: 1}
	a := nodes[0]
	all := a.clu.Nodes()

	// A key ranking self last, so both forward attempts go to peers.
	inst, _ := instanceWhere(t, opt, 15000, func(k cache.Key) bool {
		return cluster.Rank(k, all)[2] == a.url
	})
	boom := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "node is sick", http.StatusInternalServerError)
	})
	nodes[1].swap.set(boom)
	nodes[2].swap.set(boom)

	resp := postJSON(t, a.url+"/v1/solve", SolveRequest{InstanceJSON: inst, Options: opt})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if got := metricValue(t, a.url, "cluster_forward_exhausted_total"); got != 1 {
		t.Errorf("forward_exhausted = %d, want 1", got)
	}
	if got := metricValue(t, a.url, "cluster_forward_fallbacks_total"); got != 2 {
		t.Errorf("forward_fallbacks = %d, want 2 (one per failed attempt)", got)
	}
	if runs := metricValue(t, a.url, "solver_runs_total"); runs != 0 {
		t.Errorf("entry node ran the solver %d times, want 0 — 5xx peers are up, not absent", runs)
	}
	// 5xx is an application failure from a live process: liveness is
	// untouched, so recovery needs no probe cycle.
	if up := metricValue(t, a.url, "cluster_peers_up"); up != 2 {
		t.Errorf("peers_up = %d, want 2", up)
	}
}

// Replica ingestion is verify-or-quarantine: only the canonical encoding
// of a solve response whose embedded key matches the path is accepted, so
// a corrupt or misdirected push can never be served. Runs with Replicas=0
// on the receiver — any clustered node must accept pushes even if it does
// not originate them.
func TestReplicaPushVerifiesBeforeServing(t *testing.T) {
	nodes := newElasticCluster(t, 2, 0, true)
	opt := &OptionsJSON{Seed: 1}
	all := nodes[0].clu.Nodes()

	inst := instanceOwnedBy(t, all, nodes[0].url, opt, 16000)
	key := keyOf(t, inst, opt)
	keyHex := hex.EncodeToString(key[:])
	ownerNode, other := nodes[0], nodes[1]

	resp := postJSON(t, ownerNode.url+"/v1/solve", SolveRequest{InstanceJSON: inst, Options: opt})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, body)
	}

	push := func(path string, b []byte) int {
		t.Helper()
		r, err := http.Post(other.url+path, "application/octet-stream", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, r)
		return r.StatusCode
	}
	if got := push("/v1/replica/zz", body); got != http.StatusBadRequest {
		t.Errorf("bad-hex path accepted: status %d", got)
	}
	if got := push("/v1/replica/"+keyHex, append(append([]byte{}, body...), ' ')); got != http.StatusBadRequest {
		t.Errorf("non-canonical body accepted: status %d", got)
	}
	wrongFP := make([]byte, 64)
	for i := range wrongFP {
		wrongFP[i] = 'a'
	}
	if got := push("/v1/replica/"+string(wrongFP), body); got != http.StatusBadRequest {
		t.Errorf("misdirected push (embedded key mismatch) accepted: status %d", got)
	}
	if _, ok := other.srv.cache.Get(key); ok {
		t.Fatal("a rejected push landed in the cache")
	}
	if got := push("/v1/store/"+keyHex, []byte("garbage")); got != http.StatusBadRequest {
		t.Errorf("unverifiable store push accepted: status %d", got)
	}
	if got := metricValue(t, other.url, "cluster_replica_failed_total"); got != 3 {
		t.Errorf("replica_failed = %d, want 3 (two bad bodies, one bad store file)", got)
	}

	// The genuine push is accepted — and serves a warm failover even on a
	// node that never replicates outbound.
	if got := push("/v1/replica/"+keyHex, body); got != http.StatusNoContent {
		t.Fatalf("genuine push rejected: status %d", got)
	}
	if got := metricValue(t, other.url, "cluster_replica_ingested_total"); got != 1 {
		t.Errorf("replica_ingested = %d, want 1", got)
	}
	other.clu.MarkDown(ownerNode.url, context.DeadlineExceeded)
	resp = postJSON(t, other.url+"/v1/solve", SolveRequest{InstanceJSON: inst, Options: opt})
	got := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, body) {
		t.Fatalf("replica serve after owner down: status %d, bytes-equal %v", resp.StatusCode, bytes.Equal(got, body))
	}
	if n := metricValue(t, other.url, "cluster_replica_served_total"); n != 1 {
		t.Errorf("replica_served = %d, want 1", n)
	}
	if n := metricValue(t, other.url, "cluster_failovers_total"); n != 1 {
		t.Errorf("failovers = %d, want 1", n)
	}
	if n := metricValue(t, other.url, "solver_runs_total"); n != 0 {
		t.Errorf("receiving node ran the solver %d times, want 0", n)
	}
}
