package service

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
)

// Job lifecycle: queued -> running -> done | canceled. A job whose request
// fails validation is never created (the POST gets a 400 instead), and
// per-instance solver failures are reported inside a done job's results
// rather than failing the whole job.
const (
	jobQueued   = "queued"
	jobRunning  = "running"
	jobDone     = "done"
	jobCanceled = "canceled"
)

type jobInstance struct {
	in  core.Input
	key cache.Key
}

type job struct {
	id        string
	status    string // guarded by Server.mu
	instances []jobInstance
	opt       core.Options
	results   []json.RawMessage // per instance: SolveResponse or {"error": ...}
	ctx       context.Context
	cancel    context.CancelFunc
}

// jobStatusJSON is the wire form of GET /v1/jobs/{id}.
type jobStatusJSON struct {
	ID        string            `json:"id"`
	Status    string            `json:"status"`
	Instances int               `json:"instances"`
	Results   []json.RawMessage `json:"results,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		writeRequestError(w, decodeErr(err))
		return
	}
	if len(req.Instances) == 0 {
		writeError(w, http.StatusBadRequest, "batch request has no instances")
		return
	}
	opt, err := req.Options.toOptions()
	if err != nil {
		writeRequestError(w, err)
		return
	}
	instances := make([]jobInstance, len(req.Instances))
	for i := range req.Instances {
		in, err := req.Instances[i].toInput()
		if err != nil {
			writeError(w, http.StatusBadRequest, "instance %d: %v", i, err)
			return
		}
		key, err := core.Fingerprint(in, opt)
		if err != nil {
			writeError(w, http.StatusBadRequest, "instance %d: fingerprint: %v", i, err)
			return
		}
		instances[i] = jobInstance{in: in, key: key}
	}

	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	s.jobSeq++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.jobSeq),
		status:    jobQueued,
		instances: instances,
		opt:       opt,
		ctx:       ctx,
		cancel:    cancel,
	}
	select {
	case s.jobQueue <- j:
		s.jobs[j.id] = j
	default:
		s.mu.Unlock()
		cancel()
		s.rejectedBusy.Add(1)
		writeError(w, http.StatusServiceUnavailable, "job queue full (depth %d)", s.queueDepth)
		return
	}
	s.mu.Unlock()
	s.jobsAccepted.Add(1)
	writeJSON(w, http.StatusAccepted, jobStatusJSON{ID: j.id, Status: jobQueued, Instances: len(instances)})
}

// jobLoop runs queued jobs one after another; each job's instances fan out
// over the shared solver pool, so a single job already saturates the
// configured parallelism and running jobs serially keeps total load bounded.
func (s *Server) jobLoop() {
	for {
		select {
		case <-s.shutdown:
			return
		case j := <-s.jobQueue:
			s.runJob(j)
		}
	}
}

func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.status != jobQueued { // canceled while queued
		s.mu.Unlock()
		return
	}
	j.status = jobRunning
	s.mu.Unlock()

	results := make([]json.RawMessage, len(j.instances))

	// Serve what the cache already has and dedupe the rest: identical
	// instances inside one batch solve once.
	keyIdx := make(map[cache.Key][]int) // distinct missing key -> instance indices
	var order []cache.Key
	for i, inst := range j.instances {
		if body, ok := s.cache.Get(inst.key); ok {
			results[i] = body
			continue
		}
		if _, seen := keyIdx[inst.key]; !seen {
			order = append(order, inst.key)
		}
		keyIdx[inst.key] = append(keyIdx[inst.key], i)
	}

	// Partition the distinct keys: keys another request is already solving
	// are followed through the same resolve() path a sync request uses
	// (inherits its coalescing and cancellation-retry semantics); the rest
	// are led by this job, registered in the inflight map so concurrent
	// sync requests coalesce onto the job's solve in turn.
	var lead, follow []cache.Key
	flights := make(map[cache.Key]*flight)
	for _, k := range order {
		f, isLead := s.tryLead(k)
		if isLead {
			flights[k] = f
			lead = append(lead, k)
		} else {
			follow = append(follow, k)
		}
	}

	// finish settles one led key everywhere: the shared flight (waking
	// followers), the inflight map, and this job's result slots.
	finish := func(k cache.Key, body []byte, err error) {
		s.settle(k, flights[k], body, err)
		for _, i := range keyIdx[k] {
			if err != nil {
				results[i] = errResult("%v", err)
			} else {
				results[i] = body
			}
		}
	}

	if len(lead) > 0 {
		if err := j.ctx.Err(); err != nil {
			for _, k := range lead {
				finish(k, nil, err)
			}
		} else if err := s.acquire(j.ctx); err != nil {
			for _, k := range lead {
				finish(k, nil, err)
			}
		} else {
			inputs := make([]core.Input, len(lead))
			for b, k := range lead {
				inputs[b] = j.instances[keyIdx[k][0]].in
			}
			s.solveRuns.Add(uint64(len(lead)))
			rs, err := core.SolveBatchOn(j.ctx, inputs, j.opt, s.pool)
			s.release()
			msgs := batchErrMessages(err)
			for b, k := range lead {
				if rs[b] == nil {
					s.solveErrors.Add(1)
					// Preserve the typed cancellation chain: sync followers
					// of this flight decide retry-vs-fail with errors.Is.
					var ierr error
					if ctxErr := j.ctx.Err(); ctxErr != nil {
						ierr = fmt.Errorf("batch instance %d: %w", b, ctxErr)
					} else if m, ok := msgs[b]; ok {
						ierr = errors.New(m)
					} else {
						ierr = errors.New("solve failed")
					}
					finish(k, nil, ierr)
					continue
				}
				i0 := keyIdx[k][0]
				body, encErr := encodeSolveBody(hex.EncodeToString(k[:]), j.instances[i0].in, rs[b])
				if encErr != nil {
					finish(k, nil, fmt.Errorf("encode result: %w", encErr))
					continue
				}
				s.storeResult(k, body)
				finish(k, body, nil)
			}
		}
	}

	for _, k := range follow {
		body, _, err := s.resolve(j.ctx, k, j.instances[keyIdx[k][0]].in, j.opt)
		for _, i := range keyIdx[k] {
			if err != nil {
				results[i] = errResult("%v", err)
			} else {
				results[i] = body
			}
		}
	}

	s.mu.Lock()
	j.results = results
	if j.ctx.Err() != nil {
		j.status = jobCanceled
		s.jobsCanceled.Add(1)
	} else {
		j.status = jobDone
		s.jobsDone.Add(1)
	}
	s.retireLocked(j)
	s.mu.Unlock()
	j.cancel() // release the context's resources once the job settles
}

// batchErrMessages recovers per-instance messages from SolveBatch's joined
// error: each line is annotated with its index in the batch.
func batchErrMessages(err error) map[int]string {
	if err == nil {
		return nil
	}
	out := make(map[int]string)
	for _, line := range strings.Split(err.Error(), "\n") {
		var idx int
		if n, _ := fmt.Sscanf(line, "core: batch instance %d:", &idx); n == 1 {
			out[idx] = line
		}
	}
	return out
}

func errResult(format string, args ...any) json.RawMessage {
	b, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	return b
}

func (s *Server) handleJobGet(w http.ResponseWriter, id string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	resp := jobStatusJSON{ID: j.id, Status: j.status, Instances: len(j.instances)}
	if j.status == jobDone || j.status == jobCanceled {
		resp.Results = j.results
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, id string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	switch j.status {
	case jobDone, jobCanceled:
		status := j.status
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "job %q already %s", id, status)
		return
	case jobQueued:
		j.status = jobCanceled
		s.jobsCanceled.Add(1)
		s.retireLocked(j)
	}
	j.cancel() // running jobs stop at the next instance boundary
	status := j.status
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, jobStatusJSON{ID: j.id, Status: status, Instances: len(j.instances)})
}
