package service

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obsv"
)

// Job lifecycle: queued -> running -> done | canceled. A job whose request
// fails validation is never created (the POST gets a 400 instead), and
// per-instance solver failures are reported inside a done job's results
// rather than failing the whole job.
const (
	jobQueued   = "queued"
	jobRunning  = "running"
	jobDone     = "done"
	jobCanceled = "canceled"
)

type jobInstance struct {
	in  core.Input
	key cache.Key
}

type job struct {
	id        string
	seq       uint64 // creation order, for stable /v1/jobs listings
	status    string // guarded by Server.mu
	instances []jobInstance
	opt       core.Options
	results   []json.RawMessage // per instance: SolveResponse or {"error": ...}
	ctx       context.Context
	cancel    context.CancelFunc
}

// jobStatusJSON is the wire form of GET /v1/jobs/{id}.
type jobStatusJSON struct {
	ID        string            `json:"id"`
	Status    string            `json:"status"`
	Instances int               `json:"instances"`
	Results   []json.RawMessage `json:"results,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		writeRequestError(w, decodeErr(err))
		return
	}
	if len(req.Instances) == 0 {
		writeError(w, http.StatusBadRequest, "batch request has no instances")
		return
	}
	opt, err := req.Options.toOptions()
	if err != nil {
		writeRequestError(w, err)
		return
	}
	instances := make([]jobInstance, len(req.Instances))
	for i := range req.Instances {
		in, err := req.Instances[i].toInput()
		if err != nil {
			writeError(w, http.StatusBadRequest, "instance %d: %v", i, err)
			return
		}
		key, err := core.Fingerprint(in, opt)
		if err != nil {
			writeError(w, http.StatusBadRequest, "instance %d: fingerprint: %v", i, err)
			return
		}
		instances[i] = jobInstance{in: in, key: key}
	}

	// In a cluster, a batch that is not already a forwarded sub-batch is
	// scattered: instances split by owning node, remote groups fan out as
	// hop-guarded sub-jobs, and this node gathers the results under the
	// parent job id. A batch whose instances all hash locally (and any
	// batch on a single-node server) takes the plain local path.
	var groups []cluster.Group
	if s.clu != nil && r.Header.Get(cluster.HopHeader) == "" {
		keys := make([][32]byte, len(instances))
		for i := range instances {
			keys[i] = instances[i].key
		}
		groups = s.clu.SplitByOwner(keys)
		if len(groups) == 1 && groups[0].Self {
			groups = nil
		}
	}

	// The job runs on its own trace (the POST's trace ends with the 202),
	// adopting the edge trace's id so the acceptance and the asynchronous
	// execution — including sub-batches scattered to peers, which propagate
	// the id further — group as one distributed trace. It is recorded when
	// the job finishes (finishJob).
	traceID := obsv.FromContext(r.Context()).ID()
	if traceID == "" {
		traceID = obsv.NewID()
	}
	jobTr := obsv.NewTrace(traceID, "batch-job", s.obs.Node)
	ctx, cancel := context.WithCancel(obsv.WithTrace(context.Background(), jobTr))
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	s.jobSeq++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.jobSeq),
		seq:       s.jobSeq,
		status:    jobQueued,
		instances: instances,
		opt:       opt,
		ctx:       ctx,
		cancel:    cancel,
	}
	if groups != nil {
		// Scatter-gather jobs coordinate in their own goroutine instead of
		// the serial job loop: a gatherer spends its time polling peers,
		// and parking it in the loop could deadlock two nodes whose parent
		// jobs each wait on a sub-job queued behind the other's parent.
		select {
		case s.gatherSem <- struct{}{}:
			s.jobs[j.id] = j
		default:
			s.mu.Unlock()
			cancel()
			s.rejectedBusy.Add(1)
			writeBusy(w, "job queue full (depth %d)", s.queueDepth)
			return
		}
		s.mu.Unlock()
		s.jobsAccepted.Add(1)
		s.scatterJobs.Add(1)
		go s.runGatherJob(j, &req, groups)
		writeJSON(w, http.StatusAccepted, jobStatusJSON{ID: j.id, Status: jobQueued, Instances: len(instances)})
		return
	}
	select {
	case s.jobQueue <- j:
		s.jobs[j.id] = j
	default:
		s.mu.Unlock()
		cancel()
		s.rejectedBusy.Add(1)
		writeBusy(w, "job queue full (depth %d)", s.queueDepth)
		return
	}
	s.mu.Unlock()
	s.jobsAccepted.Add(1)
	writeJSON(w, http.StatusAccepted, jobStatusJSON{ID: j.id, Status: jobQueued, Instances: len(instances)})
}

// jobLoop runs queued jobs one after another; each job's instances fan out
// over the shared solver pool, so a single job already saturates the
// configured parallelism and running jobs serially keeps total load bounded.
func (s *Server) jobLoop() {
	for {
		select {
		case <-s.shutdown:
			return
		case j := <-s.jobQueue:
			s.runJob(j)
		}
	}
}

func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.status != jobQueued { // canceled while queued
		s.mu.Unlock()
		return
	}
	j.status = jobRunning
	s.mu.Unlock()

	results := make([]json.RawMessage, len(j.instances))
	idxs := make([]int, len(j.instances))
	for i := range idxs {
		idxs[i] = i
	}
	s.solveInstances(j, idxs, results)
	s.finishJob(j, results)
}

// solveInstances solves the given subset of a job's instances, writing each
// result (or error) into its slot of results. Safe for concurrent calls on
// disjoint index sets — the gather path solves the local group while
// falling back on failed remote groups. Caller owns results slot writes.
func (s *Server) solveInstances(j *job, idxs []int, results []json.RawMessage) {
	// Serve what the cache already has and dedupe the rest: identical
	// instances inside one batch solve once.
	keyIdx := make(map[cache.Key][]int) // distinct missing key -> instance indices
	var order []cache.Key
	for _, i := range idxs {
		inst := j.instances[i]
		if body, ok := s.cache.Get(inst.key); ok {
			results[i] = body
			continue
		}
		if _, seen := keyIdx[inst.key]; !seen {
			order = append(order, inst.key)
		}
		keyIdx[inst.key] = append(keyIdx[inst.key], i)
	}

	// Partition the distinct keys: keys another request is already solving
	// are followed through the same resolve() path a sync request uses
	// (inherits its coalescing and cancellation-retry semantics); the rest
	// are led by this job, registered in the inflight map so concurrent
	// sync requests coalesce onto the job's solve in turn.
	var lead, follow []cache.Key
	flights := make(map[cache.Key]*flight)
	for _, k := range order {
		f, isLead := s.tryLead(k)
		if isLead {
			flights[k] = f
			lead = append(lead, k)
		} else {
			follow = append(follow, k)
		}
	}

	// finish settles one led key everywhere: the shared flight (waking
	// followers), the inflight map, and this job's result slots.
	finish := func(k cache.Key, body []byte, err error) {
		s.settle(k, flights[k], body, err)
		for _, i := range keyIdx[k] {
			if err != nil {
				results[i] = errResult("%v", err)
			} else {
				results[i] = body
			}
		}
	}

	if len(lead) > 0 {
		if err := j.ctx.Err(); err != nil {
			for _, k := range lead {
				finish(k, nil, err)
			}
		} else if err := s.acquire(j.ctx); err != nil {
			for _, k := range lead {
				finish(k, nil, err)
			}
		} else {
			inputs := make([]core.Input, len(lead))
			for b, k := range lead {
				inputs[b] = j.instances[keyIdx[k][0]].in
			}
			s.solveRuns.Add(uint64(len(lead)))
			rs, err := core.SolveBatchOn(j.ctx, inputs, j.opt, s.pool)
			s.release()
			msgs := batchErrMessages(err)
			for b, k := range lead {
				if rs[b] == nil {
					s.solveErrors.Add(1)
					// Preserve the typed cancellation chain: sync followers
					// of this flight decide retry-vs-fail with errors.Is.
					var ierr error
					if ctxErr := j.ctx.Err(); ctxErr != nil {
						ierr = fmt.Errorf("batch instance %d: %w", b, ctxErr)
					} else if m, ok := msgs[b]; ok {
						ierr = errors.New(m)
					} else {
						ierr = errors.New("solve failed")
					}
					finish(k, nil, ierr)
					continue
				}
				i0 := keyIdx[k][0]
				body, encErr := encodeSolveBody(hex.EncodeToString(k[:]), j.instances[i0].in, rs[b])
				if encErr != nil {
					finish(k, nil, fmt.Errorf("encode result: %w", encErr))
					continue
				}
				s.storeResult(k, body)
				finish(k, body, nil)
			}
		}
	}

	for _, k := range follow {
		body, _, err := s.resolve(j.ctx, k, j.instances[keyIdx[k][0]].in, j.opt)
		for _, i := range keyIdx[k] {
			if err != nil {
				results[i] = errResult("%v", err)
			} else {
				results[i] = body
			}
		}
	}
}

// finishJob publishes a job's results, retires it, and records its trace.
func (s *Server) finishJob(j *job, results []json.RawMessage) {
	s.mu.Lock()
	j.results = results
	if j.ctx.Err() != nil {
		j.status = jobCanceled
		s.jobsCanceled.Add(1)
	} else {
		j.status = jobDone
		s.jobsDone.Add(1)
	}
	s.retireLocked(j)
	status := j.status
	s.mu.Unlock()
	if tr := obsv.FromContext(j.ctx); tr != nil {
		tr.SetStatus(status + " " + j.id)
		s.obs.Recorder.Record(tr)
	}
	j.cancel() // release the context's resources once the job settles
}

// runGatherJob coordinates a scattered batch: every group proceeds
// concurrently — the local group solves here, each remote group rides a
// sub-job on its owning node — and the parent job finishes when all groups
// have results. A remote group whose owner fails (submit rejected, node
// died mid-job, short reply) degrades to local solving, so the batch
// completes with correct results as long as this node survives; results
// are content-addressed, so a re-solve is byte-identical to what the lost
// peer would have returned.
func (s *Server) runGatherJob(j *job, req *BatchRequest, groups []cluster.Group) {
	defer func() { <-s.gatherSem }()
	s.mu.Lock()
	if j.status != jobQueued { // canceled before coordination began
		s.mu.Unlock()
		return
	}
	j.status = jobRunning
	s.mu.Unlock()

	results := make([]json.RawMessage, len(j.instances))
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g cluster.Group) {
			defer wg.Done()
			if g.Self {
				s.solveInstances(j, g.Indices, results)
				return
			}
			done := obsv.FromContext(j.ctx).StartSpan("gather:" + g.Owner)
			err := s.gatherRemote(j, req, g, results)
			done()
			if err != nil {
				if j.ctx.Err() != nil {
					for _, i := range g.Indices {
						results[i] = errResult("%v", j.ctx.Err())
					}
					return
				}
				s.gatherFallbacks.Add(1)
				obsv.FromContext(j.ctx).Event("gather: owner " + g.Owner + " failed; solving group locally")
				s.solveInstances(j, g.Indices, results)
			}
		}(g)
	}
	wg.Wait()
	s.finishJob(j, results)
}

// gatherRemote runs one remote group end to end: re-marshal the group's
// instances as a sub-batch, submit it to the owner with the hop guard, poll
// the sub-job to completion, and place its results into the parent's slots.
func (s *Server) gatherRemote(j *job, req *BatchRequest, g cluster.Group, results []json.RawMessage) error {
	sub := BatchRequest{Instances: make([]InstanceJSON, len(g.Indices)), Options: req.Options}
	for bi, i := range g.Indices {
		sub.Instances[bi] = req.Instances[i]
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return fmt.Errorf("encode sub-batch: %w", err)
	}
	id, err := s.clu.SubmitBatch(j.ctx, g.Owner, body)
	if err != nil {
		return err
	}
	subResults, err := s.clu.WaitJob(j.ctx, g.Owner, id)
	if err != nil {
		s.clu.CancelJob(g.Owner, id) // best-effort: don't orphan the sub-job
		return err
	}
	if len(subResults) != len(g.Indices) {
		return fmt.Errorf("owner %s returned %d results for %d instances", g.Owner, len(subResults), len(g.Indices))
	}
	for bi, i := range g.Indices {
		results[i] = subResults[bi]
	}
	return nil
}

// batchErrMessages recovers per-instance messages from SolveBatch's joined
// error: each line is annotated with its index in the batch.
func batchErrMessages(err error) map[int]string {
	if err == nil {
		return nil
	}
	out := make(map[int]string)
	for _, line := range strings.Split(err.Error(), "\n") {
		var idx int
		if n, _ := fmt.Sscanf(line, "core: batch instance %d:", &idx); n == 1 {
			out[idx] = line
		}
	}
	return out
}

func errResult(format string, args ...any) json.RawMessage {
	b, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	return b
}

// handleJobList answers GET /v1/jobs: every job still in the registry
// (queued, running, and finished jobs inside the retention window), oldest
// first, as status summaries without result bodies — poll /v1/jobs/{id}
// for those.
func (s *Server) handleJobList(w http.ResponseWriter) {
	type row struct {
		seq uint64
		js  jobStatusJSON
	}
	s.mu.Lock()
	rows := make([]row, 0, len(s.jobs))
	for _, j := range s.jobs {
		rows = append(rows, row{j.seq, jobStatusJSON{ID: j.id, Status: j.status, Instances: len(j.instances)}})
	}
	s.mu.Unlock()
	sort.Slice(rows, func(i, k int) bool { return rows[i].seq < rows[k].seq })
	list := make([]jobStatusJSON, len(rows))
	for i, r := range rows {
		list[i] = r.js
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": list, "count": len(list)})
}

func (s *Server) handleJobGet(w http.ResponseWriter, id string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	resp := jobStatusJSON{ID: j.id, Status: j.status, Instances: len(j.instances)}
	if j.status == jobDone || j.status == jobCanceled {
		resp.Results = j.results
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, id string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	switch j.status {
	case jobDone, jobCanceled:
		status := j.status
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "job %q already %s", id, status)
		return
	case jobQueued:
		j.status = jobCanceled
		s.jobsCanceled.Add(1)
		s.retireLocked(j)
	}
	j.cancel() // running jobs stop at the next instance boundary
	status := j.status
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, jobStatusJSON{ID: j.id, Status: status, Instances: len(j.instances)})
}
