package service

import (
	"encoding/json"
	"net/http"

	"repro/internal/obsv"
)

// This file is the serving edge of solve EXPLAIN. A client appends
// ?explain=1 to POST /v1/solve (full or base+delta) and the response body
// gains a trailing "explain" member: the solver's measured cost report
// (when this request actually ran the solver) wrapped in the serving
// context — which node answered, the trace id to quote at /debug/trace,
// the cache disposition, and the node's cache/plan/session hit ratios.
//
// The cached response bytes are never touched: the explain member is
// spliced into a *copy* of the body at write time, after the cache and
// the fingerprint have both seen the canonical bytes. Responses with and
// without explain are therefore byte-identical up to the splice point,
// and the golden tests pin that the splice never leaks into fingerprints
// or cached bodies. In a cluster the ?explain=1 query is forwarded with
// the solve, so the owner — the node that solves — measures the report
// and the entry node relays it verbatim.

// explainJSON is the spliced "explain" member of a solve response.
type explainJSON struct {
	Node    string              `json:"node,omitempty"`
	TraceID string              `json:"trace_id,omitempty"`
	Cache   string              `json:"cache"`
	Solver  *obsv.ExplainReport `json:"solver,omitempty"`
	Service explainServiceJSON  `json:"service"`
}

// explainServiceJSON carries the answering node's warm-state ratios at
// the time of the solve: how often its byte cache, compiled-plan cache,
// and session store are hitting.
type explainServiceJSON struct {
	CacheHitRatio    float64 `json:"cache_hit_ratio"`
	PlanHitRatio     float64 `json:"plan_hit_ratio"`
	Sessions         int     `json:"sessions"`
	CoalescedTotal   uint64  `json:"coalesced_total"`
	SessionMissTotal uint64  `json:"session_misses_total"`
}

// wantExplain reports whether the request asked for a cost report.
func wantExplain(r *http.Request) bool {
	switch r.URL.Query().Get("explain") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// explainEnvelope assembles the explain member for a response served with
// the given cache disposition. The solver report comes off the trace —
// present when this request's solve ran locally, absent on pure cache
// hits and coalesced follows (the report describes a solver run; those
// paths had none).
func (s *Server) explainEnvelope(tr *obsv.Trace, status string) *explainJSON {
	cs := s.cache.Stats()
	es := s.engine.Stats()
	return &explainJSON{
		Node:    s.obs.Node,
		TraceID: tr.ID(),
		Cache:   status,
		Solver:  tr.Explain(),
		Service: explainServiceJSON{
			CacheHitRatio:    hitRatio(cs.Hits, cs.Misses),
			PlanHitRatio:     hitRatio(es.PlanHits, es.PlanMisses),
			Sessions:         s.sessions.Len(),
			CoalescedTotal:   s.coalesced.Load(),
			SessionMissTotal: s.sessionMisses.Load(),
		},
	}
}

// hitRatio is hits/(hits+misses), 0 when nothing was ever looked up.
func hitRatio(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// spliceExplain returns a copy of the canonical body with the explain
// member appended inside the top-level object. The input bytes — which
// may be a live cache entry — are never modified. A body that is not a
// JSON object (impossible for a solve response) passes through unchanged.
func spliceExplain(body []byte, env *explainJSON) []byte {
	ej, err := json.Marshal(env)
	if err != nil || len(body) == 0 || body[len(body)-1] != '}' {
		return body
	}
	out := make([]byte, 0, len(body)+len(ej)+len(`,"explain":`))
	out = append(out, body[:len(body)-1]...)
	out = append(out, `,"explain":`...)
	out = append(out, ej...)
	out = append(out, '}')
	return out
}
