package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
)

// swapHandler lets an httptest server start (so its URL is known) before
// the Server that needs that URL exists, and lets tests replace a live
// node's behavior to simulate failures.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (sw *swapHandler) set(h http.Handler) {
	sw.mu.Lock()
	sw.h = h
	sw.mu.Unlock()
}

func (sw *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw.mu.RLock()
	h := sw.h
	sw.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type clusterNode struct {
	srv  *Server
	ts   *httptest.Server
	clu  *cluster.Cluster
	swap *swapHandler
	url  string
}

// newTestCluster stands up n sharded nodes on loopback httptest servers,
// each with its own cache and a full peer list. Background probing is off;
// peers start optimistically up and liveness changes flow from observed
// forward failures, which keeps the tests deterministic.
func newTestCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	urls := make([]string, n)
	for i := range nodes {
		sw := &swapHandler{}
		ts := httptest.NewServer(sw)
		t.Cleanup(ts.Close)
		nodes[i] = &clusterNode{ts: ts, swap: sw, url: ts.URL}
		urls[i] = ts.URL
	}
	for i, nd := range nodes {
		c, err := cache.Open("", 64)
		if err != nil {
			t.Fatal(err)
		}
		clu, err := cluster.New(cluster.Config{
			Self:         nd.url,
			Peers:        urls,
			PollInterval: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{Cache: c, Workers: 2, Cluster: clu})
		t.Cleanup(s.Close)
		nd.srv, nd.clu = s, clu
		nd.swap.set(s)
		_ = i
	}
	return nodes
}

func keyOf(t *testing.T, inst InstanceJSON, opt *OptionsJSON) cache.Key {
	t.Helper()
	// Round-trip through the wire encoding: raw Go int cells only become
	// decodable json.Numbers after marshaling, exactly as in a real request.
	b, err := json.Marshal(inst)
	if err != nil {
		t.Fatal(err)
	}
	var wire InstanceJSON
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	if err := dec.Decode(&wire); err != nil {
		t.Fatal(err)
	}
	in, err := wire.toInput()
	if err != nil {
		t.Fatal(err)
	}
	o, err := opt.toOptions()
	if err != nil {
		t.Fatal(err)
	}
	k, err := core.Fingerprint(in, o)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// instanceOwnedBy mints test instances (bumping from start) until one's
// fingerprint rendezvous-hashes to the wanted owner.
func instanceOwnedBy(t *testing.T, nodes []string, owner string, opt *OptionsJSON, start int64) InstanceJSON {
	t.Helper()
	for b := start; b < start+512; b++ {
		inst := testInstance(b)
		if cluster.Owner(keyOf(t, inst, opt), nodes) == owner {
			return inst
		}
	}
	t.Fatalf("no instance owned by %s in 512 tries", owner)
	return InstanceJSON{}
}

func totalMetric(t *testing.T, nodes []*clusterNode, name string) int64 {
	t.Helper()
	var sum int64
	for _, nd := range nodes {
		sum += metricValue(t, nd.url, name)
	}
	return sum
}

func waitJobDone(t *testing.T, url, id string) jobStatusJSON {
	t.Helper()
	var js jobStatusJSON
	for i := 0; i < 800; i++ {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(readBody(t, resp), &js); err != nil {
			t.Fatal(err)
		}
		if js.Status == jobDone || js.Status == jobCanceled {
			return js
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished; last status %q", id, js.Status)
	return js
}

// Acceptance (a) + (b): the identical request sent to every node returns a
// byte-identical body, and the whole cluster runs the solver exactly once
// for the distinct fingerprint — the owner solves, every other node
// forwards, and the owner's cache is the single authoritative copy.
func TestClusterAnyNodeByteIdenticalSingleSolve(t *testing.T) {
	nodes := newTestCluster(t, 3)
	opt := &OptionsJSON{Seed: 1}
	req := SolveRequest{InstanceJSON: testInstance(1000), Options: opt}

	key := keyOf(t, req.InstanceJSON, opt)
	ownerURL := cluster.Owner(key, nodes[0].clu.Nodes())

	var bodies [][]byte
	for _, nd := range nodes {
		resp := postJSON(t, nd.url+"/v1/solve", req)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %s: status %d: %s", nd.url, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Linksynth-Node"); got != ownerURL {
			t.Errorf("node %s served by %q, want owner %q", nd.url, got, ownerURL)
		}
		bodies = append(bodies, body)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Errorf("body from node %d differs from node 0", i)
		}
	}
	if runs := totalMetric(t, nodes, "solver_runs_total"); runs != 1 {
		t.Errorf("cluster-wide solver runs = %d, want 1", runs)
	}
	// Only the owner's cache holds the entry: shards are authoritative,
	// non-owners stay empty.
	for _, nd := range nodes {
		want := int64(0)
		if nd.url == ownerURL {
			want = 1
		}
		if got := metricValue(t, nd.url, "cache_entries"); got != want {
			t.Errorf("node %s cache entries = %d, want %d", nd.url, got, want)
		}
	}
	if fwd := totalMetric(t, nodes, "cluster_forwarded_total"); fwd != 2 {
		t.Errorf("forwarded = %d, want 2 (one per non-owner entry node)", fwd)
	}
}

// A batch posted to one node scatters sub-jobs to the owning nodes and
// gathers their results under the parent job id; every distinct instance
// still solves exactly once cluster-wide, on its owner.
func TestClusterBatchScatterGather(t *testing.T) {
	nodes := newTestCluster(t, 3)
	opt := &OptionsJSON{Seed: 1}
	entry := nodes[0]
	all := entry.clu.Nodes()

	// One instance owned by each node, so the scatter has a local group and
	// two remote groups, plus a duplicate to exercise merge fan-in.
	var insts []InstanceJSON
	for _, owner := range all {
		insts = append(insts, instanceOwnedBy(t, all, owner, opt, 2000+int64(len(insts))*600))
	}
	insts = append(insts, insts[1]) // duplicate of a (likely remote) instance

	resp := postJSON(t, entry.url+"/v1/batch", BatchRequest{Instances: insts, Options: opt})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var js jobStatusJSON
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	js = waitJobDone(t, entry.url, js.ID)
	if js.Status != jobDone {
		t.Fatalf("job status %q, want done", js.Status)
	}
	if len(js.Results) != len(insts) {
		t.Fatalf("results = %d, want %d", len(js.Results), len(insts))
	}
	for i, raw := range js.Results {
		var sr SolveResponse
		if err := json.Unmarshal(raw, &sr); err != nil || sr.Key == "" {
			t.Errorf("result %d not a SolveResponse: %v: %s", i, err, raw)
		}
	}
	if !bytes.Equal(js.Results[1], js.Results[3]) {
		t.Error("duplicate instances got different result bytes")
	}
	if runs := totalMetric(t, nodes, "solver_runs_total"); runs != 3 {
		t.Errorf("cluster-wide solver runs = %d, want 3 (one per distinct instance)", runs)
	}
	// Each instance must have been solved by (and cached on) its owner.
	for i, owner := range all {
		key := keyOf(t, insts[i], opt)
		for _, nd := range nodes {
			_, ok := nd.srv.cache.Get(key)
			if want := nd.url == owner; ok != want {
				t.Errorf("instance %d: cache presence on %s = %v, want %v", i, nd.url, ok, want)
			}
		}
	}
	if got := metricValue(t, entry.url, "cluster_scatter_jobs_total"); got != 1 {
		t.Errorf("scatter jobs on entry node = %d, want 1", got)
	}
}

// Acceptance (c): a peer that dies mid-batch — after accepting its
// sub-job, before delivering results — does not sink the batch. The
// gathering node re-solves the lost group locally and the job completes
// with correct results.
func TestClusterBatchPeerDiesMidJob(t *testing.T) {
	nodes := newTestCluster(t, 2)
	opt := &OptionsJSON{Seed: 1}
	a, b := nodes[0], nodes[1]
	all := a.clu.Nodes()

	insts := []InstanceJSON{
		instanceOwnedBy(t, all, a.url, opt, 4000),
		instanceOwnedBy(t, all, b.url, opt, 4600),
	}

	// Wrap B: the sub-batch POST passes through (and signals), then every
	// poll hangs until B is "killed", after which all requests fail — the
	// shape of a node that accepted work and died before finishing it.
	accepted := make(chan struct{}, 1)
	killed := make(chan struct{})
	real := b.srv
	b.swap.set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/batch":
			real.ServeHTTP(w, r)
			select {
			case accepted <- struct{}{}:
			default:
			}
		default:
			<-killed
			http.Error(w, "node is dead", http.StatusInternalServerError)
		}
	}))

	resp := postJSON(t, a.url+"/v1/batch", BatchRequest{Instances: insts, Options: opt})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var js jobStatusJSON
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}

	select {
	case <-accepted:
	case <-time.After(10 * time.Second):
		t.Fatal("sub-batch never reached the peer")
	}
	close(killed) // B dies mid-job

	js = waitJobDone(t, a.url, js.ID)
	if js.Status != jobDone {
		t.Fatalf("job status %q, want done despite peer death", js.Status)
	}
	if len(js.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(js.Results))
	}
	for i, raw := range js.Results {
		var sr SolveResponse
		if err := json.Unmarshal(raw, &sr); err != nil || sr.Key == "" {
			t.Fatalf("result %d not a valid SolveResponse after fallback: %s", i, raw)
		}
	}
	// The lost group was re-solved locally on A, byte-identically.
	if fb := metricValue(t, a.url, "cluster_gather_fallbacks_total"); fb != 1 {
		t.Errorf("gather fallbacks on A = %d, want 1", fb)
	}
	key := keyOf(t, insts[1], opt)
	if _, ok := a.srv.cache.Get(key); !ok {
		t.Error("fallback solve did not land in A's cache")
	}
}

// A dead owner on the sync path: the forward fails in transport, the owner
// is marked down immediately, and the request degrades to a local solve.
func TestClusterSolveFallsBackWhenOwnerDown(t *testing.T) {
	nodes := newTestCluster(t, 2)
	opt := &OptionsJSON{Seed: 1}
	a, b := nodes[0], nodes[1]
	inst := instanceOwnedBy(t, a.clu.Nodes(), b.url, opt, 6000)

	b.ts.Close() // connection refused from now on

	resp := postJSON(t, a.url+"/v1/solve", SolveRequest{InstanceJSON: inst, Options: opt})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Linksynth-Node"); got != a.url {
		t.Errorf("served by %q, want local fallback on %q", got, a.url)
	}
	if fb := metricValue(t, a.url, "cluster_forward_fallbacks_total"); fb != 1 {
		t.Errorf("forward fallbacks = %d, want 1", fb)
	}
	if up := metricValue(t, a.url, "cluster_peers_up"); up != 0 {
		t.Errorf("peers up after transport failure = %d, want 0", up)
	}

	// With B marked down, A owns everything: a second request for the same
	// instance is a local cache hit, no forward attempt.
	resp2 := postJSON(t, a.url+"/v1/solve", SolveRequest{InstanceJSON: inst, Options: opt})
	body2 := readBody(t, resp2)
	if got := resp2.Header.Get("X-Linksynth-Cache"); got != "hit" {
		t.Errorf("second request cache = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("fallback solve and cache hit bodies differ")
	}
	if fb := metricValue(t, a.url, "cluster_forward_fallbacks_total"); fb != 1 {
		t.Errorf("forward fallbacks after cache hit = %d, want still 1", fb)
	}
}

// The hop guard: a request that already crossed a node boundary is
// answered locally even by a non-owner, so divergent liveness views can
// never forward in circles.
func TestClusterHopGuardServesLocally(t *testing.T) {
	nodes := newTestCluster(t, 2)
	opt := &OptionsJSON{Seed: 1}
	a, b := nodes[0], nodes[1]
	inst := instanceOwnedBy(t, a.clu.Nodes(), b.url, opt, 8000)

	body, err := json.Marshal(SolveRequest{InstanceJSON: inst, Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, a.url+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HopHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rb := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, rb)
	}
	if got := metricValue(t, a.url, "cluster_forwarded_total"); got != 0 {
		t.Errorf("hop-guarded request was re-forwarded (%d forwards)", got)
	}
	if got := metricValue(t, a.url, "cluster_hop_served_total"); got != 1 {
		t.Errorf("hop served = %d, want 1", got)
	}
	if runs := metricValue(t, a.url, "solver_runs_total"); runs != 1 {
		t.Errorf("solver runs on A = %d, want 1 (local solve despite remote ownership)", runs)
	}
}

// Cluster state is visible operationally: /healthz names the node and its
// peer view, /metrics carries the cluster gauges.
func TestClusterHealthzAndMetricsExposeTopology(t *testing.T) {
	nodes := newTestCluster(t, 3)
	resp, err := http.Get(nodes[0].url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status string               `json:"status"`
		Node   string               `json:"node"`
		Peers  []cluster.PeerStatus `json:"peers"`
	}
	if err := json.Unmarshal(readBody(t, resp), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Node != nodes[0].url {
		t.Errorf("healthz = %+v", hz)
	}
	if len(hz.Peers) != 2 {
		t.Fatalf("healthz peers = %d, want 2", len(hz.Peers))
	}
	for _, p := range hz.Peers {
		if !p.Up {
			t.Errorf("peer %s reported down in a healthy cluster", p.URL)
		}
	}
	if known := metricValue(t, nodes[0].url, "cluster_peers_known"); known != 2 {
		t.Errorf("cluster_peers_known = %d, want 2", known)
	}
}
