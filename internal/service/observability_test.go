package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// explainMember mirrors the spliced "explain" object for decoding in tests.
type explainMember struct {
	Node    string `json:"node"`
	TraceID string `json:"trace_id"`
	Cache   string `json:"cache"`
	Solver  *struct {
		Mode     string `json:"mode"`
		ViewRows int    `json:"view_rows"`
		CCs      []any  `json:"ccs"`
		Phases   []any  `json:"phases"`
	} `json:"solver"`
	Service struct {
		CacheHitRatio float64 `json:"cache_hit_ratio"`
	} `json:"service"`
}

// Tentpole acceptance: ?explain=1 splices a cost report into the response
// without perturbing the canonical bytes. The cached body, the fingerprint
// key, and the bytes before the splice point are identical with and
// without explain — on a cold solve and on a cache hit.
func TestExplainSpliceKeepsCanonicalBytes(t *testing.T) {
	_, tsA := newTestServer(t, Config{Workers: 2})
	req := SolveRequest{InstanceJSON: testInstance(0), Options: &OptionsJSON{Seed: 1}}

	respPlain := postJSON(t, tsA.URL+"/v1/solve", req)
	bodyPlain := readBody(t, respPlain)
	if respPlain.StatusCode != http.StatusOK {
		t.Fatalf("plain solve: %d: %s", respPlain.StatusCode, bodyPlain)
	}
	if bytes.Contains(bodyPlain, []byte(`"explain"`)) {
		t.Fatalf("plain response carries an explain member: %s", bodyPlain)
	}

	// Cache-hit explain: spliced onto the same canonical prefix.
	respHit := postJSON(t, tsA.URL+"/v1/solve?explain=1", req)
	bodyHit := readBody(t, respHit)
	if got := respHit.Header.Get("X-Linksynth-Cache"); got != "hit" {
		t.Fatalf("second solve cache = %q, want hit", got)
	}
	if !bytes.HasPrefix(bodyHit, bodyPlain[:len(bodyPlain)-1]) {
		t.Fatalf("explain response does not extend the canonical body:\nplain: %s\nexplain: %s", bodyPlain, bodyHit)
	}
	var hit struct {
		Key     string         `json:"key"`
		Explain *explainMember `json:"explain"`
	}
	if err := json.Unmarshal(bodyHit, &hit); err != nil {
		t.Fatal(err)
	}
	if hit.Explain == nil || hit.Explain.Cache != "hit" || hit.Explain.TraceID == "" {
		t.Fatalf("hit explain member wrong: %+v", hit.Explain)
	}
	if hit.Explain.Solver != nil {
		t.Fatal("cache hit carries a solver report, but no solver ran")
	}

	// Cold explain on a fresh server: the solver report is present, and
	// neither the key nor the canonical bytes moved.
	_, tsB := newTestServer(t, Config{Workers: 2})
	respCold := postJSON(t, tsB.URL+"/v1/solve?explain=1", req)
	bodyCold := readBody(t, respCold)
	var cold struct {
		Key     string         `json:"key"`
		Explain *explainMember `json:"explain"`
	}
	if err := json.Unmarshal(bodyCold, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Key != hit.Key {
		t.Fatalf("explain changed the fingerprint: %s vs %s", cold.Key, hit.Key)
	}
	if cold.Explain == nil || cold.Explain.Cache != "miss" || cold.Explain.Solver == nil {
		t.Fatalf("cold explain member wrong: %+v", cold.Explain)
	}
	if cold.Explain.Solver.ViewRows == 0 || len(cold.Explain.Solver.CCs) == 0 || len(cold.Explain.Solver.Phases) == 0 {
		t.Fatalf("cold solver report is hollow: %+v", cold.Explain.Solver)
	}

	// The cached entry on server B stayed canonical: a plain re-request
	// returns bytes identical to server A's plain response.
	bodyB := readBody(t, postJSON(t, tsB.URL+"/v1/solve", req))
	if !bytes.Equal(bodyB, bodyPlain) {
		t.Fatalf("explain leaked into the cached body:\nA: %s\nB: %s", bodyPlain, bodyB)
	}
}

// Satellite: /debug/flight?trace=<id> narrows the dump to one trace, and
// ?format=text renders the greppable line form.
func TestFlightTraceFilterAndTextFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := SolveRequest{InstanceJSON: testInstance(0), Options: &OptionsJSON{Seed: 1}}
	id := postJSON(t, ts.URL+"/v1/solve", req).Header.Get("X-Linksynth-Trace")
	if id == "" {
		t.Fatal("solve response has no trace id")
	}
	postJSON(t, ts.URL+"/v1/solve", req) // a second trace the filter must drop

	resp, err := http.Get(ts.URL + "/debug/flight?trace=" + id)
	if err != nil {
		t.Fatal(err)
	}
	var fj struct {
		RecordedTotal uint64 `json:"recorded_total"`
		Traces        []struct {
			ID string `json:"id"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(readBody(t, resp), &fj); err != nil {
		t.Fatal(err)
	}
	if len(fj.Traces) != 1 || fj.Traces[0].ID != id {
		t.Fatalf("?trace=%s returned %+v, want exactly that trace", id, fj.Traces)
	}
	if fj.RecordedTotal < 2 {
		t.Fatalf("recorded_total = %d, want >= 2 (filter must not hide totals)", fj.RecordedTotal)
	}

	resp, err = http.Get(ts.URL + "/debug/flight?trace=" + id + "&format=text")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text dump Content-Type = %q", ct)
	}
	text := string(readBody(t, resp))
	if !strings.HasPrefix(text, "node ") ||
		!strings.Contains(text, "trace "+id+" ") ||
		!strings.Contains(text, "span "+id+" compile") {
		t.Fatalf("text dump missing expected lines:\n%s", text)
	}
}

// Satellite: a forwarded solve lands in exactly one node's latency
// histograms cluster-wide — the owner's. The edge node sees the
// X-Linksynth-Node header name another node and skips booking.
func TestClusterForwardedSolveBookedOnExactlyOneNode(t *testing.T) {
	nodes := newTestCluster(t, 2)
	a, b := nodes[0], nodes[1]
	opt := &OptionsJSON{Seed: 1}
	inst := instanceOwnedBy(t, a.clu.Nodes(), b.url, opt, 12000)

	resp := postJSON(t, a.url+"/v1/solve", SolveRequest{InstanceJSON: inst, Options: opt})
	readBody(t, resp)
	if got := resp.Header.Get("X-Linksynth-Node"); got != b.url {
		t.Fatalf("served-by %q, want owner %s", got, b.url)
	}
	booked := int64(0)
	for _, name := range []string{
		"solve_duration_seconds_count",
		"cache_hit_duration_seconds_count",
		"delta_duration_seconds_count",
	} {
		booked += totalMetric(t, nodes, name)
	}
	if booked != 1 {
		t.Fatalf("cluster-wide latency bookings = %d, want exactly 1", booked)
	}
	if owner := metricValue(t, b.url, "solve_duration_seconds_count"); owner != 1 {
		t.Fatalf("owner solve histogram count = %d, want 1", owner)
	}
	if edge := metricValue(t, a.url, "solve_duration_seconds_count"); edge != 0 {
		t.Fatalf("edge solve histogram count = %d, want 0 (forwarded answer must not double-book)", edge)
	}
}

// Tentpole acceptance: /debug/cluster merges every member's scrape into
// one exposition with aggregates and per-node labels.
func TestClusterMetricsMergeAllMembers(t *testing.T) {
	nodes := newTestCluster(t, 3)
	opt := &OptionsJSON{Seed: 1}
	readBody(t, postJSON(t, nodes[0].url+"/v1/solve", SolveRequest{InstanceJSON: testInstance(0), Options: opt}))

	resp, err := http.Get(nodes[1].url + "/debug/cluster")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readBody(t, resp))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/cluster: %d: %s", resp.StatusCode, body)
	}
	lines := strings.Split(body, "\n")
	has := func(line string) {
		t.Helper()
		for _, l := range lines {
			if l == line {
				return
			}
		}
		t.Fatalf("merged exposition missing %q:\n%s", line, body)
	}
	// One solver run cluster-wide: the aggregate counter sums to 1 and
	// every member appears under its own node label and in node_up.
	has("linksynthd_solver_runs_total 1")
	for _, nd := range nodes {
		local := metricValue(t, nd.url, "solver_runs_total")
		has(fmt.Sprintf(`linksynthd_solver_runs_total{node="%s"} %d`, nd.url, local))
		has(`linksynthd_cluster_node_up{node="` + nd.url + `"} 1`)
	}
	// Histogram families merge into a single cumulative bucket set: no
	// bucket line may carry a node label.
	for _, l := range lines {
		if strings.Contains(l, "_bucket{") && strings.Contains(l, `node="`) {
			t.Fatalf("merged histogram leaked a per-node bucket line: %q", l)
		}
	}
}

// Tentpole acceptance: GET /debug/trace/{id} on EITHER node of a forwarded
// solve returns spans from both members, stitched into one timeline.
func TestClusterTraceStitchesAcrossNodes(t *testing.T) {
	nodes := newTestCluster(t, 2)
	a, b := nodes[0], nodes[1]
	opt := &OptionsJSON{Seed: 1}
	inst := instanceOwnedBy(t, a.clu.Nodes(), b.url, opt, 14000)

	resp := postJSON(t, a.url+"/v1/solve", SolveRequest{InstanceJSON: inst, Options: opt})
	readBody(t, resp)
	id := resp.Header.Get("X-Linksynth-Trace")
	if id == "" {
		t.Fatal("forwarded solve returned no trace id")
	}

	for _, nd := range nodes {
		r, err := http.Get(nd.url + "/debug/trace/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, r)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s/debug/trace/%s: %d: %s", nd.url, id, r.StatusCode, body)
		}
		var ct struct {
			TraceID  string   `json:"trace_id"`
			Nodes    []string `json:"nodes"`
			Timeline []struct {
				Node string `json:"node"`
				Name string `json:"name"`
			} `json:"timeline"`
		}
		if err := json.Unmarshal(body, &ct); err != nil {
			t.Fatal(err)
		}
		if ct.TraceID != id || len(ct.Nodes) != 2 {
			t.Fatalf("asked %s: stitched trace %+v, want both members", nd.url, ct)
		}
		seen := map[string]bool{}
		for _, sp := range ct.Timeline {
			seen[sp.Node+"/"+sp.Name] = true
		}
		if !seen[a.url+"/forward"] {
			t.Fatalf("asked %s: timeline missing the edge's forward span: %v", nd.url, seen)
		}
		if !seen[b.url+"/compile"] || !seen[b.url+"/phase2"] {
			t.Fatalf("asked %s: timeline missing the owner's solver spans: %v", nd.url, seen)
		}
	}

	r, err := http.Get(a.url + "/debug/trace/nosuchtrace")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, r)
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id: %d, want 404", r.StatusCode)
	}
}
