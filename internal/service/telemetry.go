package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"sort"
	"time"

	"repro/internal/obsv"
)

// This file is the cluster-wide telemetry plane: two fan-out endpoints
// that let an operator see the whole cluster from any one node.
//
//	GET /debug/cluster     every member's /metrics merged into one
//	                       exposition (aggregates + per-node labels)
//	GET /debug/trace/{id}  that trace's spans collected from every
//	                       member's flight recorder and stitched into one
//	                       cross-node timeline
//
// Both ask each member for its *local* view (/metrics, /debug/flight) —
// leaf endpoints that never fan out themselves — so the sweep cannot
// recurse. Members that fail to answer degrade the view instead of
// failing it: /debug/cluster reports them at 0 in the
// linksynthd_cluster_node_up gauge, /debug/trace lists them under "down".
// Single-node servers serve both endpoints from local state alone.

// telemetryTimeout bounds one whole fan-out sweep; a hung peer must not
// pin a debug request for the caller's full patience.
const telemetryTimeout = 10 * time.Second

// handleClusterMetrics serves GET /debug/cluster: the merged exposition
// over every live member's scrape, in the same validated format as a
// single node's /metrics (check_metrics.sh passes on both).
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	scrapes := []obsv.NodeScrape{{Node: s.obs.Node, Text: s.metricsExposition()}}
	var down []string
	if s.clu != nil {
		ctx, cancel := context.WithTimeout(r.Context(), telemetryTimeout)
		defer cancel()
		for _, node := range s.clu.Nodes() {
			if node == s.clu.Self() {
				continue // already scraped in-process
			}
			b, err := s.clu.FetchDebug(ctx, node, "/metrics")
			if err != nil {
				down = append(down, node)
				continue
			}
			scrapes = append(scrapes, obsv.NodeScrape{Node: node, Text: string(b)})
		}
	}
	merged, err := obsv.MergeExpositions(scrapes, down)
	if err != nil {
		writeError(w, http.StatusBadGateway, "merge cluster metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(merged))
}

// clusterTraceJSON is the wire form of GET /debug/trace/{id}: every
// member's record of the trace plus the stitched cross-node timeline.
type clusterTraceJSON struct {
	TraceID  string             `json:"trace_id"`
	Nodes    []string           `json:"nodes"`          // members contributing records, sorted
	Down     []string           `json:"down,omitempty"` // members that could not be asked
	Traces   []obsv.TraceJSON   `json:"traces"`
	Timeline []timelineSpanJSON `json:"timeline"`
}

// timelineSpanJSON is one span on the stitched timeline, attributed to
// the node that recorded it.
type timelineSpanJSON struct {
	Node  string        `json:"node"`
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
}

// handleClusterTrace serves GET /debug/trace/{id}: it asks every member's
// flight recorder for the trace (the ?trace= filter keeps the transfers
// small) and stitches the spans into one wall-clock-ordered timeline, so
// a forwarded or failed-over solve is debuggable from any entry node.
func (s *Server) handleClusterTrace(w http.ResponseWriter, r *http.Request, id string) {
	if id == "" {
		writeError(w, http.StatusNotFound, "no trace id")
		return
	}
	var traces []obsv.TraceJSON
	for _, t := range s.obs.Recorder.Traces() {
		if t.ID == id {
			traces = append(traces, t)
		}
	}
	var down []string
	if s.clu != nil {
		ctx, cancel := context.WithTimeout(r.Context(), telemetryTimeout)
		defer cancel()
		for _, node := range s.clu.Nodes() {
			if node == s.clu.Self() {
				continue
			}
			b, err := s.clu.FetchDebug(ctx, node, "/debug/flight?trace="+url.QueryEscape(id))
			if err != nil {
				down = append(down, node)
				continue
			}
			var fj flightJSON
			if err := json.Unmarshal(b, &fj); err != nil {
				down = append(down, node)
				continue
			}
			traces = append(traces, fj.Traces...)
		}
	}
	if len(traces) == 0 {
		writeError(w, http.StatusNotFound, "trace %s not found on any reachable member", id)
		return
	}
	// Deterministic record order: by node, then by start time (one node
	// can record the same id more than once, e.g. a retried forward).
	sort.SliceStable(traces, func(i, j int) bool {
		if traces[i].Node != traces[j].Node {
			return traces[i].Node < traces[j].Node
		}
		return traces[i].Start.Before(traces[j].Start)
	})
	nodeSet := map[string]bool{}
	var timeline []timelineSpanJSON
	for _, t := range traces {
		nodeSet[t.Node] = true
		for _, sp := range t.Spans {
			timeline = append(timeline, timelineSpanJSON{Node: t.Node, Name: sp.Name, Start: sp.Start, Dur: sp.Dur})
		}
	}
	sort.SliceStable(timeline, func(i, j int) bool {
		if !timeline[i].Start.Equal(timeline[j].Start) {
			return timeline[i].Start.Before(timeline[j].Start)
		}
		if timeline[i].Node != timeline[j].Node {
			return timeline[i].Node < timeline[j].Node
		}
		return timeline[i].Name < timeline[j].Name
	})
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	sort.Strings(down)
	writeJSON(w, http.StatusOK, clusterTraceJSON{
		TraceID: id, Nodes: nodes, Down: down, Traces: traces, Timeline: timeline,
	})
}
