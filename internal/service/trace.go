package service

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obsv"
)

// This file is the service's tracing edge. Every API request runs under an
// obsv.Trace: the id is adopted from the X-Linksynth-Trace header when a
// peer (or a client quoting an earlier response) sent one — so a forwarded
// solve or a scattered sub-batch is one distributed trace — and minted
// fresh otherwise. The response echoes the id, the handler runs with the
// trace on its context for the solver layers to fill with spans, and the
// completed trace lands in the flight recorder. The introspection
// endpoints (/healthz, /metrics, /debug/flight) are served untraced so
// scrape traffic never rotates real requests out of the ring.

// statusWriter captures the response status code so the edge can classify
// the trace and pick a latency histogram after the handler returns.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// serveTraced wraps one API request in a trace and records it on completion.
func (s *Server) serveTraced(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get(obsv.TraceHeader)
	if id == "" {
		id = obsv.NewID()
	}
	tr := obsv.NewTrace(id, r.Method+" "+r.URL.Path, s.obs.Node)
	w.Header().Set(obsv.TraceHeader, id)
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	s.route(sw, r.WithContext(obsv.WithTrace(r.Context(), tr)))
	elapsed := time.Since(start)
	status := sw.status
	if status == 0 {
		// The handler wrote nothing (e.g. a hijacked or empty response);
		// net/http would have sent a 200.
		status = http.StatusOK
	}
	tr.SetStatus(traceStatus(status, sw.Header()))
	if status >= http.StatusInternalServerError || status == http.StatusUnprocessableEntity {
		// 5xx and solver rejections are the traces worth keeping beyond the
		// ring: SetError makes the recorder snapshot them to disk.
		tr.SetError(http.StatusText(status))
	}
	s.observeLatency(r.URL.Path, sw.Header(), status, elapsed)
	s.obs.Recorder.Record(tr)
}

// traceStatus renders a trace's disposition line: the HTTP status plus the
// cache/incremental classification the handler set on the response.
func traceStatus(status int, h http.Header) string {
	st := strconv.Itoa(status)
	if incr := h.Get("X-Linksynth-Incr"); incr != "" {
		return st + " delta/" + incr
	}
	if c := h.Get("X-Linksynth-Cache"); c != "" {
		return st + " " + c
	}
	return st
}

// observeLatency feeds the per-path latency histograms from the response
// the handler produced. Only successful solves classify; in a cluster, an
// answer another node produced is skipped here — its latency is already on
// this node's Forward histogram and on the owner's Solve histogram, and
// counting it again would double-book the same request.
func (s *Server) observeLatency(path string, h http.Header, status int, d time.Duration) {
	if path != "/v1/solve" || status != http.StatusOK {
		return
	}
	if s.clu != nil {
		if node := h.Get("X-Linksynth-Node"); node != "" && node != s.clu.Self() {
			return
		}
	}
	switch {
	case h.Get("X-Linksynth-Incr") != "":
		s.obs.Delta.Observe(d)
	case h.Get("X-Linksynth-Cache") == "hit":
		s.obs.CacheHit.Observe(d)
	default:
		s.obs.Solve.Observe(d)
	}
}

// flightJSON is the wire form of GET /debug/flight.
type flightJSON struct {
	Node            string           `json:"node"`
	RecordedTotal   uint64           `json:"recorded_total"`
	Snapshots       uint64           `json:"snapshots_written"`
	SnapshotErrors  uint64           `json:"snapshot_errors"`
	SnapshotsPruned uint64           `json:"snapshots_pruned"`
	Traces          []obsv.TraceJSON `json:"traces"`
}

// handleFlight dumps the flight recorder: the resident traces oldest first
// plus recorder totals. The dump is a diagnostic read; the ring keeps
// rotating underneath it. ?trace=<id> keeps only that trace's records (the
// /debug/trace fan-out asks peers exactly this), and ?format=text renders
// a line-oriented dump CI smokes can grep without JSON tooling.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	traces := s.obs.Recorder.Traces()
	if id := r.URL.Query().Get("trace"); id != "" {
		kept := traces[:0]
		for _, t := range traces {
			if t.ID == id {
				kept = append(kept, t)
			}
		}
		traces = kept
	}
	snaps, snapErrs := s.obs.Recorder.SnapshotStats()
	fj := flightJSON{
		Node:            s.obs.Node,
		RecordedTotal:   s.obs.Recorder.Recorded(),
		Snapshots:       snaps,
		SnapshotErrors:  snapErrs,
		SnapshotsPruned: s.obs.Recorder.Pruned(),
		Traces:          traces,
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(renderFlightText(&fj)))
		return
	}
	writeJSON(w, http.StatusOK, fj)
}

// renderFlightText renders a flight dump one fact per line:
//
//	node <node> recorded=N resident=N snapshots=N snapshot_errors=N pruned=N
//	trace <id> op=<op> node=<node> status=<status> dur=<dur> spans=N err=<err|->
//	span <trace-id> <name> start=<RFC3339Nano> dur=<dur>
//	event <trace-id> <msg>
//
// The leading keyword plus trace id make every line independently
// greppable (`grep "^span <id> forward"`).
func renderFlightText(fj *flightJSON) string {
	var b strings.Builder
	fmt.Fprintf(&b, "node %s recorded=%d resident=%d snapshots=%d snapshot_errors=%d pruned=%d\n",
		fj.Node, fj.RecordedTotal, len(fj.Traces), fj.Snapshots, fj.SnapshotErrors, fj.SnapshotsPruned)
	for _, t := range fj.Traces {
		errTxt := t.Err
		if errTxt == "" {
			errTxt = "-"
		}
		fmt.Fprintf(&b, "trace %s op=%q node=%s status=%q dur=%s spans=%d err=%q\n",
			t.ID, t.Op, t.Node, t.Status, t.Dur, len(t.Spans), errTxt)
		for _, sp := range t.Spans {
			fmt.Fprintf(&b, "span %s %s start=%s dur=%s\n",
				t.ID, sp.Name, sp.Start.UTC().Format(time.RFC3339Nano), sp.Dur)
		}
		for _, ev := range t.Events {
			fmt.Fprintf(&b, "event %s %s\n", t.ID, ev.Msg)
		}
	}
	return b.String()
}
