package service

import (
	"strings"

	"repro/internal/constraint"
	"repro/internal/core"
)

// EncodeInstance renders a solver input in the HTTP wire form — the same
// shape POST /v1/solve decodes. It is the inverse of the request decoder
// up to relation-name defaulting: both relations inline, the key columns,
// and the constraint sets re-serialized into the text DSL. Clients that
// build instances programmatically (cmd/loadgen, tests) use it to speak
// the API without hand-writing JSON.
func EncodeInstance(in core.Input) (InstanceJSON, error) {
	var cons strings.Builder
	if err := constraint.WriteConstraints(&cons, in.CCs, in.DCs); err != nil {
		return InstanceJSON{}, err
	}
	r1 := encodeRelation(in.R1)
	r2 := encodeRelation(in.R2)
	return InstanceJSON{
		R1: &r1, R2: &r2,
		K1: in.K1, K2: in.K2, FK: in.FK,
		Constraints: cons.String(),
	}, nil
}
