// Package simplex implements a dense two-phase primal simplex solver for
// linear programs in the form
//
//	minimize cᵀx  subject to  a_iᵀx {≤,=,≥} b_i,  x ≥ 0.
//
// It is the substrate the paper obtained from PuLP/CBC: phase I of the
// paper's solution (Algorithm 1) reduces cardinality-constraint satisfaction
// to an integer program whose relaxations this package solves; the
// branch-and-bound layer lives in package ilp.
//
// The implementation is a textbook tableau method with Dantzig pricing and a
// Bland's-rule fallback for anti-cycling, which is ample for the problem
// sizes produced by the intervalized CC systems.
package simplex

import (
	"fmt"
	"math"
)

// Sense is the row sense of a constraint.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // aᵀx ≤ b
	EQ              // aᵀx = b
	GE              // aᵀx ≥ b
)

// Nz is one nonzero coefficient of a constraint row.
type Nz struct {
	Var  int
	Coef float64
}

// Row is a sparse constraint row.
type Row struct {
	Coefs []Nz
	Sense Sense
	B     float64
}

// LP is a linear program over NumVars non-negative variables.
type LP struct {
	NumVars int
	C       []float64 // minimization objective; len NumVars (missing = 0)
	Rows    []Row
}

// Status reports the outcome of Solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return "unknown"
	}
}

// Result is the solver output. X has length NumVars; Obj is cᵀx. Iters
// counts simplex pivots across both phases.
type Result struct {
	Status Status
	X      []float64
	Obj    float64
	Iters  int
}

const (
	epsCost  = 1e-7 // reduced-cost tolerance for optimality
	epsPivot = 1e-9 // minimum pivot magnitude
	epsFeas  = 1e-6 // phase-1 residual tolerance
)

// Solve runs two-phase primal simplex. maxIters bounds total pivots
// (0 means an automatic limit based on problem size).
func Solve(lp *LP, maxIters int) (*Result, error) {
	if err := validate(lp); err != nil {
		return nil, err
	}
	t := newTableau(lp)
	if maxIters <= 0 {
		maxIters = 200 * (len(lp.Rows) + t.ncols + 10)
	}
	res := &Result{}

	if t.nart > 0 {
		phase1Cost := make([]float64, t.ncols)
		for j := t.artStart; j < t.ncols; j++ {
			phase1Cost[j] = 1
		}
		st := t.run(phase1Cost, maxIters, &res.Iters)
		if st == IterLimit {
			res.Status = IterLimit
			return res, nil
		}
		if t.objValue(phase1Cost) > epsFeas {
			res.Status = Infeasible
			return res, nil
		}
		t.driveOutArtificials()
		for j := t.artStart; j < t.ncols; j++ {
			t.dead[j] = true
		}
	}

	phase2Cost := make([]float64, t.ncols)
	copy(phase2Cost, lp.C)
	st := t.run(phase2Cost, maxIters, &res.Iters)
	switch st {
	case Unbounded:
		res.Status = Unbounded
		return res, nil
	case IterLimit:
		res.Status = IterLimit
	default:
		res.Status = Optimal
	}
	res.X = make([]float64, lp.NumVars)
	for i, bv := range t.basis {
		if bv < lp.NumVars {
			res.X[bv] = t.b[i]
		}
	}
	for j := range res.X {
		if res.X[j] < 0 && res.X[j] > -epsFeas {
			res.X[j] = 0
		}
	}
	res.Obj = 0
	for j, c := range lp.C {
		res.Obj += c * res.X[j]
	}
	return res, nil
}

func validate(lp *LP) error {
	if lp.NumVars < 0 {
		return fmt.Errorf("simplex: negative NumVars")
	}
	if len(lp.C) > lp.NumVars {
		return fmt.Errorf("simplex: objective longer than NumVars")
	}
	for i, r := range lp.Rows {
		for _, nz := range r.Coefs {
			if nz.Var < 0 || nz.Var >= lp.NumVars {
				return fmt.Errorf("simplex: row %d references var %d out of range", i, nz.Var)
			}
			if math.IsNaN(nz.Coef) || math.IsInf(nz.Coef, 0) {
				return fmt.Errorf("simplex: row %d has non-finite coefficient", i)
			}
		}
		if math.IsNaN(r.B) || math.IsInf(r.B, 0) {
			return fmt.Errorf("simplex: row %d has non-finite rhs", i)
		}
	}
	return nil
}

// tableau is the dense working state: a[m][ncols], rhs b[m], and the basic
// variable of each row.
type tableau struct {
	m        int
	ncols    int
	artStart int
	nart     int
	a        [][]float64
	b        []float64
	basis    []int
	dead     []bool // columns barred from entering (removed artificials)
}

func newTableau(lp *LP) *tableau {
	m := len(lp.Rows)
	n := lp.NumVars

	// Normalize rows to b >= 0, flipping sense as needed.
	type normRow struct {
		coefs []Nz
		sense Sense
		b     float64
	}
	rows := make([]normRow, m)
	nslack := 0
	for i, r := range lp.Rows {
		nr := normRow{coefs: r.Coefs, sense: r.Sense, b: r.B}
		if nr.b < 0 {
			flipped := make([]Nz, len(nr.coefs))
			for k, nz := range nr.coefs {
				flipped[k] = Nz{Var: nz.Var, Coef: -nz.Coef}
			}
			nr.coefs = flipped
			nr.b = -nr.b
			switch nr.sense {
			case LE:
				nr.sense = GE
			case GE:
				nr.sense = LE
			}
		}
		if nr.sense != EQ {
			nslack++
		}
		rows[i] = nr
	}
	nart := 0
	for _, r := range rows {
		if r.sense != LE {
			nart++
		}
	}

	t := &tableau{
		m:        m,
		ncols:    n + nslack + nart,
		artStart: n + nslack,
		nart:     nart,
		a:        make([][]float64, m),
		b:        make([]float64, m),
		basis:    make([]int, m),
		dead:     make([]bool, n+nslack+nart),
	}
	slackCol := n
	artCol := t.artStart
	for i, r := range rows {
		t.a[i] = make([]float64, t.ncols)
		for _, nz := range r.coefs {
			t.a[i][nz.Var] += nz.Coef
		}
		t.b[i] = r.b
		switch r.sense {
		case LE:
			t.a[i][slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.a[i][slackCol] = -1
			slackCol++
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}
	return t
}

// objValue computes cᵀ(basic solution).
func (t *tableau) objValue(cost []float64) float64 {
	v := 0.0
	for i, bv := range t.basis {
		v += cost[bv] * t.b[i]
	}
	return v
}

// run executes simplex iterations for the given cost vector until optimal,
// unbounded, or the iteration budget is exhausted. *iters accumulates.
func (t *tableau) run(cost []float64, maxIters int, iters *int) Status {
	// Reduced costs: z[j] = cost[j] - Σ_i cost[basis[i]]·a[i][j].
	z := make([]float64, t.ncols)
	copy(z, cost)
	for i, bv := range t.basis {
		cb := cost[bv]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := range z {
			z[j] -= cb * row[j]
		}
	}

	blandAfter := maxIters / 2
	for it := 0; ; it++ {
		if *iters >= maxIters {
			return IterLimit
		}
		// Entering column.
		enter := -1
		if it < blandAfter {
			best := -epsCost
			for j := 0; j < t.ncols; j++ {
				if !t.dead[j] && z[j] < best {
					best = z[j]
					enter = j
				}
			}
		} else { // Bland's rule: first improving column
			for j := 0; j < t.ncols; j++ {
				if !t.dead[j] && z[j] < -epsCost {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > epsPivot {
				ratio := t.b[i] / aij
				if ratio < bestRatio-epsPivot || (ratio < bestRatio+epsPivot && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter, z)
		*iters++
	}
}

// pivot makes column `enter` basic in row `leave`, updating the tableau and
// the reduced-cost vector z.
func (t *tableau) pivot(leave, enter int, z []float64) {
	prow := t.a[leave]
	p := prow[enter]
	inv := 1 / p
	for j := range prow {
		prow[j] *= inv
	}
	t.b[leave] *= inv
	prow[enter] = 1 // exact

	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		row := t.a[i]
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[enter] = 0 // exact
		t.b[i] -= f * t.b[leave]
		if t.b[i] < 0 && t.b[i] > -epsPivot {
			t.b[i] = 0
		}
	}
	f := z[enter]
	if f != 0 {
		for j := range z {
			z[j] -= f * prow[j]
		}
		z[enter] = 0
	}
	t.basis[leave] = enter
}

// driveOutArtificials pivots any artificial variable still basic at the end
// of phase 1 out of the basis (its value is ~0). If a row has no eligible
// pivot column the row is redundant and is zeroed out.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		pivCol := -1
		for j := 0; j < t.artStart; j++ {
			if !t.dead[j] && math.Abs(t.a[i][j]) > epsPivot {
				pivCol = j
				break
			}
		}
		if pivCol < 0 {
			// Redundant row: neutralize it.
			for j := range t.a[i] {
				t.a[i][j] = 0
			}
			t.a[i][t.basis[i]] = 1
			t.b[i] = 0
			continue
		}
		z := make([]float64, t.ncols) // throwaway reduced costs
		t.pivot(i, pivCol, z)
	}
}
