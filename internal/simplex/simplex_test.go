package simplex

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, lp *LP) *Result {
	t.Helper()
	res, err := Solve(lp, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimpleMax(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6  => min -x-y. Optimum at x=1.6,y=1.2.
	lp := &LP{
		NumVars: 2,
		C:       []float64{-1, -1},
		Rows: []Row{
			{Coefs: []Nz{{0, 1}, {1, 2}}, Sense: LE, B: 4},
			{Coefs: []Nz{{0, 3}, {1, 1}}, Sense: LE, B: 6},
		},
	}
	res := solveOK(t, lp)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[0]-1.6) > 1e-6 || math.Abs(res.X[1]-1.2) > 1e-6 {
		t.Errorf("x = %v", res.X)
	}
	if math.Abs(res.Obj-(-2.8)) > 1e-6 {
		t.Errorf("obj = %v", res.Obj)
	}
}

func TestEqualityRows(t *testing.T) {
	// x+y = 5, x-... : min x s.t. x+y=5, y<=3 => x=2.
	lp := &LP{
		NumVars: 2,
		C:       []float64{1, 0},
		Rows: []Row{
			{Coefs: []Nz{{0, 1}, {1, 1}}, Sense: EQ, B: 5},
			{Coefs: []Nz{{1, 1}}, Sense: LE, B: 3},
		},
	}
	res := solveOK(t, lp)
	if res.Status != Optimal || math.Abs(res.X[0]-2) > 1e-6 {
		t.Errorf("status %v x %v", res.Status, res.X)
	}
}

func TestGESense(t *testing.T) {
	// min x+y s.t. x+y >= 4, x >= 1 => obj 4.
	lp := &LP{
		NumVars: 2,
		C:       []float64{1, 1},
		Rows: []Row{
			{Coefs: []Nz{{0, 1}, {1, 1}}, Sense: GE, B: 4},
			{Coefs: []Nz{{0, 1}}, Sense: GE, B: 1},
		},
	}
	res := solveOK(t, lp)
	if res.Status != Optimal || math.Abs(res.Obj-4) > 1e-6 {
		t.Errorf("status %v obj %v", res.Status, res.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 3.
	lp := &LP{
		NumVars: 1,
		C:       []float64{0},
		Rows: []Row{
			{Coefs: []Nz{{0, 1}}, Sense: LE, B: 1},
			{Coefs: []Nz{{0, 1}}, Sense: GE, B: 3},
		},
	}
	res := solveOK(t, lp)
	if res.Status != Infeasible {
		t.Errorf("status = %v", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. x >= 0 (no upper bound).
	lp := &LP{NumVars: 1, C: []float64{-1}, Rows: []Row{{Coefs: []Nz{{0, 1}}, Sense: GE, B: 0}}}
	res := solveOK(t, lp)
	if res.Status != Unbounded {
		t.Errorf("status = %v", res.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -2 is x >= 2; min x => 2.
	lp := &LP{NumVars: 1, C: []float64{1}, Rows: []Row{{Coefs: []Nz{{0, -1}}, Sense: LE, B: -2}}}
	res := solveOK(t, lp)
	if res.Status != Optimal || math.Abs(res.X[0]-2) > 1e-6 {
		t.Errorf("status %v x %v", res.Status, res.X)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// x+y=4 twice plus x=1: solvable, redundant row must not break phase 1.
	lp := &LP{
		NumVars: 2,
		C:       []float64{0, 1},
		Rows: []Row{
			{Coefs: []Nz{{0, 1}, {1, 1}}, Sense: EQ, B: 4},
			{Coefs: []Nz{{0, 1}, {1, 1}}, Sense: EQ, B: 4},
			{Coefs: []Nz{{0, 1}}, Sense: EQ, B: 1},
		},
	}
	res := solveOK(t, lp)
	if res.Status != Optimal || math.Abs(res.X[1]-3) > 1e-6 {
		t.Errorf("status %v x %v", res.Status, res.X)
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// A classically degenerate LP (Beale-like). Must terminate.
	lp := &LP{
		NumVars: 4,
		C:       []float64{-0.75, 150, -0.02, 6},
		Rows: []Row{
			{Coefs: []Nz{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, Sense: LE, B: 0},
			{Coefs: []Nz{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, Sense: LE, B: 0},
			{Coefs: []Nz{{2, 1}}, Sense: LE, B: 1},
		},
	}
	res := solveOK(t, lp)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-(-0.05)) > 1e-6 {
		t.Errorf("obj = %v, want -0.05", res.Obj)
	}
}

func TestValidateErrors(t *testing.T) {
	if _, err := Solve(&LP{NumVars: 1, Rows: []Row{{Coefs: []Nz{{5, 1}}, Sense: LE, B: 1}}}, 0); err == nil {
		t.Error("out-of-range var accepted")
	}
	if _, err := Solve(&LP{NumVars: 1, Rows: []Row{{Coefs: []Nz{{0, math.NaN()}}, Sense: LE, B: 1}}}, 0); err == nil {
		t.Error("NaN coef accepted")
	}
	if _, err := Solve(&LP{NumVars: 1, Rows: []Row{{Coefs: []Nz{{0, 1}}, Sense: LE, B: math.Inf(1)}}}, 0); err == nil {
		t.Error("Inf rhs accepted")
	}
	if _, err := Solve(&LP{NumVars: -1}, 0); err == nil {
		t.Error("negative NumVars accepted")
	}
}

func TestEmptyLP(t *testing.T) {
	res := solveOK(t, &LP{NumVars: 2, C: []float64{1, 1}})
	if res.Status != Optimal || res.Obj != 0 {
		t.Errorf("empty LP: %v obj %v", res.Status, res.Obj)
	}
}

// TestRandomTransportation cross-checks simplex against a known optimum
// structure: transportation problems with equal supply/demand are feasible
// and the optimal objective is bounded below by zero and matches a greedy
// upper bound only when greedy is optimal; here we verify feasibility and
// that constraints hold at the solution.
func TestRandomTransportationFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		ns, nd := 2+rng.Intn(3), 2+rng.Intn(3)
		supply := make([]float64, ns)
		demand := make([]float64, nd)
		total := 0.0
		for i := range supply {
			supply[i] = float64(1 + rng.Intn(20))
			total += supply[i]
		}
		rem := total
		for j := 0; j < nd-1; j++ {
			demand[j] = math.Floor(rem * rng.Float64() / 2)
			rem -= demand[j]
		}
		demand[nd-1] = rem
		nv := ns * nd
		lp := &LP{NumVars: nv, C: make([]float64, nv)}
		for k := 0; k < nv; k++ {
			lp.C[k] = float64(1 + rng.Intn(9))
		}
		for i := 0; i < ns; i++ {
			row := Row{Sense: EQ, B: supply[i]}
			for j := 0; j < nd; j++ {
				row.Coefs = append(row.Coefs, Nz{Var: i*nd + j, Coef: 1})
			}
			lp.Rows = append(lp.Rows, row)
		}
		for j := 0; j < nd; j++ {
			row := Row{Sense: EQ, B: demand[j]}
			for i := 0; i < ns; i++ {
				row.Coefs = append(row.Coefs, Nz{Var: i*nd + j, Coef: 1})
			}
			lp.Rows = append(lp.Rows, row)
		}
		res := solveOK(t, lp)
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		// Check constraint residuals.
		for i := 0; i < ns; i++ {
			sum := 0.0
			for j := 0; j < nd; j++ {
				sum += res.X[i*nd+j]
			}
			if math.Abs(sum-supply[i]) > 1e-5 {
				t.Fatalf("trial %d: supply row %d residual %v", trial, i, sum-supply[i])
			}
		}
		for j := 0; j < nd; j++ {
			sum := 0.0
			for i := 0; i < ns; i++ {
				sum += res.X[i*nd+j]
			}
			if math.Abs(sum-demand[j]) > 1e-5 {
				t.Fatalf("trial %d: demand col %d residual %v", trial, j, sum-demand[j])
			}
		}
	}
}

// TestRandomVsBruteForce compares the simplex optimum against brute-force
// enumeration of basic solutions on tiny random LPs (2 vars, LE rows), where
// the optimum lies at a vertex of the polygon.
func TestRandomVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		// Random bounded-feasible LP: x,y >= 0, x <= a, y <= b, x+y <= c.
		a := float64(1 + rng.Intn(10))
		b := float64(1 + rng.Intn(10))
		c := float64(1 + rng.Intn(15))
		cx := float64(rng.Intn(11) - 5)
		cy := float64(rng.Intn(11) - 5)
		lp := &LP{
			NumVars: 2,
			C:       []float64{cx, cy},
			Rows: []Row{
				{Coefs: []Nz{{0, 1}}, Sense: LE, B: a},
				{Coefs: []Nz{{1, 1}}, Sense: LE, B: b},
				{Coefs: []Nz{{0, 1}, {1, 1}}, Sense: LE, B: c},
			},
		}
		res := solveOK(t, lp)
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		// Enumerate candidate vertices.
		best := math.Inf(1)
		try := func(x, y float64) {
			if x < -1e-9 || y < -1e-9 || x > a+1e-9 || y > b+1e-9 || x+y > c+1e-9 {
				return
			}
			if v := cx*x + cy*y; v < best {
				best = v
			}
		}
		pts := []float64{0, a, c, c - b}
		for _, x := range pts {
			try(x, 0)
			try(x, b)
			try(x, c-x)
		}
		try(0, 0)
		try(0, b)
		try(0, c)
		if math.Abs(res.Obj-best) > 1e-6 {
			t.Fatalf("trial %d: obj %v, brute force %v (a=%v b=%v c=%v cx=%v cy=%v)", trial, res.Obj, best, a, b, c, cx, cy)
		}
	}
}
