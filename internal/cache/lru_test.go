package cache

import (
	"fmt"
	"sync"
	"testing"
)

func lruKey(i int) Key {
	var k Key
	copy(k[:], fmt.Sprintf("key-%d", i))
	return k
}

func TestLRUBasics(t *testing.T) {
	var evicted []Key
	l := NewLRU[int](2, func(k Key, v int) { evicted = append(evicted, k) })
	l.Put(lruKey(1), 10)
	l.Put(lruKey(2), 20)
	if v, ok := l.Get(lruKey(1)); !ok || v != 10 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	// 1 is now most recent; inserting 3 must evict 2.
	l.Put(lruKey(3), 30)
	if _, ok := l.Get(lruKey(2)); ok {
		t.Fatalf("2 survived past capacity")
	}
	if len(evicted) != 1 || evicted[0] != lruKey(2) {
		t.Fatalf("eviction hook saw %v", evicted)
	}
	if v, ok := l.Get(lruKey(1)); !ok || v != 10 {
		t.Fatalf("recently-used entry evicted")
	}
	l.Put(lruKey(1), 11) // update in place
	if v, _ := l.Get(lruKey(1)); v != 11 {
		t.Fatalf("update lost")
	}
	if !l.Delete(lruKey(1)) || l.Delete(lruKey(1)) {
		t.Fatalf("Delete semantics broken")
	}
	st := l.Stats()
	if st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUConcurrent(t *testing.T) {
	l := NewLRU[int](32, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Put(lruKey(i%40), g*1000+i)
				l.Get(lruKey((i + 7) % 40))
			}
		}(g)
	}
	wg.Wait()
	if l.Len() > 32 {
		t.Fatalf("capacity exceeded: %d", l.Len())
	}
}
