package cache

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func k(s string) Key { return sha256.Sum256([]byte(s)) }

func TestMemoryPutGet(t *testing.T) {
	c, err := Open("", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k("a")); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(k("a"), []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get(k("a"))
	if !ok || string(v) != "alpha" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPutCopiesValue(t *testing.T) {
	c, _ := Open("", 8)
	buf := []byte("mutate-me")
	c.Put(k("a"), buf)
	buf[0] = 'X'
	if v, _ := c.Get(k("a")); string(v) != "mutate-me" {
		t.Errorf("cache shares caller storage: %q", v)
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := Open("", 2)
	c.Put(k("a"), []byte("1"))
	c.Put(k("b"), []byte("2"))
	c.Get(k("a")) // a is now more recent than b
	c.Put(k("c"), []byte("3"))
	if _, ok := c.Get(k("b")); ok {
		t.Error("LRU entry b survived eviction")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := c.Get(k(key)); !ok {
			t.Errorf("entry %s evicted out of order", key)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c, _ := Open("", 2)
	c.Put(k("a"), []byte("old"))
	c.Put(k("a"), []byte("new"))
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if v, _ := c.Get(k("a")); string(v) != "new" {
		t.Errorf("get = %q", v)
	}
}

func TestPersistReplay(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(k("a"), []byte("alpha"))
	c.Put(k("b"), []byte("beta"))
	c.Put(k("a"), []byte("alpha-v2")) // duplicate key: last wins on replay
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if st := c2.Stats(); st.Replayed != 3 || st.Entries != 2 {
		t.Fatalf("replay stats = %+v", st)
	}
	if v, ok := c2.Get(k("a")); !ok || string(v) != "alpha-v2" {
		t.Errorf("a = %q, %v (want last-written value)", v, ok)
	}
	if v, ok := c2.Get(k("b")); !ok || string(v) != "beta" {
		t.Errorf("b = %q, %v", v, ok)
	}
}

func TestReplayRespectsCapacity(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir, 8)
	c.Put(k("a"), []byte("1"))
	c.Put(k("b"), []byte("2"))
	c.Put(k("c"), []byte("3"))
	c.Close()

	c2, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 2 {
		t.Fatalf("len = %d, want capacity bound 2", c2.Len())
	}
	if _, ok := c2.Get(k("a")); ok {
		t.Error("oldest entry should have been evicted during replay")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir, 8)
	c.Put(k("a"), []byte("alpha"))
	c.Put(k("b"), []byte("beta"))
	c.Close()

	path := filepath.Join(dir, logName)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a record header plus part of a body.
	torn := append(append([]byte(nil), clean...), clean[:len(clean)/3]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Replayed != 2 {
		t.Fatalf("replayed = %d, want the 2 intact records", st.Replayed)
	}
	// The torn tail must be gone so new appends extend a clean log.
	c2.Put(k("c"), []byte("gamma"))
	c2.Close()
	c3, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if st := c3.Stats(); st.Replayed != 3 {
		t.Fatalf("after repair+append replayed = %d, want 3", st.Replayed)
	}
	if v, ok := c3.Get(k("c")); !ok || !bytes.Equal(v, []byte("gamma")) {
		t.Errorf("c = %q, %v", v, ok)
	}
}

func TestCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir, 8)
	c.Put(k("a"), []byte("alpha"))
	c.Put(k("b"), []byte("beta"))
	c.Close()

	path := filepath.Join(dir, logName)
	raw, _ := os.ReadFile(path)
	raw[recHdrLen+32+1] ^= 0xff // flip a bit inside the first record's value
	os.WriteFile(path, raw, 0o644)

	c2, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// CRC failure on record 1 means everything after it is untrusted too.
	if st := c2.Stats(); st.Replayed != 0 || st.Entries != 0 {
		t.Fatalf("replay past corrupt record: %+v", st)
	}
}

func TestPutTriggersCompaction(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 6 distinct puts at capacity 2: garbage (appended - live) crosses the
	// maxEntries threshold mid-run and the log is rewritten to the live set.
	for i := 0; i < 6; i++ {
		if err := c.Put(k(fmt.Sprintf("k%d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	c2, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st := c2.Stats()
	if st.Replayed >= 6 {
		t.Errorf("replayed %d records; compaction never ran", st.Replayed)
	}
	// The two live entries at close time survive.
	for i := 4; i < 6; i++ {
		if v, ok := c2.Get(k(fmt.Sprintf("k%d", i))); !ok || v[0] != byte(i) {
			t.Errorf("k%d = %v, %v", i, v, ok)
		}
	}
}

func TestOpenCompactsBloatedLog(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c.Put(k(fmt.Sprintf("k%d", i)), []byte{byte(i)})
	}
	c.Close()

	// Reopening with a small capacity makes most replayed records garbage;
	// Open compacts down to the live set.
	c2, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Len(); got != 4 {
		t.Fatalf("live entries = %d, want 4", got)
	}
	c2.Close()
	c3, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if st := c3.Stats(); st.Replayed != 4 {
		t.Errorf("after compaction replayed = %d, want 4", st.Replayed)
	}
	// The four most recent keys survive in LRU order.
	for i := 16; i < 20; i++ {
		if v, ok := c3.Get(k(fmt.Sprintf("k%d", i))); !ok || v[0] != byte(i) {
			t.Errorf("k%d = %v, %v", i, v, ok)
		}
	}
}

// Log compaction rewrites the file while readers and writers keep hitting
// the in-memory LRU. Run under -race, this pins down the two-lock design:
// compaction (under logMu) snapshots the live set under mu, and concurrent
// Put/Get traffic must neither race the snapshot nor corrupt the log.
func TestCompactionRacesConcurrentPutGet(t *testing.T) {
	dir := t.TempDir()
	const capacity = 8
	c, err := Open(dir, capacity)
	if err != nil {
		t.Fatal(err)
	}

	// Each writer Puts its own key space, so log append order for any one
	// key is well-defined (the documented serving-layer contract), while
	// the shared garbage counter forces compaction many times over.
	const (
		writers = 4
		readers = 4
		rounds  = 60
	)
	done := make(chan struct{})
	var wWg, rWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wWg.Add(1)
		go func(w int) {
			defer wWg.Done()
			for i := 0; i < rounds; i++ {
				key := k(fmt.Sprintf("w%d-k%d", w, i%6))
				if err := c.Put(key, []byte(fmt.Sprintf("w%d-v%d", w, i%6))); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		rWg.Add(1)
		go func(r int) {
			defer rWg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				key := k(fmt.Sprintf("w%d-k%d", i%writers, i%6))
				if v, ok := c.Get(key); ok {
					want := fmt.Sprintf("w%d-v%d", i%writers, i%6)
					if string(v) != want {
						t.Errorf("reader %d: key %s = %q, want %q", r, key[:4], v, want)
						return
					}
				}
			}
		}(r)
	}

	// Writers drain first, then the readers are told to stop.
	wWg.Wait()
	close(done)
	rWg.Wait()

	if c.Stats().Evictions == 0 {
		t.Error("workload never evicted — capacity too large to exercise compaction")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The surviving log replays cleanly and every replayed value is one the
	// workload actually wrote (value matches its key's writer and slot).
	c2, err := Open(dir, capacity)
	if err != nil {
		t.Fatalf("reopen after racy compaction: %v", err)
	}
	defer c2.Close()
	st := c2.Stats()
	// Compaction bounds the log: at most capacity live records plus
	// capacity not-yet-compacted garbage records survive to replay.
	if st.Replayed == 0 || st.Replayed > 2*capacity {
		t.Errorf("replayed = %d, want 1..%d", st.Replayed, 2*capacity)
	}
	if got := c2.Len(); got > capacity {
		t.Errorf("live entries after replay = %d, want <= %d", got, capacity)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < 6; i++ {
			if v, ok := c2.Get(k(fmt.Sprintf("w%d-k%d", w, i))); ok {
				if want := fmt.Sprintf("w%d-v%d", w, i); string(v) != want {
					t.Errorf("replayed w%d-k%d = %q, want %q", w, i, v, want)
				}
			}
		}
	}
}
