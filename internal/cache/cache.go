// Package cache is the content-addressed result store of the serving layer:
// fixed 32-byte (SHA-256) keys map to opaque value bytes through an
// in-memory LRU, optionally backed by an append-only on-disk log.
//
// The persistence design follows the minimally-ordered durable layout of
// MOD-style append-only structures: every Put appends one self-verifying
// record (magic, length, key, value, CRC) with a single write followed by
// fsync, and recovery is a forward scan that stops at the first record that
// fails to verify — a torn tail from a crash mid-append loses at most the
// record being written, never an earlier one. Open truncates the log back
// to the last verified record so subsequent appends extend a clean tail.
// Updates never rewrite in place; a re-Put of an existing key appends a
// fresh record and replay resolves duplicates last-wins, so the log is
// crash-consistent without any ordering beyond "header before fsync".
// Superseded and evicted records are garbage until compaction rewrites the
// log to the live LRU contents — at Open, and whenever the garbage backlog
// exceeds the cache capacity — so disk usage and replay time stay
// proportional to the live set, not to lifetime writes.
package cache

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Key is a content address: the SHA-256 of a canonically encoded instance.
type Key = [32]byte

const (
	logName     = "cache.aol"
	recMagic    = 0x4c53414f // "LSAO": linksynth append-only
	recHdrLen   = 8          // magic + value length
	recFixed    = recHdrLen + 32 + 4
	maxValueLen = 1 << 30
)

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Entries   int
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Replayed  int // entries recovered from the log at Open
}

// Cache is a bounded LRU over content-addressed byte values, safe for
// concurrent use. The zero value is not usable; construct with Open.
//
// Two locks keep the read path fast: mu guards the in-memory LRU and
// counters, logMu guards the file. A Put updates memory under mu, releases
// it, then appends under logMu — so cache hits never wait behind an fsync.
// Concurrent Puts of the same key could in principle land in the log in
// the opposite order of their memory updates, making a replayed state
// differ from the final in-memory one; the serving layer singleflights
// identical keys, so the race cannot occur there, and either value is a
// valid result for the key in any case (keys are content addresses).
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	ll         *list.List // front = most recently used
	items      map[Key]*list.Element
	hits       uint64
	misses     uint64
	evictions  uint64
	replayed   int

	logMu    sync.Mutex
	log      *os.File // nil when memory-only (or closed)
	logErr   error    // sticky: the log was lost mid-run (e.g. compaction reopen failed)
	path     string
	appended int // records currently in the log file
}

type entry struct {
	key Key
	val []byte
}

// Open creates a cache holding at most maxEntries values (<= 0 selects
// 1024). A non-empty dir enables persistence: records are appended to
// dir/cache.aol and replayed on the next Open, so a restarted server keeps
// serving previously solved instances without re-solving. A corrupt or torn
// log tail is truncated, keeping every record before it.
func Open(dir string, maxEntries int) (*Cache, error) {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	c := &Cache{
		maxEntries: maxEntries,
		ll:         list.New(),
		items:      make(map[Key]*list.Element),
	}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: create dir: %w", err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cache: open log: %w", err)
	}
	good, err := c.replay(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("cache: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("cache: seek: %w", err)
	}
	c.log = f
	c.path = path
	c.appended = c.replayed
	if c.needsCompaction() {
		if err := c.compact(); err != nil {
			c.log.Close()
			c.log = nil
			return nil, err
		}
	}
	return c, nil
}

// needsCompaction reports whether the garbage backlog (superseded or
// evicted records) has outgrown the cache capacity. Caller holds logMu, or
// has exclusive access during Open.
func (c *Cache) needsCompaction() bool {
	c.mu.Lock()
	live := c.ll.Len()
	c.mu.Unlock()
	return c.appended-live > c.maxEntries
}

// compact rewrites the log to exactly the live LRU contents (oldest first,
// so replay recency matches memory), via a temp file renamed into place.
// Caller holds logMu, or has exclusive access during Open.
func (c *Cache) compact() error {
	type kv struct {
		key Key
		val []byte
	}
	c.mu.Lock()
	live := make([]kv, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		live = append(live, kv{e.key, e.val})
	}
	c.mu.Unlock()

	tmp := c.path + ".compact"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cache: compact: %w", err)
	}
	for _, e := range live {
		if _, err := f.Write(encodeRecord(e.key, e.val)); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("cache: compact write: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cache: compact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache: compact close: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache: compact rename: %w", err)
	}
	// Past the rename the old handle points at an unlinked inode; if the
	// compacted file cannot be opened the log is gone for this process.
	// Mark the loss sticky so later Puts report it instead of fsyncing
	// writes into the orphaned file and claiming durability.
	nf, err := os.OpenFile(c.path, os.O_RDWR, 0o644)
	if err != nil {
		c.log.Close()
		c.log = nil
		c.logErr = fmt.Errorf("cache: reopen after compact: %w", err)
		return c.logErr
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		c.log.Close()
		c.log = nil
		c.logErr = fmt.Errorf("cache: seek after compact: %w", err)
		return c.logErr
	}
	c.log.Close()
	c.log = nf
	c.appended = len(live)
	return nil
}

// replay scans the log from the start, loading every verifiable record in
// order (so in-memory recency mirrors append order, and duplicate keys
// resolve last-wins). It returns the offset just past the last good record.
func (c *Cache) replay(f *os.File) (int64, error) {
	var off int64
	rd := io.Reader(f)
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("cache: seek: %w", err)
	}
	hdr := make([]byte, recHdrLen)
	for {
		if _, err := io.ReadFull(rd, hdr); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != recMagic {
			return off, nil
		}
		vlen := binary.LittleEndian.Uint32(hdr[4:8])
		if vlen > maxValueLen {
			return off, nil
		}
		body := make([]byte, 32+int(vlen)+4)
		if _, err := io.ReadFull(rd, body); err != nil {
			return off, nil // torn body
		}
		sum := binary.LittleEndian.Uint32(body[32+vlen:])
		if crc32.ChecksumIEEE(body[:32+vlen]) != sum {
			return off, nil // bit rot or torn write inside the record
		}
		var k Key
		copy(k[:], body[:32])
		c.putLocked(k, body[32:32+vlen])
		c.replayed++
		off += int64(recHdrLen + len(body))
	}
}

// Get returns the value stored under key and marks it most recently used.
// The returned slice is the cache's backing storage: callers must treat it
// as read-only.
func (c *Cache) Get(key Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key, evicting the least recently used entry past the
// capacity bound, and — when persistence is on — appends a durable record
// before returning. The value bytes are copied. Readers never block on the
// disk write: the in-memory update completes (and releases its lock)
// before the append begins.
func (c *Cache) Put(key Key, val []byte) error {
	c.mu.Lock()
	c.putLocked(key, append([]byte(nil), val...))
	c.mu.Unlock()

	c.logMu.Lock()
	defer c.logMu.Unlock()
	if c.logErr != nil {
		return c.logErr
	}
	if c.log == nil {
		return nil
	}
	if _, err := c.log.Write(encodeRecord(key, val)); err != nil {
		return fmt.Errorf("cache: append: %w", err)
	}
	if err := c.log.Sync(); err != nil {
		return fmt.Errorf("cache: sync: %w", err)
	}
	c.appended++
	if c.needsCompaction() {
		return c.compact()
	}
	return nil
}

// encodeRecord renders one self-verifying log record.
func encodeRecord(key Key, val []byte) []byte {
	rec := make([]byte, recFixed+len(val))
	binary.LittleEndian.PutUint32(rec[0:4], recMagic)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
	copy(rec[recHdrLen:], key[:])
	copy(rec[recHdrLen+32:], val)
	sum := crc32.ChecksumIEEE(rec[recHdrLen : recHdrLen+32+len(val)])
	binary.LittleEndian.PutUint32(rec[recHdrLen+32+len(val):], sum)
	return rec
}

func (c *Cache) putLocked(key Key, val []byte) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.maxEntries {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*entry).key)
		c.evictions++
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Replayed:  c.replayed,
	}
}

// Close releases the log file. The in-memory contents remain usable, but a
// closed persistent cache no longer records new entries durably.
func (c *Cache) Close() error {
	c.logMu.Lock()
	defer c.logMu.Unlock()
	if c.log == nil {
		return nil
	}
	err := c.log.Close()
	c.log = nil
	return err
}
