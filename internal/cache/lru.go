package cache

import (
	"container/list"
	"sync"
)

// LRU is a bounded least-recently-used map from content addresses to
// arbitrary values, safe for concurrent use. It backs the caches whose
// values are live objects rather than byte payloads — the compiled-plan
// cache and the serving layer's warm solver sessions — so unlike Cache it
// has no persistence layer; an optional eviction hook lets owners observe
// entries falling out.
type LRU[V any] struct {
	mu         sync.Mutex
	maxEntries int
	ll         *list.List // front = most recently used
	items      map[Key]*list.Element
	onEvict    func(Key, V)
	hits       uint64
	misses     uint64
	evictions  uint64
}

type lruEntry[V any] struct {
	key Key
	val V
}

// NewLRU returns an LRU holding at most maxEntries values (<= 0 selects
// 128). onEvict, when non-nil, is called for every entry displaced by
// capacity or removed by Delete — outside the cache lock is NOT guaranteed;
// hooks must not call back into the LRU.
func NewLRU[V any](maxEntries int, onEvict func(Key, V)) *LRU[V] {
	if maxEntries <= 0 {
		maxEntries = 128
	}
	return &LRU[V]{
		maxEntries: maxEntries,
		ll:         list.New(),
		items:      make(map[Key]*list.Element),
		onEvict:    onEvict,
	}
}

// Get returns the value stored under key and marks it most recently used.
func (l *LRU[V]) Get(key Key) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		l.misses++
		var zero V
		return zero, false
	}
	l.hits++
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// Put stores val under key, evicting the least recently used entry past the
// capacity bound.
func (l *LRU[V]) Put(key Key, val V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[key]; ok {
		l.ll.MoveToFront(el)
		el.Value.(*lruEntry[V]).val = val
		return
	}
	l.items[key] = l.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for l.ll.Len() > l.maxEntries {
		last := l.ll.Back()
		l.ll.Remove(last)
		e := last.Value.(*lruEntry[V])
		delete(l.items, e.key)
		l.evictions++
		if l.onEvict != nil {
			l.onEvict(e.key, e.val)
		}
	}
}

// Delete removes the entry under key, if any, reporting whether one was
// removed. The eviction hook fires for removed entries.
func (l *LRU[V]) Delete(key Key) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		return false
	}
	l.ll.Remove(el)
	e := el.Value.(*lruEntry[V])
	delete(l.items, e.key)
	if l.onEvict != nil {
		l.onEvict(e.key, e.val)
	}
	return true
}

// Keys returns every live key, most recently used first, without touching
// recency. The list-order iteration is deterministic, so callers may range
// over the result in rendering paths.
func (l *LRU[V]) Keys() []Key {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Key, 0, l.ll.Len())
	for el := l.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry[V]).key)
	}
	return out
}

// Len returns the number of live entries.
func (l *LRU[V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}

// LRUStats is a snapshot of an LRU's effectiveness counters.
type LRUStats struct {
	Entries   int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats returns a snapshot of the effectiveness counters.
func (l *LRU[V]) Stats() LRUStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LRUStats{Entries: l.ll.Len(), Hits: l.hits, Misses: l.misses, Evictions: l.evictions}
}
