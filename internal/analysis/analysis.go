// Package analysis is a self-contained, stdlib-only analogue of
// golang.org/x/tools/go/analysis, sized for this repository's needs. It
// exists because the codebase carries invariants that are visible in the
// syntax of the code — deterministic iteration in the solver packages, no
// wall-clock or global randomness below the API boundary, mutex discipline
// on shared registries, context propagation into the sched pool, and
// pool/scratch return discipline — and those invariants are worth checking
// mechanically on every build rather than re-auditing by hand on every
// review.
//
// The model mirrors go/analysis: an Analyzer inspects one type-checked
// package at a time through a Pass and reports Diagnostics. The runner
// (run.go) applies the repo-wide suppression protocol: a diagnostic is
// silenced by a `//lint:<token> <justification>` comment on the flagged
// line or the line above it, and a directive without a justification is
// itself a diagnostic. Packages are loaded either from source via `go list
// -export` (load.go, used by the standalone driver and tests) or from a
// `go vet -vettool` config (cmd/linksynthvet).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Suppress is the //lint: directive token that silences this
	// analyzer's diagnostics (e.g. "ordered" for maporder). Empty means
	// the analyzer's Name.
	Suppress string
	// Scope, when non-nil, restricts the analyzer to packages whose
	// import path it accepts. Nil means every package.
	Scope func(pkgPath string) bool
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass) error
}

// SuppressToken returns the directive token that silences a.
func (a *Analyzer) SuppressToken() string {
	if a.Suppress != "" {
		return a.Suppress
	}
	return a.Name
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object denoted by id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.TypesInfo.ObjectOf(id) }

// Diagnostic is one finding, positioned in the Pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// WithStack walks every file in the pass in source order, calling fn with
// each node and the stack of its ancestors (outermost first, not including
// n itself). Returning false prunes the subtree under n.
func (p *Pass) WithStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// EnclosingFunc returns the innermost function body enclosing the top of
// the stack: the nearest *ast.FuncDecl or *ast.FuncLit, or nil. A FuncLit
// is its own unit — a goroutine closure does not inherit its creator's
// locks — which is exactly the conservatism the guardedby check wants.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// FuncBody returns the body of a node returned by EnclosingFunc.
func FuncBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// IsPkgFunc reports whether e denotes the package-level function pkg.name
// (resolved through the type info, so aliased imports are handled).
func IsPkgFunc(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.ObjectOf(sel.Sel)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ExprString renders a simple expression (identifiers, selectors, derefs,
// index expressions) to a canonical string for structural comparison, e.g.
// matching the `c.mu` in a lock call against the `c` in a field access.
// Unrenderable expressions yield "".
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := ExprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.StarExpr:
		return ExprString(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return ExprString(e.X)
		}
	case *ast.IndexExpr:
		base := ExprString(e.X)
		idx := ExprString(e.Index)
		if base == "" || idx == "" {
			return ""
		}
		return base + "[" + idx + "]"
	case *ast.BasicLit:
		return e.Value
	}
	return ""
}
