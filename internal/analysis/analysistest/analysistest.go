// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the stdlib-only
// framework in internal/analysis.
//
// Fixtures live under <testdata>/src/, one directory per fixture package.
// The harness copies the tree into a temp module (module path "fixture"),
// loads it through the production loader — so fixtures type-check against
// real stdlib export data — and runs the analyzer through the production
// runner, suppression protocol included. Expectations are comments of the
// form:
//
//	for k := range m { // want `ranges over map`
//
// where the backquoted text is a regexp that must match a diagnostic
// reported on that line. Every expectation must be matched and every
// diagnostic must be expected.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile("// want `([^`]*)`")

// Run loads <testdata>/src into a temp module, applies a to every fixture
// package, and reports mismatches between diagnostics and expectations as
// test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer) {
	t.Helper()
	root := t.TempDir()
	src := filepath.Join(testdata, "src")
	if err := copyTree(src, root); err != nil {
		t.Fatalf("copying fixtures: %v", err)
	}
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fixture\n\ngo 1.23\n"), 0o666); err != nil {
		t.Fatal(err)
	}

	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, root)
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Position.Filename)
		if err != nil {
			rel = f.Position.Filename
		}
		key := posKey{rel, f.Position.Line}
		matched := false
		for i, w := range wants[key] {
			if w.used {
				continue
			}
			if w.re.MatchString(f.Message) {
				wants[key][i].used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", rel, f.Position.Line, f.Analyzer, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

func collectWants(t *testing.T, root string) map[posKey][]want {
	t.Helper()
	wants := make(map[posKey][]want)
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", rel, i+1, m[1], err)
				}
				key := posKey{rel, i + 1}
				wants[key] = append(wants[key], want{re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func copyTree(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o777)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o666)
	})
}
