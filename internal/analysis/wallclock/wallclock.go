// Package wallclock forbids wall-clock reads and global randomness in the
// deterministic solver packages.
//
// core.Fingerprint, plan-cache keys, and the golden byte-identical output
// contract all assume a solve is a pure function of (Input, Options): the
// seed arrives via Options.Seed, and anything time-shaped must flow in
// from the caller. A `time.Now()` (or `time.Since`, which reads the clock
// internally) in these packages is either dead determinism risk or a
// timestamp about to leak into output; global `math/rand` functions draw
// from a process-wide, unseedable-per-solve source that differs across
// nodes and runs. Explicitly seeded sources (`rand.New(rand.NewSource(
// opt.Seed))`) are the sanctioned idiom and are not flagged.
//
// Stats-only timing is legitimate and common — justify those sites with
// `//lint:wallclock <why>` so the reviewer's decision is recorded next to
// the read.
package wallclock

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the wallclock check.
var Analyzer = &analysis.Analyzer{
	Name:  "wallclock",
	Doc:   "forbids time.Now and global math/rand in the deterministic solver packages",
	Scope: analysis.DeterministicScope,
	Run:   run,
}

// clockFuncs are the package time functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededCtors are the math/rand constructors that take an explicit seed or
// source and therefore keep determinism in the caller's hands.
var seededCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(sel.Sel)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Type().(*types.Signature).Recv() != nil {
			return true // methods (e.g. (*rand.Rand).Intn) are fine
		}
		switch obj.Pkg().Path() {
		case "time":
			if clockFuncs[obj.Name()] {
				pass.Reportf(sel.Pos(), "%s.%s reads the wall clock in a deterministic package; plumb time through Options or annotate //lint:wallclock <why>", obj.Pkg().Name(), obj.Name())
			}
		case "math/rand", "math/rand/v2":
			if !seededCtors[obj.Name()] {
				pass.Reportf(sel.Pos(), "%s.%s draws from the global process-wide source; use rand.New(rand.NewSource(opt.Seed)) or annotate //lint:wallclock <why>", obj.Pkg().Name(), obj.Name())
			}
		}
		return true
	})
	return nil
}
