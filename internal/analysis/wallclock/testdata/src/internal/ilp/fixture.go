// Package ilp is a wallclock fixture standing in for a deterministic
// solver package (the scope matches by path suffix).
package ilp

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock`
}

func globalDraw() int {
	return rand.Intn(10) // want `rand.Intn draws from the global process-wide source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the global`
}

// seeded randomness flows from the caller: the sanctioned idiom.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) // methods on an owned *rand.Rand are fine
}

// constructions that do not read the clock are fine.
func pureTime(d time.Duration) time.Time {
	return time.Unix(0, 0).Add(d)
}

// justified stats-only timing is recorded, not flagged.
func timed(f func()) time.Duration {
	t0 := time.Now() //lint:wallclock stats-only timing; never reaches output bytes
	f()
	//lint:wallclock stats-only timing; never reaches output bytes
	return time.Since(t0)
}

func bareDirective() int64 {
	//lint:wallclock
	return time.Now().UnixNano() // want `suppression requires a justification`
}
