// Package other is outside the deterministic scope: the serving layer may
// read the wall clock freely.
package other

import "time"

func uptime(start time.Time) time.Duration {
	return time.Since(start)
}
