package wallclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer)
}
