// Package g exercises the guardedby annotation grammar: sibling mutexes,
// type-qualified mutexes, the Locked-suffix convention, synchronous
// closure inheritance, and the wrong-mutex negative case.
package g

import (
	"sort"
	"sync"
)

type registry struct {
	mu    sync.Mutex
	peers map[string]int // guarded by mu
}

func locked(r *registry) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.peers)
}

func unlocked(r *registry) int {
	return len(r.peers) // want `field peers is guarded by "mu" but accessed without holding it`
}

func afterUnlock(r *registry) int {
	r.mu.Lock()
	n := len(r.peers)
	r.mu.Unlock()
	return n + len(r.peers) // want `accessed without holding it`
}

// flushLocked follows the caller-holds-the-lock naming convention.
func flushLocked(r *registry) {
	r.peers["x"] = 1
}

// snapshotSorted's comparator closure runs synchronously inside the
// critical section and inherits the lock.
func snapshotSorted(r *registry) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ks := make([]string, 0, len(r.peers))
	for k := range r.peers {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return r.peers[ks[i]] < r.peers[ks[j]] })
	return ks
}

// spawn hands the field to a goroutine: the creator's lock does not
// travel with it.
func spawn(r *registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		r.peers["x"] = 1 // want `accessed without holding it`
	}()
}

type twoLocks struct {
	mu    sync.Mutex
	other sync.Mutex
	n     int // guarded by mu
}

// wrongMutex holds a lock — just not the one the annotation names.
func wrongMutex(t *twoLocks) int {
	t.other.Lock()
	defer t.other.Unlock()
	return t.n // want `field n is guarded by "mu" but accessed without holding it`
}

// Type-qualified annotation: the guard lives on another struct.
type server struct {
	mu sync.Mutex
}

type job struct {
	status string // guarded by server.mu
}

func (s *server) set(j *job) {
	s.mu.Lock()
	j.status = "running"
	s.mu.Unlock()
}

func read(j *job) string {
	return j.status // want `field status is guarded by "server.mu" but accessed without holding it`
}

// earlyExit unlocks only on the branch that returns: the fall-through
// path is still inside the critical section.
func earlyExit(r *registry, bad bool) int {
	r.mu.Lock()
	if bad {
		r.mu.Unlock()
		return 0
	}
	n := len(r.peers)
	r.mu.Unlock()
	return n
}

// maybeUnlocked releases the lock on a branch that falls through, so the
// access below may run unlocked.
func maybeUnlocked(r *registry, early bool) int {
	r.mu.Lock()
	if early {
		r.mu.Unlock()
	}
	n := len(r.peers) // want `accessed without holding it`
	if !early {
		r.mu.Unlock()
	}
	return n
}

// justified sites document why the unlocked access is safe.
func construct() *registry {
	r := &registry{}
	//lint:guardedby not yet shared: the registry is still construction-local
	r.peers = map[string]int{}
	return r
}
