// Package guardedby enforces `// guarded by <mu>` field annotations: every
// access to an annotated struct field must occur while the named sibling
// mutex is held.
//
// The registry's peer map, the cache LRUs, the session park list, and the
// gather goroutine's job state are all documented as mutex-guarded and
// audited by hand on every change. This check turns the doc comment into a
// contract. Annotate a field with a line or doc comment containing
// `guarded by mu` (naming a sibling mutex field) and the analyzer verifies
// each read or write site:
//
//   - the access sits after a `x.mu.Lock()` (or `RLock()`) on the same
//     receiver chain and before any non-deferred `Unlock`, scanning the
//     enclosing function in source order; or
//   - the enclosing function's name ends in "Locked", the repo's
//     caller-holds-the-lock convention.
//
// A function literal is its own unit unless it runs synchronously in its
// creator (an immediate call or a plain call argument — not `go`, not
// `defer`): a goroutine does not inherit its creator's locks, but a
// sort.Slice comparator does. The scan is flow-insensitive across
// branches — except that an Unlock inside a terminating branch (the
// `if bad { mu.Unlock(); return }` early-exit idiom) does not end the
// critical section for the code after the branch — which errs on the
// side of flagging; silence a considered site with
// `//lint:guardedby <why>`.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the guardedby check.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "checks that fields annotated `// guarded by <mu>` are accessed under the named mutex",
	Run:  run,
}

var annotationRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// guard is one parsed annotation: `guarded by mu` names a sibling mutex
// field reached through the same receiver chain as the access; `guarded by
// Server.mu` names a mutex field on another type, and any holder of that
// type satisfies the guard.
type guard struct {
	owner string // type name for a qualified annotation, "" for sibling
	field string // mutex field name
}

func (g guard) String() string {
	if g.owner == "" {
		return g.field
	}
	return g.owner + "." + g.field
}

func run(pass *analysis.Pass) error {
	guarded := collectAnnotations(pass)
	if len(guarded) == 0 {
		return nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		g, ok := guarded[selection.Obj()]
		if !ok {
			return true
		}
		var match func(ast.Expr) bool
		if g.owner == "" {
			base := analysis.ExprString(sel.X)
			if base == "" {
				pass.Reportf(sel.Pos(), "field %s is guarded by %q but the receiver expression is too complex to verify; hoist it to a local or annotate //lint:guardedby <why>", sel.Sel.Name, g)
				return true
			}
			muExpr := base + "." + g.field
			match = func(e ast.Expr) bool { return analysis.ExprString(e) == muExpr }
		} else {
			match = func(e ast.Expr) bool { return typeQualifiedMatch(pass, e, g) }
		}
		if !heldAt(pass, stack, sel.Pos(), match) {
			pass.Reportf(sel.Pos(), "field %s is guarded by %q but accessed without holding it", sel.Sel.Name, g)
		}
		return true
	})
	return nil
}

// typeQualifiedMatch reports whether e denotes the mutex field g.field on
// a value of type g.owner (e.g. `s.mu` with s a *Server for "Server.mu").
func typeQualifiedMatch(pass *analysis.Pass, e ast.Expr, g guard) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != g.field {
		return false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == g.owner
}

// collectAnnotations maps annotated field objects to their guard.
func collectAnnotations(pass *analysis.Pass) map[types.Object]guard {
	out := make(map[types.Object]guard)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				spec := annotationIn(field.Doc)
				if spec == "" {
					spec = annotationIn(field.Comment)
				}
				if spec == "" {
					continue
				}
				g := guard{field: spec}
				if i := strings.LastIndex(spec, "."); i >= 0 {
					g = guard{owner: spec[:i], field: spec[i+1:]}
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = g
					}
				}
			}
			return true
		})
	}
	return out
}

func annotationIn(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	if m := annotationRE.FindStringSubmatch(cg.Text()); m != nil {
		return m[1]
	}
	return ""
}

// heldAt reports whether a mutex matching match is held at pos, walking
// the chain of enclosing functions from the innermost outward as long as
// lock state is inherited (synchronous function literals).
func heldAt(pass *analysis.Pass, stack []ast.Node, pos token.Pos, match func(ast.Expr) bool) bool {
	at := pos
	for i := len(stack) - 1; i >= 0; i-- {
		var body *ast.BlockStmt
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			if lockedConvention(fn.Name.Name) {
				return true
			}
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			continue
		}
		if lockStateAt(body, at, match) {
			return true
		}
		if _, ok := stack[i].(*ast.FuncDecl); ok {
			return false // a named function is the outermost unit
		}
		// A FuncLit inherits its creator's lock state only when it runs
		// synchronously: called immediately or passed as a plain call
		// argument. `go` and `defer` escape the locked region.
		if !synchronousLit(stack[:i]) {
			return false
		}
		at = stack[i].Pos()
	}
	return false
}

// lockedConvention reports the caller-holds-the-lock naming convention.
func lockedConvention(name string) bool {
	return len(name) > len("Locked") && name[len(name)-len("Locked"):] == "Locked"
}

// synchronousLit inspects the ancestors directly above a FuncLit (the
// stack excludes the lit itself) and reports whether the literal executes
// on the creator's goroutine inside the creator's critical section.
func synchronousLit(stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	if _, ok := stack[len(stack)-1].(*ast.CallExpr); !ok {
		return false
	}
	if len(stack) >= 2 {
		switch stack[len(stack)-2].(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		}
	}
	return true
}

// lockStateAt replays the Lock/Unlock events of the matched mutex within
// body, in source order, and reports whether the mutex is held at pos.
// Deferred unlocks do not end the critical section. Nested function
// literals are opaque: their lock activity belongs to their own unit.
// Events inside a terminating branch that does not contain pos are
// discarded: the Unlock in `if bad { mu.Unlock(); return }` cannot flow
// to the statements after the if, so it must not end their critical
// section.
func lockStateAt(body *ast.BlockStmt, pos token.Pos, match func(ast.Expr) bool) bool {
	if body == nil {
		return false
	}
	type event struct {
		pos  token.Pos
		lock bool
	}
	var events []event
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && match(sel.X) {
				var lock bool
				known := true
				switch sel.Sel.Name {
				case "Lock", "RLock":
					lock = true
				case "Unlock", "RUnlock":
					lock = false
				default:
					known = false
				}
				if known && !underDefer(stack) && !inDeadBranch(stack, pos) {
					events = append(events, event{call.Pos(), lock})
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := false
	for _, e := range events {
		if e.pos >= pos {
			break
		}
		held = e.lock
	}
	return held
}

// underDefer reports whether the node whose ancestor stack is given runs
// inside a defer statement.
func underDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// inDeadBranch reports whether the node with the given ancestor stack sits
// in a statement list that terminates (ends in return or panic) and whose
// enclosing branch does not contain pos — control executing the node can
// never reach pos. The stack's first element is the function body itself,
// which always contains pos and so never counts.
func inDeadBranch(stack []ast.Node, pos token.Pos) bool {
	for i := 1; i < len(stack); i++ {
		var list []ast.Stmt
		switch n := stack[i].(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			continue
		}
		if stack[i].Pos() <= pos && pos < stack[i].End() {
			continue
		}
		if terminates(list) {
			return true
		}
	}
	return false
}

// terminates reports whether a statement list cannot fall through: its
// last statement is a return or a panic call.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
