// Package sched is a minimal stand-in for the repo's worker pool; ctxflow
// recognizes it by path suffix.
package sched

// Pool is a bounded worker pool.
type Pool struct{}

// New builds a pool.
func New(n int) *Pool { return &Pool{} }

// Submit enqueues one task.
func (p *Pool) Submit(f func()) { f() }

// Ordered fans out n tasks and merges results in index order.
func Ordered(p *Pool, n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}
