// Package core is a ctxflow fixture standing in for a solver package (the
// scope matches by path suffix).
package core

import (
	"context"

	"fixture/internal/sched"
)

// SolveOn fans out on a caller-owned pool but offers no cancellation.
func SolveOn(pool *sched.Pool) { // want `exported SolveOn takes a \*sched.Pool but takes no context.Context`
	pool.Submit(func() {})
}

// SolveOnContext is the shape the contract wants.
func SolveOnContext(ctx context.Context, pool *sched.Pool) {
	if ctx.Err() != nil {
		return
	}
	pool.Submit(func() {})
}

// Fanout builds and drives a pool internally with no way to stop it.
func Fanout(n int) { // want `exported Fanout drives the sched pool but takes no context.Context`
	p := sched.New(0)
	sched.Ordered(p, n, func(int) {})
}

// helper is unexported: its callers own the contract.
func helper(pool *sched.Pool) {
	pool.Submit(func() {})
}

// Mint fabricates a context below the boundary.
func Mint(pool *sched.Pool) error { // want `takes a \*sched.Pool but takes no context.Context`
	ctx := context.Background() // want `context.Background minted below the API boundary`
	return ctx.Err()
}

// Solve is the deliberate no-cancellation convenience wrapper; the
// justification marks the boundary.
//
//lint:ctxflow API-boundary convenience wrapper; SolveOnContext is the cancellable entry
func Solve(pool *sched.Pool) {
	SolveOnContext(context.TODO(), pool) // want `context.TODO minted below the API boundary`
}

// Pure has nothing to cancel.
func Pure(x int) int { return x * 2 }
