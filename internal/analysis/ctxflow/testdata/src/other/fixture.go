// Package other is outside the solver scope: the serving layer mints its
// own root contexts legitimately.
package other

import (
	"context"

	"fixture/internal/sched"
)

// Serve owns the process lifecycle, so a root context is correct here.
func Serve(pool *sched.Pool) {
	ctx := context.Background()
	_ = ctx
	pool.Submit(func() {})
}
