// Package ctxflow enforces context propagation on the solver path.
//
// Below the public API boundary, cancellation must flow in from the
// caller: a serving layer that cannot cancel an abandoned request's solve
// leaks a worker until the solve finishes on its own. Two rules, scoped to
// the solver packages (internal/core, internal/incr):
//
//   - `context.Background()` and `context.TODO()` may not be minted inside
//     the scope: accept a ctx parameter instead. The one legitimate shape —
//     a nil-guard in a convenience wrapper at the API boundary — carries a
//     `//lint:ctxflow <why>` justification.
//
//   - an exported function or method that spawns work on the sched pool
//     (it has a *sched.Pool parameter, calls into package sched, or builds
//     a pool) must accept a context.Context, so callers can cancel the
//     fan-out it starts. Deliberate non-cancellable wrappers are annotated
//     the same way.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name:  "ctxflow",
	Doc:   "requires context.Context on exported sched-pool entry points and forbids context.Background below the API boundary",
	Scope: analysis.SolverScope,
	Run:   run,
}

func run(pass *analysis.Pass) error {
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, name := range []string{"Background", "TODO"} {
				if analysis.IsPkgFunc(pass.TypesInfo, n.Fun, "context", name) {
					pass.Reportf(n.Pos(), "context.%s minted below the API boundary; accept a ctx parameter (annotate the boundary shim with //lint:ctxflow <why>)", name)
				}
			}
		case *ast.FuncDecl:
			checkDecl(pass, n)
		}
		return true
	})
	return nil
}

func checkDecl(pass *analysis.Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || fn.Body == nil {
		return
	}
	if hasCtxParam(pass, fn.Type) {
		return
	}
	if why := spawnsSchedWork(pass, fn); why != "" {
		pass.Reportf(fn.Name.Pos(), "exported %s %s but takes no context.Context; callers cannot cancel the work it spawns (annotate //lint:ctxflow <why> if deliberately non-cancellable)", fn.Name.Name, why)
	}
}

func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// spawnsSchedWork reports how fn engages the sched pool: via a pool-typed
// parameter, or by referencing package sched in its body. Empty string
// means it does not.
func spawnsSchedWork(pass *analysis.Pass, fn *ast.FuncDecl) string {
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if isSchedType(pass.TypeOf(field.Type)) {
				return "takes a *sched.Pool"
			}
		}
	}
	found := ""
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(sel.Sel)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if isSchedPath(obj.Pkg().Path()) {
			found = "drives the sched pool"
			return false
		}
		return true
	})
	return found
}

func isSchedType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && isSchedPath(obj.Pkg().Path())
}

func isSchedPath(path string) bool {
	return path == "internal/sched" || strings.HasSuffix(path, "/internal/sched")
}
