// Package poolleak checks that pooled objects are returned on every path.
//
// Two idioms are covered:
//
//   - sync.Pool: a value taken with `v := p.Get()` must be handed back with
//     `p.Put(v)` in the same function — deferred, or positioned so no
//     return statement can escape between the Get and the Put. A Get whose
//     result is returned to the caller transfers ownership and is exempt.
//     A leak here is silent: the pool just stops amortizing and the
//     allocator quietly eats the regression.
//
//   - acquire/release pairs: a call to a function or method named
//     `acquireX` (the phase-2 scratch-buffer convention) must be paired
//     with a `releaseX` call on the same receiver in the same function.
//
// Sites where ownership genuinely moves elsewhere carry a
// `//lint:poolleak <why>` justification.
package poolleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the poolleak check.
var Analyzer = &analysis.Analyzer{
	Name: "poolleak",
	Doc:  "checks sync.Pool Get/Put and acquire/release pairing on every path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		checkFunc(pass, fn)
		return true
	})
	return nil
}

type get struct {
	pos token.Pos
	obj types.Object // variable holding the pooled value; nil if discarded
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	var gets []get
	var putPositions = make(map[types.Object][]token.Pos) // non-deferred Put(v)
	deferredPut := make(map[types.Object]bool)
	var returns []token.Pos
	returned := make(map[types.Object]bool)
	acquires := make(map[string]token.Pos) // "recv.acquireX" -> first call
	releases := make(map[string]bool)      // "recv.releaseX" present

	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				walk(m.Call, true)
				// A deferred closure runs before the function's callers
				// resume; Puts inside it count as deferred.
				if lit, ok := m.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, true)
				}
				return false
			case *ast.ReturnStmt:
				returns = append(returns, m.Pos())
				for _, res := range m.Results {
					if obj := resolve(pass, res); obj != nil {
						returned[obj] = true
					}
				}
			case *ast.ExprStmt:
				if isPoolGet(pass, m.X) {
					pass.Reportf(m.Pos(), "sync.Pool Get result discarded; the object can never be returned to the pool")
				}
			case *ast.AssignStmt:
				for i, rhs := range m.Rhs {
					if !isPoolGet(pass, rhs) {
						continue
					}
					var obj types.Object
					if len(m.Lhs) > i {
						obj = resolve(pass, m.Lhs[i])
					}
					gets = append(gets, get{m.Pos(), obj})
				}
			case *ast.CallExpr:
				if name, recv, ok := methodName(pass, m); ok {
					if isPoolType(recvType(pass, m)) && name == "Put" && len(m.Args) == 1 {
						if obj := resolve(pass, m.Args[0]); obj != nil {
							if deferred {
								deferredPut[obj] = true
							} else {
								putPositions[obj] = append(putPositions[obj], m.Pos())
							}
						}
					}
					if rest, ok := strings.CutPrefix(name, "acquire"); ok && rest != "" {
						key := recv + ".release" + rest
						if _, seen := acquires[key]; !seen {
							acquires[key] = m.Pos()
						}
					}
					if rest, ok := strings.CutPrefix(name, "release"); ok && rest != "" {
						releases[recv+".release"+rest] = true
					}
				}
			}
			return true
		})
	}
	walk(fn.Body, false)

	for _, g := range gets {
		if g.obj == nil {
			continue // handled at the call site or bound to _
		}
		if deferredPut[g.obj] || returned[g.obj] {
			continue
		}
		puts := putPositions[g.obj]
		if len(puts) == 0 {
			pass.Reportf(g.pos, "%s is taken from a sync.Pool but never returned with Put (or transferred via return); use defer pool.Put(%s)", g.obj.Name(), g.obj.Name())
			continue
		}
		first := puts[0]
		for _, p := range puts[1:] {
			if p < first {
				first = p
			}
		}
		for _, r := range returns {
			if r > g.pos && r < first {
				pass.Reportf(g.pos, "%s is not returned to its sync.Pool on every path: a return escapes before the first Put; use defer pool.Put(%s)", g.obj.Name(), g.obj.Name())
				break
			}
		}
	}
	for key, pos := range acquires {
		if !releases[key] {
			i := strings.LastIndex(key, ".")
			pass.Reportf(pos, "acquire call has no matching %s in this function; scratch buffers must be released on every path", key[i+1:])
		}
	}
}

// resolve maps v or &v to the variable object it denotes.
func resolve(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.ObjectOf(e)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return resolve(pass, e.X)
		}
	case *ast.TypeAssertExpr:
		return resolve(pass, e.X)
	case *ast.ParenExpr:
		return resolve(pass, e.X)
	}
	return nil
}

// isPoolGet reports whether e is (possibly a type assertion around) a
// sync.Pool Get call.
func isPoolGet(pass *analysis.Pass, e ast.Expr) bool {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		return isPoolGet(pass, ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	name, _, ok := methodName(pass, call)
	return ok && name == "Get" && isPoolType(recvType(pass, call))
}

// methodName returns the selector name and rendered receiver of a method
// call expression.
func methodName(pass *analysis.Pass, call *ast.CallExpr) (name, recv string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		if id, isIdent := call.Fun.(*ast.Ident); isIdent {
			return id.Name, "", true
		}
		return "", "", false
	}
	return sel.Sel.Name, analysis.ExprString(sel.X), true
}

func recvType(pass *analysis.Pass, call *ast.CallExpr) types.Type {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return pass.TypeOf(sel.X)
}

func isPoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}
