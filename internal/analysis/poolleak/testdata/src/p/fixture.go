// Package p exercises poolleak: sync.Pool Get/Put pairing on every path
// and the acquire/release scratch-buffer convention.
package p

import (
	"bytes"
	"sync"
)

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// deferred is the canonical shape.
func deferred() string {
	b := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(b)
	b.Reset()
	b.WriteString("x")
	return b.String()
}

// closureDefer returns the buffer from a deferred closure.
func closureDefer() string {
	b := bufPool.Get().(*bytes.Buffer)
	defer func() {
		b.Reset()
		bufPool.Put(b)
	}()
	return b.String()
}

// leak never hands the buffer back.
func leak() string {
	b := bufPool.Get().(*bytes.Buffer) // want `never returned with Put`
	b.Reset()
	return b.String()
}

// earlyReturn can escape between Get and Put.
func earlyReturn(cond bool) string {
	b := bufPool.Get().(*bytes.Buffer) // want `not returned to its sync.Pool on every path`
	b.Reset()
	if cond {
		return ""
	}
	out := b.String()
	bufPool.Put(b)
	return out
}

// straightLine puts before the only return: fine without defer.
func straightLine() string {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	out := b.String()
	bufPool.Put(b)
	return out
}

// transfer moves ownership to the caller.
func transfer() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// discard loses the object outright.
func discard() {
	bufPool.Get() // want `Get result discarded`
}

// justified handoff: ownership moves into a registry the caller drains.
var parked []*bytes.Buffer

func park() {
	//lint:poolleak buffer is parked in the registry and Put by the drainer
	b := bufPool.Get().(*bytes.Buffer)
	parked = append(parked, b)
}

// Scratch-buffer convention: acquire must pair with release.
type scratch struct{ bufs [][]int }

func (s *scratch) acquireBufs(n int) []int { return make([]int, n) }
func (s *scratch) releaseBufs([]int)       {}

func paired(s *scratch) {
	buf := s.acquireBufs(4)
	defer s.releaseBufs(buf)
	buf[0] = 1
}

func unpaired(s *scratch) int {
	buf := s.acquireBufs(4) // want `no matching releaseBufs`
	return buf[0]
}
