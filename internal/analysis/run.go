package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one post-suppression diagnostic, resolved to a file position.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// directive is one parsed //lint:<tokens> comment.
type directive struct {
	tokens        []string
	justification string
}

func (d *directive) matches(token string) bool {
	for _, t := range d.tokens {
		if t == token {
			return true
		}
	}
	return false
}

// parseDirective recognizes `lint:<token>[,<token>...] [justification]`
// comment text. The leading `//` has already been stripped.
func parseDirective(text string) (*directive, bool) {
	const prefix = "lint:"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimPrefix(text, prefix)
	var spec string
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		spec, rest = rest[:i], strings.TrimSpace(rest[i+1:])
	} else {
		spec, rest = rest, ""
	}
	if spec == "" {
		return nil, false
	}
	return &directive{tokens: strings.Split(spec, ","), justification: rest}, true
}

// directiveIndex maps file -> line -> directive for one package.
type directiveIndex map[string]map[int]*directive

func indexDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := make(directiveIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				d, ok := parseDirective(text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]*directive)
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = d
			}
		}
	}
	return idx
}

// lookup finds a directive covering line (same line or the line above).
func (idx directiveIndex) lookup(file string, line int) *directive {
	lines := idx[file]
	if lines == nil {
		return nil
	}
	if d := lines[line]; d != nil {
		return d
	}
	return lines[line-1]
}

// Stats summarizes one Run for trend reporting: per-analyzer counts of
// findings that survived suppression and of sites silenced by a justified
// //lint directive. CI publishes these next to the benchmark artifacts so
// a creeping suppression count is as visible as a creeping finding count.
type Stats struct {
	Findings   map[string]int
	Suppressed map[string]int
}

// Run applies every in-scope analyzer to every package and returns the
// findings that survive suppression, sorted by position. A `//lint:<token>
// <justification>` comment on the diagnostic's line or the line above
// silences the diagnostic; a matching directive with no justification text
// is reported instead of honored — every suppression must say why.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunStats(pkgs, analyzers)
	return findings, err
}

// RunStats is Run plus the per-analyzer finding and suppression tallies.
func RunStats(pkgs []*Package, analyzers []*Analyzer) ([]Finding, Stats, error) {
	stats := Stats{Findings: map[string]int{}, Suppressed: map[string]int{}}
	for _, a := range analyzers {
		stats.Findings[a.Name] = 0
		stats.Suppressed[a.Name] = 0
	}
	var out []Finding
	for _, pkg := range pkgs {
		idx := indexDirectives(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, Stats{}, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
			token := a.SuppressToken()
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if strings.HasSuffix(pos.Filename, "_test.go") {
					continue
				}
				if dir := idx.lookup(pos.Filename, pos.Line); dir != nil && dir.matches(token) {
					if dir.justification == "" {
						stats.Findings[a.Name]++
						out = append(out, Finding{
							Position: pos,
							Analyzer: a.Name,
							Message:  fmt.Sprintf("//lint:%s suppression requires a justification comment", token),
						})
					} else {
						stats.Suppressed[a.Name]++
					}
					continue
				}
				stats.Findings[a.Name]++
				out = append(out, Finding{Position: pos, Analyzer: a.Name, Message: d.Message})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, stats, nil
}
