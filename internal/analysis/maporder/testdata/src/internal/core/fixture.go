// Package core is a maporder fixture standing in for a deterministic
// solver package (the scope matches by path suffix).
package core

import (
	"maps"
	"slices"
	"sort"
)

// appendKeys builds a slice in iteration order: order-sensitive.
func appendKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is observable`
		out = append(out, k)
	}
	return out
}

// sumValues is commutative integer accumulation: order-free.
func sumValues(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// floatSum is NOT order-free: float addition is not associative.
func floatSum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want `map iteration order is observable`
		sum += v
	}
	return sum
}

// buildSet writes map entries keyed by the iterated key: order-free.
func buildSet(m map[string]int, out map[string]bool) {
	for k, v := range m {
		if v > 0 {
			out[k] = true
		}
	}
}

// counts accumulates into map cells and locals: order-free.
func counts(m map[string]int) map[string]int {
	out := make(map[string]int)
	n := 0
	for k, v := range m {
		scaled := v * 2
		out[k] += scaled
		n++
		if v < 0 {
			delete(out, k)
			continue
		}
	}
	_ = n
	return out
}

// firstWins assigns to a variable that outlives the loop: order decides
// the final value.
func firstWins(m map[string]int) string {
	best := ""
	for k := range m { // want `map iteration order is observable`
		best = k
	}
	return best
}

// sortedAfter collects then sorts: the loop's emit order is erased by the
// sort, so no annotation is needed.
func sortedAfter(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// conditionalCollect guards the append but still sorts afterwards: the
// collected set, not its order, decides the result.
func conditionalCollect(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		if v > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// enumerated embeds an accumulator in the appended value: sorting cannot
// repair the order-dependent indices baked into the elements.
func enumerated(m map[string]int) []string {
	var out []string
	prefix := ""
	for k := range m { // want `map iteration order is observable`
		out = append(out, prefix+k)
		prefix += "."
	}
	sort.Strings(out)
	return out
}

// latch drives a flag to one constant: reachable in any order, same result.
func latch(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v == 0 {
			found = true
		}
	}
	return found
}

// lastWins drives the flag both ways, so the final value belongs to the
// last iteration.
func lastWins(m map[string]bool) bool {
	state := false
	for _, v := range m { // want `map iteration order is observable`
		if v {
			state = true
		} else {
			state = false
		}
	}
	return state
}

// anyNegative early-returns out of the loop; the boolean result is the
// same whichever entry matches first, which the justification records.
func anyNegative(m map[string]int) bool {
	//lint:ordered existential scan: the result is identical whichever entry matches first
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

// bareDirective suppresses without saying why: that is itself a finding.
func bareDirective(m map[string]int) []string {
	var out []string
	//lint:ordered
	for k := range m { // want `suppression requires a justification`
		out = append(out, k)
	}
	return out
}

// iterKeys leaks the randomized maps.Keys order.
func iterKeys(m map[string]int) []string {
	ks := maps.Keys(m) // want `maps.Keys/Values yields keys in randomized order`
	return slices.Collect(ks)
}

// sortedKeys materializes through slices.Sorted: canonical.
func sortedKeys(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}
