// Package other is outside the deterministic and rendering scopes:
// maporder must stay quiet here even for order-sensitive loops.
package other

func appendKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
