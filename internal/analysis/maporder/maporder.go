// Package maporder flags map iteration whose order can leak into output
// inside the deterministic solver packages.
//
// The solver's contract — byte-identical results across serial/parallel,
// cold/warm, and any cluster entry node — dies the moment a `for range`
// over a map feeds an order-sensitive computation: appended slices, string
// building, first-wins assignments, early exits. Go randomizes map
// iteration order per run precisely so such dependence cannot hide, but
// golden tests only sample a few instances; this check makes the rule
// syntactic.
//
// A loop is accepted without annotation when its body is provably
// order-insensitive: every statement only writes map/set entries, performs
// commutative integer accumulation (`+=`, `-=`, `|=`, `&=`, `^=`, `++`,
// `--`), mutates locals scoped to the iteration, deletes map keys,
// latches a constant (`found = true`), or branches into more of the same.
// The collect-then-sort idiom is also accepted: a body that only appends
// iteration-local values to a slice is order-free when the first later
// statement touching that slice sorts it. Anything else — including float
// accumulation, which is not associative — needs the keys sorted first or
// a `//lint:ordered <why>` justification.
//
// `maps.Keys`/`maps.Values` iterators inherit the same randomness and are
// flagged unless immediately materialized through `slices.Sorted` or
// `slices.SortedFunc`.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      "flags order-sensitive map iteration in the deterministic solver packages",
	Suppress: "ordered",
	Scope:    analysis.OrderedScope,
	Run:      run,
}

func run(pass *analysis.Pass) error {
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			t := pass.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			c := &checker{pass: pass, loop: n}
			if c.orderInsensitive(n.Body) && c.postConditionsHold(stack) {
				return true
			}
			pass.Reportf(n.For, "map iteration order is observable here; sort the keys first or annotate //lint:ordered <why>")
		case *ast.CallExpr:
			if !analysis.IsPkgFunc(pass.TypesInfo, n.Fun, "maps", "Keys") &&
				!analysis.IsPkgFunc(pass.TypesInfo, n.Fun, "maps", "Values") {
				return true
			}
			if sortedImmediately(pass, stack) {
				return true
			}
			pass.Reportf(n.Pos(), "maps.Keys/Values yields keys in randomized order; wrap in slices.Sorted or annotate //lint:ordered <why>")
		}
		return true
	})
	return nil
}

// sortedImmediately reports whether the call at the top of the stack is a
// direct argument of slices.Sorted/SortedFunc/SortedStableFunc.
func sortedImmediately(pass *analysis.Pass, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, name := range []string{"Sorted", "SortedFunc", "SortedStableFunc"} {
		if analysis.IsPkgFunc(pass.TypesInfo, call.Fun, "slices", name) {
			return true
		}
	}
	return false
}

// checker examines one range-over-map loop. The body walk proves each
// statement order-insensitive on its own; writes whose safety depends on
// code outside the loop (collect-then-sort appends, constant latches) are
// recorded and discharged by postConditionsHold.
type checker struct {
	pass    *analysis.Pass
	loop    *ast.RangeStmt
	appends []string          // slice targets that must be sorted after the loop
	latches map[string]string // lvalue -> the single constant it may be set to
}

// orderInsensitive reports whether every statement of the loop body has the
// same effect regardless of iteration order.
func (c *checker) orderInsensitive(body *ast.BlockStmt) bool {
	for _, st := range body.List {
		if !c.stmtInsensitive(st) {
			return false
		}
	}
	return true
}

func (c *checker) stmtInsensitive(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.AssignStmt:
		return c.assignInsensitive(st)
	case *ast.IncDecStmt:
		return c.commutativeTarget(st.X)
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
			if b, ok := c.pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "delete" {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if st.Init != nil && !c.stmtInsensitive(st.Init) {
			return false
		}
		if !c.orderInsensitive(st.Body) {
			return false
		}
		if st.Else != nil {
			return c.stmtInsensitive(st.Else)
		}
		return true
	case *ast.BlockStmt:
		return c.orderInsensitive(st)
	case *ast.SwitchStmt:
		for _, cl := range st.Body.List {
			cc, ok := cl.(*ast.CaseClause)
			if !ok {
				return false
			}
			for _, s := range cc.Body {
				if !c.stmtInsensitive(s) {
					return false
				}
			}
		}
		return true
	case *ast.RangeStmt:
		return c.orderInsensitive(st.Body)
	case *ast.ForStmt:
		if st.Init != nil && !c.stmtInsensitive(st.Init) {
			return false
		}
		if st.Post != nil && !c.stmtInsensitive(st.Post) {
			return false
		}
		return c.orderInsensitive(st.Body)
	case *ast.DeclStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE // break/goto exit in encounter order
	case *ast.EmptyStmt:
		return true
	}
	return false
}

// assignInsensitive accepts per-iteration locals (`:=` and writes to
// objects declared inside the loop), map/set element writes, commutative
// integer accumulation, self-appends of iteration-local values (recorded
// for the sorted-after-loop check), and constant latches.
func (c *checker) assignInsensitive(st *ast.AssignStmt) bool {
	if st.Tok == token.DEFINE {
		return true
	}
	if st.Tok == token.ASSIGN {
		if target, ok := c.selfAppend(st); ok {
			c.appends = append(c.appends, target)
			return true
		}
		for i, lhs := range st.Lhs {
			if c.plainWriteTarget(lhs) {
				continue
			}
			if len(st.Rhs) == len(st.Lhs) && c.latchWrite(lhs, st.Rhs[i]) {
				continue
			}
			return false
		}
		return true
	}
	// Compound assignment: only commutative integer accumulation is
	// order-free (float addition is not associative; string += is
	// concatenation in encounter order).
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		return c.commutativeTarget(st.Lhs[0])
	}
	return false
}

// selfAppend matches `x = append(x, v...)` where every appended value is
// built from iteration-local state — the element set is then independent
// of visit order, and sorting the slice afterwards erases the remaining
// order dependence.
func (c *checker) selfAppend(st *ast.AssignStmt) (string, bool) {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return "", false
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return "", false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := c.pass.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
		return "", false
	}
	target := analysis.ExprString(st.Lhs[0])
	if target == "" || len(call.Args) < 1 || analysis.ExprString(call.Args[0]) != target {
		return "", false
	}
	for _, arg := range call.Args[1:] {
		if !c.iterationLocalValue(arg) {
			return "", false
		}
	}
	return target, true
}

// iterationLocalValue reports whether e is built purely from per-iteration
// state: loop-local variables (including the range key/value), constants,
// composite literals and arithmetic over those, and len/cap of those. A
// value that reads accumulated loop state would make the appended elements
// themselves order-dependent, which sorting cannot repair.
func (c *checker) iterationLocalValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		if e.Name == "_" {
			return true
		}
		switch c.pass.ObjectOf(e).(type) {
		case *types.Const, *types.TypeName, *types.Builtin, *types.Nil:
			return true
		}
		return c.loopLocal(e)
	case *ast.SelectorExpr:
		return c.iterationLocalValue(e.X)
	case *ast.IndexExpr:
		return c.iterationLocalValue(e.X) && c.iterationLocalValue(e.Index)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if _, isField := kv.Key.(*ast.Ident); !isField && !c.iterationLocalValue(kv.Key) {
					return false
				}
				if !c.iterationLocalValue(kv.Value) {
					return false
				}
				continue
			}
			if !c.iterationLocalValue(el) {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		// Builtins and conversions only: a real call could read (or
		// advance) accumulated state behind the loop's back.
		switch fn := e.Fun.(type) {
		case *ast.Ident:
			switch c.pass.ObjectOf(fn).(type) {
			case *types.Builtin, *types.TypeName:
			default:
				return false
			}
		default:
			return false
		}
		for _, arg := range e.Args {
			if !c.iterationLocalValue(arg) {
				return false
			}
		}
		return true
	case *ast.UnaryExpr:
		return c.iterationLocalValue(e.X)
	case *ast.BinaryExpr:
		return c.iterationLocalValue(e.X) && c.iterationLocalValue(e.Y)
	case *ast.ParenExpr:
		return c.iterationLocalValue(e.X)
	case *ast.StarExpr:
		return c.iterationLocalValue(e.X)
	}
	return false
}

// latchWrite matches `x = <literal constant>`: every iteration that runs
// the statement drives x to the same value, so the final state depends only
// on whether any iteration ran it, not on order. Two latch sites driving
// the same target to different constants are last-writer-wins and rejected
// in postConditionsHold.
func (c *checker) latchWrite(lhs, rhs ast.Expr) bool {
	target := analysis.ExprString(lhs)
	if target == "" {
		return false
	}
	var val string
	switch rhs := rhs.(type) {
	case *ast.BasicLit:
		val = rhs.Value
	case *ast.Ident:
		if _, ok := c.pass.ObjectOf(rhs).(*types.Const); !ok {
			if _, ok := c.pass.ObjectOf(rhs).(*types.Nil); !ok {
				return false
			}
		}
		val = rhs.Name
	default:
		return false
	}
	if c.latches == nil {
		c.latches = make(map[string]string)
	}
	if prev, ok := c.latches[target]; ok && prev != val {
		c.latches[target] = "\x00conflict"
	} else {
		c.latches[target] = val
	}
	return true // a conflict is rejected in postConditionsHold
}

// postConditionsHold discharges the obligations the body walk deferred:
// every recorded append target is sorted by the first later statement that
// touches it, and no latch target is driven to two different constants.
func (c *checker) postConditionsHold(stack []ast.Node) bool {
	for _, v := range c.latches {
		if v == "\x00conflict" {
			return false
		}
	}
	for _, target := range c.appends {
		if !c.sortedAfterLoop(stack, target) {
			return false
		}
	}
	return true
}

// sortedAfterLoop reports whether, in the statement list enclosing the
// loop, the first following statement that mentions target is a
// sort.X(target, ...) or slices.SortX(target, ...) call.
func (c *checker) sortedAfterLoop(stack []ast.Node, target string) bool {
	list := enclosingList(stack, c.loop)
	if list == nil {
		return false
	}
	after := false
	for _, st := range list {
		if st == ast.Stmt(c.loop) {
			after = true
			continue
		}
		if !after || !mentions(st, target) {
			continue
		}
		return c.isSortOf(st, target)
	}
	return false
}

// enclosingList finds the statement list that directly contains the loop.
func enclosingList(stack []ast.Node, loop *ast.RangeStmt) []ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.BlockStmt:
			for _, st := range n.List {
				if st == ast.Stmt(loop) {
					return n.List
				}
			}
		case *ast.CaseClause:
			for _, st := range n.Body {
				if st == ast.Stmt(loop) {
					return n.Body
				}
			}
		case *ast.CommClause:
			for _, st := range n.Body {
				if st == ast.Stmt(loop) {
					return n.Body
				}
			}
		}
	}
	return nil
}

// mentions reports whether any expression inside st renders to target.
func mentions(st ast.Stmt, target string) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && analysis.ExprString(e) == target {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSortOf reports whether st sorts target: sort.Ints/Strings/Float64s/
// Slice/SliceStable or slices.Sort/SortFunc/SortStableFunc with target as
// the first argument.
func (c *checker) isSortOf(st ast.Stmt, target string) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if analysis.ExprString(call.Args[0]) != target {
		return false
	}
	for _, name := range []string{"Ints", "Strings", "Float64s", "Slice", "SliceStable", "Stable", "Sort"} {
		if analysis.IsPkgFunc(c.pass.TypesInfo, call.Fun, "sort", name) {
			return true
		}
	}
	for _, name := range []string{"Sort", "SortFunc", "SortStableFunc"} {
		if analysis.IsPkgFunc(c.pass.TypesInfo, call.Fun, "slices", name) {
			return true
		}
	}
	return false
}

// plainWriteTarget accepts `=` targets whose final value cannot depend on
// iteration order: map elements (distinct keys write distinct cells; the
// annotation covers the same-key case poorly, but a map write is the
// canonical set-build idiom), the blank identifier, and loop-local
// variables.
func (c *checker) plainWriteTarget(lhs ast.Expr) bool {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return true
		}
		return c.loopLocal(lhs)
	case *ast.IndexExpr:
		t := c.pass.TypeOf(lhs.X)
		if t == nil {
			return false
		}
		_, ok := t.Underlying().(*types.Map)
		return ok
	}
	return false
}

// commutativeTarget accepts integer accumulators (and any loop-local).
func (c *checker) commutativeTarget(e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok && c.loopLocal(id) {
		return true
	}
	if idx, ok := e.(*ast.IndexExpr); ok {
		if t := c.pass.TypeOf(idx.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return integerType(c.pass.TypeOf(e))
			}
		}
	}
	if _, ok := e.(*ast.Ident); !ok {
		if _, ok := e.(*ast.SelectorExpr); !ok {
			return false
		}
	}
	return integerType(c.pass.TypeOf(e))
}

func integerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsUnsigned) != 0
}

// loopLocal reports whether id resolves to an object declared within the
// loop (including the range key/value variables): its final state cannot
// outlive an iteration, so writes to it are order-free.
func (c *checker) loopLocal(id *ast.Ident) bool {
	obj := c.pass.ObjectOf(id)
	return obj != nil && obj.Pos() >= c.loop.Pos() && obj.Pos() < c.loop.End()
}
