package analysis

import "strings"

// DeterministicPackages are the package paths (matched by suffix, so test
// fixture modules exercise the same logic) whose output feeds
// core.Fingerprint: any iteration-order or wall-clock dependence here
// shows up as byte-level nondeterminism in solver output, cache keys, or
// plan fingerprints. maporder and wallclock are scoped to these.
var DeterministicPackages = []string{
	"internal/core",
	"internal/incr",
	"internal/constraint",
	"internal/table",
	"internal/hasse",
	"internal/ilp",
	"internal/store", // snapshot/record bytes are content-addressed: encoding must be canonical
}

// RenderingPackages produce externally observable byte streams — /metrics
// scrapes, /healthz peer listings, stats reports — that must be stable
// across nodes and runs so diffs, dashboards, and the cluster smoke tests
// can compare them byte-for-byte. maporder covers these too; wallclock
// does not (serving-layer timing is legitimately wall-clock).
var RenderingPackages = []string{
	"internal/metrics",
	"internal/service",
	"internal/cluster",
}

// SolverPackages are the packages below the public API boundary where
// context must flow in from callers rather than be minted locally; ctxflow
// is scoped to these.
var SolverPackages = []string{
	"internal/core",
	"internal/incr",
}

// DeterministicScope reports whether pkgPath is one of the packages under
// the determinism contract.
func DeterministicScope(pkgPath string) bool { return matchAny(pkgPath, DeterministicPackages) }

// OrderedScope is DeterministicScope plus the rendering packages; it is
// maporder's scope.
func OrderedScope(pkgPath string) bool {
	return matchAny(pkgPath, DeterministicPackages) || matchAny(pkgPath, RenderingPackages)
}

// SolverScope reports whether pkgPath is under the context-propagation
// contract.
func SolverScope(pkgPath string) bool { return matchAny(pkgPath, SolverPackages) }

func matchAny(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}
