package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Load type-checks the packages matching patterns (run from dir) and
// returns the non-dependency, non-test targets. It drives `go list -export
// -deps`, which compiles every dependency and hands back gc export data,
// so each target package is parsed from source but imports resolve through
// the compiler's own type information — the same scheme `go vet` uses.
// Only the production GoFiles are analyzed; _test.go files are outside the
// determinism and concurrency contracts the analyzers encode.
func Load(dir string, patterns ...string) ([]*Package, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var targets []*listPkg
	exports := make(map[string]string) // package path -> export data file
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard && len(lp.GoFiles) > 0 {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	// One importer shared across all targets: identical dependency
	// packages resolve to identical *types.Package pointers, and export
	// data is decoded once.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var out []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, lp *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := &types.Config{Importer: imp}
	if lp.Module != nil && lp.Module.GoVersion != "" {
		conf.GoVersion = "go" + lp.Module.GoVersion
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:      lp.ImportPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
