package binning

import (
	"testing"

	"repro/internal/table"
)

// Predicates that cannot be normalized into ranges (e.g. using !=) take
// the atom-endpoint fallback in Intervalize; the indistinguishability
// guarantee must still hold for them.
func TestIntervalizeFallbackNe(t *testing.T) {
	p := table.And(table.Atom{Col: "Age", Op: table.OpNe, Val: table.Int(20)})
	ivs := Intervalize([]table.Predicate{p})
	age, ok := ivs["Age"]
	if !ok {
		t.Fatal("no Age intervals")
	}
	// 19 and 20 must not share a bin; 20 forms its own singleton.
	if age.Find(19) == age.Find(20) {
		t.Error("19 and 20 share a bin under Age != 20")
	}
	if age.Find(20) == age.Find(21) {
		t.Error("20 and 21 share a bin under Age != 20")
	}
	if age.Find(21) != age.Find(100) {
		t.Error("21 and 100 should share a bin")
	}
}

func TestIntervalizeFallbackMixedOps(t *testing.T) {
	// One normalizable and one non-normalizable predicate on the same col.
	p1 := table.And(table.Between("Age", 10, 20)...)
	p2 := table.And(table.Atom{Col: "Age", Op: table.OpNe, Val: table.Int(15)})
	ivs := Intervalize([]table.Predicate{p1, p2})
	age := ivs["Age"]
	s := table.NewSchema(table.IntCol("Age"))
	for v := int64(0); v < 30; v++ {
		for w := v + 1; w < 30; w++ {
			if age.Find(v) != age.Find(w) {
				continue
			}
			for _, p := range []table.Predicate{p1, p2} {
				if p.Eval(s, []table.Value{table.Int(v)}) != p.Eval(s, []table.Value{table.Int(w)}) {
					t.Fatalf("%d and %d share a bin but differ on %s", v, w, p)
				}
			}
		}
	}
}

func TestIntervalizeFallbackAllOps(t *testing.T) {
	// Exercise every operator branch of the fallback path by combining an
	// unrepresentable atom with each representable one.
	ops := []table.Op{table.OpEq, table.OpLt, table.OpLe, table.OpGt, table.OpGe, table.OpNe}
	for _, op := range ops {
		p := table.And(
			table.Atom{Col: "X", Op: op, Val: table.Int(10)},
			table.Atom{Col: "X", Op: table.OpNe, Val: table.Int(5)}, // forces fallback
		)
		ivs := Intervalize([]table.Predicate{p})
		x := ivs["X"]
		s := table.NewSchema(table.IntCol("X"))
		for v := int64(0); v < 20; v++ {
			for w := v + 1; w < 20; w++ {
				if x.Find(v) == x.Find(w) &&
					p.Eval(s, []table.Value{table.Int(v)}) != p.Eval(s, []table.Value{table.Int(w)}) {
					t.Fatalf("op %v: %d and %d share a bin but predicate distinguishes them", op, v, w)
				}
			}
		}
	}
}

func TestIntervalizeStringAtomsIgnoredInFallback(t *testing.T) {
	p := table.And(
		table.Atom{Col: "Rel", Op: table.OpNe, Val: table.String("Owner")},
		table.Atom{Col: "Age", Op: table.OpNe, Val: table.Int(5)},
	)
	ivs := Intervalize([]table.Predicate{p})
	if _, ok := ivs["Rel"]; ok {
		t.Error("string column intervalized")
	}
	if _, ok := ivs["Age"]; !ok {
		t.Error("int column missing")
	}
}
