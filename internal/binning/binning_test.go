package binning

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/table"
)

func mustPred(t *testing.T, src string) table.Predicate {
	t.Helper()
	cc, err := constraint.ParseCC("cc: count(" + src + ") = 1")
	if err != nil {
		t.Fatal(err)
	}
	return cc.Pred
}

// TestExample41 reproduces the intervalization of Example 4.1: CC3 uses
// Age <= 24, splitting Age into [min,24] and [25,max].
func TestExample41(t *testing.T) {
	preds := []table.Predicate{
		mustPred(t, "Rel = 'Owner', Area = 'Chicago'"),
		mustPred(t, "Rel = 'Owner', Area = 'NYC'"),
		mustPred(t, "Age <= 24, Area = 'Chicago'"),
		mustPred(t, "Multi = 1, Area = 'Chicago'"),
	}
	ivs := Intervalize(preds)
	age, ok := ivs["Age"]
	if !ok {
		t.Fatal("no Age intervals")
	}
	if age.Len() != 2 {
		t.Fatalf("age intervals = %d (%v), want 2", age.Len(), age.Cuts)
	}
	if age.Find(24) != 0 || age.Find(25) != 1 || age.Find(0) != 0 || age.Find(114) != 1 {
		t.Errorf("interval mapping wrong: %v", age.Cuts)
	}
	// Multi is an integer equality column: it gets cuts too.
	if _, ok := ivs["Multi"]; !ok {
		t.Error("Multi not intervalized")
	}
	// Rel/Area are strings: no intervals.
	if _, ok := ivs["Rel"]; ok {
		t.Error("string column intervalized")
	}
}

func TestIntervalizeRangeBounds(t *testing.T) {
	ivs := Intervalize([]table.Predicate{mustPred(t, "Age in [10,14]"), mustPred(t, "Age in [13,64]")})
	age := ivs["Age"]
	// Cut points: min, 10, 13, 15, 65.
	want := []int64{math.MinInt64, 10, 13, 15, 65}
	if len(age.Cuts) != len(want) {
		t.Fatalf("cuts = %v", age.Cuts)
	}
	for i, w := range want {
		if age.Cuts[i] != w {
			t.Errorf("cut[%d] = %d, want %d", i, age.Cuts[i], w)
		}
	}
	// Values in [13,14] share a bin; 15 starts a new one.
	if age.Find(13) != age.Find(14) {
		t.Error("13 and 14 should share a bin")
	}
	if age.Find(14) == age.Find(15) {
		t.Error("14 and 15 should not share a bin")
	}
}

// Property: two values fall in the same interval iff no predicate
// distinguishes them.
func TestIntervalizeIndistinguishability(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		var preds []table.Predicate
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			lo := rng.Int63n(50)
			hi := lo + rng.Int63n(30)
			preds = append(preds, table.And(table.Between("X", lo, hi)...))
		}
		ivs := Intervalize(preds)
		x := ivs["X"]
		s := table.NewSchema(table.IntCol("X"))
		for v := int64(0); v < 90; v++ {
			for w := v + 1; w < 90; w++ {
				same := x.Find(v) == x.Find(w)
				distinguished := false
				for _, p := range preds {
					if p.Eval(s, []table.Value{table.Int(v)}) != p.Eval(s, []table.Value{table.Int(w)}) {
						distinguished = true
					}
				}
				if same && distinguished {
					t.Fatalf("trial %d: %d and %d share a bin but a predicate distinguishes them (cuts %v)", trial, v, w, x.Cuts)
				}
			}
		}
	}
}

func TestBinnerKeys(t *testing.T) {
	s := table.NewSchema(table.IntCol("pid"), table.IntCol("Age"), table.StrCol("Rel"))
	ivs := Intervalize([]table.Predicate{mustPred(t, "Age <= 24")})
	b := NewBinner(s, []string{"Age", "Rel"}, ivs)
	r1 := []table.Value{table.Int(1), table.Int(10), table.String("Child")}
	r2 := []table.Value{table.Int(2), table.Int(20), table.String("Child")}
	r3 := []table.Value{table.Int(3), table.Int(30), table.String("Child")}
	r4 := []table.Value{table.Int(4), table.Int(10), table.String("Owner")}
	if b.Key(r1) != b.Key(r2) {
		t.Error("ages 10 and 20 should share a bin (both <= 24)")
	}
	if b.Key(r1) == b.Key(r3) {
		t.Error("ages 10 and 30 should differ")
	}
	if b.Key(r1) == b.Key(r4) {
		t.Error("different Rel should differ")
	}
}

func TestBinnerWithoutIntervals(t *testing.T) {
	s := table.NewSchema(table.IntCol("Age"))
	b := NewBinner(s, []string{"Age"}, nil)
	if b.Key([]table.Value{table.Int(5)}) == b.Key([]table.Value{table.Int(6)}) {
		t.Error("without intervals, exact values must distinguish bins")
	}
}

func TestFindOnEmptyDomainEdges(t *testing.T) {
	iv := Intervals{Cuts: []int64{math.MinInt64}}
	if iv.Find(math.MinInt64) != 0 || iv.Find(0) != 0 || iv.Find(math.MaxInt64) != 0 {
		t.Error("single-interval Find wrong")
	}
}
