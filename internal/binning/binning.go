// Package binning implements intervalization (§4.1 of the paper, after
// Arasu et al.): the domain of each numeric column is split at the boundary
// points mentioned by the cardinality constraints, so that all values inside
// one interval are indistinguishable to every CC. Tuples of R1 are then
// grouped into bins over their (A1..Ap) values with numeric columns replaced
// by interval indices; each bin becomes one block of ILP variables.
package binning

import (
	"math"
	"sort"

	"repro/internal/constraint"
	"repro/internal/table"
)

// Intervals is the ordered disjoint partition of one integer column's
// domain. Cuts[i] is the inclusive lower endpoint of interval i; interval i
// covers [Cuts[i], Cuts[i+1]-1], and the last interval is unbounded above.
type Intervals struct {
	Cuts []int64
}

// Find returns the interval index containing v.
func (iv Intervals) Find(v int64) int {
	// First cut is always MinInt64, so every v belongs somewhere.
	lo, hi := 0, len(iv.Cuts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if iv.Cuts[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Len returns the number of intervals.
func (iv Intervals) Len() int { return len(iv.Cuts) }

// Intervalize computes, for every integer column referenced by any of the
// predicates, the partition of its domain induced by the predicates'
// boundary points. Columns not referenced get no entry.
func Intervalize(preds []table.Predicate) map[string]Intervals {
	cutset := make(map[string]map[int64]bool)
	add := func(col string, v int64) {
		if cutset[col] == nil {
			cutset[col] = map[int64]bool{math.MinInt64: true}
		}
		cutset[col][v] = true
	}
	for _, p := range preds {
		ranges, ok := constraint.Normalize(p)
		if !ok {
			// Fall back to atom endpoints for non-range predicates.
			for _, a := range p.Atoms {
				if a.Val.Kind() != table.KindInt {
					continue
				}
				v := a.Val.Int()
				switch a.Op {
				case table.OpEq, table.OpGe:
					add(a.Col, v)
					add(a.Col, v+1)
				case table.OpNe:
					add(a.Col, v)
					add(a.Col, v+1)
				case table.OpLt:
					add(a.Col, v)
				case table.OpLe:
					add(a.Col, v+1)
				case table.OpGt:
					add(a.Col, v+1)
				}
			}
			continue
		}
		for col, r := range ranges {
			if !r.IsInt || r.Empty {
				continue
			}
			if r.Lo != math.MinInt64 {
				add(col, r.Lo)
			}
			if r.Hi != math.MaxInt64 {
				add(col, r.Hi+1)
			}
		}
	}
	out := make(map[string]Intervals, len(cutset))
	for col, cuts := range cutset {
		sorted := make([]int64, 0, len(cuts))
		for v := range cuts {
			sorted = append(sorted, v)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		out[col] = Intervals{Cuts: sorted}
	}
	return out
}

// Binner maps R1 rows to bins: a bin is the combination of the row's values
// over the binned columns, with intervalized integer columns replaced by
// their interval index.
type Binner struct {
	cols      []string
	colIdx    []int
	intervals map[string]Intervals
}

// NewBinner builds a binner over the given R1 attribute columns of schema
// s, using the interval partitions from Intervalize (columns without a
// partition keep their exact values).
func NewBinner(s *table.Schema, cols []string, intervals map[string]Intervals) *Binner {
	b := &Binner{cols: cols, intervals: intervals}
	for _, c := range cols {
		b.colIdx = append(b.colIdx, s.MustIndex(c))
	}
	return b
}

// Key returns the opaque bin key of a row.
func (b *Binner) Key(row []table.Value) string {
	vals := make([]table.Value, len(b.cols))
	for i, j := range b.colIdx {
		v := row[j]
		if iv, ok := b.intervals[b.cols[i]]; ok && v.Kind() == table.KindInt {
			v = table.Int(int64(iv.Find(v.Int())))
		}
		vals[i] = v
	}
	return table.EncodeKey(vals...)
}

// Matches reports whether an entire bin satisfies the predicate restricted
// to the binned columns, judged by a representative row. Because the
// intervalization cuts include every predicate boundary, all rows of a bin
// agree on every predicate atom, so a single representative suffices.
func (b *Binner) Matches(s *table.Schema, rep []table.Value, p table.Predicate) bool {
	return p.Eval(s, rep)
}
