package obsv

import "runtime/debug"

// Build describes the running binary for -version output and the
// linksynthd_build_info gauge.
type Build struct {
	Version   string // main module version ("(devel)" for local builds)
	GoVersion string
	Revision  string // VCS commit, when stamped
	Modified  string // "true" when built from a dirty tree, else "false"
}

// BuildInfo reads the binary's embedded build metadata. Every field is
// always non-empty so label sets stay stable across build environments.
func BuildInfo() Build {
	b := Build{Version: "unknown", GoVersion: "unknown", Revision: "unknown", Modified: "false"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.GoVersion = bi.GoVersion
	if bi.Main.Version != "" {
		b.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Modified = s.Value
		}
	}
	return b
}
