package obsv

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Span("x", time.Time{}, 0)
	tr.Event("x")
	tr.SetStatus("ok")
	tr.SetError("boom")
	tr.Finish()
	tr.StartSpan("x")()
	if tr.ID() != "" || tr.SpanCount() != 0 || tr.Failed() || tr.Elapsed() != 0 {
		t.Fatal("nil trace leaked state")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on bare context = %v, want nil", got)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace(NewID(), "solve", "node-a")
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
	tr.Span("hasse", time.Now(), 5*time.Millisecond)
	tr.Event("cache miss")
	tr.SetStatus("miss")
	tr.Finish()
	sj := tr.Snapshot()
	if sj.ID != tr.ID() || len(sj.Spans) != 1 || len(sj.Events) != 1 || sj.Status != "miss" {
		t.Fatalf("snapshot %+v does not reflect the trace", sj)
	}
}

func TestNewIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	h := NewHistogram("test_duration_seconds", "test latencies")
	h.Observe(50 * time.Microsecond) // below first bound
	h.Observe(3 * time.Millisecond)  // into the 0.005 bucket
	h.Observe(2 * time.Hour)         // beyond the last bound -> +Inf only
	var e Exposition
	e.Histogram(h)
	out := e.Render()
	for _, want := range []string{
		"# HELP test_duration_seconds test latencies",
		"# TYPE test_duration_seconds histogram",
		`test_duration_seconds_bucket{le="0.0001"} 1`,
		`test_duration_seconds_bucket{le="0.005"} 2`,
		`test_duration_seconds_bucket{le="100"} 2`,
		`test_duration_seconds_bucket{le="+Inf"} 3`,
		"test_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative counts must be monotone.
	prev := uint64(0)
	for _, ln := range strings.Split(out, "\n") {
		if !strings.HasPrefix(ln, "test_duration_seconds_bucket") {
			continue
		}
		var v uint64
		if _, err := fmt.Sscanf(ln[strings.LastIndex(ln, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("parse %q: %v", ln, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not monotone at %q", ln)
		}
		prev = v
	}
}

func TestExpositionSortedAndStable(t *testing.T) {
	build := func() string {
		var e Exposition
		e.Gauge("zzz_gauge", "last alphabetically", 1)
		e.Counter("aaa_total", "first alphabetically", 2)
		e.Info("mmm_build_info", "build metadata", map[string]string{"version": "v1", "goversion": "go1.24"})
		e.Histogram(NewHistogram("kkk_duration_seconds", "empty histogram"))
		return e.Render()
	}
	out := build()
	if out != build() {
		t.Fatal("two identical expositions rendered differently")
	}
	// Families must appear in sorted order.
	var fams []string
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "# TYPE ") {
			fams = append(fams, strings.Fields(ln)[2])
		}
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1] > fams[i] {
			t.Fatalf("families out of order: %v", fams)
		}
	}
	if want := `mmm_build_info{goversion="go1.24",version="v1"} 1`; !strings.Contains(out, want) {
		t.Errorf("info line missing %q:\n%s", want, out)
	}
}

func TestFlightRecorderRingOrderAndWrap(t *testing.T) {
	r := NewFlightRecorder(4, "")
	for i := 0; i < 10; i++ {
		tr := NewTrace(fmt.Sprintf("%016d", i), "solve", "n")
		r.Record(tr)
	}
	if r.Len() != 4 || r.Recorded() != 10 {
		t.Fatalf("Len=%d Recorded=%d, want 4/10", r.Len(), r.Recorded())
	}
	got := r.Traces()
	if len(got) != 4 {
		t.Fatalf("Traces len %d, want 4", len(got))
	}
	for i, tj := range got {
		if want := fmt.Sprintf("%016d", 6+i); tj.ID != want {
			t.Errorf("slot %d id %q, want %q (oldest-first after wrap)", i, tj.ID, want)
		}
	}
}

func TestFlightRecorderErrorSnapshot(t *testing.T) {
	dir := t.TempDir()
	r := NewFlightRecorder(8, dir)
	ok := NewTrace("aaaaaaaaaaaaaaaa", "solve", "n")
	r.Record(ok) // no error -> no file
	bad := NewTrace("bbbbbbbbbbbbbbbb", "solve", "n")
	bad.SetError("solver exploded")
	r.Record(bad)
	var files []string
	deadline := time.Now().Add(5 * time.Second)
	for {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files = files[:0]
		for _, e := range ents {
			files = append(files, e.Name())
		}
		if len(files) == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(files) != 1 || !strings.Contains(files[0], "bbbbbbbbbbbbbbbb") {
		t.Fatalf("snapshot files %v, want exactly one for the failed trace", files)
	}
	buf, err := os.ReadFile(filepath.Join(dir, files[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), "solver exploded") {
		t.Fatalf("snapshot body missing the error: %s", buf)
	}
	written, failed := r.SnapshotStats()
	if written != 1 || failed != 0 {
		t.Fatalf("snapshot stats written=%d failed=%d", written, failed)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(16, "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := NewTrace(NewID(), "solve", "n")
				tr.Span("phase", time.Now(), time.Microsecond)
				r.Record(tr)
				_ = r.Traces()
			}
		}(w)
	}
	wg.Wait()
	if r.Recorded() != 8*200 {
		t.Fatalf("Recorded=%d, want %d", r.Recorded(), 8*200)
	}
}

func TestBuildInfoFieldsNonEmpty(t *testing.T) {
	b := BuildInfo()
	if b.Version == "" || b.GoVersion == "" || b.Revision == "" || b.Modified == "" {
		t.Fatalf("BuildInfo has empty fields: %+v", b)
	}
}

// Satellite: the 64-file retention prune must be visible, not silent. Seed
// the snapshot directory past the cap, record one failed trace, and the
// prune that follows its snapshot write must count every file it deleted.
func TestFlightRecorderPruneCountsDeletedSnapshots(t *testing.T) {
	dir := t.TempDir()
	const excess = 70
	for i := 0; i < excess; i++ {
		// A leading "0" sorts before real (date-stamped) snapshot names,
		// so these rank oldest and are the prune victims.
		name := fmt.Sprintf("00000000T000000.%09d-old-%d.json", i, i)
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r := NewFlightRecorder(8, dir)
	bad := NewTrace("cccccccccccccccc", "solve", "n")
	bad.SetError("boom")
	r.Record(bad)

	const wantPruned = excess + 1 - 64
	deadline := time.Now().Add(5 * time.Second)
	for r.Pruned() < wantPruned && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := r.Pruned(); got != wantPruned {
		t.Fatalf("Pruned() = %d, want %d", got, wantPruned)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 64 {
		t.Fatalf("%d snapshot files on disk, want the 64-file cap", len(ents))
	}
	// The freshly written snapshot is the newest file and must survive.
	found := false
	for _, e := range ents {
		if strings.Contains(e.Name(), "cccccccccccccccc") {
			found = true
		}
	}
	if !found {
		t.Fatal("prune deleted the newest snapshot instead of the oldest files")
	}
}
