package obsv

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file merges several nodes' Prometheus text expositions into one
// cluster-wide exposition (GET /debug/cluster). The output obeys the same
// format contract check_metrics.sh enforces on a single node's /metrics:
// families strictly sorted by name, HELP before TYPE, one declaration per
// family, and histogram buckets cumulative across *all* of a family's
// lines. That last rule shapes the merge: histogram families are summed
// into a single bucket set (per-node latency detail stays on each node's
// own /metrics), while counters and gauges keep per-node visibility via a
// `node` label next to the cluster aggregate.
//
// Merge rules by type:
//
//   - counter: one unlabeled aggregate line (sum over nodes), then one
//     `{node="..."}` line per node.
//   - gauge, unlabeled samples: one unlabeled aggregate line (max over
//     nodes — gauges are levels, not flows), then per-node lines.
//   - gauge, labeled samples (the build_info idiom): per-node lines only,
//     each with `node` merged into its sorted label set; an unlabeled
//     aggregate of a constant-1 info metric would be noise.
//   - histogram: buckets summed per `le` bound, `_sum` summed, `_count`
//     taken from the merged +Inf bucket (so +Inf == _count by
//     construction, as the validator requires).
//
// Ordering is deterministic everywhere: families by name, nodes by name,
// labels by key — two merges over the same scrapes are byte-identical.

// NodeScrape is one node's /metrics text, tagged with its address.
type NodeScrape struct {
	Node string
	Text string
}

// NodeUpFamily is the gauge family the merger synthesizes to report which
// members answered the fan-out: 1 per merged node, 0 per unreachable one.
// Free-form comments would fail the exposition validator, so reachability
// is reported as a metric like everything else.
const NodeUpFamily = "linksynthd_cluster_node_up"

// pSample is one parsed sample line: metric name (family name plus any
// _bucket/_sum/_count suffix), the raw label body (without braces, "" if
// unlabeled), and the value text.
type pSample struct {
	name   string
	labels string
	value  string
}

// pFamily is one parsed metric family.
type pFamily struct {
	name    string
	help    string
	typ     string
	samples []pSample
}

// parseExposition parses Prometheus text exposition format as this
// package's Exposition renders it (and as check_metrics.sh validates it):
// `# HELP` then `# TYPE` then sample lines per family.
func parseExposition(text string) ([]pFamily, error) {
	var fams []pFamily
	byName := map[string]int{}
	for ln, line := range strings.Split(text, "\n") {
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("line %d: HELP without family name", ln+1)
			}
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate family %s", ln+1, name)
			}
			byName[name] = len(fams)
			fams = append(fams, pFamily{name: name, help: help})
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE line", ln+1)
			}
			i, ok := byName[f[2]]
			if !ok {
				return nil, fmt.Errorf("line %d: TYPE for undeclared family %s", ln+1, f[2])
			}
			fams[i].typ = f[3]
		case strings.HasPrefix(line, "#"):
			return nil, fmt.Errorf("line %d: unexpected comment %q", ln+1, line)
		default:
			name, labels, value, err := parseSample(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
			i, ok := byName[familyOf(name, byName, fams)]
			if !ok {
				return nil, fmt.Errorf("line %d: sample for undeclared family %s", ln+1, name)
			}
			fams[i].samples = append(fams[i].samples, pSample{name: name, labels: labels, value: value})
		}
	}
	return fams, nil
}

// familyOf folds a histogram sample's _bucket/_sum/_count suffix onto its
// declaring family, mirroring the validator's resolution rule.
func familyOf(name string, byName map[string]int, fams []pFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if i, ok := byName[base]; ok && fams[i].typ == "histogram" {
			return base
		}
	}
	return name
}

// parseSample splits `name[{labels}] value` into its parts.
func parseSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return "", "", "", fmt.Errorf("sample without value in %q", line)
		}
	}
	value = strings.TrimSpace(rest)
	if name == "" || value == "" || strings.ContainsAny(value, " ") {
		return "", "", "", fmt.Errorf("unparseable sample %q", line)
	}
	return name, labels, value, nil
}

// withNodeLabel returns the label body with `node="<node>"` merged into
// the key-sorted label set (replacing any existing node label).
func withNodeLabel(labels, node string) string {
	toks := splitLabels(labels)
	kept := toks[:0]
	for _, t := range toks {
		if !strings.HasPrefix(t, `node="`) {
			kept = append(kept, t)
		}
	}
	kept = append(kept, `node="`+escapeLabel(node)+`"`)
	sort.Strings(kept)
	return strings.Join(kept, ",")
}

// splitLabels tokenizes a label body on commas outside quoted values.
func splitLabels(labels string) []string {
	if labels == "" {
		return nil
	}
	var toks []string
	start, inQuote, escaped := 0, false, false
	for i := 0; i < len(labels); i++ {
		c := labels[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			toks = append(toks, labels[start:i])
			start = i + 1
		}
	}
	toks = append(toks, labels[start:])
	return toks
}

// nodeFam is one node's contribution to a merged family.
type nodeFam struct {
	node string
	fam  pFamily
}

// mergedFam accumulates one family's declaration and per-node parts.
type mergedFam struct {
	help, typ string
	parts     []nodeFam
}

// MergeExpositions merges the given scrapes into one exposition, appending
// the NodeUpFamily gauge covering both the merged nodes (1) and the nodes
// listed in down (0). A scrape that fails to parse fails the whole merge —
// a half-merged cluster view is worse than an explicit error.
func MergeExpositions(scrapes []NodeScrape, down []string) (string, error) {
	merged := map[string]*mergedFam{}
	var famNames []string

	ordered := append([]NodeScrape(nil), scrapes...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Node < ordered[j].Node })

	for _, s := range ordered {
		fams, err := parseExposition(s.Text)
		if err != nil {
			return "", fmt.Errorf("node %s: %w", s.Node, err)
		}
		for _, f := range fams {
			m, ok := merged[f.name]
			if !ok {
				m = &mergedFam{help: f.help, typ: f.typ}
				merged[f.name] = m
				famNames = append(famNames, f.name)
			}
			if m.typ != f.typ {
				return "", fmt.Errorf("node %s: family %s is %s here but %s elsewhere", s.Node, f.name, f.typ, m.typ)
			}
			m.parts = append(m.parts, nodeFam{node: s.Node, fam: f})
		}
	}

	var e Exposition
	for _, name := range famNames {
		m := merged[name]
		f := family{name: name, help: m.help, typ: m.typ}
		switch m.typ {
		case "histogram":
			lines, err := mergeHistogram(name, m.parts)
			if err != nil {
				return "", err
			}
			f.lines = lines
		case "counter", "gauge":
			f.lines = mergeFlat(name, m.typ, m.parts)
		default:
			return "", fmt.Errorf("family %s: unsupported type %q", name, m.typ)
		}
		e.fams = append(e.fams, f)
	}

	up := family{name: NodeUpFamily, typ: "gauge",
		help: "1 for cluster members whose /metrics merged into this exposition, 0 for members that did not answer."}
	for _, s := range ordered {
		up.lines = append(up.lines, NodeUpFamily+`{node="`+escapeLabel(s.Node)+`"} 1`)
	}
	downSorted := append([]string(nil), down...)
	sort.Strings(downSorted)
	for _, n := range downSorted {
		up.lines = append(up.lines, NodeUpFamily+`{node="`+escapeLabel(n)+`"} 0`)
	}
	sort.Strings(up.lines)
	e.fams = append(e.fams, up)

	return e.Render(), nil
}

// mergeFlat merges a counter or gauge family: an unlabeled aggregate line
// (sum for counters, max for gauges) when every sample is unlabeled, then
// per-node lines carrying each original sample with a node label.
func mergeFlat(name, typ string, parts []nodeFam) []string {
	allUnlabeled, first := true, true
	var agg float64
	var nodeLines []string
	for _, p := range parts {
		for _, s := range p.fam.samples {
			if s.labels != "" {
				allUnlabeled = false
			}
			v, err := strconv.ParseFloat(s.value, 64)
			if err == nil {
				switch {
				case typ == "counter":
					agg += v
				case first || v > agg:
					agg = v
				}
				first = false
			}
			nodeLines = append(nodeLines, s.name+"{"+withNodeLabel(s.labels, p.node)+"} "+s.value)
		}
	}
	sort.Strings(nodeLines)
	if !allUnlabeled && typ == "gauge" {
		return nodeLines
	}
	return append([]string{name + " " + strconv.FormatFloat(agg, 'g', -1, 64)}, nodeLines...)
}

// mergeHistogram sums the nodes' cumulative buckets into one bucket set
// over the union of their bounds. A node without a given finite bound
// contributes its cumulative count at its largest smaller bound, which
// keeps the merged sequence monotone. _count is the merged +Inf value.
func mergeHistogram(name string, parts []nodeFam) ([]string, error) {
	type nodeHist struct {
		bounds []float64 // ascending finite bounds
		cum    []float64 // cumulative count at each bound
		inf    float64
		sum    float64
	}
	var hists []nodeHist
	boundSet := map[float64]string{} // value -> original text
	for _, p := range parts {
		var h nodeHist
		for _, s := range p.fam.samples {
			switch s.name {
			case name + "_bucket":
				le := leOf(s.labels)
				v, err := strconv.ParseFloat(s.value, 64)
				if err != nil {
					return nil, fmt.Errorf("family %s: bad bucket value %q", name, s.value)
				}
				if le == "+Inf" {
					h.inf = v
					continue
				}
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("family %s: bad le %q", name, le)
				}
				boundSet[b] = le
				h.bounds = append(h.bounds, b)
				h.cum = append(h.cum, v)
			case name + "_sum":
				v, err := strconv.ParseFloat(s.value, 64)
				if err != nil {
					return nil, fmt.Errorf("family %s: bad sum %q", name, s.value)
				}
				h.sum = v
			}
		}
		hists = append(hists, h)
	}
	bounds := make([]float64, 0, len(boundSet))
	for b := range boundSet {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)

	var lines []string
	for _, b := range bounds {
		var total float64
		for _, h := range hists {
			// Cumulative count at b: the node's value at its largest
			// bound <= b (0 below its first bound).
			i := sort.SearchFloat64s(h.bounds, b)
			if i < len(h.bounds) && h.bounds[i] == b {
				total += h.cum[i]
			} else if i > 0 {
				total += h.cum[i-1]
			}
		}
		lines = append(lines, name+`_bucket{le="`+boundSet[b]+`"} `+strconv.FormatFloat(total, 'g', -1, 64))
	}
	var inf, sum float64
	for _, h := range hists {
		inf += h.inf
		sum += h.sum
	}
	lines = append(lines,
		name+`_bucket{le="+Inf"} `+strconv.FormatFloat(inf, 'g', -1, 64),
		name+"_sum "+strconv.FormatFloat(sum, 'g', -1, 64),
		name+"_count "+strconv.FormatFloat(inf, 'g', -1, 64),
	)
	return lines, nil
}

// leOf extracts the le label's value from a bucket sample's label body.
func leOf(labels string) string {
	for _, t := range splitLabels(labels) {
		if v, ok := strings.CutPrefix(t, `le="`); ok {
			return strings.TrimSuffix(v, `"`)
		}
	}
	return ""
}
