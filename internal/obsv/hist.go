package obsv

import (
	"strconv"
	"sync/atomic"
	"time"
)

// DefaultBuckets are the fixed log-spaced latency bucket bounds, in
// seconds: a 1–2.5–5 progression per decade from 100µs to 100s. Fixed
// bounds (rather than adaptive ones) keep scrape output byte-comparable
// across nodes and runs, and the log spacing holds relative error roughly
// constant from cache-hit to worst-case solve latencies.
func DefaultBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05,
		0.1, 0.25, 0.5,
		1, 2.5, 5,
		10, 25, 50, 100,
	}
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// observation: one atomic counter per bucket, a count, and a nanosecond
// sum. Rendering is cumulative (Prometheus `le` semantics).
type Histogram struct {
	name    string // full metric family name, e.g. linksynthd_solve_duration_seconds
	help    string
	bounds  []float64 // upper bounds in seconds, ascending; +Inf implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumNano atomic.Int64
}

// NewHistogram builds a histogram over DefaultBuckets.
func NewHistogram(name, help string) *Histogram {
	bounds := DefaultBuckets()
	return &Histogram{name: name, help: help, bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Name returns the metric family name.
func (h *Histogram) Name() string { return h.name }

// Observe records one duration. Nil-safe so call sites need no guards.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	secs := d.Seconds()
	// Linear scan: 20 comparisons against contiguous memory is cheaper
	// than a branchy binary search at this size, and observation is off
	// the byte-serving fast path anyway.
	i := len(h.bounds)
	for b, ub := range h.bounds {
		if secs <= ub {
			i = b
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNano.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution in seconds, interpolating linearly inside the bucket the
// quantile lands in. Observations beyond the last finite bound clamp to
// that bound — good enough for SLO gating, where anything past 100s has
// already burned the objective. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, ub := range h.bounds {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (ub-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// expose renders the family in Prometheus exposition format. A concurrent
// Observe may land between bucket reads; the cumulative counts are made
// monotone by construction (running sum), and count is taken as the
// cumulative total of the buckets so `le="+Inf"` always equals `_count`.
func (h *Histogram) expose() family {
	f := family{name: h.name, help: h.help, typ: "histogram"}
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		f.lines = append(f.lines, h.name+`_bucket{le="`+formatBound(ub)+`"} `+strconv.FormatUint(cum, 10))
	}
	cum += h.counts[len(h.bounds)].Load()
	f.lines = append(f.lines,
		h.name+`_bucket{le="+Inf"} `+strconv.FormatUint(cum, 10),
		h.name+"_sum "+strconv.FormatFloat(float64(h.sumNano.Load())/1e9, 'g', -1, 64),
		h.name+"_count "+strconv.FormatUint(cum, 10),
	)
	return f
}

// formatBound renders a bucket bound the way Prometheus clients expect:
// shortest decimal round-trip, no exponent for these magnitudes.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
