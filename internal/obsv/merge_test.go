package obsv

import (
	"strings"
	"testing"
	"time"
)

const scrapeA = `# HELP linksynthd_requests_total requests served
# TYPE linksynthd_requests_total counter
linksynthd_requests_total 10
# HELP linksynthd_sessions live sessions
# TYPE linksynthd_sessions gauge
linksynthd_sessions 3
`

const scrapeB = `# HELP linksynthd_requests_total requests served
# TYPE linksynthd_requests_total counter
linksynthd_requests_total 32
# HELP linksynthd_sessions live sessions
# TYPE linksynthd_sessions gauge
linksynthd_sessions 7
`

func mustMerge(t *testing.T, scrapes []NodeScrape, down []string) string {
	t.Helper()
	out, err := MergeExpositions(scrapes, down)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return out
}

func wantLine(t *testing.T, out, line string) {
	t.Helper()
	for _, l := range strings.Split(out, "\n") {
		if l == line {
			return
		}
	}
	t.Fatalf("merged exposition missing line %q:\n%s", line, out)
}

func TestMergeCountersSumAndKeepPerNodeLines(t *testing.T) {
	out := mustMerge(t, []NodeScrape{
		{Node: "http://n1", Text: scrapeA},
		{Node: "http://n2", Text: scrapeB},
	}, nil)
	wantLine(t, out, "linksynthd_requests_total 42")
	wantLine(t, out, `linksynthd_requests_total{node="http://n1"} 10`)
	wantLine(t, out, `linksynthd_requests_total{node="http://n2"} 32`)
}

func TestMergeGaugesTakeMax(t *testing.T) {
	out := mustMerge(t, []NodeScrape{
		{Node: "http://n1", Text: scrapeA},
		{Node: "http://n2", Text: scrapeB},
	}, nil)
	// Gauges are levels, not flows: the aggregate is the max, never the sum.
	wantLine(t, out, "linksynthd_sessions 7")
	wantLine(t, out, `linksynthd_sessions{node="http://n1"} 3`)
	wantLine(t, out, `linksynthd_sessions{node="http://n2"} 7`)
}

func TestMergeNodeUpCoversMergedAndDownMembers(t *testing.T) {
	out := mustMerge(t, []NodeScrape{{Node: "http://n1", Text: scrapeA}},
		[]string{"http://n9"})
	wantLine(t, out, NodeUpFamily+`{node="http://n1"} 1`)
	wantLine(t, out, NodeUpFamily+`{node="http://n9"} 0`)
}

func TestMergeLabeledGaugeGetsNoAggregate(t *testing.T) {
	info := `# HELP linksynthd_build_info build metadata
# TYPE linksynthd_build_info gauge
linksynthd_build_info{revision="abc",version="v1"} 1
`
	out := mustMerge(t, []NodeScrape{
		{Node: "n1", Text: info},
		{Node: "n2", Text: info},
	}, nil)
	wantLine(t, out, `linksynthd_build_info{node="n1",revision="abc",version="v1"} 1`)
	wantLine(t, out, `linksynthd_build_info{node="n2",revision="abc",version="v1"} 1`)
	for _, l := range strings.Split(out, "\n") {
		if l == "linksynthd_build_info 2" || strings.HasPrefix(l, "linksynthd_build_info 1") {
			t.Fatalf("labeled info gauge got an aggregate line: %q", l)
		}
	}
}

// TestMergeHistogramsSumBuckets renders two real histograms and checks the
// merged family has one summed cumulative bucket set — the validator's
// cumulative rule spans all of a family's lines, so per-node bucket lines
// would be malformed by construction.
func TestMergeHistogramsSumBuckets(t *testing.T) {
	mkScrape := func(h *Histogram) string {
		var e Exposition
		e.Histogram(h)
		return e.Render()
	}
	h1 := NewHistogram("solve_duration_seconds", "solve latency")
	h2 := NewHistogram("solve_duration_seconds", "solve latency")
	for i := 0; i < 5; i++ {
		h1.Observe(2 * time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		h2.Observe(3 * time.Second)
	}
	out := mustMerge(t, []NodeScrape{
		{Node: "n1", Text: mkScrape(h1)},
		{Node: "n2", Text: mkScrape(h2)},
	}, nil)
	wantLine(t, out, `solve_duration_seconds_bucket{le="0.0025"} 5`)
	wantLine(t, out, `solve_duration_seconds_bucket{le="+Inf"} 8`)
	wantLine(t, out, "solve_duration_seconds_count 8")
	if strings.Contains(out, `_bucket{le="0.0025",node=`) || strings.Contains(out, `node="n1",le=`) {
		t.Fatalf("merged histogram leaked per-node bucket lines:\n%s", out)
	}
}

func TestMergeIsDeterministicAcrossScrapeOrder(t *testing.T) {
	fwd := mustMerge(t, []NodeScrape{
		{Node: "http://n1", Text: scrapeA}, {Node: "http://n2", Text: scrapeB},
	}, nil)
	rev := mustMerge(t, []NodeScrape{
		{Node: "http://n2", Text: scrapeB}, {Node: "http://n1", Text: scrapeA},
	}, nil)
	if fwd != rev {
		t.Fatalf("merge depends on scrape order:\n--- fwd\n%s\n--- rev\n%s", fwd, rev)
	}
}

func TestMergeRejectsBadScrapes(t *testing.T) {
	cases := map[string]string{
		"undeclared sample":  "linksynthd_x_total 1\n",
		"free-form comment":  "# a stray comment\n",
		"duplicate family":   scrapeA + scrapeA,
		"unparseable sample": "# HELP linksynthd_x x\n# TYPE linksynthd_x counter\nlinksynthd_x\n",
	}
	for name, text := range cases {
		if _, err := MergeExpositions([]NodeScrape{{Node: "n1", Text: text}}, nil); err == nil {
			t.Errorf("%s: merge accepted a malformed scrape", name)
		}
	}
	conflict := strings.Replace(scrapeB, "counter", "gauge", 1)
	if _, err := MergeExpositions([]NodeScrape{
		{Node: "n1", Text: scrapeA}, {Node: "n2", Text: conflict},
	}, nil); err == nil {
		t.Error("type conflict: merge accepted counter-vs-gauge family")
	}
}

func TestQuantileInterpolatesWithinBuckets(t *testing.T) {
	h := NewHistogram("q", "quantile test")
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 100 observations at ~2ms land in the (0.001, 0.0025] bucket; the
	// p50 estimate must fall inside that bucket's bounds.
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	if q := h.Quantile(0.5); q <= 0.001 || q > 0.0025 {
		t.Fatalf("p50 = %v, want within (0.001, 0.0025]", q)
	}
	// Half slow observations drag p99 into the slow bucket while p25
	// stays in the fast one.
	for i := 0; i < 100; i++ {
		h.Observe(800 * time.Millisecond)
	}
	if q := h.Quantile(0.25); q > 0.0025 {
		t.Fatalf("p25 = %v, want fast bucket", q)
	}
	if q := h.Quantile(0.99); q <= 0.5 || q > 1.0 {
		t.Fatalf("p99 = %v, want within (0.5, 1.0]", q)
	}
}
