// Package obsv is the observability layer: end-to-end solve traces,
// log-spaced latency histograms, a flight recorder of recent traces, and a
// deterministic Prometheus exposition writer. It is stdlib-only and sits
// below every other serving package — core, incr, service, and cluster all
// record into it, and nothing in it imports them back.
//
// The central object is the Trace: one per request, minted at the HTTP
// edge (or adopted from the X-Linksynth-Trace header a forwarding node
// set, so a cross-node solve is a single distributed trace), carried on
// the request's context.Context, and filled with Spans (named timed
// phases: compile, classify, hasse, ilp, phase2, coloring, write-back,
// forward, ...) and Events (point-in-time annotations: cache hits, store
// restores, session reuse). Completed traces land in the FlightRecorder
// ring and are dumped via GET /debug/flight.
//
// Determinism contract: trace data is diagnostics only. It never feeds
// core.Fingerprint, never enters a content-addressed cached body, and the
// deterministic solver packages never *read* a clock through this package
// — core measures its spans with its own audited now()/since() helpers
// and hands explicit (start, duration) pairs to Span. The convenience
// helpers that do read the wall clock (StartSpan, Event) exist for the
// serving layer, where timing is legitimately wall-clock.
package obsv

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// TraceHeader carries a trace id across node boundaries: the HTTP edge
// adopts an inbound value instead of minting, and every intra-cluster
// request (forwarded solve, scattered sub-batch, store handoff fetch)
// sends the current trace's id — so one cross-node solve is one
// distributed trace, grouped by id across the nodes' flight recorders.
// Responses echo the id so clients can quote it when reporting a slow or
// failed request.
const TraceHeader = "X-Linksynth-Trace"

// Span is one named, timed phase of a trace. Start is wall-clock so spans
// recorded on different nodes of a distributed trace order onto one
// timeline; Dur is the measured duration.
type Span struct {
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
}

// Event is a point-in-time annotation on a trace.
type Event struct {
	Time time.Time `json:"time"`
	Msg  string    `json:"msg"`
}

// Trace is one request's record: identity, outcome, and the spans and
// events accumulated while serving it. All methods are safe on a nil
// receiver (instrumented code never guards) and safe for concurrent use
// (parallel solver phases record concurrently).
type Trace struct {
	mu          sync.Mutex
	id          string
	op          string
	node        string
	start       time.Time
	end         time.Time
	status      string
	err         string
	spans       []Span
	events      []Event
	wantExplain bool
	explain     *ExplainReport
}

// TraceJSON is the wire/dump form of a completed trace.
type TraceJSON struct {
	ID     string        `json:"id"`
	Op     string        `json:"op"`
	Node   string        `json:"node,omitempty"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Status string        `json:"status,omitempty"`
	Err    string        `json:"error,omitempty"`
	Spans  []Span        `json:"spans,omitempty"`
	Events []Event       `json:"events,omitempty"`

	// Explain is the solve's cost report, present only when the request
	// asked for it (?explain=1). Diagnostics only — never part of the
	// content-addressed response body.
	Explain *ExplainReport `json:"explain,omitempty"`
}

// NewID mints a fresh 16-hex-digit trace id from the system CSPRNG. IDs
// identify traces across nodes; they carry no ordering or meaning.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The CSPRNG failing is effectively fatal elsewhere; here a
		// constant id only degrades trace grouping, never correctness.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewTrace opens a trace. id may come from NewID (the edge minting a fresh
// trace) or from a peer's X-Linksynth-Trace header (adopting the caller's
// id so both halves of a forwarded solve group under one trace).
func NewTrace(id, op, node string) *Trace {
	return &Trace{id: id, op: op, node: node, start: time.Now()}
}

// ID returns the trace id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns the trace's opening time (zero on nil).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Span records a completed phase with an explicitly measured start and
// duration — the deterministic solver packages clock their spans through
// their own audited helpers and report here.
func (t *Trace) Span(name string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, Dur: dur})
	t.mu.Unlock()
}

// StartSpan opens a phase and returns its closer; serving-layer
// convenience, clocked by this package.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Span(name, start, time.Since(start)) }
}

// Event records a point-in-time annotation.
func (t *Trace) Event(msg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Time: time.Now(), Msg: msg})
	t.mu.Unlock()
}

// SetStatus records the request's disposition (cache hit/miss/coalesced,
// incremental class, ...). Last write wins.
func (t *Trace) SetStatus(status string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.status = status
	t.mu.Unlock()
}

// SetError marks the trace failed. The flight recorder auto-snapshots
// failed traces to disk so the evidence survives the ring.
func (t *Trace) SetError(msg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.err = msg
	t.mu.Unlock()
}

// Failed reports whether SetError was called.
func (t *Trace) Failed() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err != ""
}

// RequestExplain marks the trace as wanting a cost report. The serving
// edge sets it from ?explain=1 before handing the context to the solver;
// the solver checks ExplainRequested at the end of a run and only then
// pays the (cheap, but nonzero) cost of measuring the report.
func (t *Trace) RequestExplain() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.wantExplain = true
	t.mu.Unlock()
}

// ExplainRequested reports whether RequestExplain was called.
func (t *Trace) ExplainRequested() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wantExplain
}

// SetExplain attaches the solve's cost report. Last write wins — on a
// {base, delta} request the delta solve's report (the one the caller paid
// for) overwrites the base's.
func (t *Trace) SetExplain(r *ExplainReport) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.explain = r
	t.mu.Unlock()
}

// Explain returns the attached cost report, or nil.
func (t *Trace) Explain() *ExplainReport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.explain
}

// Finish stamps the trace's end time. Idempotent; the recorder calls it
// defensively before snapshotting.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
	t.mu.Unlock()
}

// Elapsed is the time since the trace opened (while live) or its total
// duration (once finished).
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.end.IsZero() {
		return t.end.Sub(t.start)
	}
	return time.Since(t.start)
}

// SpanCount returns the number of recorded spans.
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Snapshot renders the trace's current state for dumping. The returned
// value shares no mutable state with the trace.
func (t *Trace) Snapshot() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	out := TraceJSON{
		ID:     t.id,
		Op:     t.op,
		Node:   t.node,
		Start:  t.start,
		Dur:    end.Sub(t.start),
		Status: t.status,
		Err:    t.err,
	}
	out.Spans = append([]Span(nil), t.spans...)
	out.Events = append([]Event(nil), t.events...)
	out.Explain = t.explain
	return out
}

// ctxKey keys the trace on a context.
type ctxKey struct{}

// WithTrace attaches a trace to a context for the solver layers to find.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil (on which every Trace
// method is a no-op) — instrumented code calls unconditionally.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
