package obsv

// Observer bundles one process's observability state: its flight
// recorder and the latency histograms for the serving paths. The service
// owns exactly one and threads it everywhere a duration is worth keeping.
type Observer struct {
	Node     string
	Recorder *FlightRecorder

	// Latency histograms, one per serving path. Solve covers a local
	// solver run (miss path, admission to response body); CacheHit covers
	// requests answered from the byte cache; Delta covers warm-start
	// (base+delta) requests end to end; Restore covers rebuilding a warm
	// session from the durable store; Forward covers relaying a solve to
	// its owning node and reading the answer back; Replicate covers one
	// asynchronous replication round — pushing a solved key's cache entry
	// and store artifacts to its ring-successors.
	Solve     *Histogram
	CacheHit  *Histogram
	Delta     *Histogram
	Restore   *Histogram
	Forward   *Histogram
	Replicate *Histogram
}

// NewObserver builds an observer with a flight ring of flightEntries
// slots (<= 0 selects 256) and error-trace snapshots under snapshotDir
// ("" disables them).
func NewObserver(node string, flightEntries int, snapshotDir string) *Observer {
	return &Observer{
		Node:     node,
		Recorder: NewFlightRecorder(flightEntries, snapshotDir),
		Solve:    NewHistogram("linksynthd_solve_duration_seconds", "local solver run latency (cache-miss path)"),
		CacheHit: NewHistogram("linksynthd_cache_hit_duration_seconds", "latency of requests answered from the byte cache"),
		Delta:    NewHistogram("linksynthd_delta_duration_seconds", "warm-start (base+delta) request latency"),
		Restore:  NewHistogram("linksynthd_restore_duration_seconds", "durable-store warm session restore latency"),
		Forward:  NewHistogram("linksynthd_forward_duration_seconds", "latency of solves relayed to their owning node"),
		Replicate: NewHistogram("linksynthd_replicate_duration_seconds",
			"latency of one asynchronous replication round (cache entry + store artifacts to the ring-successors)"),
	}
}

// Histograms returns every histogram, for exposition loops.
func (o *Observer) Histograms() []*Histogram {
	if o == nil {
		return nil
	}
	return []*Histogram{o.Solve, o.CacheHit, o.Delta, o.Restore, o.Forward, o.Replicate}
}
