package obsv

// This file defines the solve EXPLAIN report: a structured per-solve cost
// breakdown the solver fills at the end of a run when (and only when) the
// request asked for it. The report is diagnostics in the same sense as
// spans — it never feeds core.Fingerprint, never enters a cached response
// body, and requesting it never changes solver output bytes (the golden
// tests pin this). It lives here rather than in core because everything
// above core (service, benchtab, the flight recorder) reads it, and obsv
// is the one package they all already share.
//
// All measured quantities are deterministic for a given instance: posting
// list cardinalities, combo match counts, DC candidate counts, and
// partition sizes depend only on input data and constraints. The phase
// durations are the solver's own audited span measurements and naturally
// vary run to run — which is exactly why explain data is spliced into a
// response after the cached body, never stored in it.

// ExplainReport is one solve's cost report.
type ExplainReport struct {
	// Instance shape.
	Mode      string `json:"mode"`      // phase-I strategy (hybrid, ilp-only, hasse-only)
	ViewRows  int    `json:"view_rows"` // |V_Join| = |R1|
	R2Rows    int    `json:"r2_rows"`
	Combos    int    `json:"combos"`     // active B-combos over the CC-used columns
	UsedBCols int    `json:"used_bcols"` // B columns any CC references

	// Routing: how the hybrid split the CC set (§4.3).
	CCsToHasse int `json:"ccs_to_hasse"`
	CCsToILP   int `json:"ccs_to_ilp"`

	// Per-constraint measured cardinalities and selectivities.
	CCs []ExplainCC `json:"ccs,omitempty"`
	DCs []ExplainDC `json:"dcs,omitempty"`

	// Per-phase durations (the same measurements the trace spans carry).
	Phases []ExplainPhase `json:"phases,omitempty"`

	Partitions ExplainPartitions `json:"partitions"`
	ILP        ExplainILP        `json:"ilp"`
	Reuse      ExplainReuse      `json:"reuse"`
}

// ExplainCC is one cardinality constraint's measured stats.
type ExplainCC struct {
	Index     int               `json:"index"`
	Name      string            `json:"name,omitempty"`
	Target    int64             `json:"target"`
	Route     string            `json:"route"` // "hasse" | "ilp"
	Disjuncts []ExplainDisjunct `json:"disjuncts"`
}

// ExplainDisjunct measures one disjunct of a CC: how many V_Join rows its
// R1 part selects (counted off the columnar posting lists) and how many
// active combos its R2 part admits.
type ExplainDisjunct struct {
	R1Rows        int     `json:"r1_rows"`
	R1Selectivity float64 `json:"r1_selectivity"` // r1_rows / view_rows
	Combos        int     `json:"combos"`
	ComboFraction float64 `json:"combo_fraction"` // combos / total combos
}

// ExplainDC is one denial constraint's candidate-set stats: per tuple
// variable, the V_Join rows passing that variable's unary filters.
type ExplainDC struct {
	Index int          `json:"index"`
	Name  string       `json:"name,omitempty"`
	Vars  []ExplainVar `json:"vars"`
}

// ExplainVar is one DC tuple variable's measured candidate set.
type ExplainVar struct {
	Rows        int     `json:"rows"`
	Selectivity float64 `json:"selectivity"`
}

// ExplainPhase is one solver phase's measured duration.
type ExplainPhase struct {
	Name  string `json:"name"`
	DurNS int64  `json:"dur_ns"`
}

// ExplainPartitions summarizes the §5.2 partitioning phase II colored.
type ExplainPartitions struct {
	Count       int     `json:"count"`
	MinRows     int     `json:"min_rows"`
	MaxRows     int     `json:"max_rows"`
	MeanRows    float64 `json:"mean_rows"`
	InvalidRows int     `json:"invalid_rows"` // rows no unused combo could complete
}

// ExplainILP carries Algorithm 1's effort counters.
type ExplainILP struct {
	Vars   int    `json:"vars"`
	Rows   int    `json:"rows"`
	Nodes  int    `json:"nodes"`
	Iters  int    `json:"iters"`
	Status string `json:"status,omitempty"`
}

// ExplainReuse reports how much warm state the solve reused (the session /
// delta path; all zero for a cold solve).
type ExplainReuse struct {
	PlanReused        bool `json:"plan_reused"`
	ProbReused        bool `json:"prob_reused"`
	SplicedPartitions int  `json:"spliced_partitions"`
	ConflictEdges     int  `json:"conflict_edges"`
	SkippedVertices   int  `json:"skipped_vertices"`
	AddedR2Tuples     int  `json:"added_r2_tuples"`
}
