package obsv

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
)

// FlightRecorder keeps the last N completed traces in a fixed-size ring.
// Recording is lock-cheap — one atomic ticket plus one atomic pointer
// store, no allocation, no mutex — so it sits on the request completion
// path without contending with the solves it observes. Readers snapshot
// whatever is resident; a slot being overwritten mid-read yields either
// the old or the new trace, never a torn one (the pointer swap is atomic
// and traces are effectively frozen once recorded).
//
// With a snapshot directory configured, traces that completed with an
// error are additionally written to disk as JSON — the MOD lesson that
// an invariant violation must be observable at failure time, not
// reconstructed after the ring has wrapped past it. Snapshot files are
// pruned oldest-first beyond a fixed cap so a crash loop cannot fill the
// disk with flight dumps.
type FlightRecorder struct {
	slots   []atomic.Pointer[Trace]
	next    atomic.Uint64
	dir     string // "" = no disk snapshots
	snapSeq atomic.Uint64
	snaps   atomic.Uint64 // snapshots written
	snapErr atomic.Uint64 // snapshot writes that failed
	pruned  atomic.Uint64 // snapshot files deleted by the retention cap
}

// maxSnapshotFiles caps the error-trace dumps retained on disk.
const maxSnapshotFiles = 64

// NewFlightRecorder builds a ring of n slots (n <= 0 selects 256). dir,
// when non-empty, enables error-trace snapshots into it; the directory is
// created on first use.
func NewFlightRecorder(n int, dir string) *FlightRecorder {
	if n <= 0 {
		n = 256
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[Trace], n), dir: dir}
}

// Record finishes a trace and files it in the ring; failed traces are
// also snapshotted to disk (off the caller's path — the write happens in
// a goroutine, the request does not wait on the filesystem). Nil-safe on
// both receiver and trace.
func (r *FlightRecorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	t.Finish()
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
	if r.dir != "" && t.Failed() {
		go r.writeSnapshot(t.Snapshot())
	}
}

// Len reports how many traces are resident (at most the ring size).
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Recorded returns the total number of traces ever recorded.
func (r *FlightRecorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// SnapshotStats returns (written, failed) disk-snapshot counts.
func (r *FlightRecorder) SnapshotStats() (uint64, uint64) {
	if r == nil {
		return 0, 0
	}
	return r.snaps.Load(), r.snapErr.Load()
}

// Pruned returns how many snapshot files the retention cap has deleted.
// Before this counter existed the prune was silent, so a crash loop
// could cycle evidence off disk with nothing in /metrics to show for it.
func (r *FlightRecorder) Pruned() uint64 {
	if r == nil {
		return 0
	}
	return r.pruned.Load()
}

// Traces returns the resident traces, oldest first. Each entry is an
// independent snapshot; the ring keeps rotating underneath.
func (r *FlightRecorder) Traces() []TraceJSON {
	if r == nil {
		return nil
	}
	n := r.next.Load()
	size := uint64(len(r.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]TraceJSON, 0, n-start)
	for i := start; i < n; i++ {
		if t := r.slots[i%size].Load(); t != nil {
			out = append(out, t.Snapshot())
		}
	}
	return out
}

// writeSnapshot dumps one failed trace to <dir>/<start>-<id>-<seq>.json
// and prunes the directory back under the file cap. Failures only bump a
// counter: flight dumps are evidence, never load-bearing state.
func (r *FlightRecorder) writeSnapshot(tj TraceJSON) {
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		r.snapErr.Add(1)
		return
	}
	seq := r.snapSeq.Add(1)
	name := fmt.Sprintf("%s-%s-%d.json", tj.Start.UTC().Format("20060102T150405.000000000"), tj.ID, seq)
	buf, err := json.MarshalIndent(tj, "", "  ")
	if err != nil {
		r.snapErr.Add(1)
		return
	}
	if err := os.WriteFile(filepath.Join(r.dir, name), append(buf, '\n'), 0o644); err != nil {
		r.snapErr.Add(1)
		return
	}
	r.snaps.Add(1)
	r.prune()
}

// prune deletes the oldest snapshot files beyond maxSnapshotFiles. The
// timestamp-prefixed names make lexicographic order chronological.
func (r *FlightRecorder) prune() {
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	if len(names) <= maxSnapshotFiles {
		return
	}
	sort.Strings(names)
	for _, n := range names[:len(names)-maxSnapshotFiles] {
		if os.Remove(filepath.Join(r.dir, n)) == nil {
			r.pruned.Add(1)
		}
	}
}
