package obsv

import (
	"sort"
	"strconv"
	"strings"
)

// family is one metric family ready to render: HELP/TYPE header plus its
// sample lines in final form.
type family struct {
	name  string
	help  string
	typ   string // counter | gauge | histogram
	lines []string
}

// Exposition accumulates metric families and renders them in Prometheus
// text exposition format with deterministic ordering: families sorted by
// name, every family preceded by its HELP and TYPE lines. Two scrapes
// that observe the same values produce byte-identical output, so diffs,
// the cluster smoke tests, and promtool-style validators can compare
// scrapes directly.
//
// It is a per-scrape value, not a registry: handlers rebuild one on every
// scrape from live counters, which keeps the exposition layer free of
// registration state and lock ordering concerns.
type Exposition struct {
	fams []family
}

// Counter adds a counter family with a single unlabeled sample.
func (e *Exposition) Counter(name, help string, v uint64) {
	e.fams = append(e.fams, family{name: name, help: help, typ: "counter",
		lines: []string{name + " " + strconv.FormatUint(v, 10)}})
}

// Gauge adds a gauge family with a single unlabeled sample.
func (e *Exposition) Gauge(name, help string, v int64) {
	e.fams = append(e.fams, family{name: name, help: help, typ: "gauge",
		lines: []string{name + " " + strconv.FormatInt(v, 10)}})
}

// Info adds an info-style gauge: constant value 1 with the given label
// pairs (the build_info idiom). Labels are emitted sorted by key.
func (e *Exposition) Info(name, help string, labels map[string]string) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteString("} 1")
	e.fams = append(e.fams, family{name: name, help: help, typ: "gauge", lines: []string{b.String()}})
}

// Histogram adds a histogram family from its live counters.
func (e *Exposition) Histogram(h *Histogram) {
	if h == nil {
		return
	}
	e.fams = append(e.fams, h.expose())
}

// Render emits the full exposition: families sorted by name, each as
//
//	# HELP <name> <help>
//	# TYPE <name> <type>
//	<samples...>
func (e *Exposition) Render() string {
	sort.SliceStable(e.fams, func(i, j int) bool { return e.fams[i].name < e.fams[j].name })
	var b strings.Builder
	for _, f := range e.fams {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.help)
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for _, ln := range f.lines {
			b.WriteString(ln)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
