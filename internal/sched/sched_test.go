package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewClampsWorkers(t *testing.T) {
	if w := New(0).Workers(); w < 1 {
		t.Errorf("Workers() = %d, want >= 1", w)
	}
	if w := New(-3).Workers(); w < 1 {
		t.Errorf("Workers() = %d, want >= 1", w)
	}
	if w := New(7).Workers(); w != 7 {
		t.Errorf("Workers() = %d, want 7", w)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		const n = 100
		var counts [n]int32
		p.ForEach(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachNilPool(t *testing.T) {
	var p *Pool
	sum := 0
	p.ForEach(5, func(i int) { sum += i })
	if sum != 10 {
		t.Errorf("sum = %d, want 10", sum)
	}
}

func TestOrderedConsumesInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		const n = 200
		var got []int
		Ordered(p, n, func(i int) int { return i * i }, func(i, v int) {
			if v != i*i {
				t.Fatalf("workers=%d: result for %d is %d", workers, i, v)
			}
			got = append(got, i)
		})
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: consumed out of order at %d: %v", workers, i, v)
			}
		}
		if len(got) != n {
			t.Fatalf("workers=%d: consumed %d of %d", workers, len(got), n)
		}
	}
}

// Nested use must not deadlock: each outer task fans out inner work on the
// same pool while holding a slot.
func TestNestedOrderedDoesNotDeadlock(t *testing.T) {
	p := New(2)
	total := int32(0)
	Ordered(p, 8, func(i int) int {
		inner := int32(0)
		Ordered(p, 8, func(j int) int { return 1 }, func(_, v int) { inner += int32(v) })
		return int(inner)
	}, func(_, v int) { atomic.AddInt32(&total, int32(v)) })
	if total != 64 {
		t.Fatalf("total = %d, want 64", total)
	}
}

func TestNestedForEachDoesNotDeadlock(t *testing.T) {
	p := New(2)
	var mu sync.Mutex
	ran := 0
	p.ForEach(6, func(i int) {
		p.ForEach(6, func(j int) {
			mu.Lock()
			ran++
			mu.Unlock()
		})
	})
	if ran != 36 {
		t.Fatalf("ran = %d, want 36", ran)
	}
}
