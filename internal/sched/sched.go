// Package sched provides the bounded worker pool shared by every parallel
// stage of the solver: the phase-1 Hasse subtree fan-out, the per-block ILP
// solves, the phase-2 partition-coloring stream, and SolveBatch instance
// scheduling. A single Pool bounds the concurrency of a solve (or a whole
// batch of solves) regardless of how many stages are in flight.
//
// The pool is deadlock-free under nesting: a task that cannot obtain a slot
// runs inline on the submitting goroutine instead of queueing. A batch
// instance holding a slot can therefore fan out its own phases on the same
// pool without ever blocking on itself; parallelism degrades gracefully to
// sequential execution when the pool is saturated. The cost of that rule
// is that the bound is approximate, not strict: submitting goroutines
// running tasks inline add to the slot holders, so momentary concurrency
// can exceed Workers by roughly the nesting depth. Treat Workers as a
// parallelism target, not a hard CPU cap.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the number of concurrently running tasks.
type Pool struct {
	slots  chan struct{}
	claims atomic.Uint64 // slot acquisitions (tasks dispatched to goroutines)
	inline atomic.Uint64 // tasks run inline because the pool was saturated
}

// PoolStats counts dispatch outcomes since the pool was created. A high
// Inline share means stages routinely find the pool saturated and degrade
// to sequential execution — the signal that Workers is undersized for the
// offered load (or that nesting is deep enough to matter).
type PoolStats struct {
	Claims uint64
	Inline uint64
}

// Stats returns the dispatch counters. Nil-safe (a nil pool is the
// sequential path and dispatches nothing).
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{Claims: p.claims.Load(), Inline: p.inline.Load()}
}

// Busy reports how many worker slots are held right now — the live pool
// occupancy gauge. Nil-safe.
func (p *Pool) Busy() int {
	if p == nil {
		return 0
	}
	return len(p.slots)
}

// New returns a pool running at most workers tasks concurrently.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	return &Pool{slots: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.slots) }

// TryAcquire claims a slot without blocking; callers that fail to acquire
// must run their task inline.
func (p *Pool) TryAcquire() bool {
	select {
	case p.slots <- struct{}{}:
		p.claims.Add(1)
		return true
	default:
		p.inline.Add(1)
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (p *Pool) Release() { <-p.slots }

// ForEach runs fn(0..n-1) with bounded concurrency and returns once every
// call has completed. Indices whose slot acquisition fails run inline, so
// ForEach makes progress even on a saturated (or nested) pool. A nil pool
// runs everything sequentially.
func (p *Pool) ForEach(n int, fn func(int)) {
	if p == nil || p.Workers() == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if p.TryAcquire() {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer p.Release()
				fn(i)
			}(i)
		} else {
			fn(i)
		}
	}
	wg.Wait()
}

// Ordered is a streaming fan-out/fan-in: work(0..n-1) runs on the pool while
// consume(i, result) is called strictly in index order, overlapping later
// work with earlier consumption (there is no barrier between the two).
// work must be a pure function of its index; consume may mutate shared
// state, which makes the combined result independent of scheduling and
// byte-identical to the sequential loop `for i { consume(i, work(i)) }`.
// A nil pool (or a single-worker pool) runs exactly that sequential loop.
func Ordered[T any](p *Pool, n int, work func(int) T, consume func(int, T)) {
	if p == nil || p.Workers() == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			consume(i, work(i))
		}
		return
	}
	results := make([]chan T, n)
	for i := range results {
		results[i] = make(chan T, 1)
	}
	go func() {
		for i := 0; i < n; i++ {
			if p.TryAcquire() {
				go func(i int) {
					defer p.Release()
					results[i] <- work(i)
				}(i)
			} else {
				// Saturated: compute inline so the stream keeps moving.
				results[i] <- work(i)
			}
		}
	}()
	for i := 0; i < n; i++ {
		consume(i, <-results[i])
	}
}
