//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapSupported selects the zero-copy read path on Unix; elsewhere the
// store falls back to paged io.ReaderAt reads.
const mmapSupported = true

// mapped is a read-only memory mapping of a whole file.
type mapped struct {
	data []byte
}

func mapFile(f *os.File, size int64) (*mapped, error) {
	if size == 0 {
		return &mapped{}, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &mapped{data: b}, nil
}

func (m *mapped) bytes() []byte { return m.data }

func (m *mapped) close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}
