package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
)

// SessionRecord is everything needed to reopen a parked serving session
// warm after a restart: references to the base relations (by snapshot
// fingerprint), the constraint text, the solver options, and the compiled
// plan. The record stores only the pristine base instance — deltas are
// re-expressed by clients against the base fingerprint, so overlay state
// need not survive; what must survive is the ability to serve the next
// {base, delta} without a cold classification or a re-solve of a cached
// result.
//
// Constraints are persisted through constraint.WriteConstraints, which
// preserves names and declaration order — both load-bearing: names are part
// of the content fingerprint, and delta CC targets index constraints by
// declaration position.
type SessionRecord struct {
	BaseFP [32]byte // content fingerprint of the base instance (the file's name)
	SFP    [32]byte // structural fingerprint (zero when the plan was never resolved)
	R1FP   [32]byte // snapshot fingerprint of R1
	R2FP   [32]byte // snapshot fingerprint of R2
	K1     string
	K2     string
	FK     string
	Opt    core.Options // Workers is not persisted; the serving process sets it
	CCs    []constraint.CC
	DCs    []constraint.DC
	Plan   *core.Plan // nil when the session never resolved a plan
}

const sessionRecordVersion = 1

const (
	optFlagNoMarginals = 1 << iota
	optFlagRandomFK
	optFlagNoPartition
)

func encodeSessionMeta(rec *SessionRecord) []byte {
	var out []byte
	out = binary.LittleEndian.AppendUint32(out, sessionRecordVersion)
	out = append(out, rec.BaseFP[:]...)
	out = append(out, rec.SFP[:]...)
	out = append(out, rec.R1FP[:]...)
	out = append(out, rec.R2FP[:]...)
	for _, s := range []string{rec.K1, rec.K2, rec.FK} {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
		out = append(out, s...)
	}
	var flags uint8
	if rec.Opt.NoMarginals {
		flags |= optFlagNoMarginals
	}
	if rec.Opt.RandomFK {
		flags |= optFlagRandomFK
	}
	if rec.Opt.NoPartition {
		flags |= optFlagNoPartition
	}
	out = append(out, uint8(rec.Opt.Mode), flags, uint8(rec.Opt.Order))
	out = binary.LittleEndian.AppendUint64(out, uint64(rec.Opt.Seed))
	out = binary.LittleEndian.AppendUint64(out, uint64(rec.Opt.ILP.MaxNodes))
	out = binary.LittleEndian.AppendUint64(out, uint64(rec.Opt.ILP.MaxIters))
	out = binary.LittleEndian.AppendUint64(out, uint64(rec.Opt.ILP.TimeLimit))
	return out
}

func decodeSessionMeta(data []byte, rec *SessionRecord) error {
	off := 0
	take := func(n int) ([]byte, bool) {
		if n < 0 || off+n > len(data) {
			return nil, false
		}
		b := data[off : off+n]
		off += n
		return b, true
	}
	vb, ok := take(4)
	if !ok {
		return fmt.Errorf("session meta truncated")
	}
	if v := binary.LittleEndian.Uint32(vb); v != sessionRecordVersion {
		return fmt.Errorf("unsupported session record version %d", v)
	}
	for _, dst := range [][]byte{rec.BaseFP[:], rec.SFP[:], rec.R1FP[:], rec.R2FP[:]} {
		b, ok := take(32)
		if !ok {
			return fmt.Errorf("session meta truncated")
		}
		copy(dst, b)
	}
	for _, dst := range []*string{&rec.K1, &rec.K2, &rec.FK} {
		lb, ok := take(4)
		if !ok {
			return fmt.Errorf("session meta truncated")
		}
		sb, ok := take(int(binary.LittleEndian.Uint32(lb)))
		if !ok {
			return fmt.Errorf("session meta truncated")
		}
		*dst = string(sb)
	}
	hb, ok := take(3)
	if !ok {
		return fmt.Errorf("session meta truncated")
	}
	rec.Opt.Mode = core.Mode(hb[0])
	rec.Opt.NoMarginals = hb[1]&optFlagNoMarginals != 0
	rec.Opt.RandomFK = hb[1]&optFlagRandomFK != 0
	rec.Opt.NoPartition = hb[1]&optFlagNoPartition != 0
	rec.Opt.Order = core.ColorOrder(hb[2])
	ints := make([]uint64, 4)
	for i := range ints {
		b, ok := take(8)
		if !ok {
			return fmt.Errorf("session meta truncated")
		}
		ints[i] = binary.LittleEndian.Uint64(b)
	}
	rec.Opt.Seed = int64(ints[0])
	rec.Opt.ILP.MaxNodes = int(int64(ints[1]))
	rec.Opt.ILP.MaxIters = int(int64(ints[2]))
	rec.Opt.ILP.TimeLimit = time.Duration(int64(ints[3]))
	if off != len(data) {
		return fmt.Errorf("session meta: %d trailing bytes", len(data)-off)
	}
	return nil
}

func encodeSessionRecord(rec *SessionRecord) ([]byte, error) {
	var cons bytes.Buffer
	if err := constraint.WriteConstraints(&cons, rec.CCs, rec.DCs); err != nil {
		return nil, err
	}
	var plan []byte
	if rec.Plan != nil {
		plan = core.EncodePlan(rec.Plan)
	}
	secs := []section{
		{kind: secSessMeta, payload: encodeSessionMeta(rec)},
		{kind: secSessCons, payload: cons.Bytes()},
		{kind: secSessPlan, payload: plan},
	}
	return buildFile(fileKindSession, secs), nil
}

func decodeSessionRecord(secs []section) (*SessionRecord, error) {
	rec := &SessionRecord{}
	meta, err := findSection(secs, secSessMeta)
	if err != nil {
		return nil, err
	}
	if err := decodeSessionMeta(meta, rec); err != nil {
		return nil, err
	}
	cons, err := findSection(secs, secSessCons)
	if err != nil {
		return nil, err
	}
	if rec.CCs, rec.DCs, err = constraint.ParseConstraints(bytes.NewReader(cons)); err != nil {
		return nil, fmt.Errorf("session constraints: %w", err)
	}
	plan, err := findSection(secs, secSessPlan)
	if err != nil {
		return nil, err
	}
	if len(plan) > 0 {
		if rec.Plan, err = core.DecodePlan(plan); err != nil {
			return nil, fmt.Errorf("session plan: %w", err)
		}
	}
	return rec, nil
}

// PutSession persists the record under its base fingerprint, atomically
// replacing any previous record for the same base.
func (s *Store) PutSession(rec *SessionRecord) error {
	img, err := encodeSessionRecord(rec)
	if err != nil {
		return err
	}
	if err := atomicWriteFile(s.sessPath(rec.BaseFP), img); err != nil {
		return err
	}
	s.sessionsPut.Add(1)
	return nil
}

// LoadSession reads the session record for the given base fingerprint. A
// torn or corrupt record is quarantined and reported as an error; the
// caller falls back to a cold solve rather than ever serving wrong state.
func (s *Store) LoadSession(baseFP [32]byte) (*SessionRecord, error) {
	path := s.sessPath(baseFP)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	secs, err := parseFile(data, fileKindSession)
	if err != nil {
		s.quarantine(path)
		return nil, err
	}
	rec, err := decodeSessionRecord(secs)
	if err != nil {
		s.quarantine(path)
		return nil, err
	}
	if rec.BaseFP != baseFP {
		s.quarantine(path)
		return nil, fmt.Errorf("store: session record fingerprint mismatch")
	}
	return rec, nil
}
