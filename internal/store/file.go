// Package store is the disk-resident tier under the serving layer's warm
// path: content-addressed columnar snapshots, persisted session records
// (base instance references, constraints, compiled plan), and the result
// cache's log, all under one data directory.
//
// Durability follows the MOD recipe: all data files are immutable and
// published with a single atomic flip — write to a temp file in the target
// directory, fsync, rename into place, fsync the directory. A reader
// therefore only ever observes a file that is absent or complete; torn
// tails from a crash mid-write are confined to temp files, which Open
// sweeps away. Every section of every file is CRC-framed, so corruption
// that defeats the rename discipline (bit rot, truncation by an external
// actor) is detected on read and the file is quarantined, never served.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// File framing: a 16-byte header (magic, file kind, version) followed by
// sections. Each section starts at an 8-byte-aligned offset with a 16-byte
// header — kind, CRC-32 (IEEE) of the payload, payload length — then the
// payload, zero-padded to the next 8-byte boundary. Aligned payloads let
// the columnar decoder alias int64/int32 arrays straight out of a mapped
// file.

var fileMagic = [8]byte{'L', 'S', 'S', 'T', 'O', 'R', '1', '\n'}

const fileVersion = 1

// File kinds.
const (
	fileKindSnapshot uint32 = 1
	fileKindSession  uint32 = 2
)

// Section kinds.
const (
	secSnapName     uint32 = 1 // relation name bytes
	secSnapColumnar uint32 = 2 // table.Columnar blob
	secSessMeta     uint32 = 3 // session record metadata
	secSessCons     uint32 = 4 // constraint text (constraint.WriteConstraints)
	secSessPlan     uint32 = 5 // core.Plan blob (empty when no plan)
)

type section struct {
	kind    uint32
	payload []byte
}

func pad8len(n int) int { return (n + 7) &^ 7 }

// buildFile assembles the complete byte image of a store file.
func buildFile(fileKind uint32, secs []section) []byte {
	size := 16
	for _, s := range secs {
		size += 16 + pad8len(len(s.payload))
	}
	out := make([]byte, 0, size)
	out = append(out, fileMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, fileKind)
	out = binary.LittleEndian.AppendUint32(out, fileVersion)
	for _, s := range secs {
		out = binary.LittleEndian.AppendUint32(out, s.kind)
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(s.payload))
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s.payload)))
		out = append(out, s.payload...)
		for len(out)%8 != 0 {
			out = append(out, 0)
		}
	}
	return out
}

// parseFile validates the framing of a complete file image and returns its
// sections (payloads aliasing data). Any truncation — a partial header, a
// payload running past the end, padding cut short — or a CRC mismatch
// fails with an error describing the first defect; a parsed file is fully
// intact.
func parseFile(data []byte, wantKind uint32) ([]section, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("store: file truncated: %d header bytes", len(data))
	}
	if string(data[:8]) != string(fileMagic[:]) {
		return nil, fmt.Errorf("store: bad magic %q", data[:8])
	}
	if k := binary.LittleEndian.Uint32(data[8:12]); k != wantKind {
		return nil, fmt.Errorf("store: file kind %d, want %d", k, wantKind)
	}
	if v := binary.LittleEndian.Uint32(data[12:16]); v != fileVersion {
		return nil, fmt.Errorf("store: unsupported file version %d", v)
	}
	var secs []section
	off := 16
	for off < len(data) {
		if off+16 > len(data) {
			return nil, fmt.Errorf("store: torn section header at offset %d", off)
		}
		kind := binary.LittleEndian.Uint32(data[off : off+4])
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		plen64 := binary.LittleEndian.Uint64(data[off+8 : off+16])
		off += 16
		if plen64 > uint64(len(data)-off) {
			return nil, fmt.Errorf("store: torn section payload at offset %d: %d bytes declared, %d remain", off, plen64, len(data)-off)
		}
		plen := int(plen64)
		payload := data[off : off+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("store: section kind %d at offset %d: CRC mismatch", kind, off)
		}
		off += plen
		for pad := pad8len(plen) - plen; pad > 0; pad-- {
			if off >= len(data) {
				return nil, fmt.Errorf("store: torn section padding at offset %d", off)
			}
			if data[off] != 0 {
				return nil, fmt.Errorf("store: nonzero padding at offset %d", off)
			}
			off++
		}
		secs = append(secs, section{kind: kind, payload: payload})
	}
	return secs, nil
}

// findSection returns the first section of the given kind.
func findSection(secs []section, kind uint32) ([]byte, error) {
	for _, s := range secs {
		if s.kind == kind {
			return s.payload, nil
		}
	}
	return nil, fmt.Errorf("store: missing section kind %d", kind)
}

// atomicWriteFile publishes data at path with the write-temp → fsync →
// rename → fsync-dir discipline; after it returns, the file is durable and
// readers see either the complete content or nothing.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
