package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/table"
)

func censusInput(hh int, seed int64) core.Input {
	d := census.Generate(census.Config{Households: hh, Areas: 6, Seed: seed})
	return core.Input{
		R1: d.Persons, R2: d.Housing,
		K1: "pid", K2: "hid", FK: "hid",
		CCs: d.GoodCCs(8), DCs: census.AllDCs(),
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func relationsEqual(a, b *table.Relation) bool {
	if a.Name != b.Name || !a.Schema().Equal(b.Schema()) || a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		for j := 0; j < a.Schema().Len(); j++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	in := censusInput(30, 3)

	fp1, err := s.PutRelation(in.R1)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := s.PutRelation(in.R2)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 {
		t.Fatal("distinct relations share a fingerprint")
	}
	// Content addressing: putting an equal relation dedups to one file.
	fp1b, err := s.PutRelation(in.R1.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if fp1b != fp1 {
		t.Fatal("equal relations got different fingerprints")
	}
	if st := s.Stats(); st.Snapshots != 2 {
		t.Fatalf("want 2 snapshot files, have %d", st.Snapshots)
	}

	back, err := s.LoadRelation(fp1)
	if err != nil {
		t.Fatal(err)
	}
	if !relationsEqual(back, in.R1) {
		t.Fatal("loaded relation differs")
	}

	mc, err := s.LoadColumnar(fp2)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Name != in.R2.Name || mc.C.Len() != in.R2.Len() {
		t.Fatal("mapped columnar shape mismatch")
	}
	if s.Stats().MappedNow != 1 {
		t.Fatal("mapped gauge not tracking open mapping")
	}
	if err := mc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mc.Close(); err != nil { // double close is safe
		t.Fatal(err)
	}
	if s.Stats().MappedNow != 0 {
		t.Fatal("mapped gauge not released")
	}
}

func makeRecord(t *testing.T, s *Store, in core.Input, opt core.Options) *SessionRecord {
	t.Helper()
	baseFP, err := core.Fingerprint(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.CompilePlan(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	r1fp, err := s.PutRelation(in.R1)
	if err != nil {
		t.Fatal(err)
	}
	r2fp, err := s.PutRelation(in.R2)
	if err != nil {
		t.Fatal(err)
	}
	return &SessionRecord{
		BaseFP: baseFP, SFP: pl.Key(), R1FP: r1fp, R2FP: r2fp,
		K1: in.K1, K2: in.K2, FK: in.FK,
		Opt: opt, CCs: in.CCs, DCs: in.DCs, Plan: pl,
	}
}

// TestSessionRecordRoundTrip: the record must reconstruct an input whose
// content fingerprint equals the persisted base fingerprint — the property
// the restore path stakes correctness on.
func TestSessionRecordRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	in := censusInput(30, 5)
	opt := core.Options{Seed: 7, Mode: core.ModeHybrid, NoMarginals: true}
	rec := makeRecord(t, s, in, opt)
	if err := s.PutSession(rec); err != nil {
		t.Fatal(err)
	}

	got, err := s.LoadSession(rec.BaseFP)
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseFP != rec.BaseFP || got.SFP != rec.SFP || got.R1FP != rec.R1FP || got.R2FP != rec.R2FP {
		t.Fatal("fingerprints did not round-trip")
	}
	if got.K1 != in.K1 || got.K2 != in.K2 || got.FK != in.FK {
		t.Fatal("key columns did not round-trip")
	}
	if !reflect.DeepEqual(got.Opt, rec.Opt) {
		t.Fatalf("options did not round-trip: %+v vs %+v", got.Opt, rec.Opt)
	}
	if got.Plan == nil || got.Plan.Key() != rec.Plan.Key() {
		t.Fatal("plan did not round-trip")
	}

	// Reconstruct the instance from stored parts and re-fingerprint it.
	r1, err := s.LoadRelation(got.R1FP)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.LoadRelation(got.R2FP)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := core.Input{R1: r1, R2: r2, K1: got.K1, K2: got.K2, FK: got.FK, CCs: got.CCs, DCs: got.DCs}
	fp, err := core.Fingerprint(rebuilt, got.Opt)
	if err != nil {
		t.Fatal(err)
	}
	if fp != rec.BaseFP {
		t.Fatal("reconstructed instance fingerprint differs from persisted base fingerprint")
	}

	fps, err := s.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != 1 || fps[0] != rec.BaseFP {
		t.Fatalf("Sessions() = %x", fps)
	}

	// A record without a plan round-trips too.
	rec2 := *rec
	rec2.Plan = nil
	rec2.SFP = [32]byte{}
	if err := s.PutSession(&rec2); err != nil {
		t.Fatal(err)
	}
	got2, err := s.LoadSession(rec2.BaseFP)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Plan != nil {
		t.Fatal("nil plan decoded as non-nil")
	}
}

// TestFaultInjection is the crash-recovery discipline test: for a valid
// snapshot file and a valid session file, EVERY truncation length and EVERY
// single-byte corruption must either load the intact content or fail
// cleanly — never decode into different bytes. Failures must quarantine the
// file so it is not parsed again.
func TestFaultInjection(t *testing.T) {
	base := mustOpen(t, t.TempDir())
	in := censusInput(12, 9)
	opt := core.Options{Seed: 2}
	rec := makeRecord(t, base, in, opt)
	if err := base.PutSession(rec); err != nil {
		t.Fatal(err)
	}
	snapImg, err := os.ReadFile(base.snapPath(rec.R1FP))
	if err != nil {
		t.Fatal(err)
	}
	sessImg, err := os.ReadFile(base.sessPath(rec.BaseFP))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	s := mustOpen(t, dir)
	snapPath := s.snapPath(rec.R1FP)
	sessPath := s.sessPath(rec.BaseFP)

	plant := func(path string, img []byte) {
		t.Helper()
		// Clear any quarantined leftover from the previous iteration.
		os.Remove(path)
		os.Remove(path + corruptExt)
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Truncation at every boundary: a torn tail must never load.
	for cut := 0; cut < len(snapImg); cut += 7 {
		plant(snapPath, snapImg[:cut])
		if _, err := s.LoadRelation(rec.R1FP); err == nil {
			t.Fatalf("snapshot truncated to %d bytes loaded without error", cut)
		}
		if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
			t.Fatalf("snapshot truncated to %d bytes was not quarantined", cut)
		}
	}
	for cut := 0; cut < len(sessImg); cut += 7 {
		plant(sessPath, sessImg[:cut])
		if _, err := s.LoadSession(rec.BaseFP); err == nil {
			t.Fatalf("session truncated to %d bytes loaded without error", cut)
		}
	}

	// Single-byte corruption at every offset.
	for off := 0; off < len(snapImg); off++ {
		mut := bytes.Clone(snapImg)
		mut[off] ^= 0x5a
		plant(snapPath, mut)
		got, err := s.LoadRelation(rec.R1FP)
		if err == nil && !relationsEqual(got, in.R1) {
			t.Fatalf("snapshot with corrupt byte %d served wrong content", off)
		}
		if err == nil {
			t.Fatalf("snapshot with corrupt byte %d loaded (CRC or fingerprint should catch any flip)", off)
		}
	}
	for off := 0; off < len(sessImg); off++ {
		mut := bytes.Clone(sessImg)
		mut[off] ^= 0x5a
		plant(sessPath, mut)
		if _, err := s.LoadSession(rec.BaseFP); err == nil {
			t.Fatalf("session with corrupt byte %d loaded (CRC should catch any flip)", off)
		}
	}

	if st := s.Stats(); st.CorruptFiles == 0 {
		t.Fatal("corrupt loads were not counted")
	}

	// Intact images still load in the same store after all that.
	plant(snapPath, snapImg)
	if got, err := s.LoadRelation(rec.R1FP); err != nil || !relationsEqual(got, in.R1) {
		t.Fatalf("intact snapshot failed to load: %v", err)
	}
	plant(sessPath, sessImg)
	if _, err := s.LoadSession(rec.BaseFP); err != nil {
		t.Fatalf("intact session failed to load: %v", err)
	}
}

// TestOpenSweepsTempFiles: a crash mid-publish leaves only temp files;
// Open removes them and leaves published data alone.
func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	in := censusInput(10, 1)
	fp, err := s.PutRelation(in.R1)
	if err != nil {
		t.Fatal(err)
	}
	tornA := filepath.Join(s.snapDir(), ".tmp-123456")
	tornB := filepath.Join(s.sessDir(), ".tmp-999999")
	for _, p := range []string{tornA, tornB} {
		if err := os.WriteFile(p, []byte("torn write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2 := mustOpen(t, dir)
	for _, p := range []string{tornA, tornB} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("temp file %s survived Open", p)
		}
	}
	if got, err := s2.LoadRelation(fp); err != nil || !relationsEqual(got, in.R1) {
		t.Fatalf("published snapshot lost: %v", err)
	}
}

// TestIngest: the handoff receive path verifies the claimed fingerprint
// before publishing, and rejects mismatches and garbage.
func TestIngest(t *testing.T) {
	src := mustOpen(t, t.TempDir())
	dst := mustOpen(t, t.TempDir())
	in := censusInput(15, 4)
	opt := core.Options{Seed: 3}
	rec := makeRecord(t, src, in, opt)
	if err := src.PutSession(rec); err != nil {
		t.Fatal(err)
	}

	for _, fp := range [][32]byte{rec.R1FP, rec.R2FP, rec.BaseFP} {
		data, kind, err := src.ReadFile(fp)
		if err != nil {
			t.Fatal(err)
		}
		gotKind, err := dst.Ingest(fp, data)
		if err != nil {
			t.Fatal(err)
		}
		if gotKind != kind {
			t.Fatalf("ingest kind %v, read kind %v", gotKind, kind)
		}
	}
	if got, err := dst.LoadRelation(rec.R1FP); err != nil || !relationsEqual(got, in.R1) {
		t.Fatalf("ingested snapshot: %v", err)
	}
	if _, err := dst.LoadSession(rec.BaseFP); err != nil {
		t.Fatalf("ingested session: %v", err)
	}

	// Claimed fingerprint must match content.
	data, _, err := src.ReadFile(rec.R1FP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Ingest(rec.R2FP, data); err == nil {
		t.Fatal("snapshot ingested under wrong fingerprint")
	}
	if _, err := dst.Ingest(rec.R1FP, []byte("not a store file")); err == nil {
		t.Fatal("garbage ingested")
	}
	sess, _, err := src.ReadFile(rec.BaseFP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Ingest(rec.R2FP, sess); err == nil {
		t.Fatal("session ingested under wrong fingerprint")
	}

	// Unknown fingerprints are a clean miss.
	if _, _, err := src.ReadFile([32]byte{1, 2, 3}); err == nil {
		t.Fatal("unknown fingerprint served")
	}
}
