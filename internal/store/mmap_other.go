//go:build !unix

package store

import (
	"io"
	"os"
)

const mmapSupported = false

// mapped is the no-mmap fallback: the file is read through io.ReaderAt in
// page-sized chunks into one buffer. Decoders may still alias into the
// buffer; it is private to the mapping object.
type mapped struct {
	data []byte
}

const fallbackPage = 1 << 20

func mapFile(f *os.File, size int64) (*mapped, error) {
	buf := make([]byte, size)
	var r io.ReaderAt = f
	for off := int64(0); off < size; off += fallbackPage {
		end := off + fallbackPage
		if end > size {
			end = size
		}
		if _, err := r.ReadAt(buf[off:end], off); err != nil {
			return nil, err
		}
	}
	return &mapped{data: buf}, nil
}

func (m *mapped) bytes() []byte { return m.data }

func (m *mapped) close() error {
	m.data = nil
	return nil
}
