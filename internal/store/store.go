package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/table"
)

// Kind classifies a store file.
type Kind uint8

const (
	KindUnknown  Kind = iota
	KindSnapshot      // content-addressed relation snapshot (<fp>.snap)
	KindSession       // session record keyed by base fingerprint (<fp>.sess)
)

func (k Kind) String() string {
	switch k {
	case KindSnapshot:
		return "snapshot"
	case KindSession:
		return "session"
	default:
		return "unknown"
	}
}

const (
	snapExt    = ".snap"
	sessExt    = ".sess"
	corruptExt = ".corrupt"
)

// Store is the durable tier rooted at one data directory:
//
//	<dir>/snapshots/<fp>.snap  immutable relation snapshots, named by content
//	<dir>/sessions/<fp>.sess   session records, named by base fingerprint
//	<dir>/cache/               home of the result cache's append-only log
//	<dir>/flight/              flight-recorder dumps of failed traces (JSON)
//
// All files are published atomically (write-temp → fsync → rename), so the
// store is crash-consistent by construction; CRC framing catches anything
// that slips past. Store methods are safe for concurrent use — files are
// immutable once published and counters are atomic.
type Store struct {
	dir string

	snapshotsPut  atomic.Uint64
	sessionsPut   atomic.Uint64
	mappedNow     atomic.Int64
	corruptFiles  atomic.Uint64
	ingestedFiles atomic.Uint64
}

// Open prepares the data directory layout and sweeps temp files left by a
// crash mid-publish. It never removes data files, however damaged — those
// are quarantined lazily when a read detects corruption.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir}
	for _, sub := range []string{s.snapDir(), s.sessDir(), s.CacheDir(), s.FlightDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
		ents, err := os.ReadDir(sub)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), ".tmp-") {
				os.Remove(filepath.Join(sub, e.Name()))
			}
		}
	}
	return s, nil
}

// Dir returns the store's root data directory.
func (s *Store) Dir() string { return s.dir }

// CacheDir returns the directory the result cache's log lives in.
func (s *Store) CacheDir() string { return filepath.Join(s.dir, "cache") }

// FlightDir returns the directory the flight recorder dumps failed-request
// traces into (data/flight). The store only owns the location; the obsv
// layer writes and prunes the dumps.
func (s *Store) FlightDir() string { return filepath.Join(s.dir, "flight") }

func (s *Store) snapDir() string { return filepath.Join(s.dir, "snapshots") }
func (s *Store) sessDir() string { return filepath.Join(s.dir, "sessions") }

func (s *Store) snapPath(fp [32]byte) string {
	return filepath.Join(s.snapDir(), hex.EncodeToString(fp[:])+snapExt)
}

func (s *Store) sessPath(fp [32]byte) string {
	return filepath.Join(s.sessDir(), hex.EncodeToString(fp[:])+sessExt)
}

// snapshotFingerprint is the content address of a snapshot: SHA-256 over
// the kind- and length-prefixed section payloads. The columnar encoding is
// canonical, so equal relations (same name, schema, rows) share one file.
func snapshotFingerprint(secs []section) [32]byte {
	h := sha256.New()
	var pre [12]byte
	for _, sec := range secs {
		binary.LittleEndian.PutUint32(pre[0:4], sec.kind)
		binary.LittleEndian.PutUint64(pre[4:12], uint64(len(sec.payload)))
		h.Write(pre[:])
		h.Write(sec.payload)
	}
	var fp [32]byte
	h.Sum(fp[:0])
	return fp
}

func encodeSnapshot(rel *table.Relation) ([]byte, [32]byte, error) {
	var blob strings.Builder
	if _, err := table.EncodeColumnar(table.NewColumnar(rel), &blob); err != nil {
		return nil, [32]byte{}, err
	}
	secs := []section{
		{kind: secSnapName, payload: []byte(rel.Name)},
		{kind: secSnapColumnar, payload: []byte(blob.String())},
	}
	return buildFile(fileKindSnapshot, secs), snapshotFingerprint(secs), nil
}

// PutRelation snapshots rel into the store and returns its content
// fingerprint. Snapshots are immutable and deduplicated: putting an equal
// relation twice writes one file.
func (s *Store) PutRelation(rel *table.Relation) ([32]byte, error) {
	img, fp, err := encodeSnapshot(rel)
	if err != nil {
		return [32]byte{}, err
	}
	path := s.snapPath(fp)
	if _, err := os.Stat(path); err == nil {
		return fp, nil // already published; content-addressed files never change
	}
	if err := atomicWriteFile(path, img); err != nil {
		return [32]byte{}, err
	}
	s.snapshotsPut.Add(1)
	return fp, nil
}

// quarantine renames a corrupt file aside so it is never parsed again, and
// counts it. The data is kept for post-mortems rather than deleted.
func (s *Store) quarantine(path string) {
	s.corruptFiles.Add(1)
	os.Rename(path, path+corruptExt)
}

// openMapped maps (or pagewise-reads) a whole file. Callers must close the
// returned mapping.
func openMapped(path string) (*mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return mapFile(f, st.Size())
}

// loadSnapshotSections maps the snapshot file for fp and returns its parsed
// sections plus the mapping (which the caller must close; section payloads
// alias it). A framing defect or content-hash mismatch quarantines the file
// and returns an error — a corrupt snapshot is never served.
func (s *Store) loadSnapshotSections(fp [32]byte) ([]section, *mapped, error) {
	path := s.snapPath(fp)
	m, err := openMapped(path)
	if err != nil {
		return nil, nil, err
	}
	secs, perr := parseFile(m.bytes(), fileKindSnapshot)
	if perr == nil && snapshotFingerprint(secs) != fp {
		perr = fmt.Errorf("store: snapshot %s: content does not match its fingerprint", filepath.Base(path))
	}
	if perr != nil {
		m.close()
		s.quarantine(path)
		return nil, nil, perr
	}
	return secs, m, nil
}

// LoadRelation reads the snapshot named by fp back into a relation. The
// columnar payload is decoded with aliasing directly over the mapped file,
// and the materialized relation owns its rows, so the mapping is released
// before returning.
func (s *Store) LoadRelation(fp [32]byte) (*table.Relation, error) {
	secs, m, err := s.loadSnapshotSections(fp)
	if err != nil {
		return nil, err
	}
	s.mappedNow.Add(1)
	defer func() {
		m.close()
		s.mappedNow.Add(-1)
	}()
	name, err := findSection(secs, secSnapName)
	if err != nil {
		return nil, err
	}
	blob, err := findSection(secs, secSnapColumnar)
	if err != nil {
		return nil, err
	}
	c, err := table.DecodeColumnar(blob, true)
	if err != nil {
		// The CRC passed but the blob is structurally invalid — an encoder
		// bug or a deliberate corruption; either way, never serve it.
		s.quarantine(s.snapPath(fp))
		return nil, err
	}
	return c.Relation(string(name))
}

// MappedColumnar is a decoded snapshot whose arrays alias a live file
// mapping; Close releases the mapping, after which the Columnar must not
// be used. It is the zero-copy path for instances too large to materialize.
type MappedColumnar struct {
	C     *table.Columnar
	Name  string
	s     *Store
	m     *mapped
	moved atomic.Bool
}

// Close releases the underlying mapping. Safe to call twice.
func (mc *MappedColumnar) Close() error {
	if mc.moved.Swap(true) {
		return nil
	}
	mc.s.mappedNow.Add(-1)
	return mc.m.close()
}

// LoadColumnar opens the snapshot named by fp as a columnar view aliasing
// the mapped file — dictionaries are materialized, but value arrays, null
// masks, and posting lists read straight from the page cache.
func (s *Store) LoadColumnar(fp [32]byte) (*MappedColumnar, error) {
	secs, m, err := s.loadSnapshotSections(fp)
	if err != nil {
		return nil, err
	}
	name, err := findSection(secs, secSnapName)
	if err != nil {
		m.close()
		return nil, err
	}
	blob, err := findSection(secs, secSnapColumnar)
	if err != nil {
		m.close()
		return nil, err
	}
	c, err := table.DecodeColumnar(blob, mmapSupported)
	if err != nil {
		m.close()
		s.quarantine(s.snapPath(fp))
		return nil, err
	}
	s.mappedNow.Add(1)
	return &MappedColumnar{C: c, Name: string(name), s: s, m: m}, nil
}

// ReadFile returns the raw published bytes of the file addressed by fp —
// a session record if one exists, else a snapshot — for the cluster
// handoff endpoint. The framing is validated before the bytes are served.
func (s *Store) ReadFile(fp [32]byte) ([]byte, Kind, error) {
	if data, err := os.ReadFile(s.sessPath(fp)); err == nil {
		if _, perr := parseFile(data, fileKindSession); perr != nil {
			s.quarantine(s.sessPath(fp))
			return nil, KindUnknown, perr
		}
		return data, KindSession, nil
	}
	data, err := os.ReadFile(s.snapPath(fp))
	if err != nil {
		return nil, KindUnknown, err
	}
	secs, perr := parseFile(data, fileKindSnapshot)
	if perr == nil && snapshotFingerprint(secs) != fp {
		perr = fmt.Errorf("store: snapshot content does not match its fingerprint")
	}
	if perr != nil {
		s.quarantine(s.snapPath(fp))
		return nil, KindUnknown, perr
	}
	return data, KindSnapshot, nil
}

// Ingest verifies and publishes raw file bytes fetched from a peer. The
// claimed fingerprint must match the content: for snapshots the content
// hash, for session records the base fingerprint in the meta section.
// Ingesting a file that already exists is a no-op.
func (s *Store) Ingest(fp [32]byte, data []byte) (Kind, error) {
	if secs, err := parseFile(data, fileKindSnapshot); err == nil {
		if snapshotFingerprint(secs) != fp {
			return KindUnknown, fmt.Errorf("store: ingest: snapshot content does not match claimed fingerprint")
		}
		path := s.snapPath(fp)
		if _, err := os.Stat(path); err == nil {
			return KindSnapshot, nil
		}
		if err := atomicWriteFile(path, data); err != nil {
			return KindUnknown, err
		}
		s.ingestedFiles.Add(1)
		return KindSnapshot, nil
	}
	secs, err := parseFile(data, fileKindSession)
	if err != nil {
		return KindUnknown, fmt.Errorf("store: ingest: not a valid store file: %w", err)
	}
	rec, err := decodeSessionRecord(secs)
	if err != nil {
		return KindUnknown, fmt.Errorf("store: ingest: %w", err)
	}
	if rec.BaseFP != fp {
		return KindUnknown, fmt.Errorf("store: ingest: session record base fingerprint does not match claimed fingerprint")
	}
	path := s.sessPath(fp)
	if _, err := os.Stat(path); err == nil {
		return KindSession, nil
	}
	if err := atomicWriteFile(path, data); err != nil {
		return KindUnknown, err
	}
	s.ingestedFiles.Add(1)
	return KindSession, nil
}

// Sessions lists the base fingerprints of all persisted session records,
// sorted, skipping quarantined and foreign files.
func (s *Store) Sessions() ([][32]byte, error) {
	ents, err := os.ReadDir(s.sessDir())
	if err != nil {
		return nil, err
	}
	var out [][32]byte
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, sessExt) {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, sessExt))
		if err != nil || len(raw) != 32 {
			continue
		}
		var fp [32]byte
		copy(fp[:], raw)
		out = append(out, fp)
	}
	sort.Slice(out, func(i, j int) bool { return string(out[i][:]) < string(out[j][:]) })
	return out, nil
}

// Stats is a point-in-time inventory of the store.
type Stats struct {
	SnapshotBytes int64 // bytes on disk under snapshots/
	SessionBytes  int64 // bytes on disk under sessions/
	CacheBytes    int64 // bytes on disk under cache/
	Snapshots     int   // snapshot files resident
	Sessions      int   // session records resident
	MappedNow     int64 // snapshot mappings currently open
	SnapshotsPut  uint64
	SessionsPut   uint64
	CorruptFiles  uint64
	IngestedFiles uint64
}

func dirUsage(dir, ext string) (bytes int64, files int) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0
	}
	for _, e := range ents {
		info, err := e.Info()
		if err != nil || !info.Mode().IsRegular() {
			continue
		}
		bytes += info.Size()
		if ext == "" || strings.HasSuffix(e.Name(), ext) {
			files++
		}
	}
	return bytes, files
}

// Stats scans the data directory; cheap enough for a metrics scrape.
func (s *Store) Stats() Stats {
	st := Stats{
		MappedNow:     s.mappedNow.Load(),
		SnapshotsPut:  s.snapshotsPut.Load(),
		SessionsPut:   s.sessionsPut.Load(),
		CorruptFiles:  s.corruptFiles.Load(),
		IngestedFiles: s.ingestedFiles.Load(),
	}
	st.SnapshotBytes, st.Snapshots = dirUsage(s.snapDir(), snapExt)
	st.SessionBytes, st.Sessions = dirUsage(s.sessDir(), sessExt)
	st.CacheBytes, _ = dirUsage(s.CacheDir(), "")
	return st
}
