package incr

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/census"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/table"
)

// relFingerprint serializes a relation byte-for-byte (the golden_test.go
// hashing harness: name, schema, every cell in row order).
func relFingerprint(r *table.Relation) string {
	var b strings.Builder
	b.WriteString(r.Name)
	b.WriteByte('|')
	b.WriteString(strings.Join(r.Schema().Names(), ","))
	for i := 0; i < r.Len(); i++ {
		b.WriteByte('\n')
		b.WriteString(table.EncodeKey(r.Row(i)...))
	}
	return b.String()
}

func resultFingerprint(res *core.Result) [3]string {
	return [3]string{relFingerprint(res.R1Hat), relFingerprint(res.R2Hat), relFingerprint(res.VJoin)}
}

func censusInstance(hh, nCC int, seed int64) core.Input {
	d := census.Generate(census.Config{Households: hh, Areas: 6, Seed: seed})
	return core.Input{
		R1: d.Persons, R2: d.Housing,
		K1: "pid", K2: "hid", FK: "hid",
		CCs: d.GoodCCs(nCC), DCs: census.AllDCs(),
	}
}

// applyDeltaCold materializes base∘d as a fresh input for the cold oracle.
func applyDeltaCold(t *testing.T, base core.Input, d Delta) core.Input {
	t.Helper()
	out := base
	out.R1 = base.R1.Clone()
	out.CCs = append([]constraint.CC(nil), base.CCs...)
	for i, tg := range d.CCTargets {
		out.CCs[i].Target = tg
	}
	for _, ed := range d.R1Edits {
		out.R1.Set(ed.Row, ed.Col, ed.Val)
	}
	for _, row := range d.R1Appends {
		out.R1.MustAppend(row...)
	}
	return out
}

// randomDelta draws a small change set of the serving shape: target nudges,
// attribute edits, occasional appended rows.
func randomDelta(rng *rand.Rand, base core.Input) Delta {
	var d Delta
	if rng.Intn(2) == 0 || len(base.CCs) == 0 {
		d.CCTargets = map[int]int64{}
		for k := 0; k < 1+rng.Intn(3) && len(base.CCs) > 0; k++ {
			i := rng.Intn(len(base.CCs))
			t := base.CCs[i].Target + int64(rng.Intn(7)-3)
			if t < 0 {
				t = 0
			}
			d.CCTargets[i] = t
		}
	}
	if rng.Intn(2) == 0 && base.R1.Len() > 0 {
		for k := 0; k < 1+rng.Intn(3); k++ {
			row := rng.Intn(base.R1.Len())
			switch rng.Intn(2) {
			case 0:
				d.R1Edits = append(d.R1Edits, CellEdit{Row: row, Col: "Age", Val: table.Int(int64(rng.Intn(90)))})
			default:
				rels := []string{"Owner", "Child", "Member"}
				d.R1Edits = append(d.R1Edits, CellEdit{Row: row, Col: "Rel", Val: table.String(rels[rng.Intn(len(rels))])})
			}
		}
	}
	if rng.Intn(3) == 0 {
		next := int64(100000 + rng.Intn(1000))
		for k := 0; k < 1+rng.Intn(2); k++ {
			d.R1Appends = append(d.R1Appends, []table.Value{
				table.Int(next + int64(k)), table.String("Member"),
				table.Int(int64(20 + rng.Intn(50))), table.Int(int64(rng.Intn(2))), table.Null(),
			})
		}
	}
	return d
}

// TestSessionDeltaEquivalence is the golden-equivalence property test: for
// a grid of instances, modes, and seeds, a warm session chased through
// randomized deltas must produce results byte-identical to cold solves of
// the equivalent patched inputs — including re-solving the base between
// deltas (the rebase path).
func TestSessionDeltaEquivalence(t *testing.T) {
	instances := []struct {
		name string
		in   core.Input
	}{
		{"census-40x16", censusInstance(40, 16, 11)},
		{"census-60x24", censusInstance(60, 24, 7)},
		{"census-30x8", censusInstance(30, 8, 3)},
	}
	modes := []struct {
		name string
		opt  core.Options
	}{
		{"hybrid", core.Options{}},
		{"ilp-only", core.Options{Mode: core.ModeILPOnly}},
		{"hasse-only", core.Options{Mode: core.ModeHasseOnly}},
		{"input-order", core.Options{Order: core.OrderInput}},
		{"no-partition", core.Options{NoPartition: true}},
		{"baseline", core.BaselineOptions(0)},
	}
	eng := NewEngine(16)
	for _, inst := range instances {
		for _, mode := range modes {
			for _, seed := range []int64{1, 42} {
				t.Run(fmt.Sprintf("%s/%s/seed=%d", inst.name, mode.name, seed), func(t *testing.T) {
					opt := mode.opt
					opt.Seed = seed
					rng := rand.New(rand.NewSource(seed * 31))

					sess, err := eng.Open(inst.in, opt, nil)
					if err != nil {
						t.Fatalf("open: %v", err)
					}
					warmBase, err := sess.Solve()
					if err != nil {
						t.Fatalf("session solve: %v", err)
					}
					coldBase, err := core.Solve(inst.in, opt)
					if err != nil {
						t.Fatalf("cold solve: %v", err)
					}
					if resultFingerprint(warmBase) != resultFingerprint(coldBase) {
						t.Fatalf("base session solve differs from cold solve")
					}

					for round := 0; round < 4; round++ {
						d := randomDelta(rng, inst.in)
						warm, _, err := sess.Resolve(d)
						if err != nil {
							t.Fatalf("round %d: session resolve: %v", round, err)
						}
						cold, err := core.Solve(applyDeltaCold(t, inst.in, d), opt)
						if err != nil {
							t.Fatalf("round %d: cold solve: %v", round, err)
						}
						if resultFingerprint(warm) != resultFingerprint(cold) {
							t.Fatalf("round %d: delta solve differs from cold solve (delta %+v)", round, d)
						}
					}

					// Rebase back to the base instance: still identical.
					warmAgain, err := sess.Solve()
					if err != nil {
						t.Fatalf("re-solve base: %v", err)
					}
					if resultFingerprint(warmAgain) != resultFingerprint(coldBase) {
						t.Fatalf("re-solved base differs from cold solve")
					}
				})
			}
		}
	}
}

// TestSessionSplices asserts the delta path actually splices (the perf
// mechanism, not just the correctness contract): after a single CC target
// nudge on a partition-rich instance, most partitions must be reused and
// the compiled problem must be patched rather than rebuilt.
func TestSessionSplices(t *testing.T) {
	in := censusInstance(60, 24, 11)
	eng := NewEngine(4)
	sess, err := eng.Open(in, core.Options{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(); err != nil {
		t.Fatal(err)
	}
	res, _, err := sess.Resolve(Delta{CCTargets: map[int]int64{0: in.CCs[0].Target + 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.ProbReused {
		t.Errorf("delta solve did not reuse the compiled problem")
	}
	if res.Stats.Partitions == 0 {
		t.Fatalf("instance produced no partitions; test is vacuous")
	}
	if res.Stats.SplicedPartitions == 0 {
		t.Errorf("delta solve spliced no partitions (of %d)", res.Stats.Partitions)
	}
	t.Logf("spliced %d of %d partitions", res.Stats.SplicedPartitions, res.Stats.Partitions)
}

// TestPlanCacheHit: two sessions over structurally identical instances with
// different data share one compiled plan (plans resolve lazily at the
// first solve).
func TestPlanCacheHit(t *testing.T) {
	eng := NewEngine(4)
	a := censusInstance(40, 16, 11)
	sa, err := eng.Open(a, core.Options{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats(); got.PlanMisses != 0 {
		t.Fatalf("open should not compile a plan yet: stats %+v", got)
	}
	if _, err := sa.Solve(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats(); got.PlanMisses != 1 || got.PlanHits != 0 {
		t.Fatalf("first solve: stats %+v", got)
	}
	// Same generator config and CC count → same constraint structure; a
	// cell edit changes only the data.
	b := censusInstance(40, 16, 11)
	b.R1 = b.R1.Clone()
	b.R1.Set(0, "Age", table.Int(33)) // different data, same structure
	sb, err := eng.Open(b, core.Options{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sb.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats(); got.PlanHits != 1 {
		t.Fatalf("second session's solve should hit the plan cache: stats %+v", got)
	}
	if !res.Stats.PlanReused {
		t.Errorf("second session's solve did not mark PlanReused")
	}
}

// TestReappendedRowsAreDirty pins the truncate-then-reappend hazard: two
// consecutive deltas append different rows at the same recycled index; the
// second resolve must not splice colorings computed against the first
// append's values.
func TestReappendedRowsAreDirty(t *testing.T) {
	in := censusInstance(40, 16, 11)
	eng := NewEngine(4)
	opt := core.Options{Seed: 1}
	sess, err := eng.Open(in, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(); err != nil {
		t.Fatal(err)
	}
	mkRow := func(pid, age int64) []table.Value {
		return []table.Value{table.Int(pid), table.String("Member"), table.Int(age), table.Int(0), table.Null()}
	}
	dA := Delta{R1Appends: [][]table.Value{mkRow(90001, 50)}}
	if _, _, err := sess.Resolve(dA); err != nil {
		t.Fatal(err)
	}
	// Same index, very different age: the prior coloring of the partition
	// holding the appended row must not be replayed.
	dB := Delta{R1Appends: [][]table.Value{mkRow(90002, 7)}}
	warm, _, err := sess.Resolve(dB)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := core.Solve(applyDeltaCold(t, in, dB), opt)
	if err != nil {
		t.Fatal(err)
	}
	if resultFingerprint(warm) != resultFingerprint(cold) {
		t.Fatalf("re-appended row splice divergence: warm result differs from cold")
	}
}

// TestDeltaValidation rejects malformed deltas.
func TestDeltaValidation(t *testing.T) {
	in := censusInstance(20, 8, 5)
	eng := NewEngine(4)
	sess, err := eng.Open(in, core.Options{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Delta{
		{CCTargets: map[int]int64{len(in.CCs): 5}},
		{CCTargets: map[int]int64{0: -1}},
		{R1Edits: []CellEdit{{Row: in.R1.Len(), Col: "Age", Val: table.Int(1)}}},
		{R1Edits: []CellEdit{{Row: 0, Col: "nope", Val: table.Int(1)}}},
		{R1Edits: []CellEdit{{Row: 0, Col: "hid", Val: table.Int(1)}}},
		{R1Edits: []CellEdit{{Row: 0, Col: "Age", Val: table.String("x")}}},
		{R1Appends: [][]table.Value{{table.Int(1)}}},
	}
	for i, d := range bad {
		if _, _, err := sess.Resolve(d); err == nil {
			t.Errorf("bad delta %d accepted", i)
		}
	}
}

// TestPatchedFingerprint: the key computed without solving must equal the
// key Resolve returns for the same delta, and computing it must not disturb
// the session — the subsequent resolve stays byte-identical to the cold
// oracle.
func TestPatchedFingerprint(t *testing.T) {
	base := censusInstance(40, 12, 5)
	opt := core.Options{Seed: 9}
	eng := NewEngine(8)
	s, err := eng.Open(base, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if fp, err := s.PatchedFingerprint(Delta{}); err != nil || fp != s.BaseFingerprint() {
		t.Fatalf("zero delta: fp=%x err=%v, want base fingerprint", fp, err)
	}
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 8; iter++ {
		d := randomDelta(rng, base)
		pre, err := s.PatchedFingerprint(d)
		if err != nil {
			t.Fatalf("iter %d: patched fingerprint: %v", iter, err)
		}
		res, key, err := s.Resolve(d)
		if err != nil {
			t.Fatalf("iter %d: resolve: %v", iter, err)
		}
		if pre != key {
			t.Fatalf("iter %d: PatchedFingerprint %x != Resolve key %x", iter, pre, key)
		}
		// The pre-computed key must also match a from-scratch fingerprint of
		// the patched input, and the session must still match the cold oracle.
		cold := applyDeltaCold(t, base, d)
		want, err := core.Fingerprint(cold, opt)
		if err != nil {
			t.Fatal(err)
		}
		if pre != want {
			t.Fatalf("iter %d: fingerprint differs from cold oracle", iter)
		}
		coldRes, err := core.Solve(cold, opt)
		if err != nil {
			t.Fatalf("iter %d: cold solve: %v", iter, err)
		}
		if resultFingerprint(res) != resultFingerprint(coldRes) {
			t.Fatalf("iter %d: warm result diverged from cold after PatchedFingerprint", iter)
		}
	}
	// Invalid deltas are rejected without touching state.
	if _, err := s.PatchedFingerprint(Delta{CCTargets: map[int]int64{999: 1}}); err == nil {
		t.Fatal("out-of-range CC index accepted")
	}
}

// TestAdoptPlan: a plan decoded from its binary form and adopted into a
// fresh engine must serve the first solve as a cache hit (warm
// classification), matching the original solve byte for byte.
func TestAdoptPlan(t *testing.T) {
	in := censusInstance(40, 12, 3)
	opt := core.Options{Seed: 4}

	eng1 := NewEngine(8)
	s1, err := eng1.Open(in, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := s1.Solve()
	if err != nil {
		t.Fatal(err)
	}
	pl := s1.Plan()
	if pl == nil {
		t.Fatal("no plan after first solve")
	}

	enc := core.EncodePlan(pl)
	restored, err := core.DecodePlan(enc)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := NewEngine(8)
	eng2.AdoptPlan(restored)
	s2, err := eng2.Open(in, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if resultFingerprint(res1) != resultFingerprint(res2) {
		t.Fatal("solve with adopted plan diverged")
	}
	st := eng2.Stats()
	if st.PlanHits != 1 || st.PlanMisses != 0 {
		t.Fatalf("adopted plan not hit: hits=%d misses=%d", st.PlanHits, st.PlanMisses)
	}
	if !res2.Stats.PlanReused {
		t.Fatal("solve with adopted plan not classified as plan reuse")
	}
}
