// Package incr is the incremental solve engine: it separates a solve into a
// reusable plan (the compiled, data-independent problem structure, keyed by
// core.StructuralFingerprint and cached in an LRU) and a warm session that
// re-solves small deltas — a CC bound nudged, rows edited or appended —
// against the retained compiled problem, splicing untouched phase-2
// partitions from the previous solve.
//
// The correctness contract is strict: every warm or delta solve produces a
// Result byte-identical to a cold core.Solve of the equivalent patched
// input. The engine only reuses artifacts that are pure functions of inputs
// the delta did not change, and falls back to a cold solve whenever it
// cannot prove reuse sound.
//
// Deltas are always expressed relative to a session's base instance (the
// instance it was opened with), which is the shape of real what-if serving
// traffic: many alternative small deltas probed against one submitted
// instance. The session rebases its working copy between deltas, so probing
// delta A then delta B costs two partial re-solves, not a rebuild.
package incr

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/sched"
	"repro/internal/table"
)

// CellEdit replaces one R1 cell: row index, column name, new value. Editing
// the FK column is rejected — it is the solver's output, not an input.
type CellEdit struct {
	Row int
	Col string
	Val table.Value
}

// Delta is a change set relative to a session's base instance. The zero
// Delta re-solves the base itself (warm, fully spliced).
type Delta struct {
	// CCTargets remaps CC indices (into the base instance's CC slice) to
	// new targets — the "Ntarget shift" / bound-nudge workload.
	CCTargets map[int]int64
	// R1Edits rewrites attribute cells of existing base rows.
	R1Edits []CellEdit
	// R1Appends adds rows to R1 (full-arity, FK cell conventionally null).
	R1Appends [][]table.Value
}

// IsZero reports whether the delta changes nothing.
func (d Delta) IsZero() bool {
	return len(d.CCTargets) == 0 && len(d.R1Edits) == 0 && len(d.R1Appends) == 0
}

// Engine owns the structural plan cache shared by its sessions. One engine
// per process (or per server) is the intended shape; the zero value is not
// usable, construct with NewEngine.
type Engine struct {
	plans     *cache.LRU[*core.Plan]
	planHits  atomic.Uint64
	planMiss  atomic.Uint64
	openCount atomic.Uint64
}

// NewEngine returns an engine whose plan cache holds at most planEntries
// compiled plans (<= 0 selects 128).
func NewEngine(planEntries int) *Engine {
	return &Engine{plans: cache.NewLRU[*core.Plan](planEntries, nil)}
}

// EngineStats is a snapshot of the engine's reuse counters.
type EngineStats struct {
	Plans        int
	PlanHits     uint64
	PlanMisses   uint64
	SessionsOpen uint64 // sessions ever opened (not live; the caller owns lifetimes)
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Plans:        e.plans.Len(),
		PlanHits:     e.planHits.Load(),
		PlanMisses:   e.planMiss.Load(),
		SessionsOpen: e.openCount.Load(),
	}
}

// PlanFor returns the compiled plan for the instance's structural
// fingerprint, compiling and caching it on a miss. cached reports whether
// the plan came from the cache — a freshly compiled plan is not "reuse".
func (e *Engine) PlanFor(in core.Input, opt core.Options) (pl *core.Plan, sfp [32]byte, cached bool, err error) {
	sfp, err = core.StructuralFingerprint(in, opt)
	if err != nil {
		return nil, sfp, false, err
	}
	if pl, ok := e.plans.Get(sfp); ok {
		e.planHits.Add(1)
		return pl, sfp, true, nil
	}
	e.planMiss.Add(1)
	pl, err = core.CompilePlan(in, opt)
	if err != nil {
		return nil, sfp, false, err
	}
	e.plans.Put(sfp, pl)
	return pl, sfp, false, nil
}

// cellKey addresses one R1 cell in the undo overlay.
type cellKey struct {
	row int
	col string
}

// Session is a warm solver session over one base instance. It owns copies
// of both relations and both constraint slices, so callers may discard or
// mutate their input after Open — with one caveat: the constraint copies
// are shallow (predicate atom slices stay shared), so mutating an atom of
// a CC/DC passed to Open is not supported. Instead of keeping a second
// pristine copy of R1, the session tracks an undo overlay — the base
// values of every currently-patched cell and target — and rebases the
// working copy between deltas. A session is NOT safe for concurrent use;
// serialize Solve/Resolve calls.
type Session struct {
	eng  *Engine
	opt  core.Options
	pool *sched.Pool

	work        core.Input              // base patched by the currently-applied delta
	baseLen     int                     // base R1 row count (appends live past it)
	baseTargets []int64                 // base CC targets
	overlay     map[cellKey]table.Value // base values of currently-patched cells
	prevTargets map[int]int64           // CC indices currently patched
	prevAppends bool                    // the previous delta appended rows

	state      *core.SessionState
	plan       *core.Plan
	planCached bool // the plan came from the cache, not compiled here
	baseFP     [32]byte
	sfp        [32]byte
	solved     bool
}

// Open validates the instance, compiles (or fetches) its structural plan,
// and returns a session ready to Solve. pool, when non-nil, bounds the
// solver's parallelism (core.SolveOn semantics); nil derives a pool from
// opt.Workers.
//
//lint:ctxflow opening only clones tables and stores the pool; no solver work runs until Solve/Resolve, whose Context variants carry cancellation
func (e *Engine) Open(in core.Input, opt core.Options, pool *sched.Pool) (*Session, error) {
	if in.R1 == nil || in.R2 == nil {
		return nil, fmt.Errorf("incr: nil relation")
	}
	baseFP, err := core.Fingerprint(in, opt)
	if err != nil {
		return nil, err
	}
	return e.OpenKeyed(in, opt, pool, baseFP)
}

// OpenKeyed is Open for callers that already computed the instance's full
// content fingerprint (the serving layer fingerprints every request before
// deciding to open a session); it skips recomputing it. Opening is cheap —
// one R1 clone plus bookkeeping; the structural plan is fetched (or
// compiled) lazily at the first solve, so a session can be parked behind a
// cache hit without paying for classification it may never need.
//
//lint:ctxflow opening only clones tables and stores the pool; no solver work runs until Solve/Resolve, whose Context variants carry cancellation
func (e *Engine) OpenKeyed(in core.Input, opt core.Options, pool *sched.Pool, baseFP [32]byte) (*Session, error) {
	if in.R1 == nil || in.R2 == nil {
		return nil, fmt.Errorf("incr: nil relation")
	}
	if pool == nil {
		pool = core.PoolFor(opt)
	}
	work := in
	work.R1 = in.R1.Clone()
	work.R2 = in.R2.Clone()
	work.CCs = append([]constraint.CC(nil), in.CCs...)
	work.DCs = append([]constraint.DC(nil), in.DCs...)
	baseTargets := make([]int64, len(in.CCs))
	for i, cc := range in.CCs {
		baseTargets[i] = cc.Target
	}
	e.openCount.Add(1)
	return &Session{
		eng: e, opt: opt, pool: pool,
		work: work, baseLen: work.R1.Len(), baseTargets: baseTargets,
		overlay: make(map[cellKey]table.Value),
		state:   core.NewSessionState(),
		baseFP:  baseFP,
	}, nil
}

// BaseFingerprint returns the full content fingerprint of the session's
// base instance — the key delta requests reference.
func (s *Session) BaseFingerprint() [32]byte { return s.baseFP }

// StructuralFingerprint returns the structural fingerprint of the most
// recent solve's instance (the plan cache key); zero before the first
// solve — the plan is resolved lazily.
func (s *Session) StructuralFingerprint() [32]byte { return s.sfp }

// Instance returns the session's working input: the base instance patched
// by the most recently resolved delta. The returned value shares the
// session's mutable state — read it only between calls (or while holding
// whatever lock serializes the session) and never mutate it. The serving
// layer uses it to evaluate quality metrics on the patched instance when
// encoding a delta response.
func (s *Session) Instance() core.Input { return s.work }

// Solve solves the base instance: cold (plan-assisted) on the first call,
// warm — fully spliced — on repeats. It also primes the warm state the
// first Resolve builds on.
func (s *Session) Solve() (*core.Result, error) {
	res, _, err := s.resolve(nil, Delta{})
	return res, err
}

// SolveContext is Solve with cooperative cancellation
// (core.SolveOnContext semantics). A canceled solve drops the session's
// warm state; the next solve runs cold.
func (s *Session) SolveContext(ctx context.Context) (*core.Result, error) {
	res, _, err := s.resolve(ctx, Delta{})
	return res, err
}

// Resolve solves the base instance patched by delta and returns the result
// together with the full content fingerprint of the patched instance (the
// cache key an equivalent cold submission would carry). The result is
// byte-identical to core.Solve on the patched instance.
func (s *Session) Resolve(d Delta) (*core.Result, [32]byte, error) {
	return s.ResolveContext(nil, d)
}

// ResolveContext is Resolve with cooperative cancellation
// (core.SolveOnContext semantics: checked at the solver's phase
// boundaries, nil never cancels). A canceled solve drops the session's
// warm state; the next solve runs cold.
func (s *Session) ResolveContext(ctx context.Context, d Delta) (*core.Result, [32]byte, error) {
	if err := s.validate(d); err != nil {
		return nil, [32]byte{}, err
	}
	return s.resolve(ctx, d)
}

// Plan returns the session's resolved structural plan — nil until the first
// cold solve resolves it. The serving layer persists it alongside parked
// session state so a restarted process skips re-classification.
func (s *Session) Plan() *core.Plan { return s.plan }

// AdoptPlan inserts an externally obtained plan (e.g. one restored from the
// durable store) into the engine's cache under its own structural key, so
// sessions opened after a restart find it and classify as warm rather than
// compiling cold.
func (e *Engine) AdoptPlan(pl *core.Plan) {
	if pl != nil {
		e.plans.Put(pl.Key(), pl)
	}
}

// PatchedFingerprint computes the full content fingerprint of the base
// instance patched by d — the cache key Resolve(d) would return — WITHOUT
// solving and without touching the session's mutable state. The serving
// layer uses it to answer a delta from the result cache with zero solver
// work. It costs one R1 clone; the session's working copy, overlay, and
// warm state are untouched.
func (s *Session) PatchedFingerprint(d Delta) ([32]byte, error) {
	if err := s.validate(d); err != nil {
		return [32]byte{}, err
	}
	if d.IsZero() {
		return s.baseFP, nil
	}
	// Reconstruct the pristine base from the working copy: undo the overlay,
	// withdraw appended rows, restore patched targets — all on clones.
	in := s.work
	r1 := s.work.R1.Clone()
	//lint:ordered each overlay entry restores a distinct cell of the clone
	for cell, v := range s.overlay {
		r1.Set(cell.row, cell.col, v)
	}
	if r1.Len() > s.baseLen {
		r1.Truncate(s.baseLen)
	}
	ccs := append([]constraint.CC(nil), s.work.CCs...)
	for i := range ccs {
		ccs[i].Target = s.baseTargets[i]
	}
	// Apply d to the reconstruction.
	//lint:ordered distinct CC indices write distinct slots; validate already rejected bad indices
	for i, t := range d.CCTargets {
		ccs[i].Target = t
	}
	for _, ed := range d.R1Edits {
		r1.Set(ed.Row, ed.Col, ed.Val)
	}
	for _, row := range d.R1Appends {
		r1.MustAppend(row...)
	}
	in.R1 = r1
	in.CCs = ccs
	return core.Fingerprint(in, s.opt)
}

// validate rejects deltas that do not type-check against the base instance.
func (s *Session) validate(d Delta) error {
	baseLen := s.baseLen
	schema := s.work.R1.Schema()
	// Validate CC targets in ascending index order so a delta with several
	// bad entries always reports the same one — ranging the map here made
	// the error (and thus the service's HTTP response) vary run to run.
	ccIdxs := make([]int, 0, len(d.CCTargets))
	for i := range d.CCTargets {
		ccIdxs = append(ccIdxs, i)
	}
	sort.Ints(ccIdxs)
	for _, i := range ccIdxs {
		t := d.CCTargets[i]
		if i < 0 || i >= len(s.work.CCs) {
			return fmt.Errorf("incr: delta: CC index %d out of range (instance has %d CCs)", i, len(s.work.CCs))
		}
		if t < 0 {
			return fmt.Errorf("incr: delta: CC %d: negative target %d", i, t)
		}
	}
	for _, ed := range d.R1Edits {
		if ed.Row < 0 || ed.Row >= baseLen {
			return fmt.Errorf("incr: delta: edit row %d out of range (R1 has %d rows)", ed.Row, baseLen)
		}
		j, ok := schema.Index(ed.Col)
		if !ok {
			return fmt.Errorf("incr: delta: edit column %q not in R1", ed.Col)
		}
		if ed.Col == s.work.FK {
			return fmt.Errorf("incr: delta: column %q is the FK output column; it cannot be edited", ed.Col)
		}
		if !ed.Val.IsNull() {
			want := schema.Col(j).Type
			if (want == table.TypeInt && ed.Val.Kind() != table.KindInt) ||
				(want == table.TypeString && ed.Val.Kind() != table.KindString) {
				return fmt.Errorf("incr: delta: edit row %d column %q: value kind %v does not match column type %v",
					ed.Row, ed.Col, ed.Val.Kind(), want)
			}
		}
	}
	for i, row := range d.R1Appends {
		if len(row) != schema.Len() {
			return fmt.Errorf("incr: delta: appended row %d has %d cells, R1 schema has %d columns",
				i, len(row), schema.Len())
		}
		for j, v := range row {
			if v.IsNull() {
				continue
			}
			want := schema.Col(j).Type
			if (want == table.TypeInt && v.Kind() != table.KindInt) ||
				(want == table.TypeString && v.Kind() != table.KindString) {
				return fmt.Errorf("incr: delta: appended row %d column %q: value kind %v does not match column type %v",
					i, schema.Col(j).Name, v.Kind(), want)
			}
		}
	}
	return nil
}

// resolve rebases the working instance from the previously applied delta to
// d, declares the combined change set, and runs the session solve.
func (s *Session) resolve(ctx context.Context, d Delta) (*core.Result, [32]byte, error) {
	tr := obsv.FromContext(ctx)
	ch := s.rebase(d)
	if !s.solved {
		ch.Full = true
	}
	if ch.Full && s.plan == nil {
		// Lazy plan resolution: compiled (or fetched) only when a cold
		// build actually needs it. Failure is not fatal — the solver
		// classifies directly.
		if pl, sfp, cached, err := s.eng.PlanFor(s.work, s.opt); err == nil {
			s.plan, s.sfp, s.planCached = pl, sfp, cached
			if cached {
				tr.Event("session: structural plan cache hit")
			} else {
				tr.Event("session: structural plan compiled")
			}
		}
	}
	res, err := core.SolveSessionContext(ctx, s.work, s.opt, s.state, ch, s.plan, s.pool)
	if res != nil {
		tr.Event(fmt.Sprintf("session: solve reuse prob=%t plan=%t spliced=%d",
			res.Stats.ProbReused, res.Stats.PlanReused, res.Stats.SplicedPartitions))
	}
	if res != nil && !s.planCached {
		// The plan was compiled by this very session; classification was
		// not reused from anywhere, whatever the solver's flag says.
		res.Stats.PlanReused = false
	}
	if err != nil {
		// The warm state may be stale; drop it so the next call runs cold.
		s.state.Reset()
		s.solved = false
		return nil, [32]byte{}, err
	}
	s.solved = true
	key := s.baseFP
	if !d.IsZero() {
		key, err = core.Fingerprint(s.work, s.opt)
		if err != nil {
			return nil, [32]byte{}, err
		}
	}
	return res, key, nil
}

// rebase mutates the working instance from (base ∘ prev) to (base ∘ d) and
// returns the Changes contract covering both transitions: rows restored
// from the undo overlay and rows edited by d are all declared dirty.
func (s *Session) rebase(d Delta) core.Changes {
	baseLen := s.baseLen
	dirtyRows := make(map[int]bool)
	dirtyCols := make(map[string]bool)

	// Undo the previous delta: restore patched cells from the overlay,
	// withdraw appended rows, restore patched targets.
	//lint:ordered each overlay entry restores a distinct cell and marks set entries; no write overlaps another
	for cell, v := range s.overlay {
		s.work.R1.Set(cell.row, cell.col, v)
		dirtyRows[cell.row] = true
		dirtyCols[cell.col] = true
	}
	clear(s.overlay)
	if s.work.R1.Len() > baseLen {
		s.work.R1.Truncate(baseLen)
	}
	targets := false
	//lint:ordered distinct CC indices write distinct slots; targets only latches true
	for i := range s.prevTargets {
		s.work.CCs[i].Target = s.baseTargets[i]
		targets = true
	}

	// Apply d, recording base values into the overlay.
	s.prevTargets = nil
	if len(d.CCTargets) > 0 {
		s.prevTargets = make(map[int]int64, len(d.CCTargets))
		//lint:ordered distinct CC indices write distinct slots; validate already rejected bad indices deterministically
		for i, t := range d.CCTargets {
			s.prevTargets[i] = t
			s.work.CCs[i].Target = t
			targets = true
		}
	}
	for _, ed := range d.R1Edits {
		ck := cellKey{row: ed.Row, col: ed.Col}
		if _, ok := s.overlay[ck]; !ok {
			s.overlay[ck] = s.work.R1.Value(ed.Row, ed.Col)
		}
		s.work.R1.Set(ed.Row, ed.Col, ed.Val)
		dirtyRows[ed.Row] = true
		dirtyCols[ed.Col] = true
	}
	for _, row := range d.R1Appends {
		s.work.R1.MustAppend(row...)
	}
	// Row indices past the base length are recycled across deltas (truncate
	// then re-append), so a row index present in both the previous and the
	// new appended tail may carry entirely different values; declare every
	// appended index dirty across every column so the compiled problem's
	// patch path rewrites those cells and rebuilds their snapshot columns.
	if s.prevAppends || len(d.R1Appends) > 0 {
		for i := baseLen; i < s.work.R1.Len(); i++ {
			dirtyRows[i] = true
		}
		for _, c := range s.work.R1.Schema().Names() {
			dirtyCols[c] = true
		}
	}
	s.prevAppends = len(d.R1Appends) > 0

	ch := core.Changes{CCTargets: targets}
	if len(dirtyRows) > 0 {
		ch.DirtyRows = make([]int, 0, len(dirtyRows))
		for r := range dirtyRows {
			ch.DirtyRows = append(ch.DirtyRows, r)
		}
		sort.Ints(ch.DirtyRows)
		ch.DirtyCols = make([]string, 0, len(dirtyCols))
		for c := range dirtyCols {
			ch.DirtyCols = append(ch.DirtyCols, c)
		}
		sort.Strings(ch.DirtyCols)
	}
	return ch
}
