// Package census generates the synthetic dataset used by the experiment
// harness. The paper evaluates on person/housing relations derived from the
// 2010 U.S. Decennial Census (restricted access); this package substitutes
// a generator that produces households with realistic composition whose
// member ages satisfy all twelve denial constraints of Table 4 by
// construction — the property the real data has — and then erases the
// foreign-key column. Cardinality-constraint targets are computed from the
// ground-truth join, so the generated C-Extension instances are satisfiable
// exactly as the paper's are.
package census

import (
	"fmt"
	"math/rand"

	"repro/internal/table"
)

// Relationship names (the paper's Rel column; Table 4/5 vocabulary).
const (
	RelOwner       = "Owner"
	RelSpouse      = "Spouse"
	RelPartner     = "UnmarriedPartner"
	RelBioChild    = "BiologicalChild"
	RelAdoptChild  = "AdoptedChild"
	RelStepChild   = "StepChild"
	RelFosterChild = "FosterChild"
	RelSibling     = "Sibling"
	RelParent      = "Parent"
	RelParentInLaw = "ParentInLaw"
	RelChildInLaw  = "ChildInLaw"
	RelGrandchild  = "Grandchild"
	RelRoommate    = "Roommate"
)

// Tenure values.
var tenures = []string{"Owned", "Mortgaged", "Rented"}

// Config sizes the generated database. The paper's scale 1× is
// {Households: 9820} yielding ≈25k persons (Table 1); benchmarks use
// smaller unit sizes with the same ratios.
type Config struct {
	Households int
	Areas      int // number of distinct Area values (default 24)
	Tenures    int // number of tenure values used, 1..3 (default 3)
	// ExtraCols adds non-key Housing columns beyond (Tenure, Area) in the
	// order of §6.1: 2 -> +County,St; 4 -> +Div,Reg; 6 -> +Water,Bath;
	// 8 -> +Fridge,Stove. Figure 12 sweeps this.
	ExtraCols int
	Seed      int64
}

// Data is a generated instance: Persons with a null hid column, Housing,
// and the ground truth needed to derive consistent CC targets.
type Data struct {
	Persons *table.Relation // (pid, Rel, Age, MultiLing, hid=null)
	Housing *table.Relation // (hid, Tenure, Area, [extra...])
	Truth   []table.Value   // ground-truth hid per person row
	// TrueJoin is Persons ⋈ Housing under the ground truth; CC targets are
	// counts over this relation.
	TrueJoin *table.Relation
}

// PersonsSchema returns the Persons schema.
func PersonsSchema() *table.Schema {
	return table.NewSchema(
		table.IntCol("pid"), table.StrCol("Rel"), table.IntCol("Age"),
		table.IntCol("MultiLing"), table.IntCol("hid"))
}

// HousingSchema returns the Housing schema for the given number of extra
// columns.
func HousingSchema(extraCols int) *table.Schema {
	cols := []table.Column{table.IntCol("hid"), table.StrCol("Tenure"), table.StrCol("Area")}
	extra := []table.Column{
		table.StrCol("County"), table.StrCol("St"), table.StrCol("Div"), table.StrCol("Reg"),
		table.IntCol("Water"), table.IntCol("Bath"), table.IntCol("Fridge"), table.IntCol("Stove"),
	}
	if extraCols > len(extra) {
		extraCols = len(extra)
	}
	return table.NewSchema(append(cols, extra[:extraCols]...)...)
}

// Generate builds a synthetic instance. The same Config yields the same
// data.
func Generate(cfg Config) *Data {
	if cfg.Households <= 0 {
		cfg.Households = 100
	}
	if cfg.Areas <= 0 {
		cfg.Areas = 24
	}
	if cfg.Tenures <= 0 || cfg.Tenures > len(tenures) {
		cfg.Tenures = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	housing := table.NewRelation("Housing", HousingSchema(cfg.ExtraCols))
	persons := table.NewRelation("Persons", PersonsSchema())
	withTruth := table.NewRelation("Persons", PersonsSchema())
	var truth []table.Value

	pid := int64(1)
	for h := 0; h < cfg.Households; h++ {
		hid := int64(h + 1)
		area := rng.Intn(cfg.Areas)
		ten := tenures[rng.Intn(cfg.Tenures)]
		row := []table.Value{table.Int(hid), table.String(ten), table.String(fmt.Sprintf("Area%02d", area))}
		row = appendExtraCols(row, cfg.ExtraCols, area, rng)
		housing.MustAppend(row...)

		for _, m := range genHousehold(rng) {
			persons.MustAppend(table.Int(pid), table.String(m.rel), table.Int(m.age), table.Int(m.multi), table.Null())
			withTruth.MustAppend(table.Int(pid), table.String(m.rel), table.Int(m.age), table.Int(m.multi), table.Int(hid))
			truth = append(truth, table.Int(hid))
			pid++
		}
	}
	tj, err := table.Join(withTruth, "hid", housing, "hid")
	if err != nil {
		panic(err) // construction bug, not input error
	}
	return &Data{Persons: persons, Housing: housing, Truth: truth, TrueJoin: tj}
}

// appendExtraCols derives the additional housing attributes. County and St
// are coarser groupings of Area; Div and Reg are determined by St (as the
// paper notes); the appliance flags are random bits.
func appendExtraCols(row []table.Value, extraCols, area int, rng *rand.Rand) []table.Value {
	vals := []table.Value{
		table.String(fmt.Sprintf("County%02d", area/2)),
		table.String(fmt.Sprintf("St%02d", area/4)),
		table.String(fmt.Sprintf("Div%d", area/8)),
		table.String(fmt.Sprintf("Reg%d", area/16)),
		table.Int(int64(rng.Intn(2))),
		table.Int(int64(rng.Intn(2))),
		table.Int(int64(rng.Intn(2))),
		table.Int(int64(rng.Intn(2))),
	}
	if extraCols > len(vals) {
		extraCols = len(vals)
	}
	return append(row, vals[:extraCols]...)
}

type member struct {
	rel   string
	age   int64
	multi int64
}

// genHousehold draws one household's members. Every age range below is the
// intersection of the applicable Table 4 constraints with a plausible human
// range, so the ground truth satisfies S_all_DC.
func genHousehold(rng *rand.Rand) []member {
	bit := func(p float64) int64 {
		if rng.Float64() < p {
			return 1
		}
		return 0
	}
	uniform := func(lo, hi int64) int64 {
		if hi < lo {
			return lo
		}
		return lo + rng.Int63n(hi-lo+1)
	}
	a := uniform(20, 90) // owner age
	ownerMulti := bit(0.3)
	ms := []member{{rel: RelOwner, age: a, multi: ownerMulti}}

	// Spouse XOR unmarried partner (DC 12), age within ±50 (DC 3).
	switch {
	case rng.Float64() < 0.55:
		ms = append(ms, member{rel: RelSpouse, age: uniform(max64(16, a-49), min64(99, a+49)), multi: bit(0.3)})
	case rng.Float64() < 0.12:
		ms = append(ms, member{rel: RelPartner, age: uniform(max64(16, a-49), min64(99, a+49)), multi: bit(0.3)})
	}

	// Children (DCs 1, 2, 8): window depends on the owner's MultiLing.
	if a >= 14 {
		childLo := a - 69
		if ownerMulti == 1 {
			childLo = a - 50
		}
		childLo = max64(0, childLo)
		childHi := a - 12
		nChildren := 0
		switch r := rng.Float64(); {
		case r < 0.38:
			nChildren = 0
		case r < 0.68:
			nChildren = 1
		case r < 0.90:
			nChildren = 2
		default:
			nChildren = 3
		}
		for c := 0; c < nChildren && childHi >= childLo; c++ {
			rel := RelBioChild
			switch r := rng.Float64(); {
			case r < 0.70:
			case r < 0.85:
				rel = RelStepChild
			case r < 0.95:
				rel = RelAdoptChild
			default:
				rel = RelFosterChild
			}
			ms = append(ms, member{rel: rel, age: uniform(childLo, childHi), multi: bit(0.3)})
		}
	}

	// Sibling (DC 4): within ±35.
	if rng.Float64() < 0.08 {
		ms = append(ms, member{rel: RelSibling, age: uniform(max64(0, a-35), min64(99, a+35)), multi: bit(0.3)})
	}
	// Parent / parent-in-law (DC 5); none when the owner is over 94 (DC 11).
	if a <= 94 {
		if rng.Float64() < 0.07 && a+12 <= 99 {
			ms = append(ms, member{rel: RelParent, age: uniform(a+12, min64(99, a+115)), multi: bit(0.3)})
		}
		if rng.Float64() < 0.05 && a+12 <= 99 {
			ms = append(ms, member{rel: RelParentInLaw, age: uniform(a+12, min64(99, a+115)), multi: bit(0.3)})
		}
	}
	// Grandchild (DC 6) and child-in-law (DC 7); none when the owner is
	// under 30 (DC 10).
	if a >= 30 {
		if rng.Float64() < 0.08 {
			ms = append(ms, member{rel: RelGrandchild, age: uniform(max64(0, a-115), a-30), multi: bit(0.3)})
		}
		if rng.Float64() < 0.05 {
			ms = append(ms, member{rel: RelChildInLaw, age: uniform(max64(0, a-69), a-1), multi: bit(0.3)})
		}
	}
	// Roommate: no age-gap DC; Table 5 uses [15, 85].
	if rng.Float64() < 0.10 {
		ms = append(ms, member{rel: RelRoommate, age: uniform(15, 85), multi: bit(0.3)})
	}
	return ms
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
