package census

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/metrics"
	"repro/internal/table"
)

func gen(t *testing.T, hh int) *Data {
	t.Helper()
	return Generate(Config{Households: hh, Areas: 8, Seed: 42})
}

func TestGenerateShape(t *testing.T) {
	d := gen(t, 200)
	if d.Housing.Len() != 200 {
		t.Fatalf("housing = %d", d.Housing.Len())
	}
	// Paper ratio: ~2.56 persons per household; accept a broad band.
	ratio := float64(d.Persons.Len()) / float64(d.Housing.Len())
	if ratio < 1.8 || ratio > 3.5 {
		t.Errorf("persons/households = %v", ratio)
	}
	if len(d.Truth) != d.Persons.Len() {
		t.Fatalf("truth size %d vs %d persons", len(d.Truth), d.Persons.Len())
	}
	if d.TrueJoin.Len() != d.Persons.Len() {
		t.Fatalf("true join = %d", d.TrueJoin.Len())
	}
	// FK column is erased.
	for i := 0; i < d.Persons.Len(); i++ {
		if !d.Persons.Value(i, "hid").IsNull() {
			t.Fatal("hid leaked into Persons")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Households: 50, Areas: 4, Seed: 7})
	b := Generate(Config{Households: 50, Areas: 4, Seed: 7})
	if a.Persons.Len() != b.Persons.Len() {
		t.Fatal("nondeterministic size")
	}
	for i := 0; i < a.Persons.Len(); i++ {
		for j := 0; j < a.Persons.Schema().Len(); j++ {
			if a.Persons.At(i, j) != b.Persons.At(i, j) {
				t.Fatalf("cell (%d,%d) differs", i, j)
			}
		}
	}
	c := Generate(Config{Households: 50, Areas: 4, Seed: 8})
	same := true
	for i := 0; i < min(a.Persons.Len(), c.Persons.Len()); i++ {
		if a.Persons.At(i, 2) != c.Persons.At(i, 2) {
			same = false
			break
		}
	}
	if same && a.Persons.Len() == c.Persons.Len() {
		t.Error("different seeds produced identical data")
	}
}

// TestGroundTruthSatisfiesAllDCs is the key generator invariant: like the
// real census data, the synthetic ground truth must violate none of the
// twelve Table 4 constraints.
func TestGroundTruthSatisfiesAllDCs(t *testing.T) {
	d := gen(t, 400)
	withTruth := d.Persons.Clone()
	for i := 0; i < withTruth.Len(); i++ {
		withTruth.Set(i, "hid", d.Truth[i])
	}
	if frac := metrics.DCErrorFraction(withTruth, "hid", AllDCs()); frac != 0 {
		t.Fatalf("ground truth DC error = %v", frac)
	}
}

func TestEachHouseholdOneOwner(t *testing.T) {
	d := gen(t, 300)
	owners := make(map[table.Value]int)
	for i := 0; i < d.Persons.Len(); i++ {
		if d.Persons.Value(i, "Rel").Str() == RelOwner {
			owners[d.Truth[i]]++
		}
	}
	if len(owners) != d.Housing.Len() {
		t.Errorf("households with owners = %d of %d", len(owners), d.Housing.Len())
	}
	for h, n := range owners {
		if n != 1 {
			t.Fatalf("household %v has %d owners", h, n)
		}
	}
}

func TestDCCounts(t *testing.T) {
	good := GoodDCs()
	all := AllDCs()
	if len(all) <= len(good) {
		t.Fatalf("all (%d) should extend good (%d)", len(all), len(good))
	}
	// Items 1-8 expand to 28 conjunctive DCs; items 9-12 add 8 more.
	if len(good) != 28 {
		t.Errorf("good DCs = %d, want 28", len(good))
	}
	if len(all) != 36 {
		t.Errorf("all DCs = %d, want 36", len(all))
	}
	for _, dc := range all {
		if err := dc.Validate(); err != nil {
			t.Errorf("%s: %v", dc.Name, err)
		}
	}
}

func isR2(c string) bool {
	switch c {
	case "Tenure", "Area", "County", "St", "Div", "Reg", "Water", "Bath", "Fridge", "Stove":
		return true
	}
	return false
}

// TestGoodCCsIntersectionFree verifies the defining property of S_good_CC.
func TestGoodCCsIntersectionFree(t *testing.T) {
	d := gen(t, 150)
	ccs := d.GoodCCs(120)
	if len(ccs) != 120 {
		t.Fatalf("generated %d CCs", len(ccs))
	}
	rel := constraint.ClassifyAll(ccs, isR2)
	for i := range rel {
		for j := range rel {
			if rel[i][j] == constraint.RelIntersecting {
				t.Fatalf("good CCs %d (%s) and %d (%s) intersect", i, ccs[i], j, ccs[j])
			}
		}
	}
}

// TestBadCCsHaveIntersections verifies S_bad_CC actually stresses the ILP.
func TestBadCCsHaveIntersections(t *testing.T) {
	d := gen(t, 150)
	ccs := d.BadCCs(120)
	rel := constraint.ClassifyAll(ccs, isR2)
	found := false
	for i := range rel {
		for j := range rel {
			if rel[i][j] == constraint.RelIntersecting {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("bad CC set has no intersecting pair")
	}
}

// TestCCTargetsAreTrueCounts: targets must equal ground-truth counts, so a
// perfect solver could reach zero error.
func TestCCTargetsAreTrueCounts(t *testing.T) {
	d := gen(t, 100)
	for _, ccs := range [][]constraint.CC{d.GoodCCs(50), d.BadCCs(50)} {
		for _, cc := range ccs {
			if got := int64(d.TrueJoin.Count(cc.Pred)); got != cc.Target {
				t.Fatalf("%s: target %d, true count %d", cc.Name, cc.Target, got)
			}
		}
	}
}

func TestGoodCCsContainmentStructure(t *testing.T) {
	d := gen(t, 100)
	ccs := d.GoodCCs(60)
	rel := constraint.ClassifyAll(ccs, isR2)
	containments := 0
	for i := range rel {
		for j := range rel {
			if rel[i][j] == constraint.RelAContainsB {
				containments++
			}
		}
	}
	if containments == 0 {
		t.Error("good CC set has no containment pairs (expected Area ⊇ Tenure-Area)")
	}
}

func TestExtraColumns(t *testing.T) {
	for _, n := range []int{0, 2, 4, 6, 8} {
		d := Generate(Config{Households: 30, Areas: 8, ExtraCols: n, Seed: 1})
		want := 3 + n
		if got := d.Housing.Schema().Len(); got != want {
			t.Errorf("ExtraCols=%d: housing cols = %d, want %d", n, got, want)
		}
	}
	// Div and Reg are determined by St.
	d := Generate(Config{Households: 200, Areas: 16, ExtraCols: 4, Seed: 1})
	stToDiv := make(map[string]string)
	for i := 0; i < d.Housing.Len(); i++ {
		st := d.Housing.Value(i, "St").Str()
		div := d.Housing.Value(i, "Div").Str()
		if prev, ok := stToDiv[st]; ok && prev != div {
			t.Fatalf("St %s maps to both %s and %s", st, prev, div)
		}
		stToDiv[st] = div
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := Generate(Config{Seed: 1})
	if d.Housing.Len() == 0 || d.Persons.Len() == 0 {
		t.Fatal("defaults produced empty data")
	}
}

func TestCCGenerationCapsAtGrid(t *testing.T) {
	d := Generate(Config{Households: 30, Areas: 2, Tenures: 2, Seed: 1})
	ccs := d.GoodCCs(100000)
	// Grid: 2 areas x 24 templates x (1 area-only + 1 refined) = 96.
	if len(ccs) == 0 || len(ccs) > 2*len(goodTemplates)*2 {
		t.Errorf("generated %d CCs", len(ccs))
	}
}
