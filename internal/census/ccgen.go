package census

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/table"
)

// template is one R1-side selection shape from Table 5: an age interval, a
// relationship, and an optional MultiLing requirement (-1 means
// unconstrained).
type template struct {
	lo, hi int64
	rel    string
	multi  int64
}

func (t template) pred() []table.Atom {
	atoms := table.Between("Age", t.lo, t.hi)
	atoms = append(atoms, table.Eq("Rel", table.String(t.rel)))
	if t.multi >= 0 {
		atoms = append(atoms, table.Eq("MultiLing", table.Int(t.multi)))
	}
	return atoms
}

// goodTemplates are pairwise R1-disjoint (distinct Rel, disjoint Age bands
// within a Rel, or distinct MultiLing). Crossing them with any R2-side
// combination therefore yields an intersection-free CC set under the
// paper's Definitions 4.2–4.4: same-template pairs are identical-R1 /
// disjoint-R2, cross-template pairs are R1-disjoint, and Tenure-Area CCs
// are contained in their Area-only counterparts.
var goodTemplates = []template{
	{18, 114, RelOwner, 0},
	{18, 114, RelOwner, 1},
	{16, 49, RelSpouse, -1},
	{50, 114, RelSpouse, -1},
	{16, 114, RelPartner, -1},
	{0, 10, RelBioChild, -1},
	{11, 18, RelBioChild, -1},
	{19, 30, RelBioChild, -1},
	{31, 78, RelBioChild, -1},
	{0, 20, RelStepChild, -1},
	{21, 78, RelStepChild, -1},
	{0, 18, RelAdoptChild, -1},
	{19, 78, RelAdoptChild, -1},
	{0, 78, RelFosterChild, -1},
	{0, 114, RelSibling, -1},
	{32, 69, RelParent, -1},
	{70, 114, RelParent, -1},
	{32, 114, RelParentInLaw, -1},
	{0, 17, RelGrandchild, 0},
	{0, 17, RelGrandchild, 1},
	{18, 60, RelGrandchild, -1},
	{0, 89, RelChildInLaw, -1},
	{15, 85, RelRoommate, 0},
	{15, 85, RelRoommate, 1},
}

// badTemplates mirror the second table of Table 5: overlapping age
// intervals for the same relationship (e.g. the Spouse rows [21,114],
// [21,64], [18,39], [18,85], [40,85]), which intersect pairwise and force
// the hybrid's ILP path.
var badTemplates = []template{
	{18, 114, RelOwner, 0},
	{18, 114, RelSpouse, 1},
	{21, 114, RelSpouse, 1},
	{21, 64, RelSpouse, 1},
	{18, 39, RelSpouse, 1},
	{18, 85, RelSpouse, 1},
	{40, 85, RelSpouse, 1},
	{0, 10, RelBioChild, -1},
	{6, 10, RelBioChild, -1},
	{2, 5, RelBioChild, -1},
	{11, 18, RelBioChild, -1},
	{11, 13, RelBioChild, -1},
	{14, 18, RelBioChild, -1},
	{19, 30, RelBioChild, -1},
	{22, 30, RelBioChild, -1},
	{40, 85, RelParent, 0},
	{40, 85, RelParent, 1},
	{65, 114, RelParent, 1},
	{15, 85, RelRoommate, 0},
	{15, 85, RelRoommate, 1},
	{18, 30, RelGrandchild, 0},
	{18, 30, RelGrandchild, 1},
	{0, 39, RelGrandchild, 1},
	{22, 39, RelGrandchild, 1},
	{0, 30, RelStepChild, -1},
	{0, 21, RelStepChild, -1},
	{21, 30, RelStepChild, 1},
	{19, 39, RelAdoptChild, -1},
	{25, 39, RelAdoptChild, -1},
	{31, 39, RelAdoptChild, 1},
}

// GoodCCs generates up to n cardinality constraints with no intersecting
// pairs (the paper's S_good_CC shape): each template crossed with Area-only
// and Tenure-Area selections, targets taken from the ground-truth join.
func (d *Data) GoodCCs(n int) []constraint.CC {
	return d.generateCCs(goodTemplates, n, "good")
}

// BadCCs generates up to n cardinality constraints containing intersecting
// pairs (S_bad_CC): overlapping age templates crossed with the same
// selections.
func (d *Data) BadCCs(n int) []constraint.CC {
	return d.generateCCs(badTemplates, n, "bad")
}

// generateCCs walks the (area × template) grid: for every area, first the
// Area-only CC per template, then Tenure-refined CCs for the first two
// tenures (leaving at least one tenure uncovered so Algorithm 2's parent
// remainders always have an assignable combination), then — when the
// housing relation has the binary appliance columns of the Figure 12
// configurations — a refinement chain Tenure+Water, Tenure+Water+Bath, ...
// so that wider R2 schemas produce CCs over more R2 columns, as in the
// paper's §6.1 setup. All refinements are proper containments, keeping the
// good family intersection-free. Targets are the true counts, so the
// instance stays satisfiable. Generation stops at n.
func (d *Data) generateCCs(templates []template, n int, tag string) []constraint.CC {
	areas := d.Housing.DistinctValues("Area")
	tens := d.Housing.DistinctValues("Tenure")
	refine := len(tens) - 1 // tenures refined under each area-only CC
	if refine > 2 {
		refine = 2
	}
	var chainCols []string
	for _, c := range []string{"Water", "Bath", "Fridge", "Stove"} {
		if d.Housing.Schema().Has(c) {
			chainCols = append(chainCols, c)
		}
	}
	var out []constraint.CC
	count := func(atoms []table.Atom) int64 {
		return int64(d.TrueJoin.Count(table.And(atoms...)))
	}
	emit := func(name string, atoms []table.Atom) {
		out = append(out, constraint.CC{Name: name, Pred: table.And(atoms...), Target: count(atoms)})
	}
	for _, area := range areas {
		for ti, tpl := range templates {
			if len(out) >= n {
				return out
			}
			base := append(tpl.pred(), table.Eq("Area", area))
			emit(fmt.Sprintf("%s_t%d_%s", tag, ti, area.Str()), base)
			for k := 0; k < refine && len(out) < n; k++ {
				atoms := append(tpl.pred(), table.Eq("Area", area), table.Eq("Tenure", tens[k]))
				emit(fmt.Sprintf("%s_t%d_%s_%s", tag, ti, area.Str(), tens[k].Str()), atoms)
				// Deepen the first tenure's CC through the appliance chain.
				if k == 0 {
					chain := atoms
					for ci, col := range chainCols {
						if len(out) >= n {
							break
						}
						chain = append(chain[:len(chain):len(chain)], table.Eq(col, table.Int(1)))
						emit(fmt.Sprintf("%s_t%d_%s_%s_c%d", tag, ti, area.Str(), tens[k].Str(), ci), chain)
					}
				}
			}
		}
	}
	return out
}
