package census

import (
	"fmt"

	"repro/internal/constraint"
)

// Table 4 of the paper lists 12 denial constraints. Our DC model (like the
// paper's Def. 2.2) is conjunctive, so each "age outside [lo, hi]" item
// expands into one conjunctive DC per violated side and per relationship
// name; the 12 paper items expand into the DCs below. GoodDCs returns the
// expansion of items 1–8 (no cliques in conflict graphs), AllDCs of all 12.

// ageGapDC builds: deny t1.Rel='Owner' [& t1.MultiLing=m] & t2.Rel=rel &
// t2.Age OP t1.Age + off.
func ageGapDC(name, rel string, multi int64, op string, off int64) constraint.DC {
	src := "dc " + name + ": deny t1.Rel = 'Owner'"
	if multi >= 0 {
		src += fmt.Sprintf(" & t1.MultiLing = %d", multi)
	}
	if off >= 0 {
		src += fmt.Sprintf(" & t2.Rel = '%s' & t2.Age %s t1.Age + %d", rel, op, off)
	} else {
		src += fmt.Sprintf(" & t2.Rel = '%s' & t2.Age %s t1.Age - %d", rel, op, -off)
	}
	dc, err := constraint.ParseDC(src)
	if err != nil {
		panic("census: bad DC template: " + err.Error())
	}
	return dc
}

func pairDC(name, relA, relB string) constraint.DC {
	src := fmt.Sprintf("dc %s: deny t1.Rel = '%s' & t2.Rel = '%s'", name, relA, relB)
	dc, err := constraint.ParseDC(src)
	if err != nil {
		panic("census: bad DC template: " + err.Error())
	}
	return dc
}

func condPairDC(name, cond, relB string) constraint.DC {
	src := fmt.Sprintf("dc %s: deny t1.Rel = 'Owner' & %s & t2.Rel = '%s'", name, cond, relB)
	dc, err := constraint.ParseDC(src)
	if err != nil {
		panic("census: bad DC template: " + err.Error())
	}
	return dc
}

// GoodDCs is the conjunctive expansion of Table 4 items 1–8: age-gap
// constraints between the homeowner and other members. These create
// bipartite (owner vs member) edges only — no cliques.
func GoodDCs() []constraint.DC {
	var out []constraint.DC
	// Items 1-2: biological/adoptive/step children vs owner multilinguality.
	for _, rel := range []string{RelBioChild, RelAdoptChild, RelStepChild} {
		out = append(out,
			ageGapDC("dc1_low_"+rel, rel, 0, "<", -69),
			ageGapDC("dc1_up_"+rel, rel, 0, ">", -12),
			ageGapDC("dc2_low_"+rel, rel, 1, "<", -50),
			ageGapDC("dc2_up_"+rel, rel, 1, ">", -12),
		)
	}
	// Item 3: spouse or unmarried partner within ±50.
	for _, rel := range []string{RelSpouse, RelPartner} {
		out = append(out,
			ageGapDC("dc3_low_"+rel, rel, -1, "<", -50),
			ageGapDC("dc3_up_"+rel, rel, -1, ">", 50),
		)
	}
	// Item 4: sibling within ±35.
	out = append(out,
		ageGapDC("dc4_low", RelSibling, -1, "<", -35),
		ageGapDC("dc4_up", RelSibling, -1, ">", 35),
	)
	// Item 5: parent / parent-in-law within [A+12, A+115].
	for _, rel := range []string{RelParent, RelParentInLaw} {
		out = append(out,
			ageGapDC("dc5_low_"+rel, rel, -1, "<", 12),
			ageGapDC("dc5_up_"+rel, rel, -1, ">", 115),
		)
	}
	// Item 6: grandchild within [A-115, A-30].
	out = append(out,
		ageGapDC("dc6_low", RelGrandchild, -1, "<", -115),
		ageGapDC("dc6_up", RelGrandchild, -1, ">", -30),
	)
	// Item 7: son/daughter-in-law within [A-69, A-1].
	out = append(out,
		ageGapDC("dc7_low", RelChildInLaw, -1, "<", -69),
		ageGapDC("dc7_up", RelChildInLaw, -1, ">", -1),
	)
	// Item 8: foster child within [A-69, A-12].
	out = append(out,
		ageGapDC("dc8_low", RelFosterChild, -1, "<", -69),
		ageGapDC("dc8_up", RelFosterChild, -1, ">", -12),
	)
	return out
}

// AllDCs is the conjunctive expansion of all 12 Table 4 items: GoodDCs plus
// items 9–12, which create cliques (owner/owner, spouse/partner pairs) and
// the conditional member-count constraints.
func AllDCs() []constraint.DC {
	out := GoodDCs()
	// Item 9: no two householders share a house.
	out = append(out, pairDC("dc9", RelOwner, RelOwner))
	// Item 10: owner under 30 -> no grandchildren, no children-in-law.
	out = append(out,
		condPairDC("dc10_gc", "t1.Age < 30", RelGrandchild),
		condPairDC("dc10_cil", "t1.Age < 30", RelChildInLaw),
	)
	// Item 11: owner over 94 -> no parents or parents-in-law.
	out = append(out,
		condPairDC("dc11_p", "t1.Age > 94", RelParent),
		condPairDC("dc11_pil", "t1.Age > 94", RelParentInLaw),
	)
	// Item 12: no two spouses or unmarried partners share a house.
	out = append(out,
		pairDC("dc12_ss", RelSpouse, RelSpouse),
		pairDC("dc12_pp", RelPartner, RelPartner),
		pairDC("dc12_sp", RelSpouse, RelPartner),
	)
	return out
}
