package experiments

import (
	"repro/internal/core"
	"strconv"
	"strings"
	"testing"
)

// tinyConfig keeps runner tests fast.
func tinyConfig() Config {
	return Config{Unit: 40, Areas: 4, NCC: 24, Scales: []int{1, 2}, LargeScales: []int{1, 2}, Seed: 1}
}

func TestAllRunnersProduceTables(t *testing.T) {
	cfg := tinyConfig()
	for _, r := range Runners() {
		tab, err := r.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		if tab.ID != r.ID {
			t.Errorf("%s: table id %q", r.ID, tab.ID)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", r.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s: row width %d vs header %d", r.ID, len(row), len(tab.Header))
			}
		}
		if s := tab.String(); !strings.Contains(s, tab.Title) {
			t.Errorf("%s: String() missing title", r.ID)
		}
	}
}

// TestFig8ShapesHold asserts the qualitative findings of Figure 8 on the
// scaled-down instances: the hybrid has zero DC and CC error, the plain
// baseline has substantial CC error and nonzero DC error, the
// baseline-with-marginals has zero CC error but nonzero DC error.
func TestFig8ShapesHold(t *testing.T) {
	tab, err := Fig8a(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		scale := row[0]
		ccBase, _ := strconv.ParseFloat(row[1], 64)
		ccMarg, _ := strconv.ParseFloat(row[2], 64)
		ccHyb, _ := strconv.ParseFloat(row[3], 64)
		dcBase, _ := strconv.ParseFloat(row[4], 64)
		dcMarg, _ := strconv.ParseFloat(row[5], 64)
		dcHyb, _ := strconv.ParseFloat(row[6], 64)
		if ccHyb != 0 || dcHyb != 0 {
			t.Errorf("%s: hybrid errors cc=%v dc=%v, want 0/0", scale, ccHyb, dcHyb)
		}
		if ccMarg != 0 {
			t.Errorf("%s: baseline+marginals CC error %v, want 0", scale, ccMarg)
		}
		if ccBase <= ccHyb {
			t.Errorf("%s: baseline CC error %v not worse than hybrid", scale, ccBase)
		}
		if dcBase == 0 || dcMarg == 0 {
			t.Errorf("%s: baseline DC errors base=%v marg=%v, want nonzero", scale, dcBase, dcMarg)
		}
	}
}

func TestFig13GoodVsBadRouting(t *testing.T) {
	cfg := tinyConfig()
	if _, err := Fig13(cfg); err != nil {
		t.Fatal(err)
	}
	// The routing property behind Figure 13: good CCs never touch the ILP,
	// bad CCs do. Checked on the solver stats directly because at test
	// scale the ILP finishes in well under the table's 1ms rounding.
	goodOut, err := run(cfg.build(1, true, false, 0), core.Options{Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if goodOut.res.Stats.CCsToILP != 0 {
		t.Errorf("good CCs routed to ILP: %d", goodOut.res.Stats.CCsToILP)
	}
	badOut, err := run(cfg.build(1, false, false, 0), core.Options{Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if badOut.res.Stats.CCsToILP == 0 {
		t.Error("bad CCs did not exercise the ILP")
	}
	if badOut.res.Stats.ILPVars == 0 {
		t.Error("no ILP variables created for bad CCs")
	}
}

func TestAblationsIncludeAllVariants(t *testing.T) {
	tab, err := Ablations(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("variants = %d", len(tab.Rows))
	}
	// Paper variants keep DC error at 0 (columns: variant..., DCerr at 4).
	for _, row := range tab.Rows {
		if row[4] != "0.000" {
			t.Errorf("%s: DC error %s, want 0.000", row[0], row[4])
		}
	}
}

func TestDefaultConfigComplete(t *testing.T) {
	c := DefaultConfig()
	if c.Unit <= 0 || c.NCC <= 0 || len(c.Scales) == 0 || len(c.LargeScales) == 0 {
		t.Errorf("default config incomplete: %+v", c)
	}
}
