package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Table1 reproduces Table 1: tuple counts per data scale. The paper's unit
// is 9,820 households ≈ 25k persons; ours is Config.Unit households with
// the same persons/households ratio.
func Table1(c Config) (*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "Data scales (cf. paper Table 1; unit scaled down)",
		Header: []string{"Scale", "Persons", "Housing", "|VJoin|"},
		Notes:  []string{fmt.Sprintf("paper 1x = 25,099 persons / 9,820 households; ours uses Unit=%d households", c.Unit)},
	}
	for _, s := range c.Scales {
		inst := c.build(s, true, true, 0)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx", s),
			fmt.Sprint(inst.in.R1.Len()),
			fmt.Sprint(inst.in.R2.Len()),
			fmt.Sprint(inst.in.R1.Len()), // |VJoin| = |R1| by FK dependence
		})
	}
	return t, nil
}

// fig8 is the error comparison of Figure 8: baseline vs baseline+marginals
// vs hybrid across data scales for a fixed DC set and CC family.
func fig8(c Config, id string, goodCC bool) (*Table, error) {
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("CC/DC error vs scale (S_all_DC, %s CCs)", ccName(goodCC)),
		Header: []string{"Scale",
			"CCerr-base", "CCerr-marg", "CCerr-hybrid",
			"DCerr-base", "DCerr-marg", "DCerr-hybrid"},
		Notes: []string{"CC error is the median relative error, as in the paper's Figure 8"},
	}
	for _, s := range c.Scales {
		algos := []core.Options{
			core.BaselineOptions(c.Seed),
			core.BaselineMarginalsOptions(c.Seed),
			{Seed: c.Seed},
		}
		var cc, dc [3]string
		for i, opt := range algos {
			out, err := run(c.build(s, goodCC, false, 0), opt)
			if err != nil {
				return nil, err
			}
			cc[i] = f3(out.ccMedian)
			dc[i] = f3(out.dcErr)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%dx", s), cc[0], cc[1], cc[2], dc[0], dc[1], dc[2]})
	}
	return t, nil
}

// Fig8a: S_all_DC with S_good_CC.
func Fig8a(c Config) (*Table, error) { return fig8(c, "fig8a", true) }

// Fig8b: S_all_DC with S_bad_CC.
func Fig8b(c Config) (*Table, error) { return fig8(c, "fig8b", false) }

// Fig9 reproduces Figure 9: the distribution of per-CC relative errors for
// the baseline vs the hybrid at the largest scale with bad CCs.
func Fig9(c Config) (*Table, error) {
	scale := c.Scales[len(c.Scales)-1]
	inst := c.build(scale, false, false, 0)
	t := &Table{
		ID:     "fig9",
		Title:  fmt.Sprintf("Per-CC relative error distribution (scale %dx, S_all_DC, bad CCs)", scale),
		Header: []string{"Algorithm", "p25", "median", "p75", "p95", "max", "mean"},
		Notes:  []string{"baseline-with-marginals omitted, as in the paper (it satisfies all CCs)"},
	}
	for _, a := range []struct {
		name string
		opt  core.Options
	}{
		{"baseline", core.BaselineOptions(c.Seed)},
		{"hybrid", core.Options{Seed: c.Seed}},
	} {
		out, err := run(inst, a.opt)
		if err != nil {
			return nil, err
		}
		errs := metrics.CCErrors(out.res.VJoin, inst.in.CCs)
		t.Rows = append(t.Rows, []string{a.name,
			f3(metrics.Quantile(errs, 0.25)), f3(metrics.Median(errs)),
			f3(metrics.Quantile(errs, 0.75)), f3(metrics.Quantile(errs, 0.95)),
			f3(metrics.Quantile(errs, 1.0)), f3(metrics.Mean(errs))})
		inst = c.build(scale, false, false, 0) // fresh instance per run
	}
	return t, nil
}

// Fig10 reproduces Figure 10: the four good/bad DC x CC combinations at a
// fixed scale, comparing all three algorithms.
func Fig10(c Config) (*Table, error) {
	scale := c.Scales[len(c.Scales)/2]
	t := &Table{
		ID:    "fig10",
		Title: fmt.Sprintf("Error for good/bad DC and CC combinations (scale %dx)", scale),
		Header: []string{"DCs", "CCs",
			"CCerr-base", "CCerr-marg", "CCerr-hybrid",
			"DCerr-base", "DCerr-marg", "DCerr-hybrid"},
	}
	for _, combo := range []struct{ goodDC, goodCC bool }{
		{true, true}, {true, false}, {false, true}, {false, false},
	} {
		var cc, dc [3]string
		for i, opt := range []core.Options{
			core.BaselineOptions(c.Seed),
			core.BaselineMarginalsOptions(c.Seed),
			{Seed: c.Seed},
		} {
			out, err := run(c.build(scale, combo.goodCC, combo.goodDC, 0), opt)
			if err != nil {
				return nil, err
			}
			cc[i] = f3(out.ccMedian)
			dc[i] = f3(out.dcErr)
		}
		t.Rows = append(t.Rows, []string{
			dcName(combo.goodDC), ccName(combo.goodCC),
			cc[0], cc[1], cc[2], dc[0], dc[1], dc[2]})
	}
	return t, nil
}

// Fig11a reproduces Figure 11a: total runtime with the phase II share,
// baseline vs hybrid, at two scales with bad CCs and all DCs.
func Fig11a(c Config) (*Table, error) {
	t := &Table{
		ID:     "fig11a",
		Title:  "Runtime baseline vs hybrid (S_all_DC, bad CCs); phaseII is the shaded area",
		Header: []string{"Scale", "Algorithm", "total", "phaseI", "phaseII"},
	}
	scales := c.Scales
	if len(scales) > 2 {
		scales = scales[len(scales)-2:]
	}
	for _, s := range scales {
		for _, a := range []struct {
			name string
			opt  core.Options
		}{
			{"baseline", core.BaselineOptions(c.Seed)},
			{"hybrid", core.Options{Seed: c.Seed}},
		} {
			out, err := run(c.build(s, false, false, 0), a.opt)
			if err != nil {
				return nil, err
			}
			st := out.res.Stats
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%dx", s), a.name,
				dur(st.Total), dur(st.Phase1), dur(st.Phase2)})
		}
	}
	return t, nil
}

// Fig11b reproduces Figure 11b: hybrid runtime across larger scales with
// good DCs, for good vs bad CCs.
func Fig11b(c Config) (*Table, error) {
	t := &Table{
		ID:     "fig11b",
		Title:  "Hybrid runtime at larger scales (S_good_DC)",
		Header: []string{"Scale", "CCs", "total", "phaseI", "phaseII"},
	}
	for _, s := range c.LargeScales {
		for _, goodCC := range []bool{true, false} {
			out, err := run(c.build(s, goodCC, true, 0), core.Options{Seed: c.Seed})
			if err != nil {
				return nil, err
			}
			st := out.res.Stats
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%dx", s), ccName(goodCC),
				dur(st.Total), dur(st.Phase1), dur(st.Phase2)})
		}
	}
	return t, nil
}

// Fig12 reproduces Figure 12: hybrid runtime as the number of non-key R2
// columns grows from 2 to 10 (good DCs, good CCs).
func Fig12(c Config) (*Table, error) {
	scale := c.Scales[len(c.Scales)/2]
	t := &Table{
		ID:     "fig12",
		Title:  fmt.Sprintf("Hybrid runtime vs number of R2 columns (scale %dx, good DCs/CCs)", scale),
		Header: []string{"R2 cols", "total", "recursion", "coloring", "partitions"},
	}
	for _, extra := range []int{0, 2, 4, 6, 8} {
		out, err := run(c.build(scale, true, true, extra), core.Options{Seed: c.Seed})
		if err != nil {
			return nil, err
		}
		st := out.res.Stats
		t.Rows = append(t.Rows, []string{fmt.Sprint(2 + extra),
			dur(st.Total), dur(st.Recursion), dur(st.Coloring), fmt.Sprint(st.Partitions)})
	}
	return t, nil
}

// Fig13 reproduces Figure 13: the runtime breakdown of the hybrid
// (pairwise comparison / recursion / ILP / coloring) for good vs bad CC
// sets with all DCs.
func Fig13(c Config) (*Table, error) {
	scale := c.Scales[len(c.Scales)/2]
	t := &Table{
		ID:     "fig13",
		Title:  fmt.Sprintf("Hybrid runtime breakdown (scale %dx, S_all_DC, %d CCs)", scale, c.NCC),
		Header: []string{"CCs", "pairwise", "recursion", "ILP", "coloring", "total"},
	}
	for _, goodCC := range []bool{true, false} {
		out, err := run(c.build(scale, goodCC, false, 0), core.Options{Seed: c.Seed})
		if err != nil {
			return nil, err
		}
		st := out.res.Stats
		t.Rows = append(t.Rows, []string{ccName(goodCC),
			dur(st.Pairwise), dur(st.Recursion), dur(st.ILPTime), dur(st.Coloring), dur(st.Total)})
	}
	return t, nil
}

// CCSweep reproduces the "increasing the number of CCs" experiment
// (datasets 13-22): runtime and error as the CC count grows.
func CCSweep(c Config) (*Table, error) {
	scale := c.Scales[len(c.Scales)/2]
	t := &Table{
		ID:     "ccsweep",
		Title:  fmt.Sprintf("Hybrid runtime/error vs CC count (scale %dx, S_all_DC)", scale),
		Header: []string{"CCs", "family", "total", "ILP", "CCerr-median", "CCerr-mean"},
	}
	steps := []int{c.NCC / 2, c.NCC * 3 / 4, c.NCC}
	for _, goodCC := range []bool{true, false} {
		for _, n := range steps {
			cc := c
			cc.NCC = n
			out, err := run(cc.build(scale, goodCC, false, 0), core.Options{Seed: c.Seed})
			if err != nil {
				return nil, err
			}
			st := out.res.Stats
			t.Rows = append(t.Rows, []string{fmt.Sprint(n), ccName(goodCC),
				dur(st.Total), dur(st.ILPTime), f3(out.ccMedian), f3(out.ccMean)})
		}
	}
	return t, nil
}

// Ablations quantifies the design choices DESIGN.md calls out: marginal
// augmentation, the hybrid split, conflict-graph partitioning, and the
// coloring order.
func Ablations(c Config) (*Table, error) {
	scale := c.Scales[len(c.Scales)/2]
	t := &Table{
		ID:     "ablations",
		Title:  fmt.Sprintf("Design-choice ablations (scale %dx, S_all_DC, bad CCs)", scale),
		Header: []string{"Variant", "total", "CCerr-median", "CCerr-mean", "DCerr", "skipped", "addedR2"},
	}
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"hybrid (paper)", core.Options{Seed: c.Seed}},
		{"no marginals", core.Options{Seed: c.Seed, NoMarginals: true}},
		{"ilp-only", core.Options{Seed: c.Seed, Mode: core.ModeILPOnly}},
		{"hasse-only", core.Options{Seed: c.Seed, Mode: core.ModeHasseOnly}},
		{"no partition", core.Options{Seed: c.Seed, NoPartition: true}},
		{"input-order coloring", core.Options{Seed: c.Seed, Order: core.OrderInput}},
		{"parallel coloring (A.3)", core.Options{Seed: c.Seed, Workers: -1}},
	}
	for _, v := range variants {
		out, err := run(c.build(scale, false, false, 0), v.opt)
		if err != nil {
			return nil, err
		}
		st := out.res.Stats
		t.Rows = append(t.Rows, []string{v.name, dur(st.Total),
			f3(out.ccMedian), f3(out.ccMean), f3(out.dcErr),
			fmt.Sprint(st.SkippedVertices), fmt.Sprint(st.AddedR2Tuples)})
	}
	return t, nil
}

func ccName(good bool) string {
	if good {
		return "good"
	}
	return "bad"
}

func dcName(good bool) string {
	if good {
		return "good"
	}
	return "all"
}
