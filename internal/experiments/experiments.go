// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic census substrate. Each runner returns a
// formatted text table with the same rows/series the paper reports; the
// cmd/benchtab tool prints them and the root bench_test.go wraps them in
// testing.B benchmarks.
//
// Absolute sizes are scaled down by default (Config.Unit households at
// scale 1× instead of the paper's 9,820) so a full sweep finishes on a
// laptop in seconds; the shapes — who wins, by what rough factor, where the
// bottleneck lies — are what the harness reproduces.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/census"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Config sizes every experiment.
type Config struct {
	// Unit is the number of households at scale 1× (paper: 9,820).
	Unit int
	// Areas is the number of distinct Area values (affects partition count
	// and CC grid size).
	Areas int
	// NCC is the size of the generated CC sets (paper: 1001).
	NCC int
	// Scales lists the data scales (multiples of Unit) used by the scale
	// sweeps (paper: 1,2,5,10,40 for Fig. 8 and up to 160 for Fig. 11b).
	Scales []int
	// LargeScales is the Fig. 11b sweep (paper: 10,40,80,120,160).
	LargeScales []int
	Seed        int64
}

// DefaultConfig finishes the full suite quickly while preserving shapes.
func DefaultConfig() Config {
	return Config{
		Unit:        120,
		Areas:       6,
		NCC:         60,
		Scales:      []int{1, 2, 5},
		LargeScales: []int{1, 2, 5, 10},
		Seed:        1,
	}
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for j, h := range t.Header {
		widths[j] = len(h)
	}
	for _, r := range t.Rows {
		for j, c := range r {
			if j < len(widths) && len(c) > widths[j] {
				widths[j] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for j, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[j], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// instance is one generated C-Extension problem.
type instance struct {
	in   core.Input
	data *census.Data
}

func (c Config) build(scale int, goodCC, goodDC bool, extraCols int) instance {
	d := census.Generate(census.Config{
		Households: c.Unit * scale,
		Areas:      c.Areas,
		ExtraCols:  extraCols,
		Seed:       c.Seed,
	})
	var ccs []constraint.CC
	if goodCC {
		ccs = d.GoodCCs(c.NCC)
	} else {
		ccs = d.BadCCs(c.NCC)
	}
	var dcs []constraint.DC
	if goodDC {
		dcs = census.GoodDCs()
	} else {
		dcs = census.AllDCs()
	}
	return instance{
		in: core.Input{
			R1: d.Persons, R2: d.Housing,
			K1: "pid", K2: "hid", FK: "hid",
			CCs: ccs, DCs: dcs,
		},
		data: d,
	}
}

// outcome is one algorithm run's measurements.
type outcome struct {
	res      *core.Result
	ccMedian float64
	ccMean   float64
	dcErr    float64
	elapsed  time.Duration
}

func run(inst instance, opt core.Options) (outcome, error) {
	start := time.Now()
	res, err := core.Solve(inst.in, opt)
	if err != nil {
		return outcome{}, err
	}
	el := time.Since(start)
	errs := metrics.CCErrors(res.VJoin, inst.in.CCs)
	return outcome{
		res:      res,
		ccMedian: metrics.Median(errs),
		ccMean:   metrics.Mean(errs),
		dcErr:    metrics.DCErrorFraction(res.R1Hat, inst.in.FK, inst.in.DCs),
		elapsed:  el,
	}, nil
}

func f3(x float64) string        { return fmt.Sprintf("%.3f", x) }
func dur(d time.Duration) string { return d.Round(time.Millisecond).String() }

// Runners returns every experiment keyed by id, in report order.
func Runners() []struct {
	ID  string
	Run func(Config) (*Table, error)
} {
	return []struct {
		ID  string
		Run func(Config) (*Table, error)
	}{
		{"table1", Table1},
		{"fig8a", Fig8a},
		{"fig8b", Fig8b},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11a", Fig11a},
		{"fig11b", Fig11b},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"ccsweep", CCSweep},
		{"noise", NoiseSweep},
		{"ablations", Ablations},
	}
}
