package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
)

// NoiseSweep probes the paper's privacy motivation (§1): when CC targets
// come from differentially-private measurements they are noisy and mutually
// inconsistent, and the task is to find *a* database close to the answers.
// We perturb every CC target with two-sided geometric noise of increasing
// magnitude and measure how the hybrid degrades. The L1-deviation ILP and
// the exact Hasse recursion should track the injected noise level (error
// grows smoothly, DC guarantee untouched) rather than failing.
func NoiseSweep(c Config) (*Table, error) {
	scale := c.Scales[len(c.Scales)/2]
	t := &Table{
		ID:     "noise",
		Title:  fmt.Sprintf("Hybrid under noisy (DP-style) CC targets (scale %dx, S_all_DC, bad CCs)", scale),
		Header: []string{"noise-b", "CCerr-median", "CCerr-mean", "DCerr", "invalid", "addedR2"},
		Notes: []string{
			"targets perturbed by two-sided geometric noise with scale b, clamped at 0",
			"CC error is measured against the noisy targets, i.e. it reflects residual inconsistency",
		},
	}
	for _, b := range []float64{0, 1, 3, 10} {
		inst := c.build(scale, false, false, 0)
		rng := rand.New(rand.NewSource(c.Seed + int64(b*1000)))
		for i := range inst.in.CCs {
			inst.in.CCs[i].Target = perturb(rng, inst.in.CCs[i].Target, b)
		}
		out, err := run(inst, core.Options{Seed: c.Seed})
		if err != nil {
			return nil, err
		}
		errs := metrics.CCErrors(out.res.VJoin, inst.in.CCs)
		st := out.res.Stats
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", b),
			f3(metrics.Median(errs)), f3(metrics.Mean(errs)), f3(out.dcErr),
			fmt.Sprint(st.InvalidTuples), fmt.Sprint(st.AddedR2Tuples)})
	}
	return t, nil
}

// perturb adds two-sided geometric noise with scale b (the integer
// analogue of Laplace noise used by discrete DP mechanisms), clamping the
// result at zero.
func perturb(rng *rand.Rand, target int64, b float64) int64 {
	if b <= 0 {
		return target
	}
	// Difference of two geometrics ~ two-sided geometric.
	p := 1 / (1 + b)
	g := func() int64 {
		n := int64(0)
		for rng.Float64() > p {
			n++
		}
		return n
	}
	out := target + g() - g()
	if out < 0 {
		return 0
	}
	return out
}
