package constraint

// Relationship is the outcome of comparing two CCs under Definitions
// 4.2–4.4 of the paper.
type Relationship uint8

const (
	// RelDisjoint: the R1 parts are disjoint, or the R1 parts are identical
	// and the R2 parts are disjoint (Def. 4.2). Disjoint CCs never compete
	// for V_Join tuples.
	RelDisjoint Relationship = iota
	// RelAContainsB: b ⊆ a (Def. 4.3): b's predicate uses a superset of a's
	// attributes and is at least as restrictive on each common attribute.
	RelAContainsB
	// RelBContainsA: a ⊆ b.
	RelBContainsA
	// RelEqual: mutual containment (identical predicates up to
	// normalization).
	RelEqual
	// RelIntersecting: neither disjoint nor related by containment
	// (Def. 4.4). Intersecting CCs are routed to the ILP in the hybrid.
	RelIntersecting
)

func (r Relationship) String() string {
	switch r {
	case RelDisjoint:
		return "disjoint"
	case RelAContainsB:
		return "a⊇b"
	case RelBContainsA:
		return "a⊆b"
	case RelEqual:
		return "equal"
	case RelIntersecting:
		return "intersecting"
	default:
		return "unknown"
	}
}

// Classify compares two CCs. isR2 identifies columns that belong to R2 (the
// dimension relation); everything else is treated as an R1 attribute.
// Predicates that cannot be normalized into per-column ranges are labeled
// intersecting, the conservative choice (they go to the ILP path).
func Classify(a, b CC, isR2 func(col string) bool) Relationship {
	// Disjunctive CCs are not range-representable per column; route them to
	// the ILP by classifying conservatively.
	if a.IsDisjunctive() || b.IsDisjunctive() {
		return RelIntersecting
	}
	ra, okA := Normalize(a.Pred)
	rb, okB := Normalize(b.Pred)
	if !okA || !okB {
		return RelIntersecting
	}
	// A CC whose predicate admits no tuple competes with nothing.
	if IsEmptyPred(ra) || IsEmptyPred(rb) {
		return RelDisjoint
	}

	r1Disjoint := partsDisjoint(ra, rb, func(c string) bool { return !isR2(c) })
	r1Identical := partsIdentical(ra, rb, func(c string) bool { return !isR2(c) })
	r2Disjoint := partsDisjoint(ra, rb, isR2)
	if r1Disjoint || (r1Identical && r2Disjoint) {
		return RelDisjoint
	}

	bInA := contains(ra, rb) // b ⊆ a: attrs(a) ⊆ attrs(b), ranges of b ⊆ ranges of a
	aInB := contains(rb, ra)
	switch {
	case bInA && aInB:
		return RelEqual
	case bInA:
		return RelAContainsB
	case aInB:
		return RelBContainsA
	default:
		return RelIntersecting
	}
}

// partsDisjoint reports whether some column in the given part (selected by
// keep) is constrained by both predicates to disjoint ranges.
func partsDisjoint(ra, rb map[string]ColRange, keep func(string) bool) bool {
	for c, x := range ra {
		if !keep(c) {
			continue
		}
		if y, ok := rb[c]; ok && x.Disjoint(y) {
			return true
		}
	}
	return false
}

// partsIdentical reports whether both predicates constrain exactly the same
// columns of the part to exactly the same ranges.
func partsIdentical(ra, rb map[string]ColRange, keep func(string) bool) bool {
	na, nb := 0, 0
	for c, x := range ra {
		if !keep(c) {
			continue
		}
		na++
		y, ok := rb[c]
		if !ok || !x.EqualRange(y) {
			return false
		}
	}
	for c := range rb {
		if keep(c) {
			nb++
		}
	}
	return na == nb
}

// contains reports whether the predicate normalized as "inner" is contained
// in the one normalized as "outer" per Def. 4.3: every column constrained
// by outer is also constrained by inner (inner uses a superset of
// attributes), and on those columns inner's range is a subset of outer's.
func contains(outer, inner map[string]ColRange) bool {
	for c, ro := range outer {
		ri, ok := inner[c]
		if !ok || !ri.Subset(ro) {
			return false
		}
	}
	return true
}

// ClassifyAll computes the full pairwise relationship matrix for a CC set.
// The result is symmetric up to orientation: m[i][j] == RelAContainsB iff
// m[j][i] == RelBContainsA. This is the "pairwise comparison" stage whose
// runtime Figure 13 reports.
func ClassifyAll(ccs []CC, isR2 func(col string) bool) [][]Relationship {
	n := len(ccs)
	m := make([][]Relationship, n)
	for i := range m {
		m[i] = make([]Relationship, n)
		m[i][i] = RelEqual
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r := Classify(ccs[i], ccs[j], isR2)
			m[i][j] = r
			m[j][i] = flip(r)
		}
	}
	return m
}

func flip(r Relationship) Relationship {
	switch r {
	case RelAContainsB:
		return RelBContainsA
	case RelBContainsA:
		return RelAContainsB
	default:
		return r
	}
}
