package constraint

import "sort"

// Relationship is the outcome of comparing two CCs under Definitions
// 4.2–4.4 of the paper.
type Relationship uint8

const (
	// RelDisjoint: the R1 parts are disjoint, or the R1 parts are identical
	// and the R2 parts are disjoint (Def. 4.2). Disjoint CCs never compete
	// for V_Join tuples.
	RelDisjoint Relationship = iota
	// RelAContainsB: b ⊆ a (Def. 4.3): b's predicate uses a superset of a's
	// attributes and is at least as restrictive on each common attribute.
	RelAContainsB
	// RelBContainsA: a ⊆ b.
	RelBContainsA
	// RelEqual: mutual containment (identical predicates up to
	// normalization).
	RelEqual
	// RelIntersecting: neither disjoint nor related by containment
	// (Def. 4.4). Intersecting CCs are routed to the ILP in the hybrid.
	RelIntersecting
)

// ValidRelationship reports whether r is one of the defined relationship
// values; used when decoding persisted classification matrices.
func ValidRelationship(r Relationship) bool { return r <= RelIntersecting }

func (r Relationship) String() string {
	switch r {
	case RelDisjoint:
		return "disjoint"
	case RelAContainsB:
		return "a⊇b"
	case RelBContainsA:
		return "a⊆b"
	case RelEqual:
		return "equal"
	case RelIntersecting:
		return "intersecting"
	default:
		return "unknown"
	}
}

// normCC is a CC's predicate compiled for pairwise classification: the
// per-column ranges of Normalize flattened into a name-sorted slice with the
// R1/R2 split precomputed. Every pairwise operation is then a linear merge
// over two sorted slices with zero allocations, so classifying a CC set
// normalizes each predicate once instead of once per pair.
type normCC struct {
	ok    bool // conjunctive and range-representable
	empty bool
	cols  []normCol
}

type normCol struct {
	name string
	isR2 bool
	r    ColRange
}

func normalizeCC(cc CC, isR2 func(col string) bool) normCC {
	// Disjunctive CCs are not range-representable per column; route them to
	// the ILP by classifying conservatively.
	if cc.IsDisjunctive() {
		return normCC{}
	}
	ranges, ok := Normalize(cc.Pred)
	if !ok {
		return normCC{}
	}
	n := normCC{ok: true, cols: make([]normCol, 0, len(ranges))}
	//lint:ordered isR2 is a pure column classifier and cols is sorted by name below
	for c, r := range ranges {
		if r.Empty {
			n.empty = true
		}
		n.cols = append(n.cols, normCol{name: c, isR2: isR2(c), r: r})
	}
	sort.Slice(n.cols, func(a, b int) bool { return n.cols[a].name < n.cols[b].name })
	return n
}

// Classify compares two CCs. isR2 identifies columns that belong to R2 (the
// dimension relation); everything else is treated as an R1 attribute.
// Predicates that cannot be normalized into per-column ranges are labeled
// intersecting, the conservative choice (they go to the ILP path).
func Classify(a, b CC, isR2 func(col string) bool) Relationship {
	na, nb := normalizeCC(a, isR2), normalizeCC(b, isR2)
	return classifyNorm(&na, &nb)
}

func classifyNorm(a, b *normCC) Relationship {
	if !a.ok || !b.ok {
		return RelIntersecting
	}
	// A CC whose predicate admits no tuple competes with nothing.
	if a.empty || b.empty {
		return RelDisjoint
	}

	r1Disjoint := partsDisjoint(a.cols, b.cols, false)
	r1Identical := partsIdentical(a.cols, b.cols, false)
	r2Disjoint := partsDisjoint(a.cols, b.cols, true)
	if r1Disjoint || (r1Identical && r2Disjoint) {
		return RelDisjoint
	}

	bInA := contains(a.cols, b.cols) // b ⊆ a: attrs(a) ⊆ attrs(b), ranges of b ⊆ ranges of a
	aInB := contains(b.cols, a.cols)
	switch {
	case bInA && aInB:
		return RelEqual
	case bInA:
		return RelAContainsB
	case aInB:
		return RelBContainsA
	default:
		return RelIntersecting
	}
}

// partsDisjoint reports whether some column of the selected part (R2 when
// wantR2, R1 otherwise) is constrained by both predicates to disjoint
// ranges. Both column lists are name-sorted, so this is a merge scan.
func partsDisjoint(a, b []normCol, wantR2 bool) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].name < b[j].name:
			i++
		case a[i].name > b[j].name:
			j++
		default:
			if a[i].isR2 == wantR2 && a[i].r.Disjoint(b[j].r) {
				return true
			}
			i++
			j++
		}
	}
	return false
}

// partsIdentical reports whether both predicates constrain exactly the same
// columns of the part to exactly the same ranges.
func partsIdentical(a, b []normCol, wantR2 bool) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].name < b[j].name:
			if a[i].isR2 == wantR2 {
				return false
			}
			i++
		case a[i].name > b[j].name:
			if b[j].isR2 == wantR2 {
				return false
			}
			j++
		default:
			if a[i].isR2 == wantR2 && !a[i].r.EqualRange(b[j].r) {
				return false
			}
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		if a[i].isR2 == wantR2 {
			return false
		}
	}
	for ; j < len(b); j++ {
		if b[j].isR2 == wantR2 {
			return false
		}
	}
	return true
}

// contains reports whether the predicate normalized as "inner" is contained
// in the one normalized as "outer" per Def. 4.3: every column constrained
// by outer is also constrained by inner (inner uses a superset of
// attributes), and on those columns inner's range is a subset of outer's.
func contains(outer, inner []normCol) bool {
	j := 0
	for i := range outer {
		for j < len(inner) && inner[j].name < outer[i].name {
			j++
		}
		if j >= len(inner) || inner[j].name != outer[i].name || !inner[j].r.Subset(outer[i].r) {
			return false
		}
		j++
	}
	return true
}

// ClassifyAll computes the full pairwise relationship matrix for a CC set.
// The result is symmetric up to orientation: m[i][j] == RelAContainsB iff
// m[j][i] == RelBContainsA. This is the "pairwise comparison" stage whose
// runtime Figure 13 reports. Each CC's predicate is normalized once, so the
// quadratic pair loop does no allocation.
func ClassifyAll(ccs []CC, isR2 func(col string) bool) [][]Relationship {
	n := len(ccs)
	norm := make([]normCC, n)
	for i, cc := range ccs {
		norm[i] = normalizeCC(cc, isR2)
	}
	m := make([][]Relationship, n)
	for i := range m {
		m[i] = make([]Relationship, n)
		m[i][i] = RelEqual
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r := classifyNorm(&norm[i], &norm[j])
			m[i][j] = r
			m[j][i] = flip(r)
		}
	}
	return m
}

func flip(r Relationship) Relationship {
	switch r {
	case RelAContainsB:
		return RelBContainsA
	case RelBContainsA:
		return RelAContainsB
	default:
		return r
	}
}
