package constraint

import (
	"math/rand"
	"testing"

	"repro/internal/table"
)

func TestNormalizeIntRanges(t *testing.T) {
	p := table.And(
		table.Atom{Col: "Age", Op: table.OpGe, Val: table.Int(10)},
		table.Atom{Col: "Age", Op: table.OpLt, Val: table.Int(50)},
	)
	r, ok := Normalize(p)
	if !ok {
		t.Fatal("normalize failed")
	}
	a := r["Age"]
	if !a.IsInt || a.Lo != 10 || a.Hi != 49 || a.Empty {
		t.Errorf("Age range = %+v", a)
	}
}

func TestNormalizeEquality(t *testing.T) {
	p := table.And(table.Eq("Age", table.Int(30)))
	r, _ := Normalize(p)
	a := r["Age"]
	if a.Lo != 30 || a.Hi != 30 {
		t.Errorf("eq range = %+v", a)
	}
}

func TestNormalizeEmptyConjunction(t *testing.T) {
	p := table.And(
		table.Atom{Col: "Age", Op: table.OpLt, Val: table.Int(3)},
		table.Atom{Col: "Age", Op: table.OpGt, Val: table.Int(5)},
	)
	r, ok := Normalize(p)
	if !ok {
		t.Fatal("normalize failed")
	}
	if !r["Age"].Empty || !IsEmptyPred(r) {
		t.Errorf("want empty, got %+v", r["Age"])
	}
}

func TestNormalizeStrings(t *testing.T) {
	p := table.And(table.Eq("Area", table.String("Chicago")))
	r, ok := Normalize(p)
	if !ok || r["Area"].Str != "Chicago" {
		t.Errorf("string range = %+v, ok=%v", r["Area"], ok)
	}
	// Conflicting string equalities -> empty.
	p2 := table.And(table.Eq("Area", table.String("Chicago")), table.Eq("Area", table.String("NYC")))
	r2, ok := Normalize(p2)
	if !ok || !r2["Area"].Empty {
		t.Errorf("conflicting strings: %+v", r2["Area"])
	}
	// Order comparison on a string is not range-representable.
	p3 := table.And(table.Atom{Col: "Area", Op: table.OpLt, Val: table.String("M")})
	if _, ok := Normalize(p3); ok {
		t.Error("string < accepted")
	}
	// != is not range-representable.
	p4 := table.And(table.Atom{Col: "Age", Op: table.OpNe, Val: table.Int(5)})
	if _, ok := Normalize(p4); ok {
		t.Error("!= accepted")
	}
}

func TestColRangeOps(t *testing.T) {
	ir := func(lo, hi int64) ColRange { return ColRange{IsInt: true, Lo: lo, Hi: hi} }
	sr := func(s string) ColRange { return ColRange{Str: s} }
	cases := []struct {
		a, b                    ColRange
		subset, disjoint, equal bool
	}{
		{ir(5, 10), ir(0, 20), true, false, false},
		{ir(0, 20), ir(5, 10), false, false, false},
		{ir(0, 4), ir(5, 10), false, true, false},
		{ir(3, 7), ir(3, 7), true, false, true},
		{ir(3, 7), ir(7, 9), false, false, false}, // touching, overlap at 7
		{sr("a"), sr("a"), true, false, true},
		{sr("a"), sr("b"), false, true, false},
		{sr("a"), ir(0, 5), false, true, false}, // kind mismatch
	}
	for i, c := range cases {
		if got := c.a.Subset(c.b); got != c.subset {
			t.Errorf("case %d: Subset = %v", i, got)
		}
		if got := c.a.Disjoint(c.b); got != c.disjoint {
			t.Errorf("case %d: Disjoint = %v", i, got)
		}
		if got := c.a.EqualRange(c.b); got != c.equal {
			t.Errorf("case %d: Equal = %v", i, got)
		}
	}
	// Empty range is subset of everything and disjoint from everything.
	e := ColRange{IsInt: true, Lo: 1, Hi: 0, Empty: true}
	if !e.Subset(ir(5, 5)) || !e.Disjoint(ir(5, 5)) {
		t.Error("empty range ops wrong")
	}
}

// Property: Subset and Disjoint agree with membership semantics on a
// sampled universe.
func TestColRangePropertyVsMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mem := func(r ColRange, v int64) bool {
		return !r.Empty && r.IsInt && v >= r.Lo && v <= r.Hi
	}
	for trial := 0; trial < 2000; trial++ {
		a := ColRange{IsInt: true, Lo: rng.Int63n(20), Hi: rng.Int63n(20)}
		if a.Lo > a.Hi {
			a.Empty = true
		}
		b := ColRange{IsInt: true, Lo: rng.Int63n(20), Hi: rng.Int63n(20)}
		if b.Lo > b.Hi {
			b.Empty = true
		}
		subset, disjoint := true, true
		for v := int64(0); v < 20; v++ {
			inA, inB := mem(a, v), mem(b, v)
			if inA && !inB {
				subset = false
			}
			if inA && inB {
				disjoint = false
			}
		}
		if got := a.Subset(b); got != subset {
			t.Fatalf("trial %d: a=%+v b=%+v Subset=%v want %v", trial, a, b, got, subset)
		}
		if got := a.Disjoint(b); got != disjoint {
			t.Fatalf("trial %d: a=%+v b=%+v Disjoint=%v want %v", trial, a, b, got, disjoint)
		}
	}
}

func TestCCPart(t *testing.T) {
	cc := mustCC(t, "cc: count(Age in [0,24], Rel = 'Owner', Area = 'Chicago') = 3")
	isR2 := func(c string) bool { return c == "Area" || c == "Tenure" }
	r1, r2 := cc.Part(isR2)
	if len(r1.Atoms) != 3 { // two Age atoms + Rel
		t.Errorf("r1 part = %s", r1)
	}
	if len(r2.Atoms) != 1 || r2.Atoms[0].Col != "Area" {
		t.Errorf("r2 part = %s", r2)
	}
}
