package constraint

import (
	"strings"
	"testing"

	"repro/internal/table"
)

func TestRenderCCRoundTrip(t *testing.T) {
	srcs := []string{
		"cc owners: count(Rel = 'Owner', Area = 'Chicago') = 4",
		"cc: count(Age >= 10, Age <= 14) = 20",
		"cc x: count(Multi = 1) = 0",
	}
	for _, src := range srcs {
		cc := mustCC(t, src)
		back, err := ParseCC(RenderCC(cc))
		if err != nil {
			t.Fatalf("%q -> %q: %v", src, RenderCC(cc), err)
		}
		if back.Name != cc.Name || back.Target != cc.Target || len(back.Pred.Atoms) != len(cc.Pred.Atoms) {
			t.Errorf("round trip changed CC: %q vs %q", RenderCC(cc), RenderCC(back))
		}
		for i := range cc.Pred.Atoms {
			if cc.Pred.Atoms[i] != back.Pred.Atoms[i] {
				t.Errorf("atom %d: %v vs %v", i, cc.Pred.Atoms[i], back.Pred.Atoms[i])
			}
		}
	}
}

func TestRenderDCRoundTrip(t *testing.T) {
	srcs := []string{
		"dc oo: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'",
		"dc osl: deny t1.Rel = 'Owner' & t2.Rel = 'Spouse' & t2.Age < t1.Age - 50",
		"dc: deny t1.Age < 30 & t2.Rel = 'Grandchild'",
		"dc: deny t1.Cls = t2.Cls & t2.Cls = t3.Cls",
		"dc: deny t1.Var = t2.Var & t1.Alpha != t2.Alpha",
	}
	for _, src := range srcs {
		dc := mustDC(t, src)
		back, err := ParseDC(RenderDC(dc))
		if err != nil {
			t.Fatalf("%q -> %q: %v", src, RenderDC(dc), err)
		}
		if back.K != dc.K || len(back.Unary) != len(dc.Unary) || len(back.Binary) != len(dc.Binary) {
			t.Errorf("round trip changed DC: %q vs %q", RenderDC(dc), RenderDC(back))
		}
	}
}

func TestWriteConstraintsRoundTrip(t *testing.T) {
	ccs := []CC{
		mustCC(t, "cc a: count(Rel = 'Owner') = 5"),
		mustCC(t, "cc b: count(Age in [0,24]) = 3"),
	}
	dcs := []DC{
		mustDC(t, "dc d1: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'"),
	}
	var b strings.Builder
	if err := WriteConstraints(&b, ccs, dcs); err != nil {
		t.Fatal(err)
	}
	gotCC, gotDC, err := ParseConstraints(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("%v\nfile:\n%s", err, b.String())
	}
	if len(gotCC) != 2 || len(gotDC) != 1 {
		t.Fatalf("parsed %d CCs %d DCs", len(gotCC), len(gotDC))
	}
	if gotCC[0].Name != "a" || gotCC[1].Target != 3 || gotDC[0].Name != "d1" {
		t.Error("content mangled")
	}
}

func TestRenderIntUnaryValue(t *testing.T) {
	dc := DC{Name: "n", K: 2, Unary: []UnaryAtom{{Var: 0, Col: "Age", Op: table.OpLt, Val: table.Int(30)}}}
	s := RenderDC(dc)
	if !strings.Contains(s, "t1.Age < 30") || strings.Contains(s, "'30'") {
		t.Errorf("render = %q", s)
	}
}

func TestCanonicalConstraintsElidesNames(t *testing.T) {
	named := CanonicalConstraints(
		[]CC{mustCC(t, "cc a: count(Rel = 'Owner') = 5")},
		[]DC{mustDC(t, "dc d1: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'")})
	anon := CanonicalConstraints(
		[]CC{mustCC(t, "cc: count(Rel = 'Owner') = 5")},
		[]DC{mustDC(t, "dc: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'")})
	if named != anon {
		t.Errorf("names leaked into canonical form:\n%q\n%q", named, anon)
	}
	if strings.Contains(named, "d1") {
		t.Errorf("canonical form contains a name: %q", named)
	}
	other := CanonicalConstraints(
		[]CC{mustCC(t, "cc: count(Rel = 'Owner') = 6")},
		[]DC{mustDC(t, "dc: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'")})
	if named == other {
		t.Error("different targets rendered identically")
	}
	// The canonical text still round-trips through the parser.
	ccs, dcs, err := ParseConstraints(strings.NewReader(named))
	if err != nil {
		t.Fatalf("canonical form does not reparse: %v", err)
	}
	if len(ccs) != 1 || len(dcs) != 1 {
		t.Fatalf("reparse: %d CCs %d DCs", len(ccs), len(dcs))
	}
}
