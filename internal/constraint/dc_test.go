package constraint

import (
	"strings"
	"testing"

	"repro/internal/table"
)

func personsSchema() *table.Schema {
	return table.NewSchema(table.IntCol("pid"), table.IntCol("Age"), table.StrCol("Rel"), table.IntCol("Multi"), table.IntCol("hid"))
}

func mustDC(t *testing.T, src string) DC {
	t.Helper()
	dc, err := ParseDC(src)
	if err != nil {
		t.Fatalf("ParseDC(%q): %v", src, err)
	}
	return dc
}

// dcOwnerOwner is DC_{O,O} from Figure 2a.
func dcOwnerOwner(t *testing.T) DC {
	return mustDC(t, "dc oo: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'")
}

// dcSpouseLow is DC_{O,S,low}: spouse more than 50 years younger than owner.
func dcSpouseLow(t *testing.T) DC {
	return mustDC(t, "dc osl: deny t1.Rel = 'Owner' & t2.Rel = 'Spouse' & t2.Age < t1.Age - 50")
}

func row(age int64, rel string, multi int64) []table.Value {
	return []table.Value{table.Int(0), table.Int(age), table.String(rel), table.Int(multi), table.Null()}
}

func TestDCHoldsOwnerOwner(t *testing.T) {
	dc := dcOwnerOwner(t)
	s := personsSchema()
	if !dc.Holds(s, row(75, "Owner", 0), row(25, "Owner", 1)) {
		t.Error("two owners should conflict")
	}
	if dc.Holds(s, row(75, "Owner", 0), row(25, "Spouse", 1)) {
		t.Error("owner+spouse should not match the owner/owner DC")
	}
	if dc.Holds(s, row(75, "Owner", 0)) {
		t.Error("wrong arity accepted")
	}
}

func TestDCHoldsBinaryOffset(t *testing.T) {
	dc := dcSpouseLow(t)
	s := personsSchema()
	// Owner 80, spouse 20: 20 < 80-50=30 -> conflict.
	if !dc.Holds(s, row(80, "Owner", 0), row(20, "Spouse", 0)) {
		t.Error("80/20 owner/spouse should conflict")
	}
	// Owner 80, spouse 35: 35 < 30 false -> fine.
	if dc.Holds(s, row(80, "Owner", 0), row(35, "Spouse", 0)) {
		t.Error("80/35 should not conflict")
	}
	// Order matters: the assignment (spouse, owner) does not satisfy φ.
	if dc.Holds(s, row(20, "Spouse", 0), row(80, "Owner", 0)) {
		t.Error("reversed assignment should not hold")
	}
}

func TestDCHoldsNullNeverConflicts(t *testing.T) {
	dc := dcSpouseLow(t)
	s := personsSchema()
	nullAge := []table.Value{table.Int(0), table.Null(), table.String("Spouse"), table.Int(0), table.Null()}
	if dc.Holds(s, row(80, "Owner", 0), nullAge) {
		t.Error("null age should never conflict")
	}
}

func TestDCUnaryMatch(t *testing.T) {
	dc := dcSpouseLow(t)
	s := personsSchema()
	if !dc.UnaryMatch(0, s, row(80, "Owner", 0)) {
		t.Error("owner should match var t1")
	}
	if dc.UnaryMatch(0, s, row(80, "Spouse", 0)) {
		t.Error("spouse should not match var t1")
	}
	if !dc.UnaryMatch(1, s, row(20, "Spouse", 0)) {
		t.Error("spouse should match var t2")
	}
}

func TestDCVarsSymmetric(t *testing.T) {
	if !dcOwnerOwner(t).VarsSymmetric(0, 1) {
		t.Error("owner/owner DC should be symmetric")
	}
	if dcSpouseLow(t).VarsSymmetric(0, 1) {
		t.Error("owner/spouse DC should be asymmetric")
	}
	sym := mustDC(t, "dc: deny t1.Age = t2.Age")
	if !sym.VarsSymmetric(0, 1) {
		t.Error("t1.Age = t2.Age should be symmetric")
	}
}

func TestDCValidate(t *testing.T) {
	bad := DC{Name: "x", K: 1}
	if bad.Validate() == nil {
		t.Error("K=1 accepted")
	}
	bad = DC{Name: "x", K: 2, Unary: []UnaryAtom{{Var: 5, Col: "a", Op: table.OpEq, Val: table.Int(1)}}}
	if bad.Validate() == nil {
		t.Error("out-of-range var accepted")
	}
}

func TestDCStringRendersImplicitFK(t *testing.T) {
	s := dcOwnerOwner(t).String()
	if !strings.Contains(s, "t1.FK = t2.FK") {
		t.Errorf("DC string missing FK conjunct: %s", s)
	}
}

func TestParseDCTernary(t *testing.T) {
	// The 3-variable DC from the NP-hardness reduction (Prop. 2.8).
	dc := mustDC(t, "dc: deny t1.Cls = t2.Cls & t2.Cls = t3.Cls")
	if dc.K != 3 {
		t.Fatalf("K = %d, want 3", dc.K)
	}
	s := table.NewSchema(table.StrCol("Cls"))
	r := func(c string) []table.Value { return []table.Value{table.String(c)} }
	if !dc.Holds(s, r("C1"), r("C1"), r("C1")) {
		t.Error("same clause triple should conflict")
	}
	if dc.Holds(s, r("C1"), r("C1"), r("C2")) {
		t.Error("mixed clause triple should not conflict")
	}
}
