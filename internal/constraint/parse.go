package constraint

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/table"
)

// The constraint DSL, one constraint per line:
//
//	# comment
//	cc owners_chicago: count(Rel = 'Owner', Area = 'Chicago') = 4
//	cc: count(Age in [0,24], Area = 'Chicago') = 3
//	dc one_owner: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'
//	dc: deny t1.Rel = 'Owner' & t2.Rel = 'Spouse' & t2.Age < t1.Age - 50
//
// DC lines list the explicit atoms of Def. 2.2; the FK-equality conjunct
// over all tuple variables is implicit. Tuple variables are written t1..tk
// and k is inferred from the highest variable mentioned.

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokStr
	tokSym // one of ( ) [ ] , . : & = != < <= > >= + -
)

type token struct {
	kind tokKind
	s    string
	i    int64
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '\'':
			j := strings.IndexByte(src[i+1:], '\'')
			if j < 0 {
				return nil, fmt.Errorf("constraint: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tokStr, s: src[i+1 : i+1+j]})
			i += j + 2
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			n, err := strconv.ParseInt(src[i:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("constraint: bad number %q", src[i:j])
			}
			toks = append(toks, token{kind: tokInt, i: n})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, s: src[i:j]})
			i = j
		case c == '!' || c == '<' || c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tokSym, s: src[i : i+2]})
				i += 2
			} else if c == '!' {
				return nil, fmt.Errorf("constraint: stray '!' at %d", i)
			} else {
				toks = append(toks, token{kind: tokSym, s: string(c)})
				i++
			}
		case strings.IndexByte("()[],.:&=+-|", c) >= 0:
			toks = append(toks, token{kind: tokSym, s: string(c)})
			i++
		default:
			return nil, fmt.Errorf("constraint: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF})
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) expectSym(s string) error {
	t := p.next()
	if t.kind != tokSym || t.s != s {
		return fmt.Errorf("constraint: expected %q, got %q", s, t.s)
	}
	return nil
}

func (p *parser) expectIdent(s string) error {
	t := p.next()
	if t.kind != tokIdent || t.s != s {
		return fmt.Errorf("constraint: expected keyword %q, got %q", s, t.s)
	}
	return nil
}

func parseOp(t token) (table.Op, bool) {
	if t.kind != tokSym {
		return 0, false
	}
	switch t.s {
	case "=":
		return table.OpEq, true
	case "!=":
		return table.OpNe, true
	case "<":
		return table.OpLt, true
	case "<=":
		return table.OpLe, true
	case ">":
		return table.OpGt, true
	case ">=":
		return table.OpGe, true
	}
	return 0, false
}

// parseSignedInt parses an integer with optional leading minus.
func (p *parser) parseSignedInt() (int64, error) {
	neg := false
	if t := p.peek(); t.kind == tokSym && t.s == "-" {
		p.next()
		neg = true
	}
	t := p.next()
	if t.kind != tokInt {
		return 0, fmt.Errorf("constraint: expected integer, got %q", t.s)
	}
	if neg {
		return -t.i, nil
	}
	return t.i, nil
}

// ParseCC parses a single CC line (with or without the leading "cc [name]:").
func ParseCC(src string) (CC, error) {
	toks, err := lex(src)
	if err != nil {
		return CC{}, err
	}
	p := &parser{toks: toks}
	var name string
	if t := p.peek(); t.kind == tokIdent && t.s == "cc" {
		p.next()
		if t := p.peek(); t.kind == tokIdent {
			name = t.s
			p.next()
		}
		if err := p.expectSym(":"); err != nil {
			return CC{}, err
		}
	}
	if err := p.expectIdent("count"); err != nil {
		return CC{}, err
	}
	if err := p.expectSym("("); err != nil {
		return CC{}, err
	}
	// Disjuncts are separated by '|'; atoms within a disjunct by ','.
	disjuncts := [][]table.Atom{nil}
	for {
		if t := p.peek(); t.kind == tokSym && t.s == ")" {
			p.next()
			break
		}
		cur := len(disjuncts) - 1
		col := p.next()
		if col.kind != tokIdent {
			return CC{}, fmt.Errorf("constraint: expected column name, got %q", col.s)
		}
		if t := p.peek(); t.kind == tokIdent && t.s == "in" {
			p.next()
			if err := p.expectSym("["); err != nil {
				return CC{}, err
			}
			lo, err := p.parseSignedInt()
			if err != nil {
				return CC{}, err
			}
			if err := p.expectSym(","); err != nil {
				return CC{}, err
			}
			hi, err := p.parseSignedInt()
			if err != nil {
				return CC{}, err
			}
			if err := p.expectSym("]"); err != nil {
				return CC{}, err
			}
			disjuncts[cur] = append(disjuncts[cur], table.Between(col.s, lo, hi)...)
		} else {
			op, ok := parseOp(p.next())
			if !ok {
				return CC{}, fmt.Errorf("constraint: expected operator after %q", col.s)
			}
			v, err := p.parseValue()
			if err != nil {
				return CC{}, err
			}
			disjuncts[cur] = append(disjuncts[cur], table.Atom{Col: col.s, Op: op, Val: v})
		}
		if t := p.peek(); t.kind == tokSym && t.s == "," {
			p.next()
		} else if t.kind == tokSym && t.s == "|" {
			p.next()
			disjuncts = append(disjuncts, nil)
		}
	}
	atoms := disjuncts[0]
	var orElse []table.Predicate
	for _, d := range disjuncts[1:] {
		if len(d) == 0 {
			return CC{}, fmt.Errorf("constraint: empty disjunct")
		}
		orElse = append(orElse, table.And(d...))
	}
	if err := p.expectSym("="); err != nil {
		return CC{}, err
	}
	target, err := p.parseSignedInt()
	if err != nil {
		return CC{}, err
	}
	if target < 0 {
		return CC{}, fmt.Errorf("constraint: negative CC target %d", target)
	}
	if !p.atEOF() {
		return CC{}, fmt.Errorf("constraint: trailing tokens after CC")
	}
	return CC{Name: name, Pred: table.And(atoms...), OrElse: orElse, Target: target}, nil
}

func (p *parser) parseValue() (table.Value, error) {
	t := p.peek()
	switch {
	case t.kind == tokStr:
		p.next()
		return table.String(t.s), nil
	case t.kind == tokInt || (t.kind == tokSym && t.s == "-"):
		n, err := p.parseSignedInt()
		if err != nil {
			return table.Null(), err
		}
		return table.Int(n), nil
	default:
		return table.Null(), fmt.Errorf("constraint: expected value, got %q", t.s)
	}
}

// varRef is a parsed "tN.Col" reference.
type varRef struct {
	v   int
	col string
}

// parseVarRef parses tN.Col; returns ok=false without consuming if the next
// tokens are not a variable reference.
func (p *parser) parseVarRef() (varRef, bool, error) {
	t := p.peek()
	if t.kind != tokIdent || len(t.s) < 2 || t.s[0] != 't' {
		return varRef{}, false, nil
	}
	n, err := strconv.Atoi(t.s[1:])
	if err != nil || n < 1 {
		return varRef{}, false, nil
	}
	p.next()
	if err := p.expectSym("."); err != nil {
		return varRef{}, false, err
	}
	col := p.next()
	if col.kind != tokIdent {
		return varRef{}, false, fmt.Errorf("constraint: expected column after t%d., got %q", n, col.s)
	}
	return varRef{v: n - 1, col: col.s}, true, nil
}

// ParseDC parses a single DC line (with or without the leading "dc [name]:").
func ParseDC(src string) (DC, error) {
	toks, err := lex(src)
	if err != nil {
		return DC{}, err
	}
	p := &parser{toks: toks}
	var name string
	if t := p.peek(); t.kind == tokIdent && t.s == "dc" {
		p.next()
		if t := p.peek(); t.kind == tokIdent {
			name = t.s
			p.next()
		}
		if err := p.expectSym(":"); err != nil {
			return DC{}, err
		}
	}
	if err := p.expectIdent("deny"); err != nil {
		return DC{}, err
	}
	dc := DC{Name: name}
	maxVar := 1 // at least t1, t2 expected; tracked as 0-based max
	for {
		l, ok, err := p.parseVarRef()
		if err != nil {
			return DC{}, err
		}
		if !ok {
			return DC{}, fmt.Errorf("constraint: expected tN.Col atom")
		}
		if l.v > maxVar {
			maxVar = l.v
		}
		op, okOp := parseOp(p.next())
		if !okOp {
			return DC{}, fmt.Errorf("constraint: expected operator in DC atom")
		}
		r, isRef, err := p.parseVarRef()
		if err != nil {
			return DC{}, err
		}
		if isRef {
			if r.v > maxVar {
				maxVar = r.v
			}
			var off int64
			if t := p.peek(); t.kind == tokSym && (t.s == "+" || t.s == "-") {
				p.next()
				n := p.next()
				if n.kind != tokInt {
					return DC{}, fmt.Errorf("constraint: expected offset integer")
				}
				off = n.i
				if t.s == "-" {
					off = -off
				}
			}
			dc.Binary = append(dc.Binary, BinaryAtom{LVar: l.v, LCol: l.col, Op: op, RVar: r.v, RCol: r.col, Offset: off})
		} else {
			v, err := p.parseValue()
			if err != nil {
				return DC{}, err
			}
			dc.Unary = append(dc.Unary, UnaryAtom{Var: l.v, Col: l.col, Op: op, Val: v})
		}
		if t := p.peek(); t.kind == tokSym && t.s == "&" {
			p.next()
			continue
		}
		break
	}
	if !p.atEOF() {
		return DC{}, fmt.Errorf("constraint: trailing tokens after DC")
	}
	dc.K = maxVar + 1
	if err := dc.Validate(); err != nil {
		return DC{}, err
	}
	return dc, nil
}

// ParseConstraints reads a constraint file: one constraint per line, blank
// lines and '#' comments ignored. Lines must start with "cc" or "dc".
func ParseConstraints(r io.Reader) ([]CC, []DC, error) {
	var ccs []CC
	var dcs []DC
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "cc"):
			cc, err := ParseCC(line)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			ccs = append(ccs, cc)
		case strings.HasPrefix(line, "dc"):
			dc, err := ParseDC(line)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			dcs = append(dcs, dc)
		default:
			return nil, nil, fmt.Errorf("line %d: expected cc or dc, got %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return ccs, dcs, nil
}
