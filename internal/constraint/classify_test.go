package constraint

import (
	"testing"
)

func mustCC(t *testing.T, src string) CC {
	t.Helper()
	cc, err := ParseCC(src)
	if err != nil {
		t.Fatalf("ParseCC(%q): %v", src, err)
	}
	return cc
}

func isR2Census(c string) bool { return c == "Area" || c == "Tenure" }

// TestClassifyFigure6 checks the relationships stated in Figure 6 of the
// paper: CC1 ∩ CC2 = ∅ and CC4 ⊆ CC3.
func TestClassifyFigure6(t *testing.T) {
	cc1 := mustCC(t, "cc: count(Age in [10,14], Area = 'Chicago') = 20")
	cc2 := mustCC(t, "cc: count(Age in [50,60], Multi = 0, Area = 'NYC') = 25")
	cc3 := mustCC(t, "cc: count(Age in [13,64], Area = 'Chicago') = 100")
	cc4 := mustCC(t, "cc: count(Age in [18,24], Multi = 0, Area = 'Chicago') = 16")

	if got := Classify(cc1, cc2, isR2Census); got != RelDisjoint {
		t.Errorf("CC1 vs CC2 = %v, want disjoint", got)
	}
	if got := Classify(cc3, cc4, isR2Census); got != RelAContainsB {
		t.Errorf("CC3 vs CC4 = %v, want a⊇b", got)
	}
	if got := Classify(cc4, cc3, isR2Census); got != RelBContainsA {
		t.Errorf("CC4 vs CC3 = %v, want a⊆b", got)
	}
	// CC1 and CC3 overlap on Age ([10,14] vs [13,64]) with the same Area:
	// neither disjoint nor contained -> intersecting.
	if got := Classify(cc1, cc3, isR2Census); got != RelIntersecting {
		t.Errorf("CC1 vs CC3 = %v, want intersecting", got)
	}
}

// TestClassifyExample45 reproduces Example 4.5: overlapping R1 (Age) parts
// with different R2 (Area) parts are *intersecting*, not disjoint — this is
// the competition case that motivates the hybrid approach.
func TestClassifyExample45(t *testing.T) {
	cc1 := mustCC(t, "cc: count(Age in [10,49], Area = 'Chicago') = 30")
	cc2 := mustCC(t, "cc: count(Age in [30,70], Area = 'NYC') = 30")
	if got := Classify(cc1, cc2, isR2Census); got != RelIntersecting {
		t.Errorf("Example 4.5 = %v, want intersecting", got)
	}
}

// TestClassifyIdenticalR1DisjointR2 checks the second disjointness case of
// Def. 4.2: identical R1 parts with disjoint R2 parts.
func TestClassifyIdenticalR1DisjointR2(t *testing.T) {
	a := mustCC(t, "cc: count(Age in [0,24], Rel = 'Owner', Area = 'Chicago') = 3")
	b := mustCC(t, "cc: count(Age in [0,24], Rel = 'Owner', Area = 'NYC') = 5")
	if got := Classify(a, b, isR2Census); got != RelDisjoint {
		t.Errorf("identical R1, disjoint R2 = %v, want disjoint", got)
	}
	// Same R1, same Area but one also constrains Tenure: contained.
	c := mustCC(t, "cc: count(Age in [0,24], Rel = 'Owner', Area = 'Chicago', Tenure = 'Owned') = 2")
	if got := Classify(a, c, isR2Census); got != RelAContainsB {
		t.Errorf("tenure refinement = %v, want a⊇b", got)
	}
}

func TestClassifyEqual(t *testing.T) {
	a := mustCC(t, "cc: count(Rel = 'Owner') = 5")
	b := mustCC(t, "cc: count(Rel = 'Owner') = 7")
	if got := Classify(a, b, isR2Census); got != RelEqual {
		t.Errorf("identical predicates = %v, want equal", got)
	}
}

func TestClassifyDisjointByR1String(t *testing.T) {
	a := mustCC(t, "cc: count(Rel = 'Owner', Area = 'Chicago') = 5")
	b := mustCC(t, "cc: count(Rel = 'Spouse', Area = 'Chicago') = 5")
	if got := Classify(a, b, isR2Census); got != RelDisjoint {
		t.Errorf("rel-disjoint = %v, want disjoint", got)
	}
}

// Different R1 attribute sets that overlap (neither subset) intersect.
func TestClassifyDifferentAttrSetsIntersect(t *testing.T) {
	a := mustCC(t, "cc: count(Age in [0,24], Area = 'Chicago') = 5")
	b := mustCC(t, "cc: count(Multi = 1, Area = 'Chicago') = 5")
	if got := Classify(a, b, isR2Census); got != RelIntersecting {
		t.Errorf("overlapping attr sets = %v, want intersecting", got)
	}
}

func TestClassifyEmptyCCIsDisjoint(t *testing.T) {
	a := mustCC(t, "cc: count(Age in [10,5]) = 0") // empty interval
	b := mustCC(t, "cc: count(Age in [0,24]) = 5")
	if got := Classify(a, b, isR2Census); got != RelDisjoint {
		t.Errorf("empty CC = %v, want disjoint", got)
	}
}

// A CC whose predicate can't be normalized (uses !=) is conservatively
// intersecting.
func TestClassifyUnnormalizableIsIntersecting(t *testing.T) {
	a := mustCC(t, "cc: count(Age != 5) = 5")
	b := mustCC(t, "cc: count(Age in [0,24]) = 5")
	if got := Classify(a, b, isR2Census); got != RelIntersecting {
		t.Errorf("unnormalizable = %v, want intersecting", got)
	}
}

func TestClassifyAllMatrixSymmetry(t *testing.T) {
	ccs := []CC{
		mustCC(t, "cc: count(Age in [10,14], Area = 'Chicago') = 20"),
		mustCC(t, "cc: count(Age in [50,60], Multi = 0, Area = 'NYC') = 25"),
		mustCC(t, "cc: count(Age in [13,64], Area = 'Chicago') = 100"),
		mustCC(t, "cc: count(Age in [18,24], Multi = 0, Area = 'Chicago') = 16"),
	}
	m := ClassifyAll(ccs, isR2Census)
	for i := range m {
		if m[i][i] != RelEqual {
			t.Errorf("diag[%d] = %v", i, m[i][i])
		}
		for j := range m {
			if m[i][j] != flip(m[j][i]) {
				t.Errorf("asymmetry at (%d,%d): %v vs %v", i, j, m[i][j], m[j][i])
			}
		}
	}
}

func TestRelationshipString(t *testing.T) {
	for r, want := range map[Relationship]string{
		RelDisjoint: "disjoint", RelAContainsB: "a⊇b", RelBContainsA: "a⊆b",
		RelEqual: "equal", RelIntersecting: "intersecting",
	} {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q", r, got)
		}
	}
}
