package constraint

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/table"
)

// TestClassifySemanticsOnSampledUniverse validates the classification
// against the actual tuple semantics on an enumerable universe:
//
//   - containment a ⊇ b implies every join tuple satisfying b satisfies a;
//   - disjointness via disjoint R1 parts implies no R1 tuple satisfies
//     both R1 parts;
//   - disjointness via identical-R1/disjoint-R2 implies no R2 combination
//     satisfies both R2 parts.
func TestClassifySemanticsOnSampledUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	schema := table.NewSchema(
		table.IntCol("Age"), table.StrCol("Rel"), // R1 attributes
		table.StrCol("Area"), table.IntCol("Ten")) // R2 attributes
	isR2 := func(c string) bool { return c == "Area" || c == "Ten" }

	randomCC := func() CC {
		var atoms []table.Atom
		if rng.Intn(2) == 0 {
			lo := int64(rng.Intn(10))
			atoms = append(atoms, table.Between("Age", lo, lo+int64(rng.Intn(6)))...)
		}
		if rng.Intn(2) == 0 {
			atoms = append(atoms, table.Eq("Rel", table.String(fmt.Sprintf("r%d", rng.Intn(2)))))
		}
		if rng.Intn(2) == 0 {
			atoms = append(atoms, table.Eq("Area", table.String(fmt.Sprintf("a%d", rng.Intn(2)))))
		}
		if rng.Intn(2) == 0 {
			atoms = append(atoms, table.Eq("Ten", table.Int(int64(rng.Intn(2)))))
		}
		return CC{Pred: table.And(atoms...), Target: 1}
	}

	// Enumerate the whole join universe.
	var universe [][]table.Value
	for age := int64(0); age < 16; age++ {
		for _, rel := range []string{"r0", "r1"} {
			for _, area := range []string{"a0", "a1"} {
				for ten := int64(0); ten < 2; ten++ {
					universe = append(universe, []table.Value{
						table.Int(age), table.String(rel), table.String(area), table.Int(ten)})
				}
			}
		}
	}
	sat := func(p table.Predicate, row []table.Value) bool { return p.Eval(schema, row) }

	for trial := 0; trial < 3000; trial++ {
		a, b := randomCC(), randomCC()
		relAB := Classify(a, b, isR2)
		switch relAB {
		case RelAContainsB, RelEqual:
			for _, row := range universe {
				if sat(b.Pred, row) && !sat(a.Pred, row) {
					t.Fatalf("trial %d: %v classified a⊇b but tuple %v satisfies only b (a=%s b=%s)",
						trial, relAB, row, a.Pred, b.Pred)
				}
			}
			if relAB == RelEqual {
				for _, row := range universe {
					if sat(a.Pred, row) != sat(b.Pred, row) {
						t.Fatalf("trial %d: equal CCs disagree on %v", trial, row)
					}
				}
			}
		case RelBContainsA:
			for _, row := range universe {
				if sat(a.Pred, row) && !sat(b.Pred, row) {
					t.Fatalf("trial %d: a⊆b violated on %v (a=%s b=%s)", trial, row, a.Pred, b.Pred)
				}
			}
		case RelDisjoint:
			// Def. 4.2 semantics: no *join* tuple contributes to both.
			for _, row := range universe {
				if sat(a.Pred, row) && sat(b.Pred, row) {
					t.Fatalf("trial %d: disjoint CCs share tuple %v (a=%s b=%s)", trial, row, a.Pred, b.Pred)
				}
			}
		}
	}
}

// TestDisjointnessIsNotJustEmptyIntersection documents the deliberate
// narrowness of Def. 4.2: overlapping R1 parts with disjoint R2 parts are
// *intersecting* (they compete for R1 tuples, Example 4.5), even though no
// join tuple can satisfy both.
func TestDisjointnessIsNotJustEmptyIntersection(t *testing.T) {
	a := mustCC(t, "cc: count(Age in [10,49], Area = 'a0') = 1")
	b := mustCC(t, "cc: count(Age in [30,70], Area = 'a1') = 1")
	isR2 := func(c string) bool { return c == "Area" }
	if got := Classify(a, b, isR2); got != RelIntersecting {
		t.Fatalf("got %v, want intersecting", got)
	}
}
