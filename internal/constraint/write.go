package constraint

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/table"
)

// RenderCC renders a CC as a DSL line parseable by ParseCC.
func RenderCC(cc CC) string {
	var b strings.Builder
	b.WriteString("cc")
	if cc.Name != "" {
		b.WriteByte(' ')
		b.WriteString(cc.Name)
	}
	b.WriteString(": count(")
	for di, d := range cc.Disjuncts() {
		if di > 0 {
			b.WriteString(" | ")
		}
		for i, a := range d.Atoms {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
	}
	fmt.Fprintf(&b, ") = %d", cc.Target)
	return b.String()
}

// RenderDC renders a DC as a DSL line parseable by ParseDC.
func RenderDC(dc DC) string {
	var b strings.Builder
	b.WriteString("dc")
	if dc.Name != "" {
		b.WriteByte(' ')
		b.WriteString(dc.Name)
	}
	b.WriteString(": deny ")
	parts := make([]string, 0, len(dc.Unary)+len(dc.Binary))
	for _, a := range dc.Unary {
		v := a.Val.String()
		if a.Val.Kind() == table.KindString {
			v = "'" + v + "'"
		}
		parts = append(parts, fmt.Sprintf("t%d.%s %s %s", a.Var+1, a.Col, a.Op, v))
	}
	for _, a := range dc.Binary {
		parts = append(parts, a.String())
	}
	b.WriteString(strings.Join(parts, " & "))
	return b.String()
}

// CanonicalConstraints renders both constraint sets as one DSL document
// with the constraint names elided. Names never influence the solver's
// output (they only appear in error messages), so this is the canonical
// text used for content-addressed cache keys: two constraint sets that
// differ only in naming or in surface formatting render identically.
// Constraint order and atom order are preserved — both can steer solver
// tie-breaking, so they are part of instance identity.
func CanonicalConstraints(ccs []CC, dcs []DC) string {
	var b strings.Builder
	for _, cc := range ccs {
		cc.Name = ""
		b.WriteString(RenderCC(cc))
		b.WriteByte('\n')
	}
	for _, dc := range dcs {
		dc.Name = ""
		b.WriteString(RenderDC(dc))
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteConstraints writes a constraint file in the DSL, CCs first; the
// output round-trips through ParseConstraints.
func WriteConstraints(w io.Writer, ccs []CC, dcs []DC) error {
	for _, cc := range ccs {
		if _, err := fmt.Fprintln(w, RenderCC(cc)); err != nil {
			return err
		}
	}
	for _, dc := range dcs {
		if _, err := fmt.Fprintln(w, RenderDC(dc)); err != nil {
			return err
		}
	}
	return nil
}
