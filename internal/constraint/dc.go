package constraint

import (
	"fmt"
	"strings"

	"repro/internal/table"
)

// UnaryAtom is a condition t_Var.Col ◦ c on a single tuple variable.
type UnaryAtom struct {
	Var int // 0-based tuple-variable index
	Col string
	Op  table.Op
	Val table.Value
}

func (a UnaryAtom) String() string {
	return fmt.Sprintf("t%d.%s %s %v", a.Var+1, a.Col, a.Op, a.Val)
}

// BinaryAtom is a condition t_LVar.LCol ◦ (t_RVar.RCol + Offset) relating
// two tuple variables; Offset supports the paper's age-gap DCs such as
// t2.Age < t1.Age − 50.
type BinaryAtom struct {
	LVar   int
	LCol   string
	Op     table.Op
	RVar   int
	RCol   string
	Offset int64
}

func (a BinaryAtom) String() string {
	off := ""
	if a.Offset > 0 {
		off = fmt.Sprintf(" + %d", a.Offset)
	} else if a.Offset < 0 {
		off = fmt.Sprintf(" - %d", -a.Offset)
	}
	return fmt.Sprintf("t%d.%s %s t%d.%s%s", a.LVar+1, a.LCol, a.Op, a.RVar+1, a.RCol, off)
}

// DC is a foreign-key denial constraint (Def. 2.2):
//
//	∀ t1..tK. ¬( unary ∧ binary ∧ t1.FK = ... = tK.FK )
//
// The trailing FK-equality conjunct is implicit: a set of K tuples sharing
// one FK value violates the DC iff the explicit atoms hold under some
// assignment of the tuples to the variables.
type DC struct {
	Name   string
	K      int // number of tuple variables (≥ 2)
	Unary  []UnaryAtom
	Binary []BinaryAtom
}

func (dc DC) String() string {
	parts := make([]string, 0, len(dc.Unary)+len(dc.Binary)+1)
	for _, a := range dc.Unary {
		parts = append(parts, a.String())
	}
	for _, a := range dc.Binary {
		parts = append(parts, a.String())
	}
	fk := make([]string, dc.K)
	for i := range fk {
		fk[i] = fmt.Sprintf("t%d.FK", i+1)
	}
	parts = append(parts, strings.Join(fk, " = "))
	return "¬( " + strings.Join(parts, " ∧ ") + " )"
}

// Validate checks structural sanity: K ≥ 2 and every atom's variable
// indices in [0, K).
func (dc DC) Validate() error {
	if dc.K < 2 {
		return fmt.Errorf("constraint: DC %q: K = %d, want >= 2", dc.Name, dc.K)
	}
	for _, a := range dc.Unary {
		if a.Var < 0 || a.Var >= dc.K {
			return fmt.Errorf("constraint: DC %q: unary atom var t%d out of range", dc.Name, a.Var+1)
		}
	}
	for _, a := range dc.Binary {
		if a.LVar < 0 || a.LVar >= dc.K || a.RVar < 0 || a.RVar >= dc.K {
			return fmt.Errorf("constraint: DC %q: binary atom vars out of range", dc.Name)
		}
	}
	return nil
}

// Holds evaluates the explicit (non-FK) part φ of the DC for the ordered
// assignment rows[i] ↦ t_{i+1}. All rows share one schema. Atoms touching a
// null cell evaluate to false, so incomplete tuples never conflict.
func (dc DC) Holds(s *table.Schema, rows ...[]Value) bool {
	if len(rows) != dc.K {
		return false
	}
	for _, a := range dc.Unary {
		j, ok := s.Index(a.Col)
		if !ok || !a.Op.Apply(rows[a.Var][j], a.Val) {
			return false
		}
	}
	for _, a := range dc.Binary {
		jl, okL := s.Index(a.LCol)
		jr, okR := s.Index(a.RCol)
		if !okL || !okR {
			return false
		}
		rv := rows[a.RVar][jr]
		if a.Offset != 0 {
			if rv.Kind() != table.KindInt {
				return false
			}
			rv = table.Int(rv.Int() + a.Offset)
		}
		if !a.Op.Apply(rows[a.LVar][jl], rv) {
			return false
		}
	}
	return true
}

// Value is re-exported locally to keep the Holds signature readable.
type Value = table.Value

// UnaryMatch reports whether row satisfies every unary atom of variable v.
// It is the candidate filter used when enumerating conflict edges.
func (dc DC) UnaryMatch(v int, s *table.Schema, row []Value) bool {
	for _, a := range dc.Unary {
		if a.Var != v {
			continue
		}
		j, ok := s.Index(a.Col)
		if !ok || !a.Op.Apply(row[j], a.Val) {
			return false
		}
	}
	return true
}

// VarsSymmetric reports whether swapping two variables leaves the atom set
// unchanged; used to halve edge enumeration for symmetric DCs like
// "no two owners share a home". The comparison is structural (atom structs
// are comparable), so classification allocates nothing beyond two small
// match masks.
func (dc DC) VarsSymmetric(u, v int) bool {
	swap := func(x int) int {
		switch x {
		case u:
			return v
		case v:
			return u
		default:
			return x
		}
	}
	// Multiset equality: every swapped unary atom must match a distinct
	// original atom.
	usedU := make([]bool, len(dc.Unary))
	for _, a := range dc.Unary {
		sw := UnaryAtom{Var: swap(a.Var), Col: a.Col, Op: a.Op, Val: a.Val}
		found := false
		for j, b := range dc.Unary {
			if !usedU[j] && b == sw {
				usedU[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	// Atoms with a symmetric operator and no offset (a = b, a != b) are
	// canonicalized with the smaller variable first so that t1.A = t2.A and
	// t2.A = t1.A compare equal.
	canon := func(a BinaryAtom) BinaryAtom {
		if a.Offset == 0 && (a.Op == table.OpEq || a.Op == table.OpNe) && a.LVar > a.RVar {
			return BinaryAtom{LVar: a.RVar, LCol: a.RCol, Op: a.Op, RVar: a.LVar, RCol: a.LCol}
		}
		return a
	}
	usedB := make([]bool, len(dc.Binary))
	for _, a := range dc.Binary {
		sw := canon(BinaryAtom{LVar: swap(a.LVar), LCol: a.LCol, Op: a.Op, RVar: swap(a.RVar), RCol: a.RCol, Offset: a.Offset})
		found := false
		for j, b := range dc.Binary {
			if !usedB[j] && canon(b) == sw {
				usedB[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
