package constraint

import "repro/internal/table"

// This file holds the bound (schema-resolved) forms of the two constraint
// classes. Binding resolves every column reference to a schema position
// once, pre-groups DC unary atoms by tuple variable, and precomputes the
// variable-symmetry flag, so the per-row and per-pair hot loops in the
// solver and the metrics are slice indexing plus value compares.

// BoundCC is a CC bound to one schema: every disjunct's predicate with
// column indexes resolved. Produce one with CC.Bind.
type BoundCC struct {
	disjuncts []table.BoundPredicate
}

// Bind resolves the CC's predicates against s.
func (cc CC) Bind(s *table.Schema) BoundCC {
	ds := cc.Disjuncts()
	b := BoundCC{disjuncts: make([]table.BoundPredicate, len(ds))}
	for i, d := range ds {
		b.disjuncts[i] = d.Bind(s)
	}
	return b
}

// MatchRow reports whether a row satisfies any disjunct; it is equivalent
// to CC.MatchRow under the bound schema.
func (b *BoundCC) MatchRow(row []table.Value) bool {
	for i := range b.disjuncts {
		if b.disjuncts[i].Eval(row) {
			return true
		}
	}
	return false
}

// boundUnary is a UnaryAtom with its column resolved (-1 when the column is
// absent from the schema, which makes the atom — and any assignment using
// its variable — unsatisfiable, matching UnaryAtom evaluation on a schema
// without the column).
type boundUnary struct {
	col int
	op  table.Op
	val table.Value
}

// boundBinary mirrors BinaryAtom with resolved columns.
type boundBinary struct {
	lvar, lcol int
	op         table.Op
	rvar, rcol int
	offset     int64
}

// BoundDC is a DC bound to one schema: unary atoms grouped per tuple
// variable with resolved columns, binary atoms resolved, and the pair
// symmetry of Algorithm 4's edge enumeration precomputed. Produce one with
// DC.Bind.
type BoundDC struct {
	K int
	// unaryOK[v] is false when variable v has an atom over a column absent
	// from the schema (no row can match it).
	unaryOK     []bool
	unaryByVar  [][]boundUnary
	binary      []boundBinary
	binaryOK    bool // every binary atom's columns resolved
	Symmetric01 bool // VarsSymmetric(0, 1), precomputed
}

// Bind resolves the DC against s.
func (dc DC) Bind(s *table.Schema) BoundDC {
	b := BoundDC{
		K:          dc.K,
		unaryOK:    make([]bool, dc.K),
		unaryByVar: make([][]boundUnary, dc.K),
		binaryOK:   true,
	}
	for v := range b.unaryOK {
		b.unaryOK[v] = true
	}
	for _, a := range dc.Unary {
		j, ok := s.Index(a.Col)
		if !ok {
			b.unaryOK[a.Var] = false
			continue
		}
		b.unaryByVar[a.Var] = append(b.unaryByVar[a.Var], boundUnary{col: j, op: a.Op, val: a.Val})
	}
	for _, a := range dc.Binary {
		jl, okL := s.Index(a.LCol)
		jr, okR := s.Index(a.RCol)
		if !okL || !okR {
			b.binaryOK = false
			continue
		}
		b.binary = append(b.binary, boundBinary{
			lvar: a.LVar, lcol: jl, op: a.Op, rvar: a.RVar, rcol: jr, offset: a.Offset})
	}
	if dc.K >= 2 {
		b.Symmetric01 = dc.VarsSymmetric(0, 1)
	}
	return b
}

// UnaryMatch reports whether row satisfies every unary atom of variable v;
// equivalent to DC.UnaryMatch under the bound schema.
func (b *BoundDC) UnaryMatch(v int, row []table.Value) bool {
	if !b.unaryOK[v] {
		return false
	}
	for i := range b.unaryByVar[v] {
		a := &b.unaryByVar[v][i]
		if !a.op.Apply(row[a.col], a.val) {
			return false
		}
	}
	return true
}

// HoldsBinary evaluates only the binary atoms for the ordered assignment
// rows[i] ↦ t_{i+1}. It is the leaf check for enumerators that have already
// filtered candidates per variable with UnaryMatch: under that precondition
// it agrees with DC.Holds.
func (b *BoundDC) HoldsBinary(rows ...[]table.Value) bool {
	if !b.binaryOK {
		return false
	}
	for i := range b.binary {
		a := &b.binary[i]
		rv := rows[a.rvar][a.rcol]
		if a.offset != 0 {
			if rv.Kind() != table.KindInt {
				return false
			}
			rv = table.Int(rv.Int() + a.offset)
		}
		if !a.op.Apply(rows[a.lvar][a.lcol], rv) {
			return false
		}
	}
	return true
}

// Holds evaluates the full explicit predicate (unary and binary atoms) for
// the ordered assignment; equivalent to DC.Holds under the bound schema.
func (b *BoundDC) Holds(rows ...[]table.Value) bool {
	if len(rows) != b.K {
		return false
	}
	for v := 0; v < b.K; v++ {
		if !b.unaryOK[v] {
			return false
		}
		for i := range b.unaryByVar[v] {
			a := &b.unaryByVar[v][i]
			if !a.op.Apply(rows[v][a.col], a.val) {
				return false
			}
		}
	}
	return b.HoldsBinary(rows...)
}

// BindDCs binds a DC set against one schema.
func BindDCs(dcs []DC, s *table.Schema) []BoundDC {
	out := make([]BoundDC, len(dcs))
	for i, dc := range dcs {
		out[i] = dc.Bind(s)
	}
	return out
}
