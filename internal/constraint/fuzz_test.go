package constraint

import (
	"strings"
	"testing"
)

// FuzzParseCC: the CC parser must never panic, and anything it accepts
// must render back into something it accepts again with identical
// structure (parse∘render idempotence).
func FuzzParseCC(f *testing.F) {
	seeds := []string{
		"cc a: count(Rel = 'Owner') = 4",
		"count(Age in [0,24], Area = 'Chicago') = 3",
		"cc: count(A <= 5, B >= -2) = 0",
		"cc: count(X = 'a' | Y = 1) = 9",
		"cc: count() = 0",
		"cc: count(Age in [-5,-1]) = 2",
		"cc broken count(",
		"cc: count(Rel = 'unclosed) = 1",
		"cc: count(Rel = 'Owner') = 99999999999",
		"]][[=',&",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		cc, err := ParseCC(src)
		if err != nil {
			return
		}
		rendered := RenderCC(cc)
		back, err := ParseCC(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", src, rendered, err)
		}
		if back.Target != cc.Target || len(back.Pred.Atoms) != len(cc.Pred.Atoms) ||
			len(back.OrElse) != len(cc.OrElse) {
			t.Fatalf("round trip changed structure: %q -> %q", src, rendered)
		}
	})
}

// FuzzParseDC mirrors FuzzParseCC for denial constraints.
func FuzzParseDC(f *testing.F) {
	seeds := []string{
		"dc oo: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'",
		"dc: deny t2.Age < t1.Age - 50",
		"dc: deny t1.A = t2.A & t2.B != t3.B",
		"dc: deny t1.X = 0",
		"deny t1.Rel = 'Owner' & t2.Rel = 'Owner'",
		"dc: deny",
		"dc: deny t0.A = 1",
		"dc: deny t1.A < t2.A + ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		dc, err := ParseDC(src)
		if err != nil {
			return
		}
		if err := dc.Validate(); err != nil {
			t.Fatalf("parser accepted invalid DC %q: %v", src, err)
		}
		rendered := RenderDC(dc)
		back, err := ParseDC(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", src, rendered, err)
		}
		if back.K != dc.K || len(back.Unary) != len(dc.Unary) || len(back.Binary) != len(dc.Binary) {
			t.Fatalf("round trip changed structure: %q -> %q", src, rendered)
		}
	})
}

// FuzzParseConstraints: whole-file parsing must never panic and must
// report line-numbered errors for garbage.
func FuzzParseConstraints(f *testing.F) {
	f.Add("cc a: count(X = 1) = 2\ndc: deny t1.X = 1 & t2.X = 1\n")
	f.Add("# comment\n\ncc: count() = 0\n")
	f.Add("garbage\n")
	f.Add("cc\x00: count(X = 1) = 2\n")
	f.Fuzz(func(t *testing.T, src string) {
		_, _, _ = ParseConstraints(strings.NewReader(src))
	})
}
