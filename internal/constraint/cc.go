// Package constraint defines the two constraint classes of the paper —
// linear cardinality constraints (CCs, Def. 2.4) over the foreign-key join
// view and foreign-key denial constraints (DCs, Def. 2.2) over R1 — together
// with the pairwise CC relationship classification (disjoint / contained /
// intersecting, Defs. 4.2–4.4) that drives the hybrid phase-I solver, and a
// small text DSL for reading constraint files.
package constraint

import (
	"fmt"
	"math"

	"repro/internal/table"
)

// CC is a linear cardinality constraint |σ_φ(R1 ⋈ R2)| = Target. φ is a
// conjunctive selection predicate (Pred) over the non-key attributes of the
// join view, optionally extended with further disjuncts (OrElse) — the
// disjunction extension the paper sketches after Definition 2.4. A row
// contributes to the count when it satisfies *any* disjunct (union, not
// sum). Disjunctive CCs are always routed to the ILP path by the hybrid.
type CC struct {
	Name   string
	Pred   table.Predicate
	OrElse []table.Predicate
	Target int64
}

func (cc CC) String() string {
	s := cc.Pred.String()
	for _, d := range cc.OrElse {
		s += " | " + d.String()
	}
	return fmt.Sprintf("|σ[%s]| = %d", s, cc.Target)
}

// Disjuncts returns all disjuncts: Pred followed by OrElse.
func (cc CC) Disjuncts() []table.Predicate {
	return append([]table.Predicate{cc.Pred}, cc.OrElse...)
}

// IsDisjunctive reports whether the CC has more than one disjunct.
func (cc CC) IsDisjunctive() bool { return len(cc.OrElse) > 0 }

// MatchRow reports whether a row satisfies any disjunct.
func (cc CC) MatchRow(s *table.Schema, row []table.Value) bool {
	if cc.Pred.Eval(s, row) {
		return true
	}
	for _, d := range cc.OrElse {
		if d.Eval(s, row) {
			return true
		}
	}
	return false
}

// CountIn returns the number of rows of r satisfying the CC's selection.
// The predicate is bound to r's schema once, so the row loop does no
// column-name lookups.
func (cc CC) CountIn(r *table.Relation) int64 {
	n := int64(0)
	b := cc.Bind(r.Schema())
	for i := 0; i < r.Len(); i++ {
		if b.MatchRow(r.Row(i)) {
			n++
		}
	}
	return n
}

// Part splits the primary conjunct by column membership: atoms over columns
// for which isR2 is true form the R2 part, the rest the R1 part. For
// disjunctive CCs use PartAll.
func (cc CC) Part(isR2 func(col string) bool) (r1, r2 table.Predicate) {
	r1 = cc.Pred.Restrict(func(c string) bool { return !isR2(c) })
	r2 = cc.Pred.Restrict(isR2)
	return r1, r2
}

// PartAll splits every disjunct into its R1 and R2 parts, index-aligned
// with Disjuncts().
func (cc CC) PartAll(isR2 func(col string) bool) (r1s, r2s []table.Predicate) {
	for _, d := range cc.Disjuncts() {
		r1s = append(r1s, d.Restrict(func(c string) bool { return !isR2(c) }))
		r2s = append(r2s, d.Restrict(isR2))
	}
	return r1s, r2s
}

// ColRange is the normalized constraint a conjunctive predicate places on a
// single column: a closed integer interval for int columns, or a single
// required string for string columns. Empty marks an unsatisfiable
// conjunction (e.g. Age < 3 & Age > 5).
type ColRange struct {
	IsInt  bool
	Lo, Hi int64  // int columns; closed interval
	Str    string // string columns; required value
	Empty  bool
}

// FullIntRange is the unconstrained integer range.
func FullIntRange() ColRange {
	return ColRange{IsInt: true, Lo: math.MinInt64, Hi: math.MaxInt64}
}

// Subset reports whether every value admitted by a is admitted by b.
// Ranges of mismatched kinds are never subsets.
func (a ColRange) Subset(b ColRange) bool {
	if a.Empty {
		return true
	}
	if b.Empty || a.IsInt != b.IsInt {
		return false
	}
	if a.IsInt {
		return a.Lo >= b.Lo && a.Hi <= b.Hi
	}
	return a.Str == b.Str
}

// Disjoint reports whether no value is admitted by both ranges.
func (a ColRange) Disjoint(b ColRange) bool {
	if a.Empty || b.Empty {
		return true
	}
	if a.IsInt != b.IsInt {
		return true
	}
	if a.IsInt {
		return a.Hi < b.Lo || b.Hi < a.Lo
	}
	return a.Str != b.Str
}

// EqualRange reports whether both ranges admit exactly the same values.
func (a ColRange) EqualRange(b ColRange) bool {
	return a.Subset(b) && b.Subset(a)
}

// Normalize converts a conjunctive predicate into per-column ranges. It
// returns ok=false when the predicate uses an operator that cannot be
// represented as a range (!=, or an order comparison on a string column);
// callers treat such constraints conservatively.
func Normalize(p table.Predicate) (map[string]ColRange, bool) {
	out := make(map[string]ColRange)
	for _, a := range p.Atoms {
		switch a.Val.Kind() {
		case table.KindInt:
			r, seen := out[a.Col]
			if !seen {
				r = FullIntRange()
			} else if !r.IsInt {
				r.Empty = true
				out[a.Col] = r
				continue
			}
			v := a.Val.Int()
			switch a.Op {
			case table.OpEq:
				r.Lo = max64(r.Lo, v)
				r.Hi = min64(r.Hi, v)
			case table.OpLt:
				if v == math.MinInt64 {
					r.Empty = true
				} else {
					r.Hi = min64(r.Hi, v-1)
				}
			case table.OpLe:
				r.Hi = min64(r.Hi, v)
			case table.OpGt:
				if v == math.MaxInt64 {
					r.Empty = true
				} else {
					r.Lo = max64(r.Lo, v+1)
				}
			case table.OpGe:
				r.Lo = max64(r.Lo, v)
			default:
				return nil, false // != not range-representable
			}
			if r.Lo > r.Hi {
				r.Empty = true
			}
			out[a.Col] = r
		case table.KindString:
			if a.Op != table.OpEq {
				return nil, false
			}
			r, seen := out[a.Col]
			if !seen {
				out[a.Col] = ColRange{Str: a.Val.Str()}
				continue
			}
			if r.IsInt || r.Str != a.Val.Str() {
				r.Empty = true
				out[a.Col] = r
			}
		default:
			return nil, false
		}
	}
	return out, true
}

// IsEmptyPred reports whether the normalized predicate admits no tuple.
func IsEmptyPred(ranges map[string]ColRange) bool {
	//lint:ordered existential scan: the boolean is identical whichever empty range is met first
	for _, r := range ranges {
		if r.Empty {
			return true
		}
	}
	return false
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
