package constraint

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/table"
)

// randBindRelation builds a small relation with int and string columns and
// sprinkled nulls.
func randBindRelation(rng *rand.Rand) *table.Relation {
	r := table.NewRelation("r", table.NewSchema(
		table.IntCol("Age"), table.StrCol("Rel"), table.IntCol("Multi")))
	rels := []string{"Owner", "Spouse", "Child"}
	n := 2 + rng.Intn(12)
	for i := 0; i < n; i++ {
		age := table.Value(table.Int(int64(rng.Intn(80))))
		if rng.Intn(8) == 0 {
			age = table.Null()
		}
		r.MustAppend(age, table.String(rels[rng.Intn(3)]), table.Int(int64(rng.Intn(2))))
	}
	return r
}

func randBindDC(rng *rand.Rand, t *testing.T) DC {
	t.Helper()
	ops := []string{"<", "<=", ">", ">=", "=", "!="}
	rels := []string{"Owner", "Spouse", "Child"}
	var src string
	switch rng.Intn(4) {
	case 0:
		src = fmt.Sprintf("dc: deny t1.Rel = '%s' & t2.Rel = '%s'", rels[rng.Intn(3)], rels[rng.Intn(3)])
	case 1:
		src = fmt.Sprintf("dc: deny t1.Rel = '%s' & t2.Age %s t1.Age - %d",
			rels[rng.Intn(3)], ops[rng.Intn(6)], rng.Intn(30))
	case 2:
		src = fmt.Sprintf("dc: deny t1.Multi = 1 & t2.Age %s t1.Age + %d & t3.Rel = '%s'",
			ops[rng.Intn(6)], rng.Intn(20), rels[rng.Intn(3)])
	default:
		src = fmt.Sprintf("dc: deny t2.Age %s t1.Age", ops[rng.Intn(6)])
	}
	dc, err := ParseDC(src)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

// TestBoundDCEquivalence pins BoundDC.Holds and BoundDC.UnaryMatch to the
// unbound DC forms on random relations, DCs, and tuple assignments, and
// Symmetric01 to VarsSymmetric.
func TestBoundDCEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 250; trial++ {
		r := randBindRelation(rng)
		dc := randBindDC(rng, t)
		b := dc.Bind(r.Schema())
		if b.Symmetric01 != dc.VarsSymmetric(0, 1) {
			t.Fatalf("trial %d (%s): Symmetric01 = %v, VarsSymmetric = %v",
				trial, dc, b.Symmetric01, dc.VarsSymmetric(0, 1))
		}
		s := r.Schema()
		for v := 0; v < dc.K; v++ {
			for i := 0; i < r.Len(); i++ {
				want := dc.UnaryMatch(v, s, r.Row(i))
				if got := b.UnaryMatch(v, r.Row(i)); got != want {
					t.Fatalf("trial %d (%s): UnaryMatch(t%d, row %d) = %v, want %v", trial, dc, v+1, i, got, want)
				}
			}
		}
		for probe := 0; probe < 40; probe++ {
			rows := make([][]table.Value, dc.K)
			for v := range rows {
				rows[v] = r.Row(rng.Intn(r.Len()))
			}
			want := dc.Holds(s, rows...)
			if got := b.Holds(rows...); got != want {
				t.Fatalf("trial %d (%s): Holds = %v, want %v", trial, dc, got, want)
			}
			// When every variable's unary atoms hold, the binary-only leaf
			// check must agree with the full predicate.
			unaryOK := true
			for v := range rows {
				if !b.UnaryMatch(v, rows[v]) {
					unaryOK = false
					break
				}
			}
			if unaryOK {
				if got := b.HoldsBinary(rows...); got != want {
					t.Fatalf("trial %d (%s): HoldsBinary = %v, Holds = %v", trial, dc, got, want)
				}
			}
		}
	}
}

// TestBoundDCMissingColumn: atoms over columns absent from the schema make
// the variable (and any assignment) unsatisfiable, mirroring the unbound
// evaluation.
func TestBoundDCMissingColumn(t *testing.T) {
	r := table.NewRelation("r", table.NewSchema(table.IntCol("Age")))
	r.MustAppend(table.Int(30))
	dc, err := ParseDC("dc: deny t1.Ghost = 1 & t2.Age > 10")
	if err != nil {
		t.Fatal(err)
	}
	b := dc.Bind(r.Schema())
	if b.UnaryMatch(0, r.Row(0)) {
		t.Error("UnaryMatch over a missing column must be false")
	}
	if !b.UnaryMatch(1, r.Row(0)) {
		t.Error("t2 has no atoms over missing columns; its filter must pass")
	}
	if b.Holds(r.Row(0), r.Row(0)) {
		t.Error("Holds with a missing unary column must be false")
	}
}

// TestBoundCCEquivalence pins BoundCC.MatchRow to CC.MatchRow, including
// disjunctive CCs and predicates over unknown columns.
func TestBoundCCEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		r := randBindRelation(rng)
		cc := CC{
			Pred: table.And(table.Atom{Col: "Age", Op: table.Op(rng.Intn(6)), Val: table.Int(int64(rng.Intn(80)))}),
			OrElse: []table.Predicate{
				table.And(table.Eq("Rel", table.String([]string{"Owner", "Spouse", "Ghost"}[rng.Intn(3)]))),
			},
		}
		if rng.Intn(4) == 0 {
			cc.Pred = table.And(table.Eq("NoSuchCol", table.Int(1)))
		}
		b := cc.Bind(r.Schema())
		// A disjunct over an unknown column is constant-false once bound.
		for d, pred := range cc.Disjuncts() {
			bp := pred.Bind(r.Schema())
			known := true
			for _, a := range pred.Atoms {
				if !r.Schema().Has(a.Col) {
					known = false
				}
			}
			if bp.IsNever() == known {
				t.Fatalf("trial %d: disjunct %d IsNever = %v, columns known = %v", trial, d, bp.IsNever(), known)
			}
		}
		s := r.Schema()
		for i := 0; i < r.Len(); i++ {
			want := cc.MatchRow(s, r.Row(i))
			if got := b.MatchRow(r.Row(i)); got != want {
				t.Fatalf("trial %d: MatchRow(row %d) = %v, want %v", trial, i, got, want)
			}
		}
	}
}
