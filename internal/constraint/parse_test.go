package constraint

import (
	"strings"
	"testing"

	"repro/internal/table"
)

func TestParseCCBasic(t *testing.T) {
	cc, err := ParseCC("cc owners: count(Rel = 'Owner', Area = 'Chicago') = 4")
	if err != nil {
		t.Fatal(err)
	}
	if cc.Name != "owners" || cc.Target != 4 || len(cc.Pred.Atoms) != 2 {
		t.Errorf("cc = %+v", cc)
	}
	if cc.Pred.Atoms[0] != table.Eq("Rel", table.String("Owner")) {
		t.Errorf("atom 0 = %v", cc.Pred.Atoms[0])
	}
}

func TestParseCCAnonymousAndInterval(t *testing.T) {
	cc, err := ParseCC("count(Age in [0,24], Area = 'Chicago') = 3")
	if err != nil {
		t.Fatal(err)
	}
	if cc.Name != "" || len(cc.Pred.Atoms) != 3 {
		t.Errorf("cc = %+v", cc)
	}
	r, _ := Normalize(cc.Pred)
	if r["Age"].Lo != 0 || r["Age"].Hi != 24 {
		t.Errorf("interval = %+v", r["Age"])
	}
}

func TestParseCCOperators(t *testing.T) {
	cc, err := ParseCC("cc: count(Age <= 24, Multi = 1) = 7")
	if err != nil {
		t.Fatal(err)
	}
	if cc.Pred.Atoms[0].Op != table.OpLe || cc.Pred.Atoms[1].Val != table.Int(1) {
		t.Errorf("cc = %+v", cc)
	}
}

func TestParseCCNegativeBounds(t *testing.T) {
	cc, err := ParseCC("cc: count(Delta in [-5,5]) = 1")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := Normalize(cc.Pred)
	if r["Delta"].Lo != -5 || r["Delta"].Hi != 5 {
		t.Errorf("range = %+v", r["Delta"])
	}
}

func TestParseCCErrors(t *testing.T) {
	bad := []string{
		"cc: count(Rel = 'Owner') = -4",      // negative target
		"cc: count(Rel = 'Owner')",           // missing target
		"cc: count(Rel 'Owner') = 4",         // missing operator
		"cc: count(Age in [1) = 4",           // malformed interval
		"cc: count(Rel = 'Owner') = 4 junk",  // trailing tokens
		"cc: tally(Rel = 'Owner') = 4",       // wrong keyword
		"cc: count(Rel = 'unterminated) = 1", // unterminated string
	}
	for _, src := range bad {
		if _, err := ParseCC(src); err == nil {
			t.Errorf("ParseCC(%q) succeeded", src)
		}
	}
}

func TestParseDCBasic(t *testing.T) {
	dc, err := ParseDC("dc oo: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'")
	if err != nil {
		t.Fatal(err)
	}
	if dc.Name != "oo" || dc.K != 2 || len(dc.Unary) != 2 || len(dc.Binary) != 0 {
		t.Errorf("dc = %+v", dc)
	}
}

func TestParseDCBinaryOffsets(t *testing.T) {
	dc, err := ParseDC("dc: deny t1.Rel = 'Owner' & t2.Rel = 'Spouse' & t2.Age < t1.Age - 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(dc.Binary) != 1 {
		t.Fatalf("binary atoms = %d", len(dc.Binary))
	}
	b := dc.Binary[0]
	if b.LVar != 1 || b.RVar != 0 || b.Offset != -50 || b.Op != table.OpLt {
		t.Errorf("binary = %+v", b)
	}
	dc2, err := ParseDC("dc: deny t2.Age > t1.Age + 50")
	if err != nil {
		t.Fatal(err)
	}
	if dc2.Binary[0].Offset != 50 {
		t.Errorf("offset = %d", dc2.Binary[0].Offset)
	}
}

func TestParseDCIntUnary(t *testing.T) {
	dc, err := ParseDC("dc: deny t1.Age < 30 & t2.Rel = 'Grandchild'")
	if err != nil {
		t.Fatal(err)
	}
	if dc.Unary[0].Val != table.Int(30) || dc.Unary[0].Op != table.OpLt {
		t.Errorf("unary = %+v", dc.Unary[0])
	}
}

func TestParseDCNeOperator(t *testing.T) {
	dc, err := ParseDC("dc: deny t1.Var = t2.Var & t1.Alpha != t2.Alpha")
	if err != nil {
		t.Fatal(err)
	}
	if dc.Binary[1].Op != table.OpNe {
		t.Errorf("op = %v", dc.Binary[1].Op)
	}
}

func TestParseDCErrors(t *testing.T) {
	bad := []string{
		"dc: deny",                        // no atoms
		"dc: deny t1.Rel 'Owner'",         // no operator
		"dc: deny t0.Rel = 'x'",           // t0 is not a valid variable
		"dc: deny t1.Rel = 'x' extra",     // trailing tokens
		"dc: deny t1.Age < t2.Age + junk", // bad offset
	}
	for _, src := range bad {
		if _, err := ParseDC(src); err == nil {
			t.Errorf("ParseDC(%q) succeeded", src)
		}
	}
}

func TestParseConstraintsFile(t *testing.T) {
	src := `
# The running example of the paper (Figure 2).
cc cc1: count(Rel = 'Owner', Area = 'Chicago') = 4
cc cc2: count(Rel = 'Owner', Area = 'NYC') = 2
cc cc3: count(Age <= 24, Area = 'Chicago') = 3
cc cc4: count(Multi = 1, Area = 'Chicago') = 4

dc oo: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'
dc osl: deny t1.Rel = 'Owner' & t2.Rel = 'Spouse' & t2.Age < t1.Age - 50
dc osu: deny t1.Rel = 'Owner' & t2.Rel = 'Spouse' & t2.Age > t1.Age + 50
dc ocl: deny t1.Rel = 'Owner' & t1.Multi = 1 & t2.Rel = 'Child' & t2.Age < t1.Age - 50
dc ocu: deny t1.Rel = 'Owner' & t1.Multi = 1 & t2.Rel = 'Child' & t2.Age > t1.Age - 12
`
	ccs, dcs, err := ParseConstraints(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ccs) != 4 || len(dcs) != 5 {
		t.Fatalf("got %d CCs, %d DCs", len(ccs), len(dcs))
	}
	if ccs[0].Target != 4 || dcs[4].Name != "ocu" {
		t.Errorf("parsed: %+v / %+v", ccs[0], dcs[4])
	}
}

func TestParseConstraintsErrors(t *testing.T) {
	if _, _, err := ParseConstraints(strings.NewReader("bogus line\n")); err == nil {
		t.Error("bogus line accepted")
	}
	if _, _, err := ParseConstraints(strings.NewReader("cc: count(X = ) = 1\n")); err == nil {
		t.Error("bad cc accepted")
	}
}

// Round-trip: a parsed CC re-rendered through predicate String stays stable
// enough to describe (sanity of String methods, not a strict grammar).
func TestStringRendering(t *testing.T) {
	cc := mustCC(t, "cc: count(Rel = 'Owner', Age <= 24) = 3")
	if got := cc.String(); got != "|σ[Rel = 'Owner' & Age <= 24]| = 3" {
		t.Errorf("cc.String() = %q", got)
	}
	dc := mustDC(t, "dc: deny t1.Rel = 'Owner' & t2.Age < t1.Age - 50")
	s := dc.String()
	if !strings.Contains(s, "t2.Age < t1.Age - 50") {
		t.Errorf("dc.String() = %q", s)
	}
}
