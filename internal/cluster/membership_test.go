package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"
)

// The S-race this guards: a probe reads /healthz, the response crawls back
// over a congested link, and while it is in flight a forward to the same
// peer dies in transport — the peer is genuinely down and MarkDown said
// so. Without the per-peer liveness generation, the slow success lands
// last and flips the dead peer back up, and the next forward to it fails
// too. The generation captured at probe launch detects the interleaving
// and discards the stale result. Run under -race (CI does), the test also
// proves the two paths' state updates are properly synchronized.
func TestSlowProbeCannotResurrectDeadPeer(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release // the probe's GET is now in flight while MarkDown lands
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c, err := New(Config{Self: "http://self:1", Peers: []string{ts.URL}, ProbeTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	probed := make(chan struct{})
	go func() {
		c.ProbeNow(context.Background())
		close(probed)
	}()
	<-entered
	c.MarkDown(ts.URL, io.ErrUnexpectedEOF) // observed transport failure mid-probe
	close(release)
	<-probed

	if c.IsUp(ts.URL) {
		t.Fatal("stale probe success resurrected a peer marked down mid-flight")
	}
	if got := c.StaleProbes(); got != 1 {
		t.Errorf("StaleProbes = %d, want 1", got)
	}
	// A probe launched after the MarkDown observes the peer at its current
	// generation and legitimately brings it back.
	go func() { <-entered }()
	c.ProbeNow(context.Background())
	if !c.IsUp(ts.URL) {
		t.Fatal("fresh probe did not restore the recovered peer")
	}
}

func TestMergeIsLastWriterWinsWithTombstonePriority(t *testing.T) {
	c, err := New(Config{Self: "http://a:1"})
	if err != nil {
		t.Fatal(err)
	}
	// Learn a member via gossip: starts up.
	if !c.Merge([]Member{{URL: "http://b:1", Epoch: 1}}) {
		t.Fatal("new member did not register as a change")
	}
	if !c.IsUp("http://b:1") {
		t.Error("gossip-learned member should start optimistically up")
	}
	// A stale view (lower epoch) changes nothing.
	if c.Merge([]Member{{URL: "http://b:1", Epoch: 0, Left: true}}) {
		t.Error("stale tombstone applied")
	}
	// Equal epoch: the tombstone wins (leaving is the terminal intent).
	c.Merge([]Member{{URL: "http://b:1", Epoch: 1, Left: true}})
	if got := c.Nodes(); len(got) != 1 {
		t.Errorf("tombstoned member still live: %v", got)
	}
	// A newer epoch un-tombstones (rejoin) with a fresh liveness slate.
	c.Merge([]Member{{URL: "http://b:1", Epoch: 2}})
	if !c.IsUp("http://b:1") {
		t.Error("rejoined member should be up")
	}
	// Replaying every old fact is a no-op: merge is idempotent.
	if c.Merge([]Member{{URL: "http://b:1", Epoch: 1, Left: true}, {URL: "http://b:1", Epoch: 2}}) {
		t.Error("replayed history reported a change")
	}
}

func TestSelfTombstoneIsRebutted(t *testing.T) {
	c, err := New(Config{Self: "http://a:1"})
	if err != nil {
		t.Fatal(err)
	}
	// A peer's view declares us dead at an epoch ahead of ours.
	c.Merge([]Member{{URL: "http://a:1", Epoch: 5, Left: true}})
	for _, m := range c.Members() {
		if m.URL == "http://a:1" {
			if m.Left {
				t.Fatal("node accepted its own tombstone while alive")
			}
			if m.Epoch <= 5 {
				t.Errorf("rebuttal epoch %d does not outrank the tombstone", m.Epoch)
			}
		}
	}
}

// gossipNode is a cluster member with just enough HTTP surface for the
// membership tests: /healthz carrying the member view (the gossip
// payload) and the join/leave announcement endpoints, mirroring the
// service's wiring.
func gossipNode(t *testing.T) (*Cluster, *httptest.Server) {
	t.Helper()
	var c *Cluster
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			json.NewEncoder(w).Encode(map[string]any{"status": "ok", "members": c.Members()})
		case "/v1/cluster/join", "/v1/cluster/leave":
			var jw joinWire
			if err := json.NewDecoder(r.Body).Decode(&jw); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if r.URL.Path == "/v1/cluster/join" {
				members, err := c.Join(jw.URL)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				json.NewEncoder(w).Encode(joinWire{URL: c.Self(), Members: members})
				return
			}
			c.Leave(jw.URL)
			json.NewEncoder(w).Encode(joinWire{URL: c.Self()})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	var err error
	c, err = New(Config{Self: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	return c, ts
}

func memberURLs(c *Cluster) []string {
	out := c.Nodes()
	sort.Strings(out)
	return out
}

// TestJoinGossipsAcrossTheCluster drives the full elastic-membership
// cycle without the service layer: C joins via A, learns B from A's
// member view, and B learns C from its next probe of A — one gossip hop,
// no restarts. Then C leaves and every survivor converges on its absence.
func TestJoinGossipsAcrossTheCluster(t *testing.T) {
	a, _ := gossipNode(t)
	b, _ := gossipNode(t)
	cc, _ := gossipNode(t)

	// A and B seeded with each other (the static bootstrap pair).
	a.Merge([]Member{{URL: b.Self(), Epoch: 0}})
	b.Merge([]Member{{URL: a.Self(), Epoch: 0}})

	// C announces itself to A and adopts A's view — which includes B.
	if err := cc.JoinVia(context.Background(), a.Self()); err != nil {
		t.Fatal(err)
	}
	if got := memberURLs(cc); len(got) != 3 {
		t.Fatalf("joiner's view = %v, want all three members", got)
	}
	if got := memberURLs(a); len(got) != 3 {
		t.Fatalf("seed's view = %v, want all three members", got)
	}
	// B hears about C on its next probe of A (the gossip hop).
	b.ProbeNow(context.Background())
	if got := memberURLs(b); len(got) != 3 {
		t.Fatalf("B's view after one probe cycle = %v, want all three members", got)
	}
	// All three agree, and the changed signal fired for the watchers.
	select {
	case <-b.Changed():
	default:
		t.Error("membership change did not signal Changed()")
	}

	// C leaves: the tombstone lands on A and B immediately via the
	// announcement, not eventually via probe timeouts.
	cc.AnnounceLeave(context.Background())
	for name, n := range map[string]*Cluster{"A": a, "B": b} {
		if got := memberURLs(n); len(got) != 2 {
			t.Fatalf("%s still sees the departed member: %v", name, got)
		}
	}
	// The departed node itself is draining: it owns nothing.
	if got := cc.UpNodes(); len(got) != 2 {
		t.Fatalf("draining node still in its own candidate set: %v", got)
	}
}

func TestJoinViaRetriesThenFails(t *testing.T) {
	c, err := New(Config{Self: "http://self:1"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := c.JoinVia(ctx, "http://127.0.0.1:1"); err == nil {
		t.Fatal("join via an unreachable seed succeeded")
	}
	if err := c.JoinVia(ctx, c.Self()); err == nil {
		t.Fatal("join via self accepted")
	}
}
