package cluster

import (
	"bytes"
	"crypto/sha256"
	"sort"
)

// Owner picks the owning node for a content address among nodes via
// rendezvous (highest-random-weight) hashing: every node scores
// SHA-256(node || 0x00 || key) and the highest score wins. Rendezvous
// hashing needs no coordinated ring state — any two nodes with the same
// candidate set agree on every key's owner, and when a node leaves only the
// keys it owned move (spread evenly across survivors), so a peer death
// never reshuffles keys between surviving nodes' caches.
//
// Nodes must be the same canonical strings on every cluster member
// (normalizeURL guarantees that for Cluster). An empty candidate set
// returns "".
func Owner(key [32]byte, nodes []string) string {
	var (
		best      string
		bestScore [sha256.Size]byte
		have      bool
	)
	h := sha256.New()
	for _, n := range nodes {
		h.Reset()
		h.Write([]byte(n))
		h.Write([]byte{0})
		h.Write(key[:])
		var score [sha256.Size]byte
		h.Sum(score[:0])
		switch c := bytes.Compare(score[:], bestScore[:]); {
		case !have, c > 0, c == 0 && n < best:
			best, bestScore, have = n, score, true
		}
	}
	return best
}

// Rank orders nodes by descending rendezvous score for key (ties broken
// by lower URL), so Rank(...)[0] == Owner(...) and Rank(...)[1:] are the
// key's successors in failover order. The ranking has the same stability
// property as Owner: removing one node deletes its slot and shifts the
// rest up without reordering them, so the first successor of a dead
// owner is exactly the node the survivors now agree owns the key.
func Rank(key [32]byte, nodes []string) []string {
	type scored struct {
		url   string
		score [sha256.Size]byte
	}
	ranked := make([]scored, len(nodes))
	h := sha256.New()
	for i, n := range nodes {
		h.Reset()
		h.Write([]byte(n))
		h.Write([]byte{0})
		h.Write(key[:])
		ranked[i].url = n
		h.Sum(ranked[i].score[:0])
	}
	sort.Slice(ranked, func(i, j int) bool {
		switch c := bytes.Compare(ranked[i].score[:], ranked[j].score[:]); {
		case c != 0:
			return c > 0
		default:
			return ranked[i].url < ranked[j].url
		}
	})
	out := make([]string, len(ranked))
	for i, s := range ranked {
		out[i] = s.url
	}
	return out
}

// OwnerOf resolves a key's owner among the currently-up nodes and reports
// whether that owner is this node. Down peers are excluded, so their key
// ranges redistribute to the survivors; when every peer is down the node
// owns everything (single-node degradation).
func (c *Cluster) OwnerOf(key [32]byte) (url string, self bool) {
	url = Owner(key, c.UpNodes())
	return url, url == c.self
}

// OwnerAmongMembers resolves a key's owner over the full live member set,
// ignoring up/down state. When OwnerOf disagrees with OwnerAmongMembers
// the configured owner is down and the caller is serving in failover.
func (c *Cluster) OwnerAmongMembers(key [32]byte) string {
	return Owner(key, c.Nodes())
}

// RankUp returns the failover chain for key over the currently-up
// candidate set: the up owner first, then its up successors.
func (c *Cluster) RankUp(key [32]byte) []string {
	return Rank(key, c.UpNodes())
}

// ReplicaTargets returns the peers that should hold key's replicated
// state when this node produced it: the key's top k+1 ranked members —
// owner plus k successors — minus self, over the full member set (up or
// down; replication is asymptotic, and a briefly-down successor will be
// retried by later pushes). When self is the owner (the usual case) that
// is exactly its k successors; when it is not — a delta solved on the
// *base's* owner caches under the patched key, whose owner may be
// elsewhere — the key's rightful owner is among the targets, so the
// entry converges onto the nodes its ring slot says should hold it. A
// key is thus held by its top ranks, and under up-to-k failures the
// first surviving slot serves warm.
func (c *Cluster) ReplicaTargets(key [32]byte, k int) []string {
	if k <= 0 {
		return nil
	}
	ranked := Rank(key, c.Nodes())
	out := make([]string, 0, k+1)
	for i, u := range ranked {
		if i > k {
			break
		}
		if u == c.self {
			continue // self already holds the entry
		}
		out = append(out, u)
	}
	return out
}
