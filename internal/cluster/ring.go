package cluster

import (
	"bytes"
	"crypto/sha256"
)

// Owner picks the owning node for a content address among nodes via
// rendezvous (highest-random-weight) hashing: every node scores
// SHA-256(node || 0x00 || key) and the highest score wins. Rendezvous
// hashing needs no coordinated ring state — any two nodes with the same
// candidate set agree on every key's owner, and when a node leaves only the
// keys it owned move (spread evenly across survivors), so a peer death
// never reshuffles keys between surviving nodes' caches.
//
// Nodes must be the same canonical strings on every cluster member
// (normalizeURL guarantees that for Cluster). An empty candidate set
// returns "".
func Owner(key [32]byte, nodes []string) string {
	var (
		best      string
		bestScore [sha256.Size]byte
		have      bool
	)
	h := sha256.New()
	for _, n := range nodes {
		h.Reset()
		h.Write([]byte(n))
		h.Write([]byte{0})
		h.Write(key[:])
		var score [sha256.Size]byte
		h.Sum(score[:0])
		switch c := bytes.Compare(score[:], bestScore[:]); {
		case !have, c > 0, c == 0 && n < best:
			best, bestScore, have = n, score, true
		}
	}
	return best
}

// OwnerOf resolves a key's owner among the currently-up nodes and reports
// whether that owner is this node. Down peers are excluded, so their key
// ranges redistribute to the survivors; when every peer is down the node
// owns everything (single-node degradation).
func (c *Cluster) OwnerOf(key [32]byte) (url string, self bool) {
	url = Owner(key, c.UpNodes())
	return url, url == c.self
}
