package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func TestNewNormalizesAndFiltersSelf(t *testing.T) {
	c, err := New(Config{
		Self:  "localhost:8081/",
		Peers: []string{"http://localhost:8081", "localhost:8082", " http://localhost:8083/ "},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Self() != "http://localhost:8081" {
		t.Errorf("Self = %q", c.Self())
	}
	want := []string{"http://localhost:8081", "http://localhost:8082", "http://localhost:8083"}
	got := c.Nodes()
	if len(got) != len(want) {
		t.Fatalf("Nodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", got, want)
		}
	}
}

func TestNewRejectsEmptyURLs(t *testing.T) {
	if _, err := New(Config{Self: ""}); err == nil {
		t.Error("empty advertise URL accepted")
	}
	if _, err := New(Config{Self: "http://a:1", Peers: []string{"  "}}); err == nil {
		t.Error("blank peer URL accepted")
	}
}

func TestProbeTracksLiveness(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s, want /healthz", r.URL.Path)
		}
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c, err := New(Config{Self: "http://self:1", Peers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	c.ProbeNow(context.Background())
	if up := c.UpNodes(); len(up) != 2 {
		t.Fatalf("healthy peer not up: %v", up)
	}

	healthy.Store(false)
	c.ProbeNow(context.Background())
	if up := c.UpNodes(); len(up) != 1 || up[0] != "http://self:1" {
		t.Fatalf("unhealthy peer still up: %v", up)
	}
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].Up || snap[0].Failures == 0 || snap[0].LastError == "" {
		t.Errorf("snapshot after failure = %+v", snap)
	}

	// Recovery: the next successful probe brings it back.
	healthy.Store(true)
	c.ProbeNow(context.Background())
	if up := c.UpNodes(); len(up) != 2 {
		t.Fatalf("recovered peer not up: %v", up)
	}
	if c.Probes() != 3 {
		t.Errorf("probes = %d, want 3", c.Probes())
	}
	if c.Transitions() != 2 {
		t.Errorf("transitions = %d, want 2 (up->down->up)", c.Transitions())
	}
}

func TestProbeMarksUnreachablePeerDown(t *testing.T) {
	// A listener that was closed: connection refused.
	ts := httptest.NewServer(http.NotFoundHandler())
	dead := ts.URL
	ts.Close()

	c, err := New(Config{Self: "http://self:1", Peers: []string{dead}})
	if err != nil {
		t.Fatal(err)
	}
	c.ProbeNow(context.Background())
	if up := c.UpNodes(); len(up) != 1 {
		t.Fatalf("unreachable peer still up: %v", up)
	}
}

func TestMarkDownTakesEffectImmediately(t *testing.T) {
	c, err := New(Config{Self: "http://a:1", Peers: []string{"http://b:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.UpNodes()) != 2 {
		t.Fatal("peers should start optimistically up")
	}
	c.MarkDown("http://b:1", errors.New("connect refused"))
	if up := c.UpNodes(); len(up) != 1 || up[0] != "http://a:1" {
		t.Fatalf("marked-down peer still in owner set: %v", up)
	}
	// Unknown URLs are ignored, not invented.
	c.MarkDown("http://nobody:1", nil)
	if len(c.Nodes()) != 2 {
		t.Error("MarkDown invented a node")
	}
}

// A caller hanging up mid-forward says nothing about the peer's health:
// the canceled request must not evict the peer from the owner set.
func TestCanceledForwardDoesNotMarkPeerDown(t *testing.T) {
	started := make(chan struct{})
	unblock := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-unblock // hold until the caller has given up
	}))
	defer ts.Close()
	defer close(unblock)

	c, err := New(Config{Self: "http://self:1", Peers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	if _, err := c.ForwardSolve(ctx, ts.URL, "application/json", "", []byte("{}")); err == nil {
		t.Fatal("canceled forward reported success")
	}
	if up := c.UpNodes(); len(up) != 2 {
		t.Fatalf("peer marked down by the caller's own cancellation: %v", up)
	}
}
