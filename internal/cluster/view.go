package cluster

import "sort"

// ringView is an immutable snapshot of the candidate node sets the
// rendezvous ring hashes over, cached so the hot routing path never
// sorts or allocates. It is rebuilt only when the stamped version falls
// behind Cluster.version — i.e. on membership or liveness change. That
// is the "incremental recompute": the ring itself is stateless
// (rendezvous hashing), so recomputing the candidate slice on change is
// all the work there is, and a change to one node only ever moves that
// node's key ranges (see ring_test.go's stability property).
type ringView struct {
	version uint64
	// members: every live (non-left) member including self, sorted.
	members []string
	// up: the candidate owner set — live members currently believed up
	// (self included unless draining), sorted.
	up []string
}

// view returns the current cached view, rebuilding it if stale. Races
// between concurrent rebuilds are benign: both build the same snapshot
// for the same version, and a version bump during rebuild just means the
// next caller rebuilds again.
func (c *Cluster) view() *ringView {
	v := c.version.Load()
	if rv := c.ring.Load(); rv != nil && rv.version == v {
		return rv
	}
	c.mu.Lock()
	v = c.version.Load()
	rv := &ringView{version: v}
	rv.members = make([]string, 0, len(c.peers)+1)
	rv.up = make([]string, 0, len(c.peers)+1)
	if !c.selfLeft {
		rv.members = append(rv.members, c.self)
		rv.up = append(rv.up, c.self)
	}
	for _, p := range c.peers {
		if p.left {
			continue
		}
		rv.members = append(rv.members, p.url)
		if p.up {
			rv.up = append(rv.up, p.url)
		}
	}
	c.mu.Unlock()
	sort.Strings(rv.members)
	sort.Strings(rv.up)
	c.ring.Store(rv)
	return rv
}
