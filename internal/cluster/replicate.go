package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Replication RPCs: an owner pushes what it just produced — the encoded
// solve response for the cache, and the durable artifacts (snapshot +
// session record) for the store — to its ring-successors, so a
// successor can answer warm the moment the owner dies. Both pushes are
// the PR 7 fetch codec turned around: the same verified bytes that
// GET /v1/replica/{fp} / GET /v1/store/{fp} would serve are POSTed, and
// the replica ingests them through the same verify-or-quarantine path,
// so a corrupt or misdirected push is rejected, never served.
//
// Pushes retry only on transport errors: an HTTP status is the replica
// speaking authoritatively (400 = bad payload, 503 = draining) and
// retrying the same bytes cannot change its mind.

const pushAttempts = 3

// PushReplica pushes an encoded solve-response body to peer's replica
// cache (POST /v1/replica/{fpHex}).
func (c *Cluster) PushReplica(ctx context.Context, peer, fpHex string, body []byte) error {
	return c.push(ctx, peer, "/v1/replica/"+fpHex, body)
}

// PushStore pushes a durable store artifact — snapshot or session record
// bytes, exactly as GET /v1/store/{fp} serves them — to peer
// (POST /v1/store/{fpHex}). The receiver ingests via store.Ingest, which
// re-verifies content addressing before the artifact becomes visible.
func (c *Cluster) PushStore(ctx context.Context, peer, fpHex string, data []byte) error {
	return c.push(ctx, peer, "/v1/store/"+fpHex, data)
}

func (c *Cluster) push(ctx context.Context, peer, path string, body []byte) error {
	var lastErr error
	for attempt := 0; attempt < pushAttempts; attempt++ {
		if attempt > 0 {
			if err := Backoff(ctx, attempt-1); err != nil {
				return err
			}
		}
		actx, cancel := context.WithTimeout(ctx, AttemptTimeout(ctx, pushAttempts-attempt))
		err := c.pushOnce(actx, peer, path, body)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
		var he *httpError
		if errors.As(err, &he) {
			return err // authoritative rejection: do not retry
		}
		c.observeTransportErr(peer, err)
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return fmt.Errorf("cluster: push %s to %s: %w", path, peer, lastErr)
}

func (c *Cluster) pushOnce(ctx context.Context, peer, path string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	setTraceHeader(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &httpError{status: resp.StatusCode, msg: string(bytes.TrimSpace(msg))}
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return nil
}

// httpError is a non-2xx push response: the replica rejected the payload
// (or refused service), authoritatively — not a transport failure.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string {
	if e.msg == "" {
		return fmt.Sprintf("status %d", e.status)
	}
	return fmt.Sprintf("status %d: %s", e.status, e.msg)
}
