package cluster

import (
	"context"
	"time"
)

// Retry policy for inter-node RPCs. Retries are short and bounded: the
// point is to ride out a connection blip or pick the next node in a
// failover chain quickly, not to mask a dead cluster — callers surface
// 503 + Retry-After once a chain is exhausted (see service.forwardSolve).
const (
	// backoffBase is the first retry delay; attempt n waits
	// backoffBase << n, capped at backoffCap.
	backoffBase = 25 * time.Millisecond
	backoffCap  = 250 * time.Millisecond
	// attemptCap bounds one RPC attempt when the caller's context has no
	// deadline of its own.
	attemptCap = 30 * time.Second
)

// Backoff sleeps the capped-exponential delay for a retry attempt
// (attempt 0 = first retry), or returns early with the context's error.
func Backoff(ctx context.Context, attempt int) error {
	d := backoffBase << uint(attempt)
	if d > backoffCap || d <= 0 {
		d = backoffCap
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// AttemptTimeout derives one attempt's deadline from the caller's
// remaining budget split across the attempts still available, so a
// 3-attempt call under a 6s deadline gives each attempt ~2s instead of
// letting the first attempt eat the whole budget. Without a caller
// deadline, attempts are capped at attemptCap.
func AttemptTimeout(ctx context.Context, attemptsLeft int) time.Duration {
	if attemptsLeft < 1 {
		attemptsLeft = 1
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return attemptCap
	}
	per := time.Until(dl) / time.Duration(attemptsLeft)
	if per <= 0 {
		return time.Millisecond // let the attempt fail fast with the real ctx error
	}
	if per > attemptCap {
		return attemptCap
	}
	return per
}
