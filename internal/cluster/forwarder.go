package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"

	"repro/internal/obsv"
)

// HopHeader marks a request that already crossed one node boundary. A node
// receiving it must answer locally, never re-forward: with every member
// routing by the same hash the first hop always lands on the owner, and if
// two nodes' liveness views briefly disagree the guard turns a potential
// forwarding loop into one extra local solve — degraded, never wrong.
const HopHeader = "X-Linksynth-Hop"

// ForwardResult is the owner's verbatim answer to a relayed request.
type ForwardResult struct {
	StatusCode int
	Header     http.Header
	Body       []byte
}

// ForwardSolve relays a /v1/solve request body to the owning node and
// returns its response, whatever the status — the caller decides which
// statuses to pass through and which to fall back on. query, when
// non-empty, is the raw query string (without "?") to append — the edge
// passes the client's ?explain=1 through so the owner, which does the
// actual solving, measures the report. A transport-level failure (connect
// refused, timeout, mid-body death) marks the owner down and returns an
// error; the caller should then solve locally.
func (c *Cluster) ForwardSolve(ctx context.Context, owner, contentType, query string, body []byte) (*ForwardResult, error) {
	url := owner + "/v1/solve"
	if query != "" {
		url += "?" + query
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: forward to %s: %w", owner, err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	req.Header.Set(HopHeader, "1")
	setTraceHeader(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		c.observeTransportErr(owner, err)
		return nil, fmt.Errorf("cluster: forward to %s: %w", owner, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		c.observeTransportErr(owner, err)
		return nil, fmt.Errorf("cluster: forward to %s: read response: %w", owner, err)
	}
	return &ForwardResult{StatusCode: resp.StatusCode, Header: resp.Header, Body: b}, nil
}

// setTraceHeader stamps the context's trace id (if any) onto an
// intra-cluster request, so the receiving node's edge adopts the id and
// both halves of the exchange group under one distributed trace.
func setTraceHeader(ctx context.Context, req *http.Request) {
	if id := obsv.FromContext(ctx).ID(); id != "" {
		req.Header.Set(obsv.TraceHeader, id)
	}
}
