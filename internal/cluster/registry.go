// Package cluster turns a set of linksynthd nodes into a shared-nothing
// sharded service. Each instance's content address (core.Fingerprint) maps
// to exactly one owning node via rendezvous hashing over the live node set;
// non-owners forward requests to the owner, so each node's cache is
// authoritative for its key range and the cluster as a whole solves every
// distinct instance at most once.
//
// The package is deliberately HTTP-shaped and service-agnostic: a Cluster
// knows node URLs, liveness, ownership and how to relay /v1/solve and
// /v1/batch calls, but nothing about solver internals. The serving layer
// (internal/service) decides when to route, when to fall back to local
// solving, and how to merge scattered batch results.
//
// Membership is a static seed list (-peers) — there is no gossip or
// consensus. Liveness is observed two ways: a background prober hits each
// peer's /healthz on a fixed interval, and the forwarding path reports
// transport failures immediately (MarkDown), so a dead owner stops
// attracting traffic before the next probe tick. A node that cannot reach a
// peer simply takes over that peer's keys locally: correctness never
// depends on agreement, because results are content-addressed — any node's
// answer for a key is byte-identical.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config assembles a Cluster.
type Config struct {
	// Self is this node's advertise URL (how peers reach it); required.
	Self string
	// Peers is the static seed list of node URLs. It may or may not
	// include Self; Self is filtered out either way.
	Peers []string
	// ProbeInterval is the /healthz probing period (<= 0 selects 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (<= 0 selects 1s).
	ProbeTimeout time.Duration
	// PollInterval is the scatter-gather job polling period
	// (<= 0 selects 25ms).
	PollInterval time.Duration
	// Client is the HTTP client for forwarding and probing (nil selects a
	// dedicated client without an overall timeout: probes and gather polls
	// carry their own per-call deadlines, and a forwarded solve must be
	// allowed to run as long as the caller's request context does).
	Client *http.Client
}

// PeerStatus is one peer's observed state, for /healthz and /metrics.
type PeerStatus struct {
	URL       string    `json:"url"`
	Up        bool      `json:"up"`
	Failures  int       `json:"failures,omitempty"` // consecutive probe failures
	LastError string    `json:"last_error,omitempty"`
	LastProbe time.Time `json:"-"`
}

type peer struct {
	url       string
	up        bool
	failures  int
	lastErr   string
	lastProbe time.Time
}

// Cluster is the node-local view of the shard group: this node's identity,
// every peer's URL and up/down state, and the client used to reach them.
// Safe for concurrent use.
type Cluster struct {
	self          string
	client        *http.Client
	probeInterval time.Duration
	probeTimeout  time.Duration
	pollInterval  time.Duration

	mu    sync.Mutex
	peers map[string]*peer

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	probes      atomic.Uint64
	transitions atomic.Uint64
}

// New builds a Cluster from the seed list. Every peer starts optimistically
// up — a cold cluster routes immediately and the first probe (or the first
// failed forward) corrects the view. Call Start to begin background
// probing, and Close to stop it.
func New(cfg Config) (*Cluster, error) {
	self, err := normalizeURL(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("cluster: advertise URL: %w", err)
	}
	c := &Cluster{
		self:          self,
		client:        cfg.Client,
		probeInterval: cfg.ProbeInterval,
		probeTimeout:  cfg.ProbeTimeout,
		pollInterval:  cfg.PollInterval,
		peers:         make(map[string]*peer),
		stop:          make(chan struct{}),
	}
	if c.probeInterval <= 0 {
		c.probeInterval = 2 * time.Second
	}
	if c.probeTimeout <= 0 {
		c.probeTimeout = time.Second
	}
	if c.pollInterval <= 0 {
		c.pollInterval = 25 * time.Millisecond
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	for _, raw := range cfg.Peers {
		u, err := normalizeURL(raw)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", raw, err)
		}
		if u == self {
			continue
		}
		c.peers[u] = &peer{url: u, up: true}
	}
	return c, nil
}

// normalizeURL canonicalizes a node URL so the same node spelled two ways
// ("localhost:8081/" vs "http://localhost:8081") hashes identically on
// every cluster member.
func normalizeURL(raw string) (string, error) {
	u := strings.TrimRight(strings.TrimSpace(raw), "/")
	if u == "" {
		return "", fmt.Errorf("empty URL")
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u, nil
}

// Self returns this node's advertise URL.
func (c *Cluster) Self() string { return c.self }

// Nodes returns every known node URL (self included), sorted.
func (c *Cluster) Nodes() []string {
	c.mu.Lock()
	out := make([]string, 0, len(c.peers)+1)
	out = append(out, c.self)
	for u := range c.peers {
		out = append(out, u)
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// UpNodes returns the candidate owner set: self plus every peer currently
// believed up, sorted.
func (c *Cluster) UpNodes() []string {
	c.mu.Lock()
	out := make([]string, 0, len(c.peers)+1)
	out = append(out, c.self)
	for u, p := range c.peers {
		if p.up {
			out = append(out, u)
		}
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// Snapshot returns every peer's observed state, sorted by URL.
func (c *Cluster) Snapshot() []PeerStatus {
	c.mu.Lock()
	out := make([]PeerStatus, 0, len(c.peers))
	for _, p := range c.peers {
		out = append(out, PeerStatus{
			URL: p.url, Up: p.up, Failures: p.failures,
			LastError: p.lastErr, LastProbe: p.lastProbe,
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Probes returns how many individual peer probes have run.
func (c *Cluster) Probes() uint64 { return c.probes.Load() }

// Transitions returns how many up<->down state changes have been observed.
func (c *Cluster) Transitions() uint64 { return c.transitions.Load() }

// observeTransportErr reports a failed request to a peer, marking it down
// unless the failure was the caller's own cancellation — a client that
// hangs up mid-forward (or a deleted parent job aborting its polls) says
// nothing about the peer's health, and must not evict a healthy owner
// from the ring.
func (c *Cluster) observeTransportErr(url string, err error) {
	if errors.Is(err, context.Canceled) {
		return
	}
	c.MarkDown(url, err)
}

// MarkDown records an observed failure reaching a peer (e.g. a forward
// that died in transport), taking it out of the owner set immediately
// instead of waiting for the next probe tick. Probes bring it back.
func (c *Cluster) MarkDown(url string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[url]
	if !ok {
		return
	}
	if p.up {
		p.up = false
		c.transitions.Add(1)
	}
	p.failures++
	if err != nil {
		p.lastErr = err.Error()
	}
}

// Start launches the background probe loop. Safe to skip in tests that
// drive ProbeNow directly.
func (c *Cluster) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.probeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.ProbeNow(context.Background())
			}
		}
	}()
}

// Close stops background probing. It does not touch in-flight forwards.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// ProbeNow probes every peer's /healthz once, concurrently, and updates
// up/down state: one successful probe marks a peer up, one failed probe
// marks it down (the static seed list is small and probing is cheap, so no
// hysteresis — a flapping peer costs only misrouted-then-corrected
// forwards, never wrong results).
func (c *Cluster) ProbeNow(ctx context.Context) {
	c.mu.Lock()
	targets := make([]string, 0, len(c.peers))
	//lint:ordered probes run concurrently and update per-peer state; launch order is immaterial
	for u := range c.peers {
		targets = append(targets, u)
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, u := range targets {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			err := c.probeOne(ctx, u)
			c.probes.Add(1)
			c.mu.Lock()
			defer c.mu.Unlock()
			p, ok := c.peers[u]
			if !ok {
				return
			}
			p.lastProbe = time.Now()
			if err == nil {
				if !p.up {
					c.transitions.Add(1)
				}
				p.up = true
				p.failures = 0
				p.lastErr = ""
				return
			}
			if p.up {
				c.transitions.Add(1)
			}
			p.up = false
			p.failures++
			p.lastErr = err.Error()
		}(u)
	}
	wg.Wait()
}

func (c *Cluster) probeOne(ctx context.Context, url string) error {
	ctx, cancel := context.WithTimeout(ctx, c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	return nil
}
