// Package cluster turns a set of linksynthd nodes into a shared-nothing
// sharded service. Each instance's content address (core.Fingerprint) maps
// to exactly one owning node via rendezvous hashing over the live node set;
// non-owners forward requests to the owner, so each node's cache is
// authoritative for its key range and the cluster as a whole solves every
// distinct instance at most once.
//
// The package is deliberately HTTP-shaped and service-agnostic: a Cluster
// knows node URLs, liveness, ownership and how to relay /v1/solve and
// /v1/batch calls, but nothing about solver internals. The serving layer
// (internal/service) decides when to route, when to fall back to local
// solving, and how to merge scattered batch results.
//
// Membership is dynamic: a node seeds its view from -peers and/or a
// -join announcement, and the member set — a last-writer-wins map of
// {url, epoch, left} entries with monotonically increasing epochs — is
// gossiped on the existing /healthz probe cycle, so every node converges
// on one view without consensus (see membership.go). Liveness is a
// separate, node-local observation layered on top: a background prober
// hits each member's /healthz on a fixed interval, and the forwarding
// path reports transport failures immediately (MarkDown), so a dead owner
// stops attracting traffic before the next probe tick. Correctness never
// depends on agreement, because results are content-addressed — any
// node's answer for a key is byte-identical.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config assembles a Cluster.
type Config struct {
	// Self is this node's advertise URL (how peers reach it); required.
	Self string
	// Peers seeds the initial member set with node URLs (epoch 0). It may
	// or may not include Self; Self is filtered out either way. A node
	// joining an existing cluster may instead start with an empty seed
	// list and announce itself via JoinVia.
	Peers []string
	// ProbeInterval is the /healthz probing period (<= 0 selects 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (<= 0 selects 1s).
	ProbeTimeout time.Duration
	// PollInterval is the scatter-gather job polling period
	// (<= 0 selects 25ms).
	PollInterval time.Duration
	// Client is the HTTP client for forwarding and probing (nil selects a
	// dedicated client without an overall timeout: probes, gather polls
	// and replica pushes carry their own per-call deadlines, and a
	// forwarded solve must be allowed to run as long as the caller's
	// request context does).
	Client *http.Client
}

// PeerStatus is one peer's observed state, for /healthz and /metrics.
type PeerStatus struct {
	URL       string    `json:"url"`
	Up        bool      `json:"up"`
	Failures  int       `json:"failures,omitempty"` // consecutive probe failures
	LastError string    `json:"last_error,omitempty"`
	LastProbe time.Time `json:"-"`
}

// peer is one remote member: its gossiped membership state (epoch, left)
// plus this node's local liveness observations.
type peer struct {
	url   string
	epoch uint64 // membership epoch; highest epoch wins on merge
	left  bool   // tombstone: the member announced leave (kept for gossip)

	up  bool
	gen uint64 // liveness generation; bumped by MarkDown so a probe result
	// that was already in flight when a transport failure was
	// observed can never resurrect a dead peer (see ProbeNow)
	failures  int
	lastErr   string
	lastProbe time.Time
}

// Cluster is the node-local view of the shard group: this node's identity,
// every member's URL, membership epoch and up/down state, and the client
// used to reach them. Safe for concurrent use.
type Cluster struct {
	self          string
	client        *http.Client
	probeInterval time.Duration
	probeTimeout  time.Duration
	pollInterval  time.Duration

	mu        sync.Mutex
	peers     map[string]*peer
	selfEpoch uint64 // this node's own membership epoch
	selfLeft  bool   // set by Leave(self): drain mode, self owns nothing

	// version stamps the (membership x liveness) view; any change bumps
	// it, invalidating the cached candidate slices in view.go so the
	// rendezvous ring recomputes incrementally — only on change, and a
	// change only moves the changed node's key ranges.
	version atomic.Uint64
	ring    atomic.Pointer[ringView]

	changed chan struct{} // coalescing membership-change notifications

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	probes      atomic.Uint64
	probesStale atomic.Uint64 // probe results discarded by the gen guard
	transitions atomic.Uint64
}

// New builds a Cluster from the seed list. Every peer starts optimistically
// up — a cold cluster routes immediately and the first probe (or the first
// failed forward) corrects the view. Call Start to begin background
// probing, and Close to stop it.
func New(cfg Config) (*Cluster, error) {
	self, err := normalizeURL(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("cluster: advertise URL: %w", err)
	}
	c := &Cluster{
		self:          self,
		client:        cfg.Client,
		probeInterval: cfg.ProbeInterval,
		probeTimeout:  cfg.ProbeTimeout,
		pollInterval:  cfg.PollInterval,
		peers:         make(map[string]*peer),
		changed:       make(chan struct{}, 1),
		stop:          make(chan struct{}),
	}
	if c.probeInterval <= 0 {
		c.probeInterval = 2 * time.Second
	}
	if c.probeTimeout <= 0 {
		c.probeTimeout = time.Second
	}
	if c.pollInterval <= 0 {
		c.pollInterval = 25 * time.Millisecond
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	for _, raw := range cfg.Peers {
		u, err := normalizeURL(raw)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", raw, err)
		}
		if u == self {
			continue
		}
		c.peers[u] = &peer{url: u, up: true}
	}
	return c, nil
}

// normalizeURL canonicalizes a node URL so the same node spelled two ways
// ("localhost:8081/" vs "http://localhost:8081") hashes identically on
// every cluster member.
func normalizeURL(raw string) (string, error) {
	u := strings.TrimRight(strings.TrimSpace(raw), "/")
	if u == "" {
		return "", fmt.Errorf("empty URL")
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u, nil
}

// Self returns this node's advertise URL.
func (c *Cluster) Self() string { return c.self }

// Nodes returns every live (non-left) member URL (self included), sorted.
func (c *Cluster) Nodes() []string {
	return c.view().members
}

// UpNodes returns the candidate owner set: self plus every live member
// currently believed up, sorted. Callers must not mutate the returned
// slice — it is shared with the cached ring view.
func (c *Cluster) UpNodes() []string {
	return c.view().up
}

// Snapshot returns every remote member's observed state, sorted by URL.
// Tombstoned (left) members are omitted — they are gossip bookkeeping,
// not peers.
func (c *Cluster) Snapshot() []PeerStatus {
	c.mu.Lock()
	out := make([]PeerStatus, 0, len(c.peers))
	for _, p := range c.peers {
		if p.left {
			continue
		}
		out = append(out, PeerStatus{
			URL: p.url, Up: p.up, Failures: p.failures,
			LastError: p.lastErr, LastProbe: p.lastProbe,
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Probes returns how many individual peer probes have run.
func (c *Cluster) Probes() uint64 { return c.probes.Load() }

// StaleProbes returns how many probe results were discarded because a
// MarkDown landed while the probe was in flight.
func (c *Cluster) StaleProbes() uint64 { return c.probesStale.Load() }

// Transitions returns how many up<->down state changes have been observed.
func (c *Cluster) Transitions() uint64 { return c.transitions.Load() }

// IsUp reports whether url names a live member currently believed up
// (self is always up to itself).
func (c *Cluster) IsUp(url string) bool {
	if url == c.self {
		return !c.isSelfLeft()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[url]
	return ok && !p.left && p.up
}

func (c *Cluster) isSelfLeft() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.selfLeft
}

// observeTransportErr reports a failed request to a peer, marking it down
// unless the failure was the caller's own cancellation — a client that
// hangs up mid-forward (or a deleted parent job aborting its polls) says
// nothing about the peer's health, and must not evict a healthy owner
// from the ring.
func (c *Cluster) observeTransportErr(url string, err error) {
	if errors.Is(err, context.Canceled) {
		return
	}
	c.MarkDown(url, err)
}

// MarkDown records an observed failure reaching a peer (e.g. a forward
// that died in transport), taking it out of the owner set immediately
// instead of waiting for the next probe tick. It bumps the peer's
// liveness generation, so any probe that was already in flight when the
// failure was observed reports against a stale generation and is
// discarded — a slow success response can never flip a freshly observed
// dead peer back to up. Probes started after this bring it back.
func (c *Cluster) MarkDown(url string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[url]
	if !ok {
		return
	}
	p.gen++
	if p.up {
		p.up = false
		c.transitions.Add(1)
		c.version.Add(1)
	}
	p.failures++
	if err != nil {
		p.lastErr = err.Error()
	}
}

// Start launches the background probe loop. Safe to skip in tests that
// drive ProbeNow directly.
func (c *Cluster) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.probeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.ProbeNow(context.Background())
			}
		}
	}()
}

// Close stops background probing. It does not touch in-flight forwards.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// ProbeNow probes every live member's /healthz once, concurrently, and
// updates up/down state: one successful probe marks a peer up, one failed
// probe marks it down (membership is small and probing is cheap, so no
// hysteresis — a flapping peer costs only misrouted-then-corrected
// forwards, never wrong results). Each probe captures the peer's liveness
// generation before the request leaves; if a MarkDown bumped the
// generation while the probe was on the wire, the result is stale — it
// observed the peer before the failure — and is discarded. Probe
// responses carry the peer's member view, which is merged (gossip), so
// joins and leaves spread one probe cycle per hop.
func (c *Cluster) ProbeNow(ctx context.Context) {
	type target struct {
		url string
		gen uint64
	}
	c.mu.Lock()
	targets := make([]target, 0, len(c.peers))
	//lint:ordered probes run concurrently and update per-peer state; launch order is immaterial
	for u, p := range c.peers {
		if p.left {
			continue
		}
		targets = append(targets, target{url: u, gen: p.gen})
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, tg := range targets {
		wg.Add(1)
		go func(tg target) {
			defer wg.Done()
			members, err := c.probeOne(ctx, tg.url)
			c.probes.Add(1)
			c.mu.Lock()
			p, ok := c.peers[tg.url]
			if !ok || p.left {
				c.mu.Unlock()
				return
			}
			if p.gen != tg.gen {
				// A MarkDown (or a competing probe) advanced the peer's
				// liveness generation while this probe was in flight: the
				// result predates the observed failure. Discard it.
				c.probesStale.Add(1)
				c.mu.Unlock()
				return
			}
			p.gen++
			p.lastProbe = time.Now()
			if err == nil {
				if !p.up {
					c.transitions.Add(1)
					c.version.Add(1)
				}
				p.up = true
				p.failures = 0
				p.lastErr = ""
			} else {
				if p.up {
					c.transitions.Add(1)
					c.version.Add(1)
				}
				p.up = false
				p.failures++
				p.lastErr = err.Error()
			}
			c.mu.Unlock()
			if err == nil && len(members) > 0 {
				// Gossip: adopt whatever newer membership facts the peer
				// holds. Epoch-guarded, so replaying an old view is harmless.
				c.Merge(members)
			}
		}(tg)
	}
	wg.Wait()
}

// probeHealthz is the subset of a /healthz body the prober reads: the
// peer's gossiped member view. Kept structurally in sync with the
// service's /healthz JSON by the cluster tests.
type probeHealthz struct {
	Members []Member `json:"members"`
}

func (c *Cluster) probeOne(ctx context.Context, url string) ([]Member, error) {
	ctx, cancel := context.WithTimeout(ctx, c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	var hz probeHealthz
	if jerr := json.Unmarshal(body, &hz); jerr != nil {
		// A healthy 200 with an unexpected body still proves liveness;
		// only the gossip payload is lost.
		return nil, nil
	}
	return hz.Members, nil
}
