package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
)

// maxStoreFetch bounds a single store-file transfer; snapshots of instances
// this large should not be moving over the intra-cluster handoff path.
const maxStoreFetch = 1 << 30

const fetchAttempts = 3

// FetchStore retrieves a durable-store file (a session record or a
// snapshot) from a peer's /v1/store endpoint, for warm handoff when ring
// ownership moves. fpHex is the lowercase hex fingerprint. Transport
// failures mark the peer down and retry with capped backoff (bounded
// attempts, per-attempt timeouts derived from the caller's deadline); a
// 404 is the peer authoritatively not holding the file — reported as an
// error immediately, with no markdown and no retry.
func (c *Cluster) FetchStore(ctx context.Context, peer, fpHex string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < fetchAttempts; attempt++ {
		if attempt > 0 {
			if err := Backoff(ctx, attempt-1); err != nil {
				return nil, err
			}
		}
		actx, cancel := context.WithTimeout(ctx, AttemptTimeout(ctx, fetchAttempts-attempt))
		b, retriable, err := c.fetchStoreOnce(actx, peer, fpHex)
		cancel()
		if err == nil {
			return b, nil
		}
		if !retriable {
			return nil, err
		}
		lastErr = err
		c.observeTransportErr(peer, err)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

func (c *Cluster) fetchStoreOnce(ctx context.Context, peer, fpHex string) (b []byte, retriable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/store/"+fpHex, nil)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: fetch store from %s: %w", peer, err)
	}
	req.Header.Set(HopHeader, "1")
	setTraceHeader(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, true, fmt.Errorf("cluster: fetch store from %s: %w", peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false, fmt.Errorf("cluster: fetch store from %s: status %d", peer, resp.StatusCode)
	}
	b, err = io.ReadAll(io.LimitReader(resp.Body, maxStoreFetch+1))
	if err != nil {
		return nil, true, fmt.Errorf("cluster: fetch store from %s: read response: %w", peer, err)
	}
	if len(b) > maxStoreFetch {
		return nil, false, fmt.Errorf("cluster: fetch store from %s: file exceeds %d bytes", peer, maxStoreFetch)
	}
	return b, false, nil
}
