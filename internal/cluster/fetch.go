package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
)

// maxStoreFetch bounds a single store-file transfer; snapshots of instances
// this large should not be moving over the intra-cluster handoff path.
const maxStoreFetch = 1 << 30

// FetchStore retrieves a durable-store file (a session record or a
// snapshot) from a peer's /v1/store endpoint, for warm handoff when ring
// ownership moves. fpHex is the lowercase hex fingerprint. A 404 from the
// peer is reported as an error but does not mark the peer down; transport
// failures do.
func (c *Cluster) FetchStore(ctx context.Context, peer, fpHex string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/store/"+fpHex, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch store from %s: %w", peer, err)
	}
	req.Header.Set(HopHeader, "1")
	setTraceHeader(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		c.observeTransportErr(peer, err)
		return nil, fmt.Errorf("cluster: fetch store from %s: %w", peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cluster: fetch store from %s: status %d", peer, resp.StatusCode)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxStoreFetch+1))
	if err != nil {
		c.observeTransportErr(peer, err)
		return nil, fmt.Errorf("cluster: fetch store from %s: read response: %w", peer, err)
	}
	if len(b) > maxStoreFetch {
		return nil, fmt.Errorf("cluster: fetch store from %s: file exceeds %d bytes", peer, maxStoreFetch)
	}
	return b, nil
}
