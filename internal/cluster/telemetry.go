package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
)

// FetchDebug GETs a read-only telemetry path ("/metrics", "/debug/flight?
// trace=...") from a cluster member and returns its body. It powers the
// /debug/cluster and /debug/trace fan-outs: those handlers ask every
// member for its *local* view and merge, so the fetched paths are
// leaf-only and cannot recurse. Non-2xx statuses are errors — a member
// that answers garbage is as unreachable as one that does not answer.
// Transport failures feed the same liveness observation as forwarding, so
// a dead member found during a telemetry sweep is marked down like any
// other.
func (c *Cluster) FetchDebug(ctx context.Context, node, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+path, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %s%s: %w", node, path, err)
	}
	setTraceHeader(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		c.observeTransportErr(node, err)
		return nil, fmt.Errorf("cluster: fetch %s%s: %w", node, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		c.observeTransportErr(node, err)
		return nil, fmt.Errorf("cluster: fetch %s%s: read: %w", node, path, err)
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("cluster: fetch %s%s: status %d", node, path, resp.StatusCode)
	}
	return b, nil
}
