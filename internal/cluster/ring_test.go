package cluster

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

func testKey(i int) [32]byte {
	return sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
}

func TestOwnerDeterministicAndOrderIndependent(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	shuffled := []string{"http://c:1", "http://a:1", "http://b:1"}
	for i := 0; i < 64; i++ {
		k := testKey(i)
		o1 := Owner(k, nodes)
		o2 := Owner(k, shuffled)
		if o1 != o2 {
			t.Fatalf("key %d: owner depends on candidate order: %q vs %q", i, o1, o2)
		}
		if o1 == "" {
			t.Fatalf("key %d: no owner", i)
		}
	}
	if Owner(testKey(0), nil) != "" {
		t.Error("empty candidate set should own nothing")
	}
}

func TestOwnerSpreadsKeys(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	counts := map[string]int{}
	const n = 600
	for i := 0; i < n; i++ {
		counts[Owner(testKey(i), nodes)]++
	}
	for _, node := range nodes {
		if c := counts[node]; c < n/6 {
			t.Errorf("node %s owns only %d of %d keys — hash is badly skewed", node, c, n)
		}
	}
}

// The rendezvous property the cache design leans on: removing a node moves
// only that node's keys; every key owned by a survivor keeps its owner, so
// peer death never invalidates surviving nodes' authoritative ranges.
func TestOwnerMinimalMovementOnNodeLoss(t *testing.T) {
	all := []string{"http://a:1", "http://b:1", "http://c:1"}
	without := []string{"http://a:1", "http://c:1"}
	for i := 0; i < 256; i++ {
		k := testKey(i)
		before := Owner(k, all)
		after := Owner(k, without)
		if before != "http://b:1" && after != before {
			t.Fatalf("key %d moved from surviving owner %q to %q when an unrelated node left", i, before, after)
		}
		if before == "http://b:1" && after == "http://b:1" {
			t.Fatalf("key %d still owned by the removed node", i)
		}
	}
}

func TestOwnerOfUsesLiveView(t *testing.T) {
	c, err := New(Config{Self: "http://a:1", Peers: []string{"http://b:1"}})
	if err != nil {
		t.Fatal(err)
	}
	// Find a key owned by the peer, then kill the peer: ownership must
	// collapse onto self.
	var k [32]byte
	found := false
	for i := 0; i < 256; i++ {
		k = testKey(i)
		if owner, self := c.OwnerOf(k); !self && owner == "http://b:1" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no key owned by the peer in 256 tries")
	}
	c.MarkDown("http://b:1", fmt.Errorf("test"))
	if owner, self := c.OwnerOf(k); !self || owner != "http://a:1" {
		t.Errorf("after peer death OwnerOf = (%q, %v), want self", owner, self)
	}
}

func TestSplitByOwnerCoversEveryIndexOnce(t *testing.T) {
	c, err := New(Config{Self: "http://a:1", Peers: []string{"http://b:1", "http://c:1"}})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([][32]byte, 100)
	for i := range keys {
		keys[i] = testKey(i)
	}
	groups := c.SplitByOwner(keys)
	seen := make([]bool, len(keys))
	for gi, g := range groups {
		if g.Self != (g.Owner == c.Self()) {
			t.Errorf("group %d: Self flag disagrees with owner %q", gi, g.Owner)
		}
		if gi == 0 && !g.Self && anySelf(groups) {
			t.Errorf("local group is not first: %+v", groups)
		}
		for _, i := range g.Indices {
			if seen[i] {
				t.Fatalf("index %d assigned twice", i)
			}
			seen[i] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d assigned to no group", i)
		}
	}
}

func anySelf(groups []Group) bool {
	for _, g := range groups {
		if g.Self {
			return true
		}
	}
	return false
}
