package cluster

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"testing"
)

func testKey(i int) [32]byte {
	return sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
}

func TestOwnerDeterministicAndOrderIndependent(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	shuffled := []string{"http://c:1", "http://a:1", "http://b:1"}
	for i := 0; i < 64; i++ {
		k := testKey(i)
		o1 := Owner(k, nodes)
		o2 := Owner(k, shuffled)
		if o1 != o2 {
			t.Fatalf("key %d: owner depends on candidate order: %q vs %q", i, o1, o2)
		}
		if o1 == "" {
			t.Fatalf("key %d: no owner", i)
		}
	}
	if Owner(testKey(0), nil) != "" {
		t.Error("empty candidate set should own nothing")
	}
}

func TestOwnerSpreadsKeys(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	counts := map[string]int{}
	const n = 600
	for i := 0; i < n; i++ {
		counts[Owner(testKey(i), nodes)]++
	}
	for _, node := range nodes {
		if c := counts[node]; c < n/6 {
			t.Errorf("node %s owns only %d of %d keys — hash is badly skewed", node, c, n)
		}
	}
}

// The rendezvous property the cache design leans on: removing a node moves
// only that node's keys; every key owned by a survivor keeps its owner, so
// peer death never invalidates surviving nodes' authoritative ranges.
func TestOwnerMinimalMovementOnNodeLoss(t *testing.T) {
	all := []string{"http://a:1", "http://b:1", "http://c:1"}
	without := []string{"http://a:1", "http://c:1"}
	for i := 0; i < 256; i++ {
		k := testKey(i)
		before := Owner(k, all)
		after := Owner(k, without)
		if before != "http://b:1" && after != before {
			t.Fatalf("key %d moved from surviving owner %q to %q when an unrelated node left", i, before, after)
		}
		if before == "http://b:1" && after == "http://b:1" {
			t.Fatalf("key %d still owned by the removed node", i)
		}
	}
}

func TestOwnerOfUsesLiveView(t *testing.T) {
	c, err := New(Config{Self: "http://a:1", Peers: []string{"http://b:1"}})
	if err != nil {
		t.Fatal(err)
	}
	// Find a key owned by the peer, then kill the peer: ownership must
	// collapse onto self.
	var k [32]byte
	found := false
	for i := 0; i < 256; i++ {
		k = testKey(i)
		if owner, self := c.OwnerOf(k); !self && owner == "http://b:1" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no key owned by the peer in 256 tries")
	}
	c.MarkDown("http://b:1", fmt.Errorf("test"))
	if owner, self := c.OwnerOf(k); !self || owner != "http://a:1" {
		t.Errorf("after peer death OwnerOf = (%q, %v), want self", owner, self)
	}
}

func TestSplitByOwnerCoversEveryIndexOnce(t *testing.T) {
	c, err := New(Config{Self: "http://a:1", Peers: []string{"http://b:1", "http://c:1"}})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([][32]byte, 100)
	for i := range keys {
		keys[i] = testKey(i)
	}
	groups := c.SplitByOwner(keys)
	seen := make([]bool, len(keys))
	for gi, g := range groups {
		if g.Self != (g.Owner == c.Self()) {
			t.Errorf("group %d: Self flag disagrees with owner %q", gi, g.Owner)
		}
		if gi == 0 && !g.Self && anySelf(groups) {
			t.Errorf("local group is not first: %+v", groups)
		}
		for _, i := range g.Indices {
			if seen[i] {
				t.Fatalf("index %d assigned twice", i)
			}
			seen[i] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d assigned to no group", i)
		}
	}
}

// TestRendezvousStabilityProperty is the property the incremental ring
// recompute rests on, checked across randomized member sets and
// fingerprints: adding or removing one node moves only that node's key
// ranges. Stronger still, the full rank order (owner, then successors) of
// the surviving nodes is preserved exactly — deleting the node's slot and
// closing the gap — which is why the first successor of a dead owner is
// precisely the node the survivors now agree owns the key, and why
// replicas placed at ranks 1..K are exactly the nodes that inherit
// ownership under up-to-K failures.
func TestRendezvousStabilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9)) // fixed seed: the property must hold everywhere, failures must reproduce
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(8)
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("http://n%d-%d:%d", trial, i, 1+rng.Intn(9999))
		}
		victim := nodes[rng.Intn(n)]
		survivors := make([]string, 0, n-1)
		for _, u := range nodes {
			if u != victim {
				survivors = append(survivors, u)
			}
		}
		joiner := fmt.Sprintf("http://joiner-%d:1", trial)
		grown := append(append([]string{}, nodes...), joiner)

		for k := 0; k < 200; k++ {
			key := sha256.Sum256([]byte(fmt.Sprintf("trial-%d-key-%d", trial, k)))

			// Removal: the victim's slot vanishes, all other ranks shift up
			// in order — so survivors' relative order is untouched.
			full := Rank(key, nodes)
			reduced := Rank(key, survivors)
			j := 0
			for _, u := range full {
				if u == victim {
					continue
				}
				if reduced[j] != u {
					t.Fatalf("trial %d key %d: removing %q reordered survivors:\n full  %v\n got   %v", trial, k, victim, full, reduced)
				}
				j++
			}
			if before := Owner(key, nodes); before != victim && Owner(key, survivors) != before {
				t.Fatalf("trial %d key %d: key moved between survivors on node loss", trial, k)
			}

			// Addition: the joiner takes some ranks; everyone else keeps
			// their relative order, and ownership changes only toward the
			// joiner.
			after := Rank(key, grown)
			j = 0
			for _, u := range after {
				if u == joiner {
					continue
				}
				if full[j] != u {
					t.Fatalf("trial %d key %d: adding a node reordered incumbents:\n before %v\n after  %v", trial, k, full, after)
				}
				j++
			}
			if newOwner := Owner(key, grown); newOwner != joiner && newOwner != Owner(key, nodes) {
				t.Fatalf("trial %d key %d: ownership moved to %q, not the joiner", trial, k, newOwner)
			}
		}
	}
}

func TestRankAgreesWithOwnerAndReplicaTargets(t *testing.T) {
	c, err := New(Config{Self: "http://a:1", Peers: []string{"http://b:1", "http://c:1", "http://d:1"}})
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	for i := 0; i < 128; i++ {
		k := testKey(i)
		ranked := Rank(k, nodes)
		if len(ranked) != len(nodes) {
			t.Fatalf("Rank dropped candidates: %v", ranked)
		}
		if ranked[0] != Owner(k, nodes) {
			t.Fatalf("Rank[0] = %q disagrees with Owner %q", ranked[0], Owner(k, nodes))
		}
		targets := c.ReplicaTargets(k, 2)
		for _, u := range targets {
			if u == c.Self() {
				t.Fatal("ReplicaTargets included self")
			}
		}
		if ranked[0] == c.Self() {
			// Self owns the key: targets are exactly its 2 successors.
			if len(targets) != 2 || targets[0] != ranked[1] || targets[1] != ranked[2] {
				t.Fatalf("owner's ReplicaTargets = %v, want %v", targets, ranked[1:3])
			}
		} else {
			// Another node owns the key (the delta-solve shape): the owner
			// must be among the targets so the entry converges onto its
			// ring slot.
			if len(targets) == 0 || targets[0] != ranked[0] {
				t.Fatalf("non-owner's ReplicaTargets = %v, want owner %q first", targets, ranked[0])
			}
			if len(targets) > 3 {
				t.Fatalf("ReplicaTargets returned %d targets for k=2, want <= 3", len(targets))
			}
		}
	}
	if got := c.ReplicaTargets(testKey(0), 0); got != nil {
		t.Errorf("k=0 should disable replication, got %v", got)
	}
}

func anySelf(groups []Group) bool {
	for _, g := range groups {
		if g.Self {
			return true
		}
	}
	return false
}
