package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// The scatter-gather half of the cluster: a batch job that lands on one
// node is split by owner, each remote group travels as a hop-guarded
// sub-batch to its owning node, and the submitting node polls the sub-jobs
// to completion and merges their results under the parent job id. The
// split itself (SplitByOwner) is pure; the serving layer owns the merge
// and the fall-back-to-local policy when a sub-batch cannot be placed or
// its owner dies mid-job.

// Group is one owner's slice of a scattered batch: the indices (into the
// original instance list) this owner is responsible for.
type Group struct {
	Owner   string
	Self    bool
	Indices []int
}

// SplitByOwner partitions batch instance keys across the currently-up
// nodes. The local group (if any) is first; remote groups follow in sorted
// owner order, so the scatter plan is deterministic for tests and logs.
func (c *Cluster) SplitByOwner(keys [][32]byte) []Group {
	nodes := c.UpNodes()
	byOwner := make(map[string][]int)
	for i, k := range keys {
		o := Owner(k, nodes)
		byOwner[o] = append(byOwner[o], i)
	}
	out := make([]Group, 0, len(byOwner))
	if idxs, ok := byOwner[c.self]; ok {
		out = append(out, Group{Owner: c.self, Self: true, Indices: idxs})
		delete(byOwner, c.self)
	}
	for _, n := range nodes {
		if idxs, ok := byOwner[n]; ok {
			out = append(out, Group{Owner: n, Indices: idxs})
		}
	}
	return out
}

// gatherCallTimeout bounds one submit or poll request. The shared client
// has no overall timeout (forwarded solves may legitimately run long), but
// a sub-job submit/poll is a small control-plane exchange: a peer that
// cannot answer one inside this window is treated as dead and the group
// falls back to local solving. Job execution time is unaffected — WaitJob
// issues many short polls, not one long request.
const gatherCallTimeout = 15 * time.Second

// jobWire is the subset of the service's job-status body the gatherer
// needs. Kept structurally in sync with service.jobStatusJSON by the
// cluster tests.
type jobWire struct {
	ID      string            `json:"id"`
	Status  string            `json:"status"`
	Results []json.RawMessage `json:"results,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// SubmitBatch posts a sub-batch body to the owning node with the hop guard
// set and returns the remote job id. Transport failures mark the owner
// down; HTTP-level rejections (full queue, bad request) are returned as
// errors without touching liveness — a node that answers is up.
func (c *Cluster) SubmitBatch(ctx context.Context, owner string, body []byte) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, gatherCallTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("cluster: submit batch to %s: %w", owner, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HopHeader, "1")
	setTraceHeader(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		c.observeTransportErr(owner, err)
		return "", fmt.Errorf("cluster: submit batch to %s: %w", owner, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		c.observeTransportErr(owner, err)
		return "", fmt.Errorf("cluster: submit batch to %s: read response: %w", owner, err)
	}
	var jw jobWire
	if err := json.Unmarshal(b, &jw); err != nil {
		return "", fmt.Errorf("cluster: submit batch to %s: bad response (status %d): %w", owner, resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusAccepted || jw.ID == "" {
		msg := jw.Error
		if msg == "" {
			msg = string(b)
		}
		return "", fmt.Errorf("cluster: submit batch to %s: status %d: %s", owner, resp.StatusCode, msg)
	}
	return jw.ID, nil
}

// WaitJob polls a remote sub-job until it finishes and returns its
// per-instance results. Any poll failure — transport death (owner marked
// down), a non-200 status, a canceled remote job — fails the wait; the
// caller falls back to solving the group locally. Respects ctx for parent
// job cancellation.
func (c *Cluster) WaitJob(ctx context.Context, owner, id string) ([]json.RawMessage, error) {
	t := time.NewTicker(c.pollInterval)
	defer t.Stop()
	for {
		jw, err := c.pollJob(ctx, owner, id)
		if err != nil {
			return nil, err
		}
		switch jw.Status {
		case "done":
			return jw.Results, nil
		case "canceled":
			return nil, fmt.Errorf("cluster: job %s on %s was canceled remotely", id, owner)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

func (c *Cluster) pollJob(ctx context.Context, owner, id string) (*jobWire, error) {
	ctx, cancel := context.WithTimeout(ctx, gatherCallTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: poll job %s on %s: %w", id, owner, err)
	}
	setTraceHeader(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		c.observeTransportErr(owner, err)
		return nil, fmt.Errorf("cluster: poll job %s on %s: %w", id, owner, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		c.observeTransportErr(owner, err)
		return nil, fmt.Errorf("cluster: poll job %s on %s: read response: %w", id, owner, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: poll job %s on %s: status %d: %s", id, owner, resp.StatusCode, b)
	}
	var jw jobWire
	if err := json.Unmarshal(b, &jw); err != nil {
		return nil, fmt.Errorf("cluster: poll job %s on %s: decode: %w", id, owner, err)
	}
	return &jw, nil
}

// CancelJob best-effort cancels a remote sub-job (the parent was deleted
// or gave up on this owner). Failures are ignored: the remote job's
// results are content-addressed, so an orphaned run wastes work but can
// never corrupt state.
func (c *Cluster) CancelJob(owner, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, owner+"/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}
