package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// Member is one gossiped membership fact: a node URL, the epoch at which
// its state last changed, and whether that state is "left" (a tombstone).
// The member map is a last-writer-wins CRDT keyed by URL: higher epoch
// wins, and at equal epochs a tombstone wins (leaving is the terminal
// intent). Epochs are per-cluster monotonic — every join or leave stamps
// max(observed)+1 — so replaying an old view through gossip is a no-op
// and all nodes converge on one member set without consensus.
type Member struct {
	URL   string `json:"url"`
	Epoch uint64 `json:"epoch"`
	Left  bool   `json:"left,omitempty"`
}

// Members returns the full gossip state — every known membership fact,
// tombstones included, self included — sorted by URL. This is what
// /healthz carries between nodes; Nodes() is the live subset.
func (c *Cluster) Members() []Member {
	c.mu.Lock()
	out := make([]Member, 0, len(c.peers)+1)
	out = append(out, Member{URL: c.self, Epoch: c.selfEpoch, Left: c.selfLeft})
	for _, p := range c.peers {
		out = append(out, Member{URL: p.url, Epoch: p.epoch, Left: p.left})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Epoch returns the highest membership epoch this node has observed —
// a logical clock over membership churn, exposed for /metrics.
func (c *Cluster) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxEpochLocked()
}

func (c *Cluster) maxEpochLocked() uint64 {
	max := c.selfEpoch
	//lint:ordered max over epochs is the same whichever peer is visited first
	for _, p := range c.peers {
		if p.epoch > max {
			max = p.epoch
		}
	}
	return max
}

// Merge folds a remote member view into the local one (LWW by epoch,
// tombstone wins ties) and returns whether anything changed. Newly
// learned members start optimistically up, exactly like seed peers. If
// the remote view tombstones this node at an epoch >= our own — someone
// declared us dead while we are demonstrably alive — we re-announce
// ourselves at a higher epoch, and the next gossip cycle spreads the
// correction.
func (c *Cluster) Merge(members []Member) bool {
	c.mu.Lock()
	changed := false
	for _, m := range members {
		u, err := normalizeURL(m.URL)
		if err != nil {
			continue
		}
		if u == c.self {
			if m.Left && !c.selfLeft && m.Epoch >= c.selfEpoch {
				c.selfEpoch = m.Epoch + 1 // rebut the tombstone
				changed = true
			} else if !m.Left && m.Epoch > c.selfEpoch {
				c.selfEpoch = m.Epoch
			}
			continue
		}
		p, ok := c.peers[u]
		if !ok {
			c.peers[u] = &peer{url: u, epoch: m.Epoch, left: m.Left, up: !m.Left}
			changed = true
			continue
		}
		if m.Epoch < p.epoch || (m.Epoch == p.epoch && (p.left || !m.Left)) {
			continue // stale, or nothing new
		}
		if p.left != m.Left {
			changed = true
			if !m.Left {
				// A re-joining member: fresh liveness slate.
				p.up = true
				p.failures = 0
				p.lastErr = ""
				p.gen++
			}
		}
		p.epoch = m.Epoch
		p.left = m.Left
	}
	if changed {
		c.version.Add(1)
	}
	c.mu.Unlock()
	if changed {
		c.notifyChanged()
	}
	return changed
}

// Join records that url is (re)joining the cluster, stamping it with a
// fresh epoch so the fact outranks any previous leave. It returns the
// full member view for the joiner to adopt. Called by the service when
// handling POST /v1/cluster/join.
func (c *Cluster) Join(url string) ([]Member, error) {
	u, err := normalizeURL(url)
	if err != nil {
		return nil, fmt.Errorf("cluster: join %q: %w", url, err)
	}
	c.mu.Lock()
	if u == c.self {
		c.mu.Unlock()
		return c.Members(), nil
	}
	next := c.maxEpochLocked() + 1
	p, ok := c.peers[u]
	changed := false
	if !ok {
		c.peers[u] = &peer{url: u, epoch: next, up: true}
		changed = true
	} else if p.left {
		p.left = false
		p.epoch = next
		p.up = true
		p.failures = 0
		p.lastErr = ""
		p.gen++
		changed = true
	}
	if changed {
		c.version.Add(1)
	}
	c.mu.Unlock()
	if changed {
		c.notifyChanged()
	}
	return c.Members(), nil
}

// Leave tombstones url at a fresh epoch. Leaving is advisory — a node
// that leaves and later rejoins gets a newer epoch via Join — and a
// tombstoned member stops being probed, owned against, or replicated to.
// url may be this node itself (graceful shutdown): self switches to
// drain mode and is excluded from its own candidate views, while gossip
// keeps spreading the tombstone to peers still probing us.
func (c *Cluster) Leave(url string) error {
	u, err := normalizeURL(url)
	if err != nil {
		return fmt.Errorf("cluster: leave %q: %w", url, err)
	}
	c.mu.Lock()
	changed := false
	if u == c.self {
		if !c.selfLeft {
			c.selfLeft = true
			c.selfEpoch = c.maxEpochLocked() + 1
			changed = true
		}
	} else if p, ok := c.peers[u]; ok && !p.left {
		p.left = true
		p.epoch = c.maxEpochLocked() + 1
		changed = true
	}
	if changed {
		c.version.Add(1)
	}
	c.mu.Unlock()
	if changed {
		c.notifyChanged()
	}
	return nil
}

// joinWire is the /v1/cluster/join request and response body.
type joinWire struct {
	URL     string   `json:"url"`
	Members []Member `json:"members,omitempty"`
}

// JoinVia announces this node to a seed member (POST /v1/cluster/join)
// and merges the member view the seed returns, with bounded retries —
// the seed may itself be mid-restart. After JoinVia returns, this node
// knows the cluster and the seed knows this node; gossip spreads the
// rest within a probe cycle per hop.
func (c *Cluster) JoinVia(ctx context.Context, seed string) error {
	su, err := normalizeURL(seed)
	if err != nil {
		return fmt.Errorf("cluster: join seed %q: %w", seed, err)
	}
	if su == c.self {
		return fmt.Errorf("cluster: cannot join via self")
	}
	body, err := json.Marshal(joinWire{URL: c.self})
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			if err := Backoff(ctx, attempt-1); err != nil {
				return err
			}
		}
		members, err := c.postJoin(ctx, su, body)
		if err != nil {
			lastErr = err
			continue
		}
		c.Merge(members)
		return nil
	}
	return fmt.Errorf("cluster: join via %s: %w", su, lastErr)
}

func (c *Cluster) postJoin(ctx context.Context, seed string, body []byte) ([]Member, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		seed+"/v1/cluster/join", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("join: status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var jw joinWire
	if err := json.Unmarshal(raw, &jw); err != nil {
		return nil, fmt.Errorf("join: bad response: %w", err)
	}
	return jw.Members, nil
}

// AnnounceLeave tombstones this node locally and best-effort pushes the
// tombstone to every up peer via their /v1/cluster/leave endpoint, so
// the ring moves ownership before this process exits rather than waiting
// for probes to time out. Errors are ignored per peer — gossip is the
// backstop.
func (c *Cluster) AnnounceLeave(ctx context.Context) {
	c.Leave(c.self)
	body, err := json.Marshal(joinWire{URL: c.self})
	if err != nil {
		return
	}
	for _, u := range c.peerURLs() {
		ctx2, cancel := context.WithTimeout(ctx, 2*time.Second)
		req, err := http.NewRequestWithContext(ctx2, http.MethodPost,
			u+"/v1/cluster/leave", bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
			if resp, err := c.client.Do(req); err == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
			}
		}
		cancel()
	}
}

// peerURLs returns every live remote member, up or down, sorted.
func (c *Cluster) peerURLs() []string {
	c.mu.Lock()
	out := make([]string, 0, len(c.peers))
	for _, p := range c.peers {
		if !p.left {
			out = append(out, p.url)
		}
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// notifyChanged signals membership-change watchers (coalescing: a burst
// of changes may deliver one signal, which is fine — watchers re-read
// the whole view).
func (c *Cluster) notifyChanged() {
	select {
	case c.changed <- struct{}{}:
	default:
	}
}

// Changed returns a channel that receives a (coalesced) signal whenever
// the member set changes — join, leave, or gossip-learned churn. The
// service's migration watcher selects on it to move parked sessions when
// ownership shifts.
func (c *Cluster) Changed() <-chan struct{} { return c.changed }
