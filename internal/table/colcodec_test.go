package table

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// encodeToBytes is the test-side convenience wrapper.
func encodeToBytes(t *testing.T, c *Columnar) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := EncodeColumnar(c, &buf)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("encode reported %d bytes, wrote %d", n, buf.Len())
	}
	if n%8 != 0 {
		t.Fatalf("encoded length %d not 8-aligned", n)
	}
	return buf.Bytes()
}

// columnarsEquivalent compares two snapshots structurally: schema, rows,
// and per-column payloads including dictionaries, null masks, and posting
// lists.
func columnarsEquivalent(a, b *Columnar) error {
	if !a.schema.Equal(b.schema) {
		return fmt.Errorf("schemas differ")
	}
	if a.nrows != b.nrows {
		return fmt.Errorf("nrows %d vs %d", a.nrows, b.nrows)
	}
	for j := range a.cols {
		ca, cb := a.cols[j], b.cols[j]
		if (ca == nil) != (cb == nil) {
			return fmt.Errorf("col %d: capture mismatch", j)
		}
		if ca == nil {
			continue
		}
		if !reflect.DeepEqual(ca.raw, cb.raw) {
			return fmt.Errorf("col %d: raw mismatch", j)
		}
		if ca.raw != nil {
			continue
		}
		if !reflect.DeepEqual(ca.vals, cb.vals) {
			return fmt.Errorf("col %d: vals mismatch", j)
		}
		if !reflect.DeepEqual(ca.null, cb.null) {
			return fmt.Errorf("col %d: null mismatch", j)
		}
		if (ca.dict == nil) != (cb.dict == nil) {
			return fmt.Errorf("col %d: dict presence mismatch", j)
		}
		if ca.dict != nil && !reflect.DeepEqual(ca.dict.strs, cb.dict.strs) {
			return fmt.Errorf("col %d: dict mismatch", j)
		}
		if len(ca.post) != len(cb.post) {
			return fmt.Errorf("col %d: posting count mismatch", j)
		}
		for v, la := range ca.post {
			if !reflect.DeepEqual(la, cb.post[v]) {
				return fmt.Errorf("col %d: posting list for %d mismatch", j, v)
			}
		}
	}
	return nil
}

func TestColumnarCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		r := randomRelation(rng, iter%3 == 0)
		c := NewColumnar(r)
		enc := encodeToBytes(t, c)
		for _, alias := range []bool{false, true} {
			got, err := DecodeColumnar(enc, alias)
			if err != nil {
				t.Fatalf("iter %d alias=%v: decode: %v", iter, alias, err)
			}
			if err := columnarsEquivalent(c, got); err != nil {
				t.Fatalf("iter %d alias=%v: %v", iter, alias, err)
			}
		}
	}
}

// TestColumnarCodecCanonical: the same snapshot must always encode to the
// same bytes — the durable store names files by content hash.
func TestColumnarCodecCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		r := randomRelation(rng, false)
		a := encodeToBytes(t, NewColumnar(r))
		b := encodeToBytes(t, NewColumnar(r.Clone()))
		if !bytes.Equal(a, b) {
			t.Fatalf("iter %d: encoding not canonical", iter)
		}
	}
}

// TestColumnarCodecPartialCapture covers snapshots that captured only a
// subset of columns: the absent columns must round-trip as absent.
func TestColumnarCodecPartialCapture(t *testing.T) {
	r := NewRelation("p", NewSchema(IntCol("a"), StrCol("b"), IntCol("c")))
	r.MustAppend(Int(1), String("x"), Int(10))
	r.MustAppend(Int(2), String("y"), Int(20))
	c := NewColumnar(r, "a", "c")
	enc := encodeToBytes(t, c)
	got, err := DecodeColumnar(enc, false)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := columnarsEquivalent(c, got); err != nil {
		t.Fatal(err)
	}
	if got.cols[1] != nil {
		t.Fatal("uncaptured column decoded as captured")
	}
	if _, err := got.Relation("p"); err == nil {
		t.Fatal("Relation on partial snapshot should fail")
	}
}

// TestColumnarRelationLossless: a full-column snapshot decoded from bytes
// must materialize back into a cell-for-cell identical relation.
func TestColumnarRelationLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 100; iter++ {
		r := randomRelation(rng, iter%2 == 0)
		enc := encodeToBytes(t, NewColumnar(r))
		got, err := DecodeColumnar(enc, true)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		back, err := got.Relation(r.Name)
		if err != nil {
			t.Fatalf("iter %d: relation: %v", iter, err)
		}
		if back.Name != r.Name || !back.Schema().Equal(r.Schema()) || back.Len() != r.Len() {
			t.Fatalf("iter %d: shape mismatch", iter)
		}
		for i := 0; i < r.Len(); i++ {
			for j := 0; j < r.Schema().Len(); j++ {
				if back.At(i, j) != r.At(i, j) {
					t.Fatalf("iter %d: cell (%d,%d): got %v want %v", iter, i, j, back.At(i, j), r.At(i, j))
				}
			}
		}
	}
}

// TestColumnarDecodeRejectsCorruption: every truncation of a valid blob,
// and a byte flip at every offset, must fail cleanly — never decode into a
// plausible-but-wrong snapshot silently. (Byte flips in payload regions can
// legitimately decode — the store layer's CRC catches those — but flips in
// structural regions must not crash.)
func TestColumnarDecodeRejectsCorruption(t *testing.T) {
	r := NewRelation("g", NewSchema(IntCol("a"), StrCol("b")))
	for i := 0; i < 20; i++ {
		if i%5 == 0 {
			r.MustAppend(Null(), String(string(rune('a'+i%3))))
		} else {
			r.MustAppend(Int(int64(i%4)), String(string(rune('a'+i%3))))
		}
	}
	enc := encodeToBytes(t, NewColumnar(r))
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeColumnar(enc[:cut], false); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	for off := range enc {
		mut := bytes.Clone(enc)
		mut[off] ^= 0xff
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("byte flip at %d panicked: %v", off, p)
				}
			}()
			got, err := DecodeColumnar(mut, false)
			_ = got
			_ = err
		}()
	}
	if _, err := DecodeColumnar(append(bytes.Clone(enc), 0, 0, 0, 0, 0, 0, 0, 0), false); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}
}

func TestColumnarCodecEmpty(t *testing.T) {
	r := NewRelation("e", NewSchema(IntCol("a"), StrCol("b")))
	enc := encodeToBytes(t, NewColumnar(r))
	got, err := DecodeColumnar(enc, true)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	back, err := got.Relation("e")
	if err != nil {
		t.Fatalf("relation: %v", err)
	}
	if back.Len() != 0 {
		t.Fatalf("got %d rows, want 0", back.Len())
	}
}
