package table

import (
	"bytes"
	"strings"
	"testing"
)

// filledR1 is Figure 3: the paper's solution with hid imputed.
func filledR1() *Relation {
	r := paperR1()
	hids := []int64{2, 1, 3, 4, 2, 2, 2, 5, 6}
	for i, h := range hids {
		r.Set(i, "hid", Int(h))
	}
	return r
}

func TestJoinReproducesFigure5(t *testing.T) {
	vj, err := Join(filledR1(), "hid", paperR2(), "hid")
	if err != nil {
		t.Fatal(err)
	}
	if vj.Len() != 9 {
		t.Fatalf("|VJoin| = %d, want 9", vj.Len())
	}
	wantCols := []string{"pid", "Age", "Rel", "Multi", "Area"}
	if got := strings.Join(vj.Schema().Names(), ","); got != strings.Join(wantCols, ",") {
		t.Fatalf("schema = %s", got)
	}
	// Figure 5: pids 1..7 in Chicago, 8..9 in NYC.
	for i := 0; i < vj.Len(); i++ {
		pid := vj.Value(i, "pid").Int()
		area := vj.Value(i, "Area").Str()
		want := "Chicago"
		if pid >= 8 {
			want = "NYC"
		}
		if area != want {
			t.Errorf("pid %d: area = %s, want %s", pid, area, want)
		}
	}
	// CC1 from Figure 2b: owners in Chicago = 4.
	cc1 := And(Eq("Rel", String("Owner")), Eq("Area", String("Chicago")))
	if got := vj.Count(cc1); got != 4 {
		t.Errorf("CC1 count = %d, want 4", got)
	}
	// CC2: owners in NYC = 2.
	cc2 := And(Eq("Rel", String("Owner")), Eq("Area", String("NYC")))
	if got := vj.Count(cc2); got != 2 {
		t.Errorf("CC2 count = %d, want 2", got)
	}
}

func TestJoinSkipsNullAndDanglingFKs(t *testing.T) {
	r1 := paperR1() // all FKs null
	vj, err := Join(r1, "hid", paperR2(), "hid")
	if err != nil {
		t.Fatal(err)
	}
	if vj.Len() != 0 {
		t.Errorf("join over null FKs = %d rows", vj.Len())
	}
	r1.Set(0, "hid", Int(999)) // dangling
	r1.Set(1, "hid", Int(1))
	vj, err = Join(r1, "hid", paperR2(), "hid")
	if err != nil {
		t.Fatal(err)
	}
	if vj.Len() != 1 {
		t.Errorf("join rows = %d, want 1", vj.Len())
	}
}

func TestJoinErrors(t *testing.T) {
	if _, err := Join(paperR1(), "nope", paperR2(), "hid"); err == nil {
		t.Error("missing fk col accepted")
	}
	if _, err := Join(paperR1(), "hid", paperR2(), "nope"); err == nil {
		t.Error("missing key col accepted")
	}
	dup := NewRelation("d", NewSchema(IntCol("hid"), StrCol("Area")))
	dup.MustAppend(Int(1), String("a"))
	dup.MustAppend(Int(1), String("b"))
	if _, err := Join(filledR1(), "hid", dup, "hid"); err == nil {
		t.Error("duplicate key accepted")
	}
}

func TestKeyIndex(t *testing.T) {
	idx, err := KeyIndex(paperR2(), "hid")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 6 {
		t.Fatalf("index size = %d", len(idx))
	}
	r := NewRelation("n", NewSchema(IntCol("k")))
	r.MustAppend(Null())
	if _, err := KeyIndex(r, "k"); err == nil {
		t.Error("null key accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := filledR1()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "Persons", r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != r.Len() {
		t.Fatalf("rows = %d", got.Len())
	}
	for i := 0; i < r.Len(); i++ {
		for j := 0; j < r.Schema().Len(); j++ {
			if got.At(i, j) != r.At(i, j) {
				t.Errorf("cell (%d,%d): %v != %v", i, j, got.At(i, j), r.At(i, j))
			}
		}
	}
}

func TestCSVNullsRoundTrip(t *testing.T) {
	r := paperR1() // null hid column
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "Persons", r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < got.Len(); i++ {
		if !got.Value(i, "hid").IsNull() {
			t.Errorf("row %d: hid = %v, want null", i, got.Value(i, "hid"))
		}
	}
}

func TestCSVHeaderMismatch(t *testing.T) {
	in := "a,b\n1,2\n"
	_, err := ReadCSV(strings.NewReader(in), "t", NewSchema(IntCol("a"), IntCol("c")))
	if err == nil {
		t.Error("header mismatch accepted")
	}
}

func TestCSVBadCell(t *testing.T) {
	in := "a\nxyz\n"
	_, err := ReadCSV(strings.NewReader(in), "t", NewSchema(IntCol("a")))
	if err == nil {
		t.Error("non-integer cell accepted for int column")
	}
}
