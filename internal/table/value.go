// Package table implements the relational substrate used by the rest of the
// library: typed values, schemas, relations, conjunctive selection
// predicates, foreign-key joins and CSV I/O.
//
// The package has a two-layer design. The mutable layer is Relation, an
// in-memory row store of dynamically typed Values with a name-to-index
// schema; the solver builds and fills views through it. The read-optimized
// layer is Columnar, an immutable column-major snapshot with
// dictionary-encoded string columns and per-(column, value) posting lists;
// predicates compile against it (Columnar.Bind) into typed integer
// comparisons, and Count/Select over equality-bearing predicates walk
// posting lists instead of scanning. Between the two sits
// Predicate.Bind(*Schema), which resolves column names once for callers
// that evaluate over row slices. Hot paths snapshot their immutable columns
// into a Columnar and compile their predicates once; everything else uses
// the row layer directly.
package table

import (
	"fmt"
	"strconv"
)

// Kind identifies the runtime type stored in a Value.
type Kind uint8

// The supported value kinds. KindNull marks a missing cell (e.g. the FK
// column of R1 before imputation, or the B columns of V_Join before phase I).
const (
	KindNull Kind = iota
	KindInt
	KindString
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed cell value. The zero Value is the null value.
// Value is comparable, so it can be used directly as a map key; two Values
// are == iff they have the same kind and payload.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Null returns the null value (a missing cell).
func Null() Value { return Value{} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It is only meaningful when Kind is
// KindInt; other kinds return 0.
func (v Value) Int() int64 { return v.i }

// Str returns the string payload. It is only meaningful when Kind is
// KindString; other kinds return "".
func (v Value) Str() string { return v.s }

// String renders the value for display and CSV output. Null renders as the
// empty string.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return v.s
	default:
		return ""
	}
}

// Compare orders two values. Nulls sort first, then integers (numerically),
// then strings (lexicographically). Values of different kinds order by kind.
// The result is -1, 0 or +1.
func Compare(a, b Value) int {
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindInt:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
	}
	return 0
}

// Less reports whether a orders strictly before b under Compare.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// ParseValue parses s into a value of type t. The empty string parses to
// null for either type.
func ParseValue(s string, t Type) (Value, error) {
	if s == "" {
		return Null(), nil
	}
	switch t {
	case TypeInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("table: parse int %q: %w", s, err)
		}
		return Int(i), nil
	case TypeString:
		return String(s), nil
	default:
		return Null(), fmt.Errorf("table: parse value: unknown type %v", t)
	}
}
