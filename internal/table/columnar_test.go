package table

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomRelation builds a relation with mixed int/string columns, nulls, a
// skewed value domain (so posting lists and dictionaries have repeats), and
// — when allowMixed is set — kind-mixed cells written through Set to
// exercise the raw-column fallback.
func randomRelation(rng *rand.Rand, allowMixed bool) *Relation {
	nCols := 1 + rng.Intn(5)
	cols := make([]Column, nCols)
	for j := range cols {
		if rng.Intn(2) == 0 {
			cols[j] = IntCol(fmt.Sprintf("i%d", j))
		} else {
			cols[j] = StrCol(fmt.Sprintf("s%d", j))
		}
	}
	r := NewRelation("rnd", NewSchema(cols...))
	nRows := rng.Intn(60)
	for i := 0; i < nRows; i++ {
		row := make([]Value, nCols)
		for j := range row {
			switch {
			case rng.Intn(5) == 0:
				row[j] = Null()
			case cols[j].Type == TypeInt:
				row[j] = Int(int64(rng.Intn(10) - 5))
			default:
				row[j] = String(string(rune('a' + rng.Intn(8))))
			}
		}
		r.MustAppend(row...)
	}
	if allowMixed && nRows > 0 {
		// Sprinkle kind-mixed cells (legal via Set, which skips validation).
		for k := 0; k < 3; k++ {
			i, j := rng.Intn(nRows), rng.Intn(nCols)
			if cols[j].Type == TypeInt {
				r.SetAt(i, j, String("zz"))
			} else {
				r.SetAt(i, j, Int(99))
			}
		}
	}
	return r
}

// randomPredicate draws atoms over the relation's columns — and sometimes
// over unknown columns — with all six operators, constants of either kind
// (in-domain, out-of-domain, null) to cover every compileAtom branch.
func randomPredicate(rng *rand.Rand, r *Relation) Predicate {
	var atoms []Atom
	n := rng.Intn(4)
	for k := 0; k < n; k++ {
		var col string
		if rng.Intn(10) == 0 {
			col = "nope"
		} else {
			col = r.Schema().Col(rng.Intn(r.Schema().Len())).Name
		}
		op := Op(rng.Intn(6))
		var val Value
		switch rng.Intn(6) {
		case 0:
			val = Null()
		case 1:
			val = Int(int64(rng.Intn(10) - 5))
		case 2:
			val = Int(1000) // out of domain
		case 3:
			val = String(string(rune('a' + rng.Intn(8))))
		case 4:
			val = String("mm") // between domain values, absent
		default:
			val = String("~") // after all domain values
		}
		atoms = append(atoms, Atom{Col: col, Op: op, Val: val})
	}
	return Predicate{Atoms: atoms}
}

// TestBoundPredicateEquivalence is the satellite property test: for
// randomized relations and predicates, BoundPredicate.Eval must agree with
// Predicate.Eval on every row.
func TestBoundPredicateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		r := randomRelation(rng, false)
		for k := 0; k < 10; k++ {
			p := randomPredicate(rng, r)
			bp := p.Bind(r.Schema())
			for i := 0; i < r.Len(); i++ {
				want := p.Eval(r.Schema(), r.Row(i))
				if got := bp.Eval(r.Row(i)); got != want {
					t.Fatalf("trial %d: bound eval row %d = %v, naive %v (pred %s)", trial, i, got, want, p)
				}
			}
		}
	}
}

// TestColumnarEquivalence checks the compiled/indexed path end to end:
// ColPredicate.Eval, Columnar.Count and Columnar.Select must agree with the
// naive row-major Predicate.Eval / Relation.Count / Relation.Select on
// randomized relations (mixed kinds via Set, nulls, all six operators,
// in- and out-of-dictionary constants).
func TestColumnarEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		r := randomRelation(rng, trial%2 == 0)
		cv := NewColumnar(r)
		for k := 0; k < 10; k++ {
			p := randomPredicate(rng, r)
			cp := cv.Bind(p)
			for i := 0; i < r.Len(); i++ {
				want := p.Eval(r.Schema(), r.Row(i))
				if got := cp.Eval(i); got != want {
					t.Fatalf("trial %d: columnar eval row %d = %v, naive %v (pred %s)", trial, i, got, want, p)
				}
			}
			if got, want := cv.Count(cp), r.Count(p); got != want {
				t.Fatalf("trial %d: Count = %d, naive %d (pred %s)", trial, got, want, p)
			}
			gotSel, wantSel := cv.Select(cp), r.Select(p)
			if len(gotSel) != len(wantSel) {
				t.Fatalf("trial %d: Select len %d, naive %d (pred %s)", trial, len(gotSel), len(wantSel), p)
			}
			for i := range gotSel {
				if gotSel[i] != wantSel[i] {
					t.Fatalf("trial %d: Select[%d] = %d, naive %d (pred %s)", trial, i, gotSel[i], wantSel[i], p)
				}
			}
		}
	}
}

// FuzzColumnarAtomEquivalence fuzzes a single-atom predicate against a
// small fixed relation, pinning compileAtom's translation (dictionary
// bounds, cross-kind folds, null constants) to Op.Apply semantics.
func FuzzColumnarAtomEquivalence(f *testing.F) {
	r := NewRelation("f", NewSchema(IntCol("i"), StrCol("s")))
	for _, x := range []struct {
		i Value
		s Value
	}{
		{Int(-3), String("a")}, {Int(0), String("cc")}, {Int(7), Null()},
		{Null(), String("b")}, {Int(7), String("a")},
	} {
		r.MustAppend(x.i, x.s)
	}
	cv := NewColumnar(r)
	f.Add(uint8(0), true, int64(0), "a", true)
	f.Add(uint8(3), false, int64(9), "zz", false)
	f.Fuzz(func(t *testing.T, opRaw uint8, onInt bool, iv int64, sv string, constInt bool) {
		op := Op(opRaw % 6)
		col := "s"
		if onInt {
			col = "i"
		}
		var val Value
		if constInt {
			val = Int(iv)
		} else {
			val = String(sv)
		}
		p := And(Atom{Col: col, Op: op, Val: val})
		cp := cv.Bind(p)
		for i := 0; i < r.Len(); i++ {
			want := p.Eval(r.Schema(), r.Row(i))
			if got := cp.Eval(i); got != want {
				t.Fatalf("row %d: columnar %v, naive %v (pred %s)", i, got, want, p)
			}
		}
	})
}

// TestDictOrderIsomorphism pins the dictionary contract: codes are assigned
// in sorted order, so code comparisons agree with string comparisons.
func TestDictOrderIsomorphism(t *testing.T) {
	r := NewRelation("r", NewSchema(StrCol("s")))
	for _, s := range []string{"pear", "apple", "fig", "apple", "banana"} {
		r.MustAppend(String(s))
	}
	cv := NewColumnar(r)
	cp := cv.Bind(And(Eq("s", String("fig"))))
	sel := cv.Select(cp)
	if len(sel) != 1 || sel[0] != 2 {
		t.Fatalf("Select(s='fig') = %v", sel)
	}
	// Reach the dictionary through the column's typed surface.
	vals, _, ok := cv.IntCol("s")
	if ok || vals != nil {
		t.Fatal("string column must not expose IntCol")
	}
	d := cv.cols[0].dict
	if d.Len() != 4 {
		t.Fatalf("dict has %d entries, want 4", d.Len())
	}
	for i := 0; i+1 < d.Len(); i++ {
		if d.Str(int64(i)) >= d.Str(int64(i+1)) {
			t.Fatalf("dict not sorted at %d: %q >= %q", i, d.Str(int64(i)), d.Str(int64(i+1)))
		}
	}
	if c, ok := d.Code("fig"); !ok || d.Str(c) != "fig" {
		t.Fatalf("Code/Str round trip broken: %d %v", c, ok)
	}
	if _, ok := d.Code("grape"); ok {
		t.Fatal("absent string must not have a code")
	}
}

// TestSelectFuncPrefix: SelectFunc visits the same rows as Select, in the
// same order, and honors early termination.
func TestSelectFuncPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		r := randomRelation(rng, false)
		cv := NewColumnar(r)
		p := randomPredicate(rng, r)
		cp := cv.Bind(p)
		want := cv.Select(cp)
		var got []int
		cv.SelectFunc(cp, func(i int) bool { got = append(got, i); return true })
		if len(got) != len(want) {
			t.Fatalf("trial %d: SelectFunc saw %d rows, Select %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: row %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
		if len(want) > 1 {
			stop := len(want) / 2
			var prefix []int
			cv.SelectFunc(cp, func(i int) bool {
				prefix = append(prefix, i)
				return len(prefix) < stop
			})
			if len(prefix) != stop {
				t.Fatalf("trial %d: early stop saw %d rows, want %d", trial, len(prefix), stop)
			}
		}
	}
}

func TestColumnarSubsetAndIntCol(t *testing.T) {
	r := NewRelation("r", NewSchema(IntCol("a"), IntCol("b")))
	r.MustAppend(Int(1), Int(10))
	r.MustAppend(Int(2), Null())
	cv := NewColumnar(r, "a")
	// Captured column: typed access.
	vals, null, ok := cv.IntCol("a")
	if !ok || len(vals) != 2 || vals[0] != 1 || vals[1] != 2 || null != nil {
		t.Fatalf("IntCol(a) = %v %v %v", vals, null, ok)
	}
	if _, _, ok := cv.IntCol("b"); ok {
		t.Fatal("IntCol(b) should not be captured")
	}
	// Predicates over uncaptured columns are constant-false.
	cp := cv.Bind(And(Eq("b", Int(10))))
	if !cp.IsNever() || cv.Count(cp) != 0 {
		t.Fatal("predicate over uncaptured column must be never-true")
	}
	// Null mask present when the column has nulls.
	cv2 := NewColumnar(r)
	if _, null, ok := cv2.IntCol("b"); !ok || null == nil || !null[1] {
		t.Fatal("IntCol(b) null mask wrong")
	}
}

// TestNewColumnarReusing: untouched columns are shared with the previous
// snapshot (pointer-equal), dirty columns are rebuilt with the new values,
// and a shape mismatch degrades to a full rebuild.
func TestNewColumnarReusing(t *testing.T) {
	r := NewRelation("R", NewSchema(IntCol("a"), StrCol("b"), IntCol("c")))
	r.MustAppend(Int(1), String("x"), Int(10))
	r.MustAppend(Int(2), String("y"), Int(20))
	prev := NewColumnar(r, "a", "b", "c")

	r.Set(1, "c", Int(99))
	cur := NewColumnarReusing(r, prev, map[string]bool{"c": true}, "a", "b", "c")

	// The dirty column must reflect the edit; untouched columns must agree
	// with a fresh snapshot.
	p := cur.Bind(Predicate{Atoms: []Atom{{Col: "c", Op: OpEq, Val: Int(99)}}})
	if got := cur.Select(p); len(got) != 1 || got[0] != 1 {
		t.Fatalf("dirty column not rebuilt: Select(c=99) = %v", got)
	}
	pa := cur.Bind(Predicate{Atoms: []Atom{{Col: "a", Op: OpEq, Val: Int(2)}}})
	if got := cur.Select(pa); len(got) != 1 || got[0] != 1 {
		t.Fatalf("reused column broken: Select(a=2) = %v", got)
	}
	// Stale reuse would show here: prev must still see the old value.
	pOld := prev.Bind(Predicate{Atoms: []Atom{{Col: "c", Op: OpEq, Val: Int(20)}}})
	if got := prev.Select(pOld); len(got) != 1 || got[0] != 1 {
		t.Fatalf("previous snapshot mutated: Select(c=20) = %v", got)
	}

	// Row-count mismatch: full rebuild, still correct.
	r.MustAppend(Int(3), String("z"), Int(30))
	grown := NewColumnarReusing(r, cur, nil, "a", "b", "c")
	pz := grown.Bind(Predicate{Atoms: []Atom{{Col: "b", Op: OpEq, Val: String("z")}}})
	if got := grown.Select(pz); len(got) != 1 || got[0] != 2 {
		t.Fatalf("rebuild after growth broken: Select(b=z) = %v", got)
	}
	// Nil previous: identical to NewColumnar.
	fresh := NewColumnarReusing(r, nil, nil, "a")
	if fresh.Len() != r.Len() {
		t.Fatalf("nil-prev rebuild has %d rows, want %d", fresh.Len(), r.Len())
	}
}

func TestRelationTruncate(t *testing.T) {
	r := NewRelation("R", NewSchema(IntCol("a")))
	for i := 0; i < 5; i++ {
		r.MustAppend(Int(int64(i)))
	}
	r.Truncate(3)
	if r.Len() != 3 {
		t.Fatalf("Len after truncate = %d, want 3", r.Len())
	}
	if got := r.Value(2, "a").Int(); got != 2 {
		t.Fatalf("surviving row mutated: %d", got)
	}
	r.MustAppend(Int(77))
	if got := r.Value(3, "a").Int(); got != 77 {
		t.Fatalf("append after truncate = %d, want 77", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Truncate(99) did not panic")
		}
	}()
	r.Truncate(99)
}
