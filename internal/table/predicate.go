package table

import (
	"fmt"
	"strings"
)

// Op is a comparison operator in a selection atom.
type Op uint8

// The comparison operators supported in selection predicates. Cardinality
// constraints use {=, <, >, <=, >=}; denial constraints additionally use !=.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Apply evaluates `a o b` under the Value ordering. Comparisons against
// null are false for every operator (matching SQL's null semantics closely
// enough for this library: a missing cell never satisfies a selection).
func (o Op) Apply(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	c := Compare(a, b)
	switch o {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// Atom is a single comparison `Col Op Val` against a constant.
type Atom struct {
	Col string
	Op  Op
	Val Value
}

func (a Atom) String() string {
	return fmt.Sprintf("%s %s %s", a.Col, a.Op, quoteValue(a.Val))
}

// Predicate is a conjunction of atoms. The zero Predicate is the always-true
// selection.
type Predicate struct {
	Atoms []Atom
}

// And returns a conjunctive predicate over the given atoms.
func And(atoms ...Atom) Predicate { return Predicate{Atoms: atoms} }

// Eq builds an equality atom.
func Eq(col string, v Value) Atom { return Atom{Col: col, Op: OpEq, Val: v} }

// Between returns the pair of atoms lo <= col <= hi.
func Between(col string, lo, hi int64) []Atom {
	return []Atom{
		{Col: col, Op: OpGe, Val: Int(lo)},
		{Col: col, Op: OpLe, Val: Int(hi)},
	}
}

// Eval reports whether the row (under schema s) satisfies every atom.
// Atoms referring to columns absent from the schema evaluate to false.
func (p Predicate) Eval(s *Schema, row []Value) bool {
	for _, a := range p.Atoms {
		j, ok := s.Index(a.Col)
		if !ok {
			return false
		}
		if !a.Op.Apply(row[j], a.Val) {
			return false
		}
	}
	return true
}

// BoundAtom is an Atom with its column resolved to a schema position.
type BoundAtom struct {
	Col int
	Op  Op
	Val Value
}

// BoundPredicate is a Predicate bound to one schema: column names resolved
// to positions once, so evaluation over a row is slice indexing plus value
// compares — no map lookups. Produce one with Predicate.Bind; for fully
// typed evaluation over immutable data see Columnar.Bind.
type BoundPredicate struct {
	atoms []BoundAtom
	never bool // some atom referenced a column absent from the schema
}

// Bind resolves the predicate's column references against s. Atoms over
// columns absent from s make the bound predicate constant-false, matching
// Eval's unknown-column rule.
func (p Predicate) Bind(s *Schema) BoundPredicate {
	bp := BoundPredicate{atoms: make([]BoundAtom, 0, len(p.Atoms))}
	for _, a := range p.Atoms {
		j, ok := s.Index(a.Col)
		if !ok {
			return BoundPredicate{never: true}
		}
		bp.atoms = append(bp.atoms, BoundAtom{Col: j, Op: a.Op, Val: a.Val})
	}
	return bp
}

// IsNever reports whether the bound predicate can match no row.
func (bp *BoundPredicate) IsNever() bool { return bp.never }

// Eval reports whether the row satisfies every atom. It is equivalent to
// Predicate.Eval under the schema the predicate was bound to.
func (bp *BoundPredicate) Eval(row []Value) bool {
	if bp.never {
		return false
	}
	for i := range bp.atoms {
		a := &bp.atoms[i]
		if !a.Op.Apply(row[a.Col], a.Val) {
			return false
		}
	}
	return true
}

// Columns returns the distinct column names referenced, in first-use order.
func (p Predicate) Columns() []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range p.Atoms {
		if !seen[a.Col] {
			seen[a.Col] = true
			out = append(out, a.Col)
		}
	}
	return out
}

// Restrict returns the sub-predicate containing only atoms over columns for
// which keep returns true.
func (p Predicate) Restrict(keep func(col string) bool) Predicate {
	var atoms []Atom
	for _, a := range p.Atoms {
		if keep(a.Col) {
			atoms = append(atoms, a)
		}
	}
	return Predicate{Atoms: atoms}
}

// IsTrue reports whether the predicate has no atoms (always true).
func (p Predicate) IsTrue() bool { return len(p.Atoms) == 0 }

// WithAtoms returns a new predicate with extra atoms appended.
func (p Predicate) WithAtoms(extra ...Atom) Predicate {
	atoms := make([]Atom, 0, len(p.Atoms)+len(extra))
	atoms = append(atoms, p.Atoms...)
	atoms = append(atoms, extra...)
	return Predicate{Atoms: atoms}
}

func (p Predicate) String() string {
	if p.IsTrue() {
		return "true"
	}
	parts := make([]string, len(p.Atoms))
	for i, a := range p.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, " & ")
}

func quoteValue(v Value) string {
	if v.Kind() == KindString {
		return "'" + v.Str() + "'"
	}
	return v.String()
}
