package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadCSVInferred reads a relation from CSV without a declared schema: the
// header supplies the column names, and a column's type is integer iff
// every non-empty value in it parses as one (string otherwise), so a
// column like "1, 2, N/A" degrades to string instead of failing mid-parse.
// Columns with no non-empty value anywhere — e.g. a fully missing FK
// column — default to int. The reader works on any stream, not just files:
// the serving layer feeds it multipart upload parts directly.
func ReadCSVInferred(rd io.Reader, name string) (*Relation, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: read csv header: %w", err)
	}
	var records [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: read csv: %w", err)
		}
		records = append(records, rec)
	}
	cols := make([]Column, len(header))
	for j, h := range header {
		t := TypeInt
		for _, rec := range records {
			f := strings.TrimSpace(rec[j])
			if f == "" {
				continue
			}
			if _, err := strconv.ParseInt(f, 10, 64); err != nil {
				t = TypeString
				break
			}
		}
		cols[j] = Column{Name: strings.TrimSpace(h), Type: t}
	}
	out := NewRelation(name, NewSchema(cols...))
	for _, rec := range records {
		row := make([]Value, len(rec))
		for j, f := range rec {
			v, err := ParseValue(strings.TrimSpace(f), cols[j].Type)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		if err := out.Append(row...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ReadCSVFileInferred is ReadCSVInferred over a file.
func ReadCSVFileInferred(path, name string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSVInferred(f, name)
}
