package table

import "sort"

// This file implements the read-optimized half of the package's two-layer
// design (see the package comment): a Columnar snapshot of a relation's
// columns with dictionary-encoded strings and per-value posting lists, plus
// predicates compiled against it so the per-row inner loop is typed slice
// access and integer compares — no schema map lookups, no string compares.

// Dict is the sorted dictionary of a string column. Codes are assigned in
// lexicographic order, so comparing two codes with <, ==, > agrees with
// comparing the underlying strings; any constant (in the dictionary or not)
// translates into a code bound via binary search.
type Dict struct {
	strs []string
	code map[string]int64
}

// Len returns the number of distinct strings.
func (d *Dict) Len() int { return len(d.strs) }

// Str returns the string with the given code.
func (d *Dict) Str(code int64) string { return d.strs[code] }

// Code returns the code of s and whether s is in the dictionary.
func (d *Dict) Code(s string) (int64, bool) {
	c, ok := d.code[s]
	return c, ok
}

// colData is one captured column: int payloads or dict codes in vals, with
// a null mask. Columns whose cells disagree with the declared type (possible
// only through Relation.Set, which skips validation) fall back to raw Value
// storage so compiled evaluation stays exactly equivalent to Predicate.Eval.
type colData struct {
	vals []int64
	null []bool
	dict *Dict   // non-nil for dictionary-encoded string columns
	raw  []Value // non-nil for kind-mixed columns; overrides vals/null
	post map[int64][]int32
}

// Columnar is an immutable, typed, column-major snapshot of (a subset of)
// a relation's columns. Build one after the relation stops mutating, then
// compile predicates against it with Bind and evaluate with Eval, Count and
// Select. Columnar is safe for concurrent use.
type Columnar struct {
	schema *Schema
	nrows  int
	cols   []*colData // indexed by schema column position; nil = not captured
}

// NewColumnar snapshots the named columns of r (all columns when none are
// named). Unknown names are ignored; predicates over columns that were not
// captured evaluate to false, mirroring Predicate.Eval's unknown-column rule.
func NewColumnar(r *Relation, cols ...string) *Columnar {
	s := r.Schema()
	capture := make([]bool, s.Len())
	if len(cols) == 0 {
		for j := range capture {
			capture[j] = true
		}
	} else {
		for _, name := range cols {
			if j, ok := s.Index(name); ok {
				capture[j] = true
			}
		}
	}
	c := &Columnar{schema: s, nrows: r.Len(), cols: make([]*colData, s.Len())}
	for j := range capture {
		if capture[j] {
			c.cols[j] = buildCol(r, j, s.Col(j).Type)
		}
	}
	return c
}

// NewColumnarReusing snapshots the named columns of r like NewColumnar,
// but reuses the encoded columns of a previous snapshot wherever they are
// provably still valid: prev covers the same schema and row count, the
// column was captured by prev, and the column is not listed in dirtyCols.
// Column data is immutable, so reuse is a pointer copy — a re-snapshot
// after editing k of n columns costs O(k·rows) instead of O(n·rows). When
// prev does not match (different schema or row count), the call degrades to
// a full NewColumnar.
func NewColumnarReusing(r *Relation, prev *Columnar, dirtyCols map[string]bool, cols ...string) *Columnar {
	if prev == nil || prev.schema != r.Schema() || prev.nrows != r.Len() {
		return NewColumnar(r, cols...)
	}
	s := r.Schema()
	capture := make([]bool, s.Len())
	if len(cols) == 0 {
		for j := range capture {
			capture[j] = true
		}
	} else {
		for _, name := range cols {
			if j, ok := s.Index(name); ok {
				capture[j] = true
			}
		}
	}
	c := &Columnar{schema: s, nrows: r.Len(), cols: make([]*colData, s.Len())}
	for j := range capture {
		if !capture[j] {
			continue
		}
		if prev.cols[j] != nil && !dirtyCols[s.Col(j).Name] {
			c.cols[j] = prev.cols[j]
			continue
		}
		c.cols[j] = buildCol(r, j, s.Col(j).Type)
	}
	return c
}

// Len returns the number of rows in the snapshot.
func (c *Columnar) Len() int { return c.nrows }

// Schema returns the source relation's schema.
func (c *Columnar) Schema() *Schema { return c.schema }

// IntCol returns the typed payload slice and null mask of the named int
// column, for callers that want direct slice access (null may be nil when
// the column has no nulls). ok is false when the column was not captured as
// a typed int column.
func (c *Columnar) IntCol(name string) (vals []int64, null []bool, ok bool) {
	j, found := c.schema.Index(name)
	if !found || c.cols[j] == nil {
		return nil, nil, false
	}
	d := c.cols[j]
	if d.raw != nil || d.dict != nil {
		return nil, nil, false
	}
	return d.vals, d.null, true
}

func buildCol(r *Relation, j int, typ Type) *colData {
	n := r.Len()
	d := &colData{vals: make([]int64, n)}
	wantKind := KindInt
	if typ == TypeString {
		wantKind = KindString
	}
	// First pass: detect kind-mixed cells and collect the string domain.
	var strs map[string]bool
	for i := 0; i < n; i++ {
		v := r.At(i, j)
		if v.IsNull() {
			continue
		}
		if v.Kind() != wantKind {
			return buildRawCol(r, j)
		}
		if wantKind == KindString {
			if strs == nil {
				strs = make(map[string]bool)
			}
			strs[v.Str()] = true
		}
	}
	if wantKind == KindString {
		dict := &Dict{strs: make([]string, 0, len(strs)), code: make(map[string]int64, len(strs))}
		for s := range strs {
			dict.strs = append(dict.strs, s)
		}
		sort.Strings(dict.strs)
		for i, s := range dict.strs {
			dict.code[s] = int64(i)
		}
		d.dict = dict
	}
	for i := 0; i < n; i++ {
		v := r.At(i, j)
		if v.IsNull() {
			if d.null == nil {
				d.null = make([]bool, n)
			}
			d.null[i] = true
			continue
		}
		if wantKind == KindInt {
			d.vals[i] = v.Int()
		} else {
			d.vals[i] = d.dict.code[v.Str()]
		}
	}
	// Posting lists: sorted row ids per distinct value, powering the
	// index-backed Count/Select path for equality atoms. Built in two
	// passes so every list is carved out of one backing array instead of
	// growing by repeated append.
	counts := make(map[int64]int32)
	nonNull := 0
	for i := 0; i < n; i++ {
		if d.null != nil && d.null[i] {
			continue
		}
		counts[d.vals[i]]++
		nonNull++
	}
	backing := make([]int32, nonNull)
	off := 0
	d.post = make(map[int64][]int32, len(counts))
	for i := 0; i < n; i++ {
		if d.null != nil && d.null[i] {
			continue
		}
		v := d.vals[i]
		sl, ok := d.post[v]
		if !ok {
			cnt := int(counts[v])
			sl = backing[off : off : off+cnt]
			off += cnt
		}
		d.post[v] = append(sl, int32(i))
	}
	return d
}

func buildRawCol(r *Relation, j int) *colData {
	n := r.Len()
	d := &colData{raw: make([]Value, n)}
	for i := 0; i < n; i++ {
		d.raw[i] = r.At(i, j)
	}
	return d
}

// compiled atom kinds.
const (
	atomInt     uint8 = iota // typed compare: op(vals[i], k) on non-null cells
	atomNonNull              // true for every non-null cell
	atomRaw                  // Op.Apply on a raw fallback column
)

type colAtom struct {
	col  *colData
	kind uint8
	op   Op
	k    int64
	val  Value // atomRaw only
}

// ColPredicate is a conjunctive predicate compiled against one Columnar:
// column positions resolved, string constants dictionary-coded, cross-kind
// comparisons folded into constants. Evaluate with Eval/Count/Select on the
// Columnar it was bound to.
type ColPredicate struct {
	never bool
	atoms []colAtom
}

// IsNever reports whether the predicate can match no row.
func (p *ColPredicate) IsNever() bool { return p.never }

// Bind compiles p against the snapshot. The result is only meaningful for
// the receiver Columnar.
func (c *Columnar) Bind(p Predicate) ColPredicate {
	var out ColPredicate
	for _, a := range p.Atoms {
		j, ok := c.schema.Index(a.Col)
		if !ok || c.cols[j] == nil {
			return ColPredicate{never: true}
		}
		d := c.cols[j]
		ca, never := compileAtom(d, a.Op, a.Val)
		if never {
			return ColPredicate{never: true}
		}
		out.atoms = append(out.atoms, ca)
	}
	return out
}

// compileAtom lowers one `col op const` atom. The translation reproduces
// Op.Apply's semantics exactly: null never matches, and mixed-kind
// comparisons order by kind (null < int < string).
func compileAtom(d *colData, op Op, val Value) (colAtom, bool) {
	if d.raw != nil {
		return colAtom{col: d, kind: atomRaw, op: op, val: val}, false
	}
	switch val.Kind() {
	case KindNull:
		return colAtom{}, true // comparisons against null are always false
	case KindInt:
		if d.dict != nil {
			// string column vs int constant: Compare is always +1.
			return crossKindAtom(d, op, +1)
		}
		return colAtom{col: d, kind: atomInt, op: op, k: val.Int()}, false
	default: // KindString
		if d.dict == nil {
			// int column vs string constant: Compare is always -1.
			return crossKindAtom(d, op, -1)
		}
		return dictAtom(d, op, val.Str())
	}
}

// crossKindAtom folds an atom whose comparison outcome is fixed by kind
// ordering (cmp is the Compare result for every non-null cell).
func crossKindAtom(d *colData, op Op, cmp int) (colAtom, bool) {
	match := false
	switch op {
	case OpEq:
		match = cmp == 0
	case OpNe:
		match = cmp != 0
	case OpLt:
		match = cmp < 0
	case OpLe:
		match = cmp <= 0
	case OpGt:
		match = cmp > 0
	case OpGe:
		match = cmp >= 0
	}
	if !match {
		return colAtom{}, true
	}
	return colAtom{col: d, kind: atomNonNull}, false
}

// dictAtom translates a string comparison into a code comparison. pos is
// the rank the constant would occupy in the sorted dictionary, so order
// comparisons work even for constants absent from the column.
func dictAtom(d *colData, op Op, s string) (colAtom, bool) {
	dict := d.dict
	pos := int64(sort.SearchStrings(dict.strs, s))
	present := pos < int64(len(dict.strs)) && dict.strs[pos] == s
	switch op {
	case OpEq:
		if !present {
			return colAtom{}, true
		}
		return colAtom{col: d, kind: atomInt, op: OpEq, k: pos}, false
	case OpNe:
		if !present {
			return colAtom{col: d, kind: atomNonNull}, false
		}
		return colAtom{col: d, kind: atomInt, op: OpNe, k: pos}, false
	case OpLt: // v < s  ⇔  code < pos
		return colAtom{col: d, kind: atomInt, op: OpLt, k: pos}, false
	case OpLe: // v <= s ⇔  code < pos, or code == pos when s is present
		if present {
			return colAtom{col: d, kind: atomInt, op: OpLe, k: pos}, false
		}
		return colAtom{col: d, kind: atomInt, op: OpLt, k: pos}, false
	case OpGt: // v > s  ⇔  code >= pos, excluding s itself when present
		if present {
			return colAtom{col: d, kind: atomInt, op: OpGt, k: pos}, false
		}
		return colAtom{col: d, kind: atomInt, op: OpGe, k: pos}, false
	default: // OpGe: v >= s ⇔ code >= pos
		return colAtom{col: d, kind: atomInt, op: OpGe, k: pos}, false
	}
}

func intApply(op Op, v, k int64) bool {
	switch op {
	case OpEq:
		return v == k
	case OpNe:
		return v != k
	case OpLt:
		return v < k
	case OpLe:
		return v <= k
	case OpGt:
		return v > k
	default: // OpGe
		return v >= k
	}
}

func (a *colAtom) eval(i int) bool {
	d := a.col
	switch a.kind {
	case atomRaw:
		return a.op.Apply(d.raw[i], a.val)
	case atomNonNull:
		return d.null == nil || !d.null[i]
	default: // atomInt
		if d.null != nil && d.null[i] {
			return false
		}
		return intApply(a.op, d.vals[i], a.k)
	}
}

// Eval reports whether row i satisfies the compiled predicate. It is
// equivalent to Predicate.Eval on the source relation's row i.
func (p *ColPredicate) Eval(i int) bool {
	if p.never {
		return false
	}
	for j := range p.atoms {
		if !p.atoms[j].eval(i) {
			return false
		}
	}
	return true
}

// driver picks the most selective equality atom with a posting list, or -1
// when the predicate must scan.
func (p *ColPredicate) driver() int {
	best, bestLen := -1, 0
	for j := range p.atoms {
		a := &p.atoms[j]
		if a.kind != atomInt || a.op != OpEq || a.col.post == nil {
			continue
		}
		n := len(a.col.post[a.k])
		if best < 0 || n < bestLen {
			best, bestLen = j, n
		}
	}
	return best
}

// Count returns the number of rows satisfying the compiled predicate,
// equivalent to Relation.Count with the source predicate. Equality-bearing
// predicates count by walking the shortest posting list instead of scanning.
func (c *Columnar) Count(p ColPredicate) int {
	if p.never {
		return 0
	}
	n := 0
	if dr := p.driver(); dr >= 0 {
		a := &p.atoms[dr]
		for _, i := range a.col.post[a.k] {
			if p.Eval(int(i)) {
				n++
			}
		}
		return n
	}
	for i := 0; i < c.nrows; i++ {
		if p.Eval(i) {
			n++
		}
	}
	return n
}

// SelectFunc streams the rows satisfying the compiled predicate, in the
// same ascending order Select returns them, stopping early when yield
// returns false. Callers that consume only a prefix (e.g. fill loops with
// a quota) avoid materializing the full match list.
func (c *Columnar) SelectFunc(p ColPredicate, yield func(i int) bool) {
	if p.never {
		return
	}
	if dr := p.driver(); dr >= 0 {
		a := &p.atoms[dr]
		for _, i := range a.col.post[a.k] {
			if p.Eval(int(i)) && !yield(int(i)) {
				return
			}
		}
		return
	}
	for i := 0; i < c.nrows; i++ {
		if p.Eval(i) && !yield(i) {
			return
		}
	}
}

// Select returns the rows satisfying the compiled predicate in ascending
// order, equivalent to Relation.Select with the source predicate.
func (c *Columnar) Select(p ColPredicate) []int {
	if p.never {
		return nil
	}
	var out []int
	if dr := p.driver(); dr >= 0 {
		a := &p.atoms[dr]
		for _, i := range a.col.post[a.k] {
			if p.Eval(int(i)) {
				out = append(out, int(i))
			}
		}
		return out
	}
	for i := 0; i < c.nrows; i++ {
		if p.Eval(i) {
			out = append(out, i)
		}
	}
	return out
}
