package table

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteCSV writes the relation as CSV with a header row. Null cells render
// as empty fields. One record slice and one byte scratch are reused across
// rows, so writing costs no per-row allocations beyond what encoding/csv
// itself does (sessions exporting many synthesized relations hit this in a
// loop).
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema().Names()); err != nil {
		return err
	}
	rec := make([]string, r.Schema().Len())
	var scratch []byte
	for i := 0; i < r.Len(); i++ {
		for j, v := range r.Row(i) {
			switch v.Kind() {
			case KindInt:
				scratch = strconv.AppendInt(scratch[:0], v.Int(), 10)
				rec[j] = string(scratch)
			case KindString:
				rec[j] = v.Str()
			default:
				rec[j] = ""
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the relation to the named file through one buffered
// writer flushed at the end, so large relations do not pay a syscall per
// csv.Writer flush boundary.
func WriteCSVFile(path string, r *Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := WriteCSV(bw, r); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSV reads a relation from CSV. The header row must match the schema's
// column names (order included); empty fields become null.
func ReadCSV(rd io.Reader, name string, schema *Schema) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = schema.Len()
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: read csv header: %w", err)
	}
	for j, n := range schema.Names() {
		if strings.TrimSpace(header[j]) != n {
			return nil, fmt.Errorf("table: csv header mismatch at column %d: got %q, want %q", j, header[j], n)
		}
	}
	out := NewRelation(name, schema)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: read csv: %w", err)
		}
		row := make([]Value, schema.Len())
		for j, field := range rec {
			v, err := ParseValue(strings.TrimSpace(field), schema.Col(j).Type)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// ReadCSVFile reads a relation from the named CSV file.
func ReadCSVFile(path, name string, schema *Schema) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, name, schema)
}
