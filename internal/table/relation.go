package table

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is an in-memory, row-major relation instance. Rows are indexed
// from 0; cell updates are allowed (the solver fills missing columns in
// place). A Relation is not safe for concurrent mutation.
type Relation struct {
	Name   string
	schema *Schema
	rows   [][]Value
}

// NewRelation creates an empty relation with the given name and schema.
func NewRelation(name string, schema *Schema) *Relation {
	return &Relation{Name: name, schema: schema}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.rows) }

// Append adds a row after validating its arity and column types (null is
// allowed in any column).
func (r *Relation) Append(row ...Value) error {
	if len(row) != r.schema.Len() {
		return fmt.Errorf("table: %s: append: got %d values, schema has %d columns", r.Name, len(row), r.schema.Len())
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		want := r.schema.Col(i).Type
		if (want == TypeInt && v.Kind() != KindInt) || (want == TypeString && v.Kind() != KindString) {
			return fmt.Errorf("table: %s: append: column %q wants %v, got %v", r.Name, r.schema.Col(i).Name, want, v.Kind())
		}
	}
	r.rows = append(r.rows, append([]Value(nil), row...))
	return nil
}

// MustAppend is Append that panics on error; for tests and generators where
// a schema mismatch is a bug.
func (r *Relation) MustAppend(row ...Value) {
	if err := r.Append(row...); err != nil {
		panic(err)
	}
}

// Row returns the i-th row. The returned slice is the backing storage; do
// not mutate it except through Set.
func (r *Relation) Row(i int) []Value { return r.rows[i] }

// Value returns the cell at row i, named column.
func (r *Relation) Value(i int, col string) Value {
	return r.rows[i][r.schema.MustIndex(col)]
}

// Set updates the cell at row i, named column.
func (r *Relation) Set(i int, col string, v Value) {
	r.rows[i][r.schema.MustIndex(col)] = v
}

// SetAt updates the cell at row i, column index j.
func (r *Relation) SetAt(i, j int, v Value) { r.rows[i][j] = v }

// At returns the cell at row i, column index j.
func (r *Relation) At(i, j int) Value { return r.rows[i][j] }

// Truncate drops every row past the first n. It panics if n is negative or
// exceeds the current length. Used by the incremental engine to rebase a
// working relation after appended rows are withdrawn.
func (r *Relation) Truncate(n int) {
	if n < 0 || n > len(r.rows) {
		panic(fmt.Sprintf("table: %s: truncate to %d of %d rows", r.Name, n, len(r.rows)))
	}
	tail := r.rows[n:]
	r.rows = r.rows[:n]
	for i := range tail {
		tail[i] = nil // release the dropped rows' storage
	}
}

// Clone returns a deep copy of the relation (rows and schema shared
// structurally; row storage is copied).
func (r *Relation) Clone() *Relation {
	out := &Relation{Name: r.Name, schema: r.schema, rows: make([][]Value, len(r.rows))}
	for i, row := range r.rows {
		out.rows[i] = append([]Value(nil), row...)
	}
	return out
}

// Select returns the indices of rows satisfying p.
func (r *Relation) Select(p Predicate) []int {
	var out []int
	for i, row := range r.rows {
		if p.Eval(r.schema, row) {
			out = append(out, i)
		}
	}
	return out
}

// Count returns the number of rows satisfying p.
func (r *Relation) Count(p Predicate) int {
	n := 0
	for _, row := range r.rows {
		if p.Eval(r.schema, row) {
			n++
		}
	}
	return n
}

// Project returns a new relation with only the named columns.
func (r *Relation) Project(names ...string) (*Relation, error) {
	sch, err := r.schema.Project(names...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = r.schema.MustIndex(n)
	}
	out := NewRelation(r.Name, sch)
	for _, row := range r.rows {
		nr := make([]Value, len(idx))
		for i, j := range idx {
			nr[i] = row[j]
		}
		out.rows = append(out.rows, nr)
	}
	return out, nil
}

// DistinctValues returns the sorted distinct non-null values of a column.
func (r *Relation) DistinctValues(col string) []Value {
	j := r.schema.MustIndex(col)
	seen := make(map[Value]bool)
	var out []Value
	for _, row := range r.rows {
		v := row[j]
		if v.IsNull() || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return Less(out[a], out[b]) })
	return out
}

// DistinctRows returns the distinct value combinations over the named
// columns (nulls included), in first-appearance order, along with the count
// of rows per combination.
func (r *Relation) DistinctRows(cols ...string) ([][]Value, []int) {
	idx := make([]int, len(cols))
	for i, n := range cols {
		idx[i] = r.schema.MustIndex(n)
	}
	type slot struct{ pos int }
	seen := make(map[string]slot)
	var combos [][]Value
	var counts []int
	var b strings.Builder
	for _, row := range r.rows {
		b.Reset()
		for _, j := range idx {
			writeKeyPart(&b, row[j])
		}
		k := b.String()
		if s, ok := seen[k]; ok {
			counts[s.pos]++
			continue
		}
		combo := make([]Value, len(idx))
		for i, j := range idx {
			combo[i] = row[j]
		}
		seen[k] = slot{pos: len(combos)}
		combos = append(combos, combo)
		counts = append(counts, 1)
	}
	return combos, counts
}

// GroupBy returns, for each distinct combination over cols, the row indices
// in that group. Groups are keyed by an opaque string encoding.
func (r *Relation) GroupBy(cols ...string) map[string][]int {
	idx := make([]int, len(cols))
	for i, n := range cols {
		idx[i] = r.schema.MustIndex(n)
	}
	out := make(map[string][]int)
	var b strings.Builder
	for i, row := range r.rows {
		b.Reset()
		for _, j := range idx {
			writeKeyPart(&b, row[j])
		}
		k := b.String()
		out[k] = append(out[k], i)
	}
	return out
}

// GroupByValue returns, for each distinct value of one column (nulls
// included), the row indices carrying it. Unlike GroupBy it keys groups by
// the Value itself, avoiding the string encoding of the key.
func (r *Relation) GroupByValue(col string) map[Value][]int {
	j := r.schema.MustIndex(col)
	out := make(map[Value][]int)
	for i, row := range r.rows {
		out[row[j]] = append(out[row[j]], i)
	}
	return out
}

// KeyOf encodes the values of the named columns in row i as an opaque
// grouping key compatible with GroupBy.
func (r *Relation) KeyOf(i int, cols ...string) string {
	var b strings.Builder
	for _, n := range cols {
		writeKeyPart(&b, r.Value(i, n))
	}
	return b.String()
}

// EncodeKey encodes a value tuple as an opaque grouping key compatible with
// GroupBy and KeyOf.
func EncodeKey(vals ...Value) string {
	var b strings.Builder
	for _, v := range vals {
		writeKeyPart(&b, v)
	}
	return b.String()
}

func writeKeyPart(b *strings.Builder, v Value) {
	switch v.Kind() {
	case KindNull:
		b.WriteByte(0)
	case KindInt:
		b.WriteByte(1)
		b.WriteString(v.String())
	case KindString:
		b.WriteByte(2)
		b.WriteString(v.Str())
	}
	b.WriteByte(0x1f)
}

// HasNullIn reports whether row i has a null cell in any of the named
// columns.
func (r *Relation) HasNullIn(i int, cols ...string) bool {
	for _, n := range cols {
		if r.Value(i, n).IsNull() {
			return true
		}
	}
	return false
}

// String renders a small relation as an aligned text table; used by the
// examples and for debugging. Large relations render a summary header only.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d rows)\n", r.Name, len(r.rows))
	if len(r.rows) > 50 {
		return b.String()
	}
	names := r.schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(r.rows))
	for i, row := range r.rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := v.String()
			if v.IsNull() {
				s = "?"
			}
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	for j, n := range names {
		fmt.Fprintf(&b, "%-*s ", widths[j], n)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for j, s := range row {
			fmt.Fprintf(&b, "%-*s ", widths[j], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
