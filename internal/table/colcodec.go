package table

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"unsafe"
)

// This file implements the binary snapshot codec for Columnar: a compact,
// versioned, deterministic encoding of every captured column — dictionaries,
// null masks, typed payloads, posting lists, raw fallbacks — designed so a
// decoder can alias the large arrays straight out of a memory-mapped file
// instead of copying them. All variable-length fields are length-prefixed
// and all aliasable arrays are 8-byte aligned relative to the start of the
// encoding, so a blob placed at an 8-aligned file offset maps zero-copy.
//
// The encoding is canonical: one Columnar always encodes to the same bytes
// (posting lists are written in ascending value order), which lets the
// durable store name snapshot files by the SHA-256 of their contents.

// colMagic versions the Columnar blob encoding. Bump it whenever the layout
// changes shape so a stale snapshot file can never decode into wrong data.
var colMagic = [8]byte{'L', 'S', 'C', 'O', 'L', 'B', '1', '\n'}

// Column body kinds in the encoded stream.
const (
	encAbsent uint8 = iota // column not captured
	encInt                 // typed int64 payload
	encDict                // dictionary-coded string payload
	encRaw                 // kind-mixed raw Value fallback
)

// hostLittleEndian reports whether the running host stores integers
// little-endian — the byte order of the encoding. On big-endian hosts the
// decoder copies instead of aliasing.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

type colEnc struct {
	w   io.Writer
	off int64
	err error
	buf [8]byte
}

func (e *colEnc) bytes(b []byte) {
	if e.err != nil {
		return
	}
	n, err := e.w.Write(b)
	e.off += int64(n)
	e.err = err
}

func (e *colEnc) u8(v uint8) { e.bytes([]byte{v}) }

func (e *colEnc) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.bytes(e.buf[:4])
}

func (e *colEnc) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	e.bytes(e.buf[:8])
}

func (e *colEnc) i64(v int64) { e.u64(uint64(v)) }

// str writes a length-prefixed string.
func (e *colEnc) str(s string) {
	e.u32(uint32(len(s)))
	e.bytes([]byte(s))
}

var zeroPad [8]byte

// pad8 advances the stream to the next 8-byte boundary.
func (e *colEnc) pad8() {
	if rem := e.off % 8; rem != 0 {
		e.bytes(zeroPad[:8-rem])
	}
}

// EncodeColumnar writes the canonical binary form of the snapshot to w and
// returns the number of bytes written. The byte stream is self-delimiting:
// DecodeColumnar consumes exactly what EncodeColumnar produced.
func EncodeColumnar(c *Columnar, w io.Writer) (int64, error) {
	e := &colEnc{w: w}
	e.bytes(colMagic[:])
	e.u64(uint64(c.nrows))
	e.u32(uint32(c.schema.Len()))
	e.u32(0) // reserved
	for j := 0; j < c.schema.Len(); j++ {
		col := c.schema.Col(j)
		e.str(col.Name)
		e.u8(uint8(col.Type))
		e.u8(encKindOf(c.cols[j]))
	}
	for j := 0; j < c.schema.Len(); j++ {
		d := c.cols[j]
		if d == nil {
			continue
		}
		switch encKindOf(d) {
		case encRaw:
			encodeRawCol(e, d)
		default:
			encodeTypedCol(e, d)
		}
	}
	e.pad8()
	return e.off, e.err
}

func encKindOf(d *colData) uint8 {
	switch {
	case d == nil:
		return encAbsent
	case d.raw != nil:
		return encRaw
	case d.dict != nil:
		return encDict
	default:
		return encInt
	}
}

func encodeTypedCol(e *colEnc, d *colData) {
	if d.dict != nil {
		e.u32(uint32(len(d.dict.strs)))
		for _, s := range d.dict.strs {
			e.str(s)
		}
	}
	hasNull := uint8(0)
	if d.null != nil {
		hasNull = 1
	}
	e.u8(hasNull)
	e.pad8()
	if hostLittleEndian && len(d.vals) > 0 {
		e.bytes(unsafe.Slice((*byte)(unsafe.Pointer(&d.vals[0])), len(d.vals)*8))
	} else {
		for _, v := range d.vals {
			e.i64(v)
		}
	}
	if d.null != nil {
		e.bytes(boolsAsBytes(d.null))
		e.pad8()
	}
	// Posting lists, ascending by value so the encoding is canonical. The
	// per-value table carries (value, count) pairs; the row-id backing
	// array follows, 8-aligned, carved in the same order.
	vals := make([]int64, 0, len(d.post))
	for v := range d.post {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	e.u32(uint32(len(vals)))
	total := 0
	for _, v := range vals {
		e.i64(v)
		e.u32(uint32(len(d.post[v])))
		total += len(d.post[v])
	}
	e.pad8()
	if hostLittleEndian && total > 0 {
		for _, v := range vals {
			sl := d.post[v]
			e.bytes(unsafe.Slice((*byte)(unsafe.Pointer(&sl[0])), len(sl)*4))
		}
	} else {
		for _, v := range vals {
			for _, r := range d.post[v] {
				e.u32(uint32(r))
			}
		}
	}
	e.pad8()
}

func encodeRawCol(e *colEnc, d *colData) {
	for _, v := range d.raw {
		e.u8(uint8(v.Kind()))
		switch v.Kind() {
		case KindInt:
			e.i64(v.Int())
		case KindString:
			e.str(v.Str())
		}
	}
	e.pad8()
}

func boolsAsBytes(b []bool) []byte {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&b[0])), len(b))
}

// colDec is the decoding cursor over one encoded blob.
type colDec struct {
	data  []byte
	off   int
	alias bool
}

var errShortBlob = fmt.Errorf("table: columnar blob truncated")

// remaining reports how many bytes are left; count-prefixed sections are
// checked against it before allocating, so a corrupted count fails cleanly
// instead of attempting an enormous allocation.
func (d *colDec) remaining() int { return len(d.data) - d.off }

func (d *colDec) take(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.data) {
		return nil, errShortBlob
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *colDec) u8() (uint8, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *colDec) u32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *colDec) u64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *colDec) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	b, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil // copies: decoded strings never alias the blob
}

func (d *colDec) pad8() error {
	if rem := d.off % 8; rem != 0 {
		_, err := d.take(8 - rem)
		return err
	}
	return nil
}

// int64s returns n decoded int64 values, aliasing the blob when permitted
// and the host byte order matches the encoding.
func (d *colDec) int64s(n int) ([]int64, error) {
	b, err := d.take(n * 8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return []int64{}, nil
	}
	if d.alias && hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// int32s returns n decoded int32 values (the posting backing array).
func (d *colDec) int32s(n int) ([]int32, error) {
	b, err := d.take(n * 4)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return []int32{}, nil
	}
	if d.alias && hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// bools returns n decoded bools (a null mask), aliasing when permitted.
func (d *colDec) bools(n int) ([]bool, error) {
	b, err := d.take(n)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return []bool{}, nil
	}
	for _, v := range b {
		if v > 1 {
			return nil, fmt.Errorf("table: columnar blob: null mask byte %d out of range", v)
		}
	}
	if d.alias {
		return unsafe.Slice((*bool)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = b[i] == 1
	}
	return out, nil
}

// DecodeColumnar reconstructs a snapshot from data, which must hold exactly
// one encoded blob (as produced by EncodeColumnar). With alias set, the
// large arrays — typed payloads, null masks, posting row ids — point into
// data instead of being copied; the caller then guarantees data stays valid
// and unmodified (e.g. a memory-mapped, immutable snapshot file) for the
// lifetime of the returned Columnar. Dictionaries and raw values are always
// copied. Any structural inconsistency fails with an error; DecodeColumnar
// never returns a partially decoded snapshot.
func DecodeColumnar(data []byte, alias bool) (*Columnar, error) {
	d := &colDec{data: data, alias: alias}
	magic, err := d.take(8)
	if err != nil {
		return nil, err
	}
	if string(magic) != string(colMagic[:]) {
		return nil, fmt.Errorf("table: columnar blob: bad magic %q", magic)
	}
	nrows64, err := d.u64()
	if err != nil {
		return nil, err
	}
	if nrows64 > 1<<40 {
		return nil, fmt.Errorf("table: columnar blob: implausible row count %d", nrows64)
	}
	nrows := int(nrows64)
	ncols, err := d.u32()
	if err != nil {
		return nil, err
	}
	if _, err := d.u32(); err != nil { // reserved
		return nil, err
	}
	if int(ncols)*6 > d.remaining() { // name prefix + type + kind each
		return nil, errShortBlob
	}
	cols := make([]Column, ncols)
	kinds := make([]uint8, ncols)
	for j := range cols {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		typ, err := d.u8()
		if err != nil {
			return nil, err
		}
		if Type(typ) != TypeInt && Type(typ) != TypeString {
			return nil, fmt.Errorf("table: columnar blob: column %q: unknown type %d", name, typ)
		}
		k, err := d.u8()
		if err != nil {
			return nil, err
		}
		if k > encRaw {
			return nil, fmt.Errorf("table: columnar blob: column %q: unknown body kind %d", name, k)
		}
		cols[j] = Column{Name: name, Type: Type(typ)}
		kinds[j] = k
	}
	c := &Columnar{schema: NewSchema(cols...), nrows: nrows, cols: make([]*colData, ncols)}
	for j := range cols {
		switch kinds[j] {
		case encAbsent:
		case encRaw:
			cd, err := decodeRawCol(d, nrows)
			if err != nil {
				return nil, fmt.Errorf("table: columnar blob: column %q: %w", cols[j].Name, err)
			}
			c.cols[j] = cd
		default:
			cd, err := decodeTypedCol(d, nrows, kinds[j] == encDict)
			if err != nil {
				return nil, fmt.Errorf("table: columnar blob: column %q: %w", cols[j].Name, err)
			}
			c.cols[j] = cd
		}
	}
	if err := d.pad8(); err != nil {
		return nil, err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("table: columnar blob: %d trailing bytes", len(data)-d.off)
	}
	return c, nil
}

func decodeTypedCol(d *colDec, nrows int, hasDict bool) (*colData, error) {
	cd := &colData{}
	if hasDict {
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		if int(n)*4 > d.remaining() { // each entry carries at least a length prefix
			return nil, errShortBlob
		}
		dict := &Dict{strs: make([]string, n), code: make(map[string]int64, n)}
		for i := range dict.strs {
			s, err := d.str()
			if err != nil {
				return nil, err
			}
			dict.strs[i] = s
			dict.code[s] = int64(i)
		}
		if !sort.StringsAreSorted(dict.strs) || len(dict.code) != len(dict.strs) {
			return nil, fmt.Errorf("dictionary not sorted and distinct")
		}
		cd.dict = dict
	}
	hasNull, err := d.u8()
	if err != nil {
		return nil, err
	}
	if err := d.pad8(); err != nil {
		return nil, err
	}
	if cd.vals, err = d.int64s(nrows); err != nil {
		return nil, err
	}
	if hasNull == 1 {
		if cd.null, err = d.bools(nrows); err != nil {
			return nil, err
		}
		if err := d.pad8(); err != nil {
			return nil, err
		}
	}
	ndistinct, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int(ndistinct) > nrows {
		return nil, fmt.Errorf("posting table larger than row count")
	}
	if int(ndistinct)*12 > d.remaining() { // 8-byte value + 4-byte count each
		return nil, errShortBlob
	}
	pvals := make([]int64, ndistinct)
	pcnts := make([]int, ndistinct)
	total := 0
	for i := range pvals {
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		cnt, err := d.u32()
		if err != nil {
			return nil, err
		}
		pvals[i] = int64(v)
		pcnts[i] = int(cnt)
		total += int(cnt)
	}
	if total > nrows {
		return nil, fmt.Errorf("posting lists cover %d rows, snapshot has %d", total, nrows)
	}
	if err := d.pad8(); err != nil {
		return nil, err
	}
	backing, err := d.int32s(total)
	if err != nil {
		return nil, err
	}
	if err := d.pad8(); err != nil {
		return nil, err
	}
	cd.post = make(map[int64][]int32, ndistinct)
	off := 0
	for i, v := range pvals {
		if _, dup := cd.post[v]; dup {
			return nil, fmt.Errorf("duplicate posting value %d", v)
		}
		list := backing[off : off+pcnts[i]]
		for _, r := range list {
			if r < 0 || int(r) >= nrows {
				return nil, fmt.Errorf("posting row id %d out of range", r)
			}
		}
		cd.post[v] = list
		off += pcnts[i]
	}
	return cd, nil
}

func decodeRawCol(d *colDec, nrows int) (*colData, error) {
	if nrows > d.remaining() { // each raw value carries at least a kind byte
		return nil, errShortBlob
	}
	cd := &colData{raw: make([]Value, nrows)}
	for i := range cd.raw {
		k, err := d.u8()
		if err != nil {
			return nil, err
		}
		switch Kind(k) {
		case KindNull:
			cd.raw[i] = Null()
		case KindInt:
			v, err := d.u64()
			if err != nil {
				return nil, err
			}
			cd.raw[i] = Int(int64(v))
		case KindString:
			s, err := d.str()
			if err != nil {
				return nil, err
			}
			cd.raw[i] = String(s)
		default:
			return nil, fmt.Errorf("unknown value kind %d", k)
		}
	}
	return cd, d.pad8()
}

// Relation materializes the snapshot back into a mutable row-store relation
// with the given name. It requires every column captured; the result is
// cell-for-cell identical to the relation the snapshot was built from, so a
// full-column snapshot is a lossless relation encoding. The returned
// relation owns its rows — it never aliases the snapshot (or its backing
// file), so the snapshot may be unmapped once Relation returns.
func (c *Columnar) Relation(name string) (*Relation, error) {
	for j := 0; j < c.schema.Len(); j++ {
		if c.cols[j] == nil {
			return nil, fmt.Errorf("table: snapshot column %q was not captured", c.schema.Col(j).Name)
		}
	}
	r := NewRelation(name, c.schema)
	r.rows = make([][]Value, c.nrows)
	for i := 0; i < c.nrows; i++ {
		// Rows are rebuilt directly rather than via Append: raw columns
		// legitimately hold kind-mixed cells that Append would reject.
		row := make([]Value, c.schema.Len())
		for j := range row {
			d := c.cols[j]
			switch {
			case d.raw != nil:
				row[j] = d.raw[i]
			case d.null != nil && d.null[i]:
				row[j] = Null()
			case d.dict != nil:
				row[j] = String(d.dict.Str(d.vals[i]))
			default:
				row[j] = Int(d.vals[i])
			}
		}
		r.rows[i] = row
	}
	return r, nil
}
