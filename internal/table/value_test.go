package table

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	if got := Int(7).Kind(); got != KindInt {
		t.Errorf("Int kind = %v", got)
	}
	if got := String("x").Kind(); got != KindString {
		t.Errorf("String kind = %v", got)
	}
	if got := Null().Kind(); got != KindNull {
		t.Errorf("Null kind = %v", got)
	}
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if Int(0).IsNull() {
		t.Error("Int(0).IsNull() = true")
	}
}

func TestValuePayloads(t *testing.T) {
	if got := Int(-42).Int(); got != -42 {
		t.Errorf("Int payload = %d", got)
	}
	if got := String("chicago").Str(); got != "chicago" {
		t.Errorf("Str payload = %q", got)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(12), "12"},
		{Int(-3), "-3"},
		{String("NYC"), "NYC"},
		{Null(), ""},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueEquality(t *testing.T) {
	if Int(3) != Int(3) {
		t.Error("Int(3) != Int(3)")
	}
	if Int(3) == String("3") {
		t.Error("Int(3) == String(\"3\")")
	}
	if Null() != Null() {
		t.Error("Null() != Null()")
	}
	m := map[Value]int{Int(1): 1, String("1"): 2}
	if len(m) != 2 {
		t.Errorf("map keyed by Value collapsed: %v", m)
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(5), Int(5), 0},
		{String("a"), String("b"), -1},
		{String("b"), String("a"), 1},
		{String("x"), String("x"), 0},
		{Null(), Int(0), -1},
		{Int(9), String(""), -1}, // ints order before strings
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := func() Value {
		switch rng.Intn(3) {
		case 0:
			return Int(rng.Int63n(20) - 10)
		case 1:
			return String(string(rune('a' + rng.Intn(5))))
		default:
			return Null()
		}
	}
	for i := 0; i < 2000; i++ {
		a, b, c := vals(), vals(), vals()
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("42", TypeInt)
	if err != nil || v != Int(42) {
		t.Errorf("ParseValue(42) = %v, %v", v, err)
	}
	v, err = ParseValue("hello", TypeString)
	if err != nil || v != String("hello") {
		t.Errorf("ParseValue(hello) = %v, %v", v, err)
	}
	v, err = ParseValue("", TypeInt)
	if err != nil || !v.IsNull() {
		t.Errorf("ParseValue(empty) = %v, %v", v, err)
	}
	if _, err = ParseValue("notanint", TypeInt); err == nil {
		t.Error("ParseValue(notanint) succeeded")
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		v, err := ParseValue(Int(n).String(), TypeInt)
		return err == nil && v == Int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
