package table

import (
	"math/rand"
	"testing"
)

func TestOpApplyTable(t *testing.T) {
	cases := []struct {
		a    Value
		op   Op
		b    Value
		want bool
	}{
		{Int(3), OpEq, Int(3), true},
		{Int(3), OpEq, Int(4), false},
		{Int(3), OpNe, Int(4), true},
		{Int(3), OpLt, Int(4), true},
		{Int(4), OpLt, Int(4), false},
		{Int(4), OpLe, Int(4), true},
		{Int(5), OpGt, Int(4), true},
		{Int(4), OpGe, Int(4), true},
		{String("a"), OpLt, String("b"), true},
		{String("b"), OpGe, String("b"), true},
		{Null(), OpEq, Null(), false}, // null never matches
		{Null(), OpNe, Int(1), false}, // not even !=
		{Int(1), OpEq, Null(), false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestOpApplyComplement(t *testing.T) {
	// For non-null ints: Eq/Ne, Lt/Ge and Le/Gt are complements.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a, b := Int(rng.Int63n(100)), Int(rng.Int63n(100))
		if OpEq.Apply(a, b) == OpNe.Apply(a, b) {
			t.Fatalf("Eq/Ne not complementary for %v %v", a, b)
		}
		if OpLt.Apply(a, b) == OpGe.Apply(a, b) {
			t.Fatalf("Lt/Ge not complementary for %v %v", a, b)
		}
		if OpLe.Apply(a, b) == OpGt.Apply(a, b) {
			t.Fatalf("Le/Gt not complementary for %v %v", a, b)
		}
	}
}

func TestPredicateEval(t *testing.T) {
	s := NewSchema(IntCol("Age"), StrCol("Rel"))
	row := []Value{Int(30), String("Owner")}
	cases := []struct {
		p    Predicate
		want bool
	}{
		{And(), true}, // empty conjunction
		{And(Eq("Rel", String("Owner"))), true},
		{And(Eq("Rel", String("Spouse"))), false},
		{And(Between("Age", 18, 114)...), true},
		{And(Between("Age", 31, 40)...), false},
		{And(Eq("Rel", String("Owner")), Atom{Col: "Age", Op: OpGt, Val: Int(29)}), true},
		{And(Eq("Missing", Int(1))), false}, // unknown column is false
	}
	for i, c := range cases {
		if got := c.p.Eval(s, row); got != c.want {
			t.Errorf("case %d (%s): got %v", i, c.p, got)
		}
	}
}

func TestPredicateColumnsAndRestrict(t *testing.T) {
	p := And(append(Between("Age", 0, 24), Eq("Area", String("Chicago")), Eq("Rel", String("Owner")))...)
	cols := p.Columns()
	if len(cols) != 3 || cols[0] != "Age" {
		t.Errorf("Columns = %v", cols)
	}
	r1Cols := map[string]bool{"Age": true, "Rel": true}
	r1Part := p.Restrict(func(c string) bool { return r1Cols[c] })
	if len(r1Part.Atoms) != 3 {
		t.Errorf("R1 part = %s", r1Part)
	}
	r2Part := p.Restrict(func(c string) bool { return !r1Cols[c] })
	if len(r2Part.Atoms) != 1 || r2Part.Atoms[0].Col != "Area" {
		t.Errorf("R2 part = %s", r2Part)
	}
}

func TestPredicateWithAtomsDoesNotAlias(t *testing.T) {
	p := And(Eq("a", Int(1)))
	q := p.WithAtoms(Eq("b", Int(2)))
	if len(p.Atoms) != 1 || len(q.Atoms) != 2 {
		t.Errorf("alias bug: p=%d q=%d", len(p.Atoms), len(q.Atoms))
	}
}

func TestPredicateString(t *testing.T) {
	p := And(Eq("Rel", String("Owner")), Atom{Col: "Age", Op: OpLe, Val: Int(24)})
	if got := p.String(); got != "Rel = 'Owner' & Age <= 24" {
		t.Errorf("String = %q", got)
	}
	if got := And().String(); got != "true" {
		t.Errorf("empty = %q", got)
	}
}

// Property: Eval(p, row) equals evaluating each atom independently.
func TestPredicateEvalMatchesReference(t *testing.T) {
	s := NewSchema(IntCol("x"), IntCol("y"))
	rng := rand.New(rand.NewSource(42))
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for trial := 0; trial < 500; trial++ {
		var atoms []Atom
		n := rng.Intn(4)
		for i := 0; i < n; i++ {
			col := "x"
			if rng.Intn(2) == 0 {
				col = "y"
			}
			atoms = append(atoms, Atom{Col: col, Op: ops[rng.Intn(len(ops))], Val: Int(rng.Int63n(10))})
		}
		p := And(atoms...)
		row := []Value{Int(rng.Int63n(10)), Int(rng.Int63n(10))}
		want := true
		for _, a := range atoms {
			j := 0
			if a.Col == "y" {
				j = 1
			}
			if !a.Op.Apply(row[j], a.Val) {
				want = false
			}
		}
		if got := p.Eval(s, row); got != want {
			t.Fatalf("trial %d: %s on %v: got %v want %v", trial, p, row, got, want)
		}
	}
}
