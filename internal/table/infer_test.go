package table

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadCSVInferredTypes(t *testing.T) {
	in := "pid,Rel,Age,hid\n1,Owner,75,\n2,Spouse,24,\n"
	r, err := ReadCSVInferred(strings.NewReader(in), "Persons")
	if err != nil {
		t.Fatal(err)
	}
	s := r.Schema()
	wantTypes := map[string]Type{"pid": TypeInt, "Rel": TypeString, "Age": TypeInt, "hid": TypeInt}
	for name, want := range wantTypes {
		j, ok := s.Index(name)
		if !ok {
			t.Fatalf("missing column %q", name)
		}
		if s.Col(j).Type != want {
			t.Errorf("column %q type %v, want %v", name, s.Col(j).Type, want)
		}
	}
	if r.Len() != 2 {
		t.Fatalf("rows = %d", r.Len())
	}
	if !r.Value(0, "hid").IsNull() {
		t.Error("empty cell not null")
	}
	if r.Value(1, "Rel") != String("Spouse") {
		t.Errorf("Rel = %v", r.Value(1, "Rel"))
	}
}

// A column whose first value is empty must probe deeper rows for its type.
func TestReadCSVInferredProbesPastEmpties(t *testing.T) {
	in := "a,b\n,x\n7,y\n"
	r, err := ReadCSVInferred(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema().Col(0).Type != TypeInt {
		t.Errorf("a type = %v, want int (probed row 2)", r.Schema().Col(0).Type)
	}
	if r.Schema().Col(1).Type != TypeString {
		t.Errorf("b type = %v", r.Schema().Col(1).Type)
	}
}

func TestReadCSVInferredAllEmptyColumnDefaultsInt(t *testing.T) {
	in := "fk,x\n,a\n,b\n" // fk column entirely empty
	r, err := ReadCSVInferred(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema().Col(0).Type != TypeInt {
		t.Errorf("type = %v", r.Schema().Col(0).Type)
	}
	if r.Len() != 2 || !r.Value(0, "fk").IsNull() {
		t.Errorf("rows: %d", r.Len())
	}
}

func TestReadCSVInferredRoundTripWithWriter(t *testing.T) {
	orig := filledR1()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVInferred(&buf, "Persons")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema().Equal(orig.Schema()) {
		t.Fatalf("schema inferred differently: %v", got.Schema().Names())
	}
	for i := 0; i < orig.Len(); i++ {
		for j := 0; j < orig.Schema().Len(); j++ {
			if got.At(i, j) != orig.At(i, j) {
				t.Errorf("cell (%d,%d): %v vs %v", i, j, got.At(i, j), orig.At(i, j))
			}
		}
	}
}

func TestReadCSVFileInferred(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.csv")
	if err := WriteCSVFile(path, paperR2()); err != nil {
		t.Fatal(err)
	}
	r, err := ReadCSVFileInferred(path, "Housing")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 6 || r.Schema().Col(1).Type != TypeString {
		t.Errorf("inferred: %d rows, %v", r.Len(), r.Schema().Col(1).Type)
	}
	if _, err := ReadCSVFileInferred(filepath.Join(dir, "missing.csv"), "x"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadCSVInferredErrors(t *testing.T) {
	if _, err := ReadCSVInferred(strings.NewReader(""), "t"); err == nil {
		t.Error("empty input accepted")
	}
	// Ragged rows are a csv error.
	if _, err := ReadCSVInferred(strings.NewReader("a,b\n1\n"), "t"); err == nil {
		t.Error("ragged row accepted")
	}
}

// Inference scans the whole column: one non-integer value anywhere makes
// the column a string column instead of failing mid-parse on it.
func TestReadCSVInferredMixedColumnDegradesToString(t *testing.T) {
	r, err := ReadCSVInferred(strings.NewReader("a,b\n1,5\nxyz,6\n"), "t")
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema().Col(0).Type != TypeString {
		t.Errorf("a type = %v, want string (row 2 is not an int)", r.Schema().Col(0).Type)
	}
	if r.Schema().Col(1).Type != TypeInt {
		t.Errorf("b type = %v, want int", r.Schema().Col(1).Type)
	}
	if r.Value(0, "a") != String("1") || r.Value(1, "a") != String("xyz") {
		t.Errorf("a values = %v, %v", r.Value(0, "a"), r.Value(1, "a"))
	}
}
