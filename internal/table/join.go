package table

import "fmt"

// Join computes the foreign-key equi-join r1 ⋈_{fkCol = keyCol} r2. The
// result schema is r1's schema without fkCol, followed by r2's non-key
// columns. Rows of r1 whose FK is null or dangling (no matching key in r2)
// are skipped; for a valid foreign-key dependence every row joins exactly
// once, so |result| == |r1|.
func Join(r1 *Relation, fkCol string, r2 *Relation, keyCol string) (*Relation, error) {
	if !r1.Schema().Has(fkCol) {
		return nil, fmt.Errorf("table: join: %s has no column %q", r1.Name, fkCol)
	}
	if !r2.Schema().Has(keyCol) {
		return nil, fmt.Errorf("table: join: %s has no column %q", r2.Name, keyCol)
	}
	index, err := KeyIndex(r2, keyCol)
	if err != nil {
		return nil, err
	}
	fkIdx := r1.Schema().MustIndex(fkCol)
	keyIdx := r2.Schema().MustIndex(keyCol)

	var r2Cols []Column
	var r2ColIdx []int
	for j := 0; j < r2.Schema().Len(); j++ {
		if j == keyIdx {
			continue
		}
		r2Cols = append(r2Cols, r2.Schema().Col(j))
		r2ColIdx = append(r2ColIdx, j)
	}
	outSchema := r1.Schema().Drop(fkCol).Extend(r2Cols...)
	out := NewRelation(r1.Name+"_join_"+r2.Name, outSchema)
	for i := 0; i < r1.Len(); i++ {
		fk := r1.Row(i)[fkIdx]
		if fk.IsNull() {
			continue
		}
		r2Row, ok := index[fk]
		if !ok {
			continue
		}
		row := make([]Value, 0, outSchema.Len())
		for j, v := range r1.Row(i) {
			if j == fkIdx {
				continue
			}
			row = append(row, v)
		}
		for _, j := range r2ColIdx {
			row = append(row, r2.Row(r2Row)[j])
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// KeyIndex builds a unique index from key value to row position. It returns
// an error on duplicate or null keys, since keyCol must be a primary key.
func KeyIndex(r *Relation, keyCol string) (map[Value]int, error) {
	j, ok := r.Schema().Index(keyCol)
	if !ok {
		return nil, fmt.Errorf("table: %s has no column %q", r.Name, keyCol)
	}
	out := make(map[Value]int, r.Len())
	for i := 0; i < r.Len(); i++ {
		k := r.Row(i)[j]
		if k.IsNull() {
			return nil, fmt.Errorf("table: %s: null key at row %d", r.Name, i)
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("table: %s: duplicate key %v", r.Name, k)
		}
		out[k] = i
	}
	return out, nil
}
