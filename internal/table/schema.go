package table

import "fmt"

// Type is the declared type of a column.
type Type uint8

// The supported column types.
const (
	TypeInt Type = iota
	TypeString
)

func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeString:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Column is a named, typed schema column.
type Column struct {
	Name string
	Type Type
}

// IntCol is shorthand for an integer column.
func IntCol(name string) Column { return Column{Name: name, Type: TypeInt} }

// StrCol is shorthand for a string column.
func StrCol(name string) Column { return Column{Name: name, Type: TypeString} }

// Schema is an ordered list of columns with O(1) name lookup. Schemas are
// immutable after construction; derive new ones with Extend or Project.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from cols. It panics on duplicate column names,
// which always indicates a programming error.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range s.cols {
		if _, dup := s.index[c.Name]; dup {
			panic(fmt.Sprintf("table: duplicate column %q", c.Name))
		}
		s.index[c.Name] = i
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Index returns the position of the named column and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex returns the position of the named column, panicking if absent.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("table: unknown column %q", name))
	}
	return i
}

// Has reports whether the schema contains the named column.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Extend returns a new schema with extra columns appended.
func (s *Schema) Extend(extra ...Column) *Schema {
	return NewSchema(append(s.Columns(), extra...)...)
}

// Project returns a new schema containing only the named columns, in the
// given order. It returns an error if a name is unknown.
func (s *Schema) Project(names ...string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return nil, fmt.Errorf("table: project: unknown column %q", n)
		}
		cols = append(cols, s.cols[i])
	}
	return NewSchema(cols...), nil
}

// Drop returns a new schema without the named columns.
func (s *Schema) Drop(names ...string) *Schema {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	cols := make([]Column, 0, len(s.cols))
	for _, c := range s.cols {
		if !drop[c.Name] {
			cols = append(cols, c)
		}
	}
	return NewSchema(cols...)
}

// Equal reports whether two schemas have identical columns in order.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}
