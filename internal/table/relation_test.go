package table

import (
	"strings"
	"testing"
)

func personsSchema() *Schema {
	return NewSchema(IntCol("pid"), IntCol("Age"), StrCol("Rel"), IntCol("Multi"), IntCol("hid"))
}

// paperR1 builds the Persons relation from Figure 1 with the FK column null.
func paperR1() *Relation {
	r := NewRelation("Persons", personsSchema())
	rows := []struct {
		pid, age int64
		rel      string
		multi    int64
	}{
		{1, 75, "Owner", 0}, {2, 75, "Owner", 1}, {3, 25, "Owner", 0},
		{4, 25, "Owner", 1}, {5, 24, "Spouse", 0}, {6, 10, "Child", 1},
		{7, 10, "Child", 1}, {8, 30, "Owner", 0}, {9, 30, "Owner", 1},
	}
	for _, x := range rows {
		r.MustAppend(Int(x.pid), Int(x.age), String(x.rel), Int(x.multi), Null())
	}
	return r
}

// paperR2 builds the Housing relation from Figure 1.
func paperR2() *Relation {
	r := NewRelation("Housing", NewSchema(IntCol("hid"), StrCol("Area")))
	for hid, area := range map[int64]string{1: "Chicago", 2: "Chicago", 3: "Chicago", 4: "Chicago", 5: "NYC", 6: "NYC"} {
		r.MustAppend(Int(hid), String(area))
	}
	return r
}

func TestSchemaBasics(t *testing.T) {
	s := personsSchema()
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i, ok := s.Index("Rel"); !ok || i != 2 {
		t.Errorf("Index(Rel) = %d, %v", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Error("Index(nope) found")
	}
	if !s.Has("Age") || s.Has("Salary") {
		t.Error("Has misbehaves")
	}
	if got := strings.Join(s.Names(), ","); got != "pid,Age,Rel,Multi,hid" {
		t.Errorf("Names = %s", got)
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate column")
		}
	}()
	NewSchema(IntCol("a"), StrCol("a"))
}

func TestSchemaExtendProjectDrop(t *testing.T) {
	s := NewSchema(IntCol("a"), StrCol("b"))
	e := s.Extend(IntCol("c"))
	if e.Len() != 3 || !e.Has("c") {
		t.Errorf("Extend: %v", e.Names())
	}
	if s.Len() != 2 {
		t.Error("Extend mutated receiver")
	}
	p, err := s.Project("b")
	if err != nil || p.Len() != 1 || p.Col(0).Name != "b" {
		t.Errorf("Project: %v, %v", p, err)
	}
	if _, err := s.Project("zzz"); err == nil {
		t.Error("Project(zzz) succeeded")
	}
	d := e.Drop("b")
	if d.Len() != 2 || d.Has("b") {
		t.Errorf("Drop: %v", d.Names())
	}
}

func TestSchemaEqual(t *testing.T) {
	a := NewSchema(IntCol("x"), StrCol("y"))
	b := NewSchema(IntCol("x"), StrCol("y"))
	c := NewSchema(StrCol("x"), StrCol("y"))
	if !a.Equal(b) {
		t.Error("a != b")
	}
	if a.Equal(c) {
		t.Error("a == c despite type change")
	}
	if a.Equal(NewSchema(IntCol("x"))) {
		t.Error("a == shorter schema")
	}
}

func TestAppendValidation(t *testing.T) {
	r := NewRelation("t", NewSchema(IntCol("a"), StrCol("b")))
	if err := r.Append(Int(1), String("x")); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(Int(1)); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := r.Append(String("x"), String("y")); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := r.Append(Null(), Null()); err != nil {
		t.Errorf("nulls rejected: %v", err)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestValueSetAndClone(t *testing.T) {
	r := paperR1()
	if got := r.Value(0, "Age"); got != Int(75) {
		t.Errorf("Value(0,Age) = %v", got)
	}
	c := r.Clone()
	c.Set(0, "Age", Int(99))
	if r.Value(0, "Age") != Int(75) {
		t.Error("Clone shares row storage")
	}
	if c.Value(0, "Age") != Int(99) {
		t.Error("Set on clone failed")
	}
}

func TestSelectAndCount(t *testing.T) {
	r := paperR1()
	owners := And(Eq("Rel", String("Owner")))
	if got := r.Count(owners); got != 6 {
		t.Errorf("Count(owners) = %d, want 6", got)
	}
	young := And(Atom{Col: "Age", Op: OpLe, Val: Int(24)})
	idx := r.Select(young)
	if len(idx) != 3 {
		t.Errorf("Select(age<=24) = %v", idx)
	}
	// Compound predicate.
	p := And(Eq("Rel", String("Owner")), Atom{Col: "Multi", Op: OpEq, Val: Int(1)})
	if got := r.Count(p); got != 3 {
		t.Errorf("Count(owner&multi) = %d, want 3", got)
	}
	// Null FK never matches.
	if got := r.Count(And(Eq("hid", Int(1)))); got != 0 {
		t.Errorf("Count(hid=1) over null column = %d", got)
	}
}

func TestProject(t *testing.T) {
	r := paperR1()
	p, err := r.Project("Rel", "Age")
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema().Len() != 2 || p.Len() != r.Len() {
		t.Fatalf("Project shape: %d cols %d rows", p.Schema().Len(), p.Len())
	}
	if p.Value(0, "Rel") != String("Owner") || p.Value(0, "Age") != Int(75) {
		t.Errorf("Project row 0: %v", p.Row(0))
	}
}

func TestDistinctValues(t *testing.T) {
	r := paperR1()
	ages := r.DistinctValues("Age")
	want := []int64{10, 24, 25, 30, 75}
	if len(ages) != len(want) {
		t.Fatalf("distinct ages = %v", ages)
	}
	for i, w := range want {
		if ages[i] != Int(w) {
			t.Errorf("ages[%d] = %v, want %d", i, ages[i], w)
		}
	}
	// Null column yields no values.
	if got := r.DistinctValues("hid"); len(got) != 0 {
		t.Errorf("DistinctValues(hid) = %v", got)
	}
}

func TestDistinctRowsCounts(t *testing.T) {
	r := paperR1()
	combos, counts := r.DistinctRows("Rel", "Multi")
	// Owner/0 x3, Owner/1 x3, Spouse/0 x1, Child/1 x2.
	if len(combos) != 4 {
		t.Fatalf("combos = %v", combos)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != r.Len() {
		t.Errorf("counts sum to %d, want %d", total, r.Len())
	}
	byKey := make(map[string]int)
	for i, c := range combos {
		byKey[EncodeKey(c...)] = counts[i]
	}
	if byKey[EncodeKey(String("Child"), Int(1))] != 2 {
		t.Errorf("Child/1 count = %d", byKey[EncodeKey(String("Child"), Int(1))])
	}
}

func TestGroupByAndKeyOf(t *testing.T) {
	r := paperR1()
	groups := r.GroupBy("Rel")
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	k := r.KeyOf(0, "Rel")
	if len(groups[k]) != 6 {
		t.Errorf("owner group size = %d", len(groups[k]))
	}
}

func TestEncodeKeyDistinguishesKindAndBoundary(t *testing.T) {
	if EncodeKey(Int(1)) == EncodeKey(String("1")) {
		t.Error("int/string collision")
	}
	if EncodeKey(String("ab"), String("c")) == EncodeKey(String("a"), String("bc")) {
		t.Error("boundary collision")
	}
	if EncodeKey(Null()) == EncodeKey(Int(0)) {
		t.Error("null/zero collision")
	}
}

func TestHasNullIn(t *testing.T) {
	r := paperR1()
	if !r.HasNullIn(0, "hid") {
		t.Error("hid should be null")
	}
	if r.HasNullIn(0, "Age", "Rel") {
		t.Error("Age/Rel are non-null")
	}
}

func TestStringRendering(t *testing.T) {
	r := paperR1()
	s := r.String()
	if !strings.Contains(s, "Persons (9 rows)") || !strings.Contains(s, "Owner") {
		t.Errorf("render: %s", s)
	}
	// Null renders as "?".
	if !strings.Contains(s, "?") {
		t.Error("missing ? for null cell")
	}
}

// TestWriteCSVNullAndIntRendering pins the CSV cell rendering the buffered
// writer path must preserve: ints in decimal, strings verbatim, nulls as
// empty fields.
func TestWriteCSVNullAndIntRendering(t *testing.T) {
	r := NewRelation("R", NewSchema(IntCol("a"), StrCol("b")))
	r.MustAppend(Int(-7), String("x,y"))
	r.MustAppend(Null(), Null())
	var buf strings.Builder
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n-7,\"x,y\"\n,\n"
	if buf.String() != want {
		t.Fatalf("WriteCSV = %q, want %q", buf.String(), want)
	}
}
