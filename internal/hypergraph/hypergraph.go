// Package hypergraph implements the conflict hypergraph (Def. 5.1) and the
// greedy largest-first list-coloring heuristic of Algorithm 3. Vertices
// stand for R1 tuples, hyperedges for tuple sets that would violate some
// foreign-key DC if assigned one FK value, and colors for candidate FK
// values.
package hypergraph

import "sort"

// pairBitmapCap bounds the vertex count for which pair dedup uses a dense
// n×n bitmap (≤ 8 KiB) instead of a hash map; conflict partitions are
// almost always small, so the common case never hashes.
const pairBitmapCap = 256

// Graph is a hypergraph over vertices 0..N-1.
type Graph struct {
	n        int
	edges    [][]int         // each edge is a sorted vertex set of size >= 2
	inc      [][]int         // inc[v] = indices of edges containing v
	pairBits []uint64        // dense pair dedup when n <= pairBitmapCap
	pairSeen map[uint64]bool // sparse pair dedup otherwise, packed lo<<32|hi
	pairBuf  []int           // chunked backing storage for 2-vertex edges
	seen     map[string]bool // dedup for larger edges (lazily allocated)
}

// New creates an empty hypergraph with n vertices.
func New(n int) *Graph {
	g := &Graph{n: n, inc: make([][]int, n)}
	if n <= pairBitmapCap {
		g.pairBits = make([]uint64, (n*n+63)/64)
	} else {
		g.pairSeen = make(map[uint64]bool)
	}
	return g
}

// N returns the vertex count.
func (g *Graph) N() int { return g.n }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the i-th edge (sorted vertex set). Callers must not mutate.
func (g *Graph) Edge(i int) []int { return g.edges[i] }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.inc[v]) }

// Incident returns the edge indices incident to v. Callers must not mutate.
func (g *Graph) Incident(v int) []int { return g.inc[v] }

// AddEdge inserts an edge over the given vertices. Edges with repeated
// vertices are normalized by deduplication; edges of size < 2 after
// normalization, and duplicate edges, are ignored. Returns whether an edge
// was added.
func (g *Graph) AddEdge(vs ...int) bool {
	if len(vs) == 2 {
		return g.AddPair(vs[0], vs[1])
	}
	set := append([]int(nil), vs...)
	sort.Ints(set)
	w := 0
	for i, v := range set {
		if i == 0 || v != set[i-1] {
			set[w] = v
			w++
		}
	}
	set = set[:w]
	if len(set) < 2 {
		return false
	}
	if len(set) == 2 {
		return g.addSortedPair(set[0], set[1])
	}
	key := edgeKey(set)
	if g.seen[key] {
		return false
	}
	if g.seen == nil {
		g.seen = make(map[string]bool)
	}
	g.seen[key] = true
	g.record(set)
	return true
}

// AddPair is AddEdge specialized to the dominant 2-vertex case: no variadic
// slice, no sort, and integer-keyed dedup instead of a string key.
func (g *Graph) AddPair(a, b int) bool {
	if a == b {
		return false
	}
	if a > b {
		a, b = b, a
	}
	return g.addSortedPair(a, b)
}

func (g *Graph) addSortedPair(a, b int) bool {
	if g.pairBits != nil {
		bit := uint(a*g.n + b)
		if g.pairBits[bit/64]&(1<<(bit%64)) != 0 {
			return false
		}
		g.pairBits[bit/64] |= 1 << (bit % 64)
	} else {
		key := uint64(uint32(a))<<32 | uint64(uint32(b))
		if g.pairSeen[key] {
			return false
		}
		g.pairSeen[key] = true
	}
	// Pair edges are carved out of chunked backing storage instead of one
	// 2-element allocation each.
	if cap(g.pairBuf)-len(g.pairBuf) < 2 {
		g.pairBuf = make([]int, 0, 512)
	}
	g.pairBuf = append(g.pairBuf, a, b)
	g.record(g.pairBuf[len(g.pairBuf)-2 : len(g.pairBuf) : len(g.pairBuf)])
	return true
}

func (g *Graph) record(set []int) {
	id := len(g.edges)
	g.edges = append(g.edges, set)
	for _, v := range set {
		g.inc[v] = append(g.inc[v], id)
	}
}

func edgeKey(set []int) string {
	b := make([]byte, 0, len(set)*4)
	for _, v := range set {
		for v >= 0x80 {
			b = append(b, byte(v)|0x80)
			v >>= 7
		}
		b = append(b, byte(v), 0xff)
	}
	return string(b)
}

// Uncolored marks a vertex without a color in a Coloring.
const Uncolored = -1

// Coloring maps each vertex to a palette index, or Uncolored.
type Coloring []int

// NewColoring returns an all-uncolored coloring for n vertices.
func NewColoring(n int) Coloring {
	c := make(Coloring, n)
	for i := range c {
		c[i] = Uncolored
	}
	return c
}

// Proper reports whether the (partial) coloring violates no edge: an edge
// is violated when all of its vertices are colored with one color.
func (g *Graph) Proper(c Coloring) bool {
	for _, e := range g.edges {
		col := c[e[0]]
		if col == Uncolored {
			continue
		}
		mono := true
		for _, v := range e[1:] {
			if c[v] != col {
				mono = false
				break
			}
		}
		if mono {
			return false
		}
	}
	return true
}

// ColoringLF is Algorithm 3: greedy largest-first list coloring. It colors
// the vertices of g that are uncolored in c, in non-increasing degree order,
// assigning each the smallest color from its allowed list that is not
// forbidden. A color is forbidden for v when some incident edge has all its
// other vertices already colored with that color. Vertices whose entire
// list is forbidden are skipped and returned.
//
// allowed(v) returns the palette indices permitted for v, in preference
// order; the same slice may be shared between vertices. c is updated in
// place and also returned.
func (g *Graph) ColoringLF(c Coloring, allowed func(v int) []int) (Coloring, []int) {
	order := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if c[v] == Uncolored {
			order = append(order, v)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})

	var skipped []int
	forbidden := make(map[int]bool)
	for _, v := range order {
		clear(forbidden)
		for _, ei := range g.inc[v] {
			col := Uncolored
			mono := true
			for _, u := range g.edges[ei] {
				if u == v {
					continue
				}
				cu := c[u]
				if cu == Uncolored {
					mono = false
					break
				}
				if col == Uncolored {
					col = cu
				} else if col != cu {
					mono = false
					break
				}
			}
			if mono && col != Uncolored {
				forbidden[col] = true
			}
		}
		assigned := false
		for _, col := range allowed(v) {
			if !forbidden[col] {
				c[v] = col
				assigned = true
				break
			}
		}
		if !assigned {
			skipped = append(skipped, v)
		}
	}
	return c, skipped
}

// ColoringInputOrder is the ablation variant of Algorithm 3 that visits the
// uncolored vertices in index order instead of by descending degree.
func (g *Graph) ColoringInputOrder(c Coloring, allowed func(v int) []int) (Coloring, []int) {
	var skipped []int
	forbidden := make(map[int]bool)
	for v := 0; v < g.n; v++ {
		if c[v] != Uncolored {
			continue
		}
		clear(forbidden)
		for _, ei := range g.inc[v] {
			col := Uncolored
			mono := true
			for _, u := range g.edges[ei] {
				if u == v {
					continue
				}
				cu := c[u]
				if cu == Uncolored {
					mono = false
					break
				}
				if col == Uncolored {
					col = cu
				} else if col != cu {
					mono = false
					break
				}
			}
			if mono && col != Uncolored {
				forbidden[col] = true
			}
		}
		assigned := false
		for _, col := range allowed(v) {
			if !forbidden[col] {
				c[v] = col
				assigned = true
				break
			}
		}
		if !assigned {
			skipped = append(skipped, v)
		}
	}
	return c, skipped
}
