package hypergraph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// graphFromSpec builds a graph over n vertices from an opaque edge spec.
func graphFromSpec(n int, spec []uint16) *Graph {
	g := New(n)
	for i := 0; i+1 < len(spec); i += 2 {
		a, b := int(spec[i])%n, int(spec[i+1])%n
		if a != b {
			g.AddEdge(a, b)
		}
	}
	return g
}

// Property: ColoringLF output is always proper, every assigned color comes
// from the allowed list, and degree sums equal 2x the edge count.
func TestQuickColoringProper(t *testing.T) {
	f := func(spec []uint16, paletteSize uint8) bool {
		n := 12
		g := graphFromSpec(n, spec)
		k := int(paletteSize)%6 + 1
		palette := make([]int, k)
		for i := range palette {
			palette[i] = i
		}
		c, skipped := g.ColoringLF(NewColoring(n), func(int) []int { return palette })
		if !g.Proper(c) {
			return false
		}
		for v, col := range c {
			if col == Uncolored {
				found := false
				for _, s := range skipped {
					if s == v {
						found = true
					}
				}
				if !found {
					return false // uncolored vertex not reported skipped
				}
				continue
			}
			if col < 0 || col >= k {
				return false
			}
		}
		degSum := 0
		for v := 0; v < n; v++ {
			degSum += g.Degree(v)
		}
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: AddEdge is idempotent — inserting the same edge set twice in
// any order yields identical graphs.
func TestQuickAddEdgeIdempotent(t *testing.T) {
	f := func(spec []uint16) bool {
		n := 10
		if len(spec)%2 == 1 {
			spec = spec[:len(spec)-1] // keep pairs aligned when duplicated
		}
		g1 := graphFromSpec(n, spec)
		g2 := graphFromSpec(n, append(append([]uint16(nil), spec...), spec...))
		if g1.NumEdges() != g2.NumEdges() {
			return false
		}
		for i := 0; i < g1.NumEdges(); i++ {
			if !reflect.DeepEqual(g1.Edge(i), g2.Edge(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a second ColoringLF pass over the skipped vertices with a
// disjoint fresh palette always completes the coloring (the Algorithm 4
// repair step), for any graph whose edges are binary.
func TestQuickFreshColorsAlwaysRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(14)
		g := New(n)
		for e := 0; e < rng.Intn(3*n); e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddEdge(a, b)
			}
		}
		base := []int{0}
		c, skipped := g.ColoringLF(NewColoring(n), func(int) []int { return base })
		fresh := make([]int, len(skipped))
		for i := range fresh {
			fresh[i] = i + 1
		}
		c, left := g.ColoringLF(c, func(int) []int { return fresh })
		if len(left) != 0 {
			t.Fatalf("trial %d: repair left %d vertices", trial, len(left))
		}
		if !g.Proper(c) {
			t.Fatalf("trial %d: improper after repair", trial)
		}
	}
}
