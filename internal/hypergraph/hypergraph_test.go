package hypergraph

import (
	"math/rand"
	"reflect"
	"testing"
)

func allow(cols ...int) func(int) []int {
	return func(int) []int { return cols }
}

func TestAddEdgeDedupAndNormalize(t *testing.T) {
	g := New(4)
	if !g.AddEdge(2, 0) {
		t.Error("first edge rejected")
	}
	if g.AddEdge(0, 2) {
		t.Error("duplicate edge accepted")
	}
	if g.AddEdge(1, 1) {
		t.Error("self loop accepted")
	}
	if !g.AddEdge(1, 2, 3) {
		t.Error("hyperedge rejected")
	}
	if g.AddEdge(3, 2, 1, 1) {
		t.Error("duplicate hyperedge accepted")
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	if !reflect.DeepEqual(g.Edge(0), []int{0, 2}) {
		t.Errorf("edge 0 = %v", g.Edge(0))
	}
	if g.Degree(2) != 2 || g.Degree(0) != 1 {
		t.Errorf("degrees: %d %d", g.Degree(2), g.Degree(0))
	}
}

// TestFigure7Coloring reproduces Example 5.3: the Chicago partition of the
// paper's running example. Vertices 0..6 stand for pids 1..7. Edges: owners
// {0,1},{0,2},{0,3},{1,2},{1,3},{2,3}; spouse/owner age gap {1,4} (spouse 24
// vs owner 75); child constraints {1,5},{1,6} (multi-ling owner 75 with
// child 10 violates the upper age-gap DC), and {3,5},{3,6}? No: owner pid4
// is 25 years old, child age 10 is within [A-50, A-12] = [-25,13]; 10 <= 13
// so no conflict. The candidate colors are hids 1..4 (palette 0..3).
func TestFigure7Coloring(t *testing.T) {
	g := New(7)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j) // owner-owner clique
		}
	}
	g.AddEdge(1, 4) // owner 75 (multi) with spouse 24: 24 < 75-50
	g.AddEdge(0, 4) // owner 75 (pid1) with spouse 24
	g.AddEdge(1, 5) // multi-ling owner 75 with child 10: 10 > 75-12 is false; 10 < 75-50=25 true
	g.AddEdge(1, 6)
	c, skipped := g.ColoringLF(NewColoring(7), allow(0, 1, 2, 3))
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v", skipped)
	}
	if !g.Proper(c) {
		t.Fatalf("improper coloring %v", c)
	}
	// The four owners must use all four distinct colors.
	seen := map[int]bool{}
	for v := 0; v < 4; v++ {
		if seen[c[v]] {
			t.Errorf("owners share color: %v", c[:4])
		}
		seen[c[v]] = true
	}
}

func TestColoringRespectsAllowedLists(t *testing.T) {
	// Path 0-1-2 with lists {0}, {0,1}, {1}. Largest-first colors v1 (deg 2)
	// first with 0; v0's whole list {0} is then forbidden, so v0 is skipped
	// — exactly the situation Algorithm 4 repairs with fresh colors.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	lists := [][]int{{0}, {0, 1}, {1}}
	c, skipped := g.ColoringLF(NewColoring(3), func(v int) []int { return lists[v] })
	if len(skipped) != 1 || skipped[0] != 0 {
		t.Fatalf("skipped = %v, want [0]", skipped)
	}
	for v, col := range c {
		if col == Uncolored {
			continue
		}
		okCol := false
		for _, a := range lists[v] {
			if a == col {
				okCol = true
			}
		}
		if !okCol {
			t.Errorf("v%d got color %d outside its list", v, col)
		}
	}
	if !g.Proper(c) {
		t.Error("improper")
	}
	if c[1] != 0 {
		t.Errorf("c[1] = %d, want 0 (largest-first, smallest color)", c[1])
	}
}

func TestColoringSkipsWhenListExhausted(t *testing.T) {
	// Triangle with a single shared color: two vertices must be skipped.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	c, skipped := g.ColoringLF(NewColoring(3), allow(0))
	if len(skipped) != 2 {
		t.Fatalf("skipped = %v, want 2 vertices", skipped)
	}
	if !g.Proper(c) {
		t.Error("improper partial coloring")
	}
	// Second pass with fresh colors colors the rest (Algorithm 4 lines 11-12).
	c, skipped = g.ColoringLF(c, allow(1, 2))
	if len(skipped) != 0 {
		t.Fatalf("second pass skipped = %v", skipped)
	}
	if !g.Proper(c) {
		t.Error("improper final coloring")
	}
}

func TestColoringExtendsPartial(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := NewColoring(3)
	c[0] = 5
	c, skipped := g.ColoringLF(c, allow(5, 6))
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v", skipped)
	}
	if c[0] != 5 {
		t.Error("pre-colored vertex changed")
	}
	if c[1] != 6 {
		t.Errorf("c[1] = %d, want 6", c[1])
	}
}

func TestHyperedgeSemantics(t *testing.T) {
	// A 3-edge forbids all-same color but allows two-same.
	g := New(3)
	g.AddEdge(0, 1, 2)
	c, skipped := g.ColoringLF(NewColoring(3), allow(0, 1))
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v", skipped)
	}
	if !g.Proper(c) {
		t.Fatal("improper")
	}
	// With one color only, the third vertex must be skipped.
	c2, skipped2 := g.ColoringLF(NewColoring(3), allow(0))
	if len(skipped2) != 1 {
		t.Errorf("skipped = %v, want 1", skipped2)
	}
	if !g.Proper(c2) {
		t.Error("improper")
	}
}

func TestProper(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	c := Coloring{0, 0}
	if g.Proper(c) {
		t.Error("monochromatic edge accepted")
	}
	c[1] = 1
	if !g.Proper(c) {
		t.Error("bichromatic edge rejected")
	}
	// Partially colored edges are never violations.
	if !g.Proper(Coloring{0, Uncolored}) {
		t.Error("partial edge flagged")
	}
}

func TestLargestFirstOrder(t *testing.T) {
	// A star: center degree 3, leaves degree 1. Largest-first colors the
	// center first with the smallest color.
	g := New(4)
	g.AddEdge(0, 3)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	c, _ := g.ColoringLF(NewColoring(4), allow(0, 1))
	if c[3] != 0 {
		t.Errorf("center color = %d, want 0 (colored first)", c[3])
	}
	for v := 0; v < 3; v++ {
		if c[v] != 1 {
			t.Errorf("leaf %d color = %d, want 1", v, c[v])
		}
	}
}

// Property: on random graphs with enough colors (max degree + 1), greedy
// list coloring never skips and is always proper.
func TestRandomGreedyAlwaysProperWithEnoughColors(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(30)
		g := New(n)
		ne := rng.Intn(3 * n)
		for k := 0; k < ne; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddEdge(a, b)
			}
		}
		maxDeg := 0
		for v := 0; v < n; v++ {
			if g.Degree(v) > maxDeg {
				maxDeg = g.Degree(v)
			}
		}
		palette := make([]int, maxDeg+1)
		for i := range palette {
			palette[i] = i
		}
		c, skipped := g.ColoringLF(NewColoring(n), func(int) []int { return palette })
		if len(skipped) != 0 {
			t.Fatalf("trial %d: skipped with %d colors, max degree %d", trial, len(palette), maxDeg)
		}
		if !g.Proper(c) {
			t.Fatalf("trial %d: improper", trial)
		}
	}
}

// Property: input-order variant is also proper (may skip more).
func TestInputOrderProper(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		g := New(n)
		for k := 0; k < 2*n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddEdge(a, b)
			}
		}
		c, _ := g.ColoringInputOrder(NewColoring(n), allow(0, 1, 2))
		if !g.Proper(c) {
			t.Fatalf("trial %d: improper", trial)
		}
	}
}
