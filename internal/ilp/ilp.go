// Package ilp implements a small integer linear programming solver on top
// of the simplex package: branch and bound over the LP relaxation, with an
// L1-deviation ("soft constraint") objective so that unsatisfiable
// cardinality-constraint systems degrade into minimum-error solutions
// instead of failing — exactly the behaviour the paper relies on when it
// reports nonzero CC error for bad constraint sets.
package ilp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/simplex"
)

// Sense mirrors simplex row senses for hard constraints.
type Sense = simplex.Sense

// Constraint senses (re-exported for callers).
const (
	LE = simplex.LE
	EQ = simplex.EQ
	GE = simplex.GE
)

// Term is one coefficient of a constraint.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a linear constraint over the integer variables. A Soft
// constraint must have sense EQ; it is relaxed with a pair of deviation
// variables whose total is charged Weight per unit in the objective. Hard
// constraints must hold exactly.
type Constraint struct {
	Terms  []Term
	Sense  Sense
	RHS    float64
	Soft   bool
	Weight float64 // deviation penalty for soft rows; 0 means 1
}

// Problem is an integer program: all NumVars variables are non-negative
// integers, the objective is the weighted L1 deviation of the soft rows
// (plus VarCost·x if set).
type Problem struct {
	NumVars int
	Cons    []Constraint
	VarCost []float64 // optional per-variable linear cost; may be nil
}

// Options bound the search effort. Under SolveBlocks, MaxNodes and
// MaxIters apply per independent block while TimeLimit is apportioned
// across the blocks in proportion to their variable counts, bounding the
// whole decomposed solve.
type Options struct {
	MaxNodes  int           // branch-and-bound node budget (0 = 10000)
	MaxIters  int           // simplex pivots per LP (0 = auto)
	TimeLimit time.Duration // wall-clock budget (0 = none)
}

// Status reports how the solution was obtained.
type Status int8

// Solution statuses.
const (
	// StatusOptimal: branch and bound proved optimality.
	StatusOptimal Status = iota
	// StatusFeasible: an integral solution was found but the search budget
	// expired before proving optimality.
	StatusFeasible
	// StatusRounded: no integral solution was found in budget; the returned
	// X is the floor-rounding of the best LP relaxation (never exceeds LE
	// capacities, may undershoot targets).
	StatusRounded
	// StatusInfeasible: the hard constraints are unsatisfiable.
	StatusInfeasible
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusRounded:
		return "rounded"
	case StatusInfeasible:
		return "infeasible"
	default:
		return "unknown"
	}
}

// Solution is the solver output.
type Solution struct {
	Status Status
	X      []int64
	Obj    float64 // total weighted deviation (+ VarCost part)
	Nodes  int
	Iters  int
}

const intTol = 1e-6

// Solve runs branch and bound. It always returns a usable X (except for
// StatusInfeasible), because phase I of the paper's algorithm needs *some*
// assignment even when CC targets conflict.
func Solve(p *Problem, opt Options) (*Solution, error) {
	if p.NumVars < 0 {
		return nil, fmt.Errorf("ilp: negative NumVars")
	}
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 10000
	}
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		// A nonzero TimeLimit is the solver's one documented determinism
		// carve-out (see core/fingerprint.go and Options.TimeLimit): hitting
		// the deadline truncates the search, so results may vary with host
		// speed. Callers who need byte-stable output leave TimeLimit at 0,
		// which keeps this branch — and the clock — out of the solve.
		deadline = time.Now().Add(opt.TimeLimit) //lint:wallclock TimeLimit>0 is the documented determinism carve-out; zero TimeLimit never reads the clock
	}

	base, err := buildLP(p)
	if err != nil {
		return nil, err
	}

	sol := &Solution{Status: StatusInfeasible, Obj: math.Inf(1)}
	// Depth-first stack of nodes; each node is a set of extra bound rows on
	// structural variables.
	type bound struct {
		v     int
		sense Sense
		b     float64
	}
	type node struct {
		bounds []bound
	}
	stack := []node{{}}
	var bestLPX []float64
	bestLPObj := math.Inf(1)

	for len(stack) > 0 {
		if sol.Nodes >= opt.MaxNodes || (!deadline.IsZero() && time.Now().After(deadline)) { //lint:wallclock deadline is only nonzero under the documented TimeLimit carve-out
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sol.Nodes++

		lp := *base
		lp.Rows = append(append([]simplex.Row(nil), base.Rows...), nil...)
		for _, bd := range nd.bounds {
			lp.Rows = append(lp.Rows, simplex.Row{Coefs: []simplex.Nz{{Var: bd.v, Coef: 1}}, Sense: bd.sense, B: bd.b})
		}
		res, err := simplex.Solve(&lp, opt.MaxIters)
		if err != nil {
			return nil, err
		}
		sol.Iters += res.Iters
		if res.Status == simplex.Infeasible {
			continue
		}
		if res.Status == simplex.Unbounded {
			return nil, fmt.Errorf("ilp: relaxation unbounded (missing capacity constraints?)")
		}
		if res.Status == simplex.IterLimit {
			continue // treat as unexplorable
		}
		if res.Obj >= sol.Obj-1e-9 {
			continue // bound prune
		}
		if res.Obj < bestLPObj {
			bestLPObj = res.Obj
			bestLPX = res.X
		}
		// Find most fractional structural variable.
		branchVar, fracDist := -1, intTol
		for j := 0; j < p.NumVars; j++ {
			f := res.X[j] - math.Floor(res.X[j])
			d := math.Min(f, 1-f)
			if d > fracDist {
				fracDist = d
				branchVar = j
			}
		}
		if branchVar < 0 {
			// Integral solution.
			x := roundX(res.X[:p.NumVars])
			obj := evalObj(p, x)
			if obj < sol.Obj-1e-9 {
				sol.Obj = obj
				sol.X = x
				sol.Status = StatusOptimal
				if obj <= 1e-9 {
					break // cannot do better than zero deviation
				}
			}
			continue
		}
		v := res.X[branchVar]
		// Explore the "floor" branch first: CC systems usually have
		// near-integral relaxations, so floor tends to reach an incumbent
		// quickly.
		up := append(append([]bound(nil), nd.bounds...), bound{v: branchVar, sense: GE, b: math.Ceil(v)})
		down := append(append([]bound(nil), nd.bounds...), bound{v: branchVar, sense: LE, b: math.Floor(v)})
		stack = append(stack, node{bounds: up}, node{bounds: down})
	}

	if sol.X == nil {
		if bestLPX == nil {
			sol.Status = StatusInfeasible
			return sol, nil
		}
		// Round the relaxation down; floors never violate LE capacities.
		x := make([]int64, p.NumVars)
		for j := 0; j < p.NumVars; j++ {
			x[j] = int64(math.Floor(bestLPX[j] + intTol))
			if x[j] < 0 {
				x[j] = 0
			}
		}
		sol.X = x
		sol.Obj = evalObj(p, x)
		sol.Status = StatusRounded
		return sol, nil
	}
	if sol.Status == StatusOptimal && (sol.Nodes >= opt.MaxNodes || (!deadline.IsZero() && time.Now().After(deadline))) && len(stack) > 0 { //lint:wallclock deadline is only nonzero under the documented TimeLimit carve-out
		sol.Status = StatusFeasible // budget expired with nodes left
	}
	return sol, nil
}

// buildLP converts the integer program into the relaxation LP: structural
// variables first, then a (s⁺, s⁻) deviation pair per soft row.
func buildLP(p *Problem) (*simplex.LP, error) {
	nSoft := 0
	for i, c := range p.Cons {
		if c.Soft {
			if c.Sense != EQ {
				return nil, fmt.Errorf("ilp: soft constraint %d must have sense EQ", i)
			}
			nSoft++
		}
	}
	lp := &simplex.LP{
		NumVars: p.NumVars + 2*nSoft,
		C:       make([]float64, p.NumVars+2*nSoft),
	}
	copy(lp.C, p.VarCost)
	devCol := p.NumVars
	for _, c := range p.Cons {
		row := simplex.Row{Sense: c.Sense, B: c.RHS}
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= p.NumVars {
				return nil, fmt.Errorf("ilp: term references var %d out of range", t.Var)
			}
			row.Coefs = append(row.Coefs, simplex.Nz{Var: t.Var, Coef: t.Coef})
		}
		if c.Soft {
			w := c.Weight
			if w == 0 {
				w = 1
			}
			// terms + s⁺ − s⁻ = rhs
			row.Coefs = append(row.Coefs, simplex.Nz{Var: devCol, Coef: 1}, simplex.Nz{Var: devCol + 1, Coef: -1})
			lp.C[devCol] = w
			lp.C[devCol+1] = w
			devCol += 2
		}
		lp.Rows = append(lp.Rows, row)
	}
	return lp, nil
}

func roundX(x []float64) []int64 {
	out := make([]int64, len(x))
	for j, v := range x {
		out[j] = int64(math.Round(v))
		if out[j] < 0 {
			out[j] = 0
		}
	}
	return out
}

// evalObj computes the true objective of an integral assignment: weighted
// L1 deviation over soft rows plus the optional variable cost.
func evalObj(p *Problem, x []int64) float64 {
	obj := 0.0
	for j, c := range p.VarCost {
		obj += c * float64(x[j])
	}
	for _, c := range p.Cons {
		if !c.Soft {
			continue
		}
		lhs := 0.0
		for _, t := range c.Terms {
			lhs += t.Coef * float64(x[t.Var])
		}
		w := c.Weight
		if w == 0 {
			w = 1
		}
		obj += w * math.Abs(lhs-c.RHS)
	}
	return obj
}

// CheckHard verifies that an assignment satisfies every hard constraint
// within tolerance; used by tests and by callers in debug paths.
func CheckHard(p *Problem, x []int64) error {
	for i, c := range p.Cons {
		if c.Soft {
			continue
		}
		lhs := 0.0
		for _, t := range c.Terms {
			lhs += t.Coef * float64(x[t.Var])
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+1e-6 {
				return fmt.Errorf("ilp: hard row %d violated: %v > %v", i, lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-1e-6 {
				return fmt.Errorf("ilp: hard row %d violated: %v < %v", i, lhs, c.RHS)
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > 1e-6 {
				return fmt.Errorf("ilp: hard row %d violated: %v != %v", i, lhs, c.RHS)
			}
		}
	}
	return nil
}
