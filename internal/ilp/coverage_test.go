package ilp

import (
	"math"
	"testing"

	"repro/internal/simplex"
)

func TestCheckHardAllSenses(t *testing.T) {
	p := &Problem{
		NumVars: 1,
		Cons: []Constraint{
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 5},
			{Terms: []Term{{0, 1}}, Sense: GE, RHS: 1},
			{Terms: []Term{{0, 1}}, Sense: EQ, RHS: 3},
			{Terms: []Term{{0, 1}}, Sense: EQ, RHS: 99, Soft: true}, // ignored by CheckHard
		},
	}
	if err := CheckHard(p, []int64{3}); err != nil {
		t.Errorf("x=3 should satisfy: %v", err)
	}
	if err := CheckHard(p, []int64{6}); err == nil {
		t.Error("LE violation accepted")
	}
	if err := CheckHard(p, []int64{0}); err == nil {
		t.Error("GE violation accepted")
	}
	p2 := &Problem{NumVars: 1, Cons: []Constraint{{Terms: []Term{{0, 1}}, Sense: EQ, RHS: 3}}}
	if err := CheckHard(p2, []int64{4}); err == nil {
		t.Error("EQ violation accepted")
	}
}

func TestStatusStrings(t *testing.T) {
	want := map[Status]string{
		StatusOptimal: "optimal", StatusFeasible: "feasible",
		StatusRounded: "rounded", StatusInfeasible: "infeasible",
		Status(99): "unknown",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("%d.String() = %q", s, got)
		}
	}
}

func TestNegativeNumVars(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: -1}, Options{}); err == nil {
		t.Error("negative NumVars accepted")
	}
}

func TestEvalObjWithVarCostAndWeights(t *testing.T) {
	p := &Problem{
		NumVars: 2,
		VarCost: []float64{2, 0},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: EQ, RHS: 10, Soft: true, Weight: 3},
		},
	}
	// x = (1, 4): varcost 2, deviation |5-10|*3 = 15 -> 17.
	if got := evalObj(p, []int64{1, 4}); math.Abs(got-17) > 1e-12 {
		t.Errorf("evalObj = %v, want 17", got)
	}
}

func TestRoundXClampsNegatives(t *testing.T) {
	got := roundX([]float64{-0.4, 0.6, 2.49})
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("roundX = %v", got)
	}
}

// A zero-deviation incumbent triggers the early break; the solver must
// still report optimal.
func TestEarlyExitOnZeroDeviation(t *testing.T) {
	p := &Problem{
		NumVars: 3,
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}, {2, 1}}, Sense: EQ, RHS: 6, Soft: true},
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 6},
			{Terms: []Term{{1, 1}}, Sense: LE, RHS: 6},
			{Terms: []Term{{2, 1}}, Sense: LE, RHS: 6},
		},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal || s.Obj != 0 {
		t.Errorf("status %v obj %v", s.Status, s.Obj)
	}
}

// SimplexIterLimit inside a node is treated as unexplorable, not fatal.
func TestSimplexIterLimitTolerated(t *testing.T) {
	p := &Problem{
		NumVars: 4,
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, Sense: EQ, RHS: 11, Soft: true},
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 5},
			{Terms: []Term{{1, 1}}, Sense: LE, RHS: 5},
			{Terms: []Term{{2, 1}}, Sense: LE, RHS: 5},
			{Terms: []Term{{3, 1}}, Sense: LE, RHS: 5},
		},
	}
	// MaxIters=1 means almost every LP hits the iteration limit.
	s, err := Solve(p, Options{MaxIters: 1, MaxNodes: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Either no node solved (infeasible reported) or some usable result;
	// the call must not error or panic.
	_ = s
}

// The simplex status string helper used in diagnostics.
func TestSimplexStatusString(t *testing.T) {
	for s, w := range map[simplex.Status]string{
		simplex.Optimal: "optimal", simplex.Infeasible: "infeasible",
		simplex.Unbounded: "unbounded", simplex.IterLimit: "iteration-limit",
		simplex.Status(9): "unknown",
	} {
		if got := s.String(); got != w {
			t.Errorf("%d.String() = %q", s, got)
		}
	}
}
