package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func solve(t *testing.T, p *Problem, opt Options) *Solution {
	t.Helper()
	s, err := Solve(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExactSystem(t *testing.T) {
	// x0 + x1 = 5, x0 - soft target: x0 = 2. All satisfiable.
	p := &Problem{
		NumVars: 2,
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: EQ, RHS: 5},
			{Terms: []Term{{0, 1}}, Sense: EQ, RHS: 2, Soft: true},
		},
	}
	s := solve(t, p, Options{})
	if s.Status != StatusOptimal || s.Obj > 1e-9 {
		t.Fatalf("status %v obj %v", s.Status, s.Obj)
	}
	if s.X[0] != 2 || s.X[1] != 3 {
		t.Errorf("x = %v", s.X)
	}
}

func TestSoftDeviationMinimized(t *testing.T) {
	// Hard: x0 <= 3. Soft: x0 = 10. Best is x0=3 with deviation 7.
	p := &Problem{
		NumVars: 1,
		Cons: []Constraint{
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 3},
			{Terms: []Term{{0, 1}}, Sense: EQ, RHS: 10, Soft: true},
		},
	}
	s := solve(t, p, Options{})
	if s.X[0] != 3 || math.Abs(s.Obj-7) > 1e-9 {
		t.Fatalf("x %v obj %v", s.X, s.Obj)
	}
	if err := CheckHard(p, s.X); err != nil {
		t.Error(err)
	}
}

func TestWeightsSteerConflicts(t *testing.T) {
	// Two conflicting soft targets on the same var; heavier one wins.
	p := &Problem{
		NumVars: 1,
		Cons: []Constraint{
			{Terms: []Term{{0, 1}}, Sense: EQ, RHS: 2, Soft: true, Weight: 1},
			{Terms: []Term{{0, 1}}, Sense: EQ, RHS: 8, Soft: true, Weight: 10},
		},
	}
	s := solve(t, p, Options{})
	if s.X[0] != 8 {
		t.Fatalf("x = %v, want 8", s.X)
	}
}

func TestInfeasibleHard(t *testing.T) {
	p := &Problem{
		NumVars: 1,
		Cons: []Constraint{
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 1},
			{Terms: []Term{{0, 1}}, Sense: GE, RHS: 3},
		},
	}
	s := solve(t, p, Options{})
	if s.Status != StatusInfeasible {
		t.Fatalf("status = %v", s.Status)
	}
}

func TestBranchingForcedFractional(t *testing.T) {
	// 2x0 + 2x1 = 5 has no integer solution; closest integral deviation 1.
	p := &Problem{
		NumVars: 2,
		Cons: []Constraint{
			{Terms: []Term{{0, 2}, {1, 2}}, Sense: EQ, RHS: 5, Soft: true},
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 10},
			{Terms: []Term{{1, 1}}, Sense: LE, RHS: 10},
		},
	}
	s := solve(t, p, Options{})
	if s.Status != StatusOptimal {
		t.Fatalf("status %v", s.Status)
	}
	if math.Abs(s.Obj-1) > 1e-9 {
		t.Errorf("obj = %v, want 1 (|4-5| or |6-5|)", s.Obj)
	}
}

func TestVarCostObjective(t *testing.T) {
	// min x0+x1 s.t. x0 + x1 >= 3, prefer cheap var.
	p := &Problem{
		NumVars: 2,
		VarCost: []float64{5, 1},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: GE, RHS: 3},
		},
	}
	s := solve(t, p, Options{})
	if s.X[0] != 0 || s.X[1] != 3 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestSoftMustBeEQ(t *testing.T) {
	p := &Problem{NumVars: 1, Cons: []Constraint{{Terms: []Term{{0, 1}}, Sense: LE, RHS: 1, Soft: true}}}
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("soft LE accepted")
	}
}

func TestBadVarIndex(t *testing.T) {
	p := &Problem{NumVars: 1, Cons: []Constraint{{Terms: []Term{{7, 1}}, Sense: LE, RHS: 1}}}
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("bad var index accepted")
	}
}

func TestUnboundedDetected(t *testing.T) {
	// min -x with no bound: relaxation unbounded -> error.
	p := &Problem{NumVars: 1, VarCost: []float64{-1}}
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("unbounded accepted")
	}
}

func TestZeroVariables(t *testing.T) {
	s := solve(t, &Problem{NumVars: 0}, Options{})
	if s.Status != StatusOptimal || len(s.X) != 0 {
		t.Errorf("empty problem: %v", s)
	}
}

func TestNodeBudgetRoundedFallback(t *testing.T) {
	// A fractional system with a 1-node budget: must fall back to rounding
	// and never violate the hard capacity.
	p := &Problem{
		NumVars: 2,
		Cons: []Constraint{
			{Terms: []Term{{0, 2}, {1, 2}}, Sense: EQ, RHS: 5, Soft: true},
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: LE, RHS: 2},
		},
	}
	s := solve(t, p, Options{MaxNodes: 1})
	if s.Status != StatusRounded && s.Status != StatusOptimal {
		t.Fatalf("status = %v", s.Status)
	}
	if err := CheckHard(p, s.X); err != nil {
		t.Error(err)
	}
}

func TestTimeLimitRespected(t *testing.T) {
	// A problem with many fractional branches; generous correctness not
	// required, just termination well under a second.
	rng := rand.New(rand.NewSource(5))
	nv := 30
	p := &Problem{NumVars: nv}
	for i := 0; i < 15; i++ {
		c := Constraint{Sense: EQ, RHS: float64(rng.Intn(50)), Soft: true}
		for j := 0; j < nv; j++ {
			if rng.Intn(2) == 0 {
				c.Terms = append(c.Terms, Term{j, 2}) // even coefs force fractions
			}
		}
		p.Cons = append(p.Cons, c)
	}
	for j := 0; j < nv; j++ {
		p.Cons = append(p.Cons, Constraint{Terms: []Term{{j, 1}}, Sense: LE, RHS: 9})
	}
	start := time.Now()
	s := solve(t, p, Options{TimeLimit: 50 * time.Millisecond, MaxNodes: 1 << 30})
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("took %v", el)
	}
	if s.X == nil {
		t.Fatal("no solution returned")
	}
	if err := CheckHard(p, s.X); err != nil {
		t.Error(err)
	}
}

// TestRandomCCLikeSystems builds random "CC-like" 0/1 systems with known
// feasible integer solutions and checks the solver recovers zero deviation.
func TestRandomCCLikeSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		nv := 4 + rng.Intn(8)
		truth := make([]int64, nv)
		for j := range truth {
			truth[j] = int64(rng.Intn(6))
		}
		p := &Problem{NumVars: nv}
		// Capacity rows: x_j <= truth_j + slackroom.
		for j := 0; j < nv; j++ {
			p.Cons = append(p.Cons, Constraint{Terms: []Term{{j, 1}}, Sense: LE, RHS: float64(truth[j] + 2)})
		}
		// Soft rows: random subsets with RHS = true subset sum.
		nr := 3 + rng.Intn(5)
		for i := 0; i < nr; i++ {
			c := Constraint{Sense: EQ, Soft: true}
			sum := int64(0)
			for j := 0; j < nv; j++ {
				if rng.Intn(2) == 0 {
					c.Terms = append(c.Terms, Term{j, 1})
					sum += truth[j]
				}
			}
			c.RHS = float64(sum)
			p.Cons = append(p.Cons, c)
		}
		s := solve(t, p, Options{})
		if s.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		if s.Obj > 1e-6 {
			t.Fatalf("trial %d: deviation %v for satisfiable system", trial, s.Obj)
		}
		if err := CheckHard(p, s.X); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
