package ilp

import (
	"fmt"
	"sort"
	"time"
)

// Runner fans independent tasks out over a worker pool; it is satisfied by
// *sched.Pool. A nil Runner runs tasks sequentially.
type Runner interface {
	ForEach(n int, fn func(int))
}

// Block is one independent subproblem of a decomposed integer program.
type Block struct {
	Prob *Problem
	Vars []int // original variable ids, ascending; Prob's var j is Vars[j]
	Cons []int // original constraint indices, ascending
}

// Split partitions p into independent blocks: the connected components of
// the bipartite variable–constraint graph. Because blocks share no
// variables and the weighted L1-deviation objective is separable, solving
// the blocks independently optimizes the joint problem exactly. Constraints
// without terms (possible for CC rows with no reachable variable) become
// singleton blocks carrying their constant deviation. Variables appearing
// in no constraint are not covered by any block; they are fixed at zero by
// SolveBlocks, matching the joint solver's optimum for non-negative costs.
// Blocks are ordered by their smallest original constraint index, so the
// decomposition is deterministic.
func Split(p *Problem) []Block {
	// Union-find over variables; each constraint unions the variables it
	// touches.
	parent := make([]int, p.NumVars)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, c := range p.Cons {
		for i := 1; i < len(c.Terms); i++ {
			union(c.Terms[0].Var, c.Terms[i].Var)
		}
	}

	// Group constraints by component root; termless constraints get their
	// own singleton groups.
	consByRoot := make(map[int][]int)
	var roots []int // first-appearance order == smallest-constraint order
	addCon := func(root, ci int) {
		if _, ok := consByRoot[root]; !ok {
			roots = append(roots, root)
		}
		consByRoot[root] = append(consByRoot[root], ci)
	}
	for ci, c := range p.Cons {
		if len(c.Terms) == 0 {
			addCon(-1-ci, ci) // unique synthetic root per termless row
			continue
		}
		addCon(find(c.Terms[0].Var), ci)
	}

	varsByRoot := make(map[int][]int)
	for v := 0; v < p.NumVars; v++ {
		r := find(v)
		if _, used := consByRoot[r]; used {
			varsByRoot[r] = append(varsByRoot[r], v)
		}
	}

	blocks := make([]Block, 0, len(roots))
	for _, root := range roots {
		cons := consByRoot[root]
		vars := varsByRoot[root] // ascending by construction
		sort.Ints(vars)
		localOf := make(map[int]int, len(vars))
		for j, v := range vars {
			localOf[v] = j
		}
		sub := &Problem{NumVars: len(vars)}
		if p.VarCost != nil {
			sub.VarCost = make([]float64, len(vars))
			for j, v := range vars {
				if v < len(p.VarCost) {
					sub.VarCost[j] = p.VarCost[v]
				}
			}
		}
		for _, ci := range cons {
			c := p.Cons[ci]
			terms := make([]Term, len(c.Terms))
			for k, t := range c.Terms {
				terms[k] = Term{Var: localOf[t.Var], Coef: t.Coef}
			}
			sub.Cons = append(sub.Cons, Constraint{
				Terms: terms, Sense: c.Sense, RHS: c.RHS, Soft: c.Soft, Weight: c.Weight,
			})
		}
		blocks = append(blocks, Block{Prob: sub, Vars: vars, Cons: cons})
	}
	return blocks
}

// SolveBlocks solves p by independent-block decomposition, fanning the
// subproblems out on run (nil solves them sequentially). Options.MaxNodes
// and Options.MaxIters apply per block (each block is one branch-and-bound
// search, as one Solve call used to be), while Options.TimeLimit is split
// across the blocks in proportion to their variable counts — a dominant
// block keeps nearly the whole budget while trivial singletons get a
// 1ms-per-block floor — so the total stays bounded by roughly the
// caller's budget without making block budgets depend on execution order.
// The combined solution is assembled in canonical block order, so the
// result does not depend on the runner's parallelism (TimeLimit-bounded
// searches remain wall-clock dependent, as they always were for Solve).
// Node and pivot counts are summed across blocks and the combined status
// is the weakest block status.
func SolveBlocks(p *Problem, opt Options, run Runner) (*Solution, error) {
	blocks := Split(p)
	if len(blocks) == 0 {
		return &Solution{Status: StatusOptimal, X: make([]int64, p.NumVars)}, nil
	}
	if len(blocks) == 1 && len(blocks[0].Vars) == p.NumVars {
		return Solve(p, opt)
	}
	budgets := blockBudgets(opt.TimeLimit, blocks)
	sols := make([]*Solution, len(blocks))
	errs := make([]error, len(blocks))
	forEach := func(n int, fn func(int)) {
		for i := 0; i < n; i++ {
			fn(i)
		}
	}
	if run != nil {
		forEach = run.ForEach
	}
	forEach(len(blocks), func(i int) {
		o := opt
		if budgets != nil {
			o.TimeLimit = budgets[i]
		}
		sols[i], errs[i] = Solve(blocks[i].Prob, o)
	})

	return assembleBlockSolutions(p, blocks, sols, errs)
}

// blockBudgets apportions a wall-clock budget across blocks by variable
// count (deterministically — no dependence on execution order), flooring
// each share at 1ms so every block keeps a nonzero TimeLimit. Returns nil
// when no budget is set.
func blockBudgets(limit time.Duration, blocks []Block) []time.Duration {
	if limit <= 0 {
		return nil
	}
	totalVars := 0
	for _, b := range blocks {
		totalVars += len(b.Vars)
	}
	out := make([]time.Duration, len(blocks))
	for i, b := range blocks {
		share := limit
		if totalVars > 0 {
			share = limit * time.Duration(len(b.Vars)) / time.Duration(totalVars)
		}
		if share < time.Millisecond {
			share = time.Millisecond
		}
		out[i] = share
	}
	return out
}

// assembleBlockSolutions merges per-block solutions into one joint
// solution in canonical block order.
func assembleBlockSolutions(p *Problem, blocks []Block, sols []*Solution, errs []error) (*Solution, error) {
	out := &Solution{Status: StatusOptimal, X: make([]int64, p.NumVars)}
	for i, b := range blocks {
		if errs[i] != nil {
			return nil, fmt.Errorf("ilp: block %d: %w", i, errs[i])
		}
		s := sols[i]
		out.Nodes += s.Nodes
		out.Iters += s.Iters
		if s.Status > out.Status {
			out.Status = s.Status
		}
		if s.Status == StatusInfeasible {
			return &Solution{Status: StatusInfeasible, Nodes: out.Nodes, Iters: out.Iters}, nil
		}
		out.Obj += s.Obj
		for j, v := range b.Vars {
			out.X[v] = s.X[j]
		}
	}
	return out, nil
}
