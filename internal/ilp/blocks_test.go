package ilp

import (
	"math"
	"testing"
	"time"
)

// twoBlockProblem builds a separable program: vars {0,1} coupled by one
// soft row each plus a shared capacity, and vars {2,3} likewise, with one
// termless soft row carrying constant deviation 5.
func twoBlockProblem() *Problem {
	p := &Problem{NumVars: 4}
	for _, pair := range [][2]int{{0, 1}, {2, 3}} {
		p.Cons = append(p.Cons,
			Constraint{Terms: []Term{{Var: pair[0], Coef: 1}, {Var: pair[1], Coef: 1}}, Sense: LE, RHS: 10},
			Constraint{Terms: []Term{{Var: pair[0], Coef: 1}}, Sense: EQ, RHS: 4, Soft: true},
			Constraint{Terms: []Term{{Var: pair[1], Coef: 1}}, Sense: EQ, RHS: 3, Soft: true},
		)
	}
	p.Cons = append(p.Cons, Constraint{Sense: EQ, RHS: 5, Soft: true})
	return p
}

func TestSplitFindsIndependentBlocks(t *testing.T) {
	blocks := Split(twoBlockProblem())
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(blocks))
	}
	if got := blocks[0].Vars; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("block 0 vars = %v", got)
	}
	if got := blocks[1].Vars; len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("block 1 vars = %v", got)
	}
	if len(blocks[2].Vars) != 0 || len(blocks[2].Cons) != 1 || blocks[2].Cons[0] != 6 {
		t.Errorf("termless block = %+v", blocks[2])
	}
	// Every constraint lands in exactly one block.
	seen := map[int]bool{}
	for _, b := range blocks {
		for _, ci := range b.Cons {
			if seen[ci] {
				t.Errorf("constraint %d in two blocks", ci)
			}
			seen[ci] = true
		}
	}
	if len(seen) != 7 {
		t.Errorf("%d of 7 constraints covered", len(seen))
	}
}

func TestSolveBlocksMatchesJointSolve(t *testing.T) {
	p := twoBlockProblem()
	joint, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	split, err := SolveBlocks(p, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if split.Status != StatusOptimal {
		t.Fatalf("status = %v", split.Status)
	}
	if math.Abs(split.Obj-joint.Obj) > 1e-9 {
		t.Errorf("objective %v != joint %v", split.Obj, joint.Obj)
	}
	// The blocks are uncoupled with unique optima, so X must agree too.
	for j := range split.X {
		if split.X[j] != joint.X[j] {
			t.Errorf("X[%d] = %d, joint %d", j, split.X[j], joint.X[j])
		}
	}
	if err := CheckHard(p, split.X); err != nil {
		t.Error(err)
	}
}

func TestSolveBlocksInfeasibleBlock(t *testing.T) {
	p := &Problem{NumVars: 2}
	p.Cons = append(p.Cons,
		Constraint{Terms: []Term{{Var: 0, Coef: 1}}, Sense: EQ, RHS: 3, Soft: true},
		Constraint{Terms: []Term{{Var: 1, Coef: 1}}, Sense: GE, RHS: 5},
		Constraint{Terms: []Term{{Var: 1, Coef: 1}}, Sense: LE, RHS: 2},
	)
	sol, err := SolveBlocks(p, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestBlockBudgetsProportionalToVars(t *testing.T) {
	blocks := []Block{
		{Vars: make([]int, 98)},
		{Vars: make([]int, 2)},
		{Vars: nil}, // termless singleton
	}
	budgets := blockBudgets(time.Second, blocks)
	if budgets[0] < 900*time.Millisecond {
		t.Errorf("dominant block got %v of 1s", budgets[0])
	}
	if budgets[1] != 20*time.Millisecond {
		t.Errorf("small block got %v, want 20ms", budgets[1])
	}
	if budgets[2] != time.Millisecond {
		t.Errorf("termless block got %v, want the 1ms floor", budgets[2])
	}
	if got := blockBudgets(0, blocks); got != nil {
		t.Errorf("no budget should yield nil, got %v", got)
	}
}

func TestSolveBlocksEmptyProblem(t *testing.T) {
	sol, err := SolveBlocks(&Problem{NumVars: 3}, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || len(sol.X) != 3 {
		t.Fatalf("sol = %+v", sol)
	}
	for j, v := range sol.X {
		if v != 0 {
			t.Errorf("X[%d] = %d, want 0", j, v)
		}
	}
}
